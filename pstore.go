// Package pstore is a from-scratch reproduction of P-Store, the elastic
// OLTP database system with predictive provisioning of Taft et al.
// (SIGMOD 2018; first presented as "Predictive Provisioning: A Progress
// Report", CIDR 2017).
//
// P-Store forecasts the aggregate load on a shared-nothing, partitioned,
// main-memory OLTP database with Sparse Periodic Auto-Regression (SPAR),
// plans the cheapest sequence of cluster reconfigurations whose effective
// capacity always covers the predicted load, and executes those
// reconfigurations as live, throttled data migrations — before load spikes
// arrive rather than after.
//
// The primary entry point is the Cluster runtime (internal/cluster): it
// owns the whole serving stack — storage engine, Squall migration executor,
// latency recorder and the provisioning controller's monitoring/decision
// loop — behind one lifecycle (NewCluster, Start, Stop) and publishes a
// typed event stream (MoveStarted, MoveFinished, DecisionFailed,
// EmergencyTriggered, LoadObserved, MachineFailed, MachineRecovered) for
// observers.
//
// The package is a facade over the internal subsystems:
//
//   - Cluster: the serving runtime combining everything below into the
//     paper's closed loop (internal/cluster).
//   - Engine: an H-Store-like storage engine — serial per-partition
//     executors, hash-bucketed partitioning, single-partition transactions,
//     and live bucket migration (internal/store).
//   - Squall: the live migration executor that streams buckets between
//     partitions in throttled chunks following the maximum-parallelism
//     round schedule (internal/squall, internal/migration).
//   - SPAR / AR / ARMA: load forecasting models (internal/predictor).
//   - Planner: the dynamic program of the paper's Algorithms 1-3
//     (internal/planner).
//   - PredictiveController and friends: the provisioning policies compared
//     in the paper's evaluation (internal/elastic).
//   - The B2W retail benchmark: schema, 19 stored procedures, loader and
//     trace-driven driver (internal/b2w).
//   - Simulation and experiments: the long-horizon strategy simulator and
//     one runnable experiment per paper table and figure
//     (internal/sim, internal/experiments).
//
// See the examples directory for end-to-end usage and EXPERIMENTS.md for
// the reproduction results.
package pstore

import (
	"context"
	"encoding/json"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/client"
	"pstore/internal/cluster"
	"pstore/internal/elastic"
	"pstore/internal/experiments"
	"pstore/internal/faults"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/planner"
	"pstore/internal/predictor"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/sim"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// --- cluster runtime (paper Section 6) --------------------------------------

// Cluster is the serving runtime: engine + Squall executor + recorder + the
// controller's monitoring/decision loop, under one lifecycle. It is the
// single owner of move execution and publishes a typed event stream.
type Cluster = cluster.Cluster

// ClusterConfig assembles a Cluster.
type ClusterConfig = cluster.Config

// ClusterStats summarizes a runtime's decision activity.
type ClusterStats = cluster.Stats

// NewCluster builds the serving stack; register transactions on Engine(),
// then Start it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ClusterEvent is a typed notification from the cluster runtime; subscribe
// with Cluster.Subscribe.
type ClusterEvent = cluster.Event

// The concrete event types delivered on a cluster's event stream.
type (
	// LoadObserved reports each monitoring cycle's measured load.
	LoadObserved = cluster.LoadObserved
	// MoveStarted marks the start of a reconfiguration.
	MoveStarted = cluster.MoveStarted
	// MoveFinished marks the successful end of a reconfiguration.
	MoveFinished = cluster.MoveFinished
	// MoveFailed marks an aborted reconfiguration (rolled back to the
	// pre-move bucket plan).
	MoveFailed = cluster.MoveFailed
	// DecisionFailed reports a controller error.
	DecisionFailed = cluster.DecisionFailed
	// EmergencyTriggered reports an emergency scale-out decision.
	EmergencyTriggered = cluster.EmergencyTriggered
	// MachineFailed reports a machine crash from the crash schedule.
	MachineFailed = cluster.MachineFailed
	// MachineRecovered reports a crashed machine rebuilt from its last
	// checkpoint plus command-log replay.
	MachineRecovered = cluster.MachineRecovered
)

// ErrMoveInFlight is returned by Cluster.Reconfigure while a move runs.
var ErrMoveInFlight = cluster.ErrMoveInFlight

// --- capacity and migration model (paper Section 4) -----------------------

// MigrationModel holds the empirically discovered capacity parameters: the
// per-server target throughput Q, maximum throughput Q̂, single-thread
// full-database migration time D, and partitions per server P. It prices
// moves (Equations 2-4, Algorithm 4) and computes effective capacity during
// migration (Equation 7).
type MigrationModel = migration.Model

// Schedule is a move's round-by-round sender/receiver pairing (Table 1).
type Schedule = migration.Schedule

// BuildSchedule constructs the maximum-parallelism migration schedule for a
// move between cluster sizes (Section 4.4.1).
func BuildSchedule(from, to, partitionsPerMachine int) (*Schedule, error) {
	return migration.BuildSchedule(from, to, partitionsPerMachine)
}

// --- planning (paper Section 4.3) ------------------------------------------

// Planner runs the predictive elasticity dynamic program (Algorithms 1-3).
type Planner = planner.Planner

// Plan is an optimal sequence of reconfiguration moves.
type Plan = planner.Plan

// Move is one reconfiguration step within a plan.
type Move = planner.Move

// ErrInfeasible is returned when no move sequence can keep capacity above
// the predicted load; controllers then fall back to emergency scaling.
var ErrInfeasible = planner.ErrInfeasible

// --- prediction (paper Section 5) ------------------------------------------

// Predictor forecasts future load from an observed history.
type Predictor = predictor.Predictor

// SPAR is the Sparse Periodic Auto-Regression model of Equation 8.
type SPAR = predictor.SPAR

// NewSPAR returns an unfitted SPAR model with the given period (slots per
// day), number of previous periods n, and recent-offset count m. The
// paper's defaults for per-minute retail load are NewSPAR(1440, 7, 30).
func NewSPAR(period, nPeriods, mRecent int) *SPAR {
	return predictor.NewSPAR(period, nPeriods, mRecent)
}

// NewAR returns an auto-regressive baseline model of the given order.
func NewAR(order int) Predictor { return predictor.NewAR(order) }

// NewARMA returns an ARMA(p, q) baseline model.
func NewARMA(p, q int) Predictor { return predictor.NewARMA(p, q) }

// NewOracle returns a perfect predictor replaying a known trace — the
// "P-Store Oracle" upper bound of Figure 12.
func NewOracle(trace []float64) Predictor { return predictor.NewOracle(trace) }

// OnlinePredictor wraps a model with online observation and periodic
// refitting (the paper's active learning, Section 6).
type OnlinePredictor = predictor.Online

// NewOnlinePredictor wraps model; refitEvery new observations trigger a
// refit (0 disables), maxHistory bounds the buffer (0 keeps everything).
func NewOnlinePredictor(model Predictor, refitEvery, maxHistory int) *OnlinePredictor {
	return predictor.NewOnline(model, refitEvery, maxHistory)
}

// MRE returns the mean relative error between actual and predicted values.
func MRE(actual, predicted []float64) (float64, error) {
	return timeseries.MRE(actual, predicted)
}

// --- storage engine and live migration (paper Sections 2, 6) ---------------

// Engine is the partitioned main-memory OLTP engine.
type Engine = store.Engine

// EngineConfig sizes an Engine.
type EngineConfig = store.Config

// Tx is the execution context of a stored procedure.
type Tx = store.Tx

// TxnFunc is a stored procedure body.
type TxnFunc = store.TxnFunc

// TxnID is a resolved transaction handle: resolve a registered name once
// with Engine.Handle, then submit through Engine.ExecuteID so the hot path
// never touches the name map.
type TxnID = store.TxnID

// NoTxn is the invalid transaction handle.
const NoTxn = store.NoTxn

// EngineCounters are an engine's cumulative transaction counts (submitted,
// completed, errored, forwarded mid-migration).
type EngineCounters = store.Counters

// NewEngine constructs an engine; register transactions, then Start it.
func NewEngine(cfg EngineConfig) (*Engine, error) { return store.NewEngine(cfg) }

// DefaultEngineConfig returns a small-cluster configuration suitable for
// examples and tests.
func DefaultEngineConfig() EngineConfig { return store.DefaultConfig() }

// Squall executes live reconfigurations against an Engine.
type Squall = squall.Executor

// SquallConfig tunes migration chunking and throttling.
type SquallConfig = squall.Config

// NewSquall returns a live migration executor for the engine.
func NewSquall(eng *Engine, cfg SquallConfig) (*Squall, error) {
	return squall.NewExecutor(eng, cfg)
}

// DefaultSquallConfig returns a throttled migration configuration.
func DefaultSquallConfig() SquallConfig { return squall.DefaultConfig() }

// --- crash recovery (machine failures) --------------------------------------

// RecoveryManager gives every bucket a command log and checkpoint images,
// and rebuilds a crashed machine to its exact pre-crash state by installing
// the images and replaying the logged command tails (see internal/recovery).
// Attach it with NewRecoveryManager before Engine.Start; the Cluster runtime
// builds one automatically when a crash schedule is armed.
type RecoveryManager = recovery.Manager

// RecoveryStats counts crashes, recoveries, checkpoints, replayed commands
// and cumulative downtime.
type RecoveryStats = recovery.Stats

// NewRecoveryManager attaches a recovery manager to an engine's command-log
// hook. Call before Engine.Start so every transaction is logged.
func NewRecoveryManager(eng *Engine) *RecoveryManager { return recovery.NewManager(eng) }

// CrashSchedule is a deterministic machine-failure schedule (planned
// crashes plus a hashed per-cycle rate) for ClusterConfig.Crash.
type CrashSchedule = faults.CrashSchedule

// PlannedCrash pins one machine failure to one monitoring cycle.
type PlannedCrash = faults.PlannedCrash

// ParseCrashSchedule parses the pstore --crash spec format, e.g.
// "seed=42,rate=0.05,downtime=4,at=1@10+5".
func ParseCrashSchedule(spec string) (CrashSchedule, error) { return faults.ParseCrash(spec) }

// ErrPartitionDown is returned for transactions and migrations that touch a
// crashed machine; it heals when the machine recovers.
var ErrPartitionDown = store.ErrPartitionDown

// --- provisioning controllers (paper Sections 6, 8) ------------------------

// Controller decides once per monitoring interval whether to reconfigure.
type Controller = elastic.Controller

// Decision asks the executing world to start a move now.
type Decision = elastic.Decision

// PredictiveController is P-Store's predictor→planner→scheduler control
// loop with receding-horizon control and scale-in confirmation.
type PredictiveController = elastic.Predictive

// ReactiveController is the E-Store-like reactive baseline.
type ReactiveController = elastic.Reactive

// StaticController never reconfigures.
type StaticController = elastic.Static

// SimpleController is the time-of-day heuristic of Figure 13.
type SimpleController = elastic.Simple

// ManualController schedules operator-planned capacity changes for known
// one-off events — the third arm of the paper's composite strategy (§1). It
// can wrap another controller for the ordinary cycles.
type ManualController = elastic.Manual

// Spike policies for unpredicted load (Section 4.3.1).
const (
	// SpikeRegularRate keeps migrating at the non-disruptive rate R.
	SpikeRegularRate = elastic.SpikeRegularRate
	// SpikeFastRate migrates at rate R x 8 during emergencies.
	SpikeFastRate = elastic.SpikeFastRate
)

// --- workload and benchmark (paper Section 7) ------------------------------

// Series is a uniformly sampled load series.
type Series = timeseries.Series

// B2WConfig parameterizes the synthetic retail load of Figure 1.
type B2WConfig = workload.B2WConfig

// DefaultB2WConfig returns the standard synthetic retail configuration.
func DefaultB2WConfig(seed int64, days int) B2WConfig {
	return workload.DefaultB2WConfig(seed, days)
}

// SyntheticB2W generates a seeded retail load trace.
func SyntheticB2W(cfg B2WConfig) (Series, error) { return workload.SyntheticB2W(cfg) }

// SyntheticWikipediaEnglish generates the highly periodic hourly page-view
// trace modelled on the English Wikipedia (Figure 6).
func SyntheticWikipediaEnglish(seed int64, days int) (Series, error) {
	return workload.SyntheticWikipedia(workload.EnglishWikipediaConfig(seed, days))
}

// SyntheticWikipediaGerman generates the noisier, less predictable hourly
// trace modelled on the German Wikipedia (Figure 6).
func SyntheticWikipediaGerman(seed int64, days int) (Series, error) {
	return workload.SyntheticWikipedia(workload.GermanWikipediaConfig(seed, days))
}

// RegisterB2W installs the benchmark's nineteen stored procedures.
func RegisterB2W(eng *Engine) error { return b2w.Register(eng) }

// B2WLoadSpec sizes the benchmark database.
type B2WLoadSpec = b2w.LoadSpec

// LoadB2W populates a started engine with carts, checkouts and stock.
func LoadB2W(eng *Engine, spec B2WLoadSpec) error { return b2w.Load(eng, spec) }

// B2WDriver replays a load trace against the engine as benchmark
// transactions.
type B2WDriver = b2w.Driver

// B2WExecutor is the driver's submission boundary: in-process engine calls
// or a remote server over the wire, behind one interface.
type B2WExecutor = b2w.Executor

// NewB2WRemoteExecutor points the driver at a network front end through a
// connected client, turning the same driver into a separate-process load
// generator.
func NewB2WRemoteExecutor(ctx context.Context, c *Client) (B2WExecutor, error) {
	return b2w.NewRemoteExecutor(ctx, c)
}

// --- network front end and client (wire protocol) ---------------------------

// Server serves an engine over HTTP/1.1: JSON single-transaction requests,
// length-prefixed binary batches with pipelined execution, per-request
// deadlines from wire headers, and the engine's overload plane surfaced as
// 429/504/503 with machine-readable retry hints.
type Server = server.Server

// ServerConfig assembles a Server.
type ServerConfig = server.Config

// ServerCounters are a server's cumulative wire-level counts.
type ServerCounters = server.Counters

// NewServer fronts a started engine; run it with Serve on a listener.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Client is the Go client library: pooled connections, an in-flight cap
// with client-side shedding, deadline propagation, and retry-hint honoring.
// Its errors map back onto the engine's typed errors, so errors.Is works
// identically in-process and over the wire.
type Client = client.Client

// ClientConfig assembles a Client.
type ClientConfig = client.Config

// ClientCounters are a client's cumulative counts, including transport
// errors and client-side sheds.
type ClientCounters = client.Counters

// NewClient connects to a server address ("host:port" or a base URL).
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// ErrClientSaturated is returned when the client's in-flight cap sheds a
// submission locally; it matches store.ErrOverload under errors.Is.
var ErrClientSaturated = client.ErrSaturated

// B2WDecodeArgs is the wire codec for the benchmark's transactions — the
// ServerConfig.DecodeArgs for an engine registered with RegisterB2W.
func B2WDecodeArgs(txn string, raw json.RawMessage) (any, error) {
	return b2w.DecodeArgs(txn, raw)
}

// --- measurement ------------------------------------------------------------

// Recorder aggregates per-transaction latencies into windows and reports
// percentiles, SLA violations and machine-allocation timelines.
type Recorder = metrics.Recorder

// NewRecorder returns a recorder with the given aggregation window.
func NewRecorder(start time.Time, window time.Duration) (*Recorder, error) {
	return metrics.NewRecorder(start, window)
}

// --- simulation and experiments (paper Section 8) ---------------------------

// Simulator replays a provisioning controller against a long load trace
// using the analytic capacity model (the paper's Section 8.3 methodology).
type Simulator = sim.Sim

// SimResult summarizes a simulated run (cost, shortfall, timelines).
type SimResult = sim.Result

// ExperimentResult is the outcome of one paper table/figure reproduction.
type ExperimentResult = experiments.Result

// ExperimentOptions tunes an experiment run.
type ExperimentOptions = experiments.Options

// Experiments lists the identifiers of every reproducible table and figure.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}
