// Wikipedia: compares the load predictors of the paper's Section 5 on two
// hourly page-view workloads of different predictability — the
// highly periodic English-Wikipedia-like trace and the noisier
// German-Wikipedia-like trace (Figure 6) — and shows how forecast accuracy
// decays with the forecasting period for SPAR, AR and ARMA.
package main

import (
	"fmt"
	"log"

	"pstore"
)

func main() {
	for _, lang := range []string{"english", "german"} {
		trace, err := syntheticWiki(lang)
		if err != nil {
			log.Fatal(err)
		}
		train := trace.Values[:4*7*24] // four weeks of hourly data
		test := trace.Values

		fmt.Printf("%s-Wikipedia-like trace (%d days, hourly)\n", lang, trace.Len()/24)
		fmt.Printf("%8s %10s %10s %10s\n", "tau (h)", "SPAR", "AR", "ARMA")
		for tau := 1; tau <= 6; tau++ {
			spar := pstore.NewSPAR(24, 7, 6)
			if err := spar.FitHorizons(train, tau); err != nil {
				log.Fatal(err)
			}
			ar := pstore.NewAR(12)
			if err := ar.Fit(train); err != nil {
				log.Fatal(err)
			}
			arma := pstore.NewARMA(12, 6)
			if err := arma.Fit(train); err != nil {
				log.Fatal(err)
			}
			row := fmt.Sprintf("%8d", tau)
			for _, p := range []pstore.Predictor{spar, ar, arma} {
				var actual, pred []float64
				for now := len(train); now+tau < len(test); now++ {
					v, err := p.Forecast(test[:now+1], tau)
					if err != nil {
						log.Fatal(err)
					}
					pred = append(pred, v)
					actual = append(actual, test[now+tau])
				}
				mre, err := pstore.MRE(actual, pred)
				if err != nil {
					log.Fatal(err)
				}
				row += fmt.Sprintf("   %6.2f%%", mre*100)
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
	fmt.Println("paper reference (Figure 6): SPAR keeps the English trace under ~10% MRE through")
	fmt.Println("six hours and the German trace under ~13%; AR-family baselines decay faster.")
}

// syntheticWiki builds a six-week synthetic hourly trace.
func syntheticWiki(lang string) (pstore.Series, error) {
	const days = 42
	if lang == "english" {
		return pstore.SyntheticWikipediaEnglish(3, days)
	}
	return pstore.SyntheticWikipediaGerman(3, days)
}
