// Retail: a head-to-head of P-Store against an E-Store-like reactive
// provisioner on the live storage engine, through a compressed retail day
// that ends with an unannounced evening flash sale. Both runs use the same
// engine configuration, the same B2W transaction mix and the same trace;
// the difference is purely when each controller decides to move data.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"pstore"
)

const (
	minutePerSlot = 10 * time.Millisecond
	cycleMinutes  = 5
)

func main() {
	// One training month plus the replayed day, with a 1.8x flash sale at
	// 19:30 that is absent from the training data.
	cfg := pstore.DefaultB2WConfig(99, 29)
	full, err := pstore.SyntheticB2W(cfg)
	if err != nil {
		log.Fatal(err)
	}
	day := full.Slice(28*24*60, full.Len())
	day, err = applyFlashSale(day)
	if err != nil {
		log.Fatal(err)
	}
	trainFive, err := full.Slice(0, 28*24*60).Resample(cycleMinutes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replaying one retail day (flash sale at 19:30) under two provisioning policies")
	for _, policy := range []string{"P-Store", "Reactive"} {
		v50, v99, avgMach, moves, err := runPolicy(policy, day, trainFive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s p50 violations %2d, p99 violations %2d, avg machines %.2f, moves %d\n",
			policy, v50, v99, avgMach, moves)
	}
	fmt.Println("\nthe paper's Table 2 shows the same pattern: P-Store provisions ahead of demand and")
	fmt.Println("absorbs surprises with emergency scaling, while the reactive system migrates at peak.")
}

func applyFlashSale(day pstore.Series) (pstore.Series, error) {
	out := day.Clone()
	start := 19*60 + 30
	for i := 0; i < 120 && start+i < out.Len(); i++ {
		boost := 1.8
		if i < 10 {
			boost = 1 + 0.8*float64(i)/10
		}
		out.Values[start+i] *= boost
	}
	return out, nil
}

func runPolicy(policy string, day, trainFive pstore.Series) (v50, v99 int, avgMach float64, moves int, err error) {
	engCfg := pstore.EngineConfig{
		MaxMachines:          8,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      2,
	}
	eng, err := pstore.NewEngine(engCfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := pstore.RegisterB2W(eng); err != nil {
		return 0, 0, 0, 0, err
	}
	eng.Start()
	defer eng.Stop()
	spec := pstore.B2WLoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: 5}
	if err := pstore.LoadB2W(eng, spec); err != nil {
		return 0, 0, 0, 0, err
	}

	// Capacity in paper units (requests per trace minute per machine).
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 6 * perMachine * minutePerSlot.Seconds() / day.Max()
	qMax := perMachine * minutePerSlot.Seconds() / rateScale
	model := pstore.MigrationModel{Q: 0.65 / 0.8 * qMax, QMax: qMax, D: 10, P: engCfg.PartitionsPerMachine}

	var ctrl pstore.Controller
	switch policy {
	case "P-Store":
		spar := pstore.NewSPAR(trainFive.Len()/28, 7, 6)
		online := pstore.NewOnlinePredictor(spar, 0, 9*trainFive.Len()/28)
		// Rescale training history into this run's paper units.
		hist := make([]float64, trainFive.Len())
		copy(hist, trainFive.Values)
		if err := online.ObserveAll(hist); err != nil {
			return 0, 0, 0, 0, err
		}
		ctrl = &pstore.PredictiveController{
			Model: model, Predictor: online,
			Horizon: 36, Inflation: 0.15, MaxMachines: engCfg.MaxMachines,
			OnSpike: pstore.SpikeFastRate,
		}
	case "Reactive":
		ctrl = &pstore.ReactiveController{Model: model, MaxMachines: engCfg.MaxMachines}
	}

	rec, err := pstore.NewRecorder(time.Now(), 300*time.Millisecond)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng.SetRecorder(rec)
	rec.RecordMachines(time.Now(), engCfg.InitialMachines)
	sq, err := pstore.NewSquall(eng, pstore.DefaultSquallConfig())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sq.SetRecorder(rec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var moveCount atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(cycleMinutes * minutePerSlot)
		defer ticker.Stop()
		last, _, _ := eng.Counters()
		var moving atomic.Bool
		var moveWG sync.WaitGroup
		defer moveWG.Wait()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			sub, _, _ := eng.Counters()
			load := float64(sub-last) / rateScale / cycleMinutes
			last = sub
			busy := moving.Load() || sq.InProgress()
			dec, err := ctrl.Tick(eng.ActiveMachines(), busy, load)
			if err != nil || dec == nil || busy {
				continue
			}
			from := eng.ActiveMachines()
			moveCount.Add(1)
			moving.Store(true)
			moveWG.Add(1)
			go func(to int, rate float64) {
				defer moveWG.Done()
				defer moving.Store(false)
				if err := sq.Reconfigure(from, to, rate); err != nil {
					log.Printf("%s reconfigure: %v", policy, err)
				}
			}(dec.Target, dec.RateFactor)
		}
	}()

	driver := &pstore.B2WDriver{Eng: eng, Spec: spec, Seed: 6}
	if _, err := driver.Run(ctx, day, minutePerSlot, rateScale); err != nil && ctx.Err() == nil {
		return 0, 0, 0, 0, err
	}
	cancel()
	wg.Wait()
	eng.SetRecorder(nil)

	const sloMs = 40
	return rec.SLAViolations(50, sloMs), rec.SLAViolations(99, sloMs),
		rec.AverageMachines(), int(moveCount.Load()), nil
}
