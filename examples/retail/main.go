// Retail: a head-to-head of P-Store against an E-Store-like reactive
// provisioner on the live storage engine, through a compressed retail day
// that ends with an unannounced evening flash sale. Both runs use the same
// engine configuration, the same B2W transaction mix and the same trace;
// the difference is purely when each controller decides to move data.
//
// The serving stack — engine, Squall executor, recorder and the
// monitoring/decision loop — is owned by the pstore.Cluster runtime; this
// example only assembles a configuration, replays the trace and watches the
// runtime's event stream.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pstore"
)

const (
	minutePerSlot = 10 * time.Millisecond
	cycleMinutes  = 5
)

func main() {
	// One training month plus the replayed day, with a 1.8x flash sale at
	// 19:30 that is absent from the training data.
	cfg := pstore.DefaultB2WConfig(99, 29)
	full, err := pstore.SyntheticB2W(cfg)
	if err != nil {
		log.Fatal(err)
	}
	day := full.Slice(28*24*60, full.Len())
	day, err = applyFlashSale(day)
	if err != nil {
		log.Fatal(err)
	}
	trainFive, err := full.Slice(0, 28*24*60).Resample(cycleMinutes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replaying one retail day (flash sale at 19:30) under two provisioning policies")
	for _, policy := range []string{"P-Store", "Reactive"} {
		v50, v99, avgMach, moves, err := runPolicy(policy, day, trainFive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s p50 violations %2d, p99 violations %2d, avg machines %.2f, moves %d\n",
			policy, v50, v99, avgMach, moves)
	}
	fmt.Println("\nthe paper's Table 2 shows the same pattern: P-Store provisions ahead of demand and")
	fmt.Println("absorbs surprises with emergency scaling, while the reactive system migrates at peak.")
}

func applyFlashSale(day pstore.Series) (pstore.Series, error) {
	out := day.Clone()
	start := 19*60 + 30
	for i := 0; i < 120 && start+i < out.Len(); i++ {
		boost := 1.8
		if i < 10 {
			boost = 1 + 0.8*float64(i)/10
		}
		out.Values[start+i] *= boost
	}
	return out, nil
}

func runPolicy(policy string, day, trainFive pstore.Series) (v50, v99 int, avgMach float64, moves int, err error) {
	engCfg := pstore.EngineConfig{
		MaxMachines:          8,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      2,
	}

	// Capacity in paper units (requests per trace minute per machine).
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 6 * perMachine * minutePerSlot.Seconds() / day.Max()
	qMax := perMachine * minutePerSlot.Seconds() / rateScale
	model := pstore.MigrationModel{Q: 0.65 / 0.8 * qMax, QMax: qMax, D: 10, P: engCfg.PartitionsPerMachine}

	var ctrl pstore.Controller
	switch policy {
	case "P-Store":
		spar := pstore.NewSPAR(trainFive.Len()/28, 7, 6)
		online := pstore.NewOnlinePredictor(spar, 0, 9*trainFive.Len()/28)
		// Rescale training history into this run's paper units.
		hist := make([]float64, trainFive.Len())
		copy(hist, trainFive.Values)
		if err := online.ObserveAll(hist); err != nil {
			return 0, 0, 0, 0, err
		}
		ctrl = &pstore.PredictiveController{
			Model: model, Predictor: online,
			Horizon: 36, Inflation: 0.15, MaxMachines: engCfg.MaxMachines,
			OnSpike: pstore.SpikeFastRate,
		}
	case "Reactive":
		ctrl = &pstore.ReactiveController{Model: model, MaxMachines: engCfg.MaxMachines}
	}

	spec := pstore.B2WLoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: 5}
	clu, err := pstore.NewCluster(pstore.ClusterConfig{
		Engine:            engCfg,
		Squall:            pstore.DefaultSquallConfig(),
		Controller:        ctrl,
		Cycle:             cycleMinutes * minutePerSlot,
		RateScale:         rateScale,
		CycleTraceMinutes: cycleMinutes,
		RecorderWindow:    300 * time.Millisecond,
		Bootstrap: func(eng *pstore.Engine) error {
			return pstore.LoadB2W(eng, spec)
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := pstore.RegisterB2W(clu.Engine()); err != nil {
		return 0, 0, 0, 0, err
	}

	// Watch the runtime's event stream: every move and emergency is logged
	// as it happens instead of being mined out of counters afterwards.
	events, unsubscribe := clu.Subscribe(1024)
	defer unsubscribe()
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for e := range events {
			switch ev := e.(type) {
			case pstore.MoveStarted, pstore.EmergencyTriggered, pstore.MoveFailed:
				log.Printf("%s: %v", policy, ev)
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := clu.Start(ctx); err != nil {
		return 0, 0, 0, 0, err
	}
	defer clu.Stop()

	driver := &pstore.B2WDriver{Eng: clu.Engine(), Spec: spec, Seed: 6}
	if _, err := driver.Run(ctx, day, minutePerSlot, rateScale); err != nil && ctx.Err() == nil {
		return 0, 0, 0, 0, err
	}
	clu.Stop() // drains in-flight moves and closes the event stream
	watch.Wait()

	rec := clu.Recorder()
	const sloMs = 40
	return rec.SLAViolations(50, sloMs), rec.SLAViolations(99, sloMs),
		rec.AverageMachines(), int(clu.Stats().Moves), nil
}
