// Capacityplanner: offline what-if planning from a historical load trace.
// It fits SPAR on four weeks of history, forecasts the next day at
// five-minute granularity, runs the paper's dynamic-programming planner on
// the forecast, and prints the reconfiguration schedule together with the
// machine-hours saved versus static peak provisioning — the cost argument
// of the paper's introduction.
package main

import (
	"fmt"
	"log"

	"pstore"
)

func main() {
	// Four weeks of history plus the "tomorrow" we pretend not to know.
	trace, err := pstore.SyntheticB2W(pstore.DefaultB2WConfig(42, 29))
	if err != nil {
		log.Fatal(err)
	}
	fiveMin, err := trace.Resample(5)
	if err != nil {
		log.Fatal(err)
	}
	slotsPerDay := 24 * 60 / 5
	history := fiveMin.Values[:28*slotsPerDay]
	actualTomorrow := fiveMin.Values[28*slotsPerDay:]

	// Fit SPAR (n=7 previous days, m=6 recent five-minute offsets) and
	// forecast the whole next day.
	spar := pstore.NewSPAR(slotsPerDay, 7, 6)
	if err := spar.FitHorizons(history, 1, slotsPerDay/4, slotsPerDay/2); err != nil {
		log.Fatal(err)
	}
	forecast := make([]float64, len(actualTomorrow))
	for tau := 1; tau <= len(forecast); tau++ {
		v, err := spar.Forecast(history, tau)
		if err != nil {
			log.Fatal(err)
		}
		if v < 0 {
			v = 0
		}
		forecast[tau-1] = v * 1.15 // the paper's 15% safety inflation
	}
	// Smooth the forecast with a short moving maximum so slot-to-slot
	// wobble does not produce one-interval dips in the offline schedule.
	smoothed := make([]float64, len(forecast))
	for i := range forecast {
		lo, hi := max(i-2, 0), min(i+3, len(forecast))
		for _, v := range forecast[lo:hi] {
			if v > smoothed[i] {
				smoothed[i] = v
			}
		}
	}
	forecast = smoothed
	mre, err := pstore.MRE(actualTomorrow, forecast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPAR day-ahead forecast: MRE %.1f%% against what actually happened\n", mre*100)

	// Capacity model in requests/minute per machine, the paper's discovered
	// parameters scaled to this trace: peak needs ~8.6 machines at Q-hat.
	peak := 0.0
	for _, v := range history {
		if v > peak {
			peak = v
		}
	}
	model := pstore.MigrationModel{
		Q:    peak / 8.57 / 1.23, // Q = 65% of saturation, Q-hat = 80%
		QMax: peak / 8.57,
		D:    77.0 / 5, // the paper's 77-minute D in 5-minute intervals
		P:    6,
	}

	// Plan tomorrow's reconfiguration schedule.
	n0 := model.MachinesFor(forecast[0])
	pl := pstore.Planner{Model: model}
	plan, err := pl.BestMoves(forecast, n0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntomorrow's schedule (starting from %d machines):\n", n0)
	for _, mv := range plan.Moves {
		if !mv.IsReconfiguration() {
			continue
		}
		fmt.Printf("  %02d:%02d  scale %d -> %d machines\n",
			mv.Start*5/60, mv.Start*5%60, mv.From, mv.To)
	}

	staticMachines := model.MachinesFor(peak)
	staticCost := float64(staticMachines * len(forecast))
	fmt.Printf("\npredictive cost: %.0f machine-intervals\n", plan.Cost)
	fmt.Printf("static-for-peak: %.0f machine-intervals (%d machines all day)\n",
		staticCost, staticMachines)
	fmt.Printf("savings: %.0f%% — the paper reports roughly 50%% fewer servers than peak provisioning\n",
		100*(1-plan.Cost/staticCost))
}
