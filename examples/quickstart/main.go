// Quickstart: bring up the storage engine, run the B2W retail benchmark on
// it, and let P-Store's predictive controller scale the cluster through one
// compressed day of diurnal load — the core loop of the paper in ~150 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"pstore"
)

func main() {
	// 1. A small cluster: up to 5 machines, 4 partitions each.
	cfg := pstore.EngineConfig{
		MaxMachines:          5,
		PartitionsPerMachine: 4,
		Buckets:              400,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 14,
		InitialMachines:      1,
	}
	eng, err := pstore.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pstore.RegisterB2W(eng); err != nil {
		log.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	spec := pstore.B2WLoadSpec{Carts: 2000, Checkouts: 500, Stocks: 1000, LinesPerCart: 3, Seed: 1}
	if err := pstore.LoadB2W(eng, spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows across %d machines\n", eng.TotalRows(), eng.ActiveMachines())

	// 2. A live migration executor (Squall) over the engine.
	sq, err := pstore.NewSquall(eng, pstore.DefaultSquallConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. A one-day diurnal trace, compressed so one trace-minute lasts
	// 8 ms: the whole day replays in about 12 seconds.
	trace, err := pstore.SyntheticB2W(pstore.DefaultB2WConfig(7, 1))
	if err != nil {
		log.Fatal(err)
	}
	const minutePerSlot = 8 * time.Millisecond
	// Scale the trace so its peak needs ~4 of our 5 machines.
	perMachine := 0.8 * float64(cfg.PartitionsPerMachine) / cfg.ServiceTime.Seconds()
	rateScale := 4 * perMachine * minutePerSlot.Seconds() / trace.Max()

	// 4. P-Store's predictive controller. For a short demo we use an
	// oracle predictor (the paper's upper bound); swap in NewSPAR with
	// four weeks of history for real forecasting. The controller observes
	// the load once per five trace-minutes, so the oracle's trace must be
	// at the same five-minute granularity.
	model := pstore.MigrationModel{
		Q:    0.65 * perMachine * minutePerSlot.Seconds() / rateScale,
		QMax: 0.8 * perMachine * minutePerSlot.Seconds() / rateScale,
		D:    4, // full-DB migration time, in 5-minute planning intervals
		P:    cfg.PartitionsPerMachine,
	}
	fiveMin, err := trace.Resample(5)
	if err != nil {
		log.Fatal(err)
	}
	oracle := pstore.NewOnlinePredictor(pstore.NewOracle(fiveMin.Values), 0, 0)
	if err := oracle.ObserveAll(nil); err != nil {
		log.Fatal(err)
	}
	ctrl := &pstore.PredictiveController{
		Model:       model,
		Predictor:   oracle,
		Horizon:     24,
		Inflation:   0.10,
		MaxMachines: cfg.MaxMachines,
	}

	// 5. Control loop: every 5 trace-minutes, observe load and maybe move.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * minutePerSlot)
		defer ticker.Stop()
		last := eng.Counters().Submitted
		var moving atomic.Bool
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			sub := eng.Counters().Submitted
			load := float64(sub-last) / rateScale / 5 // requests per trace-minute
			last = sub
			busy := moving.Load() || sq.InProgress()
			dec, err := ctrl.Tick(eng.ActiveMachines(), busy, load)
			if err != nil || dec == nil || busy {
				continue
			}
			from := eng.ActiveMachines()
			fmt.Printf("t+%5.1fs  load %7.0f req/min -> reconfigure %d -> %d machines\n",
				time.Since(start).Seconds(), load, from, dec.Target)
			moving.Store(true)
			go func(to int, rate float64) {
				defer moving.Store(false)
				if err := sq.Reconfigure(from, to, rate); err != nil {
					log.Printf("reconfigure: %v", err)
				}
			}(dec.Target, dec.RateFactor)
		}
	}()

	// 6. Replay the day.
	driver := &pstore.B2WDriver{Eng: eng, Spec: spec, Seed: 2}
	stats, err := driver.Run(ctx, trace, minutePerSlot, rateScale)
	cancel()
	wg.Wait()
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	counters := eng.Counters()
	fmt.Printf("\nday replayed: %d transactions executed (%d business errors), %d completed OK\n",
		stats.Executed, stats.Failed, counters.Completed)
	fmt.Printf("final cluster size: %d machines, %d rows intact (%d forwarded mid-move)\n",
		eng.ActiveMachines(), eng.TotalRows(), counters.Forwarded)
}

var start = time.Now()
