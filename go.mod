module pstore

go 1.22
