package pstore_test

import (
	"context"
	"testing"
	"time"

	"pstore"
)

// TestPublicAPIEndToEnd drives the whole public surface the way a
// downstream user would: engine + benchmark + live migration + predictive
// planning, at a tiny scale.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := pstore.EngineConfig{
		MaxMachines:          3,
		PartitionsPerMachine: 2,
		Buckets:              120,
		ServiceTime:          0,
		QueueCapacity:        4096,
		InitialMachines:      1,
	}
	eng, err := pstore.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pstore.RegisterB2W(eng); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	spec := pstore.B2WLoadSpec{Carts: 300, Checkouts: 80, Stocks: 150, LinesPerCart: 2, Seed: 1}
	if err := pstore.LoadB2W(eng, spec); err != nil {
		t.Fatal(err)
	}
	if rows := eng.TotalRows(); rows != 530 {
		t.Fatalf("loaded %d rows, want 530", rows)
	}

	// Live migration through the facade.
	sq, err := pstore.NewSquall(eng, pstore.DefaultSquallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sq.Reconfigure(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if eng.ActiveMachines() != 3 {
		t.Fatalf("ActiveMachines = %d, want 3", eng.ActiveMachines())
	}
	if rows := eng.TotalRows(); rows != 530 {
		t.Fatalf("rows after migration = %d, want 530", rows)
	}

	// Replay a short trace through the benchmark driver.
	trace, err := pstore.SyntheticB2W(pstore.DefaultB2WConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	short := trace.Slice(0, 30)
	driver := &pstore.B2WDriver{Eng: eng, Spec: spec, Seed: 2}
	stats, err := driver.Run(context.Background(), short, 2*time.Millisecond, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed == 0 {
		t.Fatal("driver executed nothing")
	}

	// Forecast and plan through the facade.
	day := 48
	vals := make([]float64, 8*day)
	for i := range vals {
		vals[i] = 100 + 80*float64(i%day)/float64(day)
	}
	spar := pstore.NewSPAR(day, 3, 4)
	if err := spar.Fit(vals[:6*day]); err != nil {
		t.Fatal(err)
	}
	forecast := make([]float64, day)
	for tau := 1; tau <= day; tau++ {
		v, err := spar.Forecast(vals[:7*day], tau)
		if err != nil {
			t.Fatal(err)
		}
		forecast[tau-1] = v
	}
	mre, err := pstore.MRE(vals[7*day:8*day], forecast)
	if err != nil {
		t.Fatal(err)
	}
	if mre > 0.05 {
		t.Errorf("SPAR MRE %.3f on a deterministic ramp, want near zero", mre)
	}

	model := pstore.MigrationModel{Q: 100, QMax: 130, D: 4, P: 2}
	pl := pstore.Planner{Model: model}
	plan, err := pl.BestMoves(forecast, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FinalMachines < 1 {
		t.Fatalf("plan ends with %d machines", plan.FinalMachines)
	}

	// Schedules and experiment registry round out the surface.
	sched, err := pstore.BuildSchedule(3, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumRounds() != 11 {
		t.Errorf("3->14 schedule has %d rounds, want 11", sched.NumRounds())
	}
	if len(pstore.Experiments()) < 15 {
		t.Errorf("only %d experiments registered", len(pstore.Experiments()))
	}
	if _, err := pstore.RunExperiment("table1", pstore.ExperimentOptions{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeCluster drives the cluster runtime through the facade: build,
// bootstrap, manual move, event stream, stats, stop.
func TestFacadeCluster(t *testing.T) {
	spec := pstore.B2WLoadSpec{Carts: 300, Checkouts: 80, Stocks: 150, LinesPerCart: 2, Seed: 1}
	clu, err := pstore.NewCluster(pstore.ClusterConfig{
		Engine: pstore.EngineConfig{
			MaxMachines:          3,
			PartitionsPerMachine: 2,
			Buckets:              120,
			ServiceTime:          0,
			QueueCapacity:        4096,
			InitialMachines:      1,
		},
		Squall:         pstore.DefaultSquallConfig(),
		RecorderWindow: 50 * time.Millisecond,
		Bootstrap: func(eng *pstore.Engine) error {
			return pstore.LoadB2W(eng, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pstore.RegisterB2W(clu.Engine()); err != nil {
		t.Fatal(err)
	}
	events, unsubscribe := clu.Subscribe(64)
	defer unsubscribe()
	if err := clu.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer clu.Stop()

	if rows := clu.Engine().TotalRows(); rows != 530 {
		t.Fatalf("bootstrap loaded %d rows, want 530", rows)
	}
	if err := clu.Reconfigure(3, 0); err != nil {
		t.Fatal(err)
	}
	if clu.Engine().ActiveMachines() != 3 {
		t.Fatalf("ActiveMachines = %d, want 3", clu.Engine().ActiveMachines())
	}
	if st := clu.Stats(); st.Moves != 1 {
		t.Fatalf("stats %+v, want 1 move", st)
	}
	start := <-events
	if mv, ok := start.(pstore.MoveStarted); !ok || mv.From != 1 || mv.To != 3 {
		t.Fatalf("first event %v, want MoveStarted 1->3", start)
	}
	finish := <-events
	if mv, ok := finish.(pstore.MoveFinished); !ok || mv.Seq != 1 {
		t.Fatalf("second event %v, want successful MoveFinished", finish)
	}
	if rec := clu.Recorder(); rec == nil {
		t.Fatal("no recorder")
	}
	clu.Stop()
	if _, open := <-events; open {
		t.Error("event stream not closed by Stop")
	}
}

// TestFacadeControllers exercises the controller types through the facade.
func TestFacadeControllers(t *testing.T) {
	model := pstore.MigrationModel{Q: 100, QMax: 130, D: 4, P: 2}
	trace := make([]float64, 60)
	for i := range trace {
		trace[i] = 150
	}
	oracle := pstore.NewOnlinePredictor(pstore.NewOracle(trace), 0, 0)
	if err := oracle.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	ctrl := &pstore.PredictiveController{Model: model, Predictor: oracle, Horizon: 10}
	d, err := ctrl.Tick(2, false, 150)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil && d.Target < 1 {
		t.Errorf("bad decision %+v", d)
	}
	var static pstore.StaticController
	if d, err := static.Tick(1, false, 1e9); err != nil || d != nil {
		t.Errorf("static controller decided: %v, %v", d, err)
	}

	// And the simulator.
	s := &pstore.Simulator{Model: model}
	res, err := s.Run(trace, static, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 120 {
		t.Errorf("static sim cost %v, want 120", res.Cost)
	}
}
