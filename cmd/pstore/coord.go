package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
)

// runCoord is the migration coordinator: it executes a scripted sequence of
// Squall reconfigurations — optionally under chunk faults, network faults and
// a mid-script machine crash — against either a multi-process cluster of
// pstore serve -node processes (-peers) or a single-process engine loaded
// with the same dataset (no -peers; the reference oracle). Both modes run
// the identical decision sequence, so the printed fingerprint over the step
// outcomes and the final placement must match between them — that is the
// shared-nothing refactor's parity contract, checked in CI.
func runCoord(args []string) error {
	fs := newFlagSet("coord")
	peerList := fs.String("peers", "", "comma-separated node base URLs in node-id order (empty = run the single-process oracle)")
	maxM := fs.Int("max", 8, "maximum machine count (must match the nodes' -max)")
	initial := fs.Int("machines", 2, "initial machine count (must match the nodes' -machines)")
	seed := fs.Int64("seed", 1, "b2w dataset seed (single-process mode; must match the nodes' -seed)")
	migrate := fs.String("migrate", "", "comma-separated machine-count targets executed in order, e.g. 4,1 (required)")
	rate := fs.Float64("rate", 1, "migration rate factor")
	faultSpec := fs.String("faults", "", "chunk fault spec, e.g. seed=42,chunk-drop=0.5")
	netSpec := fs.String("net-faults", "", "network fault spec, e.g. seed=7,link-drop=0.1,link-dup=0.5 (multi-process only)")
	crashMachine := fs.Int("crash-machine", -1, "machine to crash before -crash-step (restored and the step re-run after the first attempt)")
	crashStep := fs.Int("crash-step", 0, "1-based index into -migrate before which -crash-machine crashes")
	connectWait := fs.Duration("connect-wait", 30*time.Second, "how long to wait for every node to answer health checks")
	shutdownNodes := fs.Bool("shutdown-nodes", false, "ask every node to shut down after the script completes")
	failover := fs.Int("failover", -1, "watch node N for failure and run one recovery action (-promote or -restart-cmd) when it fires; -migrate becomes optional")
	probe := fs.Duration("probe", 100*time.Millisecond, "failover health-probe period")
	failAfter := fs.Int("fail-after", 3, "consecutive failed probes that declare the watched node dead")
	promoteURL := fs.String("promote", "", "failover action: promote the warm follower at this base URL and rewire the survivors to it (with -restart-cmd: then restart the dead node and rejoin it as the promoted node's follower)")
	restartCmd := fs.String("restart-cmd", "", "failover action: shell command that cold-restarts the dead node from its own -data-dir")
	failoverWait := fs.Duration("failover-wait", 2*time.Minute, "give up if the watched node has not failed after this long")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *failover >= 0 {
		if *peerList == "" {
			return errors.New("-failover needs a multi-process cluster (-peers)")
		}
		return runCoordFailover(coordFailoverConfig{
			peers: *peerList, watch: *failover,
			probe: *probe, failAfter: *failAfter, wait: *failoverWait,
			promoteURL: *promoteURL, restartCmd: *restartCmd,
			connectWait: *connectWait,
		})
	}
	if *migrate == "" {
		return errors.New("-migrate is required")
	}
	var steps []int
	for _, s := range strings.Split(*migrate, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -migrate step %q", s)
		}
		steps = append(steps, n)
	}
	if (*crashMachine >= 0) != (*crashStep >= 1) {
		return errors.New("-crash-machine and -crash-step must be set together")
	}
	if *crashStep > len(steps) {
		return fmt.Errorf("-crash-step %d exceeds the %d migrate steps", *crashStep, len(steps))
	}

	var topo transport.Topology
	var remote *transport.Remote
	if *peerList == "" {
		local, err := coordLocalTopology(*maxM, *initial, *seed)
		if err != nil {
			return err
		}
		topo = local
		defer local.Engine.Stop()
		fmt.Fprintf(os.Stderr, "coord: single-process oracle, %d rows on %d machines\n",
			topo.TotalRows(), topo.ActiveMachines())
	} else {
		urls := strings.Split(*peerList, ",")
		peers := make([]*transport.Peer, len(urls))
		for i, u := range urls {
			peers[i] = transport.NewPeer(strings.TrimSpace(u))
		}
		ctx, cancel := context.WithTimeout(context.Background(), *connectWait+5*time.Second)
		defer cancel()
		for i, p := range peers {
			if err := p.WaitHealthy(ctx, *connectWait); err != nil {
				return fmt.Errorf("node %d: %w", i, err)
			}
			st, err := p.Status(ctx)
			if err != nil {
				return fmt.Errorf("node %d status: %w", i, err)
			}
			if st.WALError != "" {
				// The node answers but has latched a durable-log failure:
				// treating it as healthy would migrate data onto a machine
				// that cannot promise durability.
				return fmt.Errorf("node %d reports a failed WAL: %s", i, st.WALError)
			}
		}
		r, err := transport.NewRemote(context.Background(), peers)
		if err != nil {
			return err
		}
		defer r.Close()
		remote = r
		topo = r
		fmt.Fprintf(os.Stderr, "coord: %d nodes, %d rows on %d machines\n",
			len(peers), topo.TotalRows(), topo.ActiveMachines())
	}

	var inj *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		if inj, err = faults.New(fcfg); err != nil {
			return err
		}
		topo.SetFaultInjector(inj)
		fmt.Fprintf(os.Stderr, "coord: fault plane armed: %s\n", fcfg)
	}
	var net *faults.NetInjector
	if *netSpec != "" {
		if remote == nil {
			return errors.New("-net-faults needs a multi-process cluster: network faults have no single-process equivalent")
		}
		ncfg, err := faults.ParseNet(*netSpec)
		if err != nil {
			return err
		}
		if net, err = faults.NewNet(ncfg); err != nil {
			return err
		}
		remote.SetNetInjector(net)
		fmt.Fprintf(os.Stderr, "coord: network fault plane armed: %s\n", ncfg)
	}

	sqCfg := squall.DefaultConfig()
	ex, err := squall.NewExecutor(topo, sqCfg)
	if err != nil {
		return err
	}

	// The fingerprint folds in every step's outcome class and the final
	// placement; single-process and multi-process runs of the same script
	// must print the same value.
	fp := fnv.New64a()
	for i, target := range steps {
		if *crashMachine >= 0 && *crashStep == i+1 {
			if err := topo.Crash(*crashMachine); err != nil {
				return fmt.Errorf("step %d: crashing machine %d: %w", i+1, *crashMachine, err)
			}
			outcome := fmt.Sprintf("crash machine %d", *crashMachine)
			fmt.Printf("coord: step %d: %s (down: %v)\n", i+1, outcome, topo.DownMachines())
			fp.Write([]byte(outcome))
		}
		from := topo.ActiveMachines()
		outcome := coordStep(topo, ex, target, *rate)
		fmt.Printf("coord: step %d: %d -> %d machines: %s\n", i+1, from, target, outcome)
		fp.Write([]byte(outcome))
		if *crashMachine >= 0 && *crashStep == i+1 {
			st, err := topo.Restore(*crashMachine)
			if err != nil {
				return fmt.Errorf("step %d: restoring machine %d: %w", i+1, *crashMachine, err)
			}
			fmt.Printf("coord: step %d: restored machine %d (%d snapshots, %d replayed)\n",
				i+1, *crashMachine, st.Snapshots, st.Replayed)
			fp.Write([]byte(fmt.Sprintf("restore machine %d", *crashMachine)))
			outcome = coordStep(topo, ex, target, *rate)
			fmt.Printf("coord: step %d (retry): -> %d machines: %s\n", i+1, target, outcome)
			fp.Write([]byte(outcome))
		}
	}

	st := ex.Stats()
	fmt.Printf("coord: migration: %d chunks moved, %d retries, %d aborts, %d chunks rolled back\n",
		st.ChunksMoved, st.Retries, st.Aborts, st.RollbackChunks)
	if inj != nil {
		ist := inj.Stats()
		fmt.Printf("coord: faults: %d offered, %d dropped, %d crashed, %d slowed, %d stalled\n",
			ist.Offered, ist.Drops, ist.Crashes, ist.Slows, ist.Stalls)
	}
	if net != nil {
		nst := net.Stats()
		fmt.Printf("coord: net faults: %d links, %d dropped, %d duplicated, %d reordered, %d slowed\n",
			nst.Offered, nst.Drops, nst.Dups, nst.Reorders, nst.Slows)
	}
	for _, b := range topo.Plan() {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(b))
		fp.Write(buf[:])
	}
	rows := topo.TotalRows()
	fmt.Fprintf(os.Stderr, "coord: script done: %d machines, %d rows\n", topo.ActiveMachines(), rows)
	fmt.Printf("coord: fingerprint %016x rows %d machines %d\n", fp.Sum64(), rows, topo.ActiveMachines())
	if remote != nil {
		if n := remote.FlipErrors(); n > 0 {
			return fmt.Errorf("%d ownership-flip broadcasts failed; node plans may have diverged", n)
		}
	}
	if *shutdownNodes && remote != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i, p := range remote.Peers() {
			if err := p.Shutdown(ctx); err != nil {
				return fmt.Errorf("shutting down node %d: %w", i, err)
			}
		}
		fmt.Fprintln(os.Stderr, "coord: node shutdown requested")
	}
	return nil
}

// coordFailoverConfig carries the coord flags for a failover watch.
type coordFailoverConfig struct {
	peers       string
	watch       int
	probe       time.Duration
	failAfter   int
	wait        time.Duration
	promoteURL  string
	restartCmd  string
	connectWait time.Duration
}

// coordFailoverOutcome is the machine-readable summary a failover watch
// prints as one JSON line ("coord: failover-outcome {...}") after its
// recovery action completes, so scripts and CI assert on structure instead
// of scraping prose. Millisecond fields are zero when the action skipped
// that stage.
type coordFailoverOutcome struct {
	// Action is "promote", "restart", or "promote+rejoin" (both flags
	// given: promote the follower, then restart the dead node and fold it
	// back in as a follower of the promoted one).
	Action string `json:"action"`
	// Node is the watched (failed) node id.
	Node int `json:"node"`
	// Epoch is the promoted node's epoch after the failover (promote paths).
	Epoch     uint64  `json:"epoch,omitempty"`
	DetectMs  float64 `json:"detect_ms"`
	PromoteMs float64 `json:"promote_ms,omitempty"`
	RestartMs float64 `json:"restart_ms,omitempty"`
	RejoinMs  float64 `json:"rejoin_ms,omitempty"`
}

// runCoordFailover is the coordinator's failure-detection loop: probe one
// node's health endpoint until a deterministic number of consecutive
// probes fail, then run one recovery action — promote the dead node's warm
// follower (fenced under a fresh epoch, survivors rewired), cold-restart
// the process from its own data directory, or both in sequence: promote,
// restart the zombie, and rejoin it as the new primary's follower.
func runCoordFailover(cfg coordFailoverConfig) error {
	urls := strings.Split(cfg.peers, ",")
	if cfg.watch >= len(urls) {
		return fmt.Errorf("-failover %d out of range for %d peers", cfg.watch, len(urls))
	}
	if cfg.promoteURL == "" && cfg.restartCmd == "" {
		return errors.New("-failover needs a recovery action: -promote, -restart-cmd, or both")
	}
	peers := make([]*transport.Peer, len(urls))
	for i, u := range urls {
		peers[i] = transport.NewPeer(strings.TrimSpace(u))
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.wait+cfg.connectWait)
	defer cancel()
	fmt.Fprintf(os.Stderr, "coord: watching node %d (%s): probe %v, dead after %d failures\n",
		cfg.watch, peers[cfg.watch].Addr(), cfg.probe, cfg.failAfter)
	det, err := cluster.DetectFailure(ctx, peers[cfg.watch], cluster.DetectorConfig{
		Probe: cfg.probe, FailAfter: cfg.failAfter,
	})
	if err != nil {
		return fmt.Errorf("failure detection: %w", err)
	}
	out := coordFailoverOutcome{
		Node:     cfg.watch,
		DetectMs: float64(det.Microseconds()) / 1000,
	}
	fmt.Printf("coord: node %d declared dead after %v\n", cfg.watch, det.Round(time.Millisecond))

	// The recovery actions run on their own clock: detection may have eaten
	// most of the watch budget, and a restart + rejoin legitimately takes a
	// while on a large log.
	actx, acancel := context.WithTimeout(context.Background(), cfg.connectWait+5*time.Minute)
	defer acancel()

	if cfg.promoteURL == "" {
		out.Action = "restart"
		start := time.Now()
		if err := cluster.RestartNode(actx, peers[cfg.watch], cfg.restartCmd, cfg.connectWait); err != nil {
			return err
		}
		out.RestartMs = float64(time.Since(start).Microseconds()) / 1000
		fmt.Printf("coord: node %d restarted and healthy in %v\n", cfg.watch, time.Since(start).Round(time.Millisecond))
		return printFailoverOutcome(out)
	}

	replica := transport.NewPeer(strings.TrimSpace(cfg.promoteURL))
	survivors := make(map[int]*transport.Peer)
	for i, p := range peers {
		if i != cfg.watch {
			survivors[i] = p
		}
	}
	out.Action = "promote"
	start := time.Now()
	st, err := cluster.Promote(actx, cluster.PromoteConfig{
		Replica:    replica,
		ReplicaURL: replica.Addr(),
		FailedNode: cfg.watch,
		Survivors:  survivors,
	})
	if err != nil {
		return err
	}
	out.Epoch = st.Epoch
	out.PromoteMs = float64(time.Since(start).Microseconds()) / 1000
	fmt.Printf("coord: follower %s promoted to %s at epoch %d in %v (%d survivors rewired)\n",
		replica.Addr(), st.Role, st.Epoch, time.Since(start).Round(time.Millisecond), len(survivors))

	if cfg.restartCmd != "" {
		out.Action = "promote+rejoin"
		start = time.Now()
		if err := cluster.RestartNode(actx, peers[cfg.watch], cfg.restartCmd, cfg.connectWait); err != nil {
			return err
		}
		out.RestartMs = float64(time.Since(start).Microseconds()) / 1000
		fmt.Printf("coord: node %d restarted and healthy in %v\n", cfg.watch, time.Since(start).Round(time.Millisecond))
		start = time.Now()
		zst, err := cluster.Rejoin(actx, cluster.RejoinConfig{
			Zombie:     peers[cfg.watch],
			Primary:    replica,
			PrimaryURL: replica.Addr(),
		})
		if err != nil {
			return err
		}
		out.RejoinMs = float64(time.Since(start).Microseconds()) / 1000
		fmt.Printf("coord: node %d rejoined as %s of %s at epoch %d in %v (applied segment %d record %d)\n",
			cfg.watch, zst.Role, replica.Addr(), zst.Epoch, time.Since(start).Round(time.Millisecond),
			zst.Applied.Seg, zst.Applied.Rec)
	}
	return printFailoverOutcome(out)
}

// printFailoverOutcome emits the one-line JSON summary of a failover watch.
func printFailoverOutcome(out coordFailoverOutcome) error {
	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	fmt.Printf("coord: failover-outcome %s\n", b)
	return nil
}

// coordStep runs one reconfiguration and classifies its outcome exactly the
// way the parity test suites do: ok, a rolled-back abort, or an upfront
// refusal — with the wire code, so the class (and the fingerprint) is
// identical whether the cause crossed a network or not.
func coordStep(topo transport.Topology, ex *squall.Executor, target int, rate float64) string {
	from := topo.ActiveMachines()
	if from == target {
		return "no-op"
	}
	err := ex.Reconfigure(from, target, rate)
	if err == nil {
		return "ok"
	}
	var me *squall.MoveError
	if errors.As(err, &me) {
		if !me.RolledBack {
			return fmt.Sprintf("abort without rollback (%s)", wire.CodeOf(me.Cause))
		}
		return fmt.Sprintf("abort (%s)", wire.CodeOf(me.Cause))
	}
	return fmt.Sprintf("refused (%s)", wire.CodeOf(err))
}

// coordLocalTopology builds the single-process oracle: one engine hosting
// every machine, loaded with the b2w dataset the nodes load, wrapped with an
// in-process recovery manager so the crash script works identically.
func coordLocalTopology(maxM, initial int, seed int64) (*transport.Local, error) {
	engCfg := store.Config{
		MaxMachines:          maxM,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      initial,
	}
	eng, err := store.NewEngine(engCfg)
	if err != nil {
		return nil, err
	}
	if err := b2w.Register(eng); err != nil {
		return nil, err
	}
	rm := recovery.NewManager(eng)
	eng.Start()
	spec := b2w.LoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: seed}
	if err := b2w.Load(eng, spec); err != nil {
		eng.Stop()
		return nil, err
	}
	if _, err := rm.Checkpoint(); err != nil {
		eng.Stop()
		return nil, err
	}
	return transport.NewLocal(eng, rm), nil
}
