package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/elastic"
	"pstore/internal/faults"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/predictor"
	"pstore/internal/server"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/workload"
)

// serveInfo is the trace contract a listening server publishes at /v1/info:
// everything a separate driver process needs to regenerate the exact same
// replay (series, pacing, key pools) without sharing any files with the
// server. Both serve and drive derive their workload from these fields, so
// the two processes stay in lockstep by construction.
type serveInfo struct {
	Seed         int64   `json:"seed"`
	Days         int     `json:"days"`
	MinuteMs     float64 `json:"minute_ms"`
	RateScale    float64 `json:"rate_scale"`
	DeadlineMs   float64 `json:"deadline_ms"`
	Carts        int     `json:"carts"`
	Checkouts    int     `json:"checkouts"`
	Stocks       int     `json:"stocks"`
	LinesPerCart int     `json:"lines_per_cart"`
	// The armed chaos planes, as their canonical spec strings, so a driver
	// (or an operator with curl) can see exactly what a server is running
	// without access to its command line.
	Faults   string `json:"faults,omitempty"`
	Crash    string `json:"crash,omitempty"`
	Overload string `json:"overload,omitempty"`
	// Node identity in multi-process mode; Nodes is 0 on a single-process
	// server.
	Node  int `json:"node,omitempty"`
	Nodes int `json:"nodes,omitempty"`
}

func runServe(args []string) error {
	fs := newFlagSet("serve")
	days := fs.Int("days", 1, "days to replay after the 28-day training window")
	policy := fs.String("controller", "pstore", "provisioning controller: pstore, reactive, static")
	initial := fs.Int("machines", 2, "initial machine count")
	maxM := fs.Int("max", 8, "maximum machine count")
	minute := fs.Duration("minute", 10*time.Millisecond, "wall time per trace minute")
	cycleMin := fs.Int("cycle", 5, "controller cycle in trace minutes")
	seed := fs.Int64("seed", 1, "random seed")
	sloMs := fs.Float64("slo", 40, "latency SLO in ms on this substrate")
	faultSpec := fs.String("faults", "", "fault-injection spec, e.g. seed=42,chunk-drop=0.05 (keys: seed, chunk-drop, chunk-slow, slow-delay, stall, stall-delay, crash-pair=F:T, crash-part=N)")
	crashSpec := fs.String("crash", "", "machine-crash schedule, e.g. seed=42,rate=0.02,downtime=4,at=1@10+5 (keys: seed, rate, downtime, at=M@T[+D] in controller cycles)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint the recovery command log every N controller cycles (0 = 10 when -crash is set)")
	dataDir := fs.String("data-dir", "", "durable storage directory: command log becomes an on-disk WAL with checkpoint images; an existing directory cold-starts the engine from disk instead of loading fresh data")
	deadline := fs.Duration("deadline", 0, "per-request deadline arming admission control and queue-deadline enforcement (0 = off)")
	overloadSpec := fs.String("overload", "", "overload-plane spec, e.g. deadline=50ms,target=5ms,interval=100ms,track=true (shorthand: -deadline)")
	listen := fs.String("listen", "", "serve remote clients on this address (host:port) instead of driving the trace in-process")
	serveFor := fs.Duration("serve-for", 0, "with -listen: stop after this long (0 = until SIGINT/SIGTERM or POST /v1/shutdown)")
	quiet := fs.Bool("quiet", false, "suppress the live event log")
	node := fs.Int("node", -1, "run as node N of a multi-process cluster (requires -nodes and -listen; migration and crashes are driven by pstore coord)")
	nodes := fs.Int("nodes", 0, "total node count in multi-process mode")
	peerList := fs.String("peers", "", "comma-separated node base URLs in node-id order, for forwarding transactions to the hosting node")
	replicaOf := fs.String("replica-of", "", "node mode: start as a warm follower of the primary at this base URL — sync a snapshot, apply its shipped WAL, refuse client transactions until promoted via /v1/repl/promote")
	advertise := fs.String("advertise", "", "node mode: base URL the primary and peers use to reach this process (default derives from -listen)")
	shipFaults := fs.String("ship-faults", "", "replication-stream fault spec applied by this node's WAL shipper, e.g. seed=42,ship-drop=0.05,ship-dup=0.1,ship-reorder=0.05,ship-delay=0.1,ship-partition=0.02,heal-after=500ms")
	syncCommit := fs.Bool("sync-commit", false, "node mode: acknowledge a transaction only after its WAL record is durable on the follower too (RPO zero for acked transactions; adds one ship round trip to commit latency)")
	followerCkpt := fs.Int("follower-checkpoint-every", 0, "node mode: as a replica, checkpoint the local WAL every N applied records so a promotion starts from a compact log (0 = off)")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *days < 1 || *initial < 1 || *maxM < *initial || *cycleMin < 1 || *minute <= 0 {
		return errors.New("invalid sizing flags")
	}
	if *node < 0 && (*replicaOf != "" || *shipFaults != "" || *syncCommit || *followerCkpt != 0) {
		return errors.New("-replica-of, -ship-faults, -sync-commit and -follower-checkpoint-every require node mode (-node)")
	}
	if *followerCkpt < 0 {
		return errors.New("-follower-checkpoint-every must be non-negative")
	}
	if *node >= 0 {
		if *faultSpec != "" || *crashSpec != "" {
			return errors.New("-faults and -crash are coordinator-side in multi-process mode; pass them to pstore coord")
		}
		return runServeNode(serveNodeConfig{
			node: *node, nodes: *nodes, peers: *peerList,
			days: *days, minute: *minute, seed: *seed,
			initial: *initial, maxM: *maxM,
			deadline: *deadline, overloadSpec: *overloadSpec,
			listen: *listen, serveFor: *serveFor,
			dataDir:   *dataDir,
			replicaOf: *replicaOf, advertise: *advertise, shipFaults: *shipFaults,
			syncCommit: *syncCommit, followerCkptEvery: *followerCkpt,
		})
	}

	// Training month plus the replayed day(s).
	full, err := workload.SyntheticB2W(workload.DefaultB2WConfig(*seed, 28+*days))
	if err != nil {
		return err
	}
	train := full.Slice(0, 28*workload.MinutesPerDay)
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())

	olCfg, err := store.ParseOverload(*overloadSpec)
	if err != nil {
		return err
	}
	if *deadline < 0 {
		return fmt.Errorf("negative -deadline %v", *deadline)
	}
	if *deadline > 0 {
		olCfg.Deadline = *deadline
	}
	engCfg := store.Config{
		MaxMachines:          *maxM,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      *initial,
		Overload:             olCfg,
	}
	if olCfg.Enabled() {
		fmt.Fprintf(os.Stderr, "serve: overload plane armed: %s\n", olCfg)
	}
	// Size the trace so its peak demands ~3/4 of the cluster at Q-hat.
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 0.75 * float64(*maxM) * perMachine * minute.Seconds() / replay.Max()
	qMax := perMachine * minute.Seconds() / rateScale
	model := migration.Model{Q: 0.65 / 0.8 * qMax, QMax: qMax, D: 10, P: engCfg.PartitionsPerMachine}

	var ctrl elastic.Controller
	switch *policy {
	case "pstore":
		cycleTrain, err := train.Resample(*cycleMin)
		if err != nil {
			return err
		}
		period := workload.MinutesPerDay / *cycleMin
		spar := predictor.NewSPAR(period, 7, 6)
		online := predictor.NewOnline(spar, 0, 9*period)
		if err := online.ObserveAll(cycleTrain.Values); err != nil {
			return err
		}
		ctrl = &elastic.Predictive{
			Model: model, Predictor: online,
			Horizon: 36, Inflation: 0.15, ScaleInConfirm: 6,
			MaxMachines: *maxM, OnSpike: elastic.SpikeFastRate,
		}
	case "reactive":
		ctrl = &elastic.Reactive{Model: model, MaxMachines: *maxM}
	case "static":
		ctrl = nil
	default:
		return fmt.Errorf("unknown controller %q", *policy)
	}

	var inj *faults.Injector
	var faultsStr, crashStr string
	if *faultSpec != "" {
		fcfg, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		if inj, err = faults.New(fcfg); err != nil {
			return err
		}
		faultsStr = fcfg.String()
		fmt.Fprintf(os.Stderr, "serve: fault plane armed: %s\n", fcfg)
	}
	var crash *faults.CrashSchedule
	if *crashSpec != "" {
		cs, err := faults.ParseCrash(*crashSpec)
		if err != nil {
			return err
		}
		crash = &cs
		crashStr = cs.String()
		fmt.Fprintf(os.Stderr, "serve: crash plane armed: %s\n", cs)
	}

	spec := b2w.LoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: *seed}
	clusterCfg := cluster.Config{
		Engine:            engCfg,
		Squall:            squall.DefaultConfig(),
		Controller:        ctrl,
		Cycle:             time.Duration(*cycleMin) * *minute,
		RateScale:         rateScale,
		CycleTraceMinutes: float64(*cycleMin),
		RecorderWindow:    300 * time.Millisecond,
		Bootstrap: func(eng *store.Engine) error {
			return b2w.Load(eng, spec)
		},
		Crash:           crash,
		CheckpointEvery: *ckptEvery,
		DataDir:         *dataDir,
	}
	if inj != nil {
		clusterCfg.FaultInjector = inj
	}
	c, err := cluster.New(clusterCfg)
	if err != nil {
		return err
	}
	if err := b2w.Register(c.Engine()); err != nil {
		return err
	}

	events, unsubscribe := c.Subscribe(4096)
	defer unsubscribe()
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for e := range events {
			switch e.(type) {
			case cluster.LoadObserved:
				// Per-cycle observations are too chatty for the log.
			default:
				if !*quiet {
					fmt.Fprintf(os.Stderr, "serve: %v\n", e)
				}
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		return err
	}
	defer c.Stop()
	if cs := c.ColdStart(); cs != nil {
		fmt.Fprintf(os.Stderr, "serve: cold start from %s: %d machines / %d partitions rebuilt, %d images + %d replayed commands, %s of log scanned in %v\n",
			*dataDir, cs.Machines, cs.Partitions, cs.Snapshots, cs.Replayed,
			byteCount(cs.LogBytes), cs.Duration.Round(time.Millisecond))
	}
	start := time.Now()

	var stats b2w.Stats
	var srvCounters *server.Counters
	if *listen != "" {
		info := serveInfo{
			Seed: *seed, Days: *days,
			MinuteMs:     float64(*minute) / float64(time.Millisecond),
			RateScale:    rateScale,
			DeadlineMs:   float64(olCfg.Deadline) / float64(time.Millisecond),
			Carts:        spec.Carts,
			Checkouts:    spec.Checkouts,
			Stocks:       spec.Stocks,
			LinesPerCart: spec.LinesPerCart,
			Faults:       faultsStr,
			Crash:        crashStr,
		}
		if olCfg.Enabled() {
			info.Overload = olCfg.String()
		}
		scfg := server.Config{
			Engine:          c.Engine(),
			DecodeArgs:      b2w.DecodeArgs,
			Recorder:        c.Recorder(),
			DefaultDeadline: time.Duration(info.DeadlineMs * float64(time.Millisecond)),
			Info:            info,
		}
		sc, err := serveWire(ctx, scfg, *listen, *serveFor)
		if err != nil {
			c.Stop()
			watch.Wait()
			return err
		}
		srvCounters = &sc
	} else {
		driver := &b2w.Driver{Eng: c.Engine(), Spec: spec, Seed: *seed + 1, Recorder: c.Recorder()}
		fmt.Fprintf(os.Stderr, "serve: replaying %d day(s) (1 trace minute = %v) under %q on up to %d machines\n",
			*days, *minute, *policy, *maxM)
		stats, err = driver.Run(ctx, replay, *minute, rateScale)
	}
	c.Stop()
	watch.Wait()
	if err != nil && ctx.Err() == nil {
		return err
	}

	rec := c.Recorder()
	cs := c.Stats()
	if srvCounters != nil {
		sc := *srvCounters
		fmt.Printf("wire: %d requests in %d frames (%d batches): %d ok, %d txn-errors, %d bad-requests, %d internal\n",
			sc.Requests, sc.Frames, sc.Batches, sc.OK, sc.TxnErrors, sc.BadRequests, sc.Internal)
		ec := c.Engine().Counters()
		fmt.Printf("served %d transactions (%d failed) in %v\n",
			ec.Completed, ec.Errored, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("served %d transactions (%d failed) in %v\n",
			stats.Executed, stats.Failed, time.Since(start).Round(time.Millisecond))
	}
	printRefusedSummary(rec, c.Engine(), srvCounters, olCfg.Enabled())
	fmt.Printf("SLA violations (>%g ms): p50 %d, p95 %d, p99 %d\n",
		*sloMs, rec.SLAViolations(50, *sloMs), rec.SLAViolations(95, *sloMs), rec.SLAViolations(99, *sloMs))
	fmt.Printf("machines: avg %.2f (initial %d, max %d)\n", rec.AverageMachines(), *initial, *maxM)
	fmt.Printf("controller: %d decisions, %d moves (%d emergency), %d failures\n",
		cs.Decisions, cs.Moves, cs.Emergencies, cs.Failures)
	mc := rec.MigrationCounters()
	fmt.Printf("migration: %d chunk retries, %d aborts, %d chunks rolled back\n",
		mc.Retries, mc.Aborts, mc.RollbackChunks)
	if rm := c.Recovery(); rm != nil {
		rs := rm.Stats()
		fmt.Printf("recovery: %d crashes, %d recoveries, %d commands replayed (max lag %d), downtime %v, %d checkpoints\n",
			rs.Crashes, rs.Recoveries, rs.ReplayedCommands, rs.MaxReplayLag,
			rs.Downtime.Round(time.Millisecond), rs.Checkpoints)
		if *dataDir != "" {
			fmt.Printf("durable log: %d records retained, %s on disk\n", rm.LogSize(), byteCount(rm.LogBytes()))
			if err := rm.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "serve: WARNING: durable log failed mid-run: %v\n", err)
			}
		}
	}
	if inj != nil {
		ist := inj.Stats()
		fmt.Printf("faults: %d chunk sends offered, %d dropped, %d crashed, %d slowed, %d stalled\n",
			ist.Offered, ist.Drops, ist.Crashes, ist.Slows, ist.Stalls)
	}
	return nil
}

// byteCount renders a byte total human-readably for summaries.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// printRefusedSummary prints one refused-work total across the whole stack:
// the driver/client in-flight caps and the engine's admission/shed/deadline
// defenses, with the wire front end's 429 view reported alongside (wire
// rejections are engine refusals that left as HTTP 429s, so they are a view
// of the same work, not an addition to it).
func printRefusedSummary(rec *metrics.Recorder, eng *store.Engine, sc *server.Counters, armed bool) {
	oc := rec.OverloadCounters()
	if oc.Refused() == 0 && oc.WireRejected == 0 && !armed {
		return
	}
	line := fmt.Sprintf("refused: %d total (%d rejected, %d shed, %d deadline-exceeded, %d client-shed",
		oc.Refused(), oc.Rejected, oc.Shed, oc.DeadlineExceeded, oc.ClientShed)
	if sc != nil {
		line += fmt.Sprintf("; wire: %d as 429, %d as 504, %d as 503", sc.Rejected429, sc.Deadline504, sc.Down503)
	} else if oc.WireRejected > 0 {
		line += fmt.Sprintf("; %d as wire 429", oc.WireRejected)
	}
	fmt.Printf("%s), worst queue delay %v\n", line, eng.MaxQueueSojourn().Round(time.Millisecond))
}

// serveWire runs the network front end over the given server configuration
// until a signal, the optional -serve-for timer, or a client's shutdown
// request.
func serveWire(ctx context.Context, scfg server.Config, addr string, serveFor time.Duration) (server.Counters, error) {
	return serveWireWith(ctx, scfg, addr, serveFor, nil)
}

// serveWireWith is serveWire with a hook invoked once the listener is up,
// with the running server — the replica bootstrap needs the server handle
// (to install the sync snapshot) while Serve is already accepting.
func serveWireWith(ctx context.Context, scfg server.Config, addr string, serveFor time.Duration, started func(*server.Server)) (server.Counters, error) {
	srv, err := server.New(scfg)
	if err != nil {
		return server.Counters{}, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return server.Counters{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	if started != nil {
		started(srv)
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	var timer <-chan time.Time
	if serveFor > 0 {
		t := time.NewTimer(serveFor)
		defer t.Stop()
		timer = t.C
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (POST %s to stop)\n", l.Addr(), "/v1/shutdown")
	var reason string
	select {
	case err := <-serveErr:
		return srv.Counters(), err
	case <-sigCtx.Done():
		reason = "signal"
	case <-timer:
		reason = "serve-for elapsed"
	case <-srv.ShutdownRequested():
		reason = "client shutdown request"
	}
	fmt.Fprintf(os.Stderr, "serve: shutting down (%s)\n", reason)
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return srv.Counters(), err
	}
	return srv.Counters(), nil
}
