package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/client"
	"pstore/internal/metrics"
	"pstore/internal/workload"
)

// runDrive is the remote load generator: the same b2w driver that serves as
// the in-process reference oracle, pointed at a listening pstore serve
// process through the client library. It reconstructs the server's exact
// trace from /v1/info, replays it over the socket, and reports refused work
// (wire 429s, client sheds) separately from failures.
func runDrive(args []string) error {
	fs := newFlagSet("drive")
	connect := fs.String("connect", "", "server address (host:port) to drive (required)")
	connectWait := fs.Duration("connect-wait", 10*time.Second, "how long to keep retrying until the server answers health checks")
	deadline := fs.Duration("deadline", 0, "per-request wire deadline (0 = the server's default)")
	inflight := fs.Int("inflight", 512, "client in-flight request cap")
	retries := fs.Int("retries", 0, "retries per refused request, honoring server retry hints")
	strict := fs.Bool("strict", false, "exit nonzero if any transport-level failure occurred (refusals and business errors are fine)")
	shutdown := fs.Bool("shutdown", false, "ask the server to shut down after the trace completes")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	if *connectWait < 0 || *deadline < 0 || *inflight < 1 || *retries < 0 {
		return errors.New("invalid flags: -connect-wait/-deadline/-retries must be >= 0 and -inflight >= 1")
	}

	ctx := context.Background()

	// The recorder needs one wide window so p50/p99 summarize the whole run;
	// sized after /v1/info arrives. A bootstrap client (no recorder) handles
	// the handshake.
	boot, err := client.New(client.Config{Addr: *connect, MaxInFlight: 4})
	if err != nil {
		return err
	}
	if err := waitHealthy(ctx, boot, *connectWait); err != nil {
		boot.Close()
		return err
	}
	var info serveInfo
	err = boot.Info(ctx, &info)
	boot.Close()
	if err != nil {
		return err
	}
	if info.RateScale == 0 || info.Days == 0 {
		return fmt.Errorf("server at %s did not publish trace parameters; is it running \"pstore serve -listen\"?", *connect)
	}

	// Regenerate the server's replay slice from the published parameters:
	// same synthetic trace, same slice, same pacing, same driver seed — the
	// two processes agree on the workload without sharing a byte of state
	// beyond /v1/info.
	full, err := workload.SyntheticB2W(workload.DefaultB2WConfig(info.Seed, 28+info.Days))
	if err != nil {
		return err
	}
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())
	minute := time.Duration(info.MinuteMs * float64(time.Millisecond))
	if minute <= 0 {
		return fmt.Errorf("server published non-positive minute %v", minute)
	}
	traceDur := time.Duration(replay.Len()) * minute

	rec, err := metrics.NewRecorder(time.Now(), 2*traceDur+10*time.Second)
	if err != nil {
		return err
	}
	cl, err := client.New(client.Config{
		Addr:         *connect,
		MaxInFlight:  *inflight,
		Deadline:     *deadline,
		RetryRefused: *retries,
		MaxRetryWait: time.Second,
		Recorder:     rec,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	exec, err := b2w.NewRemoteExecutor(ctx, cl)
	if err != nil {
		return err
	}
	spec := b2w.LoadSpec{Carts: info.Carts, Checkouts: info.Checkouts,
		Stocks: info.Stocks, LinesPerCart: info.LinesPerCart, Seed: info.Seed}
	driver := &b2w.Driver{Exec: exec, Spec: spec, Seed: info.Seed + 1, Recorder: rec}

	fmt.Fprintf(os.Stderr, "drive: replaying %d day(s) against %s (1 trace minute = %v, rate scale %.4g)\n",
		info.Days, *connect, minute, info.RateScale)
	start := time.Now()
	stats, err := driver.Run(ctx, replay, minute, info.RateScale)
	if err != nil {
		return err
	}
	cc := cl.Counters()

	fmt.Printf("drove %d transactions (%d failed) in %v\n",
		stats.Executed, stats.Failed, time.Since(start).Round(time.Millisecond))
	// stats.Refused counts every refusal the driver saw; the client's
	// in-flight sheds travel under the same typed error, so subtract them to
	// isolate work the server itself turned away (wire 429/503/504).
	serverRefused := stats.Refused - cc.Shed
	fmt.Printf("refused: %d total (%d refused by server, %d driver-shed, %d client-shed); %d retries on hints\n",
		stats.Refused+stats.Shed, serverRefused, stats.Shed, cc.Shed, cc.Retried)
	fmt.Printf("wire latency: p50 %.2f ms, p99 %.2f ms\n",
		rec.Percentile(0, 50), rec.Percentile(0, 99))
	fmt.Printf("transport: %d errors\n", cc.TransportErrors)

	if *shutdown {
		shCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := cl.Shutdown(shCtx); err != nil {
			return fmt.Errorf("asking server to shut down: %w", err)
		}
		fmt.Fprintln(os.Stderr, "drive: server shutdown requested")
	}
	if *strict && cc.TransportErrors > 0 {
		return fmt.Errorf("strict: %d transport-level failures", cc.TransportErrors)
	}
	return nil
}

// waitHealthy polls the server's health endpoint until it answers or the
// wait budget runs out, so drive can be started before (or while) serve is
// still loading its dataset.
func waitHealthy(ctx context.Context, c *client.Client, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		lastErr = c.Health(hctx)
		cancel()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy after %v: %w", wait, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
