package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"path/filepath"

	"pstore/internal/client"
	"pstore/internal/faults"
	"pstore/internal/metrics"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
)

// benchResult is the JSON schema of BENCH_engine.json: the hot-path numbers
// the typed request pipeline is accountable for.
type benchResult struct {
	Benchmark    string  `json:"benchmark"`
	GoVersion    string  `json:"go_version"`
	Clients      int     `json:"clients"`
	DurationSec  float64 `json:"duration_s"`
	Transactions int64   `json:"txns"`
	TPS          float64 `json:"tps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	NsPerTxn     float64 `json:"ns_per_txn"`
	AllocsPerTxn float64 `json:"allocs_per_txn"`
}

// benchMigrationResult is the JSON schema of BENCH_migration.json: how the
// migration path behaves under a fixed-seed fault schedule — move durations,
// retry work, and rollback volume are the numbers the fault plane is
// accountable for.
type benchMigrationResult struct {
	Benchmark      string  `json:"benchmark"`
	GoVersion      string  `json:"go_version"`
	FaultSpec      string  `json:"fault_spec"`
	Rows           int     `json:"rows"`
	Machines       int     `json:"machines"`
	MoveOutMs      float64 `json:"move_out_ms"`
	MoveInMs       float64 `json:"move_in_ms"`
	ChunksMoved    int64   `json:"chunks_moved"`
	Retries        int64   `json:"retries"`
	Aborts         int64   `json:"aborts"`
	RollbackChunks int64   `json:"rollback_chunks"`
	FaultsOffered  int64   `json:"faults_offered"`
	FaultsDropped  int64   `json:"faults_dropped"`
	// The networked column: the same round trip driven through a 2-node
	// loopback cluster, every chunk crossing extract/install RPCs. PlanParity
	// reports whether the networked run finished with the byte-identical
	// bucket plan and the same retry count as the in-process run — the
	// shared-nothing refactor's determinism contract.
	NetNodes     int     `json:"net_nodes"`
	NetMoveOutMs float64 `json:"net_move_out_ms"`
	NetMoveInMs  float64 `json:"net_move_in_ms"`
	NetRetries   int64   `json:"net_retries"`
	PlanParity   bool    `json:"plan_parity"`
}

// runBench measures the transaction hot path on an idle engine: a serial
// single-client pass isolates allocations per transaction, then a concurrent
// pass measures throughput and latency percentiles through the recorder.
// Further passes measure the migration path under a fixed-seed fault
// schedule, crash recovery, overload goodput, and the network front end's
// overhead versus in-process execution.
func runBench(args []string) error {
	fs := newFlagSet("bench")
	out := fs.String("out", "BENCH_engine.json", "output JSON path (- for stdout)")
	dur := fs.Duration("duration", 2*time.Second, "length of the throughput pass")
	clients := fs.Int("clients", 8, "concurrent clients in the throughput pass")
	migOut := fs.String("migration-out", "BENCH_migration.json", "migration bench output JSON path (- for stdout, empty to skip)")
	migFaults := fs.String("migration-faults", "seed=42,chunk-drop=0.05", "fault spec for the migration pass (empty for a clean run)")
	recOut := fs.String("recovery-out", "BENCH_recovery.json", "crash-recovery bench output JSON path (- for stdout, empty to skip)")
	olOut := fs.String("overload-out", "BENCH_overload.json", "overload bench output JSON path (- for stdout, empty to skip)")
	olDur := fs.Duration("overload-duration", 500*time.Millisecond, "length of each overload bench point")
	wireOut := fs.String("wire-out", "BENCH_wire.json", "wire bench output JSON path (- for stdout, empty to skip)")
	wireDur := fs.Duration("wire-duration", 500*time.Millisecond, "length of each wire bench point")
	check := fs.String("check", "", "baseline directory holding committed BENCH_*.json; fail if tps regressed >20% against it or the migration plans diverged")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *clients < 1 || *dur <= 0 || *olDur <= 0 || *wireDur <= 0 {
		return errors.New("invalid flags")
	}

	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Register("noop", func(*store.Tx) (any, error) { return nil, nil }); err != nil {
		return err
	}
	eng.Start()
	defer eng.Stop()
	id, ok := eng.Handle("noop")
	if !ok {
		return errors.New("handle not found")
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
	}

	// Pass 1: allocations per transaction, serial so nothing but the
	// pipeline itself shows up. A warmup populates the request pool.
	const allocTxns = 200_000
	for i := 0; i < 10_000; i++ {
		if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
			return err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < allocTxns; i++ {
		if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&after)
	allocsPerTxn := float64(after.Mallocs-before.Mallocs) / float64(allocTxns)

	// Pass 2: throughput and latency with concurrent clients, recorded into
	// one wide window so p50/p99 cover the whole pass.
	rec, err := metrics.NewRecorder(time.Now(), 2**dur+time.Second)
	if err != nil {
		return err
	}
	eng.SetRecorder(rec)
	var wg sync.WaitGroup
	counts := make([]int64, *clients)
	stop := make(chan struct{})
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
					return
				}
				counts[c]++
			}
		}(c)
	}
	time.Sleep(*dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	eng.SetRecorder(nil)
	var txns int64
	for _, n := range counts {
		txns += n
	}
	if txns == 0 {
		return errors.New("no transactions completed")
	}

	res := benchResult{
		Benchmark:    "engine_execute",
		GoVersion:    runtime.Version(),
		Clients:      *clients,
		DurationSec:  elapsed.Seconds(),
		Transactions: txns,
		TPS:          float64(txns) / elapsed.Seconds(),
		P50Ms:        rec.Percentile(0, 50),
		P99Ms:        rec.Percentile(0, 99),
		NsPerTxn:     float64(elapsed.Nanoseconds()) * float64(*clients) / float64(txns),
		AllocsPerTxn: allocsPerTxn,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: %d txns, %.0f tps, p50 %.3f ms, p99 %.3f ms, %.2f allocs/txn -> %s\n",
			res.Transactions, res.TPS, res.P50Ms, res.P99Ms, res.AllocsPerTxn, *out)
	}
	if *migOut != "" {
		if err := runBenchMigration(*migOut, *migFaults); err != nil {
			return err
		}
	}
	if *recOut != "" {
		if err := runBenchRecovery(*recOut); err != nil {
			return err
		}
	}
	if *olOut != "" {
		if err := runBenchOverload(*olOut, *olDur); err != nil {
			return err
		}
	}
	if *wireOut != "" {
		if err := runBenchWire(*wireOut, *wireDur); err != nil {
			return err
		}
	}
	if *check != "" {
		return benchCheck(*check, *out, *wireOut, *migOut)
	}
	return nil
}

// benchCheck is the CI regression gate: it compares the engine and wire tps
// of the run just written against the committed baselines in dir, failing on
// a >20% throughput regression, and requires the migration pass to have
// reached plan parity between its in-process and networked runs. Latency and
// duration columns are informational — wall-clock noise on shared runners —
// but a 20% tps cliff or a placement divergence is a real defect.
func benchCheck(dir, engineOut, wireOut, migOut string) error {
	const maxRegression = 0.20
	readJSON := func(path string, v any) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return json.Unmarshal(data, v)
	}
	// Baselines live in dir under the canonical names regardless of where
	// this run wrote its outputs; a run that writes straight over its own
	// baseline would vacuously pass, so that is rejected outright.
	baselinePath := func(name, out string) (string, error) {
		p := filepath.Join(dir, name)
		bi, err1 := os.Stat(p)
		oi, err2 := os.Stat(out)
		if err1 == nil && err2 == nil && os.SameFile(bi, oi) {
			return "", fmt.Errorf("check: output %s is the baseline itself; write outputs elsewhere (e.g. -out /tmp/%s)", out, name)
		}
		return p, nil
	}
	gate := func(name string, baseline, got float64) error {
		if baseline <= 0 {
			return fmt.Errorf("check: baseline %s tps is %g", name, baseline)
		}
		if got < (1-maxRegression)*baseline {
			return fmt.Errorf("check: %s regressed %.0f%%: %.0f tps vs baseline %.0f",
				name, 100*(1-got/baseline), got, baseline)
		}
		fmt.Printf("bench: check %s: %.0f tps vs baseline %.0f ok\n", name, got, baseline)
		return nil
	}
	if engineOut != "" && engineOut != "-" {
		bp, err := baselinePath("BENCH_engine.json", engineOut)
		if err != nil {
			return err
		}
		var baseline, got benchResult
		if err := readJSON(bp, &baseline); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if err := readJSON(engineOut, &got); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if err := gate("engine", baseline.TPS, got.TPS); err != nil {
			return err
		}
	}
	if wireOut != "" && wireOut != "-" {
		bp, err := baselinePath("BENCH_wire.json", wireOut)
		if err != nil {
			return err
		}
		var baseline, got benchWireResult
		if err := readJSON(bp, &baseline); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if err := readJSON(wireOut, &got); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		base := map[string]float64{}
		for _, pt := range baseline.Points {
			if pt.Mode == "clean" {
				base[pt.Transport] = pt.CompletedTPS
			}
		}
		for _, pt := range got.Points {
			if pt.Mode != "clean" {
				continue
			}
			b, ok := base[pt.Transport]
			if !ok {
				continue
			}
			if err := gate("wire/"+pt.Transport, b, pt.CompletedTPS); err != nil {
				return err
			}
		}
	}
	if migOut != "" && migOut != "-" {
		var got benchMigrationResult
		if err := readJSON(migOut, &got); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if !got.PlanParity {
			return errors.New("check: migration plan parity failed: the networked round trip diverged from the in-process run")
		}
		fmt.Println("bench: check migration plan parity ok")
	}
	return nil
}

// benchOverloadResult is the JSON schema of BENCH_overload.json: goodput
// (completions inside the deadline) and p99 queue sojourn versus offered
// load, with and without admission control, at a fixed seed. The numbers the
// overload plane is accountable for: past saturation, goodput with admission
// control should stay near capacity while the undefended engine's collapses
// as every completion arrives too late.
type benchOverloadResult struct {
	Benchmark   string               `json:"benchmark"`
	GoVersion   string               `json:"go_version"`
	DeadlineMs  float64              `json:"deadline_ms"`
	CapacityTPS float64              `json:"capacity_tps"`
	Points      []benchOverloadPoint `json:"points"`
}

type benchOverloadPoint struct {
	// OfferedTPS is the paced open-loop arrival rate; Admission reports
	// whether the engine's overload plane was enforcing (false = sojourn
	// tracking only).
	OfferedTPS   float64 `json:"offered_tps"`
	Admission    bool    `json:"admission_control"`
	CompletedTPS float64 `json:"completed_tps"`
	// GoodputTPS counts only completions whose client-observed latency was
	// inside the deadline — completions past it are wasted work.
	GoodputTPS       float64 `json:"goodput_tps"`
	P99SojournMs     float64 `json:"p99_sojourn_ms"`
	Rejected         int64   `json:"rejected"`
	Shed             int64   `json:"shed"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
}

// runBenchOverload drives one small engine at a sweep of offered loads (0.5x
// to 4x capacity) twice — overload plane enforcing, and tracking only — and
// records goodput and queue-sojourn percentiles for each point.
func runBenchOverload(out string, pointDur time.Duration) error {
	// A 2ms simulated service time keeps the sleep-timer overshoot (tens of
	// microseconds per transaction) a rounding error, so the engine's real
	// capacity matches the nominal parts/svc figure the sweep is scaled by.
	const (
		deadline = 20 * time.Millisecond
		svc      = 2 * time.Millisecond
		parts    = 2
		workers  = 32
	)
	capacity := float64(parts) / svc.Seconds()
	res := benchOverloadResult{
		Benchmark:   "overload_goodput",
		GoVersion:   runtime.Version(),
		DeadlineMs:  float64(deadline) / float64(time.Millisecond),
		CapacityTPS: capacity,
	}
	for _, mult := range []float64{0.5, 1, 2, 4} {
		for _, admission := range []bool{true, false} {
			ol := store.OverloadConfig{Track: true}
			if admission {
				ol.Deadline = deadline
				ol.CoDelTarget = 5 * time.Millisecond
				ol.CoDelInterval = 50 * time.Millisecond
			}
			pt, err := benchOverloadPointRun(mult*capacity, admission, ol, deadline, svc, parts, workers, pointDur)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, pt)
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	// Report the 2x-capacity pair: the point where the defenses matter.
	var on, off benchOverloadPoint
	for _, pt := range res.Points {
		if pt.OfferedTPS == 2*capacity {
			if pt.Admission {
				on = pt
			} else {
				off = pt
			}
		}
	}
	fmt.Printf("bench: overload at 2x capacity: goodput %.0f tps with admission control vs %.0f without (p99 sojourn %.1f vs %.1f ms) -> %s\n",
		on.GoodputTPS, off.GoodputTPS, on.P99SojournMs, off.P99SojournMs, out)
	return nil
}

// benchOverloadPointRun measures one (offered load, admission) point on a
// fresh engine: paced open-loop workers, SLO-conditioned goodput, and the
// recorder's sojourn percentiles.
func benchOverloadPointRun(offered float64, admission bool, ol store.OverloadConfig,
	deadline, svc time.Duration, parts, workers int, dur time.Duration) (benchOverloadPoint, error) {
	var pt benchOverloadPoint
	cfg := store.Config{
		MaxMachines:          1,
		PartitionsPerMachine: parts,
		Buckets:              64,
		ServiceTime:          svc,
		QueueCapacity:        1 << 12,
		InitialMachines:      1,
		Overload:             ol,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return pt, err
	}
	if err := eng.Register("noop", func(*store.Tx) (any, error) { return nil, nil }); err != nil {
		return pt, err
	}
	rec, err := metrics.NewRecorder(time.Now(), 2*dur+time.Second)
	if err != nil {
		return pt, err
	}
	eng.SetRecorder(rec)
	eng.Start()
	defer eng.Stop()
	id, _ := eng.Handle("noop")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("ol-key-%04d", i)
	}

	submit := func(i int) error {
		_, err := eng.ExecuteID(id, keys[i&255], nil)
		return err
	}
	completed, good, elapsed := benchPacedRun(submit, offered, deadline, workers, dur)
	eng.SetRecorder(nil)

	cnt := eng.Counters()
	return benchOverloadPoint{
		OfferedTPS:       offered,
		Admission:        admission,
		CompletedTPS:     float64(completed) / elapsed.Seconds(),
		GoodputTPS:       float64(good) / elapsed.Seconds(),
		P99SojournMs:     rec.SojournPercentile(0, 99),
		Rejected:         cnt.Rejected,
		Shed:             cnt.Shed,
		DeadlineExceeded: cnt.DeadlineExceeded,
	}, nil
}

// benchPacedRun drives submit from paced open-loop workers at the offered
// aggregate rate for dur, returning completions, completions inside the
// deadline, and the measured elapsed time. Shared by the overload and wire
// benches so their load shapes are identical.
func benchPacedRun(submit func(i int) error, offered float64,
	deadline time.Duration, workers int, dur time.Duration) (completed, good int64, elapsed time.Duration) {
	interval := time.Duration(float64(workers) / offered * float64(time.Second))
	var cDone, cGood atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger worker phases so the aggregate arrival process is
			// uniform at the offered rate rather than synchronized bursts
			// of all workers at once.
			next := start.Add(interval * time.Duration(w) / time.Duration(workers))
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				// Open-loop pacing: hold the offered rate even when calls
				// block, but do not bank an unbounded burst while stuck
				// behind a saturated queue.
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				} else if wait < -10*interval {
					next = time.Now()
				}
				next = next.Add(interval)
				t0 := time.Now()
				if err := submit(i); err == nil {
					cDone.Add(1)
					if time.Since(t0) <= deadline {
						cGood.Add(1)
					}
				}
			}
		}(w)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return cDone.Load(), cGood.Load(), time.Since(start)
}

// benchWireResult is the JSON schema of BENCH_wire.json: what the network
// front end costs versus in-process execution, clean and at 2x overload.
// Clean points are closed-loop over a zero-service-time engine, so they
// isolate the wire itself (framing, HTTP, loopback round trip); the batch
// transport shows how much of that overhead pipelining amortizes. Overload
// points repeat the overload bench's 2x-capacity shape through each
// transport, with the engine's refusals surfacing as wire 429s.
type benchWireResult struct {
	Benchmark   string           `json:"benchmark"`
	GoVersion   string           `json:"go_version"`
	DeadlineMs  float64          `json:"deadline_ms"`
	CapacityTPS float64          `json:"capacity_tps"`
	Points      []benchWirePoint `json:"points"`
}

type benchWirePoint struct {
	// Transport is inprocess, http, or http_batch (64-frame pipelined
	// batches; its P50/P99 are per batch, not per transaction).
	Transport string `json:"transport"`
	// Mode is clean (closed loop, zero service time) or overload_2x (paced
	// at twice capacity, 2ms service time, admission control armed).
	Mode         string  `json:"mode"`
	OfferedTPS   float64 `json:"offered_tps,omitempty"`
	CompletedTPS float64 `json:"completed_tps"`
	GoodputTPS   float64 `json:"goodput_tps,omitempty"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Rejected429  int64   `json:"rejected_429"`
}

// runBenchWire measures the wire front end against in-process execution:
// closed-loop clean points for raw overhead, then the overload bench's
// 2x-capacity point through each transport.
func runBenchWire(out string, pointDur time.Duration) error {
	const (
		deadline = 20 * time.Millisecond
		svc      = 2 * time.Millisecond
		parts    = 2
		workers  = 32
	)
	capacity := float64(parts) / svc.Seconds()
	res := benchWireResult{
		Benchmark:   "wire_front_end",
		GoVersion:   runtime.Version(),
		DeadlineMs:  float64(deadline) / float64(time.Millisecond),
		CapacityTPS: capacity,
	}
	for _, transport := range []string{"inprocess", "http", "http_batch"} {
		pt, err := benchWirePointRun(transport, "clean", 0, 0, parts, deadline, 16, pointDur)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, pt)
	}
	for _, transport := range []string{"inprocess", "http"} {
		pt, err := benchWirePointRun(transport, "overload_2x", 2*capacity, svc, parts, deadline, workers, pointDur)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, pt)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	var inproc, http benchWirePoint
	for _, pt := range res.Points {
		if pt.Mode == "clean" {
			switch pt.Transport {
			case "inprocess":
				inproc = pt
			case "http":
				http = pt
			}
		}
	}
	fmt.Printf("bench: wire clean: %.0f tps in-process vs %.0f tps over loopback HTTP (p99 %.3f vs %.3f ms) -> %s\n",
		inproc.CompletedTPS, http.CompletedTPS, inproc.P99Ms, http.P99Ms, out)
	return nil
}

// benchWirePointRun measures one (transport, mode) point on a fresh engine,
// fronting it with a real loopback server for the http transports.
func benchWirePointRun(transport, mode string, offered float64, svc time.Duration,
	parts int, deadline time.Duration, workers int, dur time.Duration) (benchWirePoint, error) {
	var pt benchWirePoint
	ol := store.OverloadConfig{Track: true}
	queueCap := 1 << 14
	if mode == "overload_2x" {
		ol.Deadline = deadline
		ol.CoDelTarget = 5 * time.Millisecond
		ol.CoDelInterval = 50 * time.Millisecond
		queueCap = 1 << 12
	}
	cfg := store.Config{
		MaxMachines:          1,
		PartitionsPerMachine: parts,
		Buckets:              64,
		ServiceTime:          svc,
		QueueCapacity:        queueCap,
		InitialMachines:      1,
		Overload:             ol,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return pt, err
	}
	if err := eng.Register("noop", func(*store.Tx) (any, error) { return nil, nil }); err != nil {
		return pt, err
	}
	eng.Start()
	defer eng.Stop()
	id, _ := eng.Handle("noop")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("wire-key-%04d", i)
	}
	// Client-observed latencies in one wide window, recorded around each
	// submit so every transport is measured from the same vantage point.
	rec, err := metrics.NewRecorder(time.Now(), 2*dur+time.Second)
	if err != nil {
		return pt, err
	}

	var submit func(i int) (int, error)
	ctx := context.Background()
	var srv *server.Server
	switch transport {
	case "inprocess":
		submit = func(i int) (int, error) {
			_, err := eng.ExecuteID(id, keys[i&255], nil)
			return 1, err
		}
	case "http", "http_batch":
		srv, err = server.New(server.Config{Engine: eng})
		if err != nil {
			return pt, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		go srv.Serve(l) //nolint:errcheck // surfaced through request failures
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shCtx)
		}()
		cl, err := client.New(client.Config{Addr: l.Addr().String(), MaxInFlight: 2 * workers})
		if err != nil {
			return pt, err
		}
		defer cl.Close()
		if transport == "http" {
			submit = func(i int) (int, error) {
				_, err := cl.Execute(ctx, "noop", keys[i&255], nil)
				return 1, err
			}
		} else {
			const batch = 64
			submit = func(i int) (int, error) {
				reqs := make([]wire.Request, batch)
				for j := range reqs {
					reqs[j] = wire.Request{Txn: "noop", Key: keys[(i+j)&255]}
				}
				resps, err := cl.ExecuteBatch(ctx, reqs)
				if err != nil {
					return 0, err
				}
				n := 0
				for _, r := range resps {
					if r.Status == 200 {
						n++
					}
				}
				if n == 0 {
					return 0, errors.New("batch fully refused")
				}
				return n, nil
			}
		}
	default:
		return pt, fmt.Errorf("unknown wire bench transport %q", transport)
	}

	recorded := func(i int) (int, error) {
		t0 := time.Now()
		n, err := submit(i)
		if err == nil {
			rec.Record(time.Now(), time.Since(t0))
		}
		return n, err
	}

	var completed, good atomic.Int64
	var elapsed time.Duration
	if mode == "clean" {
		// Closed loop: each worker issues back to back, so throughput is
		// bounded by the transport, not by pacing.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; ; i += workers {
					select {
					case <-stop:
						return
					default:
					}
					if n, err := recorded(i); err == nil {
						completed.Add(int64(n))
					}
				}
			}(w)
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed = time.Since(start)
	} else {
		c, g, e := benchPacedRun(func(i int) error {
			_, err := recorded(i)
			return err
		}, offered, deadline, workers, dur)
		completed.Store(c)
		good.Store(g)
		elapsed = e
	}

	pt = benchWirePoint{
		Transport:    transport,
		Mode:         mode,
		OfferedTPS:   offered,
		CompletedTPS: float64(completed.Load()) / elapsed.Seconds(),
		P50Ms:        rec.Percentile(0, 50),
		P99Ms:        rec.Percentile(0, 99),
	}
	if mode != "clean" {
		pt.GoodputTPS = float64(good.Load()) / elapsed.Seconds()
	}
	if srv != nil {
		pt.Rejected429 = srv.Counters().Rejected429
	} else {
		pt.Rejected429 = eng.Counters().Rejected
	}
	return pt, nil
}

// runBenchMigration measures a scale-out and scale-in round trip on a loaded
// engine with the given fault schedule armed, at a fixed seed so the numbers
// are reproducible run to run.
func runBenchMigration(out, spec string) error {
	cfg := store.Config{
		MaxMachines:          4,
		PartitionsPerMachine: 2,
		Buckets:              256,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      1,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return err
	}
	eng.Start()
	defer eng.Stop()
	const rows = 20_000
	for i := 0; i < rows; i++ {
		if _, err := eng.Execute("put", fmt.Sprintf("mig-key-%05d", i), i); err != nil {
			return err
		}
	}

	var inj *faults.Injector
	if spec != "" {
		fcfg, err := faults.Parse(spec)
		if err != nil {
			return err
		}
		if inj, err = faults.New(fcfg); err != nil {
			return err
		}
		eng.SetFaultInjector(inj)
	}

	sqCfg := squall.Config{
		ChunkRows:       200,
		RowCost:         time.Microsecond,
		ChunkOverhead:   50 * time.Microsecond,
		Spacing:         200 * time.Microsecond,
		RateFactor:      1,
		MaxChunkRetries: 5,
		RetryBackoff:    200 * time.Microsecond,
		MaxRetryBackoff: 2 * time.Millisecond,
	}
	ex, err := squall.NewExecutor(eng, sqCfg)
	if err != nil {
		return err
	}

	startOut := time.Now()
	if err := ex.Reconfigure(1, cfg.MaxMachines, 0); err != nil {
		return fmt.Errorf("scale-out aborted (raise retries or lower the fault rate): %w", err)
	}
	moveOut := time.Since(startOut)
	startIn := time.Now()
	if err := ex.Reconfigure(cfg.MaxMachines, 1, 0); err != nil {
		return fmt.Errorf("scale-in aborted: %w", err)
	}
	moveIn := time.Since(startIn)
	if got := eng.TotalRows(); got != rows {
		return fmt.Errorf("%d rows after round trip, want %d", got, rows)
	}

	st := ex.Stats()
	res := benchMigrationResult{
		Benchmark:      "migration_round_trip",
		GoVersion:      runtime.Version(),
		FaultSpec:      spec,
		Rows:           rows,
		Machines:       cfg.MaxMachines,
		MoveOutMs:      float64(moveOut.Microseconds()) / 1000,
		MoveInMs:       float64(moveIn.Microseconds()) / 1000,
		ChunksMoved:    st.ChunksMoved,
		Retries:        st.Retries,
		Aborts:         st.Aborts,
		RollbackChunks: st.RollbackChunks,
	}
	if inj != nil {
		ist := inj.Stats()
		res.FaultsOffered = ist.Offered
		res.FaultsDropped = ist.Drops
	}
	if err := runBenchMigrationNetworked(&res, cfg, sqCfg, spec, eng.Plan()); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: migration 1->%d->1 of %d rows: out %.1f/%.1f ms, in %.1f/%.1f ms (in-process/%d-node networked), %d/%d retries, plan parity %v -> %s\n",
		cfg.MaxMachines, rows, res.MoveOutMs, res.NetMoveOutMs, res.MoveInMs, res.NetMoveInMs,
		res.NetNodes, res.Retries, res.NetRetries, res.PlanParity, out)
	return nil
}

// runBenchMigrationNetworked repeats the migration round trip over a 2-node
// loopback cluster — same geometry, same rows, a fresh injector from the same
// fault spec — so every chunk crosses the node RPC vocabulary. The fault
// decisions are keyed by (seed, pair, chunk, attempt), not by placement, so
// the networked run must land on the identical final plan with identical
// retry work; PlanParity records that it did.
func runBenchMigrationNetworked(res *benchMigrationResult, cfg store.Config, sqCfg squall.Config, spec string, localPlan []int32) error {
	const nodes = 2
	res.NetNodes = nodes
	lb, err := transport.NewLoopback(transport.LoopbackConfig{
		Nodes: nodes,
		Store: cfg,
		Register: func(eng *store.Engine) error {
			return eng.Register("put", func(tx *store.Tx) (any, error) {
				return nil, tx.Put("kv", tx.Key, tx.Args)
			})
		},
		DecodeArgs: func(txn string, raw json.RawMessage) (any, error) {
			var v int
			err := json.Unmarshal(raw, &v)
			return v, err
		},
		DecodeRow: func(table string, raw json.RawMessage) (any, error) {
			var v int
			err := json.Unmarshal(raw, &v)
			return v, err
		},
	})
	if err != nil {
		return err
	}
	defer lb.Close()
	for _, eng := range lb.Engines() {
		for i := 0; i < res.Rows; i++ {
			if _, err := eng.Execute("put", fmt.Sprintf("mig-key-%05d", i), i); err != nil {
				if errors.Is(err, store.ErrNotOwned) {
					continue
				}
				return err
			}
		}
	}
	remote := lb.Remote()
	if spec != "" {
		fcfg, err := faults.Parse(spec)
		if err != nil {
			return err
		}
		inj, err := faults.New(fcfg)
		if err != nil {
			return err
		}
		remote.SetFaultInjector(inj)
	}
	ex, err := squall.NewExecutor(remote, sqCfg)
	if err != nil {
		return err
	}
	startOut := time.Now()
	if err := ex.Reconfigure(1, cfg.MaxMachines, 0); err != nil {
		return fmt.Errorf("networked scale-out aborted: %w", err)
	}
	res.NetMoveOutMs = float64(time.Since(startOut).Microseconds()) / 1000
	startIn := time.Now()
	if err := ex.Reconfigure(cfg.MaxMachines, 1, 0); err != nil {
		return fmt.Errorf("networked scale-in aborted: %w", err)
	}
	res.NetMoveInMs = float64(time.Since(startIn).Microseconds()) / 1000
	res.NetRetries = ex.Stats().Retries

	parity := remote.TotalRows() == res.Rows &&
		res.NetRetries == res.Retries && remote.FlipErrors() == 0
	netPlan := remote.Plan()
	if len(netPlan) != len(localPlan) {
		parity = false
	} else {
		for b := range netPlan {
			if netPlan[b] != localPlan[b] {
				parity = false
				break
			}
		}
	}
	res.PlanParity = parity
	return nil
}

// benchRecoveryResult is the JSON schema of BENCH_recovery.json: how fast a
// crashed machine comes back as a function of the command-log tail behind
// the last checkpoint — recovery latency and replay lag are the numbers the
// checkpoint + command-log plane is accountable for.
type benchRecoveryResult struct {
	Benchmark    string                  `json:"benchmark"`
	GoVersion    string                  `json:"go_version"`
	Rows         int                     `json:"rows"`
	Machines     int                     `json:"machines"`
	MaxReplayLag int64                   `json:"max_replay_lag"`
	Scenarios    []benchRecoveryScenario `json:"scenarios"`
	// Failover is the replication plane's column: kill the primary with an
	// unshipped WAL window behind it and time the coordinator's detect ->
	// promote -> first-transaction path onto the warm follower.
	Failover []benchFailoverScenario `json:"failover"`
	// SyncCommit compares asynchronous shipping with the follower-durability
	// barrier under the same mid-burst primary kill: the throughput and p99
	// tax, and each mode's acked-transaction loss (zero, for sync, by
	// contract).
	SyncCommit []benchSyncCommitRow `json:"sync_commit"`
}

type benchRecoveryScenario struct {
	// LogTail is how many transactions ran between the checkpoint and the
	// crash; Replayed is how many of them landed on the crashed machine's
	// buckets and had to be replayed. The Disk* columns are the same scenario
	// against the on-disk WAL: recovery reads segment and image files, and
	// DiskLogTailBytes is how many bytes of log sat on disk at crash time.
	LogTail          int     `json:"log_tail_txns"`
	Replayed         int     `json:"replayed_commands"`
	CheckpointMs     float64 `json:"checkpoint_ms"`
	RecoveryMs       float64 `json:"recovery_ms"`
	DiskCheckpointMs float64 `json:"disk_checkpoint_ms"`
	DiskRecoveryMs   float64 `json:"disk_recovery_ms"`
	DiskLogTailBytes int64   `json:"disk_log_tail_bytes"`
}

// benchRecoveryTails are the log-tail sizes each recovery pass measures.
var benchRecoveryTails = []int{0, 5_000, 20_000}

// benchParallelPut writes n rows from 12 concurrent submitters. Keys are
// distinct within one call, so the final values are deterministic; the
// concurrency is what lets the disk store's group commit amortize fsyncs the
// way live traffic would.
func benchParallelPut(eng *store.Engine, n int, key func(int) string, val func(int) any) error {
	const submitters = 12
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += submitters {
				if _, err := eng.Execute("put", key(i), val(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// benchRecoveryPass runs the checkpoint / crash / restore scenarios against
// one recovery configuration (in-memory oracle or disk-backed WAL) and
// returns one measurement per tail size.
func benchRecoveryPass(rcfg recovery.Config, rows int) ([]benchRecoveryScenario, int64, error) {
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              256,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return nil, 0, err
	}
	rm, err := recovery.New(eng, rcfg)
	if err != nil {
		return nil, 0, err
	}
	defer rm.Close()
	eng.Start()
	defer eng.Stop()
	key := func(i int) string { return fmt.Sprintf("rec-key-%05d", i%rows) }
	if err := benchParallelPut(eng, rows, key, func(i int) any { return i }); err != nil {
		return nil, 0, err
	}

	var scenarios []benchRecoveryScenario
	for _, tail := range benchRecoveryTails {
		ckStart := time.Now()
		if _, err := rm.Checkpoint(); err != nil {
			return nil, 0, err
		}
		ckMs := float64(time.Since(ckStart).Microseconds()) / 1000
		// The post-checkpoint tail rewrites existing rows, so every scenario
		// recovers the same data set from a different image/log split.
		if err := benchParallelPut(eng, tail, key, func(i int) any { return i }); err != nil {
			return nil, 0, err
		}
		logBytes := rm.LogBytes()
		if err := rm.Crash(1); err != nil {
			return nil, 0, err
		}
		recStart := time.Now()
		st, err := rm.Restore(1)
		if err != nil {
			return nil, 0, err
		}
		recMs := float64(time.Since(recStart).Microseconds()) / 1000
		if got := eng.TotalRows(); got != rows {
			return nil, 0, fmt.Errorf("%d rows after recovery, want %d", got, rows)
		}
		scenarios = append(scenarios, benchRecoveryScenario{
			LogTail:          tail,
			Replayed:         st.Replayed,
			CheckpointMs:     ckMs,
			RecoveryMs:       recMs,
			DiskLogTailBytes: logBytes,
		})
	}
	if err := rm.Err(); err != nil {
		return nil, 0, fmt.Errorf("recovery log latched an error: %w", err)
	}
	return scenarios, rm.Stats().MaxReplayLag, nil
}

// runBenchRecovery crashes and recovers a machine on a loaded engine with
// increasingly stale checkpoints, once against the in-memory log and once
// against the on-disk WAL. The key layout is deterministic, so the numbers
// are reproducible run to run.
func runBenchRecovery(out string) error {
	const rows = 20_000
	mem, maxLag, err := benchRecoveryPass(recovery.Config{}, rows)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pstore-bench-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	disk, _, err := benchRecoveryPass(recovery.Config{DataDir: dir}, rows)
	if err != nil {
		return err
	}

	res := benchRecoveryResult{
		Benchmark:    "crash_recovery",
		GoVersion:    runtime.Version(),
		Rows:         rows,
		Machines:     2,
		MaxReplayLag: maxLag,
	}
	for i, s := range mem {
		s.DiskCheckpointMs = disk[i].CheckpointMs
		s.DiskRecoveryMs = disk[i].RecoveryMs
		s.DiskLogTailBytes = disk[i].DiskLogTailBytes
		res.Scenarios = append(res.Scenarios, s)
	}
	if res.Failover, err = runBenchFailover(rows); err != nil {
		return err
	}
	if res.SyncCommit, err = runBenchSyncCommit(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	last := res.Scenarios[len(res.Scenarios)-1]
	fmt.Printf("bench: recovery of %d rows: %.1f ms mem / %.1f ms disk with a %d-txn log tail (%d replayed, %s on disk), max lag %d -> %s\n",
		rows, last.RecoveryMs, last.DiskRecoveryMs, last.LogTail, last.Replayed,
		byteCount(last.DiskLogTailBytes), res.MaxReplayLag, out)
	lastFo := res.Failover[len(res.Failover)-1]
	fmt.Printf("bench: failover: detect %.1f ms + promote %.1f ms + first txn %.1f ms with %s of unshipped WAL behind the kill\n",
		lastFo.DetectionMs, lastFo.PromotionMs, lastFo.FirstTxnMs, byteCount(lastFo.ShipLagBytes))
	async, syncRow := res.SyncCommit[0], res.SyncCommit[1]
	fmt.Printf("bench: sync commit: %.0f tps / p99 %.2f ms vs %.0f tps / p99 %.2f ms async; acked txns lost at the kill: %d vs %d\n",
		syncRow.Tps, syncRow.P99Ms, async.Tps, async.P99Ms, syncRow.AckedLost, async.AckedLost)
	return nil
}
