package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/transport"
)

// benchSyncCommitRow is one row of the sync_commit column in
// BENCH_recovery.json: the commit path's throughput and tail latency with
// and without the follower-durability barrier, and — after a primary death
// raced into the middle of a write burst — how many transactions the client
// saw acknowledged that the follower does not hold. That last number is the
// mode's RPO over acked work: it may be positive for async shipping (the
// unshipped WAL window dies with the primary) and must be zero for
// synchronous commit.
type benchSyncCommitRow struct {
	Mode      string  `json:"mode"`
	Txns      int     `json:"txns"`
	Acked     int     `json:"acked"`
	Tps       float64 `json:"tps"`
	P99Ms     float64 `json:"p99_ms"`
	AckedLost int     `json:"acked_lost"`
}

const (
	benchSyncTimedTxns  = 4000
	benchSyncBurstTxns  = 4000
	benchSyncSubmitters = 12
)

// benchSyncCommitRun measures one commit mode against a live primary /
// follower pair: a timed pass for throughput and p99, then a burst with the
// primary killed at its midpoint. The kill instant is the dead flag: writes
// completing after it are acks no real client of a dead process would have
// seen, so only pre-kill successes count as acked — and each acked key is
// then looked up on the follower to count losses exactly.
func benchSyncCommitRun(syncMode bool) (benchSyncCommitRow, error) {
	mode := "async"
	if syncMode {
		mode = "sync"
	}
	row := benchSyncCommitRow{Mode: mode, Txns: benchSyncTimedTxns + benchSyncBurstTxns}
	pdir, err := os.MkdirTemp("", "pstore-bench-sync-p-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(pdir)
	fdir, err := os.MkdirTemp("", "pstore-bench-sync-f-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(fdir)
	primary, err := startBenchReplNode(pdir, "")
	if err != nil {
		return row, err
	}
	defer primary.close()
	follower, err := startBenchReplNode(fdir, primary.url)
	if err != nil {
		return row, err
	}
	defer follower.close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	meta, frames, err := primary.peer.ReplSync(ctx, "")
	if err != nil {
		return row, err
	}
	if err := follower.srv.InstallReplicaState(meta, frames); err != nil {
		return row, err
	}
	sh, err := transport.NewShipper(transport.ShipperConfig{
		RM:       primary.rm,
		Follower: follower.peer,
		FromNode: 0, ToNode: -1,
		Start:      meta.Cursor,
		Interval:   time.Millisecond,
		SyncCommit: syncMode,
	})
	if err != nil {
		return row, err
	}
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	shipDone := make(chan struct{})
	go func() { defer close(shipDone); _ = sh.Run(sctx) }()

	key := func(i int) string { return fmt.Sprintf("sc-key-%06d", i) }

	// Timed pass: concurrent submitters over distinct keys, so the disk
	// store's group commit (and, in sync mode, batch shipping) amortizes the
	// way live traffic would. Everything here completes before the kill.
	lat := make([]time.Duration, benchSyncTimedTxns)
	errs := make(chan error, benchSyncSubmitters)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < benchSyncSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < benchSyncTimedTxns; i += benchSyncSubmitters {
				t0 := time.Now()
				if _, err := primary.eng.Execute("put", key(i), i); err != nil {
					errs <- err
					return
				}
				lat[i] = time.Since(t0)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return row, err
	}
	elapsed := time.Since(start)
	row.Tps = float64(benchSyncTimedTxns) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row.P99Ms = float64(lat[benchSyncTimedTxns*99/100].Microseconds()) / 1000

	// Kill pass: the primary dies mid-burst. The dead flag is the kill
	// instant; it is raised before the shipper is torn down, so a write that
	// sneaks past the disarmed barrier afterwards is never counted as acked
	// (a real client of the dead process would not have seen it either). In
	// sync mode, writes in flight at the teardown fail with ErrSyncAborted
	// rather than ack — that refusal is the RPO-zero contract.
	acked := make([]atomic.Bool, benchSyncBurstTxns)
	var issued atomic.Int64
	var dead atomic.Bool
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			dead.Store(true)
			scancel()
			<-shipDone
		})
	}
	for w := 0; w < benchSyncSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < benchSyncBurstTxns; i += benchSyncSubmitters {
				if dead.Load() {
					return
				}
				if issued.Add(1) == benchSyncBurstTxns/2 {
					go kill()
				}
				if _, err := primary.eng.Execute("put", key(benchSyncTimedTxns+i), i); err == nil && !dead.Load() {
					acked[i].Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	// Count the acked work the follower holds. The timed pass is acked in
	// full; burst acks are whatever beat the kill.
	row.Acked = benchSyncTimedTxns
	for i := range acked {
		if acked[i].Load() {
			row.Acked++
		}
	}
	missing := 0
	for i := 0; i < benchSyncTimedTxns+benchSyncBurstTxns; i++ {
		if i >= benchSyncTimedTxns && !acked[i-benchSyncTimedTxns].Load() {
			continue
		}
		found, err := follower.eng.Execute("get", key(i), nil)
		if err != nil {
			return row, fmt.Errorf("follower lookup of %s: %w", key(i), err)
		}
		if ok, _ := found.(bool); !ok {
			missing++
		}
	}
	row.AckedLost = missing
	if err := follower.rm.Err(); err != nil {
		return row, fmt.Errorf("follower log latched an error: %w", err)
	}
	if syncMode && missing != 0 {
		return row, fmt.Errorf("sync commit lost %d acked transactions; the RPO-zero contract is broken", missing)
	}
	return row, nil
}

// runBenchSyncCommit measures the sync_commit column: the same load and the
// same mid-burst kill under asynchronous shipping and under the
// follower-durability barrier, so the report shows what RPO zero costs.
func runBenchSyncCommit() ([]benchSyncCommitRow, error) {
	var rows []benchSyncCommitRow
	for _, syncMode := range []bool{false, true} {
		r, err := benchSyncCommitRun(syncMode)
		if err != nil {
			return nil, fmt.Errorf("sync-commit bench (%s): %w", r.Mode, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}
