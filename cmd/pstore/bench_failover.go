package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
)

// benchFailoverScenario is one row of the failover column in
// BENCH_recovery.json: how long a coordinator takes to notice a dead primary
// and turn its warm follower into a serving one, as a function of how far
// the ship stream was behind at the kill. ShipLagBytes is the unshipped
// (and therefore lost) WAL window — the asynchronous plane's RPO — while
// Detection/Promotion/FirstTxn add up to the RTO.
type benchFailoverScenario struct {
	LagTxns      int     `json:"lag_txns"`
	ShipLagBytes int64   `json:"ship_lag_bytes"`
	DetectionMs  float64 `json:"detection_ms"`
	PromotionMs  float64 `json:"promotion_ms"`
	FirstTxnMs   float64 `json:"first_txn_ms"`
}

// benchDecodeAny is the bench harness codec: values are plain JSON scalars on
// both the txn and the row path.
func benchDecodeAny(_ string, raw json.RawMessage) (any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// benchReplNode is one node of the bench's primary/follower pair: an engine
// with a disk-backed WAL behind a real listening front end, so detection,
// promotion and the first transaction all cross the wire the way they would
// in production.
type benchReplNode struct {
	eng  *store.Engine
	rm   *recovery.Manager
	srv  *server.Server
	peer *transport.Peer
	url  string
}

func startBenchReplNode(dir, replicaOf string) (*benchReplNode, error) {
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              256,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return nil, err
	}
	if err := eng.Register("get", func(tx *store.Tx) (any, error) {
		_, ok, err := tx.Get("kv", tx.Key)
		return ok, err
	}); err != nil {
		return nil, err
	}
	rm, err := recovery.New(eng, recovery.Config{DataDir: dir})
	if err != nil {
		return nil, err
	}
	eng.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Stop()
		return nil, err
	}
	url := "http://" + l.Addr().String()
	srv, err := server.New(server.Config{
		Engine:     eng,
		DecodeArgs: benchDecodeAny,
		Node: &server.NodeConfig{
			ID: 0, Nodes: 1,
			Recovery:  rm,
			DecodeRow: benchDecodeAny,
			PeerURL:   func(int) string { return url },
			ReplicaOf: replicaOf,
		},
	})
	if err != nil {
		eng.Stop()
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	n := &benchReplNode{eng: eng, rm: rm, srv: srv, peer: transport.NewPeer(url), url: url}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.peer.WaitHealthy(ctx, 10*time.Second); err != nil {
		n.close()
		return nil, err
	}
	return n, nil
}

func (n *benchReplNode) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
	n.eng.Stop()
	n.rm.Close()
}

// benchFailoverScenarioRun runs one kill-the-primary pass: load, sync a
// follower, drain the ship stream, leave lagTxns unshipped, kill the
// primary's front end, then measure detect -> promote -> first transaction.
func benchFailoverScenarioRun(rows, lagTxns int) (benchFailoverScenario, error) {
	var out benchFailoverScenario
	pdir, err := os.MkdirTemp("", "pstore-bench-failover-p-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(pdir)
	fdir, err := os.MkdirTemp("", "pstore-bench-failover-f-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(fdir)

	primary, err := startBenchReplNode(pdir, "")
	if err != nil {
		return out, err
	}
	defer primary.close()
	key := func(i int) string { return fmt.Sprintf("rec-key-%05d", i%rows) }
	if err := benchParallelPut(primary.eng, rows, key, func(i int) any { return i }); err != nil {
		return out, err
	}
	follower, err := startBenchReplNode(fdir, primary.url)
	if err != nil {
		return out, err
	}
	defer follower.close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	meta, frames, err := primary.peer.ReplSync(ctx, "")
	if err != nil {
		return out, err
	}
	if err := follower.srv.InstallReplicaState(meta, frames); err != nil {
		return out, err
	}
	sh, err := transport.NewShipper(transport.ShipperConfig{
		RM:       primary.rm,
		Follower: follower.peer,
		FromNode: 0, ToNode: -1,
		Start: meta.Cursor,
	})
	if err != nil {
		return out, err
	}
	for sh.Lag() > 0 {
		if _, err := sh.ShipOnce(ctx); err != nil {
			return out, err
		}
	}
	// The lag window: transactions the primary acked but never shipped.
	// Rewrites of loaded keys, so the follower's row count is unaffected —
	// what the window costs is the freshness of those values, not rows.
	if err := benchParallelPut(primary.eng, lagTxns, key, func(i int) any { return i }); err != nil {
		return out, err
	}
	out.LagTxns = lagTxns
	out.ShipLagBytes = sh.Lag()

	// Kill the primary's front end; probes now see connection refused, which
	// reads exactly like a dead process.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = primary.srv.Shutdown(shCtx)
	shCancel()

	det, err := cluster.DetectFailure(ctx, primary.peer, cluster.DetectorConfig{
		Probe: 10 * time.Millisecond, FailAfter: 3,
	})
	if err != nil {
		return out, err
	}
	out.DetectionMs = float64(det.Microseconds()) / 1000

	promoteStart := time.Now()
	if _, err := cluster.Promote(ctx, cluster.PromoteConfig{
		Replica:    follower.peer,
		ReplicaURL: follower.url,
		FailedNode: 0,
	}); err != nil {
		return out, err
	}
	out.PromotionMs = float64(time.Since(promoteStart).Microseconds()) / 1000

	txnStart := time.Now()
	body, err := json.Marshal(wire.Request{Txn: "put", Key: key(0), Args: json.RawMessage("-1")})
	if err != nil {
		return out, err
	}
	resp, err := http.Post(follower.url+wire.PathTxn, "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("first transaction on promoted follower: HTTP %d", resp.StatusCode)
	}
	out.FirstTxnMs = float64(time.Since(txnStart).Microseconds()) / 1000

	if got := follower.eng.TotalRows(); got != rows {
		return out, fmt.Errorf("%d rows on promoted follower, want %d", got, rows)
	}
	if err := follower.rm.Err(); err != nil {
		return out, fmt.Errorf("follower log latched an error: %w", err)
	}
	return out, nil
}

// runBenchFailover measures the failover column: one kill-the-primary pass
// per recovery tail size, so the report shows detection + promotion +
// first-transaction latency against the unshipped-WAL window those tails
// leave behind.
func runBenchFailover(rows int) ([]benchFailoverScenario, error) {
	var scenarios []benchFailoverScenario
	for _, tail := range benchRecoveryTails {
		s, err := benchFailoverScenarioRun(rows, tail)
		if err != nil {
			return nil, fmt.Errorf("failover with %d-txn lag: %w", tail, err)
		}
		scenarios = append(scenarios, s)
	}
	return scenarios, nil
}
