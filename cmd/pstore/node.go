package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/store"
	"pstore/internal/workload"
)

// serveNodeConfig carries the serve flags that apply in node mode.
type serveNodeConfig struct {
	node, nodes   int
	peers         string
	days          int
	minute        time.Duration
	seed          int64
	initial, maxM int
	deadline      time.Duration
	overloadSpec  string
	listen        string
	serveFor      time.Duration
	dataDir       string
}

// runServeNode runs one partition-group node of a multi-process cluster: an
// engine hosting machines m where m % nodes == node, behind a front end that
// serves both the transaction plane (forwarding keys it does not host to the
// hosting peer) and the node plane (extract/install/flip, crash/restore)
// that pstore coord drives. Every node loads the same deterministic dataset
// and keeps only its share, so the union across nodes is exactly the
// single-process dataset.
func runServeNode(cfg serveNodeConfig) error {
	if cfg.nodes < 1 {
		return errors.New("-node requires -nodes >= 1")
	}
	if cfg.node >= cfg.nodes {
		return fmt.Errorf("-node %d out of range for -nodes %d", cfg.node, cfg.nodes)
	}
	if cfg.listen == "" {
		return errors.New("-node requires -listen")
	}
	var peers []string
	if cfg.peers != "" {
		peers = strings.Split(cfg.peers, ",")
		if len(peers) != cfg.nodes {
			return fmt.Errorf("-peers lists %d URLs, want %d (one per node, in node-id order)", len(peers), cfg.nodes)
		}
	}

	// The trace contract is computed exactly as in single-process serve, so
	// a drive process pointed at any node replays the same workload.
	full, err := workload.SyntheticB2W(workload.DefaultB2WConfig(cfg.seed, 28+cfg.days))
	if err != nil {
		return err
	}
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())

	olCfg, err := store.ParseOverload(cfg.overloadSpec)
	if err != nil {
		return err
	}
	if cfg.deadline < 0 {
		return fmt.Errorf("negative -deadline %v", cfg.deadline)
	}
	if cfg.deadline > 0 {
		olCfg.Deadline = cfg.deadline
	}
	engCfg := store.Config{
		MaxMachines:          cfg.maxM,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      cfg.initial,
		Overload:             olCfg,
	}
	for m := 0; m < cfg.maxM; m++ {
		if m%cfg.nodes == cfg.node {
			engCfg.HostedMachines = append(engCfg.HostedMachines, m)
		}
	}
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 0.75 * float64(cfg.maxM) * perMachine * cfg.minute.Seconds() / replay.Max()

	eng, err := store.NewEngine(engCfg)
	if err != nil {
		return err
	}
	if err := b2w.Register(eng); err != nil {
		return err
	}
	// The recovery manager attaches before Start so the bulk load is logged
	// and the coordinator's crash plane works from the first transaction on.
	// With -data-dir the log is the on-disk WAL and a restart of this node
	// cold-starts from the directory instead of reloading the dataset.
	rm, err := recovery.New(eng, recovery.Config{DataDir: cfg.dataDir})
	if err != nil {
		return err
	}
	defer rm.Close()
	eng.Start()
	defer eng.Stop()

	spec := b2w.LoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: cfg.seed}
	if rm.HasColdState() {
		fmt.Fprintf(os.Stderr, "serve: node %d/%d hosting machines %v, cold-starting from %s\n",
			cfg.node, cfg.nodes, engCfg.HostedMachines, cfg.dataDir)
		cs, err := rm.ColdStart()
		if err != nil {
			return fmt.Errorf("cold start from %s: %w", cfg.dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "serve: cold start rebuilt %d machines / %d partitions: %d images, %d commands replayed, %s of log, in %v\n",
			cs.Machines, cs.Partitions, cs.Snapshots, cs.Replayed, byteCount(cs.LogBytes),
			cs.Duration.Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "serve: node %d/%d hosting machines %v, loading dataset\n",
			cfg.node, cfg.nodes, engCfg.HostedMachines)
		if err := b2w.Load(eng, spec); err != nil {
			return err
		}
		// Baseline checkpoint: restores replay only live traffic, not the
		// load.
		if _, err := rm.Checkpoint(); err != nil {
			return err
		}
	}
	if olCfg.Enabled() {
		fmt.Fprintf(os.Stderr, "serve: overload plane armed: %s\n", olCfg)
	}

	info := serveInfo{
		Seed: cfg.seed, Days: cfg.days,
		MinuteMs:     float64(cfg.minute) / float64(time.Millisecond),
		RateScale:    rateScale,
		DeadlineMs:   float64(olCfg.Deadline) / float64(time.Millisecond),
		Carts:        spec.Carts,
		Checkouts:    spec.Checkouts,
		Stocks:       spec.Stocks,
		LinesPerCart: spec.LinesPerCart,
		Node:         cfg.node,
		Nodes:        cfg.nodes,
	}
	if olCfg.Enabled() {
		info.Overload = olCfg.String()
	}
	nodeCfg := &server.NodeConfig{
		ID:        cfg.node,
		Nodes:     cfg.nodes,
		Recovery:  rm,
		DecodeRow: b2w.DecodeRow,
	}
	if peers != nil {
		nodeCfg.PeerURL = func(node int) string { return peers[node] }
	}
	scfg := server.Config{
		Engine:          eng,
		DecodeArgs:      b2w.DecodeArgs,
		DefaultDeadline: time.Duration(info.DeadlineMs * float64(time.Millisecond)),
		Info:            info,
		Node:            nodeCfg,
	}
	start := time.Now()
	sc, err := serveWire(context.Background(), scfg, cfg.listen, cfg.serveFor)
	if err != nil {
		return err
	}

	fmt.Printf("wire: %d requests in %d frames (%d batches): %d ok, %d txn-errors, %d bad-requests, %d internal, %d forwarded\n",
		sc.Requests, sc.Frames, sc.Batches, sc.OK, sc.TxnErrors, sc.BadRequests, sc.Internal, sc.Forwarded)
	ec := eng.Counters()
	fmt.Printf("node %d served %d transactions (%d failed) in %v\n",
		cfg.node, ec.Completed, ec.Errored, time.Since(start).Round(time.Millisecond))
	rs := rm.Stats()
	if rs.Crashes > 0 || rs.Checkpoints > 1 {
		fmt.Printf("recovery: %d crashes, %d recoveries, %d commands replayed (max lag %d), downtime %v, %d checkpoints\n",
			rs.Crashes, rs.Recoveries, rs.ReplayedCommands, rs.MaxReplayLag,
			rs.Downtime.Round(time.Millisecond), rs.Checkpoints)
	}
	if cfg.dataDir != "" {
		fmt.Printf("durable log: %d records retained, %s on disk\n", rm.LogSize(), byteCount(rm.LogBytes()))
		if err := rm.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: WARNING: durable log latched an error: %v\n", err)
		}
	}
	return nil
}
