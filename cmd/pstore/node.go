package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
	"pstore/internal/workload"
)

// serveNodeConfig carries the serve flags that apply in node mode.
type serveNodeConfig struct {
	node, nodes   int
	peers         string
	days          int
	minute        time.Duration
	seed          int64
	initial, maxM int
	deadline      time.Duration
	overloadSpec  string
	listen        string
	serveFor      time.Duration
	dataDir       string
	replicaOf     string
	advertise     string
	shipFaults    string
	// syncCommit holds every transaction ack until the follower has durably
	// appended its WAL record; followerCkptEvery makes a replica checkpoint
	// its own log every N applied records.
	syncCommit        bool
	followerCkptEvery int
}

// advertiseURL derives the base URL peers use to reach this process: the
// explicit -advertise flag, or the listen address with a loopback host
// filled in when it only names a port.
func (cfg *serveNodeConfig) advertiseURL() string {
	if cfg.advertise != "" {
		return cfg.advertise
	}
	addr := cfg.listen
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	if !strings.HasPrefix(addr, "http://") {
		addr = "http://" + addr
	}
	return addr
}

// runServeNode runs one partition-group node of a multi-process cluster: an
// engine hosting machines m where m % nodes == node, behind a front end that
// serves both the transaction plane (forwarding keys it does not host to the
// hosting peer) and the node plane (extract/install/flip, crash/restore)
// that pstore coord drives. Every node loads the same deterministic dataset
// and keeps only its share, so the union across nodes is exactly the
// single-process dataset.
func runServeNode(cfg serveNodeConfig) error {
	if cfg.nodes < 1 {
		return errors.New("-node requires -nodes >= 1")
	}
	if cfg.node >= cfg.nodes {
		return fmt.Errorf("-node %d out of range for -nodes %d", cfg.node, cfg.nodes)
	}
	if cfg.listen == "" {
		return errors.New("-node requires -listen")
	}
	var peers []string
	if cfg.peers != "" {
		peers = strings.Split(cfg.peers, ",")
		if len(peers) != cfg.nodes {
			return fmt.Errorf("-peers lists %d URLs, want %d (one per node, in node-id order)", len(peers), cfg.nodes)
		}
	}

	// The trace contract is computed exactly as in single-process serve, so
	// a drive process pointed at any node replays the same workload.
	full, err := workload.SyntheticB2W(workload.DefaultB2WConfig(cfg.seed, 28+cfg.days))
	if err != nil {
		return err
	}
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())

	olCfg, err := store.ParseOverload(cfg.overloadSpec)
	if err != nil {
		return err
	}
	if cfg.deadline < 0 {
		return fmt.Errorf("negative -deadline %v", cfg.deadline)
	}
	if cfg.deadline > 0 {
		olCfg.Deadline = cfg.deadline
	}
	engCfg := store.Config{
		MaxMachines:          cfg.maxM,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      cfg.initial,
		Overload:             olCfg,
	}
	if cfg.replicaOf != "" {
		// A replica executes only its primary's shipped records; admission
		// control or CoDel shedding here would fork the replicated history,
		// so the overload plane is disarmed regardless of flags.
		engCfg.Overload = store.OverloadConfig{}
	}
	for m := 0; m < cfg.maxM; m++ {
		if m%cfg.nodes == cfg.node {
			engCfg.HostedMachines = append(engCfg.HostedMachines, m)
		}
	}
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 0.75 * float64(cfg.maxM) * perMachine * cfg.minute.Seconds() / replay.Max()

	eng, err := store.NewEngine(engCfg)
	if err != nil {
		return err
	}
	if err := b2w.Register(eng); err != nil {
		return err
	}
	// The recovery manager attaches before Start so the bulk load is logged
	// and the coordinator's crash plane works from the first transaction on.
	// With -data-dir the log is the on-disk WAL and a restart of this node
	// cold-starts from the directory instead of reloading the dataset.
	rm, err := recovery.New(eng, recovery.Config{DataDir: cfg.dataDir})
	if err != nil {
		return err
	}
	defer rm.Close()
	eng.Start()
	defer eng.Stop()

	spec := b2w.LoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: cfg.seed}
	if cfg.replicaOf != "" {
		if rm.HasColdState() {
			return fmt.Errorf("replica mode needs a fresh -data-dir; %s already has state (cold-restart it as a primary instead)", cfg.dataDir)
		}
		fmt.Fprintf(os.Stderr, "serve: node %d/%d hosting machines %v as warm replica of %s\n",
			cfg.node, cfg.nodes, engCfg.HostedMachines, cfg.replicaOf)
	} else if rm.HasColdState() {
		fmt.Fprintf(os.Stderr, "serve: node %d/%d hosting machines %v, cold-starting from %s\n",
			cfg.node, cfg.nodes, engCfg.HostedMachines, cfg.dataDir)
		cs, err := rm.ColdStart()
		if err != nil {
			return fmt.Errorf("cold start from %s: %w", cfg.dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "serve: cold start rebuilt %d machines / %d partitions: %d images, %d commands replayed, %s of log, in %v\n",
			cs.Machines, cs.Partitions, cs.Snapshots, cs.Replayed, byteCount(cs.LogBytes),
			cs.Duration.Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "serve: node %d/%d hosting machines %v, loading dataset\n",
			cfg.node, cfg.nodes, engCfg.HostedMachines)
		if err := b2w.Load(eng, spec); err != nil {
			return err
		}
		// Baseline checkpoint: restores replay only live traffic, not the
		// load.
		if _, err := rm.Checkpoint(); err != nil {
			return err
		}
	}
	if olCfg.Enabled() {
		fmt.Fprintf(os.Stderr, "serve: overload plane armed: %s\n", olCfg)
	}

	info := serveInfo{
		Seed: cfg.seed, Days: cfg.days,
		MinuteMs:     float64(cfg.minute) / float64(time.Millisecond),
		RateScale:    rateScale,
		DeadlineMs:   float64(olCfg.Deadline) / float64(time.Millisecond),
		Carts:        spec.Carts,
		Checkouts:    spec.Checkouts,
		Stocks:       spec.Stocks,
		LinesPerCart: spec.LinesPerCart,
		Node:         cfg.node,
		Nodes:        cfg.nodes,
	}
	if olCfg.Enabled() {
		info.Overload = olCfg.String()
	}
	nodeCfg := &server.NodeConfig{
		ID:                      cfg.node,
		Nodes:                   cfg.nodes,
		Recovery:                rm,
		DecodeRow:               b2w.DecodeRow,
		ReplicaOf:               cfg.replicaOf,
		FollowerCheckpointEvery: cfg.followerCkptEvery,
	}
	// The peer table is mutable: after a failover the coordinator rewires
	// the dead node's slot to its promoted replica via /v1/node/peer.
	var peerMu sync.RWMutex
	if peers != nil {
		nodeCfg.PeerURL = func(node int) string {
			peerMu.RLock()
			defer peerMu.RUnlock()
			return peers[node]
		}
		nodeCfg.SetPeerURL = func(node int, url string) {
			peerMu.Lock()
			peers[node] = url
			peerMu.Unlock()
		}
	}
	var shipInj *faults.ShipInjector
	if cfg.shipFaults != "" {
		sfc, err := faults.ParseShip(cfg.shipFaults)
		if err != nil {
			return err
		}
		if sfc.Enabled() {
			if shipInj, err = faults.NewShip(sfc); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "serve: ship-fault plane armed: %s\n", sfc)
		}
	}
	if cfg.syncCommit {
		fmt.Fprintf(os.Stderr, "serve: synchronous commit armed: acks wait for follower durability once a follower syncs\n")
	}
	// When a follower syncs against this node, start (or restart) the WAL
	// shipper that streams records from the sync cursor to it.
	var shipMu sync.Mutex
	var shipCancel context.CancelFunc
	stopShipper := func() {
		shipMu.Lock()
		if shipCancel != nil {
			shipCancel()
			shipCancel = nil
		}
		shipMu.Unlock()
	}
	defer stopShipper()
	// The self-healing hooks run against the server handle, which does not
	// exist until the listener is up; they reach it through this holder.
	var srvMu sync.Mutex
	var srvPtr *server.Server
	// rejoinMu serialises self-demotions: the coordinator's demote order and
	// the shipper's own fenced exit can race toward the same rejoin.
	var rejoinMu sync.Mutex
	rejoinAsFollower := func(primaryURL string) {
		rejoinMu.Lock()
		defer rejoinMu.Unlock()
		srvMu.Lock()
		srv := srvPtr
		srvMu.Unlock()
		if srv == nil || srv.IsReplica() {
			return
		}
		// Stop shipping and fail any sync-commit waiters parked on the dead
		// stream: their records may sit past the divergence point, and
		// nothing will ever confirm them.
		stopShipper()
		rm.AbortSync()
		rm.SetSyncCommit(false)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		primary := transport.NewPeer(primaryURL)
		if err := primary.WaitHealthy(ctx, time.Minute); err != nil {
			fmt.Fprintf(os.Stderr, "serve: FATAL: rejoin: new primary %s unreachable: %v\n", primaryURL, err)
			os.Exit(1)
		}
		pst, err := primary.ReplStatus(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: FATAL: rejoin: new primary %s status: %v\n", primaryURL, err)
			os.Exit(1)
		}
		warm, err := srv.DemoteToFollower(pst)
		if err != nil {
			if errors.Is(err, wire.ErrFenced) {
				// A stale order: the named primary does not outrank us.
				fmt.Fprintf(os.Stderr, "serve: rejoin refused: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "serve: warm rejoin failed (%v); falling back to a full resync\n", err)
			warm = false
		}
		if warm {
			if _, err := primary.ReplResume(ctx, cfg.advertiseURL(), pst.Rejoin.Cursor); err == nil {
				fmt.Fprintf(os.Stderr, "serve: rejoined %s as warm follower: epoch %d, resuming at segment %d record %d\n",
					primaryURL, pst.Epoch, pst.Rejoin.Cursor.Seg, pst.Rejoin.Cursor.Rec)
				return
			} else {
				fmt.Fprintf(os.Stderr, "serve: resume stream refused (%v); falling back to a full resync\n", err)
			}
		}
		// Full resync: wipe the local log and rebuild from a fresh snapshot
		// stream, exactly like a first-boot replica.
		srv.PrepareFullResync()
		meta, frames, err := primary.ReplSync(ctx, cfg.advertiseURL())
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: FATAL: rejoin full resync from %s: %v\n", primaryURL, err)
			os.Exit(1)
		}
		if err := srv.InstallReplicaState(meta, frames); err != nil {
			fmt.Fprintf(os.Stderr, "serve: FATAL: rejoin install from %s: %v\n", primaryURL, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serve: rejoined %s by full resync: epoch %d, %d buckets, cursor segment %d record %d\n",
			primaryURL, meta.Epoch, meta.Buckets, meta.Cursor.Seg, meta.Cursor.Rec)
	}
	nodeCfg.OnDemote = rejoinAsFollower
	nodeCfg.OnReplicaSync = func(url string, cur wire.ShipCursor) {
		shipMu.Lock()
		defer shipMu.Unlock()
		if shipCancel != nil {
			shipCancel() // the follower resynced; the old stream is dead
		}
		// Under synchronous commit the ship poll period is the floor on
		// commit latency (a waiting ack cannot be released faster than the
		// shipper notices the new records), so poll tighter than the default.
		interval := time.Duration(0)
		if cfg.syncCommit {
			interval = time.Millisecond
		}
		sh, err := transport.NewShipper(transport.ShipperConfig{
			RM:         rm,
			Follower:   transport.NewPeer(url),
			FromNode:   cfg.node,
			ToNode:     -1,
			Faults:     shipInj,
			Start:      cur,
			Interval:   interval,
			SyncCommit: cfg.syncCommit,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: cannot ship to follower %s: %v\n", url, err)
			return
		}
		sctx, cancel := context.WithCancel(context.Background())
		shipCancel = cancel
		fmt.Fprintf(os.Stderr, "serve: shipping WAL to follower %s from segment %d record %d\n", url, cur.Seg, cur.Rec)
		go func() {
			err := sh.Run(sctx)
			if err == nil || sctx.Err() != nil {
				return
			}
			if errors.Is(err, wire.ErrFenced) {
				// The follower we were feeding outranks us: it has been
				// promoted and refused our batch. Fence immediately — a
				// zombie serving writes is a split brain — and rejoin as
				// its follower.
				fmt.Fprintf(os.Stderr, "serve: WAL shipper fenced by %s; rejoining as its follower\n", url)
				srvMu.Lock()
				srv := srvPtr
				srvMu.Unlock()
				if srv != nil {
					srv.MarkFenced()
				}
				rejoinAsFollower(url)
				return
			}
			fmt.Fprintf(os.Stderr, "serve: WAL shipper to %s stopped: %v\n", url, err)
		}()
	}
	scfg := server.Config{
		Engine:          eng,
		DecodeArgs:      b2w.DecodeArgs,
		DefaultDeadline: time.Duration(info.DeadlineMs * float64(time.Millisecond)),
		Info:            info,
		Node:            nodeCfg,
	}
	start := time.Now()
	started := func(srv *server.Server) {
		srvMu.Lock()
		srvPtr = srv
		srvMu.Unlock()
		if cfg.replicaOf != "" {
			go func() {
				if err := bootstrapReplica(srv, cfg); err != nil {
					fmt.Fprintf(os.Stderr, "serve: FATAL: replica sync from %s failed: %v\n", cfg.replicaOf, err)
					os.Exit(1)
				}
			}()
		}
	}
	sc, err := serveWireWith(context.Background(), scfg, cfg.listen, cfg.serveFor, started)
	if err != nil {
		return err
	}

	fmt.Printf("wire: %d requests in %d frames (%d batches): %d ok, %d txn-errors, %d bad-requests, %d internal, %d forwarded\n",
		sc.Requests, sc.Frames, sc.Batches, sc.OK, sc.TxnErrors, sc.BadRequests, sc.Internal, sc.Forwarded)
	ec := eng.Counters()
	fmt.Printf("node %d served %d transactions (%d failed) in %v\n",
		cfg.node, ec.Completed, ec.Errored, time.Since(start).Round(time.Millisecond))
	rs := rm.Stats()
	if rs.Crashes > 0 || rs.Checkpoints > 1 {
		fmt.Printf("recovery: %d crashes, %d recoveries, %d commands replayed (max lag %d), downtime %v, %d checkpoints\n",
			rs.Crashes, rs.Recoveries, rs.ReplayedCommands, rs.MaxReplayLag,
			rs.Downtime.Round(time.Millisecond), rs.Checkpoints)
	}
	if cfg.dataDir != "" {
		fmt.Printf("durable log: %d records retained, %s on disk\n", rm.LogSize(), byteCount(rm.LogBytes()))
		if err := rm.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: WARNING: durable log latched an error: %v\n", err)
		}
	}
	return nil
}

// bootstrapReplica runs the follower half of the sync protocol once this
// node's own server is accepting: fetch a fuzzy snapshot from the primary
// and install it as the local state and recovery baseline. The primary
// starts shipping to this node's advertised URL as part of serving the
// sync; until the install completes, ship batches are refused retryably.
func bootstrapReplica(srv *server.Server, cfg serveNodeConfig) error {
	primary := transport.NewPeer(cfg.replicaOf)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := primary.WaitHealthy(ctx, time.Minute); err != nil {
		return err
	}
	meta, frames, err := primary.ReplSync(ctx, cfg.advertiseURL())
	if err != nil {
		return err
	}
	if err := srv.InstallReplicaState(meta, frames); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: replica synced from %s: epoch %d, %d buckets, plan seq %d, cursor segment %d record %d\n",
		cfg.replicaOf, meta.Epoch, meta.Buckets, meta.PlanSeq, meta.Cursor.Seg, meta.Cursor.Rec)
	return nil
}
