// Command pstore is the command-line entry point to the P-Store
// reproduction: it regenerates every table and figure of the paper's
// evaluation, generates synthetic load traces, fits load predictors, runs
// the predictive elasticity planner on a trace, and serves a live cluster
// replaying a trace under a provisioning controller.
//
// Usage:
//
//	pstore list                              list all experiments
//	pstore experiment <id> [flags]           run one experiment (or "all")
//	pstore serve [flags]                     run a live cluster against a trace
//	pstore trace [flags]                     generate a synthetic load trace CSV
//	pstore predict [flags]                   fit a predictor on a trace CSV and forecast
//	pstore plan [flags]                      plan reconfigurations for a trace CSV
//	pstore bench [flags]                     benchmark the engine hot path, emit JSON
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/elastic"
	"pstore/internal/experiments"
	"pstore/internal/faults"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/planner"
	"pstore/internal/predictor"
	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "predict":
		err = runPredict(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pstore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  pstore list                     list all experiments
  pstore experiment <id|all>      run an experiment (-full for paper-size runs, -seed N)
  pstore serve                    run a live cluster replaying a trace under a controller
  pstore trace                    generate a synthetic B2W-like load trace CSV
  pstore predict                  fit SPAR/AR/ARMA on a trace CSV and report accuracy
  pstore plan                     run the predictive elasticity planner on a trace CSV
  pstore bench                    benchmark the transaction hot path, emit BENCH_engine.json
`)
}

func runList() error {
	for _, id := range experiments.IDs() {
		title, _ := experiments.Title(id)
		fmt.Printf("%-8s %s\n", id, title)
	}
	return nil
}

func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	full := fs.Bool("full", false, "run at paper-equivalent size (slower)")
	seed := fs.Int64("seed", 1, "random seed")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("experiment: need exactly one experiment id (or \"all\")")
	}
	ids := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		ids = experiments.IDs()
	}
	opts := experiments.Options{Quick: !*full, Seed: *seed}
	if !*quiet {
		opts.Log = os.Stderr
	}
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(r.Text())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runServe boots the cluster runtime — engine, Squall executor, recorder
// and the controller's monitoring/decision loop — and replays a compressed
// synthetic retail trace through it, streaming the runtime's events to
// stderr and printing a provisioning summary at the end.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	days := fs.Int("days", 1, "days to replay after the 28-day training window")
	policy := fs.String("controller", "pstore", "provisioning controller: pstore, reactive, static")
	initial := fs.Int("machines", 2, "initial machine count")
	maxM := fs.Int("max", 8, "maximum machine count")
	minute := fs.Duration("minute", 10*time.Millisecond, "wall time per trace minute")
	cycleMin := fs.Int("cycle", 5, "controller cycle in trace minutes")
	seed := fs.Int64("seed", 1, "random seed")
	sloMs := fs.Float64("slo", 40, "latency SLO in ms on this substrate")
	faultSpec := fs.String("faults", "", "fault-injection spec, e.g. seed=42,chunk-drop=0.05 (keys: seed, chunk-drop, chunk-slow, slow-delay, stall, stall-delay, crash-pair=F:T, crash-part=N)")
	crashSpec := fs.String("crash", "", "machine-crash schedule, e.g. seed=42,rate=0.02,downtime=4,at=1@10+5 (keys: seed, rate, downtime, at=M@T[+D] in controller cycles)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint the recovery command log every N controller cycles (0 = 10 when -crash is set)")
	deadline := fs.Duration("deadline", 0, "per-request deadline arming admission control and queue-deadline enforcement (0 = off)")
	overloadSpec := fs.String("overload", "", "overload-plane spec, e.g. deadline=50ms,target=5ms,interval=100ms,track=true (shorthand: -deadline)")
	quiet := fs.Bool("quiet", false, "suppress the live event log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 || *initial < 1 || *maxM < *initial || *cycleMin < 1 || *minute <= 0 {
		return errors.New("serve: invalid sizing flags")
	}

	// Training month plus the replayed day(s).
	full, err := workload.SyntheticB2W(workload.DefaultB2WConfig(*seed, 28+*days))
	if err != nil {
		return err
	}
	train := full.Slice(0, 28*workload.MinutesPerDay)
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())

	olCfg, err := store.ParseOverload(*overloadSpec)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *deadline < 0 {
		return fmt.Errorf("serve: negative -deadline %v", *deadline)
	}
	if *deadline > 0 {
		olCfg.Deadline = *deadline
	}
	engCfg := store.Config{
		MaxMachines:          *maxM,
		PartitionsPerMachine: 4,
		Buckets:              640,
		ServiceTime:          3 * time.Millisecond,
		QueueCapacity:        1 << 15,
		InitialMachines:      *initial,
		Overload:             olCfg,
	}
	if olCfg.Enabled() {
		fmt.Fprintf(os.Stderr, "serve: overload plane armed: %s\n", olCfg)
	}
	// Size the trace so its peak demands ~3/4 of the cluster at Q-hat.
	perMachine := 0.8 * float64(engCfg.PartitionsPerMachine) / engCfg.ServiceTime.Seconds()
	rateScale := 0.75 * float64(*maxM) * perMachine * minute.Seconds() / replay.Max()
	qMax := perMachine * minute.Seconds() / rateScale
	model := migration.Model{Q: 0.65 / 0.8 * qMax, QMax: qMax, D: 10, P: engCfg.PartitionsPerMachine}

	var ctrl elastic.Controller
	switch *policy {
	case "pstore":
		cycleTrain, err := train.Resample(*cycleMin)
		if err != nil {
			return err
		}
		period := workload.MinutesPerDay / *cycleMin
		spar := predictor.NewSPAR(period, 7, 6)
		online := predictor.NewOnline(spar, 0, 9*period)
		if err := online.ObserveAll(cycleTrain.Values); err != nil {
			return err
		}
		ctrl = &elastic.Predictive{
			Model: model, Predictor: online,
			Horizon: 36, Inflation: 0.15, ScaleInConfirm: 6,
			MaxMachines: *maxM, OnSpike: elastic.SpikeFastRate,
		}
	case "reactive":
		ctrl = &elastic.Reactive{Model: model, MaxMachines: *maxM}
	case "static":
		ctrl = nil
	default:
		return fmt.Errorf("serve: unknown controller %q", *policy)
	}

	var inj *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if inj, err = faults.New(fcfg); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fmt.Fprintf(os.Stderr, "serve: fault plane armed: %s\n", fcfg)
	}
	var crash *faults.CrashSchedule
	if *crashSpec != "" {
		cs, err := faults.ParseCrash(*crashSpec)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		crash = &cs
		fmt.Fprintf(os.Stderr, "serve: crash plane armed: %s\n", cs)
	}

	spec := b2w.LoadSpec{Carts: 2400, Checkouts: 600, Stocks: 1200, LinesPerCart: 3, Seed: *seed}
	clusterCfg := cluster.Config{
		Engine:            engCfg,
		Squall:            squall.DefaultConfig(),
		Controller:        ctrl,
		Cycle:             time.Duration(*cycleMin) * *minute,
		RateScale:         rateScale,
		CycleTraceMinutes: float64(*cycleMin),
		RecorderWindow:    300 * time.Millisecond,
		Bootstrap: func(eng *store.Engine) error {
			return b2w.Load(eng, spec)
		},
		Crash:           crash,
		CheckpointEvery: *ckptEvery,
	}
	if inj != nil {
		clusterCfg.FaultInjector = inj
	}
	c, err := cluster.New(clusterCfg)
	if err != nil {
		return err
	}
	if err := b2w.Register(c.Engine()); err != nil {
		return err
	}

	events, unsubscribe := c.Subscribe(4096)
	defer unsubscribe()
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for e := range events {
			switch e.(type) {
			case cluster.LoadObserved:
				// Per-cycle observations are too chatty for the log.
			default:
				if !*quiet {
					fmt.Fprintf(os.Stderr, "serve: %v\n", e)
				}
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "serve: replaying %d day(s) (1 trace minute = %v) under %q on up to %d machines\n",
		*days, *minute, *policy, *maxM)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		return err
	}
	defer c.Stop()
	start := time.Now()
	driver := &b2w.Driver{Eng: c.Engine(), Spec: spec, Seed: *seed + 1, Recorder: c.Recorder()}
	stats, err := driver.Run(ctx, replay, *minute, rateScale)
	c.Stop()
	watch.Wait()
	if err != nil && ctx.Err() == nil {
		return err
	}

	rec := c.Recorder()
	cs := c.Stats()
	fmt.Printf("served %d transactions (%d failed) in %v\n",
		stats.Executed, stats.Failed, time.Since(start).Round(time.Millisecond))
	// One refused-work total across the whole stack: the driver's client-side
	// in-flight cap and the engine's admission/shed/deadline defenses.
	if oc := rec.OverloadCounters(); oc.Refused() > 0 || olCfg.Enabled() {
		fmt.Printf("refused: %d total (%d rejected, %d shed, %d deadline-exceeded, %d client-shed), worst queue delay %v\n",
			oc.Refused(), oc.Rejected, oc.Shed, oc.DeadlineExceeded, oc.ClientShed,
			c.Engine().MaxQueueSojourn().Round(time.Millisecond))
	}
	fmt.Printf("SLA violations (>%g ms): p50 %d, p95 %d, p99 %d\n",
		*sloMs, rec.SLAViolations(50, *sloMs), rec.SLAViolations(95, *sloMs), rec.SLAViolations(99, *sloMs))
	fmt.Printf("machines: avg %.2f (initial %d, max %d)\n", rec.AverageMachines(), *initial, *maxM)
	fmt.Printf("controller: %d decisions, %d moves (%d emergency), %d failures\n",
		cs.Decisions, cs.Moves, cs.Emergencies, cs.Failures)
	mc := rec.MigrationCounters()
	fmt.Printf("migration: %d chunk retries, %d aborts, %d chunks rolled back\n",
		mc.Retries, mc.Aborts, mc.RollbackChunks)
	if rm := c.Recovery(); rm != nil {
		rs := rm.Stats()
		fmt.Printf("recovery: %d crashes, %d recoveries, %d commands replayed (max lag %d), downtime %v, %d checkpoints\n",
			rs.Crashes, rs.Recoveries, rs.ReplayedCommands, rs.MaxReplayLag,
			rs.Downtime.Round(time.Millisecond), rs.Checkpoints)
	}
	if inj != nil {
		ist := inj.Stats()
		fmt.Printf("faults: %d chunk sends offered, %d dropped, %d crashed, %d slowed, %d stalled\n",
			ist.Offered, ist.Drops, ist.Crashes, ist.Slows, ist.Stalls)
	}
	return nil
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	days := fs.Int("days", 3, "trace length in days")
	seed := fs.Int64("seed", 1, "random seed")
	bf := fs.Int("blackfriday", -1, "day index of a Black Friday surge (-1 = none)")
	out := fs.String("out", "", "output CSV path (default stdout)")
	kind := fs.String("kind", "b2w", "trace kind: b2w, wiki-en, wiki-de")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var series workload.Series
	var err error
	switch *kind {
	case "b2w":
		cfg := workload.DefaultB2WConfig(*seed, *days)
		cfg.BlackFridayDay = *bf
		series, err = workload.SyntheticB2W(cfg)
	case "wiki-en":
		series, err = workload.SyntheticWikipedia(workload.EnglishWikipediaConfig(*seed, *days))
	case "wiki-de":
		series, err = workload.SyntheticWikipedia(workload.GermanWikipediaConfig(*seed, *days))
	default:
		return fmt.Errorf("trace: unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.WriteCSV(w, series)
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	input := fs.String("input", "", "load trace CSV (from pstore trace)")
	model := fs.String("model", "spar", "model: spar, ar, arma, naive")
	period := fs.Int("period", 1440, "slots per period (1440 for per-minute daily)")
	nPeriods := fs.Int("n", 7, "SPAR: previous periods")
	mRecent := fs.Int("m", 30, "SPAR: recent offsets / AR order")
	tau := fs.Int("tau", 60, "forecast period in slots")
	trainFrac := fs.Float64("train", 0.8, "fraction of the trace used for training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return errors.New("predict: -input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	trace := series.Values
	split := int(float64(len(trace)) * *trainFrac)
	if split < 2 || split >= len(trace)-*tau {
		return fmt.Errorf("predict: train split %d leaves no test window", split)
	}

	var p predictor.Predictor
	switch strings.ToLower(*model) {
	case "spar":
		s := predictor.NewSPAR(*period, *nPeriods, *mRecent)
		if err := s.FitHorizons(trace[:split], *tau); err != nil {
			return err
		}
		p = s
	case "ar":
		a := predictor.NewAR(*mRecent)
		if err := a.Fit(trace[:split]); err != nil {
			return err
		}
		p = a
	case "arma":
		a := predictor.NewARMA(*mRecent, max(*mRecent/2, 1))
		if err := a.Fit(trace[:split]); err != nil {
			return err
		}
		p = a
	case "naive":
		n := predictor.NewNaivePeriodic(*period, *nPeriods)
		if err := n.Fit(trace[:split]); err != nil {
			return err
		}
		p = n
	default:
		return fmt.Errorf("predict: unknown model %q", *model)
	}

	var actual, pred []float64
	for now := split; now+*tau < len(trace); now++ {
		v, err := p.Forecast(trace[:now+1], *tau)
		if err != nil {
			return err
		}
		pred = append(pred, v)
		actual = append(actual, trace[now+*tau])
	}
	mre, err := timeseries.MRE(actual, pred)
	if err != nil {
		return err
	}
	rmse, err := timeseries.RMSE(actual, pred)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d test forecasts at tau=%d slots\n", p.Name(), len(pred), *tau)
	fmt.Printf("MRE  %.2f%%\n", mre*100)
	fmt.Printf("RMSE %.1f\n", rmse)
	return nil
}

// benchResult is the JSON schema of BENCH_engine.json: the hot-path numbers
// the typed request pipeline is accountable for.
type benchResult struct {
	Benchmark    string  `json:"benchmark"`
	GoVersion    string  `json:"go_version"`
	Clients      int     `json:"clients"`
	DurationSec  float64 `json:"duration_s"`
	Transactions int64   `json:"txns"`
	TPS          float64 `json:"tps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	NsPerTxn     float64 `json:"ns_per_txn"`
	AllocsPerTxn float64 `json:"allocs_per_txn"`
}

// benchMigrationResult is the JSON schema of BENCH_migration.json: how the
// migration path behaves under a fixed-seed fault schedule — move durations,
// retry work, and rollback volume are the numbers the fault plane is
// accountable for.
type benchMigrationResult struct {
	Benchmark      string  `json:"benchmark"`
	GoVersion      string  `json:"go_version"`
	FaultSpec      string  `json:"fault_spec"`
	Rows           int     `json:"rows"`
	Machines       int     `json:"machines"`
	MoveOutMs      float64 `json:"move_out_ms"`
	MoveInMs       float64 `json:"move_in_ms"`
	ChunksMoved    int64   `json:"chunks_moved"`
	Retries        int64   `json:"retries"`
	Aborts         int64   `json:"aborts"`
	RollbackChunks int64   `json:"rollback_chunks"`
	FaultsOffered  int64   `json:"faults_offered"`
	FaultsDropped  int64   `json:"faults_dropped"`
}

// runBench measures the transaction hot path on an idle engine: a serial
// single-client pass isolates allocations per transaction, then a concurrent
// pass measures throughput and latency percentiles through the recorder. A
// third pass measures the migration path under a fixed-seed fault schedule
// and emits BENCH_migration.json.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_engine.json", "output JSON path (- for stdout)")
	dur := fs.Duration("duration", 2*time.Second, "length of the throughput pass")
	clients := fs.Int("clients", 8, "concurrent clients in the throughput pass")
	migOut := fs.String("migration-out", "BENCH_migration.json", "migration bench output JSON path (- for stdout, empty to skip)")
	migFaults := fs.String("migration-faults", "seed=42,chunk-drop=0.05", "fault spec for the migration pass (empty for a clean run)")
	recOut := fs.String("recovery-out", "BENCH_recovery.json", "crash-recovery bench output JSON path (- for stdout, empty to skip)")
	olOut := fs.String("overload-out", "BENCH_overload.json", "overload bench output JSON path (- for stdout, empty to skip)")
	olDur := fs.Duration("overload-duration", 500*time.Millisecond, "length of each overload bench point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *dur <= 0 {
		return errors.New("bench: invalid flags")
	}

	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Register("noop", func(*store.Tx) (any, error) { return nil, nil }); err != nil {
		return err
	}
	eng.Start()
	defer eng.Stop()
	id, ok := eng.Handle("noop")
	if !ok {
		return errors.New("bench: handle not found")
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
	}

	// Pass 1: allocations per transaction, serial so nothing but the
	// pipeline itself shows up. A warmup populates the request pool.
	const allocTxns = 200_000
	for i := 0; i < 10_000; i++ {
		if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
			return err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < allocTxns; i++ {
		if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&after)
	allocsPerTxn := float64(after.Mallocs-before.Mallocs) / float64(allocTxns)

	// Pass 2: throughput and latency with concurrent clients, recorded into
	// one wide window so p50/p99 cover the whole pass.
	rec, err := metrics.NewRecorder(time.Now(), 2**dur+time.Second)
	if err != nil {
		return err
	}
	eng.SetRecorder(rec)
	var wg sync.WaitGroup
	counts := make([]int64, *clients)
	stop := make(chan struct{})
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.ExecuteID(id, keys[i&255], nil); err != nil {
					return
				}
				counts[c]++
			}
		}(c)
	}
	time.Sleep(*dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	eng.SetRecorder(nil)
	var txns int64
	for _, n := range counts {
		txns += n
	}
	if txns == 0 {
		return errors.New("bench: no transactions completed")
	}

	res := benchResult{
		Benchmark:    "engine_execute",
		GoVersion:    runtime.Version(),
		Clients:      *clients,
		DurationSec:  elapsed.Seconds(),
		Transactions: txns,
		TPS:          float64(txns) / elapsed.Seconds(),
		P50Ms:        rec.Percentile(0, 50),
		P99Ms:        rec.Percentile(0, 99),
		NsPerTxn:     float64(elapsed.Nanoseconds()) * float64(*clients) / float64(txns),
		AllocsPerTxn: allocsPerTxn,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: %d txns, %.0f tps, p50 %.3f ms, p99 %.3f ms, %.2f allocs/txn -> %s\n",
			res.Transactions, res.TPS, res.P50Ms, res.P99Ms, res.AllocsPerTxn, *out)
	}
	if *migOut != "" {
		if err := runBenchMigration(*migOut, *migFaults); err != nil {
			return err
		}
	}
	if *recOut != "" {
		if err := runBenchRecovery(*recOut); err != nil {
			return err
		}
	}
	if *olOut != "" {
		return runBenchOverload(*olOut, *olDur)
	}
	return nil
}

// benchOverloadResult is the JSON schema of BENCH_overload.json: goodput
// (completions inside the deadline) and p99 queue sojourn versus offered
// load, with and without admission control, at a fixed seed. The numbers the
// overload plane is accountable for: past saturation, goodput with admission
// control should stay near capacity while the undefended engine's collapses
// as every completion arrives too late.
type benchOverloadResult struct {
	Benchmark   string               `json:"benchmark"`
	GoVersion   string               `json:"go_version"`
	DeadlineMs  float64              `json:"deadline_ms"`
	CapacityTPS float64              `json:"capacity_tps"`
	Points      []benchOverloadPoint `json:"points"`
}

type benchOverloadPoint struct {
	// OfferedTPS is the paced open-loop arrival rate; Admission reports
	// whether the engine's overload plane was enforcing (false = sojourn
	// tracking only).
	OfferedTPS   float64 `json:"offered_tps"`
	Admission    bool    `json:"admission_control"`
	CompletedTPS float64 `json:"completed_tps"`
	// GoodputTPS counts only completions whose client-observed latency was
	// inside the deadline — completions past it are wasted work.
	GoodputTPS       float64 `json:"goodput_tps"`
	P99SojournMs     float64 `json:"p99_sojourn_ms"`
	Rejected         int64   `json:"rejected"`
	Shed             int64   `json:"shed"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
}

// runBenchOverload drives one small engine at a sweep of offered loads (0.5x
// to 4x capacity) twice — overload plane enforcing, and tracking only — and
// records goodput and queue-sojourn percentiles for each point.
func runBenchOverload(out string, pointDur time.Duration) error {
	// A 2ms simulated service time keeps the sleep-timer overshoot (tens of
	// microseconds per transaction) a rounding error, so the engine's real
	// capacity matches the nominal parts/svc figure the sweep is scaled by.
	const (
		deadline = 20 * time.Millisecond
		svc      = 2 * time.Millisecond
		parts    = 2
		workers  = 32
	)
	capacity := float64(parts) / svc.Seconds()
	res := benchOverloadResult{
		Benchmark:   "overload_goodput",
		GoVersion:   runtime.Version(),
		DeadlineMs:  float64(deadline) / float64(time.Millisecond),
		CapacityTPS: capacity,
	}
	for _, mult := range []float64{0.5, 1, 2, 4} {
		for _, admission := range []bool{true, false} {
			ol := store.OverloadConfig{Track: true}
			if admission {
				ol.Deadline = deadline
				ol.CoDelTarget = 5 * time.Millisecond
				ol.CoDelInterval = 50 * time.Millisecond
			}
			pt, err := benchOverloadPointRun(mult*capacity, admission, ol, deadline, svc, parts, workers, pointDur)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, pt)
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	// Report the 2x-capacity pair: the point where the defenses matter.
	var on, off benchOverloadPoint
	for _, pt := range res.Points {
		if pt.OfferedTPS == 2*capacity {
			if pt.Admission {
				on = pt
			} else {
				off = pt
			}
		}
	}
	fmt.Printf("bench: overload at 2x capacity: goodput %.0f tps with admission control vs %.0f without (p99 sojourn %.1f vs %.1f ms) -> %s\n",
		on.GoodputTPS, off.GoodputTPS, on.P99SojournMs, off.P99SojournMs, out)
	return nil
}

// benchOverloadPointRun measures one (offered load, admission) point on a
// fresh engine: paced open-loop workers, SLO-conditioned goodput, and the
// recorder's sojourn percentiles.
func benchOverloadPointRun(offered float64, admission bool, ol store.OverloadConfig,
	deadline, svc time.Duration, parts, workers int, dur time.Duration) (benchOverloadPoint, error) {
	var pt benchOverloadPoint
	cfg := store.Config{
		MaxMachines:          1,
		PartitionsPerMachine: parts,
		Buckets:              64,
		ServiceTime:          svc,
		QueueCapacity:        1 << 12,
		InitialMachines:      1,
		Overload:             ol,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return pt, err
	}
	if err := eng.Register("noop", func(*store.Tx) (any, error) { return nil, nil }); err != nil {
		return pt, err
	}
	rec, err := metrics.NewRecorder(time.Now(), 2*dur+time.Second)
	if err != nil {
		return pt, err
	}
	eng.SetRecorder(rec)
	eng.Start()
	defer eng.Stop()
	id, _ := eng.Handle("noop")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("ol-key-%04d", i)
	}

	interval := time.Duration(float64(workers) / offered * float64(time.Second))
	var completed, good atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger worker phases so the aggregate arrival process is
			// uniform at the offered rate rather than synchronized bursts
			// of all workers at once.
			next := start.Add(interval * time.Duration(w) / time.Duration(workers))
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				// Open-loop pacing: hold the offered rate even when calls
				// block, but do not bank an unbounded burst while stuck
				// behind a saturated queue.
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				} else if wait < -10*interval {
					next = time.Now()
				}
				next = next.Add(interval)
				t0 := time.Now()
				if _, err := eng.ExecuteID(id, keys[i&255], nil); err == nil {
					completed.Add(1)
					if time.Since(t0) <= deadline {
						good.Add(1)
					}
				}
			}
		}(w)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	eng.SetRecorder(nil)

	cnt := eng.Counters()
	return benchOverloadPoint{
		OfferedTPS:       offered,
		Admission:        admission,
		CompletedTPS:     float64(completed.Load()) / elapsed.Seconds(),
		GoodputTPS:       float64(good.Load()) / elapsed.Seconds(),
		P99SojournMs:     rec.SojournPercentile(0, 99),
		Rejected:         cnt.Rejected,
		Shed:             cnt.Shed,
		DeadlineExceeded: cnt.DeadlineExceeded,
	}, nil
}

// runBenchMigration measures a scale-out and scale-in round trip on a loaded
// engine with the given fault schedule armed, at a fixed seed so the numbers
// are reproducible run to run.
func runBenchMigration(out, spec string) error {
	cfg := store.Config{
		MaxMachines:          4,
		PartitionsPerMachine: 2,
		Buckets:              256,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      1,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return err
	}
	eng.Start()
	defer eng.Stop()
	const rows = 20_000
	for i := 0; i < rows; i++ {
		if _, err := eng.Execute("put", fmt.Sprintf("mig-key-%05d", i), i); err != nil {
			return err
		}
	}

	var inj *faults.Injector
	if spec != "" {
		fcfg, err := faults.Parse(spec)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if inj, err = faults.New(fcfg); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		eng.SetFaultInjector(inj)
	}

	sqCfg := squall.Config{
		ChunkRows:       200,
		RowCost:         time.Microsecond,
		ChunkOverhead:   50 * time.Microsecond,
		Spacing:         200 * time.Microsecond,
		RateFactor:      1,
		MaxChunkRetries: 5,
		RetryBackoff:    200 * time.Microsecond,
		MaxRetryBackoff: 2 * time.Millisecond,
	}
	ex, err := squall.NewExecutor(eng, sqCfg)
	if err != nil {
		return err
	}

	startOut := time.Now()
	if err := ex.Reconfigure(1, cfg.MaxMachines, 0); err != nil {
		return fmt.Errorf("bench: scale-out aborted (raise retries or lower the fault rate): %w", err)
	}
	moveOut := time.Since(startOut)
	startIn := time.Now()
	if err := ex.Reconfigure(cfg.MaxMachines, 1, 0); err != nil {
		return fmt.Errorf("bench: scale-in aborted: %w", err)
	}
	moveIn := time.Since(startIn)
	if got := eng.TotalRows(); got != rows {
		return fmt.Errorf("bench: %d rows after round trip, want %d", got, rows)
	}

	st := ex.Stats()
	res := benchMigrationResult{
		Benchmark:      "migration_round_trip",
		GoVersion:      runtime.Version(),
		FaultSpec:      spec,
		Rows:           rows,
		Machines:       cfg.MaxMachines,
		MoveOutMs:      float64(moveOut.Microseconds()) / 1000,
		MoveInMs:       float64(moveIn.Microseconds()) / 1000,
		ChunksMoved:    st.ChunksMoved,
		Retries:        st.Retries,
		Aborts:         st.Aborts,
		RollbackChunks: st.RollbackChunks,
	}
	if inj != nil {
		ist := inj.Stats()
		res.FaultsOffered = ist.Offered
		res.FaultsDropped = ist.Drops
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: migration 1->%d->1 of %d rows: out %.1f ms, in %.1f ms, %d retries, %d rolled back -> %s\n",
		cfg.MaxMachines, rows, res.MoveOutMs, res.MoveInMs, res.Retries, res.RollbackChunks, out)
	return nil
}

// benchRecoveryResult is the JSON schema of BENCH_recovery.json: how fast a
// crashed machine comes back as a function of the command-log tail behind
// the last checkpoint — recovery latency and replay lag are the numbers the
// checkpoint + command-log plane is accountable for.
type benchRecoveryResult struct {
	Benchmark    string                  `json:"benchmark"`
	GoVersion    string                  `json:"go_version"`
	Rows         int                     `json:"rows"`
	Machines     int                     `json:"machines"`
	MaxReplayLag int64                   `json:"max_replay_lag"`
	Scenarios    []benchRecoveryScenario `json:"scenarios"`
}

type benchRecoveryScenario struct {
	// LogTail is how many transactions ran between the checkpoint and the
	// crash; Replayed is how many of them landed on the crashed machine's
	// buckets and had to be replayed.
	LogTail      int     `json:"log_tail_txns"`
	Replayed     int     `json:"replayed_commands"`
	CheckpointMs float64 `json:"checkpoint_ms"`
	RecoveryMs   float64 `json:"recovery_ms"`
}

// runBenchRecovery crashes and recovers a machine on a loaded engine with
// increasingly stale checkpoints. The key layout is deterministic, so the
// numbers are reproducible run to run.
func runBenchRecovery(out string) error {
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              256,
		ServiceTime:          0,
		QueueCapacity:        1 << 14,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return err
	}
	rm := recovery.NewManager(eng)
	eng.Start()
	defer eng.Stop()
	const rows = 20_000
	for i := 0; i < rows; i++ {
		if _, err := eng.Execute("put", fmt.Sprintf("rec-key-%05d", i), i); err != nil {
			return err
		}
	}

	res := benchRecoveryResult{
		Benchmark: "crash_recovery",
		GoVersion: runtime.Version(),
		Rows:      rows,
		Machines:  cfg.MaxMachines,
	}
	for _, tail := range []int{0, 5_000, 20_000} {
		ckStart := time.Now()
		if _, err := rm.Checkpoint(); err != nil {
			return err
		}
		ckMs := float64(time.Since(ckStart).Microseconds()) / 1000
		// The post-checkpoint tail rewrites existing rows, so every scenario
		// recovers the same data set from a different image/log split.
		for i := 0; i < tail; i++ {
			if _, err := eng.Execute("put", fmt.Sprintf("rec-key-%05d", i%rows), i); err != nil {
				return err
			}
		}
		if err := rm.Crash(1); err != nil {
			return err
		}
		recStart := time.Now()
		st, err := rm.Restore(1)
		if err != nil {
			return err
		}
		recMs := float64(time.Since(recStart).Microseconds()) / 1000
		if got := eng.TotalRows(); got != rows {
			return fmt.Errorf("bench: %d rows after recovery, want %d", got, rows)
		}
		res.Scenarios = append(res.Scenarios, benchRecoveryScenario{
			LogTail:      tail,
			Replayed:     st.Replayed,
			CheckpointMs: ckMs,
			RecoveryMs:   recMs,
		})
	}
	res.MaxReplayLag = rm.Stats().MaxReplayLag

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	last := res.Scenarios[len(res.Scenarios)-1]
	fmt.Printf("bench: recovery of %d rows: %.1f ms with a %d-txn log tail (%d replayed), max lag %d -> %s\n",
		rows, last.RecoveryMs, last.LogTail, last.Replayed, res.MaxReplayLag, out)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	input := fs.String("input", "", "predicted load CSV (one value per planning interval)")
	q := fs.Float64("q", 285, "target per-server throughput Q")
	qmax := fs.Float64("qmax", 350, "maximum per-server throughput Q-hat")
	d := fs.Float64("d", 15.4, "full-database single-thread migration time D, in intervals")
	parts := fs.Int("p", 6, "partitions per server")
	n0 := fs.Int("n0", 1, "machines allocated now")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return errors.New("plan: -input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	model := migration.Model{Q: *q, QMax: *qmax, D: *d, P: *parts}
	pl := planner.Planner{Model: model}
	plan, err := pl.BestMoves(series.Values, *n0)
	if err != nil {
		return err
	}
	fmt.Printf("total cost: %.1f machine-intervals, final cluster: %d machines\n",
		plan.Cost, plan.FinalMachines)
	for _, mv := range plan.Moves {
		fmt.Println(" ", mv)
	}
	return nil
}
