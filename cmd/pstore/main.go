// Command pstore is the command-line entry point to the P-Store
// reproduction: it regenerates every table and figure of the paper's
// evaluation, generates synthetic load traces, fits load predictors, runs
// the predictive elasticity planner on a trace, serves a live cluster
// (in-process or over a network front end), and drives a served cluster
// from a separate process as a remote load generator.
//
// Usage:
//
//	pstore list                              list all experiments
//	pstore experiment <id> [flags]           run one experiment (or "all")
//	pstore serve [flags]                     run a live cluster against a trace
//	pstore serve -listen addr [flags]        same, but serve remote clients over HTTP
//	pstore serve -node N -nodes M [flags]    run one partition-group node of a multi-process cluster
//	pstore coord -peers a,b [flags]          drive migration and crash scripts against the nodes
//	pstore drive -connect addr [flags]       replay the trace against a served cluster
//	pstore trace [flags]                     generate a synthetic load trace CSV
//	pstore predict [flags]                   fit a predictor on a trace CSV and forecast
//	pstore plan [flags]                      plan reconfigurations for a trace CSV
//	pstore bench [flags]                     benchmark the engine hot path, emit JSON
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pstore/internal/experiments"
	"pstore/internal/migration"
	"pstore/internal/planner"
	"pstore/internal/predictor"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// commands dispatches subcommand names. Every handler returns a plain
// reason on failure; main prefixes it uniformly, so each subcommand exits 1
// with one consistent "pstore <cmd>: <reason>" message.
var commands = map[string]func([]string) error{
	"list":       func([]string) error { return runList() },
	"experiment": runExperiment,
	"serve":      runServe,
	"coord":      runCoord,
	"drive":      runDrive,
	"trace":      runTrace,
	"predict":    runPredict,
	"plan":       runPlan,
	"bench":      runBench,
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	switch cmd {
	case "-h", "--help", "help":
		usage()
		return
	}
	run, ok := commands[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "pstore: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err := run(os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "pstore %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  pstore list                     list all experiments
  pstore experiment <id|all>      run an experiment (-full for paper-size runs, -seed N)
  pstore serve                    run a live cluster replaying a trace under a controller
  pstore serve -listen addr       serve the cluster over HTTP for remote drivers
  pstore serve -node N -nodes M   run one partition-group node of a multi-process cluster
  pstore coord -peers a,b         drive migration/crash scripts against node processes
  pstore drive -connect addr      replay the served trace from a separate process
  pstore trace                    generate a synthetic B2W-like load trace CSV
  pstore predict                  fit SPAR/AR/ARMA on a trace CSV and report accuracy
  pstore plan                     run the predictive elasticity planner on a trace CSV
  pstore bench                    benchmark the transaction hot path, emit BENCH_*.json
`)
}

// newFlagSet builds a subcommand flag set whose errors flow back to main
// for the uniform "pstore <cmd>: <reason>" exit instead of the flag
// package's own os.Exit(2) with ad-hoc formatting.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// parseFlags parses args, printing the subcommand's flag reference (and
// succeeding) when help was requested.
func parseFlags(fs *flag.FlagSet, args []string) (helped bool, err error) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fmt.Fprintf(os.Stderr, "usage of pstore %s:\n", fs.Name())
			fs.PrintDefaults()
			return true, nil
		}
		return false, err
	}
	return false, nil
}

func runList() error {
	for _, id := range experiments.IDs() {
		title, _ := experiments.Title(id)
		fmt.Printf("%-8s %s\n", id, title)
	}
	return nil
}

func runExperiment(args []string) error {
	fs := newFlagSet("experiment")
	full := fs.Bool("full", false, "run at paper-equivalent size (slower)")
	seed := fs.Int64("seed", 1, "random seed")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("need exactly one experiment id (or \"all\")")
	}
	ids := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		ids = experiments.IDs()
	}
	opts := experiments.Options{Quick: !*full, Seed: *seed}
	if !*quiet {
		opts.Log = os.Stderr
	}
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(r.Text())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runTrace(args []string) error {
	fs := newFlagSet("trace")
	days := fs.Int("days", 3, "trace length in days")
	seed := fs.Int64("seed", 1, "random seed")
	bf := fs.Int("blackfriday", -1, "day index of a Black Friday surge (-1 = none)")
	out := fs.String("out", "", "output CSV path (default stdout)")
	kind := fs.String("kind", "b2w", "trace kind: b2w, wiki-en, wiki-de")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	var series workload.Series
	var err error
	switch *kind {
	case "b2w":
		cfg := workload.DefaultB2WConfig(*seed, *days)
		cfg.BlackFridayDay = *bf
		series, err = workload.SyntheticB2W(cfg)
	case "wiki-en":
		series, err = workload.SyntheticWikipedia(workload.EnglishWikipediaConfig(*seed, *days))
	case "wiki-de":
		series, err = workload.SyntheticWikipedia(workload.GermanWikipediaConfig(*seed, *days))
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.WriteCSV(w, series)
}

func runPredict(args []string) error {
	fs := newFlagSet("predict")
	input := fs.String("input", "", "load trace CSV (from pstore trace)")
	model := fs.String("model", "spar", "model: spar, ar, arma, naive")
	period := fs.Int("period", 1440, "slots per period (1440 for per-minute daily)")
	nPeriods := fs.Int("n", 7, "SPAR: previous periods")
	mRecent := fs.Int("m", 30, "SPAR: recent offsets / AR order")
	tau := fs.Int("tau", 60, "forecast period in slots")
	trainFrac := fs.Float64("train", 0.8, "fraction of the trace used for training")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *input == "" {
		return errors.New("-input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	trace := series.Values
	split := int(float64(len(trace)) * *trainFrac)
	if split < 2 || split >= len(trace)-*tau {
		return fmt.Errorf("train split %d leaves no test window", split)
	}

	var p predictor.Predictor
	switch strings.ToLower(*model) {
	case "spar":
		s := predictor.NewSPAR(*period, *nPeriods, *mRecent)
		if err := s.FitHorizons(trace[:split], *tau); err != nil {
			return err
		}
		p = s
	case "ar":
		a := predictor.NewAR(*mRecent)
		if err := a.Fit(trace[:split]); err != nil {
			return err
		}
		p = a
	case "arma":
		a := predictor.NewARMA(*mRecent, max(*mRecent/2, 1))
		if err := a.Fit(trace[:split]); err != nil {
			return err
		}
		p = a
	case "naive":
		n := predictor.NewNaivePeriodic(*period, *nPeriods)
		if err := n.Fit(trace[:split]); err != nil {
			return err
		}
		p = n
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	var actual, pred []float64
	for now := split; now+*tau < len(trace); now++ {
		v, err := p.Forecast(trace[:now+1], *tau)
		if err != nil {
			return err
		}
		pred = append(pred, v)
		actual = append(actual, trace[now+*tau])
	}
	mre, err := timeseries.MRE(actual, pred)
	if err != nil {
		return err
	}
	rmse, err := timeseries.RMSE(actual, pred)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d test forecasts at tau=%d slots\n", p.Name(), len(pred), *tau)
	fmt.Printf("MRE  %.2f%%\n", mre*100)
	fmt.Printf("RMSE %.1f\n", rmse)
	return nil
}

func runPlan(args []string) error {
	fs := newFlagSet("plan")
	input := fs.String("input", "", "predicted load CSV (one value per planning interval)")
	q := fs.Float64("q", 285, "target per-server throughput Q")
	qmax := fs.Float64("qmax", 350, "maximum per-server throughput Q-hat")
	d := fs.Float64("d", 15.4, "full-database single-thread migration time D, in intervals")
	parts := fs.Int("p", 6, "partitions per server")
	n0 := fs.Int("n0", 1, "machines allocated now")
	if helped, err := parseFlags(fs, args); helped || err != nil {
		return err
	}
	if *input == "" {
		return errors.New("-input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	model := migration.Model{Q: *q, QMax: *qmax, D: *d, P: *parts}
	pl := planner.Planner{Model: model}
	plan, err := pl.BestMoves(series.Values, *n0)
	if err != nil {
		return err
	}
	fmt.Printf("total cost: %.1f machine-intervals, final cluster: %d machines\n",
		plan.Cost, plan.FinalMachines)
	for _, mv := range plan.Moves {
		fmt.Println(" ", mv)
	}
	return nil
}
