// Package pstore's root benchmark suite regenerates every table and figure
// of the paper's evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the core components. Each BenchmarkFig*/BenchmarkTable*
// target prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package pstore_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pstore/internal/experiments"
	"pstore/internal/migration"
	"pstore/internal/planner"
	"pstore/internal/predictor"
)

// runExperiment executes one experiment per benchmark iteration and reports
// its headline values as benchmark metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Text())
			for k, v := range r.Values {
				b.ReportMetric(v, k)
			}
		}
	}
}

func BenchmarkFig1Load(b *testing.B)            { runExperiment(b, "fig1") }
func BenchmarkFig2Capacity(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig4EffCap(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkTable1Schedule(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkFig5SPARB2W(b *testing.B)         { runExperiment(b, "fig5") }
func BenchmarkFig6SPARWikipedia(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkSec5ModelComparison(b *testing.B) { runExperiment(b, "sec5") }
func BenchmarkFig7Saturation(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8ChunkSize(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFig9Elasticity(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10CDF(b *testing.B)            { runExperiment(b, "fig10") }
func BenchmarkTable2Violations(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkFig11SpikeResponse(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12CostCurves(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13BlackFriday(b *testing.B)    { runExperiment(b, "fig13") }

// --- component micro-benchmarks -------------------------------------------

// BenchmarkPlannerDP measures one full dynamic-programming planning pass
// over a 36-interval horizon with a ten-machine ceiling — the work P-Store's
// controller does every monitoring cycle.
func BenchmarkPlannerDP(b *testing.B) {
	model := migration.Model{Q: 285, QMax: 350, D: 15.4, P: 6}
	rng := rand.New(rand.NewSource(4))
	load := make([]float64, 36)
	for i := range load {
		load[i] = 200 + 2500*rng.Float64()
	}
	load[0] = 100
	pl := planner.Planner{Model: model}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.BestMoves(load, 1); err != nil && err != planner.ErrInfeasible {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPARFit measures fitting SPAR on four weeks of five-minute data.
func BenchmarkSPARFit(b *testing.B) {
	const period = 288
	rng := rand.New(rand.NewSource(5))
	trace := make([]float64, 28*period)
	for i := range trace {
		trace[i] = 1000 + 100*rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := predictor.NewSPAR(period, 7, 6)
		if err := s.Fit(trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPARForecast measures a single 36-interval forecast series.
func BenchmarkSPARForecast(b *testing.B) {
	const period = 288
	rng := rand.New(rand.NewSource(6))
	trace := make([]float64, 28*period)
	for i := range trace {
		trace[i] = 1000 + 100*rng.NormFloat64()
	}
	s := predictor.NewSPAR(period, 7, 6)
	if err := s.Fit(trace); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predictor.ForecastSeries(s, trace, 36); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSchedule measures three-phase schedule construction for a
// large scale-out.
func BenchmarkBuildSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := migration.BuildSchedule(7, 30, 6)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvgMachAlloc measures the Algorithm 4 cost model across the
// whole (B, A) plane the planner touches.
func BenchmarkAvgMachAlloc(b *testing.B) {
	m := migration.Model{Q: 285, QMax: 350, D: 15.4, P: 6}
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for from := 1; from <= 20; from++ {
			for to := 1; to <= 20; to++ {
				sum += m.AvgMachAlloc(from, to)
			}
		}
	}
	if sum < 0 {
		b.Fatal(fmt.Sprint(sum))
	}
}
