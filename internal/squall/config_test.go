package squall

import (
	"testing"
	"time"
)

// The migration configuration prices every chunk the planner's D input is
// derived from, so its edge cases are load-bearing: a zero RateFactor must
// mean "rate R" (factor 1), and nonsense costs must be rejected before an
// executor is built around them.

func TestConfigValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"minimal one-row chunks", Config{ChunkRows: 1}, true},
		{"zero rate factor means rate R", Config{ChunkRows: 100, RateFactor: 0}, true},
		{"zero costs are free but legal", Config{ChunkRows: 100, RowCost: 0, ChunkOverhead: 0, Spacing: 0}, true},
		{"fractional rate factor throttles below R", Config{ChunkRows: 100, RateFactor: 0.25}, true},
		{"zero chunk rows", Config{ChunkRows: 0}, false},
		{"negative chunk rows", Config{ChunkRows: -5}, false},
		{"negative row cost", Config{ChunkRows: 100, RowCost: -time.Microsecond}, false},
		{"negative chunk overhead", Config{ChunkRows: 100, ChunkOverhead: -time.Microsecond}, false},
		{"negative spacing", Config{ChunkRows: 100, Spacing: -time.Millisecond}, false},
		{"negative rate factor", Config{ChunkRows: 100, RateFactor: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.cfg, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%+v) accepted", tc.cfg)
			}
		})
	}
}

// TestZeroRateFactorBehavesAsRateR proves the "zero means 1" contract end
// to end: an executor built with RateFactor 0 and asked to move at rate 0
// must complete a real migration exactly like an explicit rate-1 executor.
func TestZeroRateFactorBehavesAsRateR(t *testing.T) {
	e := testEngine(t, 3, 1)
	load(t, e, 200)
	cfg := fastConfig()
	cfg.RateFactor = 0
	ex, err := NewExecutor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 3, 0); err != nil {
		t.Fatalf("reconfigure with zero rate factors: %v", err)
	}
	if e.ActiveMachines() != 3 {
		t.Fatalf("ActiveMachines = %d, want 3", e.ActiveMachines())
	}
	checkBalanced(t, e, 3)
	checkAllReadable(t, e, 200)
}

func TestNewExecutorRejectsInvalidConfig(t *testing.T) {
	e := testEngine(t, 3, 1)
	if _, err := NewExecutor(e, Config{ChunkRows: 100, RowCost: -1}); err == nil {
		t.Error("NewExecutor accepted a negative row cost")
	}
}
