// Package squall executes live reconfigurations of the storage engine,
// playing the role of the Squall migration system in the paper (Sections 2
// and 6): given a source and target cluster size it derives the balanced
// target partition plan, splits the data to move into chunks, and streams
// the chunks between partition executors round by round following the
// maximum-parallelism schedule of Section 4.4.1 — throttled so migration
// work steals only a bounded share of each executor's time.
package squall

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/store"
	"pstore/internal/transport"
)

// Config tunes migration aggressiveness — the paper's chunk-size and
// rate-R knobs (Section 8.1, Figure 8; Section 8.2, Figure 11).
type Config struct {
	// ChunkRows is the target number of rows per migration chunk. Larger
	// chunks finish the reconfiguration faster but occupy executors for
	// longer stretches, risking latency spikes (Figure 8).
	ChunkRows int
	// RowCost is the executor time consumed per row on the sending side;
	// the receiving side pays half (installation is cheaper than
	// extraction and packing).
	RowCost time.Duration
	// ChunkOverhead is the fixed executor time per chunk on each side.
	ChunkOverhead time.Duration
	// Spacing is the idle gap between consecutive chunks of one
	// partition-pair stream (Squall spaces chunks by at least 100 ms on
	// average; scaled down with everything else here).
	Spacing time.Duration
	// RateFactor accelerates migration by shrinking Spacing: the paper's
	// "rate R x 8" reactive fallback uses RateFactor = 8. Zero means 1.
	RateFactor float64
	// MaxChunkRetries is how many times a failed chunk send is retried
	// before the whole reconfiguration aborts and rolls back. Zero means a
	// single attempt per chunk.
	MaxChunkRetries int
	// RetryBackoff is the wait before the first retry of a failed chunk;
	// it doubles per retry, capped at MaxRetryBackoff.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the exponential retry backoff. Zero leaves the
	// backoff uncapped.
	MaxRetryBackoff time.Duration
	// MoveTimeout bounds one whole reconfiguration: when exceeded, streams
	// stop at their next chunk boundary and the move aborts with rollback.
	// Zero disables the timeout. Note a timeout makes the abort point
	// timing-dependent; the deterministic chaos suite runs without one.
	MoveTimeout time.Duration
}

// DefaultConfig returns a throttled configuration suitable for the scaled
// test substrate.
func DefaultConfig() Config {
	return Config{
		ChunkRows:       200,
		RowCost:         3 * time.Microsecond,
		ChunkOverhead:   300 * time.Microsecond,
		Spacing:         2 * time.Millisecond,
		RateFactor:      1,
		MaxChunkRetries: 3,
		RetryBackoff:    500 * time.Microsecond,
		MaxRetryBackoff: 8 * time.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ChunkRows < 1 {
		return fmt.Errorf("squall: ChunkRows %d must be at least 1", c.ChunkRows)
	}
	if c.RowCost < 0 || c.ChunkOverhead < 0 || c.Spacing < 0 {
		return fmt.Errorf("squall: costs must be non-negative")
	}
	if c.RateFactor < 0 {
		return fmt.Errorf("squall: RateFactor %v must be non-negative", c.RateFactor)
	}
	if c.MaxChunkRetries < 0 {
		return fmt.Errorf("squall: MaxChunkRetries %d must be non-negative", c.MaxChunkRetries)
	}
	if c.RetryBackoff < 0 || c.MaxRetryBackoff < 0 || c.MoveTimeout < 0 {
		return fmt.Errorf("squall: retry backoffs and MoveTimeout must be non-negative")
	}
	return nil
}

// Executor performs live reconfigurations against a node boundary: a
// *store.Engine in single-process mode, or a networked topology
// (transport.Remote) whose MoveBuckets decomposes into chunk RPCs between
// node processes. The executor itself is placement-oblivious — schedule,
// chunking, retry and rollback logic are identical either way.
type Executor struct {
	eng transport.Node
	cfg Config

	mu         sync.Mutex // serializes reconfigurations
	inProgress atomic.Bool
	rec        atomic.Pointer[metrics.Recorder]

	chunksMoved    atomic.Int64
	retries        atomic.Int64
	aborts         atomic.Int64
	rollbackChunks atomic.Int64
}

// Stats are the executor's cumulative migration health counters.
type Stats struct {
	// ChunksMoved counts successfully moved forward chunks.
	ChunksMoved int64
	// Retries counts failed chunk sends that were retried.
	Retries int64
	// Aborts counts reconfigurations that failed and rolled back.
	Aborts int64
	// RollbackChunks counts chunks moved back during aborts.
	RollbackChunks int64
}

// Stats snapshots the executor's migration counters.
func (ex *Executor) Stats() Stats {
	return Stats{
		ChunksMoved:    ex.chunksMoved.Load(),
		Retries:        ex.retries.Load(),
		Aborts:         ex.aborts.Load(),
		RollbackChunks: ex.rollbackChunks.Load(),
	}
}

// ErrMoveTimeout is the cause of a MoveError when a reconfiguration exceeds
// the configured MoveTimeout.
var ErrMoveTimeout = errors.New("squall: move exceeded MoveTimeout")

// MoveError is the typed failure of an aborted reconfiguration. The executor
// never leaves a half-moved plan behind: by the time a MoveError is
// returned, every successfully moved chunk has been migrated back and the
// active machine count restored, so the engine is immediately reusable for
// the next plan — unless RolledBack is false, which only happens when the
// engine itself is shutting down mid-recovery.
type MoveError struct {
	// From and To are the machine counts of the failed move.
	From, To int
	// Cause is the first chunk error that triggered the abort.
	Cause error
	// RolledBack reports whether the pre-move bucket plan was restored.
	RolledBack bool
	// RollbackErr is the error that interrupted restoration, if any.
	RollbackErr error
}

// Error implements error.
func (e *MoveError) Error() string {
	state := "rolled back"
	if !e.RolledBack {
		state = fmt.Sprintf("rollback failed: %v", e.RollbackErr)
	}
	return fmt.Sprintf("squall: move %d -> %d aborted (%s): %v", e.From, e.To, state, e.Cause)
}

// Unwrap exposes the abort cause to errors.Is/As.
func (e *MoveError) Unwrap() error { return e.Cause }

// NewExecutor returns a migration executor for a node boundary — a
// *store.Engine for single-process mode, or any transport.Node (e.g. a
// networked topology) for multi-process mode.
func NewExecutor(eng transport.Node, cfg Config) (*Executor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Executor{eng: eng, cfg: cfg}, nil
}

// SetRecorder attaches a recorder; reconfiguration spans are filed into it.
func (ex *Executor) SetRecorder(r *metrics.Recorder) { ex.rec.Store(r) }

// InProgress reports whether a reconfiguration is currently running.
func (ex *Executor) InProgress() bool { return ex.inProgress.Load() }

// ErrInProgress is returned when a reconfiguration is requested while
// another is still running.
var ErrInProgress = errors.New("squall: reconfiguration already in progress")

// Reconfigure live-migrates the cluster from `from` machines to `to`
// machines. It blocks until all data has moved and the active machine count
// has been updated. rateFactor <= 0 uses the configured RateFactor.
func (ex *Executor) Reconfigure(from, to int, rateFactor float64) error {
	if from == to {
		return nil
	}
	cfg := ex.eng.Config()
	if from < 1 || from > cfg.MaxMachines || to < 1 || to > cfg.MaxMachines {
		return fmt.Errorf("squall: move %d -> %d outside [1, %d]", from, to, cfg.MaxMachines)
	}
	if ex.eng.ActiveMachines() != from {
		return fmt.Errorf("squall: engine has %d active machines, move starts from %d",
			ex.eng.ActiveMachines(), from)
	}
	if !ex.mu.TryLock() {
		return ErrInProgress
	}
	defer ex.mu.Unlock()
	ex.inProgress.Store(true)
	defer ex.inProgress.Store(false)

	start := time.Now()
	defer func() {
		if r := ex.rec.Load(); r != nil {
			r.RecordReconfiguration(start, time.Now())
		}
	}()

	if rateFactor <= 0 {
		rateFactor = ex.cfg.RateFactor
	}
	if rateFactor <= 0 {
		rateFactor = 1
	}

	sched, err := migration.BuildSchedule(from, to, cfg.PartitionsPerMachine)
	if err != nil {
		return err
	}
	assignments, err := ex.planBuckets(from, to)
	if err != nil {
		return err
	}

	// Chunk size in buckets: ChunkRows is a row budget per chunk, so size
	// chunks by the average rows per bucket (rounded to nearest). The row
	// count comes from the engine's typed per-partition counters — never
	// from walking the nested bucket maps.
	avgRows := 1
	if rows := ex.eng.TotalRows(); rows > 0 {
		avgRows = max((rows+cfg.Buckets/2)/cfg.Buckets, 1)
	}
	chunkBuckets := max(ex.cfg.ChunkRows/avgRows, 1)

	// journal records every chunk that completed, in completion order, so an
	// abort can undo the move exactly: chunks migrate back in reverse and
	// the pre-move bucket plan and row counters are restored.
	var (
		jmu     sync.Mutex
		journal []movedChunk
	)
	record := func(c movedChunk) {
		jmu.Lock()
		journal = append(journal, c)
		jmu.Unlock()
	}
	// abort is closed when MoveTimeout fires; streams notice it at chunk
	// boundaries and stop early with ErrMoveTimeout.
	abort := make(chan struct{})
	if ex.cfg.MoveTimeout > 0 {
		var once sync.Once
		timer := time.AfterFunc(ex.cfg.MoveTimeout, func() { once.Do(func() { close(abort) }) })
		defer timer.Stop()
	}
	// fail aborts the reconfiguration: roll the journal back, restore the
	// machine count, and surface the typed failure.
	fail := func(cause error) error {
		ex.aborts.Add(1)
		restored, rbErr := ex.rollback(journal)
		ex.rollbackChunks.Add(int64(restored))
		if r := ex.rec.Load(); r != nil {
			r.CountMigrationAbort()
			r.AddMigrationRollbackChunks(int64(restored))
		}
		if rbErr == nil {
			rbErr = ex.eng.SetActiveMachines(from)
		}
		return &MoveError{From: from, To: to, Cause: cause, RolledBack: rbErr == nil, RollbackErr: rbErr}
	}

	for i, round := range sched.Rounds {
		if err := ex.eng.SetActiveMachines(allocatedDuringRound(sched, i, from, to)); err != nil {
			return fail(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(round)*cfg.PartitionsPerMachine)
		for j, tr := range round {
			for k := 0; k < cfg.PartitionsPerMachine; k++ {
				fromPart := tr.From*cfg.PartitionsPerMachine + k
				toPart := tr.To*cfg.PartitionsPerMachine + k
				buckets := assignments[pairKey{fromPart, toPart}]
				if len(buckets) == 0 {
					continue
				}
				wg.Add(1)
				go func(slot, fromPart, toPart int, buckets []int) {
					defer wg.Done()
					if err := ex.stream(fromPart, toPart, buckets, chunkBuckets, rateFactor, abort, record); err != nil {
						errs[slot] = err
					}
				}(j*cfg.PartitionsPerMachine+k, fromPart, toPart, buckets)
			}
		}
		// A failing stream skips its own remaining chunks but never cuts
		// the other streams short: every pair's chunk/attempt sequence in a
		// started round is fully determined by the fault schedule, which
		// keeps chaos runs byte-identical across interleavings.
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
	}
	if err := ex.eng.SetActiveMachines(to); err != nil {
		return fail(err)
	}
	return nil
}

// movedChunk is one journal entry: a chunk that reached its destination.
type movedChunk struct {
	from, to int
	buckets  []int
}

// rollback migrates journaled chunks back to their sources, newest first,
// through the injection-exempt rollback path. It returns how many chunks
// were restored; an error (only possible when the engine is stopping)
// interrupts restoration.
func (ex *Executor) rollback(journal []movedChunk) (int, error) {
	restored := 0
	for i := len(journal) - 1; i >= 0; i-- {
		c := journal[i]
		if _, err := ex.eng.MoveBucketsRollback(c.buckets, c.to, c.from, ex.cfg.RowCost, ex.cfg.ChunkOverhead); err != nil {
			return restored, err
		}
		restored++
	}
	return restored, nil
}

// allocatedDuringRound returns the machine count to report while round i
// runs: for scale-out machines appear as the schedule first touches them;
// for scale-in the drained machines disappear only after their last round,
// so during round i everything still participating remains allocated.
func allocatedDuringRound(sched *migration.Schedule, i, from, to int) int {
	n := sched.MachinesAllocated(i)
	if from < to {
		return n
	}
	// Scale-in: MachinesAllocated counts machines still busy in round i;
	// a machine drained in an earlier round is already gone.
	return n
}

type pairKey struct{ from, to int }

// planBuckets derives which buckets every partition pair must move so that
// the cluster ends balanced: every active partition owns (as close as
// possible) the same number of buckets, and every sender spreads its load
// evenly over its receivers — the equal-data invariant of Section 4.4.1.
func (ex *Executor) planBuckets(from, to int) (map[pairKey][]int, error) {
	cfg := ex.eng.Config()
	p := cfg.PartitionsPerMachine
	assignments := make(map[pairKey][]int)

	if from < to {
		// Scale-out: every partition of the original machines sheds its
		// surplus, split evenly across the new machines. Crashed senders are
		// skipped — their frozen buckets stay put until recovery rebuilds
		// them — and crashed receivers are excluded, their share spread over
		// the live ones, so a scale-out around a dead machine still lands.
		receivers := to - from
		for m := 0; m < from; m++ {
			for k := 0; k < p; k++ {
				part := m*p + k
				if ex.eng.PartitionDown(part) {
					continue
				}
				owned := ex.eng.OwnedBuckets(part)
				target := targetCount(cfg.Buckets, to*p, part)
				shed := len(owned) - target
				if shed <= 0 {
					continue
				}
				chunk := owned[len(owned)-shed:]
				var dests []int
				for j := 0; j < receivers; j++ {
					if toPart := (from+j)*p + k; !ex.eng.PartitionDown(toPart) {
						dests = append(dests, toPart)
					}
				}
				if len(dests) == 0 {
					return nil, fmt.Errorf("squall: scale-out %d -> %d: every receiving machine is down: %w",
						from, to, store.ErrPartitionDown)
				}
				for j, toPart := range dests {
					lo := shed * j / len(dests)
					hi := shed * (j + 1) / len(dests)
					if lo == hi {
						continue
					}
					key := pairKey{part, toPart}
					assignments[key] = append(assignments[key], chunk[lo:hi]...)
				}
			}
		}
		return assignments, nil
	}

	// Scale-in: every partition of the drained machines sends everything,
	// split evenly across the live survivors. Draining a crashed machine is
	// refused outright — its buckets cannot be streamed anywhere until it
	// recovers.
	survivors := to
	for m := to; m < from; m++ {
		if ex.eng.MachineDown(m) {
			return nil, fmt.Errorf("squall: scale-in %d -> %d would drain down machine %d: %w",
				from, to, m, store.ErrPartitionDown)
		}
		for k := 0; k < p; k++ {
			part := m*p + k
			owned := ex.eng.OwnedBuckets(part)
			var dests []int
			for j := 0; j < survivors; j++ {
				if toPart := j*p + k; !ex.eng.PartitionDown(toPart) {
					dests = append(dests, toPart)
				}
			}
			if len(dests) == 0 {
				return nil, fmt.Errorf("squall: scale-in %d -> %d: every surviving machine is down: %w",
					from, to, store.ErrPartitionDown)
			}
			for j, toPart := range dests {
				lo := len(owned) * j / len(dests)
				hi := len(owned) * (j + 1) / len(dests)
				if lo == hi {
					continue
				}
				key := pairKey{part, toPart}
				assignments[key] = append(assignments[key], owned[lo:hi]...)
			}
		}
	}
	return assignments, nil
}

// targetCount is the balanced bucket count for a partition index among
// nParts partitions: buckets divide as evenly as possible, earlier
// partitions absorbing the remainder.
func targetCount(buckets, nParts, part int) int {
	base := buckets / nParts
	if part < buckets%nParts {
		return base + 1
	}
	return base
}

// stream moves one partition pair's buckets in throttled chunks, retrying
// each failed chunk with capped exponential backoff. The first chunk to
// exhaust its retries fails the stream; remaining chunks are skipped.
func (ex *Executor) stream(from, to int, buckets []int, chunkBuckets int, rateFactor float64, abort <-chan struct{}, record func(movedChunk)) error {
	spacing := time.Duration(float64(ex.cfg.Spacing) / rateFactor)
	for lo := 0; lo < len(buckets); lo += chunkBuckets {
		select {
		case <-abort:
			return ErrMoveTimeout
		default:
		}
		hi := min(lo+chunkBuckets, len(buckets))
		chunk := buckets[lo:hi]
		if err := ex.moveChunk(chunk, from, to, abort); err != nil {
			return err
		}
		record(movedChunk{from: from, to: to, buckets: chunk})
		if spacing > 0 && hi < len(buckets) {
			select {
			case <-abort:
				return ErrMoveTimeout
			case <-time.After(spacing):
			}
		}
	}
	return nil
}

// moveChunk sends one chunk with up to MaxChunkRetries retries. Backoff
// doubles per retry and is capped at MaxRetryBackoff.
func (ex *Executor) moveChunk(chunk []int, from, to int, abort <-chan struct{}) error {
	backoff := ex.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		_, err := ex.eng.MoveBuckets(chunk, from, to, ex.cfg.RowCost, ex.cfg.ChunkOverhead)
		if err == nil {
			ex.chunksMoved.Add(1)
			return nil
		}
		// A down partition is fatal immediately: machine crashes do not heal
		// on chunk-retry timescales, and skipping the pointless retries keeps
		// the abort point deterministic under the chaos suite.
		if errors.Is(err, store.ErrStopped) || errors.Is(err, store.ErrPartitionDown) || attempt >= ex.cfg.MaxChunkRetries {
			return fmt.Errorf("squall: moving %d buckets %d -> %d failed after %d attempt(s): %w",
				len(chunk), from, to, attempt+1, err)
		}
		ex.retries.Add(1)
		if r := ex.rec.Load(); r != nil {
			r.CountMigrationRetry()
		}
		if backoff > 0 {
			select {
			case <-abort:
				return ErrMoveTimeout
			case <-time.After(backoff):
			}
			backoff *= 2
			if ex.cfg.MaxRetryBackoff > 0 && backoff > ex.cfg.MaxRetryBackoff {
				backoff = ex.cfg.MaxRetryBackoff
			}
		}
	}
}
