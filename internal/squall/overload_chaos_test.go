package squall

import (
	"fmt"
	"testing"
	"time"

	"pstore/internal/hash"
	"pstore/internal/store"
)

// overloadEngine builds a 2-machine, 1-partition-per-machine engine whose
// every data request costs svc of executor time, so a bounded queue plus a
// flood of gets produces a standing backlog on partition 0.
func overloadEngine(t *testing.T, svc time.Duration, disableLane bool) *store.Engine {
	t.Helper()
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 1,
		Buckets:              64,
		ServiceTime:          svc,
		QueueCapacity:        128,
		InitialMachines:      1,
		DisableCtlLane:       disableLane,
	}
	e, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("get", func(tx *store.Tx) (any, error) {
		v, ok, err := tx.Get("kv", tx.Key)
		if err != nil || !ok {
			return nil, fmt.Errorf("missing %q: %v", tx.Key, err)
		}
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

// retainedKeys returns keys that hash into buckets partition 0 keeps across
// a 1 -> 2 scale-out (planBuckets sheds the upper half of the sorted owned
// list), so flooding them saturates the source partition without touching
// any bucket the move is transferring.
func retainedKeys(e *store.Engine, keys, want int) []string {
	owned := e.OwnedBuckets(0)
	retained := make(map[int]bool, len(owned)/2)
	for _, b := range owned[:len(owned)/2] {
		retained[b] = true
	}
	var out []string
	for i := 0; i < keys && len(out) < want; i++ {
		k := fmt.Sprintf("k-%d", i)
		if retained[hash.Partition(k, e.Config().Buckets)] {
			out = append(out, k)
		}
	}
	return out
}

// inFlight estimates the standing backlog: submissions not yet completed or
// errored are either queued or blocked at the channel send.
func inFlight(e *store.Engine) int64 {
	c := e.Counters()
	return c.Submitted - c.Completed - c.Errored
}

// floodRetained launches workers that keep partition 0's data queue full
// with gets on retained-bucket keys until stop is closed. Submission is
// synchronous (Execute blocks through completion), so the worker count must
// exceed the queue capacity for the queue itself to pin at capacity; the
// surplus workers sit blocked at the channel send. The returned wait
// function blocks until every worker has drained out and reports any
// worker-side failure.
func floodRetained(t *testing.T, e *store.Engine, keys []string, stop chan struct{}) (wait func()) {
	t.Helper()
	workers := 2 * e.Config().QueueCapacity
	done := make(chan struct{}, workers)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := w; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				if v, err := e.Execute("get", key, nil); err != nil {
					errCh <- fmt.Errorf("flood get %s: %v", key, err)
					return
				} else if v == nil {
					errCh <- fmt.Errorf("flood get %s returned nil", key)
					return
				}
			}
		}(w)
	}
	wait = func() {
		for w := 0; w < workers; w++ {
			<-done
		}
		select {
		case err := <-errCh:
			t.Error(err)
		default:
		}
	}
	// The queue is saturated once the standing backlog exceeds its capacity
	// (everything beyond it is a worker blocked at the send).
	cap := int64(e.Config().QueueCapacity)
	deadline := time.Now().Add(10 * time.Second)
	for inFlight(e) < cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := inFlight(e); got < cap {
		close(stop)
		wait()
		t.Fatalf("flood never saturated the queue: %d in flight, capacity %d", got, cap)
	}
	return wait
}

// TestOverloadScaleOutThroughSaturation is the overload chaos scenario: with
// partition 0's data queue pinned at capacity by a flood of reads, a 1 -> 2
// scale-out must still complete promptly — its control requests ride the
// priority lane past the backlog — and goodput must recover once the new
// machine takes its half of the buckets.
func TestOverloadScaleOutThroughSaturation(t *testing.T) {
	const svc = time.Millisecond
	const keys = 192
	e := overloadEngine(t, svc, false)
	load(t, e, keys)
	flood := retainedKeys(e, keys, 24)
	if len(flood) < 8 {
		t.Fatalf("only %d retained-bucket keys out of %d", len(flood), keys)
	}

	stop := make(chan struct{})
	wait := floodRetained(t, e, flood, stop)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	moveDone := make(chan error, 1)
	go func() { moveDone <- ex.Reconfigure(1, 2, 0) }()
	select {
	case err := <-moveDone:
		if err != nil {
			t.Fatalf("scale-out under saturation: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scale-out starved behind the data backlog despite the ctl lane")
	}
	// The move overtook a backlog that is still standing: the flood kept the
	// queue at capacity the whole time.
	if got := inFlight(e); got < int64(e.Config().QueueCapacity)/2 {
		t.Errorf("backlog collapsed to %d during the move; the bypass was not exercised", got)
	}
	if got := e.ActiveMachines(); got != 2 {
		t.Errorf("machines = %d after scale-out, want 2", got)
	}

	close(stop)
	wait()
	// Goodput recovery: once the backlog drains, a fresh request completes in
	// queue-empty time, and every key (moved or retained) is still readable.
	drainDeadline := time.Now().Add(10 * time.Second)
	for inFlight(e) > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, err := e.Execute("get", flood[0], nil); err != nil {
		t.Fatalf("post-move get: %v", err)
	}
	if lat := time.Since(start); lat > 100*time.Millisecond {
		t.Errorf("post-move latency %v; goodput did not recover", lat)
	}
	checkBalanced(t, e, 2)
	checkAllReadable(t, e, keys)
	if got := e.TotalRows(); got != keys {
		t.Errorf("TotalRows = %d, want %d", got, keys)
	}
}

// TestOverloadScaleOutStarvesWithoutLane is the negative control for the
// priority lane: with DisableCtlLane every control request waits in FIFO
// order behind the full data queue, so the same scale-out makes no visible
// progress while the flood holds — and completes only after load stops.
func TestOverloadScaleOutStarvesWithoutLane(t *testing.T) {
	const svc = time.Millisecond
	const keys = 192
	e := overloadEngine(t, svc, true)
	load(t, e, keys)
	flood := retainedKeys(e, keys, 24)
	if len(flood) < 8 {
		t.Fatalf("only %d retained-bucket keys out of %d", len(flood), keys)
	}

	stop := make(chan struct{})
	wait := floodRetained(t, e, flood, stop)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	moveDone := make(chan error, 1)
	go func() { moveDone <- ex.Reconfigure(1, 2, 0) }()
	// Each control hop now pays a full queue drain (~QueueCapacity * svc =
	// 128ms) plus the blocked flood senders ahead of it; a move needs many
	// such hops, so 400ms is far inside the starvation window.
	select {
	case err := <-moveDone:
		t.Fatalf("scale-out finished through a saturated FIFO without the ctl lane (err=%v)", err)
	case <-time.After(400 * time.Millisecond):
	}

	// Lift the flood: the starved move must then finish and leave the
	// cluster correct — starvation, not corruption, is the failure mode.
	close(stop)
	wait()
	select {
	case err := <-moveDone:
		if err != nil {
			t.Fatalf("scale-out after flood lifted: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("scale-out still stuck after the flood stopped")
	}
	checkBalanced(t, e, 2)
	checkAllReadable(t, e, keys)
}
