package squall

import (
	"errors"
	"sync/atomic"
	"testing"

	"pstore/internal/store"
)

// crashInjector implements store.FaultInjector: it crashes a machine from
// the move path itself after n forward chunks have been offered, so the
// crash lands mid-stream at a deterministic chunk boundary.
type crashInjector struct {
	eng     *store.Engine
	machine int
	after   int64
	offered atomic.Int64
}

func (c *crashInjector) BeforeMove(op store.MoveOp) error {
	if op.Rollback {
		return nil
	}
	if c.offered.Add(1) == c.after {
		if err := c.eng.Crash(c.machine); err != nil {
			return err
		}
	}
	return nil
}

// TestMoveAbortsWhenReceiverCrashes is the receiver-crash regression: when
// the machine receiving a scale-out dies mid-move, the reconfiguration must
// abort with an exact plan rollback — chunks already installed on the dead
// machine migrate back through the rollback path, which down partitions must
// not refuse — and the engine must stay fully usable.
func TestMoveAbortsWhenReceiverCrashes(t *testing.T) {
	e := testEngine(t, 3, 1)
	load(t, e, 400)
	planBefore := e.Plan()
	rowsBefore := e.TotalRows()

	inj := &crashInjector{eng: e, machine: 1, after: 3}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}

	err = ex.Reconfigure(1, 2, 0)
	var me *MoveError
	if !errors.As(err, &me) {
		t.Fatalf("Reconfigure = %v, want *MoveError", err)
	}
	if !me.RolledBack {
		t.Fatalf("move not rolled back: %v", me)
	}
	if !errors.Is(err, store.ErrPartitionDown) {
		t.Fatalf("abort cause = %v, want ErrPartitionDown", me.Cause)
	}
	if got := ex.Stats().Aborts; got != 1 {
		t.Fatalf("Aborts = %d, want 1", got)
	}

	// Exact rollback: plan, machine count and rows as before the move.
	planAfter := e.Plan()
	for b := range planBefore {
		if planBefore[b] != planAfter[b] {
			t.Fatalf("bucket %d moved %d -> %d despite rollback", b, planBefore[b], planAfter[b])
		}
	}
	if got := e.ActiveMachines(); got != 1 {
		t.Fatalf("ActiveMachines = %d, want 1", got)
	}
	if got := e.TotalRows(); got != rowsBefore {
		t.Fatalf("TotalRows = %d, want %d", got, rowsBefore)
	}
	checkAllReadable(t, e, 400)

	// The dead machine is routed around: a scale-out to 3 machines skips the
	// down receiver and sheds everything to the live one.
	e.SetFaultInjector(nil)
	if err := ex.Reconfigure(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	for _, part := range e.PartitionsOfMachine(1) {
		if got := len(e.OwnedBuckets(part)); got != 0 {
			t.Fatalf("down partition %d received %d buckets", part, got)
		}
	}
	checkAllReadable(t, e, 400)

	// Draining the dead machine is refused before any chunk moves.
	err = ex.Reconfigure(3, 1, 0)
	if err == nil || !errors.Is(err, store.ErrPartitionDown) {
		t.Fatalf("scale-in draining a down machine: err = %v, want ErrPartitionDown", err)
	}
	if got := e.ActiveMachines(); got != 3 {
		t.Fatalf("ActiveMachines = %d after refused drain, want 3", got)
	}
}
