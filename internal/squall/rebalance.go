package squall

import (
	"fmt"
	"sort"
	"time"
)

// Rebalance implements the skew-management extension the paper's conclusion
// calls for ("future work should investigate combining these ideas"):
// an E-Store-style pass that detects hot data partitions from per-bucket
// access counts and live-migrates the hottest buckets onto the coldest
// partitions of the active cluster, without changing the cluster size.
//
// threshold is the tolerated per-partition load imbalance as a fraction of
// the mean (E-Store uses a high/low watermark pair; 0 defaults to 0.15).
// Rebalance returns the number of buckets it moved.
func (ex *Executor) Rebalance(threshold float64) (int, error) {
	if threshold <= 0 {
		threshold = 0.15
	}
	if !ex.mu.TryLock() {
		return 0, ErrInProgress
	}
	defer ex.mu.Unlock()
	ex.inProgress.Store(true)
	defer ex.inProgress.Store(false)

	start := time.Now()
	defer func() {
		if r := ex.rec.Load(); r != nil {
			r.RecordReconfiguration(start, time.Now())
		}
	}()

	cfg := ex.eng.Config()
	accesses := ex.eng.BucketAccesses(true)
	parts := ex.eng.ActiveMachines() * cfg.PartitionsPerMachine

	// Per-partition load and per-partition hot bucket lists.
	type bucketLoad struct {
		bucket int
		load   int64
	}
	loads := make([]int64, parts)
	owned := make([][]bucketLoad, parts)
	var total int64
	for b, n := range accesses {
		p := ex.eng.OwnerOf(b)
		if p >= parts {
			return 0, fmt.Errorf("squall: bucket %d owned by inactive partition %d", b, p)
		}
		loads[p] += n
		owned[p] = append(owned[p], bucketLoad{bucket: b, load: n})
		total += n
	}
	if total == 0 {
		return 0, nil
	}
	mean := float64(total) / float64(parts)
	high := mean * (1 + threshold)
	low := mean * (1 - threshold)

	// Greedy plan: repeatedly take the hottest bucket from the most loaded
	// partition above the high watermark and hand it to the least loaded
	// partition, as long as that narrows the imbalance.
	for p := range owned {
		sort.Slice(owned[p], func(i, j int) bool { return owned[p][i].load > owned[p][j].load })
	}
	type moveOp struct {
		bucket   int
		from, to int
	}
	var plan []moveOp
	for iter := 0; iter < len(accesses); iter++ {
		hot, cold := 0, 0
		for p := 1; p < parts; p++ {
			if loads[p] > loads[hot] {
				hot = p
			}
			if loads[p] < loads[cold] {
				cold = p
			}
		}
		if float64(loads[hot]) <= high || float64(loads[cold]) >= low || hot == cold {
			break
		}
		// Pick the hottest bucket on the hot partition that fits the gap.
		gap := (loads[hot] - loads[cold]) / 2
		idx := -1
		for i, bl := range owned[hot] {
			if bl.load <= gap && bl.load > 0 {
				idx = i
				break
			}
		}
		if idx == -1 {
			break // only huge single buckets remain; bucket granularity is the floor
		}
		bl := owned[hot][idx]
		owned[hot] = append(owned[hot][:idx], owned[hot][idx+1:]...)
		owned[cold] = append(owned[cold], bl)
		loads[hot] -= bl.load
		loads[cold] += bl.load
		plan = append(plan, moveOp{bucket: bl.bucket, from: hot, to: cold})
	}

	// Execute the plan as throttled single-bucket migrations.
	moved := 0
	for _, op := range plan {
		if _, err := ex.eng.MoveBuckets([]int{op.bucket}, op.from, op.to, ex.cfg.RowCost, ex.cfg.ChunkOverhead); err != nil {
			return moved, fmt.Errorf("squall: rebalancing bucket %d: %w", op.bucket, err)
		}
		moved++
		if ex.cfg.Spacing > 0 {
			time.Sleep(ex.cfg.Spacing)
		}
	}
	return moved, nil
}
