package squall

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/store"
)

func testEngine(t *testing.T, machines, initial int) *store.Engine {
	t.Helper()
	cfg := store.Config{
		MaxMachines:          machines,
		PartitionsPerMachine: 2,
		Buckets:              240,
		ServiceTime:          0,
		QueueCapacity:        4096,
		InitialMachines:      initial,
	}
	e, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("get", func(tx *store.Tx) (any, error) {
		v, ok, err := tx.Get("kv", tx.Key)
		if err != nil || !ok {
			return nil, fmt.Errorf("missing %q: %v", tx.Key, err)
		}
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

func load(t *testing.T, e *store.Engine, keys int) {
	t.Helper()
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
}

func fastConfig() Config {
	return Config{
		ChunkRows:     50,
		RowCost:       time.Microsecond,
		ChunkOverhead: 50 * time.Microsecond,
		Spacing:       100 * time.Microsecond,
		RateFactor:    1,
	}
}

func checkBalanced(t *testing.T, e *store.Engine, machines int) {
	t.Helper()
	cfg := e.Config()
	parts := machines * cfg.PartitionsPerMachine
	want := cfg.Buckets / parts
	for part := 0; part < cfg.MaxMachines*cfg.PartitionsPerMachine; part++ {
		n := len(e.OwnedBuckets(part))
		if part < parts {
			if n < want-1 || n > want+1 {
				t.Errorf("partition %d owns %d buckets, want ~%d", part, n, want)
			}
		} else if n != 0 {
			t.Errorf("inactive partition %d owns %d buckets", part, n)
		}
	}
}

func checkAllReadable(t *testing.T, e *store.Engine, keys int) {
	t.Helper()
	for i := 0; i < keys; i++ {
		v, err := e.Execute("get", fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatalf("key k-%d unreadable after reconfiguration: %v", i, err)
		}
		if v != i {
			t.Fatalf("k-%d = %v, want %d", i, v, i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{ChunkRows: 0},
		{ChunkRows: 1, RowCost: -1},
		{ChunkRows: 1, Spacing: -1},
		{ChunkRows: 1, RateFactor: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReconfigureScaleOut(t *testing.T) {
	e := testEngine(t, 5, 1)
	load(t, e, 500)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if e.ActiveMachines() != 3 {
		t.Fatalf("ActiveMachines = %d, want 3", e.ActiveMachines())
	}
	checkBalanced(t, e, 3)
	checkAllReadable(t, e, 500)
	if got := e.TotalRows(); got != 500 {
		t.Fatalf("TotalRows = %d, want 500", got)
	}
}

func TestReconfigureScaleIn(t *testing.T) {
	e := testEngine(t, 5, 1)
	load(t, e, 400)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(4, 2, 0); err != nil {
		t.Fatal(err)
	}
	if e.ActiveMachines() != 2 {
		t.Fatalf("ActiveMachines = %d, want 2", e.ActiveMachines())
	}
	checkBalanced(t, e, 2)
	checkAllReadable(t, e, 400)
}

func TestReconfigureThreePhase(t *testing.T) {
	// 1 -> 5 with delta=4 > B=1 and r = 0; then 3 -> 5 (case 1); then the
	// genuinely three-phase 3 -> 14 shape is covered in migration tests,
	// here exercise 2 -> 5 (delta=3, r=1: three phases at machine level).
	e := testEngine(t, 5, 2)
	load(t, e, 600)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(2, 5, 0); err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, e, 5)
	checkAllReadable(t, e, 600)
}

func TestReconfigureNoOp(t *testing.T) {
	e := testEngine(t, 3, 2)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(2, 2, 0); err != nil {
		t.Fatal(err)
	}
	if e.ActiveMachines() != 2 {
		t.Errorf("ActiveMachines changed on no-op")
	}
}

func TestReconfigureValidation(t *testing.T) {
	e := testEngine(t, 3, 2)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(2, 9, 0); err == nil {
		t.Error("target beyond MaxMachines accepted")
	}
	if err := ex.Reconfigure(3, 2, 0); err == nil {
		t.Error("mismatched current machine count accepted")
	}
	if _, err := NewExecutor(e, Config{ChunkRows: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReconfigureUnderLiveLoad(t *testing.T) {
	e := testEngine(t, 4, 1)
	const keys = 400
	load(t, e, keys)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k-%d", i%keys)
				if v, err := e.Execute("get", key, nil); err != nil || v != i%keys {
					errCh <- fmt.Errorf("key %s: v=%v err=%v", key, v, err)
					return
				}
				i += 3
			}
		}(c)
	}

	if err := ex.Reconfigure(1, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(4, 2, 0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("live load failed during reconfiguration: %v", err)
	default:
	}
	checkAllReadable(t, e, keys)
}

func TestRateFactorSpeedsUpMigration(t *testing.T) {
	cfg := fastConfig()
	// Many small chunks with a wide spacing so the inter-chunk gap
	// dominates the migration time and the x8 rate shows unambiguously.
	cfg.ChunkRows = 2
	cfg.Spacing = 10 * time.Millisecond
	run := func(rate float64) time.Duration {
		e := testEngine(t, 2, 1)
		load(t, e, 300)
		ex, err := NewExecutor(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := ex.Reconfigure(1, 2, rate); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slow := run(1)
	fast := run(8)
	if fast >= slow {
		t.Errorf("rate x8 (%v) not faster than rate x1 (%v)", fast, slow)
	}
}

func TestInProgressFlag(t *testing.T) {
	e := testEngine(t, 3, 1)
	load(t, e, 500)
	cfg := fastConfig()
	cfg.Spacing = 5 * time.Millisecond
	ex, err := NewExecutor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ex.Reconfigure(1, 3, 0) }()
	// Observe the in-progress flag at some point during the migration.
	deadline := time.After(5 * time.Second)
	for !ex.InProgress() {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Skip("reconfiguration finished before the flag was observed")
		case <-deadline:
			t.Fatal("InProgress never became true")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ex.InProgress() {
		t.Error("InProgress still true after completion")
	}
}

// TestRebalanceEvensSkew drives a heavily skewed workload (most traffic on
// a few keys), then checks that Rebalance moves hot buckets so the
// per-partition load spread narrows — the E-Store-style extension the
// paper's conclusion calls for.
func TestRebalanceEvensSkew(t *testing.T) {
	e := testEngine(t, 2, 2)
	load(t, e, 200)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Skewed access: 80% of reads hit keys 0..9.
	e.BucketAccesses(true) // clear loader traffic
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("k-%d", i%10)
		if i%5 == 4 {
			key = fmt.Sprintf("k-%d", 10+i%190)
		}
		if _, err := e.Execute("get", key, nil); err != nil {
			t.Fatal(err)
		}
	}
	spreadBefore := partitionLoadSpread(e, e.BucketAccesses(false))

	moved, err := ex.Rebalance(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing despite heavy skew")
	}

	// Replay the same access pattern and re-measure the spread.
	e.BucketAccesses(true)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("k-%d", i%10)
		if i%5 == 4 {
			key = fmt.Sprintf("k-%d", 10+i%190)
		}
		if _, err := e.Execute("get", key, nil); err != nil {
			t.Fatal(err)
		}
	}
	spreadAfter := partitionLoadSpread(e, e.BucketAccesses(false))
	if spreadAfter >= spreadBefore {
		t.Errorf("rebalance did not narrow the load spread: %.3f -> %.3f", spreadBefore, spreadAfter)
	}
	checkAllReadable(t, e, 200)
}

// partitionLoadSpread returns (max-min)/mean of per-partition access load.
func partitionLoadSpread(e *store.Engine, accesses []int64) float64 {
	cfg := e.Config()
	parts := e.ActiveMachines() * cfg.PartitionsPerMachine
	loads := make([]int64, parts)
	for b, n := range accesses {
		loads[e.OwnerOf(b)] += n
	}
	minL, maxL, sum := loads[0], loads[0], int64(0)
	for _, l := range loads {
		minL = min(minL, l)
		maxL = max(maxL, l)
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return float64(maxL-minL) / (float64(sum) / float64(parts))
}

func TestRebalanceNoTrafficNoMoves(t *testing.T) {
	e := testEngine(t, 2, 2)
	load(t, e, 50)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.BucketAccesses(true)
	moved, err := ex.Rebalance(0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("rebalance moved %d buckets with no traffic", moved)
	}
}

func TestRebalanceUniformNoMoves(t *testing.T) {
	e := testEngine(t, 2, 2)
	load(t, e, 400)
	ex, err := NewExecutor(e, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.BucketAccesses(true)
	for i := 0; i < 2000; i++ {
		if _, err := e.Execute("get", fmt.Sprintf("k-%d", i%400), nil); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := ex.Rebalance(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if moved > 5 {
		t.Errorf("rebalance moved %d buckets on a uniform workload", moved)
	}
}
