package squall

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/faults"
	"pstore/internal/store"
)

// chaosConfig is the executor tuning for chaos tests: small chunks so every
// move has many injection points, and fast retries so aborts stay cheap.
func chaosConfig() Config {
	return Config{
		ChunkRows:       30,
		RowCost:         time.Microsecond,
		ChunkOverhead:   20 * time.Microsecond,
		Spacing:         50 * time.Microsecond,
		RateFactor:      1,
		MaxChunkRetries: 3,
		RetryBackoff:    50 * time.Microsecond,
		MaxRetryBackoff: time.Millisecond,
	}
}

// planFingerprint renders the full bucket plan into a comparable string —
// the byte-identity witness of the chaos suite.
func planFingerprint(e *store.Engine) string {
	return fmt.Sprint(e.Plan())
}

// runChaosScript builds a fresh engine + injector at the given seed and
// drives an adaptive reconfiguration script through it: each step starts
// from wherever the previous step (success or rolled-back abort) left the
// cluster. It returns a fingerprint of everything that should be
// deterministic: per-step outcomes, the final plan, and the retry/abort
// counters.
func runChaosScript(t *testing.T, seed int64) string {
	t.Helper()
	e := testEngine(t, 6, 1)
	const keys = 500
	load(t, e, keys)
	inj, err := faults.New(faults.Config{Seed: seed, ChunkDrop: 0.5, ChunkSlow: 0.05, SlowDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}

	fp := ""
	for step, target := range []int{4, 2, 5, 3, 6, 1} {
		from := e.ActiveMachines()
		before := planFingerprint(e)
		err := ex.Reconfigure(from, target, 0)
		if err == nil {
			fp += fmt.Sprintf("step %d: %d->%d ok\n", step, from, target)
		} else {
			var me *MoveError
			if !errors.As(err, &me) {
				t.Fatalf("step %d: error %v is not a *MoveError", step, err)
			}
			if !me.RolledBack {
				t.Fatalf("step %d: abort did not roll back: %v", step, me)
			}
			if got := planFingerprint(e); got != before {
				t.Fatalf("step %d: aborted move did not restore the pre-move plan", step)
			}
			if got := e.ActiveMachines(); got != from {
				t.Fatalf("step %d: machines %d after abort, want %d", step, got, from)
			}
			fp += fmt.Sprintf("step %d: %d->%d abort\n", step, from, target)
		}
		if ex.InProgress() {
			t.Fatalf("step %d: InProgress stuck true", step)
		}
		// Conservation invariants hold after every step, success or abort.
		if got := e.TotalRows(); got != keys {
			t.Fatalf("step %d: TotalRows = %d, want %d", step, got, keys)
		}
		sum := 0
		cfg := e.Config()
		for p := 0; p < cfg.MaxMachines*cfg.PartitionsPerMachine; p++ {
			sum += e.PartitionRows(p)
		}
		if sum != keys {
			t.Fatalf("step %d: sum of PartitionRows = %d, want %d", step, sum, keys)
		}
	}
	checkAllReadable(t, e, keys)
	st := ex.Stats()
	fp += fmt.Sprintf("final plan %s\nretries %d aborts %d rollback-chunks %d chunks %d\n",
		planFingerprint(e), st.Retries, st.Aborts, st.RollbackChunks, st.ChunksMoved)
	return fp
}

// TestChaosDeterministicFinalPlans is the headline guarantee: three runs of
// the same fault schedule at a fixed seed produce byte-identical outcomes —
// same per-step successes and aborts, same final bucket plan, same retry and
// rollback counters — regardless of goroutine interleaving.
func TestChaosDeterministicFinalPlans(t *testing.T) {
	first := runChaosScript(t, 42)
	if first == "" {
		t.Fatal("empty fingerprint")
	}
	for run := 1; run < 3; run++ {
		if got := runChaosScript(t, 42); got != first {
			t.Fatalf("run %d diverged at seed 42:\n--- run 0:\n%s--- run %d:\n%s", run, first, run, got)
		}
	}
	// The script must actually exercise both outcomes, or the determinism
	// claim is vacuous.
	if !contains(first, "abort") || !contains(first, "ok") {
		t.Fatalf("script exercised only one outcome:\n%s", first)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestChaosCrashedPairCleanAbort is the acceptance scenario: a 100% failure
// rate on one partition pair must end in a clean abort — pre-move plan and
// row counters restored exactly, machine count unchanged, executor reusable.
func TestChaosCrashedPairCleanAbort(t *testing.T) {
	e := testEngine(t, 2, 1)
	const keys = 400
	load(t, e, keys)
	// Scale-out 1 -> 2 with P=2 streams pairs 0->2 and 1->3; pair 0->2 is
	// dead no matter how often a chunk is retried.
	inj, err := faults.New(faults.Config{Seed: 1, CrashPairs: []faults.PartitionPair{{From: 0, To: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}

	before := planFingerprint(e)
	rowsBefore := []int{e.PartitionRows(0), e.PartitionRows(1), e.PartitionRows(2), e.PartitionRows(3)}
	moveErr := ex.Reconfigure(1, 2, 0)
	if moveErr == nil {
		t.Fatal("reconfiguration over a crashed pair succeeded")
	}
	var me *MoveError
	if !errors.As(moveErr, &me) {
		t.Fatalf("error %v is not a *MoveError", moveErr)
	}
	if !me.RolledBack || me.From != 1 || me.To != 2 {
		t.Fatalf("MoveError %+v, want rolled-back 1->2", me)
	}
	if !errors.Is(moveErr, faults.ErrInjected) {
		t.Errorf("cause does not unwrap to the injected fault: %v", moveErr)
	}
	if got := planFingerprint(e); got != before {
		t.Fatal("pre-move bucket plan not restored exactly")
	}
	for p, want := range rowsBefore {
		if got := e.PartitionRows(p); got != want {
			t.Errorf("partition %d rows %d after abort, want %d", p, got, want)
		}
	}
	if got := e.ActiveMachines(); got != 1 {
		t.Errorf("machines %d after abort, want 1", got)
	}
	if st := ex.Stats(); st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
	// The surviving pair 1->3 moved chunks that must have been rolled back.
	if st := ex.Stats(); st.ChunksMoved > 0 && st.RollbackChunks != st.ChunksMoved {
		t.Errorf("rollback chunks %d != chunks moved %d", st.RollbackChunks, st.ChunksMoved)
	}
	checkAllReadable(t, e, keys)

	// The executor (and engine) must be immediately reusable: clear the
	// fault plane and run the same move again.
	e.SetFaultInjector(nil)
	if err := ex.Reconfigure(1, 2, 0); err != nil {
		t.Fatalf("reconfiguration after recovered abort: %v", err)
	}
	checkBalanced(t, e, 2)
	checkAllReadable(t, e, keys)
	if got := e.TotalRows(); got != keys {
		t.Errorf("TotalRows = %d, want %d", got, keys)
	}
}

// TestChaosRetryRecovers checks that transient faults are absorbed by the
// retry path: with drops well below the retry budget the move completes,
// retries are counted, and nothing is lost.
func TestChaosRetryRecovers(t *testing.T) {
	e := testEngine(t, 3, 1)
	const keys = 400
	load(t, e, keys)
	cfg := chaosConfig()
	cfg.MaxChunkRetries = 10
	inj, err := faults.New(faults.Config{Seed: 11, ChunkDrop: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 3, 0); err != nil {
		t.Fatalf("move with drop=0.4 and 10 retries aborted: %v", err)
	}
	st := ex.Stats()
	if st.Retries == 0 {
		t.Error("no retries counted at drop=0.4")
	}
	if st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0", st.Aborts)
	}
	if got := inj.Stats().Drops; got == 0 {
		t.Error("injector reports no drops")
	}
	checkBalanced(t, e, 3)
	checkAllReadable(t, e, keys)
}

// TestChaosMoveTimeout: a stalled fault plane trips the per-move timeout,
// and the abort still rolls back to the pre-move plan.
func TestChaosMoveTimeout(t *testing.T) {
	e := testEngine(t, 2, 1)
	const keys = 300
	load(t, e, keys)
	cfg := chaosConfig()
	cfg.ChunkRows = 10 // many chunks, so the timeout hits a chunk boundary
	cfg.MoveTimeout = 5 * time.Millisecond
	inj, err := faults.New(faults.Config{Seed: 5, Stall: 1, StallDelay: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := planFingerprint(e)
	moveErr := ex.Reconfigure(1, 2, 0)
	if moveErr == nil {
		t.Fatal("stalled move beat a 5ms timeout")
	}
	if !errors.Is(moveErr, ErrMoveTimeout) {
		t.Fatalf("error %v does not unwrap to ErrMoveTimeout", moveErr)
	}
	var me *MoveError
	if !errors.As(moveErr, &me) || !me.RolledBack {
		t.Fatalf("timeout abort not rolled back: %v", moveErr)
	}
	if got := planFingerprint(e); got != before {
		t.Fatal("pre-move plan not restored after timeout abort")
	}
	if got := e.ActiveMachines(); got != 1 {
		t.Errorf("machines %d after timeout abort, want 1", got)
	}
	if ex.InProgress() {
		t.Error("InProgress stuck true after timeout abort")
	}
	checkAllReadable(t, e, keys)
}

// TestFailedReconfigurationAllowsNext is the inProgress regression test: a
// reconfiguration that fails on every single chunk must leave the executor
// ready for the next plan — the flag cleared, the machine count restored,
// and a follow-up move succeeding.
func TestFailedReconfigurationAllowsNext(t *testing.T) {
	e := testEngine(t, 3, 1)
	const keys = 300
	load(t, e, keys)
	inj, err := faults.New(faults.Config{Seed: 2, ChunkDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // failing twice in a row must also be fine
		if err := ex.Reconfigure(1, 3, 0); err == nil {
			t.Fatalf("attempt %d: move at drop=1 succeeded", i)
		}
		if ex.InProgress() {
			t.Fatalf("attempt %d: InProgress stuck true after failure", i)
		}
		if got := e.ActiveMachines(); got != 1 {
			t.Fatalf("attempt %d: machines %d, want 1", i, got)
		}
	}
	e.SetFaultInjector(nil)
	if err := ex.Reconfigure(1, 3, 0); err != nil {
		t.Fatalf("subsequent reconfiguration after failures: %v", err)
	}
	checkBalanced(t, e, 3)
	checkAllReadable(t, e, keys)
}

// TestChaosUnderLiveLoad runs faulted reconfigurations (retries and at least
// occasional aborts) under concurrent read traffic and asserts the paper's
// serving invariants hold throughout: no transaction ever observes missing
// data, rows are conserved, and the per-bucket access counters account for
// exactly the transactions executed.
func TestChaosUnderLiveLoad(t *testing.T) {
	e := testEngine(t, 4, 1)
	const keys = 300
	load(t, e, keys)
	cfg := chaosConfig()
	cfg.MaxChunkRetries = 2
	inj, err := faults.New(faults.Config{Seed: 9, ChunkDrop: 0.45, ChunkSlow: 0.1, SlowDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaultInjector(inj)
	ex, err := NewExecutor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	e.BucketAccesses(true) // clear loader traffic
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	counts := make([]int64, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k-%d", i%keys)
				if v, err := e.Execute("get", key, nil); err != nil || v != i%keys {
					errCh <- fmt.Errorf("key %s: v=%v err=%v", key, v, err)
					return
				}
				counts[c]++
				i += 7
			}
		}(c)
	}

	aborts := 0
	for _, target := range []int{4, 2, 3, 1, 4} {
		from := e.ActiveMachines()
		if from == target {
			continue
		}
		if err := ex.Reconfigure(from, target, 0); err != nil {
			var me *MoveError
			if !errors.As(err, &me) || !me.RolledBack {
				t.Fatalf("move %d->%d: unrecovered failure %v", from, target, err)
			}
			aborts++
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("live load failed during chaos: %v", err)
	default:
	}

	checkAllReadable(t, e, keys)
	if got := e.TotalRows(); got != keys {
		t.Errorf("TotalRows = %d, want %d", got, keys)
	}
	// Access-counter conservation: counters were reset before the workers
	// started, so after they stop (and before the final readability sweep
	// above added its own traffic) ... include it: the sweep did keys gets.
	var want int64 = keys
	for _, n := range counts {
		want += n
	}
	var got int64
	for _, n := range e.BucketAccesses(false) {
		got += n
	}
	if got != want {
		t.Errorf("BucketAccesses sum = %d, want %d executed transactions", got, want)
	}
	t.Logf("chaos under load: %d aborts, stats %+v, injector %+v", aborts, ex.Stats(), inj.Stats())
}
