// Package metrics collects the performance measurements the paper's
// evaluation reports: windowed latency percentiles, throughput, SLA
// violation counts (Table 2), top-1% percentile CDFs (Figure 10) and
// machine-allocation timelines (Figure 9).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates per-transaction latencies into fixed-width time
// windows (the paper uses one-second windows for SLA accounting). It is
// safe for concurrent use by many client goroutines.
type Recorder struct {
	mu sync.Mutex

	start     time.Time
	window    time.Duration
	latencies [][]float64 // per window, milliseconds
	counts    []int

	machines      []machineSample
	reconfiguring []reconfigSpan
}

type machineSample struct {
	at time.Time
	n  int
}

type reconfigSpan struct {
	from, to time.Time
}

// NewRecorder returns a recorder with the given aggregation window,
// starting its clock at start.
func NewRecorder(start time.Time, window time.Duration) (*Recorder, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window %v must be positive", window)
	}
	return &Recorder{start: start, window: window}, nil
}

// Record files one completed transaction that finished at `at` with the
// given latency.
func (r *Recorder) Record(at time.Time, latency time.Duration) {
	w := int(at.Sub(r.start) / r.window)
	if w < 0 {
		w = 0
	}
	ms := float64(latency) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.latencies) <= w {
		r.latencies = append(r.latencies, nil)
		r.counts = append(r.counts, 0)
	}
	r.latencies[w] = append(r.latencies[w], ms)
	r.counts[w]++
}

// RecordMachines notes that the cluster size changed to n at time `at`.
func (r *Recorder) RecordMachines(at time.Time, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machines = append(r.machines, machineSample{at: at, n: n})
}

// RecordReconfiguration notes that a data migration was in progress between
// from and to.
func (r *Recorder) RecordReconfiguration(from, to time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reconfiguring = append(r.reconfiguring, reconfigSpan{from: from, to: to})
}

// Windows returns the number of aggregation windows observed so far.
func (r *Recorder) Windows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.latencies)
}

// Throughput returns the transactions completed in window w divided by the
// window length, in transactions per second.
func (r *Recorder) Throughput(w int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w < 0 || w >= len(r.counts) {
		return 0
	}
	return float64(r.counts[w]) / r.window.Seconds()
}

// Percentile returns the p-th percentile latency (in milliseconds) of
// window w, or 0 if the window is empty. p is in (0, 100].
func (r *Recorder) Percentile(w int, p float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return percentileLocked(r.latencies, w, p)
}

func percentileLocked(latencies [][]float64, w int, p float64) float64 {
	if w < 0 || w >= len(latencies) || len(latencies[w]) == 0 {
		return 0
	}
	vals := append([]float64(nil), latencies[w]...)
	sort.Float64s(vals)
	return percentileOfSorted(vals, p)
}

func percentileOfSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PercentileSeries returns the p-th percentile latency of every window.
func (r *Recorder) PercentileSeries(p float64) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.latencies))
	for w := range r.latencies {
		out[w] = percentileLocked(r.latencies, w, p)
	}
	return out
}

// ThroughputSeries returns per-window throughput in transactions/second.
func (r *Recorder) ThroughputSeries() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.counts))
	for w, c := range r.counts {
		out[w] = float64(c) / r.window.Seconds()
	}
	return out
}

// SLAViolations counts the windows whose p-th percentile latency exceeds
// threshold (in milliseconds) — the paper's Table 2 metric with one-second
// windows and a 500 ms threshold.
func (r *Recorder) SLAViolations(p float64, thresholdMs float64) int {
	series := r.PercentileSeries(p)
	n := 0
	for _, v := range series {
		if v > thresholdMs {
			n++
		}
	}
	return n
}

// MachineSeries samples the recorded machine-allocation timeline at every
// aggregation window boundary and returns one cluster size per window.
func (r *Recorder) MachineSeries() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.latencies))
	if len(r.machines) == 0 {
		return out
	}
	cur := r.machines[0].n
	k := 0
	for w := range out {
		boundary := r.start.Add(time.Duration(w+1) * r.window)
		for k < len(r.machines) && !r.machines[k].at.After(boundary) {
			cur = r.machines[k].n
			k++
		}
		out[w] = float64(cur)
	}
	return out
}

// AverageMachines returns the time-average cluster size over the recorded
// timeline, the "Average Machines Allocated" column of Table 2.
func (r *Recorder) AverageMachines() float64 {
	series := r.MachineSeries()
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}

// ReconfiguringWindows reports, per window, whether a migration overlapped
// it (the light-green spans of Figure 9c/d).
func (r *Recorder) ReconfiguringWindows() []bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]bool, len(r.latencies))
	for _, span := range r.reconfiguring {
		w0 := int(span.from.Sub(r.start) / r.window)
		w1 := int(span.to.Sub(r.start) / r.window)
		for w := max(w0, 0); w <= w1 && w < len(out); w++ {
			out[w] = true
		}
	}
	return out
}

// TopCDF returns the CDF of the worst topFrac fraction (e.g. 0.01 for the
// paper's "top 1%") of the per-window p-th percentile latencies: the sorted
// worst values, suitable for plotting cumulative probability (Figure 10).
func (r *Recorder) TopCDF(p float64, topFrac float64) []float64 {
	series := r.PercentileSeries(p)
	var nonzero []float64
	for _, v := range series {
		if v > 0 {
			nonzero = append(nonzero, v)
		}
	}
	sort.Float64s(nonzero)
	k := int(float64(len(nonzero)) * topFrac)
	if k < 1 {
		k = min(1, len(nonzero))
	}
	return nonzero[len(nonzero)-k:]
}
