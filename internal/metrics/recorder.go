// Package metrics collects the performance measurements the paper's
// evaluation reports: windowed latency percentiles, throughput, SLA
// violation counts (Table 2), top-1% percentile CDFs (Figure 10) and
// machine-allocation timelines (Figure 9).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// recordShards is the number of independent append buffers a stream spreads
// record calls over. Must be a power of two.
const recordShards = 64

// sample is one recorded value, tagged with its aggregation window.
type sample struct {
	w  int32
	ms float64
}

// recordShard is one append buffer. The leading pad keeps neighboring
// shards' locks off the same cache line.
type recordShard struct {
	_   [64]byte
	mu  sync.Mutex
	buf []sample
}

// stream accumulates values (milliseconds) into fixed-width time windows.
// The record path appends to one of several sharded buffers chosen by the
// record timestamp — no shared mutex — and readers merge the shards into the
// windowed view on demand. The recorder keeps one stream per measured
// quantity (client latency, queue sojourn).
type stream struct {
	start  time.Time
	window time.Duration

	shards [recordShards]recordShard

	// mu guards the merged window state.
	mu     sync.Mutex
	values [][]float64 // per window, milliseconds
	counts []int
	// sorted caches each window's sorted values; sortedN is the sample
	// count the cache covers. percentile re-sorts a window only when new
	// samples arrived since — the cluster decision loop reads percentiles
	// every cycle, almost always from settled windows.
	sorted  [][]float64
	sortedN []int
}

// record files one value observed at `at`. The shard is picked by mixing
// the record timestamp, so concurrent recorders spread over independent
// buffers instead of serializing on one lock.
func (s *stream) record(at time.Time, d time.Duration) {
	since := at.Sub(s.start)
	w := int(since / s.window)
	if w < 0 {
		w = 0
	}
	ms := float64(d) / float64(time.Millisecond)
	h := uint64(since) * 0x9E3779B97F4A7C15
	sh := &s.shards[(h>>32)&(recordShards-1)]
	sh.mu.Lock()
	sh.buf = append(sh.buf, sample{w: int32(w), ms: ms})
	sh.mu.Unlock()
}

// flushLocked merges every shard's pending samples into the windowed view.
// The caller must hold s.mu.
func (s *stream) flushLocked() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, smp := range sh.buf {
			w := int(smp.w)
			for len(s.values) <= w {
				s.values = append(s.values, nil)
				s.counts = append(s.counts, 0)
				s.sorted = append(s.sorted, nil)
				s.sortedN = append(s.sortedN, 0)
			}
			s.values[w] = append(s.values[w], smp.ms)
			s.counts[w]++
		}
		sh.buf = sh.buf[:0]
		sh.mu.Unlock()
	}
}

// windows returns the number of aggregation windows observed so far.
func (s *stream) windows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return len(s.values)
}

// count returns the number of samples in window w.
func (s *stream) count(w int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	if w < 0 || w >= len(s.counts) {
		return 0
	}
	return s.counts[w]
}

// countSeries returns the per-window sample counts.
func (s *stream) countSeries() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	out := make([]int, len(s.counts))
	copy(out, s.counts)
	return out
}

// percentile returns the p-th percentile value of window w.
func (s *stream) percentile(w int, p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.percentileLocked(w, p)
}

// percentileLocked serves a percentile from the sorted-window cache,
// re-sorting only windows that received samples since the last call. The
// caller must hold s.mu and have flushed.
func (s *stream) percentileLocked(w int, p float64) float64 {
	if w < 0 || w >= len(s.values) || len(s.values[w]) == 0 {
		return 0
	}
	if s.sortedN[w] != len(s.values[w]) {
		s.sorted[w] = append(s.sorted[w][:0], s.values[w]...)
		sort.Float64s(s.sorted[w])
		s.sortedN[w] = len(s.values[w])
	}
	return percentileOfSorted(s.sorted[w], p)
}

// percentileSeries returns the p-th percentile value of every window.
func (s *stream) percentileSeries(p float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	out := make([]float64, len(s.values))
	for w := range s.values {
		out[w] = s.percentileLocked(w, p)
	}
	return out
}

// Recorder accumulates per-transaction latencies into fixed-width time
// windows (the paper uses one-second windows for SLA accounting), plus a
// parallel stream of server-side queue-sojourn times and the counter sets of
// the migration, recovery and overload planes. It is safe for concurrent use
// by many client goroutines.
type Recorder struct {
	start  time.Time
	window time.Duration

	// lat is client-observed transaction latency; soj is server-side queue
	// sojourn time (enqueue to execution start), recorded by partition
	// executors when the overload plane has sojourn tracking armed.
	lat stream
	soj stream

	// mu guards the timelines below.
	mu            sync.Mutex
	machines      []machineSample
	reconfiguring []reconfigSpan

	// Migration-path health counters, plain atomics so the retry/abort
	// paths never contend with the latency record path.
	migRetries        atomic.Int64
	migAborts         atomic.Int64
	migRollbackChunks atomic.Int64

	// Crash-recovery counters, same pattern.
	recCheckpoints  atomic.Int64
	recCrashes      atomic.Int64
	recRecoveries   atomic.Int64
	recReplayed     atomic.Int64
	recMaxReplayLag atomic.Int64
	recDowntimeNs   atomic.Int64

	// Overload-plane counters: work refused server-side (admission-control
	// rejections, CoDel sheds, queue-deadline expiries) and client-side
	// (driver in-flight cap), plus the wire-level view: refusals the HTTP
	// front end turned into 429 responses for remote clients.
	olRejected     atomic.Int64
	olShed         atomic.Int64
	olDeadline     atomic.Int64
	olClientShed   atomic.Int64
	olWireRejected atomic.Int64
}

// MigrationCounters are the cumulative migration-path health counters: chunk
// retries, aborted reconfigurations, and chunks rolled back during aborts.
type MigrationCounters struct {
	Retries        int64
	Aborts         int64
	RollbackChunks int64
}

// RecoveryCounters are the cumulative crash-recovery counters: checkpoint
// rounds, machine crashes, completed recoveries, commands replayed, the
// largest single-recovery replay lag, and total machine downtime.
type RecoveryCounters struct {
	Checkpoints      int64
	Crashes          int64
	Recoveries       int64
	ReplayedCommands int64
	MaxReplayLag     int64
	Downtime         time.Duration
}

// OverloadCounters are the cumulative overload-plane counters: transactions
// refused by admission control, shed by the CoDel controller, expired in a
// partition queue, and shed client-side by the driver's in-flight cap.
// WireRejected counts the refusals the HTTP front end served to remote
// clients as 429 responses — a wire-level view of refusals already counted
// in Rejected/Shed, so it is reported alongside the total, not added to it.
type OverloadCounters struct {
	Rejected         int64
	Shed             int64
	DeadlineExceeded int64
	ClientShed       int64
	WireRejected     int64
}

// Refused is the total work refused anywhere in the stack — the one number
// the serve summary reports per run. WireRejected is excluded: a 429 is an
// engine refusal crossing the wire, not an additional refusal.
func (c OverloadCounters) Refused() int64 {
	return c.Rejected + c.Shed + c.DeadlineExceeded + c.ClientShed
}

type machineSample struct {
	at time.Time
	n  int
}

type reconfigSpan struct {
	from, to time.Time
}

// NewRecorder returns a recorder with the given aggregation window,
// starting its clock at start.
func NewRecorder(start time.Time, window time.Duration) (*Recorder, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window %v must be positive", window)
	}
	r := &Recorder{start: start, window: window}
	r.lat = stream{start: start, window: window}
	r.soj = stream{start: start, window: window}
	return r, nil
}

// Record files one completed transaction that finished at `at` with the
// given latency.
func (r *Recorder) Record(at time.Time, latency time.Duration) {
	r.lat.record(at, latency)
}

// RecordSojourn files one request's queue sojourn time (enqueue to execution
// start) observed at `at` by a partition executor.
func (r *Recorder) RecordSojourn(at time.Time, sojourn time.Duration) {
	r.soj.record(at, sojourn)
}

// RecordMachines notes that the cluster size changed to n at time `at`.
func (r *Recorder) RecordMachines(at time.Time, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machines = append(r.machines, machineSample{at: at, n: n})
}

// RecordReconfiguration notes that a data migration was in progress between
// from and to.
func (r *Recorder) RecordReconfiguration(from, to time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reconfiguring = append(r.reconfiguring, reconfigSpan{from: from, to: to})
}

// CountMigrationRetry files one retried migration chunk.
func (r *Recorder) CountMigrationRetry() { r.migRetries.Add(1) }

// CountMigrationAbort files one aborted (rolled back) reconfiguration.
func (r *Recorder) CountMigrationAbort() { r.migAborts.Add(1) }

// AddMigrationRollbackChunks files n chunks restored during an abort.
func (r *Recorder) AddMigrationRollbackChunks(n int64) { r.migRollbackChunks.Add(n) }

// MigrationCounters snapshots the migration-path health counters.
func (r *Recorder) MigrationCounters() MigrationCounters {
	return MigrationCounters{
		Retries:        r.migRetries.Load(),
		Aborts:         r.migAborts.Load(),
		RollbackChunks: r.migRollbackChunks.Load(),
	}
}

// CountCheckpoint files one checkpoint round.
func (r *Recorder) CountCheckpoint() { r.recCheckpoints.Add(1) }

// CountCrash files one machine crash.
func (r *Recorder) CountCrash() { r.recCrashes.Add(1) }

// CountRecovery files one completed machine recovery: its downtime and how
// many commands had to be replayed (the replay lag).
func (r *Recorder) CountRecovery(downtime time.Duration, replayed int64) {
	r.recRecoveries.Add(1)
	r.recReplayed.Add(replayed)
	r.recDowntimeNs.Add(int64(downtime))
	for {
		cur := r.recMaxReplayLag.Load()
		if replayed <= cur || r.recMaxReplayLag.CompareAndSwap(cur, replayed) {
			return
		}
	}
}

// RecoveryCounters snapshots the crash-recovery counters.
func (r *Recorder) RecoveryCounters() RecoveryCounters {
	return RecoveryCounters{
		Checkpoints:      r.recCheckpoints.Load(),
		Crashes:          r.recCrashes.Load(),
		Recoveries:       r.recRecoveries.Load(),
		ReplayedCommands: r.recReplayed.Load(),
		MaxReplayLag:     r.recMaxReplayLag.Load(),
		Downtime:         time.Duration(r.recDowntimeNs.Load()),
	}
}

// CountRejected files one transaction refused by admission control.
func (r *Recorder) CountRejected() { r.olRejected.Add(1) }

// CountShed files one transaction shed by the CoDel controller.
func (r *Recorder) CountShed() { r.olShed.Add(1) }

// CountDeadlineExceeded files one transaction that expired in a queue.
func (r *Recorder) CountDeadlineExceeded() { r.olDeadline.Add(1) }

// CountClientShed files one request shed client-side by the driver's
// in-flight cap before it reached the engine.
func (r *Recorder) CountClientShed() { r.olClientShed.Add(1) }

// CountWireRejected files one refusal the HTTP front end served to a remote
// client as a 429 response.
func (r *Recorder) CountWireRejected() { r.olWireRejected.Add(1) }

// OverloadCounters snapshots the overload-plane counters.
func (r *Recorder) OverloadCounters() OverloadCounters {
	return OverloadCounters{
		Rejected:         r.olRejected.Load(),
		Shed:             r.olShed.Load(),
		DeadlineExceeded: r.olDeadline.Load(),
		ClientShed:       r.olClientShed.Load(),
		WireRejected:     r.olWireRejected.Load(),
	}
}

// Windows returns the number of aggregation windows observed so far.
func (r *Recorder) Windows() int { return r.lat.windows() }

// Throughput returns the transactions completed in window w divided by the
// window length, in transactions per second.
func (r *Recorder) Throughput(w int) float64 {
	return float64(r.lat.count(w)) / r.window.Seconds()
}

// Percentile returns the p-th percentile latency (in milliseconds) of
// window w, or 0 if the window is empty. p is in (0, 100].
func (r *Recorder) Percentile(w int, p float64) float64 {
	return r.lat.percentile(w, p)
}

// SojournPercentile returns the p-th percentile queue-sojourn time (in
// milliseconds) of window w, or 0 if no sojourns were recorded in it.
func (r *Recorder) SojournPercentile(w int, p float64) float64 {
	return r.soj.percentile(w, p)
}

// SojournPercentileSeries returns the p-th percentile queue-sojourn time of
// every sojourn window.
func (r *Recorder) SojournPercentileSeries(p float64) []float64 {
	return r.soj.percentileSeries(p)
}

func percentileOfSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PercentileSeries returns the p-th percentile latency of every window.
func (r *Recorder) PercentileSeries(p float64) []float64 {
	return r.lat.percentileSeries(p)
}

// ThroughputSeries returns per-window throughput in transactions/second.
func (r *Recorder) ThroughputSeries() []float64 {
	counts := r.lat.countSeries()
	out := make([]float64, len(counts))
	for w, c := range counts {
		out[w] = float64(c) / r.window.Seconds()
	}
	return out
}

// SLAViolations counts the windows whose p-th percentile latency exceeds
// threshold (in milliseconds) — the paper's Table 2 metric with one-second
// windows and a 500 ms threshold.
func (r *Recorder) SLAViolations(p float64, thresholdMs float64) int {
	series := r.PercentileSeries(p)
	n := 0
	for _, v := range series {
		if v > thresholdMs {
			n++
		}
	}
	return n
}

// MachineSeries samples the recorded machine-allocation timeline at every
// aggregation window boundary and returns one cluster size per window.
func (r *Recorder) MachineSeries() []float64 {
	n := r.lat.windows()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, n)
	if len(r.machines) == 0 {
		return out
	}
	cur := r.machines[0].n
	k := 0
	for w := range out {
		boundary := r.start.Add(time.Duration(w+1) * r.window)
		for k < len(r.machines) && !r.machines[k].at.After(boundary) {
			cur = r.machines[k].n
			k++
		}
		out[w] = float64(cur)
	}
	return out
}

// AverageMachines returns the time-average cluster size over the recorded
// timeline, the "Average Machines Allocated" column of Table 2.
func (r *Recorder) AverageMachines() float64 {
	series := r.MachineSeries()
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}

// ReconfiguringWindows reports, per window, whether a migration overlapped
// it (the light-green spans of Figure 9c/d).
func (r *Recorder) ReconfiguringWindows() []bool {
	n := r.lat.windows()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]bool, n)
	for _, span := range r.reconfiguring {
		w0 := int(span.from.Sub(r.start) / r.window)
		w1 := int(span.to.Sub(r.start) / r.window)
		for w := max(w0, 0); w <= w1 && w < len(out); w++ {
			out[w] = true
		}
	}
	return out
}

// TopCDF returns the CDF of the worst topFrac fraction (e.g. 0.01 for the
// paper's "top 1%") of the per-window p-th percentile latencies: the sorted
// worst values, suitable for plotting cumulative probability (Figure 10).
func (r *Recorder) TopCDF(p float64, topFrac float64) []float64 {
	series := r.PercentileSeries(p)
	var nonzero []float64
	for _, v := range series {
		if v > 0 {
			nonzero = append(nonzero, v)
		}
	}
	sort.Float64s(nonzero)
	k := int(float64(len(nonzero)) * topFrac)
	if k < 1 {
		k = min(1, len(nonzero))
	}
	return nonzero[len(nonzero)-k:]
}
