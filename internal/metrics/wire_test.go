package metrics

import (
	"testing"
	"time"
)

// TestWireRejectedCounter checks the wire front end's 429 count is reported
// alongside the refused-work total without being added to it: wire
// rejections are engine refusals that left as HTTP responses, a second view
// of the same work.
func TestWireRejectedCounter(t *testing.T) {
	r, err := NewRecorder(time.Now(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r.CountRejected()
	r.CountRejected()
	r.CountWireRejected()
	oc := r.OverloadCounters()
	if oc.WireRejected != 1 {
		t.Fatalf("WireRejected = %d, want 1", oc.WireRejected)
	}
	if oc.Refused() != 2 {
		t.Fatalf("Refused() = %d, want 2 (wire view must not double-count)", oc.Refused())
	}
}
