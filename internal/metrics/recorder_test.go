package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func newTestRecorder(t *testing.T) (*Recorder, time.Time) {
	t.Helper()
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	r, err := NewRecorder(start, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return r, start
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(time.Now(), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestRecorderPercentiles(t *testing.T) {
	r, start := newTestRecorder(t)
	// 100 latencies of 1..100 ms in window 0.
	for i := 1; i <= 100; i++ {
		r.Record(start.Add(500*time.Millisecond), time.Duration(i)*time.Millisecond)
	}
	if got := r.Percentile(0, 50); math.Abs(got-50) > 1 {
		t.Errorf("p50 = %v, want ~50", got)
	}
	if got := r.Percentile(0, 99); math.Abs(got-99) > 1 {
		t.Errorf("p99 = %v, want ~99", got)
	}
	if got := r.Percentile(0, 100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := r.Percentile(5, 50); got != 0 {
		t.Errorf("empty window percentile = %v, want 0", got)
	}
	if got := r.Percentile(-1, 50); got != 0 {
		t.Errorf("negative window percentile = %v, want 0", got)
	}
}

func TestRecorderThroughput(t *testing.T) {
	r, start := newTestRecorder(t)
	for i := 0; i < 30; i++ {
		r.Record(start.Add(time.Duration(i)*100*time.Millisecond), time.Millisecond)
	}
	// 10 records land in window 0, 10 in window 1, 10 in window 2.
	if got := r.Throughput(0); got != 10 {
		t.Errorf("throughput(0) = %v, want 10", got)
	}
	series := r.ThroughputSeries()
	if len(series) != 3 {
		t.Fatalf("throughput series length %d, want 3", len(series))
	}
	if r.Windows() != 3 {
		t.Errorf("Windows = %d, want 3", r.Windows())
	}
}

func TestSLAViolations(t *testing.T) {
	r, start := newTestRecorder(t)
	// Window 0: fast. Window 1: slow. Window 2: fast.
	r.Record(start, 10*time.Millisecond)
	r.Record(start.Add(1100*time.Millisecond), 900*time.Millisecond)
	r.Record(start.Add(2100*time.Millisecond), 20*time.Millisecond)
	if got := r.SLAViolations(50, 500); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	if got := r.SLAViolations(50, 5); got != 3 {
		t.Errorf("violations at 5ms = %d, want 3", got)
	}
}

func TestMachineSeries(t *testing.T) {
	r, start := newTestRecorder(t)
	// Create 4 windows of latency data.
	for w := 0; w < 4; w++ {
		r.Record(start.Add(time.Duration(w)*time.Second+500*time.Millisecond), time.Millisecond)
	}
	r.RecordMachines(start, 2)
	r.RecordMachines(start.Add(2500*time.Millisecond), 5)
	series := r.MachineSeries()
	want := []float64{2, 2, 5, 5}
	for i, v := range want {
		if series[i] != v {
			t.Errorf("machines[%d] = %v, want %v", i, series[i], v)
		}
	}
	avg := r.AverageMachines()
	if math.Abs(avg-3.5) > 1e-9 {
		t.Errorf("AverageMachines = %v, want 3.5", avg)
	}
}

func TestReconfiguringWindows(t *testing.T) {
	r, start := newTestRecorder(t)
	for w := 0; w < 5; w++ {
		r.Record(start.Add(time.Duration(w)*time.Second+time.Millisecond), time.Millisecond)
	}
	r.RecordReconfiguration(start.Add(1200*time.Millisecond), start.Add(3300*time.Millisecond))
	got := r.ReconfiguringWindows()
	want := []bool{false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reconfiguring[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopCDF(t *testing.T) {
	r, start := newTestRecorder(t)
	// 200 windows with p50 latencies 1..200 ms.
	for w := 0; w < 200; w++ {
		r.Record(start.Add(time.Duration(w)*time.Second), time.Duration(w+1)*time.Millisecond)
	}
	top := r.TopCDF(50, 0.01)
	if len(top) != 2 {
		t.Fatalf("top 1%% of 200 windows = %d values, want 2", len(top))
	}
	if top[0] != 199 || top[1] != 200 {
		t.Errorf("top values = %v, want [199 200]", top)
	}
	// Degenerate: tiny topFrac still returns at least one value.
	if got := r.TopCDF(50, 1e-9); len(got) != 1 {
		t.Errorf("tiny topFrac returned %d values, want 1", len(got))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r, start := newTestRecorder(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(start.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
				if i%50 == 0 {
					r.RecordMachines(start.Add(time.Duration(i)*time.Millisecond), g+1)
					_ = r.PercentileSeries(99)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Throughput(0); got != 4000 {
		t.Errorf("total recorded = %v, want 4000", got)
	}
}

// TestRecorderShardedMergePreservesSamples records from many goroutines
// across several windows and checks that the merged view loses nothing and
// percentiles reflect all samples regardless of shard interleaving.
func TestRecorderShardedMergePreservesSamples(t *testing.T) {
	r, start := newTestRecorder(t)
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread samples over 4 windows with distinct latencies.
				w := (g + i) % 4
				at := start.Add(time.Duration(w)*time.Second + time.Duration(g*perG+i)*time.Microsecond)
				r.Record(at, time.Duration(i%100+1)*time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for w := 0; w < r.Windows(); w++ {
		total += r.Throughput(w)
	}
	if int(total) != goroutines*perG {
		t.Errorf("merged %v samples, want %d", total, goroutines*perG)
	}
	// Samples are 1..100 ms uniform; p50 of every window must sit near 50.
	for w := 0; w < r.Windows(); w++ {
		if p := r.Percentile(w, 50); p < 40 || p > 60 {
			t.Errorf("window %d p50 = %v, want ~50", w, p)
		}
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	r, err := NewRecorder(start, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Record(start.Add(time.Duration(i)*time.Microsecond), time.Millisecond)
			i++
		}
	})
}

func TestRecordBeforeStartClamps(t *testing.T) {
	r, start := newTestRecorder(t)
	r.Record(start.Add(-5*time.Second), time.Millisecond)
	if r.Windows() != 1 {
		t.Errorf("early record created %d windows, want 1", r.Windows())
	}
}

func TestSojournStreamAndOverloadCounters(t *testing.T) {
	r, start := newTestRecorder(t)
	// Sojourns live in their own stream: they must not contaminate the
	// client-latency percentiles, and vice versa.
	for i := 1; i <= 100; i++ {
		r.RecordSojourn(start.Add(500*time.Millisecond), time.Duration(i)*time.Millisecond)
	}
	r.Record(start.Add(500*time.Millisecond), 7*time.Millisecond)
	if got := r.SojournPercentile(0, 50); math.Abs(got-50) > 1 {
		t.Errorf("sojourn p50 = %v, want ~50", got)
	}
	if got := r.SojournPercentile(0, 99); math.Abs(got-99) > 1 {
		t.Errorf("sojourn p99 = %v, want ~99", got)
	}
	if got := r.Percentile(0, 100); got != 7 {
		t.Errorf("latency p100 = %v, want 7 (sojourns leaked into latency stream)", got)
	}
	if got := r.SojournPercentile(5, 50); got != 0 {
		t.Errorf("empty window sojourn percentile = %v, want 0", got)
	}
	series := r.SojournPercentileSeries(50)
	if len(series) != 1 || math.Abs(series[0]-50) > 1 {
		t.Errorf("sojourn series = %v, want [~50]", series)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.CountRejected()
				r.CountShed()
				r.CountDeadlineExceeded()
				r.CountClientShed()
			}
		}()
	}
	wg.Wait()
	oc := r.OverloadCounters()
	want := OverloadCounters{Rejected: 400, Shed: 400, DeadlineExceeded: 400, ClientShed: 400}
	if oc != want {
		t.Errorf("OverloadCounters = %+v, want %+v", oc, want)
	}
	if got := oc.Refused(); got != 1600 {
		t.Errorf("Refused() = %d, want 1600", got)
	}
	if got := (OverloadCounters{}).Refused(); got != 0 {
		t.Errorf("zero counters Refused() = %d", got)
	}
}
