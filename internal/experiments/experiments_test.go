package experiments

import (
	"strings"
	"testing"
)

// quick returns Options for fast, seeded test runs.
func quick() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig4", "table1", "fig5", "fig6", "sec5",
		"fig7", "fig8", "fig9", "fig10", "table2", "fig11", "fig12", "fig13",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if _, ok := Title(id); !ok {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(IDsString(), "fig9") {
		t.Error("IDs listing missing fig9")
	}
}

// IDsString joins the ids for the error-message assertion above.
func IDsString() string { return strings.Join(IDs(), ",") }

func TestFig1Shape(t *testing.T) {
	r, err := Run("fig1", quick())
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.Values["peak_trough_ratio"]
	if ratio < 6 || ratio > 16 {
		t.Errorf("peak/trough ratio %.1f outside the paper's ~10x shape", ratio)
	}
	if len(r.Series["load_per_min"]) != 3*1440 {
		t.Errorf("trace length %d, want 3 days of minutes", len(r.Series["load_per_min"]))
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Run("fig2", quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["actual_machine_intervals"] <= r.Values["ideal_machine_intervals"] {
		t.Error("step allocation should cost more than the ideal fractional curve")
	}
	if r.Values["step_overhead"] > 0.5 {
		t.Errorf("integrality overhead %.2f unreasonably high", r.Values["step_overhead"])
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Run("fig4", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Figure 4 milestones.
	if got := r.Values["avg_alloc_3_5"]; got != 5 {
		t.Errorf("avg alloc 3->5 = %v, want 5", got)
	}
	if got := r.Values["avg_alloc_3_9"]; got != 7.5 {
		t.Errorf("avg alloc 3->9 = %v, want 7.5", got)
	}
	if got := r.Values["avg_alloc_3_14"]; got < 10.0 || got > 10.2 {
		t.Errorf("avg alloc 3->14 = %v, want 111/11", got)
	}
	// Effective capacity rises monotonically to cap(A) in every case.
	for _, key := range []string{"3_5", "3_9", "3_14"} {
		eff := r.Series["effcap_"+key]
		prev := 0.0
		for i, v := range eff {
			if v < prev-1e-9 {
				t.Errorf("case %s: eff-cap not monotone at %d", key, i)
			}
			prev = v
		}
	}
	if eff := r.Series["effcap_3_14"]; eff[len(eff)-1] < 14-1e-9 || eff[len(eff)-1] > 14+1e-9 {
		t.Errorf("3->14 final eff-cap %v, want 14", eff[len(eff)-1])
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Run("table1", quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["rounds"] != 11 {
		t.Errorf("rounds = %v, want 11 like the paper's Table 1", r.Values["rounds"])
	}
	alloc := r.Series["round_alloc"]
	want := []float64{6, 6, 6, 9, 9, 9, 12, 12, 14, 14, 14}
	for i := range want {
		if alloc[i] != want[i] {
			t.Fatalf("allocation profile %v, want %v", alloc, want)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Run("fig5", quick())
	if err != nil {
		t.Fatal(err)
	}
	mres := r.Series["mre_percent"]
	if len(mres) != 6 {
		t.Fatalf("MRE series has %d points, want 6", len(mres))
	}
	// Accuracy decays gracefully: the 60-minute error is larger than the
	// 10-minute error but still in the paper's usable range.
	if mres[5] < mres[0] {
		t.Errorf("MRE at tau=60 (%.2f%%) below tau=10 (%.2f%%)", mres[5], mres[0])
	}
	if mres[5] > 15 {
		t.Errorf("MRE at tau=60 = %.2f%%, paper reports ~10%%", mres[5])
	}
	if len(r.Series["day_actual"]) == 0 || len(r.Series["day_actual"]) != len(r.Series["day_predicted"]) {
		t.Error("day sample series missing or mismatched")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Run("fig6", quick())
	if err != nil {
		t.Fatal(err)
	}
	en := r.Series["english_mre_percent"]
	de := r.Series["german_mre_percent"]
	if len(en) != 6 || len(de) != 6 {
		t.Fatalf("MRE series lengths %d/%d, want 6", len(en), len(de))
	}
	for i := range en {
		if en[i] >= de[i] {
			t.Errorf("tau=%dh: english MRE %.2f%% not below german %.2f%%", i+1, en[i], de[i])
		}
	}
	if de[5] > 15 {
		t.Errorf("german MRE at 6h = %.2f%%, paper reports ~13%%", de[5])
	}
	if en[5] > 10 {
		t.Errorf("english MRE at 6h = %.2f%%, paper reports <10%%", en[5])
	}
}

func TestSec5Shape(t *testing.T) {
	r, err := Run("sec5", quick())
	if err != nil {
		t.Fatal(err)
	}
	spar := r.Values["mre_spar"]
	arma := r.Values["mre_arma"]
	ar := r.Values["mre_ar"]
	if spar >= arma || spar >= ar {
		t.Errorf("SPAR (%.2f%%) should beat ARMA (%.2f%%) and AR (%.2f%%)", spar, arma, ar)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Run("fig12", quick())
	if err != nil {
		t.Fatal(err)
	}
	// P-Store Oracle never runs short; SPAR stays close (paper Figure 12).
	if r.Values["pstore-oracle_short_mid"] > 0.1 {
		t.Errorf("oracle shortfall %.3f%%, want ~0", r.Values["pstore-oracle_short_mid"])
	}
	if r.Values["pstore-spar_short_mid"] > 1.0 {
		t.Errorf("SPAR shortfall %.3f%%, want well under 1%%", r.Values["pstore-spar_short_mid"])
	}
	// Reactive violates far more at comparable or lower cost.
	if r.Values["reactive_short_mid"] < 2*r.Values["pstore-spar_short_mid"]+1 {
		t.Errorf("reactive shortfall %.2f%% should far exceed SPAR's %.2f%%",
			r.Values["reactive_short_mid"], r.Values["pstore-spar_short_mid"])
	}
	// Static pays much more for low violations than P-Store does.
	if r.Values["static_cost_mid"] < 1.2 {
		t.Errorf("static cost %.2f should be well above P-Store's 1.0", r.Values["static_cost_mid"])
	}
	// Oracle costs at most SPAR at the same buffer (less inflation).
	if r.Values["pstore-oracle_cost_mid"] > r.Values["pstore-spar_cost_mid"] {
		t.Errorf("oracle cost %.3f exceeds SPAR cost %.3f",
			r.Values["pstore-oracle_cost_mid"], r.Values["pstore-spar_cost_mid"])
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Run("fig13", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Normal window: everything roughly fits.
	for _, strategy := range []string{"pstore-spar", "simple", "static"} {
		if short := r.Values["normal_"+strategy+"_short"]; short > 100 {
			t.Errorf("%s normal-window shortfall %v intervals, want near zero", strategy, short)
		}
	}
	// Black Friday: Simple collapses; P-Store absorbs most of it.
	simple := r.Values["black_friday_simple_short"]
	pstore := r.Values["black_friday_pstore-spar_short"]
	if simple < 50 {
		t.Errorf("Simple Black Friday shortfall %v, expected a collapse", simple)
	}
	if pstore*3 > simple {
		t.Errorf("P-Store Black Friday shortfall %v not well below Simple's %v", pstore, simple)
	}
}
