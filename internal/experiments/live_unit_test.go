package experiments

import (
	"testing"
	"time"
)

// estimateD feeds the planner's D input, so its shape matters: more rows
// must never migrate faster, and bigger chunks must never be slower (fewer
// per-chunk overheads for the same rows).

func TestEstimateDMonotoneInRows(t *testing.T) {
	cfg := defaultLiveParams(false).squallCfg
	prev := time.Duration(0)
	for _, rows := range []int{1, 10, 100, 1000, 10000, 100000} {
		d := estimateD(rows, cfg)
		if d <= prev {
			t.Fatalf("estimateD(%d rows) = %v, not above estimateD of fewer rows (%v)", rows, d, prev)
		}
		prev = d
	}
}

func TestEstimateDMonotoneInChunkSize(t *testing.T) {
	base := defaultLiveParams(false).squallCfg
	const rows = 25000
	prev := time.Duration(1 << 62)
	for _, chunk := range []int{10, 50, 150, 600, 2400} {
		cfg := base
		cfg.ChunkRows = chunk
		d := estimateD(rows, cfg)
		if d > prev {
			t.Fatalf("estimateD with ChunkRows=%d = %v, above smaller-chunk estimate %v", chunk, d, prev)
		}
		prev = d
	}
	// The chunk-size effect must be real, not flat: tiny chunks pay many
	// more per-chunk overheads than huge ones.
	small, big := base, base
	small.ChunkRows, big.ChunkRows = 10, 10000
	if estimateD(rows, small) <= estimateD(rows, big) {
		t.Fatalf("tiny chunks (%v) not slower than huge chunks (%v)",
			estimateD(rows, small), estimateD(rows, big))
	}
}

// TestCalibrationKeyCoversRunParameters guards the calibration cache against
// serving a quick-mode result to a full run (or across any substrate
// parameter change): the key must vary with Quick, the recorder window, and
// every other liveParams field that shapes the ramp.
func TestCalibrationKeyCoversRunParameters(t *testing.T) {
	base := defaultLiveParams(false)
	opts := Options{Seed: 1}

	if calKey(base, opts) != calKey(base, Options{Seed: 99}) {
		t.Error("calibration key varies with seed; calibration is a substrate property")
	}
	if calKey(base, opts) == calKey(base, Options{Seed: 1, Quick: true}) {
		t.Error("calibration key ignores Quick mode")
	}
	if calKey(defaultLiveParams(false), opts) == calKey(defaultLiveParams(true), opts) {
		t.Error("calibration key ignores quick-mode params (recorder window, slot duration)")
	}

	mutations := []func(*liveParams){
		func(p *liveParams) { p.recorderWin *= 2 },
		func(p *liveParams) { p.minutePerSlot *= 2 },
		func(p *liveParams) { p.latencySLOms += 1 },
		func(p *liveParams) { p.engineCfg.ServiceTime *= 2 },
		func(p *liveParams) { p.engineCfg.PartitionsPerMachine++ },
		func(p *liveParams) { p.squallCfg.ChunkRows *= 2 },
		func(p *liveParams) { p.loadSpec.Carts++ },
	}
	for i, mutate := range mutations {
		mutated := base
		mutate(&mutated)
		if calKey(base, opts) == calKey(mutated, opts) {
			t.Errorf("mutation %d does not change the calibration key", i)
		}
	}
}

// TestEstimateDUsesRateIndependentCosts pins down that D is priced at the
// non-disruptive rate: the squall RateFactor must not leak into it.
func TestEstimateDUsesRateIndependentCosts(t *testing.T) {
	cfg := defaultLiveParams(false).squallCfg
	fast := cfg
	fast.RateFactor = 8
	if estimateD(10000, cfg) != estimateD(10000, fast) {
		t.Error("estimateD varies with RateFactor; D is defined at rate R")
	}
}
