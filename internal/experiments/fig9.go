package experiments

import (
	"fmt"
	"sync"

	"pstore/internal/elastic"
	"pstore/internal/migration"
	"pstore/internal/predictor"
	"pstore/internal/workload"
)

func init() {
	register("fig9", "Comparison of elasticity approaches on the live engine (static-10, static-4, reactive, P-Store)", fig9)
	register("fig10", "Top-1% CDFs of 50th/95th/99th percentile latencies per approach", fig10)
	register("table2", "SLA violations and average machines allocated per approach", table2)
}

// fig9Strategy names the four approaches of Figure 9.
var fig9Strategies = []string{"static-10", "static-4", "reactive", "pstore"}

// fig9Outcome is one strategy's full run, shared by fig9/fig10/table2.
type fig9Outcome struct {
	strategy   string
	violations map[float64]int // percentile -> windows over SLO
	avgMach    float64
	topCDF     map[float64][]float64
	throughput []float64
	latency    []float64
	p99series  []float64
	machines   []float64
	reconfig   []bool
	decided    int
	failures   int
}

var (
	fig9Mu    sync.Mutex
	fig9Cache = map[string][]*fig9Outcome{}
)

// fig9Runs executes (or returns cached) runs of all four strategies.
func fig9Runs(opts Options) ([]*fig9Outcome, error) {
	key := fmt.Sprintf("q=%v/seed=%d", opts.Quick, opts.Seed)
	fig9Mu.Lock()
	if outs, ok := fig9Cache[key]; ok {
		fig9Mu.Unlock()
		return outs, nil
	}
	fig9Mu.Unlock()

	p := defaultLiveParams(opts.Quick)
	cal, err := calibrate(p, opts)
	if err != nil {
		return nil, err
	}

	// Generate the multi-week trace: train on the first four weeks, replay
	// the following day(s), like the paper's randomly chosen 3-day window
	// after a 4-week training period.
	replayDays := 3
	if opts.Quick {
		replayDays = 1
	}
	cfg := workload.DefaultB2WConfig(opts.Seed+9, 28+replayDays)
	full, err := workload.SyntheticB2W(cfg)
	if err != nil {
		return nil, err
	}
	trainMin := full.Slice(0, 28*workload.MinutesPerDay)
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())

	// Size the trace so the inflated peak demands just under the full
	// 10-machine cluster at the Q target, mirroring the paper's headroom
	// at peak (Figure 9d: the capacity line stays barely above the peak).
	rateScale := chooseRateScale(replay.Max(), cal, p, 6.7)
	q, qMax := paperUnits(cal, p, rateScale)
	// D in controller intervals (controllerEveryMin trace minutes each).
	dReal := estimateD(p.loadSpec.Carts+p.loadSpec.Checkouts+p.loadSpec.Stocks, p.squallCfg)
	dIntervals := dReal.Seconds() / (p.minutePerSlot.Seconds() * float64(p.controllerEveryMin))
	model := migration.Model{Q: q, QMax: qMax, D: dIntervals, P: p.engineCfg.PartitionsPerMachine}

	// SPAR trained on the four weeks at controller-cycle granularity.
	fiveMin, err := trainMin.Resample(p.controllerEveryMin)
	if err != nil {
		return nil, err
	}
	period := workload.MinutesPerDay / p.controllerEveryMin

	var outs []*fig9Outcome
	for _, strategy := range fig9Strategies {
		opts.logf("fig9: running %s ...", strategy)
		var ctrl elastic.Controller
		machines := model.MachinesFor(replay.At(0) * 1.3)
		switch strategy {
		case "static-10":
			machines = 10
		case "static-4":
			machines = 4
		case "reactive":
			ctrl = &elastic.Reactive{Model: model, MaxMachines: p.engineCfg.MaxMachines}
		case "pstore":
			spar := predictor.NewSPAR(period, 7, 6)
			online := predictor.NewOnline(spar, 0, 9*period)
			if err := online.ObserveAll(fiveMin.Values); err != nil {
				return nil, err
			}
			ctrl = &elastic.Predictive{
				Model:          model,
				Predictor:      online,
				Horizon:        36,
				Inflation:      0.15,
				ScaleInConfirm: 6,
				MaxMachines:    p.engineCfg.MaxMachines,
				OnSpike:        elastic.SpikeRegularRate,
			}
		}
		lr := &liveRun{
			params:     p,
			trace:      replay,
			controller: ctrl,
			machines:   machines,
			rateScale:  rateScale,
			seed:       opts.Seed + 90,
		}
		res, err := lr.run(opts)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", strategy, err)
		}
		o := &fig9Outcome{
			strategy:   strategy,
			violations: map[float64]int{},
			topCDF:     map[float64][]float64{},
			avgMach:    res.rec.AverageMachines(),
			throughput: res.rec.ThroughputSeries(),
			machines:   res.rec.MachineSeries(),
			reconfig:   boolsFrom(res.rec.ReconfiguringWindows()),
			latency:    res.rec.PercentileSeries(50),
			p99series:  res.rec.PercentileSeries(99),
			decided:    res.decided,
			failures:   res.failures,
		}
		for _, pct := range []float64{50, 95, 99} {
			o.violations[pct] = res.rec.SLAViolations(pct, p.latencySLOms)
			o.topCDF[pct] = res.rec.TopCDF(pct, 0.01)
		}
		outs = append(outs, o)
		opts.logf("fig9: %s done (avg machines %.2f, p99 violations %d)",
			strategy, o.avgMach, o.violations[99])
	}

	fig9Mu.Lock()
	fig9Cache[key] = outs
	fig9Mu.Unlock()
	return outs, nil
}

func boolsFrom(b []bool) []bool { return b }

func fig9(opts Options) (*Result, error) {
	r := newResult("fig9", "Comparison of elasticity approaches")
	outs, err := fig9Runs(opts)
	if err != nil {
		return nil, err
	}
	p := defaultLiveParams(opts.Quick)
	for _, o := range outs {
		r.addLine("%-10s avg machines %5.2f  SLA violations p50/p95/p99 = %d/%d/%d  moves decided %d",
			o.strategy, o.avgMach, o.violations[50], o.violations[95], o.violations[99], o.decided)
		r.Values[o.strategy+"_avg_machines"] = o.avgMach
		r.Values[o.strategy+"_p99_violations"] = float64(o.violations[99])
		r.Series[o.strategy+"_throughput"] = o.throughput
		r.Series[o.strategy+"_p50_latency_ms"] = o.latency
		r.Series[o.strategy+"_machines"] = o.machines
		r.Series[o.strategy+"_p99"] = o.p99series
	}
	r.addLine("SLO threshold on this substrate: %v ms per %v window (paper: 500 ms per second)",
		p.latencySLOms, p.recorderWin)
	r.addLine("paper reference (Table 2): static-10 fewest violations at 10 machines; P-Store ~half the")
	r.addLine("machines of peak with ~1/3 the violations of reactive; static-4 cheap but violates heavily")
	return r, nil
}

func fig10(opts Options) (*Result, error) {
	r := newResult("fig10", "Top-1% latency CDFs")
	outs, err := fig9Runs(opts)
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		for _, pct := range []float64{50, 95, 99} {
			cdf := o.topCDF[pct]
			r.Series[fmt.Sprintf("%s_p%.0f", o.strategy, pct)] = cdf
			if len(cdf) > 0 {
				r.addLine("%-10s p%-3.0f top-1%% range: %7.1f .. %7.1f ms (%d points)",
					o.strategy, pct, cdf[0], cdf[len(cdf)-1], len(cdf))
				r.Values[fmt.Sprintf("%s_p%.0f_worst", o.strategy, pct)] = cdf[len(cdf)-1]
			}
		}
	}
	r.addLine("paper reference: reactive worst in all three panels; static-10 best; P-Store between")
	return r, nil
}

func table2(opts Options) (*Result, error) {
	r := newResult("table2", "SLA violations and average machines allocated")
	outs, err := fig9Runs(opts)
	if err != nil {
		return nil, err
	}
	r.addLine("%-22s %8s %8s %8s %10s", "Elasticity Approach", "50th", "95th", "99th", "Machines")
	label := map[string]string{
		"static-10": "Static allocation (10)",
		"static-4":  "Static allocation (4)",
		"reactive":  "Reactive provisioning",
		"pstore":    "P-Store",
	}
	for _, o := range outs {
		r.addLine("%-22s %8d %8d %8d %10.2f",
			label[o.strategy], o.violations[50], o.violations[95], o.violations[99], o.avgMach)
		for _, pct := range []float64{50, 95, 99} {
			r.Values[fmt.Sprintf("%s_p%.0f", o.strategy, pct)] = float64(o.violations[pct])
		}
		r.Values[o.strategy+"_machines"] = o.avgMach
	}
	r.addLine("paper reference: 0/13/25 @10; 0/157/249 @4; 35/220/327 reactive @4.02; 0/37/92 P-Store @5.05")
	return r, nil
}
