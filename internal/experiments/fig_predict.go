package experiments

import (
	"fmt"

	"pstore/internal/predictor"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func init() {
	register("fig5", "SPAR predictions for B2W: 60-min-ahead sample and MRE vs forecast period", fig5)
	register("fig6", "SPAR predictions for Wikipedia (en/de): hourly sample and MRE vs forecast period", fig6)
	register("sec5", "Model comparison at tau=60min: SPAR vs ARMA vs AR mean relative error", sec5)
}

// evalMRE computes the mean relative error of a fitted predictor over the
// test region [testStart, len(trace)-tau) sampling every stride slots.
func evalMRE(p predictor.Predictor, trace []float64, testStart, tau, stride int) (float64, error) {
	var actual, pred []float64
	for now := testStart; now+tau < len(trace); now += stride {
		v, err := p.Forecast(trace[:now+1], tau)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			v = 0
		}
		pred = append(pred, v)
		actual = append(actual, trace[now+tau])
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("experiments: no test samples for tau=%d", tau)
	}
	return timeseries.MRE(actual, pred)
}

// b2wMinuteTrace generates the per-minute multi-week B2W trace used by the
// prediction studies. Quick mode shortens it.
func b2wMinuteTrace(opts Options, weeks int) ([]float64, int) {
	if opts.Quick {
		// 5-minute slots keep SPAR's lag structure but shrink the fit 25x.
		days := weeks * 7
		cfg := workload.DefaultB2WConfig(opts.Seed+5, days)
		series, _ := workload.SyntheticB2W(cfg)
		five, _ := series.Resample(5)
		return five.Values, workload.MinutesPerDay / 5
	}
	days := weeks * 7
	cfg := workload.DefaultB2WConfig(opts.Seed+5, days)
	series, _ := workload.SyntheticB2W(cfg)
	return series.Values, workload.MinutesPerDay
}

// fig5 reproduces Figure 5: SPAR fitted on four weeks of B2W-like load
// (n=7 periods, m=30 recent offsets), evaluated on held-out days — a
// 60-minute-ahead prediction sample and the MRE as the forecast period
// grows from 10 to 60 minutes.
func fig5(opts Options) (*Result, error) {
	r := newResult("fig5", "SPAR predictions for B2W")
	trace, slotsPerDay := b2wMinuteTrace(opts, 5)
	period := slotsPerDay
	trainSlots := 4 * 7 * slotsPerDay
	slotMinutes := workload.MinutesPerDay / slotsPerDay
	mRecent := 30 / slotMinutes
	if mRecent < 3 {
		mRecent = 3
	}

	// MRE vs forecast period tau (Figure 5b): 10..60 minutes.
	taus := []int{10, 20, 30, 40, 50, 60}
	var mres []float64
	for _, tauMin := range taus {
		tau := tauMin / slotMinutes
		if tau < 1 {
			tau = 1
		}
		spar := predictor.NewSPAR(period, 7, mRecent)
		if err := spar.FitHorizons(trace[:trainSlots], tau); err != nil {
			return nil, err
		}
		mre, err := evalMRE(spar, trace, trainSlots, tau, 7)
		if err != nil {
			return nil, err
		}
		mres = append(mres, mre*100)
		r.addLine("tau = %2d min  MRE = %5.2f%%", tauMin, mre*100)
		r.Values[fmt.Sprintf("mre_tau%d", tauMin)] = mre * 100
	}
	r.Series["tau_minutes"] = []float64{10, 20, 30, 40, 50, 60}
	r.Series["mre_percent"] = mres

	// 60-minute-ahead sample over one held-out day (Figure 5a).
	tau60 := max(60/slotMinutes, 1)
	spar := predictor.NewSPAR(period, 7, mRecent)
	if err := spar.FitHorizons(trace[:trainSlots], tau60); err != nil {
		return nil, err
	}
	var actual, pred []float64
	for now := trainSlots; now+tau60 < trainSlots+period && now+tau60 < len(trace); now++ {
		v, err := spar.Forecast(trace[:now+1], tau60)
		if err != nil {
			return nil, err
		}
		actual = append(actual, trace[now+tau60])
		pred = append(pred, v)
	}
	r.Series["day_actual"] = actual
	r.Series["day_predicted"] = pred
	r.addLine("60-min-ahead sample over %d held-out slots (paper Figure 5a)", len(actual))
	r.addLine("paper reference: MRE ~6-10%% over tau = 10..60 min, 10.4%% at tau=60")
	return r, nil
}

// fig6 reproduces Figure 6: SPAR on hourly Wikipedia-like traces for the
// highly periodic English edition and the noisier German edition, with
// forecast periods of 1..6 hours.
func fig6(opts Options) (*Result, error) {
	r := newResult("fig6", "SPAR predictions for Wikipedia page views")
	weeks := 6
	if opts.Quick {
		weeks = 5
	}
	for _, lang := range []string{"english", "german"} {
		var cfg workload.WikipediaConfig
		if lang == "english" {
			cfg = workload.EnglishWikipediaConfig(opts.Seed+6, weeks*7)
		} else {
			cfg = workload.GermanWikipediaConfig(opts.Seed+6, weeks*7)
		}
		series, err := workload.SyntheticWikipedia(cfg)
		if err != nil {
			return nil, err
		}
		trace := series.Values
		trainSlots := 4 * 7 * 24
		var mres []float64
		for tau := 1; tau <= 6; tau++ {
			spar := predictor.NewSPAR(24, 7, 6)
			if err := spar.FitHorizons(trace[:trainSlots], tau); err != nil {
				return nil, err
			}
			mre, err := evalMRE(spar, trace, trainSlots, tau, 1)
			if err != nil {
				return nil, err
			}
			mres = append(mres, mre*100)
			r.addLine("%-8s tau = %d h  MRE = %5.2f%%", lang, tau, mre*100)
			r.Values[fmt.Sprintf("%s_mre_tau%dh", lang, tau)] = mre * 100
		}
		r.Series[lang+"_mre_percent"] = mres
	}
	r.addLine("paper reference: en-wiki under ~10%% through 6h; de-wiki <10%% to 2h, ~13%% at 6h")
	return r, nil
}

// sec5 reproduces the Section 5 text comparison: at tau = 60 minutes the
// paper reports MRE 10.4% for SPAR, 12.2% for ARMA and 12.5% for AR on the
// B2W load.
func sec5(opts Options) (*Result, error) {
	r := newResult("sec5", "SPAR vs ARMA vs AR at tau = 60 minutes")
	trace, slotsPerDay := b2wMinuteTrace(opts, 5)
	trainSlots := 4 * 7 * slotsPerDay
	slotMinutes := workload.MinutesPerDay / slotsPerDay
	tau := max(60/slotMinutes, 1)
	mRecent := max(30/slotMinutes, 3)

	spar := predictor.NewSPAR(slotsPerDay, 7, mRecent)
	if err := spar.FitHorizons(trace[:trainSlots], tau); err != nil {
		return nil, err
	}
	arma := predictor.NewARMA(2*mRecent, mRecent)
	if err := arma.Fit(trace[:trainSlots]); err != nil {
		return nil, err
	}
	ar := predictor.NewAR(2 * mRecent)
	if err := ar.Fit(trace[:trainSlots]); err != nil {
		return nil, err
	}

	models := []struct {
		key string
		p   predictor.Predictor
	}{{"spar", spar}, {"arma", arma}, {"ar", ar}}
	for _, m := range models {
		mre, err := evalMRE(m.p, trace, trainSlots, tau, 11)
		if err != nil {
			return nil, err
		}
		r.Values["mre_"+m.key] = mre * 100
		r.addLine("%-12s MRE = %5.2f%% at tau = 60 min", m.p.Name(), mre*100)
	}
	r.addLine("paper reference: SPAR 10.4%%, ARMA 12.2%%, AR 12.5%%")
	return r, nil
}
