package experiments

import (
	"fmt"
	"math"

	"pstore/internal/migration"
	"pstore/internal/workload"
)

func init() {
	register("fig1", "Load on one of B2W's databases over three days", fig1)
	register("fig2", "Ideal capacity vs actual servers allocated for a sinusoidal demand", fig2)
	register("fig4", "Servers allocated and effective capacity during migrations (3->5, 3->9, 3->14)", fig4)
	register("table1", "Schedule of parallel migrations when scaling from 3 to 14 machines", table1)
}

// fig1 regenerates the three-day B2W load trace of Figure 1: a strong
// diurnal wave with peak about 10x the trough.
func fig1(opts Options) (*Result, error) {
	r := newResult("fig1", "Load on one of B2W's databases over three days")
	cfg := workload.DefaultB2WConfig(opts.Seed+1, 3)
	series, err := workload.SyntheticB2W(cfg)
	if err != nil {
		return nil, err
	}
	r.Series["load_per_min"] = series.Values
	// Report hourly means like the figure's visible envelope.
	hourly, err := series.Resample(60)
	if err != nil {
		return nil, err
	}
	r.Series["load_hourly"] = hourly.Values
	for i, v := range hourly.Values {
		r.addLine("hour %2d  load %8.0f req/min", i, v)
	}
	day := series.Slice(0, workload.MinutesPerDay)
	ratio := day.Max() / day.Min()
	r.Values["peak"] = day.Max()
	r.Values["trough"] = day.Min()
	r.Values["peak_trough_ratio"] = ratio
	r.addLine("day-1 peak %.0f, trough %.0f, ratio %.1fx (paper: ~10x)", day.Max(), day.Min(), ratio)
	return r, nil
}

// fig2 contrasts the ideal fractional capacity curve with the integral
// step-function of machines for a sinusoidal demand (Figure 2).
func fig2(opts Options) (*Result, error) {
	r := newResult("fig2", "Ideal capacity vs actual servers allocated")
	const q = 285.0 // capacity per server
	const buffer = 1.1
	n := 288
	demand := make([]float64, n)
	ideal := make([]float64, n)
	actual := make([]float64, n)
	var idealArea, actualArea float64
	for i := range demand {
		demand[i] = 1500 + 1200*math.Sin(2*math.Pi*float64(i)/float64(n))
		ideal[i] = demand[i] * buffer / q
		actual[i] = math.Ceil(ideal[i])
		idealArea += ideal[i]
		actualArea += actual[i]
	}
	r.Series["demand"] = demand
	r.Series["ideal_servers"] = ideal
	r.Series["actual_servers"] = actual
	r.Values["ideal_machine_intervals"] = idealArea
	r.Values["actual_machine_intervals"] = actualArea
	r.Values["step_overhead"] = actualArea/idealArea - 1
	r.addLine("ideal capacity area  %8.1f machine-intervals", idealArea)
	r.addLine("step allocation area %8.1f machine-intervals (+%.1f%% integrality overhead)",
		actualArea, 100*(actualArea/idealArea-1))
	for i := 0; i < n; i += n / 12 {
		r.addLine("t=%3d  demand %6.0f  ideal %5.2f  actual %2.0f", i, demand[i], ideal[i], actual[i])
	}
	return r, nil
}

// fig4 traces machines allocated and effective capacity through the three
// migration strategies of Figure 4, with one partition per server and time
// in units of D.
func fig4(Options) (*Result, error) {
	r := newResult("fig4", "Effective capacity during migration")
	m := migration.Model{Q: 1, QMax: 1.2, D: 1, P: 1}
	for _, c := range []struct{ b, a int }{{3, 5}, {3, 9}, {3, 14}} {
		sched, err := migration.BuildSchedule(c.b, c.a, 1)
		if err != nil {
			return nil, err
		}
		totalTime := m.MoveTime(c.b, c.a)
		rounds := sched.NumRounds()
		key := keyFor(c.b, c.a)
		var times, alloc, effcap []float64
		r.addLine("case %d -> %d: %d rounds, T = %.4f D, avg alloc %.2f machines",
			c.b, c.a, rounds, totalTime, m.AvgMachAlloc(c.b, c.a))
		for i := 0; i < rounds; i++ {
			tm := totalTime * float64(i+1) / float64(rounds)
			f := sched.FractionMoved(i + 1)
			a := float64(sched.MachinesAllocated(i))
			e := m.EffCap(c.b, c.a, f)
			times = append(times, tm)
			alloc = append(alloc, a)
			effcap = append(effcap, e)
			r.addLine("  t=%.4fD  machines %2.0f  eff-cap %5.2f (cap of %d servers: %d)",
				tm, a, e, c.a, c.a)
		}
		r.Series["time_"+key] = times
		r.Series["alloc_"+key] = alloc
		r.Series["effcap_"+key] = effcap
		r.Values["avg_alloc_"+key] = m.AvgMachAlloc(c.b, c.a)
		r.Values["move_time_"+key] = totalTime
	}
	return r, nil
}

func keyFor(b, a int) string {
	return fmt.Sprintf("%d_%d", b, a)
}

// table1 prints the full sender/receiver round schedule for the 3 -> 14
// move of Table 1.
func table1(Options) (*Result, error) {
	r := newResult("table1", "Schedule of parallel migrations 3 -> 14")
	sched, err := migration.BuildSchedule(3, 14, 1)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	r.Values["rounds"] = float64(sched.NumRounds())
	for i, round := range sched.Rounds {
		line := ""
		for j, tr := range round {
			if j > 0 {
				line += ", "
			}
			// Machines are 1-based in the paper's table.
			line += fmt.Sprintf("%d -> %d", tr.From+1, tr.To+1)
		}
		r.addLine("round %2d (alloc %2d): %s", i+1, sched.MachinesAllocated(i), line)
		r.Series["round_alloc"] = append(r.Series["round_alloc"], float64(sched.MachinesAllocated(i)))
	}
	r.addLine("total rounds: %d (paper: 11)", sched.NumRounds())
	return r, nil
}
