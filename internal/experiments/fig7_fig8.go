package experiments

import (
	"context"
	"fmt"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/metrics"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/workload"
)

func init() {
	register("fig7", "Single-machine saturation ramp: discovering Q and Q-hat", fig7)
	register("fig8", "Latency while reconfiguring with different chunk sizes; discovering D", fig8)
}

// fig7 reproduces Figure 7: throughput and latency on a single machine as
// the offered rate increases, locating the saturation point and deriving
// Q̂ = 80% and Q = 65% of it (Section 8.1 finds 438 txn/s, Q̂ = 350,
// Q = 285 on the paper's hardware; absolute numbers here reflect the scaled
// substrate, the shape is what matters).
func fig7(opts Options) (*Result, error) {
	r := newResult("fig7", "Single-machine saturation ramp")
	p := defaultLiveParams(opts.Quick)
	cal, steps, err := rampSingleNode(p, opts, func(s rampStep) {
		opts.logf("ramp: offered %.0f txn/s -> throughput %.0f, p50 %.1f ms", s.OfferedRate, s.Throughput, s.AvgLatency)
	})
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		r.addLine("offered %6.0f txn/s   throughput %6.0f   p50 %7.1f ms   p99 %7.1f ms",
			s.OfferedRate, s.Throughput, s.AvgLatency, s.P99)
		r.Series["offered"] = append(r.Series["offered"], s.OfferedRate)
		r.Series["throughput"] = append(r.Series["throughput"], s.Throughput)
		r.Series["p50_ms"] = append(r.Series["p50_ms"], s.AvgLatency)
		r.Series["p99_ms"] = append(r.Series["p99_ms"], s.P99)
	}
	r.Values["saturation_txns"] = cal.saturation
	r.Values["qmax_txns"] = cal.qMax
	r.Values["q_txns"] = cal.q
	r.addLine("saturation %.0f txn/s -> Q-hat = %.0f (80%%), Q = %.0f (65%%)",
		cal.saturation, cal.qMax, cal.q)
	r.addLine("paper reference: saturation 438 txn/s, Q-hat 350, Q 285 (shape: latency flat, then explodes)")
	return r, nil
}

// fig8 reproduces Figure 8: with the source machine held at Q̂, migrate half
// the database to a second machine using increasing chunk sizes; small
// chunks leave latency at the static baseline, large chunks cause tail
// latency spikes. The largest non-disruptive rate yields D (Section 8.1
// finds D = 77 minutes on the paper's hardware).
func fig8(opts Options) (*Result, error) {
	r := newResult("fig8", "Chunk size vs latency during reconfiguration")
	p := defaultLiveParams(opts.Quick)
	cal, err := calibrate(p, opts)
	if err != nil {
		return nil, err
	}

	chunkSweep := []int{0, 75, 150, 300, 600, 1200} // 0 = static baseline
	type outcome struct {
		chunk    int
		p50, p99 float64
		moveTime time.Duration
	}
	var outs []outcome
	var baselineP99 float64
	for _, chunk := range chunkSweep {
		o, err := fig8Run(p, opts, cal, chunk)
		if err != nil {
			return nil, err
		}
		outs = append(outs, outcome{chunk: chunk, p50: o.p50, p99: o.p99, moveTime: o.moveTime})
		if chunk == 0 {
			baselineP99 = o.p99
		}
	}
	for _, o := range outs {
		label := fmt.Sprintf("%d rows", o.chunk)
		if o.chunk == 0 {
			label = "static"
		}
		r.addLine("chunk %-9s p50 %7.2f ms   p99 %7.2f ms   move %8v", label, o.p50, o.p99, o.moveTime)
		r.Series["chunk_rows"] = append(r.Series["chunk_rows"], float64(o.chunk))
		r.Series["p50_ms"] = append(r.Series["p50_ms"], o.p50)
		r.Series["p99_ms"] = append(r.Series["p99_ms"], o.p99)
	}
	r.Values["baseline_p99_ms"] = baselineP99
	r.Values["largest_p99_ms"] = outs[len(outs)-1].p99
	// D from the configured non-disruptive chunk size.
	sq := p.squallCfg
	dReal := estimateD(p.loadSpec.Carts+p.loadSpec.Checkouts+p.loadSpec.Stocks, sq)
	r.Values["d_seconds"] = dReal.Seconds()
	r.Values["d_trace_minutes"] = dReal.Seconds() / p.minutePerSlot.Seconds()
	r.addLine("discovered D = %v wall (%.0f trace-minutes; paper: 77 min at 244 kB/s)",
		dReal, dReal.Seconds()/p.minutePerSlot.Seconds())
	r.addLine("paper reference: 1000 kB chunks ~ static latency; larger chunks spike the 99th percentile")
	return r, nil
}

type fig8Outcome struct {
	p50, p99 float64
	moveTime time.Duration
}

// fig8Run holds one machine at Q̂ offered load while migrating half the
// database to a second machine with the given chunk size (0 = no move).
func fig8Run(p liveParams, opts Options, cal calibration, chunkRows int) (*fig8Outcome, error) {
	cfg := p.engineCfg
	cfg.InitialMachines = 1
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := b2w.Register(eng); err != nil {
		return nil, err
	}
	eng.Start()
	defer eng.Stop()
	if err := b2w.Load(eng, p.loadSpec); err != nil {
		return nil, err
	}

	rec, err := metrics.NewRecorder(time.Now(), p.recorderWin)
	if err != nil {
		return nil, err
	}
	eng.SetRecorder(rec)

	dur := 4 * time.Second
	if opts.Quick {
		dur = 2500 * time.Millisecond
	}
	// Offered load: Q̂ txn/s on the source machine throughout.
	slots := workload.NewSeries(time.Time{}, time.Minute, []float64{cal.qMax * dur.Seconds()})
	driver := &b2w.Driver{Eng: eng, Spec: p.loadSpec, Seed: opts.Seed + 80}

	// Ping-pong half the database between machines 1 and 2 for the whole
	// measurement window so most latency windows overlap a migration; the
	// paper equivalently measures latency throughout one long half-DB move.
	var moveTime time.Duration
	var moves int
	stopMoves := make(chan struct{})
	done := make(chan error, 1)
	if chunkRows > 0 {
		sq := p.squallCfg
		sq.ChunkRows = chunkRows
		ex, err := squall.NewExecutor(eng, sq)
		if err != nil {
			return nil, err
		}
		ex.SetRecorder(rec)
		go func() {
			from, to := 1, 2
			for {
				select {
				case <-stopMoves:
					done <- nil
					return
				default:
				}
				start := time.Now()
				if err := ex.Reconfigure(from, to, 1); err != nil {
					done <- err
					return
				}
				moveTime += time.Since(start)
				moves++
				from, to = to, from
			}
		}()
	} else {
		done <- nil
	}

	if _, err := driver.Run(context.Background(), slots, dur, 1); err != nil {
		return nil, err
	}
	close(stopMoves)
	if err := <-done; err != nil {
		return nil, err
	}
	eng.SetRecorder(nil)

	// Aggregate p50/p99 across windows overlapping a migration (all busy
	// windows for the static baseline).
	reconf := rec.ReconfiguringWindows()
	var p50, p99 float64
	n := 0
	for w := 0; w < rec.Windows(); w++ {
		if rec.Throughput(w) == 0 {
			continue
		}
		if chunkRows > 0 && (w >= len(reconf) || !reconf[w]) {
			continue
		}
		p50 += rec.Percentile(w, 50)
		if v := rec.Percentile(w, 99); v > p99 {
			p99 = v
		}
		n++
	}
	if n > 0 {
		p50 /= float64(n)
	}
	if moves > 0 {
		moveTime /= time.Duration(moves)
	}
	return &fig8Outcome{p50: p50, p99: p99, moveTime: moveTime}, nil
}
