// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5, 7 and 8). Each experiment has a stable identifier
// (fig1, fig5, table2, ...), produces the same rows or series the paper
// reports, and returns machine-readable values so tests can assert the
// paper's qualitative shape — who wins, by roughly what factor, and where
// the crossovers fall. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks trace lengths and durations so the whole suite runs
	// in minutes; the full-size settings mirror the paper's setup.
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
	// Log receives progress output; nil discards it.
	Log io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "fig9").
	ID string
	// Title describes what the paper figure/table shows.
	Title string
	// Lines is the human-readable report, one row per line.
	Lines []string
	// Values holds scalar results keyed by metric name.
	Values map[string]float64
	// Series holds per-interval or per-parameter series keyed by name.
	Series map[string][]float64
}

func newResult(id, title string) *Result {
	return &Result{
		ID:     id,
		Title:  title,
		Values: map[string]float64{},
		Series: map[string][]float64{},
	}
}

func (r *Result) addLine(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Text renders the full report.
func (r *Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// registry maps experiment ids to runners; populated by init() in the
// per-figure files.
var registry = map[string]entry{}

type entry struct {
	title  string
	runner Runner
}

func register(id, title string, r Runner) {
	registry[id] = entry{title: title, runner: r}
}

// IDs lists all registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered description for an experiment id.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e.runner(opts)
}
