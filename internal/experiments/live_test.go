package experiments

import "testing"

// The live-engine experiments replay compressed wall-clock workloads, so
// they take tens of seconds each; skip them in -short runs.

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-engine experiment: skipped in -short mode")
	}
	r, err := Run("fig7", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Saturation discovered, Q-hat and Q derived as 80%/65% of it.
	sat := r.Values["saturation_txns"]
	if sat <= 0 {
		t.Fatal("no saturation point discovered")
	}
	if q := r.Values["q_txns"]; q < 0.64*sat || q > 0.66*sat {
		t.Errorf("Q = %v, want 65%% of %v", q, sat)
	}
	// Latency shape: flat at low offered rates, exploding past saturation.
	p50 := r.Series["p50_ms"]
	if len(p50) < 5 {
		t.Fatal("too few ramp steps")
	}
	if p50[len(p50)-1] < 4*p50[0] {
		t.Errorf("latency at max offered rate (%.1f ms) not well above idle (%.1f ms)",
			p50[len(p50)-1], p50[0])
	}
	// Throughput saturates: final throughput below final offered rate.
	thr := r.Series["throughput"]
	off := r.Series["offered"]
	if thr[len(thr)-1] > 0.9*off[len(off)-1] {
		t.Errorf("throughput %.0f did not plateau below offered %.0f",
			thr[len(thr)-1], off[len(off)-1])
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-engine experiment: skipped in -short mode")
	}
	r, err := Run("fig8", quick())
	if err != nil {
		t.Fatal(err)
	}
	p99 := r.Series["p99_ms"]
	if len(p99) < 4 {
		t.Fatal("too few chunk sizes")
	}
	// The largest chunks must hurt tail latency well beyond the smallest
	// migrating configuration (index 1; index 0 is the static baseline).
	if p99[len(p99)-1] < 1.5*p99[1] {
		t.Errorf("largest-chunk p99 %.1f ms not well above smallest-chunk %.1f ms",
			p99[len(p99)-1], p99[1])
	}
	if r.Values["d_seconds"] <= 0 {
		t.Error("no D discovered")
	}
}

func TestFig9Table2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-engine experiment: skipped in -short mode")
	}
	r, err := Run("table2", quick())
	if err != nil {
		t.Fatal(err)
	}
	total := func(s string) float64 {
		return r.Values[s+"_p50"] + r.Values[s+"_p95"] + r.Values[s+"_p99"]
	}
	// Paper Table 2 orderings on this substrate:
	// static-4 violates heavily; P-Store no worse than reactive; P-Store
	// uses about half the machines of peak provisioning.
	if total("static-4") < 5 {
		t.Errorf("static-4 violations %v, expected heavy overload at peak", total("static-4"))
	}
	if total("pstore") > total("reactive") {
		t.Errorf("P-Store violations %v exceed reactive's %v", total("pstore"), total("reactive"))
	}
	if total("pstore") > total("static-4")/2 {
		t.Errorf("P-Store violations %v not well below static-4's %v", total("pstore"), total("static-4"))
	}
	pm := r.Values["pstore_machines"]
	if pm < 4 || pm > 7 {
		t.Errorf("P-Store average machines %.2f, want roughly half of the 10-machine peak", pm)
	}
	if r.Values["static-10_machines"] != 10 {
		t.Errorf("static-10 machines %v", r.Values["static-10_machines"])
	}
	// fig10 derives from the same runs and must agree on the worst case.
	r10, err := Run("fig10", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Series["pstore_p99"]) == 0 {
		t.Error("fig10 missing P-Store p99 CDF")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-engine experiment: skipped in -short mode")
	}
	r, err := Run("fig11", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Faster migration reaches capacity sooner: no more total violation
	// windows than the regular rate (paper: 166 -> 117 total).
	if r.Values["rate_Rx8_total"] > r.Values["rate_R_total"] {
		t.Errorf("rate Rx8 total violations %v exceed rate R's %v",
			r.Values["rate_Rx8_total"], r.Values["rate_R_total"])
	}
}
