package experiments

import (
	"fmt"

	"pstore/internal/elastic"
	"pstore/internal/migration"
	"pstore/internal/predictor"
	"pstore/internal/workload"
)

func init() {
	register("fig11", "P-Store response to an unexpected load spike: migration rate R vs R x 8", fig11)
}

// fig11 reproduces Figure 11: a flash crowd the predictor has never seen
// arrives; P-Store's planner finds no feasible plan and falls back to
// emergency scaling, either at the non-disruptive rate R (slower to reach
// capacity, longer under-provisioned) or at R x 8 (reaches capacity sooner
// at the cost of migration-induced latency). The paper reports 16/101/143
// violations (50th/95th/99th) at rate R versus 22/44/51 at R x 8.
func fig11(opts Options) (*Result, error) {
	r := newResult("fig11", "Unexpected spike: rate R vs R x 8")
	p := defaultLiveParams(opts.Quick)
	cal, err := calibrate(p, opts)
	if err != nil {
		return nil, err
	}

	// Train on four ordinary weeks, then replay one day with a large
	// unforecastable spike injected mid-morning (the paper uses a real
	// spike from September 2016).
	cfg := workload.DefaultB2WConfig(opts.Seed+11, 29)
	cfg.PromosPerWeek = 0
	full, err := workload.SyntheticB2W(cfg)
	if err != nil {
		return nil, err
	}
	trainMin := full.Slice(0, 28*workload.MinutesPerDay)
	replay := full.Slice(28*workload.MinutesPerDay, full.Len())
	spike := workload.Spike{
		StartSlot:  10 * 60, // 10:00
		RampSlots:  8,
		HoldSlots:  100,
		DecaySlots: 50,
		Factor:     2.4,
	}
	replay, err = spike.Apply(replay)
	if err != nil {
		return nil, err
	}

	// The spike peak, not the diurnal peak, sizes the cluster: leave room
	// so the emergency target is reachable.
	rateScale := chooseRateScale(replay.Max(), cal, p, 7.5)
	q, qMax := paperUnits(cal, p, rateScale)
	dReal := estimateD(p.loadSpec.Carts+p.loadSpec.Checkouts+p.loadSpec.Stocks, p.squallCfg)
	dIntervals := dReal.Seconds() / (p.minutePerSlot.Seconds() * float64(p.controllerEveryMin))
	model := migration.Model{Q: q, QMax: qMax, D: dIntervals, P: p.engineCfg.PartitionsPerMachine}

	fiveMin, err := trainMin.Resample(p.controllerEveryMin)
	if err != nil {
		return nil, err
	}
	period := workload.MinutesPerDay / p.controllerEveryMin

	for _, policy := range []struct {
		name string
		mode elastic.SpikePolicy
	}{{"rate_R", elastic.SpikeRegularRate}, {"rate_Rx8", elastic.SpikeFastRate}} {
		opts.logf("fig11: running %s ...", policy.name)
		spar := predictor.NewSPAR(period, 7, 6)
		online := predictor.NewOnline(spar, 0, 9*period)
		if err := online.ObserveAll(fiveMin.Values); err != nil {
			return nil, err
		}
		ctrl := &elastic.Predictive{
			Model:          model,
			Predictor:      online,
			Horizon:        36,
			Inflation:      0.15,
			ScaleInConfirm: 6,
			MaxMachines:    p.engineCfg.MaxMachines,
			OnSpike:        policy.mode,
		}
		lr := &liveRun{
			params:     p,
			trace:      replay,
			controller: ctrl,
			machines:   model.MachinesFor(replay.At(0) * 1.3),
			rateScale:  rateScale,
			seed:       opts.Seed + 110,
		}
		res, err := lr.run(opts)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", policy.name, err)
		}
		var v50, v95, v99 int
		v50 = res.rec.SLAViolations(50, p.latencySLOms)
		v95 = res.rec.SLAViolations(95, p.latencySLOms)
		v99 = res.rec.SLAViolations(99, p.latencySLOms)
		r.addLine("%-9s violations p50/p95/p99 = %d/%d/%d  (avg machines %.2f)",
			policy.name, v50, v95, v99, res.rec.AverageMachines())
		r.Values[policy.name+"_p50"] = float64(v50)
		r.Values[policy.name+"_p95"] = float64(v95)
		r.Values[policy.name+"_p99"] = float64(v99)
		r.Values[policy.name+"_total"] = float64(v50 + v95 + v99)
		r.Series[policy.name+"_p99_ms"] = res.rec.PercentileSeries(99)
		r.Series[policy.name+"_machines"] = res.rec.MachineSeries()
	}
	r.addLine("paper reference: rate R 16/101/143; rate Rx8 22/44/51 — faster migration trades")
	r.addLine("some latency during the move for far fewer total violation seconds")
	return r, nil
}
