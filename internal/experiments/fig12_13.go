package experiments

import (
	"fmt"
	"math"

	"pstore/internal/elastic"
	"pstore/internal/migration"
	"pstore/internal/predictor"
	"pstore/internal/sim"
	"pstore/internal/workload"
)

func init() {
	register("fig12", "Cost vs % time with insufficient capacity over 4.5 months, five strategies x Q sweep", fig12)
	register("fig13", "Effective capacity timelines: a normal stretch vs Black Friday", fig13)
}

// simSetup builds the long-horizon 5-minute-interval trace (requests/min)
// and the capacity model used by the Section 8.3 simulations.
type simSetup struct {
	trace       []float64 // 5-minute intervals, requests per minute
	train       []float64 // first four weeks (same units)
	slotsPerDay int
	model       migration.Model // D in 5-minute intervals, Q per machine (req/min)
	days        int
	bfDay       int
	maxMachines int
}

func newSimSetup(opts Options) (*simSetup, error) {
	days := 135 // 4.5 months, August to mid-December
	bfDay := 112
	if opts.Quick {
		days = 49 // seven weeks, Black Friday in week six
		bfDay = 35
	}
	cfg := workload.DefaultB2WConfig(opts.Seed+12, days)
	cfg.BlackFridayDay = bfDay
	series, err := workload.SyntheticB2W(cfg)
	if err != nil {
		return nil, err
	}
	five, err := series.Resample(5)
	if err != nil {
		return nil, err
	}
	// Paper-scale model: Q = 285 txn/s and Q-hat = 350 txn/s become
	// per-minute capacities; D = 77 minutes = 15.4 five-minute intervals;
	// 6 partitions per machine.
	model := migration.Model{Q: 285 * 60, QMax: 350 * 60, D: 77.0 / 5, P: 6}
	// Scale the trace so the normal peak needs about 8.6 machines at
	// Q-hat, like B2W's peak of ~3000 txn/s (Section 8.2) — leaving the
	// Black Friday surge to exceed the usual cluster ceiling.
	normalPeak := 0.0
	for i, v := range five.Values {
		day := i / (workload.MinutesPerDay / 5)
		if day != bfDay && v > normalPeak {
			normalPeak = v
		}
	}
	scale := 8.57 * model.QMax / normalPeak
	trace := make([]float64, five.Len())
	for i, v := range five.Values {
		trace[i] = v * scale
	}
	slotsPerDay := workload.MinutesPerDay / 5
	return &simSetup{
		trace:       trace,
		train:       trace[:28*slotsPerDay],
		slotsPerDay: slotsPerDay,
		model:       model,
		days:        days,
		bfDay:       bfDay,
		maxMachines: 30, // the simulation may allocate beyond the lab cluster
	}, nil
}

// simPoint is one (strategy, parameter) simulation outcome.
type simPoint struct {
	strategy  string
	param     float64
	cost      float64
	shortFrac float64
	result    *sim.Result
}

// shortfallFrac counts the fraction of intervals whose load exceeded the
// latency-risk capacity: the effective capacity rescaled from the planning
// target Q to the per-machine maximum Q-hat. (Planning to Q keeps slack;
// the SLA is only at risk past Q-hat.)
func shortfallFrac(trace []float64, res *sim.Result, model migration.Model) float64 {
	if len(trace) == 0 {
		return 0
	}
	scale := model.QMax / model.Q
	n := 0
	for i, v := range trace {
		if v > res.EffCap[i]*scale+1e-9 {
			n++
		}
	}
	return float64(n) / float64(len(trace))
}

// runStrategy simulates one strategy at one buffer setting and returns the
// outcome. qFrac sets each strategy's capacity buffer: for P-Store it is
// the planning target Q as a fraction of Q-hat (the paper varies Q between
// cost-optimal and performance-optimal settings); for the reactive strategy
// it sets the scale-out trigger; for Simple and Static it scales the
// provisioned size.
func (s *simSetup) runStrategy(strategy string, qFrac float64, opts Options) (*simPoint, error) {
	model := s.model
	model.Q = model.QMax * qFrac // Q as a fraction of Q-hat sets the buffer
	n0 := model.MachinesFor(s.trace[0] * 1.2)
	runner := &sim.Sim{Model: model, MaxMachines: s.maxMachines}

	peak := 0.0
	for _, v := range s.train {
		peak = math.Max(peak, v)
	}

	var ctrl elastic.Controller
	switch strategy {
	case "pstore-oracle":
		oracle := predictor.NewOnline(predictor.NewOracle(s.trace), 0, 0)
		if err := oracle.ObserveAll(nil); err != nil {
			return nil, err
		}
		ctrl = &elastic.Predictive{
			Model: model, Predictor: oracle,
			Horizon: 36, Inflation: 0.05, ScaleInConfirm: 3,
		}
	case "pstore-spar":
		spar := predictor.NewSPAR(s.slotsPerDay, 7, 6)
		online := predictor.NewOnline(spar, 7*s.slotsPerDay, 9*s.slotsPerDay)
		if err := online.ObserveAll(s.train); err != nil {
			return nil, err
		}
		ctrl = &elastic.Predictive{
			Model: model, Predictor: online,
			Horizon: 36, Inflation: 0.15, ScaleInConfirm: 3,
		}
	case "reactive":
		// Lower qFrac = earlier trigger = bigger machine buffer, but a
		// reactive system can never trigger before the load is near the
		// per-machine ceiling — that would require prediction.
		ctrl = &elastic.Reactive{
			Model:        model,
			HighFraction: 0.55 + qFrac,
			Headroom:     1.2,
		}
	case "simple":
		day := int(math.Ceil(peak * 0.65 / (qFrac * model.QMax)))
		ctrl = &elastic.Simple{
			SlotsPerDay:   s.slotsPerDay,
			MorningSlot:   7 * 12,
			NightSlot:     23 * 12,
			DayMachines:   max(day, 2),
			NightMachines: max(day/5, 1),
		}
	case "static":
		n0 = max(int(math.Ceil(peak*0.65/(qFrac*model.QMax))), 1)
		ctrl = elastic.Static{}
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", strategy)
	}
	res, err := runner.Run(s.trace, ctrl, n0)
	if err != nil {
		return nil, fmt.Errorf("simulating %s (q=%.2f): %w", strategy, qFrac, err)
	}
	return &simPoint{
		strategy:  strategy,
		param:     qFrac,
		cost:      res.Cost,
		shortFrac: shortfallFrac(s.trace, res, model),
		result:    res,
	}, nil
}

// fig12 reproduces Figure 12: each strategy simulated over the full trace
// at several buffer settings, reporting normalized cost (log-scale x axis
// in the paper) against the percentage of time with insufficient capacity.
func fig12(opts Options) (*Result, error) {
	r := newResult("fig12", "Cost vs insufficient capacity, 4.5-month simulation")
	s, err := newSimSetup(opts)
	if err != nil {
		return nil, err
	}
	sweep := []float64{0.5, 0.575, 0.65, 0.725, 0.8}
	strategies := []string{"pstore-oracle", "pstore-spar", "reactive", "simple", "static"}

	// The paper normalizes cost to P-Store with default parameters
	// (Q = 65% of saturation = 0.8125 of Q-hat... here Q/QMax = 0.65/0.8).
	defaultPoint, err := s.runStrategy("pstore-spar", 0.65/0.8, opts)
	if err != nil {
		return nil, err
	}
	norm := defaultPoint.cost

	for _, strategy := range strategies {
		opts.logf("fig12: sweeping %s ...", strategy)
		var costs, shorts []float64
		for _, qFrac := range sweep {
			pt, err := s.runStrategy(strategy, qFrac, opts)
			if err != nil {
				return nil, err
			}
			costs = append(costs, pt.cost/norm)
			shorts = append(shorts, pt.shortFrac*100)
			r.addLine("%-14s buffer %.3f  cost %.3f (normalized)  %%time insufficient %6.3f%%  moves %d",
				strategy, qFrac, pt.cost/norm, pt.shortFrac*100, pt.result.Moves)
		}
		r.Series[strategy+"_cost"] = costs
		r.Series[strategy+"_short_pct"] = shorts
		// Summary at the middle (default-like) setting.
		r.Values[strategy+"_cost_mid"] = costs[2]
		r.Values[strategy+"_short_mid"] = shorts[2]
	}
	r.Values["default_cost"] = 1
	r.Values["default_short_pct"] = defaultPoint.shortFrac * 100
	r.addLine("paper reference: P-Store Oracle best; P-Store SPAR close behind; reactive needs a much")
	r.addLine("larger buffer (cost) to limit violations; Simple and Static dominate the cost axis")
	return r, nil
}

// fig13 reproduces Figure 13: the actual load and the effective capacity of
// P-Store (SPAR), Simple and Static over a normal four-day stretch and over
// the four days around Black Friday, where Simple collapses and P-Store
// tracks the surge.
func fig13(opts Options) (*Result, error) {
	r := newResult("fig13", "Effective capacity: normal days vs Black Friday")
	s, err := newSimSetup(opts)
	if err != nil {
		return nil, err
	}
	// P-Store runs at its default buffer; Simple and Static are sized so
	// the normal daily peak fits comfortably (the paper's green and grey
	// curves cover ordinary days — the point is what happens on Black
	// Friday).
	buffers := map[string]float64{
		"pstore-spar": 0.65 / 0.8,
		"simple":      0.55,
		"static":      0.55,
	}
	strategies := []string{"pstore-spar", "simple", "static"}
	results := map[string]*sim.Result{}
	qOf := map[string]float64{}
	for _, strategy := range strategies {
		pt, err := s.runStrategy(strategy, buffers[strategy], opts)
		if err != nil {
			return nil, err
		}
		results[strategy] = pt.result
		qOf[strategy] = buffers[strategy]
	}

	windows := []struct {
		name     string
		startDay int
	}{
		{"normal", 29},
		{"black_friday", s.bfDay - 1},
	}
	for _, w := range windows {
		lo := w.startDay * s.slotsPerDay
		hi := min(lo+4*s.slotsPerDay, len(s.trace))
		r.Series[w.name+"_load"] = s.trace[lo:hi]
		for _, strategy := range strategies {
			eff := results[strategy].EffCap[lo:hi]
			r.Series[fmt.Sprintf("%s_%s_effcap", w.name, strategy)] = eff
			scale := 1 / qOf[strategy]
			short := 0
			for i := lo; i < hi; i++ {
				if s.trace[i] > results[strategy].EffCap[i]*scale+1e-9 {
					short++
				}
			}
			r.Values[fmt.Sprintf("%s_%s_short", w.name, strategy)] = float64(short)
			r.addLine("%-13s window %-12s intervals with insufficient capacity: %4d / %d",
				strategy, w.name, short, hi-lo)
		}
	}
	r.addLine("paper reference: all three fit the normal pattern; on Black Friday the Simple schedule")
	r.addLine("collapses for most of the surge while P-Store scales with it")
	return r, nil
}
