package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/elastic"
	"pstore/internal/metrics"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/workload"
)

// The live experiments replay the benchmark against the real storage engine
// with time compressed: one trace minute lasts minutePerSlot of wall time,
// and the paper-scale request rates (requests/minute) are scaled down by
// rateScale to match the substrate's capacity. Q, Q̂ and D are re-discovered
// on this substrate exactly as Section 4.1 prescribes, so the planner's
// inputs stay self-consistent.

// liveParams collects the substrate-scale constants shared by the live
// experiments (Figures 7-11).
type liveParams struct {
	engineCfg     store.Config
	squallCfg     squall.Config
	loadSpec      b2w.LoadSpec
	minutePerSlot time.Duration // wall time per trace minute
	recorderWin   time.Duration
	// latencySLOms is the violation threshold in milliseconds on this
	// substrate (the paper uses 500 ms at full speed).
	latencySLOms float64
	// controllerEveryMin is the monitoring/planning cycle in trace minutes.
	controllerEveryMin int
}

func defaultLiveParams(quick bool) liveParams {
	p := liveParams{
		engineCfg: store.Config{
			MaxMachines:          10,
			PartitionsPerMachine: 6,
			Buckets:              1440,
			ServiceTime:          4 * time.Millisecond,
			QueueCapacity:        1 << 15,
			InitialMachines:      1,
		},
		squallCfg: squall.Config{
			ChunkRows:     150,
			RowCost:       40 * time.Microsecond,
			ChunkOverhead: 500 * time.Microsecond,
			Spacing:       4 * time.Millisecond,
			RateFactor:    1,
		},
		loadSpec:           b2w.LoadSpec{Carts: 6000, Checkouts: 1500, Stocks: 3000, LinesPerCart: 3, Seed: 7, Loaders: 16},
		minutePerSlot:      15 * time.Millisecond,
		recorderWin:        500 * time.Millisecond,
		latencySLOms:       40,
		controllerEveryMin: 5,
	}
	if quick {
		p.minutePerSlot = 10 * time.Millisecond
		p.recorderWin = 300 * time.Millisecond
	}
	return p
}

// estimateD returns the substrate's D: the wall time to migrate the whole
// database once with a single sender/receiver stream at the configured
// non-disruptive chunk rate, plus the paper's 10% buffer.
func estimateD(rows int, cfg squall.Config) time.Duration {
	chunks := int(math.Ceil(float64(rows) / float64(cfg.ChunkRows)))
	perRow := time.Duration(float64(cfg.RowCost) * 1.5)
	perChunk := time.Duration(float64(cfg.ChunkOverhead)*1.5) + cfg.Spacing
	d := time.Duration(rows)*perRow + time.Duration(chunks)*perChunk
	return time.Duration(float64(d) * 1.1)
}

// calibration holds the discovered per-node throughput figures, in real
// transactions per second on this substrate.
type calibration struct {
	saturation float64 // txn/s where the latency constraint breaks
	qMax       float64 // 0.8 * saturation
	q          float64 // 0.65 * saturation
}

var (
	calMu    sync.Mutex
	calCache = map[string]calibration{}
)

// calibrate discovers the single-node saturation rate by ramping a
// rate-limited workload, like Section 8.1 / Figure 7. Results are cached
// per engine configuration.
func calibrate(p liveParams, opts Options) (calibration, error) {
	key := fmt.Sprintf("%v/%v/%v", p.engineCfg.ServiceTime, p.engineCfg.PartitionsPerMachine, p.loadSpec.Carts)
	calMu.Lock()
	if c, ok := calCache[key]; ok {
		calMu.Unlock()
		return c, nil
	}
	calMu.Unlock()

	res, _, err := rampSingleNode(p, opts, nil)
	if err != nil {
		return calibration{}, err
	}
	calMu.Lock()
	calCache[key] = res
	calMu.Unlock()
	return res, nil
}

// rampStep is one step of the Figure 7 ramp.
type rampStep struct {
	OfferedRate float64 // txn/s
	Throughput  float64 // txn/s completed
	AvgLatency  float64 // ms
	P99         float64 // ms
}

// rampSingleNode runs the saturation ramp on one machine and returns the
// calibration plus the per-step measurements. A non-nil steps callback
// receives each step as it completes.
func rampSingleNode(p liveParams, opts Options, onStep func(rampStep)) (calibration, []rampStep, error) {
	cfg := p.engineCfg
	cfg.InitialMachines = 1
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return calibration{}, nil, err
	}
	if err := b2w.Register(eng); err != nil {
		return calibration{}, nil, err
	}
	eng.Start()
	defer eng.Stop()
	if err := b2w.Load(eng, p.loadSpec); err != nil {
		return calibration{}, nil, err
	}

	// Theoretical ceiling: P partitions at 1/serviceTime each.
	ceiling := float64(cfg.PartitionsPerMachine) / cfg.ServiceTime.Seconds()
	stepDur := 1200 * time.Millisecond
	if opts.Quick {
		stepDur = 700 * time.Millisecond
	}
	driver := &b2w.Driver{Eng: eng, Spec: p.loadSpec, Seed: opts.Seed + 70}

	var steps []rampStep
	saturation := 0.0
	for frac := 0.2; frac <= 1.35; frac += 0.115 {
		rate := frac * ceiling
		rec, err := metrics.NewRecorder(time.Now(), p.recorderWin)
		if err != nil {
			return calibration{}, nil, err
		}
		eng.SetRecorder(rec)
		// One synthetic slot at the target rate.
		slots := workload.NewSeries(time.Time{}, time.Minute, []float64{rate * stepDur.Seconds()})
		if _, err := driver.Run(context.Background(), slots, stepDur, 1); err != nil {
			return calibration{}, nil, err
		}
		eng.SetRecorder(nil)

		var lat, thr, p99 float64
		n := 0
		for w := 0; w < rec.Windows(); w++ {
			if t := rec.Throughput(w); t > 0 {
				thr += t
				lat += rec.Percentile(w, 50)
				if v := rec.Percentile(w, 99); v > p99 {
					p99 = v
				}
				n++
			}
		}
		if n > 0 {
			thr /= float64(n)
			lat /= float64(n)
		}
		step := rampStep{OfferedRate: rate, Throughput: thr, AvgLatency: lat, P99: p99}
		steps = append(steps, step)
		if onStep != nil {
			onStep(step)
		}
		// The latency constraint on this substrate: median above the SLO
		// marks saturation (queues no longer drain).
		if lat <= p.latencySLOms {
			saturation = thr
		}
	}
	if saturation == 0 {
		return calibration{}, steps, fmt.Errorf("experiments: calibration never sustained the SLO")
	}
	c := calibration{saturation: saturation, qMax: 0.8 * saturation, q: 0.65 * saturation}
	return c, steps, nil
}

// liveRun executes one elasticity experiment: replaying trace (per-minute
// paper-scale request counts) against the engine under the given
// controller. The controller may be nil for static allocation.
type liveRun struct {
	params     liveParams
	trace      workload.Series
	controller elastic.Controller
	machines   int     // initial machines
	rateScale  float64 // paper requests -> substrate transactions
	seed       int64
	spikeRate  float64 // emergency rate override for fig11 (0 = per decision)
}

type liveOutcome struct {
	rec      *metrics.Recorder
	stats    b2w.Stats
	cal      calibration
	dReal    time.Duration
	decided  int
	failures int
}

// run executes the experiment and returns the recorder for analysis.
func (lr *liveRun) run(opts Options) (*liveOutcome, error) {
	p := lr.params
	cfg := p.engineCfg
	cfg.InitialMachines = lr.machines
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := b2w.Register(eng); err != nil {
		return nil, err
	}
	eng.Start()
	defer eng.Stop()
	if err := b2w.Load(eng, p.loadSpec); err != nil {
		return nil, err
	}
	cal, err := calibrate(p, opts)
	if err != nil {
		return nil, err
	}

	rec, err := metrics.NewRecorder(time.Now(), p.recorderWin)
	if err != nil {
		return nil, err
	}
	eng.SetRecorder(rec)
	rec.RecordMachines(time.Now(), lr.machines)

	ex, err := squall.NewExecutor(eng, p.squallCfg)
	if err != nil {
		return nil, err
	}
	ex.SetRecorder(rec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := &liveOutcome{rec: rec, cal: cal, dReal: estimateD(eng.TotalRows(), p.squallCfg)}

	// Controller loop: every controllerEveryMin trace minutes, observe the
	// offered load and ask the controller for a decision; execute moves in
	// the background through Squall.
	var ctlWG sync.WaitGroup
	if lr.controller != nil {
		cycle := time.Duration(p.controllerEveryMin) * p.minutePerSlot
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			ticker := time.NewTicker(cycle)
			defer ticker.Stop()
			// Start from the current counter so bulk loading does not
			// masquerade as offered load on the first cycle.
			lastSubmitted, _, _ := eng.Counters()
			var moveWG sync.WaitGroup
			defer moveWG.Wait()
			var moving atomic.Bool
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				sub, _, _ := eng.Counters()
				delta := sub - lastSubmitted
				lastSubmitted = sub
				// Convert to paper units: requests per trace minute.
				loadPaper := float64(delta) / lr.rateScale / float64(p.controllerEveryMin)
				busy := moving.Load() || ex.InProgress()
				dec, err := lr.controller.Tick(eng.ActiveMachines(), busy, loadPaper)
				if err != nil {
					out.failures++
					continue
				}
				if dec == nil || busy {
					continue
				}
				out.decided++
				rate := dec.RateFactor
				if lr.spikeRate > 0 && dec.Emergency {
					rate = lr.spikeRate
				}
				from := eng.ActiveMachines()
				moving.Store(true)
				moveWG.Add(1)
				go func(from, to int, rate float64) {
					defer moveWG.Done()
					defer moving.Store(false)
					if err := ex.Reconfigure(from, to, rate); err != nil {
						out.failures++
					}
				}(from, dec.Target, rate)
			}
		}()
	}

	driver := &b2w.Driver{Eng: eng, Spec: p.loadSpec, Seed: lr.seed}
	stats, err := driver.Run(ctx, lr.trace, p.minutePerSlot, lr.rateScale)
	cancel()
	ctlWG.Wait()
	eng.SetRecorder(nil)
	if err != nil && ctx.Err() == nil {
		return nil, err
	}
	out.stats = stats
	return out, nil
}

// paperQ converts the substrate calibration into paper units (requests per
// trace minute per machine) given the rate scale.
func paperUnits(cal calibration, p liveParams, rateScale float64) (q, qMax float64) {
	perMin := p.minutePerSlot.Seconds() / rateScale
	return cal.q * perMin, cal.qMax * perMin
}

// chooseRateScale sizes the trace so its peak demands peakMachines of the
// substrate's Q̂ capacity.
func chooseRateScale(tracePeak float64, cal calibration, p liveParams, peakMachines float64) float64 {
	// peak * scale / minutePerSlot = peakMachines * qMax  [txn/s]
	return peakMachines * cal.qMax * p.minutePerSlot.Seconds() / tracePeak
}
