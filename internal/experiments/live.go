package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/elastic"
	"pstore/internal/metrics"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/workload"
)

// The live experiments replay the benchmark against the real storage engine
// with time compressed: one trace minute lasts minutePerSlot of wall time,
// and the paper-scale request rates (requests/minute) are scaled down by
// rateScale to match the substrate's capacity. Q, Q̂ and D are re-discovered
// on this substrate exactly as Section 4.1 prescribes, so the planner's
// inputs stay self-consistent.

// liveParams collects the substrate-scale constants shared by the live
// experiments (Figures 7-11).
type liveParams struct {
	engineCfg     store.Config
	squallCfg     squall.Config
	loadSpec      b2w.LoadSpec
	minutePerSlot time.Duration // wall time per trace minute
	recorderWin   time.Duration
	// latencySLOms is the violation threshold in milliseconds on this
	// substrate (the paper uses 500 ms at full speed).
	latencySLOms float64
	// controllerEveryMin is the monitoring/planning cycle in trace minutes.
	controllerEveryMin int
}

func defaultLiveParams(quick bool) liveParams {
	p := liveParams{
		engineCfg: store.Config{
			MaxMachines:          10,
			PartitionsPerMachine: 6,
			Buckets:              1440,
			ServiceTime:          4 * time.Millisecond,
			QueueCapacity:        1 << 15,
			InitialMachines:      1,
		},
		squallCfg: squall.Config{
			ChunkRows:     150,
			RowCost:       40 * time.Microsecond,
			ChunkOverhead: 500 * time.Microsecond,
			Spacing:       4 * time.Millisecond,
			RateFactor:    1,
		},
		loadSpec:           b2w.LoadSpec{Carts: 6000, Checkouts: 1500, Stocks: 3000, LinesPerCart: 3, Seed: 7, Loaders: 16},
		minutePerSlot:      15 * time.Millisecond,
		recorderWin:        500 * time.Millisecond,
		latencySLOms:       40,
		controllerEveryMin: 5,
	}
	if quick {
		p.minutePerSlot = 10 * time.Millisecond
		p.recorderWin = 300 * time.Millisecond
	}
	return p
}

// estimateD returns the substrate's D: the wall time to migrate the whole
// database once with a single sender/receiver stream at the configured
// non-disruptive chunk rate, plus the paper's 10% buffer.
func estimateD(rows int, cfg squall.Config) time.Duration {
	chunks := int(math.Ceil(float64(rows) / float64(cfg.ChunkRows)))
	perRow := time.Duration(float64(cfg.RowCost) * 1.5)
	perChunk := time.Duration(float64(cfg.ChunkOverhead)*1.5) + cfg.Spacing
	d := time.Duration(rows)*perRow + time.Duration(chunks)*perChunk
	return time.Duration(float64(d) * 1.1)
}

// calibration holds the discovered per-node throughput figures, in real
// transactions per second on this substrate.
type calibration struct {
	saturation float64 // txn/s where the latency constraint breaks
	qMax       float64 // 0.8 * saturation
	q          float64 // 0.65 * saturation
}

var (
	calMu    sync.Mutex
	calCache = map[string]calibration{}
)

// calKey fingerprints everything that changes what rampSingleNode measures:
// the full substrate parameters (engine and squall configuration, load
// spec, recorder window, SLO) plus quick mode, which shortens the ramp's
// step duration. The driver seed is deliberately excluded — calibration
// discovers a property of the substrate, not of one replay.
func calKey(p liveParams, opts Options) string {
	return fmt.Sprintf("%+v|quick=%v", p, opts.Quick)
}

// calibrate discovers the single-node saturation rate by ramping a
// rate-limited workload, like Section 8.1 / Figure 7. Results are cached
// per substrate fingerprint.
func calibrate(p liveParams, opts Options) (calibration, error) {
	key := calKey(p, opts)
	calMu.Lock()
	if c, ok := calCache[key]; ok {
		calMu.Unlock()
		return c, nil
	}
	calMu.Unlock()

	res, _, err := rampSingleNode(p, opts, nil)
	if err != nil {
		return calibration{}, err
	}
	calMu.Lock()
	calCache[key] = res
	calMu.Unlock()
	return res, nil
}

// rampStep is one step of the Figure 7 ramp.
type rampStep struct {
	OfferedRate float64 // txn/s
	Throughput  float64 // txn/s completed
	AvgLatency  float64 // ms
	P99         float64 // ms
}

// rampSingleNode runs the saturation ramp on one machine and returns the
// calibration plus the per-step measurements. A non-nil steps callback
// receives each step as it completes.
func rampSingleNode(p liveParams, opts Options, onStep func(rampStep)) (calibration, []rampStep, error) {
	cfg := p.engineCfg
	cfg.InitialMachines = 1
	eng, err := store.NewEngine(cfg)
	if err != nil {
		return calibration{}, nil, err
	}
	if err := b2w.Register(eng); err != nil {
		return calibration{}, nil, err
	}
	eng.Start()
	defer eng.Stop()
	if err := b2w.Load(eng, p.loadSpec); err != nil {
		return calibration{}, nil, err
	}

	// Theoretical ceiling: P partitions at 1/serviceTime each.
	ceiling := float64(cfg.PartitionsPerMachine) / cfg.ServiceTime.Seconds()
	stepDur := 1200 * time.Millisecond
	if opts.Quick {
		stepDur = 700 * time.Millisecond
	}
	driver := &b2w.Driver{Eng: eng, Spec: p.loadSpec, Seed: opts.Seed + 70}

	var steps []rampStep
	saturation := 0.0
	for frac := 0.2; frac <= 1.35; frac += 0.115 {
		rate := frac * ceiling
		rec, err := metrics.NewRecorder(time.Now(), p.recorderWin)
		if err != nil {
			return calibration{}, nil, err
		}
		eng.SetRecorder(rec)
		// One synthetic slot at the target rate.
		slots := workload.NewSeries(time.Time{}, time.Minute, []float64{rate * stepDur.Seconds()})
		if _, err := driver.Run(context.Background(), slots, stepDur, 1); err != nil {
			return calibration{}, nil, err
		}
		eng.SetRecorder(nil)

		var lat, thr, p99 float64
		n := 0
		for w := 0; w < rec.Windows(); w++ {
			if t := rec.Throughput(w); t > 0 {
				thr += t
				lat += rec.Percentile(w, 50)
				if v := rec.Percentile(w, 99); v > p99 {
					p99 = v
				}
				n++
			}
		}
		if n > 0 {
			thr /= float64(n)
			lat /= float64(n)
		}
		step := rampStep{OfferedRate: rate, Throughput: thr, AvgLatency: lat, P99: p99}
		steps = append(steps, step)
		if onStep != nil {
			onStep(step)
		}
		// The latency constraint on this substrate: median above the SLO
		// marks saturation (queues no longer drain).
		if lat <= p.latencySLOms {
			saturation = thr
		}
	}
	if saturation == 0 {
		return calibration{}, steps, fmt.Errorf("experiments: calibration never sustained the SLO")
	}
	c := calibration{saturation: saturation, qMax: 0.8 * saturation, q: 0.65 * saturation}
	return c, steps, nil
}

// liveRun executes one elasticity experiment: replaying trace (per-minute
// paper-scale request counts) against the engine under the given
// controller. The controller may be nil for static allocation.
type liveRun struct {
	params     liveParams
	trace      workload.Series
	controller elastic.Controller
	machines   int     // initial machines
	rateScale  float64 // paper requests -> substrate transactions
	seed       int64
	spikeRate  float64 // emergency rate override for fig11 (0 = per decision)
}

type liveOutcome struct {
	rec      *metrics.Recorder
	stats    b2w.Stats
	cal      calibration
	dReal    time.Duration
	decided  int
	failures int
}

// run executes the experiment through the cluster runtime and returns the
// recorder for analysis: the monitoring/decision loop, move execution and
// measurement all live in internal/cluster; this layer only assembles the
// configuration, replays the trace and harvests the outcome.
func (lr *liveRun) run(opts Options) (*liveOutcome, error) {
	p := lr.params
	cfg := p.engineCfg
	cfg.InitialMachines = lr.machines
	cal, err := calibrate(p, opts)
	if err != nil {
		return nil, err
	}

	c, err := cluster.New(cluster.Config{
		Engine:            cfg,
		Squall:            p.squallCfg,
		Controller:        lr.controller,
		Cycle:             time.Duration(p.controllerEveryMin) * p.minutePerSlot,
		RateScale:         lr.rateScale,
		CycleTraceMinutes: float64(p.controllerEveryMin),
		SpikeRateFactor:   lr.spikeRate,
		RecorderWindow:    p.recorderWin,
		Bootstrap: func(eng *store.Engine) error {
			return b2w.Load(eng, p.loadSpec)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := b2w.Register(c.Engine()); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	defer c.Stop()

	out := &liveOutcome{rec: c.Recorder(), cal: cal, dReal: estimateD(c.Engine().TotalRows(), p.squallCfg)}

	driver := &b2w.Driver{Eng: c.Engine(), Spec: p.loadSpec, Seed: lr.seed}
	stats, err := driver.Run(ctx, lr.trace, p.minutePerSlot, lr.rateScale)
	cancel()
	c.Stop() // halts the decision loop and drains any in-flight move
	if err != nil && ctx.Err() == nil {
		return nil, err
	}
	cs := c.Stats()
	out.decided = int(cs.Decisions)
	out.failures = int(cs.Failures)
	out.stats = stats
	return out, nil
}

// paperQ converts the substrate calibration into paper units (requests per
// trace minute per machine) given the rate scale.
func paperUnits(cal calibration, p liveParams, rateScale float64) (q, qMax float64) {
	perMin := p.minutePerSlot.Seconds() / rateScale
	return cal.q * perMin, cal.qMax * perMin
}

// chooseRateScale sizes the trace so its peak demands peakMachines of the
// substrate's Q̂ capacity.
func chooseRateScale(tracePeak float64, cal calibration, p liveParams, peakMachines float64) float64 {
	// peak * scale / minutePerSlot = peakMachines * qMax  [txn/s]
	return peakMachines * cal.qMax * p.minutePerSlot.Seconds() / tracePeak
}
