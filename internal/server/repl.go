package server

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"

	"pstore/internal/recovery"
	"pstore/internal/store"
	"pstore/internal/wal"
	"pstore/internal/wire"
)

// Replication plane. A node is either a primary (the default) or a warm
// replica (started with NodeConfig.ReplicaOf). The primary serves
// /v1/repl/sync — a fuzzy snapshot of everything it hosts plus the WAL
// cursor shipping starts from — and the serving process ships batches of
// WAL records to the follower's /v1/repl/ship, where they are applied
// through the same engine/recovery machinery that executed them on the
// primary: commands re-execute (and re-log to the replica's own WAL under
// the primary's LSNs), plan records re-run the migration locally. The
// replica is therefore continuously promotable: its own data directory
// cold-starts to the replicated state.
//
// Fencing: every ship batch carries the primary's epoch. Promotion raises
// the follower's epoch above it, so a zombie primary that comes back and
// keeps shipping gets CodeFenced and stands down. The epoch is persisted in
// the WAL manifest, so fencing survives restarts of either side.

// replState is the server's replication role and, for a replica, its
// applied position in the primary's WAL. The mutex also serializes ship
// application: batches arrive from one shipper, but retries and a zombie
// primary can overlap requests.
type replState struct {
	mu      sync.Mutex
	replica bool
	// ready flips once the sync snapshot is installed; until then ship
	// batches are refused retryably.
	ready bool
	// applied is the cursor after the last applied batch; baseline and
	// planSeq are the sync-time skip thresholds (see handleReplShip).
	applied  wire.ShipCursor
	planSeq  uint64
	baseline uint64
	// fenced marks a zombie: a node still configured as primary that has
	// seen proof of a higher epoch. It refuses transactions and waits to be
	// demoted into the new primary's followership.
	fenced bool
	// rejoin, on a promoted primary, is the standing offer to its deposed
	// predecessor (see wire.ReplRejoin).
	rejoin *wire.ReplRejoin
	// appliedRecs counts shipped command records applied since the last
	// follower-side checkpoint; checkpointing guards against overlapping
	// async checkpoints.
	appliedRecs   int
	checkpointing bool
}

func (s *Server) isReplica() bool {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.replica
}

// IsReplica reports whether the node is currently in replica role, so an
// embedding process can tell a demote order aimed at a primary from one that
// already took effect.
func (s *Server) IsReplica() bool { return s.isReplica() }

func (s *Server) replRole() string {
	if s.isReplica() {
		return "replica"
	}
	return "primary"
}

func wireCursor(c wal.ShipCursor) wire.ShipCursor {
	return wire.ShipCursor{Seg: c.Seg, Rec: c.Rec, Off: c.Off}
}

func walShipCursor(c wire.ShipCursor) wal.ShipCursor {
	return wal.ShipCursor{Seg: c.Seg, Rec: c.Rec, Off: c.Off}
}

// MarkFenced records that this node, still configured as a primary, has seen
// proof of a higher epoch — its shipper was refused with CodeFenced. A
// fenced node refuses client transactions (a zombie serving writes is a
// split brain) until it is demoted into the new primary's followership.
func (s *Server) MarkFenced() {
	s.repl.mu.Lock()
	if !s.repl.replica {
		s.repl.fenced = true
	}
	s.repl.mu.Unlock()
}

func (s *Server) isFenced() bool {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.fenced
}

// handleReplSync seeds a follower: one ReplSyncMeta frame, then one
// BucketFrame per hosted bucket. The ship cursor is taken before the
// snapshots, so every record a snapshot may already include arrives again
// with LSN <= the bucket's image LSN and is deduplicated follower-side;
// PlanSeq is read before the plan for the same reason (a racing plan change
// is re-shipped rather than lost). The cursor's segment is pinned against
// compaction before the snapshot starts so shipping can begin from it.
func (s *Server) handleReplSync(w http.ResponseWriter, r *http.Request) {
	var req wire.ReplSync
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	if s.isReplica() {
		writeNodeError(w, fmt.Errorf("%w: a replica cannot seed a follower", wire.ErrFenced))
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	if !rm.Durable() {
		writeNodeError(w, errors.New("server: replication requires a durable store (-data-dir)"))
		return
	}
	eng := s.cfg.Engine
	if req.Resume != nil {
		// A warm rejoin: the follower's state already matches ours up to the
		// resume cursor (a truncated zombie, or a follower reconnecting after
		// our restart). Validate the cursor is still retained, pin it, and
		// ship from there — no snapshot stream.
		cur := walShipCursor(*req.Resume)
		if _, _, err := rm.ReadShip(cur, 1); err != nil {
			writeNodeError(w, err)
			return
		}
		rm.PinShip(cur.Seg)
		meta := wire.ReplSyncMeta{
			Epoch:    rm.Epoch(),
			Baseline: rm.BaselineSeq(),
			Cursor:   *req.Resume,
			PlanSeq:  rm.PlanSeq(),
			Active:   eng.ActiveMachines(),
		}
		var buf bytes.Buffer
		if err := wire.EncodeFrame(&buf, meta); err != nil {
			writeNodeError(w, err)
			return
		}
		w.Header().Set("Content-Type", wire.ContentTypeChunk)
		_, _ = w.Write(buf.Bytes())
		if cb := s.cfg.Node.OnReplicaSync; cb != nil && req.FollowerURL != "" {
			go cb(req.FollowerURL, meta.Cursor)
		}
		return
	}
	planSeq := rm.PlanSeq()
	plan := eng.Plan()
	active := eng.ActiveMachines()
	cursor, err := rm.ShipEnd()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	rm.PinShip(cursor.Seg)
	var frames []wire.BucketFrame
	for _, m := range eng.HostedMachines() {
		if eng.MachineDown(m) {
			writeNodeError(w, fmt.Errorf("%w: machine %d is down; cannot seed a follower", store.ErrPartitionDown, m))
			return
		}
		for _, part := range eng.PartitionsOfMachine(m) {
			snaps, err := eng.SnapshotPartition(part)
			if err != nil {
				writeNodeError(w, err)
				return
			}
			for _, sn := range snaps {
				f, err := wire.FrameFromSnapshot(sn)
				if err != nil {
					writeNodeError(w, err)
					return
				}
				frames = append(frames, f)
			}
		}
	}
	meta := wire.ReplSyncMeta{
		Epoch:    rm.Epoch(),
		Baseline: rm.BaselineSeq(),
		Cursor:   wireCursor(cursor),
		PlanSeq:  planSeq,
		Plan:     plan,
		Active:   active,
		Buckets:  len(frames),
	}
	var buf bytes.Buffer
	if err := wire.EncodeFrame(&buf, meta); err != nil {
		writeNodeError(w, err)
		return
	}
	for i := range frames {
		if err := wire.EncodeFrame(&buf, frames[i]); err != nil {
			writeNodeError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", wire.ContentTypeChunk)
	_, _ = w.Write(buf.Bytes())
	if cb := s.cfg.Node.OnReplicaSync; cb != nil && req.FollowerURL != "" {
		go cb(req.FollowerURL, meta.Cursor)
	}
}

// InstallReplicaState applies a primary's sync stream to this node: fence
// local execution, adopt the primary's plan, restore every hosted partition
// from the snapshot frames, and make the snapshot this node's own recovery
// baseline (images installed, per-bucket LSN heads advanced to the
// snapshot's — so applied ship records continue the primary's numbering and
// the log head doubles as the duplicate-batch filter). The serving process
// calls this after fetching /v1/repl/sync, before the node is ready for
// ship batches.
func (s *Server) InstallReplicaState(meta wire.ReplSyncMeta, frames []wire.BucketFrame) error {
	nc := s.cfg.Node
	if nc == nil || !s.isReplica() {
		return errors.New("server: InstallReplicaState on a non-replica node")
	}
	rm := nc.Recovery
	if rm == nil {
		return errors.New("server: replica has no recovery manager attached")
	}
	eng := s.cfg.Engine
	// Fence: no local transaction may interleave with the install. The
	// partitions come back up one by one through RestorePartition below.
	for _, m := range eng.HostedMachines() {
		if !eng.MachineDown(m) {
			if err := eng.Crash(m); err != nil {
				return err
			}
		}
	}
	cur := eng.Plan()
	if len(meta.Plan) != len(cur) {
		return fmt.Errorf("server: sync plan covers %d buckets, engine has %d", len(meta.Plan), len(cur))
	}
	byOwner := make(map[int][]int)
	for b := range cur {
		if cur[b] != meta.Plan[b] {
			byOwner[int(meta.Plan[b])] = append(byOwner[int(meta.Plan[b])], b)
		}
	}
	for owner, buckets := range byOwner {
		if err := eng.ApplyOwnership(buckets, owner); err != nil {
			return err
		}
	}
	if meta.Active > 0 && meta.Active != eng.ActiveMachines() {
		if err := eng.SetActiveMachines(meta.Active); err != nil {
			return err
		}
	}
	snaps := make([]store.BucketSnapshot, 0, len(frames))
	byPart := make(map[int][]store.BucketSnapshot)
	for _, f := range frames {
		sn, err := wire.SnapshotFromFrame(f, nc.DecodeRow)
		if err != nil {
			return err
		}
		snaps = append(snaps, sn)
		part := eng.OwnerOf(sn.Bucket)
		byPart[part] = append(byPart[part], sn)
	}
	// Every hosted partition restores — including empty ones, which simply
	// come back up — so the whole node is live and crash-consistent.
	for _, m := range eng.HostedMachines() {
		for _, part := range eng.PartitionsOfMachine(m) {
			if _, err := eng.RestorePartition(part, byPart[part], nil); err != nil {
				return err
			}
		}
	}
	// Discard whatever record stream this node's own WAL holds before the
	// snapshot becomes the baseline: a resyncing ex-primary (or a replica
	// resyncing mid-life) would otherwise keep diverged records above the
	// incoming images' LSNs that replay on a future cold start, and stale
	// high LSN heads that break ship dedup.
	if rm.Durable() {
		if err := rm.ResetReplica(); err != nil {
			return err
		}
	}
	if err := rm.InstallReplicaBaseline(snaps); err != nil {
		return err
	}
	if err := rm.SetEpoch(meta.Epoch); err != nil {
		return err
	}
	if _, err := rm.Checkpoint(); err != nil {
		return err
	}
	s.repl.mu.Lock()
	s.repl.applied = meta.Cursor
	s.repl.planSeq = meta.PlanSeq
	s.repl.baseline = meta.Baseline
	s.repl.ready = true
	s.repl.fenced = false
	s.repl.rejoin = nil
	s.repl.appliedRecs = 0
	s.repl.mu.Unlock()
	return nil
}

// handleReplShip applies one shipped WAL batch. The guards, in order:
// role (a non-replica fences the sender — the zombie-primary case), epoch
// (a batch under any other term is fenced), readiness (retryable until the
// sync snapshot is installed), baseline (the primary installed data outside
// the WAL since sync — only a fresh sync can continue), and position (a
// batch not starting at the applied cursor gets a Gap ack carrying where to
// rewind to; duplicates land here too and re-apply as no-ops thanks to
// per-bucket LSN dedup).
func (s *Server) handleReplShip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	batch, err := wire.ReadShipBatch(r.Body)
	if err != nil {
		writeNodeError(w, fmt.Errorf("%w: %v", errBadNodeRequest, err))
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	st := &s.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.replica {
		writeNodeError(w, fmt.Errorf("%w: node is not a replica (epoch %d)", wire.ErrFenced, rm.Epoch()))
		return
	}
	if epoch := rm.Epoch(); batch.Epoch != epoch {
		writeNodeError(w, fmt.Errorf("%w: batch epoch %d, replica epoch %d", wire.ErrFenced, batch.Epoch, epoch))
		return
	}
	if !st.ready {
		writeNodeError(w, fmt.Errorf("%w: replica sync incomplete", store.ErrStopped))
		return
	}
	if batch.Baseline != st.baseline {
		writeJSON(w, wire.ShipAck{Epoch: rm.Epoch(), Applied: st.applied, Resync: true})
		return
	}
	if batch.From != st.applied {
		writeJSON(w, wire.ShipAck{Epoch: rm.Epoch(), Applied: st.applied, Gap: true})
		return
	}
	fresh := 0
	for i := range batch.Records {
		rec := &batch.Records[i]
		if rec.IsPlan() {
			if rec.PlanSeq <= st.planSeq {
				continue
			}
			if err := s.applyShippedPlan(rec); err != nil {
				writeNodeError(w, err)
				return
			}
			st.planSeq = rec.PlanSeq
			continue
		}
		head := rm.LogHead(rec.Bucket)
		if rec.LSN <= head {
			continue // already applied (snapshot overlap or duplicate batch)
		}
		if rec.LSN > head+1 {
			writeNodeError(w, fmt.Errorf("server: ship record %d skips bucket %d from lsn %d to %d", i, rec.Bucket, head, rec.LSN))
			return
		}
		var args any
		if len(rec.Args) > 0 && string(rec.Args) != "null" {
			if s.cfg.DecodeArgs == nil {
				writeNodeError(w, fmt.Errorf("server: shipped %q carries args but no codec is configured", rec.Txn))
				return
			}
			if args, err = s.cfg.DecodeArgs(rec.Txn, rec.Args); err != nil {
				writeNodeError(w, fmt.Errorf("server: decoding shipped %q args: %v", rec.Txn, err))
				return
			}
		}
		id, ok := s.handles[rec.Txn]
		if !ok {
			writeNodeError(w, fmt.Errorf("%w: shipped %q", store.ErrUnknownTxn, rec.Txn))
			return
		}
		if _, err := s.cfg.Engine.ExecuteID(id, rec.Key, args); err != nil {
			// A procedure-level error is a deterministic outcome the primary
			// logged too — its partial effects replicate exactly. Anything
			// else (partition down, engine stopped) is an infrastructure
			// failure: fail the batch without advancing, the shipper retries.
			if wire.CodeOf(err) != wire.CodeTxn {
				writeNodeError(w, err)
				return
			}
		}
		fresh++
	}
	st.applied = batch.Next
	s.maybeFollowerCheckpointLocked(rm, fresh)
	writeJSON(w, wire.ShipAck{Epoch: rm.Epoch(), Applied: st.applied})
}

// maybeFollowerCheckpointLocked kicks off an async checkpoint of the
// replica's own WAL once FollowerCheckpointEvery freshly applied command
// records have accumulated, so a long-lived follower's cold start stays
// bounded. The checkpoint is fuzzy (same machinery as the primary's) and
// runs off the ship path; at most one is in flight. Caller holds s.repl.mu.
func (s *Server) maybeFollowerCheckpointLocked(rm *recovery.Manager, fresh int) {
	every := s.cfg.Node.FollowerCheckpointEvery
	if every <= 0 {
		return
	}
	st := &s.repl
	st.appliedRecs += fresh
	if st.appliedRecs < every || st.checkpointing {
		return
	}
	st.appliedRecs = 0
	st.checkpointing = true
	go func() {
		_, err := rm.Checkpoint()
		st.mu.Lock()
		st.checkpointing = false
		st.mu.Unlock()
		if err != nil {
			log.Printf("server: follower checkpoint failed: %v", err)
		}
	}()
}

// applyShippedPlan re-runs a primary-side plan change locally: changed
// buckets move between partitions this node hosts (a real local migration,
// so rows follow ownership), leave hosted partitions when their new owner
// lives elsewhere (that node's own WAL covers them now), or merely flip
// ownership when neither side is hosted here. An inbound migration from
// another node has no row source in the WAL at all — the primary received
// those rows out-of-band, bumped its baseline, and this replica resyncs.
func (s *Server) applyShippedPlan(rec *wire.ShipRecord) error {
	eng := s.cfg.Engine
	cur := eng.Plan()
	if len(rec.Plan) != len(cur) {
		return fmt.Errorf("server: shipped plan covers %d buckets, engine has %d", len(rec.Plan), len(cur))
	}
	type hop struct{ from, to int }
	groups := make(map[hop][]int)
	for b := range cur {
		if cur[b] != rec.Plan[b] {
			h := hop{int(cur[b]), int(rec.Plan[b])}
			groups[h] = append(groups[h], b)
		}
	}
	for h, buckets := range groups {
		fromHosted := eng.Hosted(eng.MachineOfPartition(h.from))
		toHosted := eng.Hosted(eng.MachineOfPartition(h.to))
		switch {
		case fromHosted && toHosted:
			if _, err := eng.MoveBuckets(buckets, h.from, h.to, 0, 0); err != nil {
				return err
			}
		case fromHosted:
			if _, err := eng.ExtractBuckets(buckets, h.from, h.to, 0, 0, false); err != nil {
				return err
			}
		default:
			if err := eng.ApplyOwnership(buckets, h.to); err != nil {
				return err
			}
		}
	}
	if rec.Active > 0 && rec.Active != eng.ActiveMachines() {
		return eng.SetActiveMachines(rec.Active)
	}
	return nil
}

// handleReplPromote turns a replica into a primary under a strictly higher
// epoch, persisted before the role flips so the fence survives a restart.
// Promoting a node that is already primary at (or above) the requested
// epoch is idempotent success — the coordinator may retry.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	var req wire.ReplPromote
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	st := &s.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.replica {
		if !st.ready {
			writeNodeError(w, fmt.Errorf("%w: replica sync incomplete; cannot promote", store.ErrStopped))
			return
		}
		if req.Epoch <= rm.Epoch() {
			writeNodeError(w, fmt.Errorf("%w: promote epoch %d not above current %d", wire.ErrFenced, req.Epoch, rm.Epoch()))
			return
		}
	}
	if req.Epoch > rm.Epoch() {
		if err := rm.SetEpoch(req.Epoch); err != nil {
			writeNodeError(w, err)
			return
		}
	}
	if st.replica {
		// Capture the standing rejoin offer for the deposed primary: shipping
		// to it resumes at this node's current durable end (no transaction
		// can land between here and the role flip — the replica refusal is
		// still up), truncated-to state must match st.applied (left intact
		// below precisely so the zombie can read its divergence point from
		// our status), and plan/baseline must not have drifted. Pin the
		// cursor so our own checkpoints keep the rejoin window shippable.
		if end, err := rm.ShipEnd(); err == nil {
			rm.PinShip(end.Seg)
			st.rejoin = &wire.ReplRejoin{
				Cursor:   wireCursor(end),
				PlanSeq:  st.planSeq,
				Baseline: rm.BaselineSeq(),
			}
		}
	}
	st.replica = false
	st.fenced = false
	writeJSON(w, s.replStatusLocked(rm))
}

// handleReplDemote orders this fenced ex-primary to stand down and rejoin
// the given primary as a follower. The demotion itself runs on the serving
// process (NodeConfig.OnDemote — it needs the transport client); this
// handler validates and fires it, replying with the current status so the
// coordinator can poll for convergence.
func (s *Server) handleReplDemote(w http.ResponseWriter, r *http.Request) {
	var req wire.ReplDemote
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	if req.PrimaryURL == "" {
		writeNodeError(w, fmt.Errorf("%w: demote needs a primary URL", errBadNodeRequest))
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	st := &s.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.replica {
		if s.cfg.Node.OnDemote == nil {
			writeNodeError(w, errors.New("server: node has no demote hook; restart it as a replica"))
			return
		}
		st.fenced = true // stop serving writes immediately, not when the rejoin lands
		go s.cfg.Node.OnDemote(req.PrimaryURL)
	}
	writeJSON(w, s.replStatusLocked(rm))
}

// DemoteToFollower turns this (possibly fenced) ex-primary into a warm
// follower of the node whose ReplStatus is given: fence local execution,
// shed the WAL suffix past the divergence point (the new primary's Applied
// cursor — a cursor into *this* node's WAL), adopt the new epoch, and
// rebuild memory from the truncated log so the node holds exactly the state
// the new primary acknowledged. On success (true) the node is a ready
// replica positioned at pst.Rejoin.Cursor: the caller resumes shipping via
// a Resume sync against the new primary.
//
// False with a nil error means a warm rejoin is impossible — the rejoin
// offer is missing or stale, or truncation was refused (wal.ErrNeedResync) —
// and the node is left a fenced non-replica; the caller must run a full
// snapshot resync (InstallReplicaState), which wipes and rebuilds the WAL.
//
// The caller must have stopped this node's own shipper and released any
// sync-commit waiters (recovery.AbortSync) first: fencing the engine blocks
// on in-flight transactions, and a waiter parked on the barrier would never
// drain.
func (s *Server) DemoteToFollower(pst wire.ReplStatus) (bool, error) {
	rm, err := s.nodeRecovery()
	if err != nil {
		return false, err
	}
	if !rm.Durable() {
		return false, errors.New("server: demotion requires a durable store (-data-dir)")
	}
	eng := s.cfg.Engine
	st := &s.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.replica {
		return false, errors.New("server: node is already a replica")
	}
	if pst.Epoch <= rm.Epoch() {
		return false, fmt.Errorf("%w: demote toward epoch %d, ours is %d", wire.ErrFenced, pst.Epoch, rm.Epoch())
	}
	st.fenced = true
	// Fence: every hosted machine goes down, so nothing interleaves with the
	// truncation and the rebuild below replays onto empty partitions.
	for _, m := range eng.HostedMachines() {
		if !eng.MachineDown(m) {
			if err := rm.Crash(m); err != nil {
				return false, err
			}
		}
	}
	warm := pst.Rejoin != nil &&
		pst.Rejoin.PlanSeq == rm.PlanSeq() &&
		pst.Rejoin.Baseline == rm.BaselineSeq()
	if warm {
		if _, err := rm.TruncateShip(walShipCursor(pst.Applied)); err != nil {
			if !errors.Is(err, wal.ErrNeedResync) {
				return false, err
			}
			warm = false
		}
	}
	if !warm {
		return false, nil
	}
	if err := rm.SetEpoch(pst.Epoch); err != nil {
		return false, err
	}
	// Rebuild memory at the divergence point: the truncated suffix already
	// executed here, so images + replay of the retained log are the only
	// correct source of state now.
	for _, m := range eng.HostedMachines() {
		if _, err := rm.Restore(m); err != nil {
			return false, err
		}
	}
	if _, err := rm.Checkpoint(); err != nil {
		return false, err
	}
	st.replica = true
	st.ready = true
	st.fenced = false
	st.rejoin = nil
	st.appliedRecs = 0
	st.applied = pst.Rejoin.Cursor
	st.planSeq = pst.Rejoin.PlanSeq
	st.baseline = pst.Rejoin.Baseline
	return true, nil
}

// PrepareFullResync flips a node that failed a warm rejoin into replica
// role so InstallReplicaState (which requires it) can rebuild it from a
// fresh snapshot stream.
func (s *Server) PrepareFullResync() {
	s.repl.mu.Lock()
	s.repl.replica = true
	s.repl.ready = false
	s.repl.applied = wire.ShipCursor{}
	s.repl.mu.Unlock()
}

// handleReplStatus reports the node's replication self-description.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	st := &s.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	writeJSON(w, s.replStatusLocked(rm))
}

// replStatusLocked builds a ReplStatus; the caller holds s.repl.mu.
func (s *Server) replStatusLocked(rm *recovery.Manager) wire.ReplStatus {
	out := wire.ReplStatus{
		Epoch:    rm.Epoch(),
		Baseline: rm.BaselineSeq(),
		Applied:  s.repl.applied,
		PlanSeq:  s.repl.planSeq,
		Fenced:   s.repl.fenced,
		Rejoin:   s.repl.rejoin,
	}
	if s.repl.replica {
		out.Role = "replica"
	} else {
		out.Role = "primary"
	}
	if rm.Durable() {
		if end, err := rm.ShipEnd(); err == nil {
			out.Durable = wireCursor(end)
		}
	}
	return out
}
