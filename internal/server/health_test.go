package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pstore/internal/recovery"
	"pstore/internal/store"
	"pstore/internal/wal"
	"pstore/internal/wire"
)

// TestHealthzReportsWALFailure is the dead-log regression test: a node whose
// WAL latches a fail-stop error still executes from memory, but it can no
// longer promise durability — /v1/healthz must flip to 503 (so the
// coordinator's failure detector declares it dead) and the node status must
// carry the latched error.
func TestHealthzReportsWALFailure(t *testing.T) {
	cfg := store.Config{
		MaxMachines:          1,
		PartitionsPerMachine: 2,
		Buckets:              64,
		QueueCapacity:        1 << 10,
		InitialMachines:      1,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		t.Fatal(err)
	}
	fs := wal.NewMemFS(1)
	rm, err := recovery.New(eng, recovery.Config{DataDir: "data", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	srv, err := New(Config{
		Engine: eng,
		Node:   &NodeConfig{ID: 0, Nodes: 1, Recovery: rm},
	})
	if err != nil {
		t.Fatal(err)
	}

	health := func() (int, string) {
		w := httptest.NewRecorder()
		srv.handleHealth(w, httptest.NewRequest(http.MethodGet, wire.PathHealth, nil))
		return w.Code, w.Body.String()
	}
	nodeStatus := func() wire.NodeStatus {
		w := httptest.NewRecorder()
		srv.handleNodeStatus(w, httptest.NewRequest(http.MethodGet, wire.PathNodeStatus, nil))
		if w.Code != 200 {
			t.Fatalf("node status: %d %s", w.Code, w.Body.String())
		}
		var st wire.NodeStatus
		if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if _, err := eng.Execute("put", "k", 1); err != nil {
		t.Fatal(err)
	}
	if code, body := health(); code != 200 {
		t.Fatalf("healthy node: %d %s", code, body)
	}
	if st := nodeStatus(); st.WALError != "" || st.Role != "primary" {
		t.Fatalf("healthy status: WALError=%q Role=%q", st.WALError, st.Role)
	}

	// Kill the disk: the next durable append tears and latches the log.
	// Command logging is fail-stop, not fail-txn — the execution itself
	// still answers from memory, which is exactly why the health probe has
	// to carry the latched error.
	fs.CrashAfterWrites(1)
	if _, err := eng.Execute("put", "k", 2); err != nil {
		t.Fatalf("put: %v", err)
	}
	if rm.Err() == nil {
		t.Fatal("WAL error did not latch")
	}

	code, body := health()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead-log healthz: %d %s, want 503", code, body)
	}
	var out struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || out.OK || out.Error == "" {
		t.Fatalf("dead-log healthz body %q (%v)", body, err)
	}
	if st := nodeStatus(); st.WALError == "" {
		t.Fatal("node status does not surface the latched WAL error")
	}
}
