package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pstore/internal/recovery"
	"pstore/internal/store"
	"pstore/internal/wire"
)

// NodeConfig turns a Server into one node of a multi-process cluster. The
// node serves the /v1/node/* coordination vocabulary (chunk extract/install,
// ownership flips, crash/restore) next to the regular transaction endpoints,
// and forwards transactions for partitions hosted elsewhere to their hosting
// peer.
type NodeConfig struct {
	// ID is this node's index and Nodes the cluster's node count; machine m
	// is hosted by node m % Nodes on every node, so routing needs no
	// membership protocol.
	ID    int
	Nodes int
	// Recovery, when set, serves the node-local crash/restore/checkpoint
	// plane. Command logs live with the data: each node recovers exactly the
	// machines it hosts.
	Recovery *recovery.Manager
	// DecodeRow rebuilds workload rows from incoming chunk frames. Nil keeps
	// rows as raw JSON — enough for row accounting, not for executing
	// transactions against migrated-in buckets.
	DecodeRow wire.RowDecoder
	// PeerURL maps a node index to its base URL ("http://host:port") for
	// transaction forwarding. Nil disables forwarding: not-owned refusals
	// surface to the client as retryable 503s instead.
	PeerURL func(node int) string
	// SetPeerURL repoints one peer slot's base URL — the coordinator's
	// rewiring step after promoting a follower (served at /v1/node/peer).
	// Nil refuses rewiring requests.
	SetPeerURL func(node int, url string)
	// ReplicaOf, when non-empty, starts this node as a warm follower of the
	// primary at that base URL: client transactions are refused until
	// promotion, and the /v1/repl/ship endpoint applies the primary's WAL.
	ReplicaOf string
	// OnReplicaSync is invoked (on its own goroutine) after this node, as a
	// primary, streams a sync snapshot to a follower: the serving process
	// starts a shipper that streams WAL records from cur to followerURL. The
	// server cannot own the shipper itself — the ship client lives in
	// internal/transport, which imports this package.
	OnReplicaSync func(followerURL string, cur wire.ShipCursor)
	// OnDemote is invoked (on its own goroutine) when /v1/repl/demote orders
	// this fenced ex-primary to stand down and rejoin the primary at the
	// given URL as a follower. The rejoin protocol lives with the serving
	// process for the same reason OnReplicaSync does: it needs the transport
	// client, which imports this package.
	OnDemote func(primaryURL string)
	// FollowerCheckpointEvery, when > 0, has a replica run a checkpoint of
	// its own WAL every time that many shipped command records have been
	// applied — bounding a long-lived follower's own cold start. Compaction
	// is PinShip-aware, so a later promotion's rejoin window is preserved.
	FollowerCheckpointEvery int
}

func (nc *NodeConfig) validate() error {
	if nc.Nodes < 1 {
		return fmt.Errorf("server: node config: %d nodes", nc.Nodes)
	}
	if nc.ID < 0 || nc.ID >= nc.Nodes {
		return fmt.Errorf("server: node config: id %d outside [0, %d)", nc.ID, nc.Nodes)
	}
	return nil
}

// NodeOf returns the node index hosting a machine.
func (nc *NodeConfig) NodeOf(machine int) int { return machine % nc.Nodes }

// maxForwardHops caps node-to-node transaction forwarding. Plans converge
// after one flip broadcast, so a request bouncing this many times means
// routing state is broken, not merely stale.
const maxForwardHops = 3

func (s *Server) registerNodeHandlers(mux *http.ServeMux) {
	mux.HandleFunc(wire.PathNodeMove, s.handleNodeMove)
	mux.HandleFunc(wire.PathNodeExtract, s.handleNodeExtract)
	mux.HandleFunc(wire.PathNodeInstall, s.handleNodeInstall)
	mux.HandleFunc(wire.PathNodeFlip, s.handleNodeFlip)
	mux.HandleFunc(wire.PathNodeCrash, s.handleNodeCrash)
	mux.HandleFunc(wire.PathNodeRestore, s.handleNodeRestore)
	mux.HandleFunc(wire.PathNodeCheckpoint, s.handleNodeCheckpoint)
	mux.HandleFunc(wire.PathNodeSnapshot, s.handleNodeSnapshot)
	mux.HandleFunc(wire.PathNodeStatus, s.handleNodeStatus)
	mux.HandleFunc(wire.PathNodeMachines, s.handleNodeMachines)
	mux.HandleFunc(wire.PathNodeAccesses, s.handleNodeAccesses)
	mux.HandleFunc(wire.PathNodePeer, s.handleNodePeer)
	mux.HandleFunc(wire.PathReplSync, s.handleReplSync)
	mux.HandleFunc(wire.PathReplShip, s.handleReplShip)
	mux.HandleFunc(wire.PathReplPromote, s.handleReplPromote)
	mux.HandleFunc(wire.PathReplStatus, s.handleReplStatus)
	mux.HandleFunc(wire.PathReplDemote, s.handleReplDemote)
}

// handleNodePeer repoints one peer slot's base URL — after a failover the
// coordinator rewires every survivor so forwarded transactions reach the
// promoted follower instead of the dead primary.
func (s *Server) handleNodePeer(w http.ResponseWriter, r *http.Request) {
	var req wire.NodePeer
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	nc := s.cfg.Node
	if nc.SetPeerURL == nil {
		writeNodeError(w, errors.New("server: node has no mutable peer table"))
		return
	}
	if req.Node < 0 || req.Node >= nc.Nodes || req.URL == "" {
		writeNodeError(w, fmt.Errorf("%w: peer %d -> %q", errBadNodeRequest, req.Node, req.URL))
		return
	}
	nc.SetPeerURL(req.Node, req.URL)
	writeJSON(w, struct{}{})
}

// writeNodeError maps a node-plane error onto the wire with the same stable
// code vocabulary as the transaction path, without touching the transaction
// counters — coordination failures are not client traffic.
func writeNodeError(w http.ResponseWriter, err error) {
	code := wire.CodeOf(err)
	if errors.Is(err, errBadNodeRequest) {
		code = wire.CodeBadRequest
	} else if code == wire.CodeTxn {
		// The node plane executes no transactions; anything that is not a
		// typed engine refusal is a coordination failure.
		code = wire.CodeInternal
	}
	writeResponse(w, wire.Response{Status: wire.StatusOf(code), Code: code, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeNodeJSON reads a small JSON request body, refusing non-POSTs.
func decodeNodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, wire.MaxFrame)).Decode(v); err != nil {
		writeNodeError(w, fmt.Errorf("%w: decoding request: %v", errBadNodeRequest, err))
		return false
	}
	return true
}

// errBadNodeRequest maps malformed node-plane bodies to CodeBadRequest.
var errBadNodeRequest = errors.New("server: bad node request")

// handleNodeMove executes a same-node MoveBuckets: both partitions are
// hosted here, so the node runs the full in-process migration protocol.
func (s *Server) handleNodeMove(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeMove
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	perRow := time.Duration(req.PerRowNs)
	overhead := time.Duration(req.OverheadNs)
	var (
		rows int
		err  error
	)
	if req.Rollback {
		rows, err = s.cfg.Engine.MoveBucketsRollback(req.Buckets, req.From, req.To, perRow, overhead)
	} else {
		rows, err = s.cfg.Engine.MoveBuckets(req.Buckets, req.From, req.To, perRow, overhead)
	}
	if err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, wire.NodeRows{Rows: rows})
}

// handleNodeExtract pulls a chunk out of a hosted source partition and
// streams it back; local ownership flips to the destination as part of the
// extract, exactly like the in-process protocol's source half.
func (s *Server) handleNodeExtract(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeMove
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	data, err := s.cfg.Engine.ExtractBuckets(req.Buckets, req.From, req.To,
		time.Duration(req.PerRowNs), time.Duration(req.OverheadNs), req.Rollback)
	if err != nil {
		writeNodeError(w, err)
		return
	}
	meta, frames, err := wire.ChunkFromBucketData(data)
	if err != nil {
		writeNodeError(w, err)
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeChunk)
	var buf bytes.Buffer
	if err := wire.WriteChunkStream(&buf, meta, frames); err != nil {
		writeNodeError(w, err)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

// handleNodeInstall merges an incoming chunk into a hosted destination
// partition (body: one NodeMove frame, then the chunk stream) and flips
// local ownership after the install lands. The installed buckets immediately
// get a fresh recovery baseline: their command history lives on the node
// they executed on, so the image itself is the correct recovery point here.
func (s *Server) handleNodeInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	var req wire.NodeMove
	if err := wire.DecodeFrame(r.Body, &req); err != nil {
		writeNodeError(w, fmt.Errorf("%w: decoding move frame: %v", errBadNodeRequest, err))
		return
	}
	_, frames, err := wire.ReadChunkStream(r.Body)
	if err != nil {
		writeNodeError(w, fmt.Errorf("%w: %v", errBadNodeRequest, err))
		return
	}
	data, err := wire.BucketDataFromChunk(frames, s.cfg.Node.DecodeRow)
	if err != nil {
		writeNodeError(w, fmt.Errorf("%w: %v", errBadNodeRequest, err))
		return
	}
	rows, err := s.cfg.Engine.InstallBuckets(req.Buckets, data, req.To,
		time.Duration(req.PerRowNs), time.Duration(req.OverheadNs))
	if err != nil {
		writeNodeError(w, err)
		return
	}
	if rm := s.cfg.Node.Recovery; rm != nil {
		if _, err := rm.CheckpointPartition(req.To); err != nil {
			writeNodeError(w, err)
			return
		}
	}
	writeJSON(w, wire.NodeRows{Rows: rows})
}

// handleNodeFlip applies a coordinator's ownership broadcast.
func (s *Server) handleNodeFlip(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeFlip
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	if err := s.cfg.Engine.ApplyOwnership(req.Buckets, req.Owner); err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// nodeRecovery returns the node's recovery manager or a typed error.
func (s *Server) nodeRecovery() (*recovery.Manager, error) {
	if rm := s.cfg.Node.Recovery; rm != nil {
		return rm, nil
	}
	return nil, errors.New("server: node has no recovery manager attached")
}

// handleNodeCrash fences a hosted machine.
func (s *Server) handleNodeCrash(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeMachine
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	if !s.cfg.Engine.Hosted(req.Machine) {
		writeNodeError(w, fmt.Errorf("%w: machine %d", store.ErrNotOwned, req.Machine))
		return
	}
	if err := rm.Crash(req.Machine); err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleNodeRestore rebuilds a hosted machine from the node-local
// checkpoint and command log.
func (s *Server) handleNodeRestore(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeMachine
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	if !s.cfg.Engine.Hosted(req.Machine) {
		writeNodeError(w, fmt.Errorf("%w: machine %d", store.ErrNotOwned, req.Machine))
		return
	}
	st, err := rm.Restore(req.Machine)
	if err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, wire.NodeRestoreResult{
		Machine:    st.Machine,
		Partitions: st.Partitions,
		Snapshots:  st.Snapshots,
		Replayed:   st.Replayed,
		DowntimeMs: st.Downtime.Milliseconds(),
	})
}

// handleNodeCheckpoint installs a fresh baseline on every live hosted
// partition.
func (s *Server) handleNodeCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	rm, err := s.nodeRecovery()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	n, err := rm.Checkpoint()
	if err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, wire.NodeRows{Rows: n})
}

// handleNodeSnapshot streams one partition's fuzzy-checkpoint image as a
// chunk stream whose frames carry per-bucket LSNs.
func (s *Server) handleNodeSnapshot(w http.ResponseWriter, r *http.Request) {
	part, err := strconv.Atoi(r.URL.Query().Get("part"))
	if err != nil {
		writeNodeError(w, fmt.Errorf("%w: bad part %q", errBadNodeRequest, r.URL.Query().Get("part")))
		return
	}
	snaps, err := s.cfg.Engine.SnapshotPartition(part)
	if err != nil {
		writeNodeError(w, err)
		return
	}
	meta := wire.ChunkMeta{Buckets: len(snaps)}
	frames := make([]wire.BucketFrame, 0, len(snaps))
	for _, sn := range snaps {
		f, err := wire.FrameFromSnapshot(sn)
		if err != nil {
			writeNodeError(w, err)
			return
		}
		meta.Rows += f.Rows
		frames = append(frames, f)
	}
	w.Header().Set("Content-Type", wire.ContentTypeChunk)
	var buf bytes.Buffer
	if err := wire.WriteChunkStream(&buf, meta, frames); err != nil {
		writeNodeError(w, err)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

// handleNodeStatus serves the node's self-description: identity, geometry,
// hosted machines, plan and load — the coordinator's bootstrap and poll
// surface.
func (s *Server) handleNodeStatus(w http.ResponseWriter, r *http.Request) {
	eng := s.cfg.Engine
	cfg := eng.Config()
	st := wire.NodeStatus{
		Node:                 s.cfg.Node.ID,
		Nodes:                s.cfg.Node.Nodes,
		MaxMachines:          cfg.MaxMachines,
		PartitionsPerMachine: cfg.PartitionsPerMachine,
		Buckets:              cfg.Buckets,
		InitialMachines:      cfg.InitialMachines,
		Hosted:               eng.HostedMachines(),
		Active:               eng.ActiveMachines(),
		Plan:                 eng.Plan(),
		DownMachines:         eng.DownMachines(),
		TotalRows:            eng.TotalRows(),
		Counters:             eng.Counters(),
		MaxSojournNs:         eng.MaxQueueSojourn().Nanoseconds(),
		Role:                 s.replRole(),
	}
	if rm := s.cfg.Node.Recovery; rm != nil {
		st.Epoch = rm.Epoch()
		if err := rm.Err(); err != nil {
			// A latched log failure means durability is gone: the node still
			// serves from memory, but the coordinator must treat it as failed.
			st.WALError = err.Error()
		}
	}
	writeJSON(w, st)
}

// handleNodeMachines sets the active machine count.
func (s *Server) handleNodeMachines(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeActive
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	if err := s.cfg.Engine.SetActiveMachines(req.Active); err != nil {
		writeNodeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleNodeAccesses reports (and optionally resets) per-bucket access
// counts — the skew signal a coordinator-side rebalance pass aggregates.
func (s *Server) handleNodeAccesses(w http.ResponseWriter, r *http.Request) {
	var req wire.NodeAccessesReq
	if !decodeNodeJSON(w, r, &req) {
		return
	}
	writeJSON(w, wire.NodeAccesses{Accesses: s.cfg.Engine.BucketAccesses(req.Reset)})
}

// forward relays a transaction refused with ErrNotOwned to the node hosting
// its destination partition, stamping the hop count so a mid-flip routing
// disagreement degrades into a bounded bounce instead of a loop. The peer's
// response passes through verbatim — success, transaction error or refusal
// alike — so the client sees exactly what the hosting node decided.
func (s *Server) forward(ctx context.Context, req wire.Request, hops int, refusal error) wire.Response {
	nc := s.cfg.Node
	if nc.PeerURL == nil {
		return s.failure(req, refusal)
	}
	if hops >= maxForwardHops {
		return s.errResponse(wire.CodeInternal,
			fmt.Sprintf("server: %q still not owned after %d forwards: %v", req.Txn, hops, refusal), 0)
	}
	part := s.cfg.Engine.PartitionOfKey(req.Key)
	node := nc.NodeOf(s.cfg.Engine.MachineOfPartition(part))
	if node == nc.ID {
		// Our own plan routes the key here yet the engine refused: the flip
		// raced the lookup. Surface the transient refusal; the client retries.
		return s.failure(req, refusal)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return s.errResponse(wire.CodeInternal, fmt.Sprintf("server: encoding forward: %v", err), 0)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, nc.PeerURL(node)+wire.PathTxn, bytes.NewReader(body))
	if err != nil {
		return s.errResponse(wire.CodeInternal, fmt.Sprintf("server: building forward: %v", err), 0)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(wire.HeaderForwarded, strconv.Itoa(hops+1))
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		hr.Header.Set(wire.HeaderDeadlineMs, strconv.FormatInt(ms, 10))
	}
	resp, err := s.fwd.Do(hr)
	if err != nil {
		return s.errResponse(wire.CodeInternal,
			fmt.Sprintf("server: forwarding %q to node %d: %v", req.Txn, node, err), 0)
	}
	defer resp.Body.Close()
	var out wire.Response
	if err := json.NewDecoder(io.LimitReader(resp.Body, wire.MaxFrame)).Decode(&out); err != nil {
		return s.errResponse(wire.CodeInternal,
			fmt.Sprintf("server: decoding forward reply from node %d: %v", node, err), 0)
	}
	s.forwarded.Add(1)
	return out
}
