package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/client"
	"pstore/internal/metrics"
	"pstore/internal/store"
	"pstore/internal/wire"
	"pstore/internal/workload"
)

// testEngine builds a started engine whose procedures cover every error the
// wire must map: each "err-*" transaction returns its namesake typed error.
func testEngine(t *testing.T) *store.Engine {
	t.Helper()
	cfg := store.Config{
		MaxMachines:          1,
		PartitionsPerMachine: 2,
		Buckets:              64,
		ServiceTime:          0,
		QueueCapacity:        1 << 10,
		InitialMachines:      1,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	procs := map[string]store.TxnFunc{
		"echo":         func(tx *store.Tx) (any, error) { return tx.Key, nil },
		"err-overload": func(*store.Tx) (any, error) { return nil, fmt.Errorf("queue full: %w", store.ErrOverload) },
		"err-deadline": func(*store.Tx) (any, error) { return nil, fmt.Errorf("expired: %w", store.ErrDeadlineExceeded) },
		"err-down":     func(*store.Tx) (any, error) { return nil, fmt.Errorf("crashed: %w", store.ErrPartitionDown) },
		"err-stopped":  func(*store.Tx) (any, error) { return nil, store.ErrStopped },
		"err-business": func(*store.Tx) (any, error) { return nil, errors.New("insufficient stock") },
	}
	for name, p := range procs {
		if err := eng.Register(name, p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	return eng
}

func postTxn(t *testing.T, s *Server, req wire.Request, header map[string]string) (*httptest.ResponseRecorder, wire.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, wire.PathTxn, bytes.NewReader(body))
	for k, v := range header {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.handleTxn(w, r)
	var resp wire.Response
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return w, resp
}

// TestErrorMappingTable drives one request per typed engine error through
// the front end and checks the full contract: HTTP status, stable code,
// retry hint where the code is retryable, the right server counter, and the
// recorder's wire-rejection count.
func TestErrorMappingTable(t *testing.T) {
	eng := testEngine(t)
	rec, err := metrics.NewRecorder(time.Now(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		txn      string
		status   int
		code     string
		wantHint bool
		counter  func(Counters) int64
	}{
		{"success", "echo", 200, "", false, func(c Counters) int64 { return c.OK }},
		{"overload", "err-overload", 429, wire.CodeOverload, true, func(c Counters) int64 { return c.Rejected429 }},
		{"deadline", "err-deadline", 504, wire.CodeDeadline, false, func(c Counters) int64 { return c.Deadline504 }},
		{"partition-down", "err-down", 503, wire.CodePartitionDown, true, func(c Counters) int64 { return c.Down503 }},
		{"stopped", "err-stopped", 503, wire.CodeStopped, true, func(c Counters) int64 { return c.Down503 }},
		{"business-error", "err-business", 422, wire.CodeTxn, false, func(c Counters) int64 { return c.TxnErrors }},
		{"unknown-txn", "no-such-txn", 400, wire.CodeUnknownTxn, false, func(c Counters) int64 { return c.BadRequests }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := tc.counter(srv.Counters())
			wireBefore := rec.OverloadCounters().WireRejected
			w, resp := postTxn(t, srv, wire.Request{Txn: tc.txn, Key: "k1"}, nil)
			if w.Code != tc.status {
				t.Errorf("HTTP status = %d, want %d", w.Code, tc.status)
			}
			if resp.Status != tc.status {
				t.Errorf("embedded status = %d, want %d", resp.Status, tc.status)
			}
			if resp.Code != tc.code {
				t.Errorf("code = %q, want %q", resp.Code, tc.code)
			}
			if tc.wantHint {
				if resp.RetryAfterMs < 1 {
					t.Errorf("retry hint = %d, want >= 1", resp.RetryAfterMs)
				}
				if h := w.Header().Get(wire.HeaderRetryAfterMs); h != strconv.FormatInt(resp.RetryAfterMs, 10) {
					t.Errorf("%s header = %q, want %d", wire.HeaderRetryAfterMs, h, resp.RetryAfterMs)
				}
				if w.Header().Get("Retry-After") == "" {
					t.Error("Retry-After header missing")
				}
			} else if resp.RetryAfterMs != 0 {
				t.Errorf("retry hint = %d, want 0", resp.RetryAfterMs)
			}
			if got := tc.counter(srv.Counters()); got != before+1 {
				t.Errorf("counter went %d -> %d, want +1", before, got)
			}
			wantWire := wireBefore
			if tc.status == 429 {
				wantWire++
			}
			if got := rec.OverloadCounters().WireRejected; got != wantWire {
				t.Errorf("recorder WireRejected = %d, want %d", got, wantWire)
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	// Garbage body.
	r := httptest.NewRequest(http.MethodPost, wire.PathTxn, bytes.NewReader([]byte("{not json")))
	w := httptest.NewRecorder()
	srv.handleTxn(w, r)
	if w.Code != 400 {
		t.Errorf("garbage body: HTTP %d, want 400", w.Code)
	}
	// Unparseable deadline header.
	w2, resp := postTxn(t, srv, wire.Request{Txn: "echo", Key: "k"},
		map[string]string{wire.HeaderDeadlineMs: "soon"})
	if w2.Code != 400 || resp.Code != wire.CodeBadRequest {
		t.Errorf("bad deadline header: HTTP %d code %q, want 400 bad_request", w2.Code, resp.Code)
	}
	// Args for a server with no codec configured.
	_, resp = postTxn(t, srv, wire.Request{Txn: "echo", Key: "k", Args: []byte(`{"a":1}`)}, nil)
	if resp.Code != wire.CodeBadRequest {
		t.Errorf("args without codec: code %q, want bad_request", resp.Code)
	}
	if got := srv.Counters().BadRequests; got != 3 {
		t.Errorf("BadRequests = %d, want 3", got)
	}
}

// TestBatchOrdered sends one pipelined batch and checks frames come back in
// submission order with per-frame outcomes.
func TestBatchOrdered(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var body bytes.Buffer
	for i := 0; i < n; i++ {
		req := wire.Request{Txn: "echo", Key: fmt.Sprintf("key-%02d", i)}
		if i%7 == 3 {
			req.Txn = "err-business"
		}
		if err := wire.EncodeFrame(&body, req); err != nil {
			t.Fatal(err)
		}
	}
	r := httptest.NewRequest(http.MethodPost, wire.PathBatch, &body)
	r.Header.Set("Content-Type", wire.ContentTypeBatch)
	w := httptest.NewRecorder()
	srv.handleBatch(w, r)
	if w.Code != 200 {
		t.Fatalf("batch HTTP %d, want 200", w.Code)
	}
	for i := 0; i < n; i++ {
		var resp wire.Response
		if err := wire.DecodeFrame(w.Body, &resp); err != nil {
			t.Fatalf("decoding frame %d: %v", i, err)
		}
		if i%7 == 3 {
			if resp.Status != 422 || resp.Code != wire.CodeTxn {
				t.Errorf("frame %d: status %d code %q, want 422 txn_error", i, resp.Status, resp.Code)
			}
			continue
		}
		want := fmt.Sprintf("%q", fmt.Sprintf("key-%02d", i))
		if resp.Status != 200 || string(resp.Value) != want {
			t.Errorf("frame %d: status %d value %s, want 200 %s", i, resp.Status, resp.Value, want)
		}
	}
	c := srv.Counters()
	if c.Batches != 1 || c.Frames != n {
		t.Errorf("counters: %d batches %d frames, want 1 and %d", c.Batches, c.Frames, n)
	}
}

func TestBatchTooLarge(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(Config{Engine: eng, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := wire.EncodeFrame(&body, wire.Request{Txn: "echo", Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	r := httptest.NewRequest(http.MethodPost, wire.PathBatch, &body)
	w := httptest.NewRecorder()
	srv.handleBatch(w, r)
	if w.Code != 400 {
		t.Fatalf("oversized batch: HTTP %d, want 400", w.Code)
	}
}

// TestLoopbackB2W is the end-to-end wire test: a b2w-loaded engine behind a
// real TCP listener, driven by the same driver that runs in-process, through
// the client library and a RemoteExecutor. The trace must complete with zero
// transport errors; business errors are expected benchmark behavior.
func TestLoopbackB2W(t *testing.T) {
	cfg := store.Config{
		MaxMachines:          2,
		PartitionsPerMachine: 2,
		Buckets:              128,
		ServiceTime:          0,
		QueueCapacity:        1 << 12,
		InitialMachines:      2,
	}
	eng, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2w.Register(eng); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	spec := b2w.LoadSpec{Carts: 40, Checkouts: 15, Stocks: 25, LinesPerCart: 2, Seed: 2, Loaders: 4}
	if err := b2w.Load(eng, spec); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{Engine: eng, DecodeArgs: b2w.DecodeArgs})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	cl, err := client.New(client.Config{Addr: l.Addr().String(), MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	exec, err := b2w.NewRemoteExecutor(context.Background(), cl)
	if err != nil {
		t.Fatal(err)
	}

	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 50
	}
	series := workload.NewSeries(time.Now(), time.Minute, vals)
	d := &b2w.Driver{Exec: exec, Spec: spec, Seed: 3}
	stats, err := d.Run(context.Background(), series, 10*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival generation is deterministic, so every arrival must be
	// accounted for as executed, failed, refused, or shed. How many actually
	// complete depends on machine speed (the race detector alone costs ~10×),
	// so the completion floor is deliberately modest — transport health is
	// pinned by the zero-transport-errors check, not by throughput.
	attempted := stats.Executed + stats.Failed + stats.Refused + stats.Shed
	if attempted < 300 {
		t.Fatalf("only %d transactions attempted over the wire", attempted)
	}
	total := stats.Executed + stats.Failed
	if total < 50 {
		t.Fatalf("only %d transactions completed over the wire", total)
	}
	if stats.Failed > total/4 {
		t.Fatalf("%d of %d failed — more than business errors explain", stats.Failed, total)
	}
	if got := cl.Counters().TransportErrors; got != 0 {
		t.Fatalf("%d transport errors over loopback", got)
	}
	sc := srv.Counters()
	if sc.OK == 0 || sc.Requests != sc.OK+sc.TxnErrors {
		t.Fatalf("server counters inconsistent: %+v", sc)
	}
}

// TestShutdownRequested checks the wire shutdown handshake.
func TestShutdownRequested(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.ShutdownRequested():
		t.Fatal("shutdown channel closed before any request")
	default:
	}
	r := httptest.NewRequest(http.MethodPost, wire.PathShutdown, nil)
	w := httptest.NewRecorder()
	srv.handleShutdown(w, r)
	if w.Code != 200 {
		t.Fatalf("shutdown HTTP %d, want 200", w.Code)
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(time.Second):
		t.Fatal("shutdown channel not closed")
	}
}
