// Package server is the P-Store network front end: it serves the storage
// engine over HTTP/1.1, turning the in-process client/engine boundary into
// a real wire. One endpoint executes a single JSON-encoded transaction per
// request; a second carries length-prefixed binary batches whose frames are
// executed concurrently and answered in order (pipelining on the wire).
//
// The engine's overload plane becomes real backpressure here: a request
// refused by admission control or shed by CoDel returns 429, a request that
// expired in a partition queue returns 504, and a request routed to a
// crashed machine returns 503 — each with a machine-readable retry hint
// sized from the destination partition's estimated queueing delay, so
// remote clients can back off exactly as far as the backlog warrants.
// Per-request deadlines propagate from the X-Pstore-Deadline-Ms header into
// ExecuteIDContext, bounding the submission wait on saturated queues.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/recovery"
	"pstore/internal/store"
	"pstore/internal/wire"
)

// ArgsDecoder converts a transaction's raw JSON arguments into the concrete
// Go value its procedure expects (the b2w workload provides one covering
// its nineteen transactions). A nil or empty raw message must decode to
// nil arguments.
type ArgsDecoder func(txn string, raw json.RawMessage) (any, error)

// Config assembles a Server.
type Config struct {
	// Engine is the started storage engine to front. Required.
	Engine *store.Engine
	// DecodeArgs decodes per-transaction arguments. Nil accepts only
	// requests with absent/null args (every argument-bearing request is a
	// bad_request).
	DecodeArgs ArgsDecoder
	// Recorder, when set, receives wire-level rejection counts
	// (CountWireRejected per 429 served) so the serve summary's refused-work
	// line covers the wire.
	Recorder *metrics.Recorder
	// DefaultDeadline applies to requests without a deadline header. Zero
	// means no server-imposed deadline.
	DefaultDeadline time.Duration
	// MaxBatch caps the frames accepted per batch request. Zero means 1024.
	MaxBatch int
	// Info is served as JSON at /v1/info — the place a serving process
	// publishes its trace parameters so a remote load generator can replay
	// exactly the workload the server was provisioned for.
	Info any
	// ReadHeaderTimeout bounds header parsing per connection (connection
	// hygiene against slowloris peers). Zero means 10s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long. Zero
	// means 2 minutes.
	IdleTimeout time.Duration
	// Node, when set, turns this server into one node of a multi-process
	// cluster: the /v1/node/* endpoints are served and transactions for
	// partitions hosted elsewhere are forwarded to their hosting peer.
	Node *NodeConfig
	// Recovery, when set, is surfaced by /v1/healthz: a latched WAL
	// fail-stop error turns the health probe into a 503, so a node that
	// silently lost durability reads as dead to its coordinator. Defaults
	// to Node.Recovery in node mode.
	Recovery *recovery.Manager
}

// Counters are the server's cumulative wire-level counts.
type Counters struct {
	// Requests counts single-transaction requests; Batches counts batch
	// requests and Frames the transaction frames they carried.
	Requests int64
	Batches  int64
	Frames   int64
	// OK counts successful executions; TxnErrors counts procedures that
	// executed and returned an application error (422).
	OK        int64
	TxnErrors int64
	// Rejected429 counts overload refusals served as 429;
	// Deadline504 queue-deadline expiries served as 504; Down503 crashed
	// partitions (and engine shutdown) served as 503; BadRequests malformed
	// or unknown-transaction requests served as 400; Internal everything
	// served as 500.
	Rejected429 int64
	Deadline504 int64
	Down503     int64
	BadRequests int64
	Internal    int64
	// Forwarded counts transactions relayed to their hosting peer
	// (multi-process mode only).
	Forwarded int64
}

// Server fronts one engine. Create with New, run with Serve, stop with
// Shutdown.
type Server struct {
	cfg     Config
	handles map[string]store.TxnID
	httpSrv *http.Server

	mu   sync.Mutex
	addr net.Addr

	shutdownCh   chan struct{}
	shutdownOnce sync.Once

	requests    atomic.Int64
	batches     atomic.Int64
	frames      atomic.Int64
	ok          atomic.Int64
	txnErrors   atomic.Int64
	rejected    atomic.Int64
	deadline504 atomic.Int64
	down503     atomic.Int64
	badRequests atomic.Int64
	internal    atomic.Int64
	forwarded   atomic.Int64

	// fwd relays not-owned transactions to hosting peers in node mode.
	fwd *http.Client

	// repl is the node's replication role and applied-ship position.
	repl replState
}

// New builds a server over a started engine. The engine's transaction
// catalog is snapshotted once — registration is closed after Start, so the
// hot path resolves names against an immutable map.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	s := &Server{
		cfg:        cfg,
		handles:    make(map[string]store.TxnID),
		shutdownCh: make(chan struct{}),
	}
	for id, name := range cfg.Engine.TxnNames() {
		s.handles[name] = store.TxnID(id)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(wire.PathTxn, s.handleTxn)
	mux.HandleFunc(wire.PathBatch, s.handleBatch)
	mux.HandleFunc(wire.PathTxns, s.handleTxns)
	mux.HandleFunc(wire.PathInfo, s.handleInfo)
	mux.HandleFunc(wire.PathHealth, s.handleHealth)
	mux.HandleFunc(wire.PathShutdown, s.handleShutdown)
	if cfg.Node != nil {
		if err := cfg.Node.validate(); err != nil {
			return nil, err
		}
		s.fwd = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 30 * time.Second},
		}
		s.registerNodeHandlers(mux)
		s.repl.replica = cfg.Node.ReplicaOf != ""
		if s.cfg.Recovery == nil {
			s.cfg.Recovery = cfg.Node.Recovery
		}
	}
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s, nil
}

// Serve accepts connections on l until Shutdown. It blocks; a clean
// shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.addr = l.Addr()
	s.mu.Unlock()
	if err := s.httpSrv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Addr returns the listener address once Serve has been called, or nil.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests run to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// ShutdownRequested is closed when a client posts /v1/shutdown — the hook a
// serving process uses to stop after a remote load generator finishes its
// trace.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// Counters snapshots the wire-level counters.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:    s.requests.Load(),
		Batches:     s.batches.Load(),
		Frames:      s.frames.Load(),
		OK:          s.ok.Load(),
		TxnErrors:   s.txnErrors.Load(),
		Rejected429: s.rejected.Load(),
		Deadline504: s.deadline504.Load(),
		Down503:     s.down503.Load(),
		BadRequests: s.badRequests.Load(),
		Internal:    s.internal.Load(),
		Forwarded:   s.forwarded.Load(),
	}
}

// execute runs one wire request through the engine and shapes the wire
// response. It never returns transport errors — every outcome, success or
// failure, is a Response. hops is how many node-to-node forwards the request
// has already taken (0 for a client-originated request).
func (s *Server) execute(ctx context.Context, req wire.Request, hops int) wire.Response {
	if s.isReplica() {
		// A warm replica applies only its primary's shipped WAL; a client
		// transaction executed here would fork the replicated history.
		return s.errResponse(wire.CodeNotOwned,
			"server: node is a warm replica; submit to its primary", downRetryMs)
	}
	if s.isFenced() {
		// A fenced zombie serving writes would fork the history the promoted
		// follower now owns; refuse retryably until the demotion completes
		// and forwarding is rewired.
		return s.errResponse(wire.CodeNotOwned,
			"server: node is fenced pending demotion; submit to the new primary", downRetryMs)
	}
	id, ok := s.handles[req.Txn]
	if !ok {
		return s.failure(req, fmt.Errorf("%w: %q", store.ErrUnknownTxn, req.Txn))
	}
	var args any
	if len(req.Args) > 0 && string(req.Args) != "null" {
		if s.cfg.DecodeArgs == nil {
			return s.errResponse(wire.CodeBadRequest,
				fmt.Sprintf("server: transaction %q sent args but no codec is configured", req.Txn), 0)
		}
		var err error
		if args, err = s.cfg.DecodeArgs(req.Txn, req.Args); err != nil {
			return s.errResponse(wire.CodeBadRequest,
				fmt.Sprintf("server: decoding %q args: %v", req.Txn, err), 0)
		}
	}
	value, err := s.cfg.Engine.ExecuteIDContext(ctx, id, req.Key, args)
	if err != nil {
		// A submission wait cut short by the wire deadline is a deadline
		// outcome to the client, even though the engine counts it as
		// rejected offered load.
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return s.failure(req, fmt.Errorf("%w: %v", store.ErrDeadlineExceeded, err))
		}
		if errors.Is(err, store.ErrNotOwned) && s.cfg.Node != nil {
			return s.forward(ctx, req, hops, err)
		}
		return s.failure(req, err)
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return s.errResponse(wire.CodeInternal,
			fmt.Sprintf("server: encoding %q result: %v", req.Txn, err), 0)
	}
	s.ok.Add(1)
	return wire.Response{Status: 200, Value: raw}
}

// failure maps an engine error onto the wire: stable code, HTTP status,
// and a retry hint for retryable refusals sized from the destination
// partition's current queueing estimate.
func (s *Server) failure(req wire.Request, err error) wire.Response {
	code := wire.CodeOf(err)
	var retry int64
	switch code {
	case wire.CodeOverload:
		retry = s.retryHintMs(req.Key)
	case wire.CodePartitionDown, wire.CodeStopped:
		// No queue estimate predicts a machine recovery; a coarse constant
		// keeps clients from hammering a dead partition.
		retry = downRetryMs
	}
	return s.errResponse(code, err.Error(), retry)
}

// downRetryMs is the retry hint for requests refused because their
// partition (or the whole engine) is down.
const downRetryMs = 250

// retryHintMs estimates how long a refused submission should wait before
// retrying: the destination partition's sojourn EWMA, floored at 1ms so a
// hint is always actionable.
func (s *Server) retryHintMs(key string) int64 {
	d := s.cfg.Engine.QueueSojourn(s.cfg.Engine.PartitionOfKey(key))
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// errResponse builds a failure Response and files it in the wire counters.
func (s *Server) errResponse(code, msg string, retryMs int64) wire.Response {
	switch code {
	case wire.CodeOverload:
		s.rejected.Add(1)
		if s.cfg.Recorder != nil {
			s.cfg.Recorder.CountWireRejected()
		}
	case wire.CodeDeadline:
		s.deadline504.Add(1)
	case wire.CodePartitionDown, wire.CodeStopped, wire.CodeNotOwned:
		s.down503.Add(1)
	case wire.CodeUnknownTxn, wire.CodeBadRequest:
		s.badRequests.Add(1)
	case wire.CodeTxn:
		s.txnErrors.Add(1)
	default:
		s.internal.Add(1)
	}
	return wire.Response{Status: wire.StatusOf(code), Code: code, Error: msg, RetryAfterMs: retryMs}
}

// requestContext applies the wire deadline: the header if present, the
// configured default otherwise. The returned cancel must always be called.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get(wire.HeaderDeadlineMs); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("server: bad %s header %q", wire.HeaderDeadlineMs, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// writeResponse emits one Response as a standalone HTTP reply, carrying the
// retry hint in headers as well as the body so even header-only clients
// (curl -i) see it.
func writeResponse(w http.ResponseWriter, resp wire.Response) {
	w.Header().Set("Content-Type", "application/json")
	if resp.RetryAfterMs > 0 {
		w.Header().Set(wire.HeaderRetryAfterMs, strconv.FormatInt(resp.RetryAfterMs, 10))
		secs := (resp.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(resp.Status)
	_ = json.NewEncoder(w).Encode(resp)
}

// handleTxn executes one transaction per request.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	var req wire.Request
	if err := json.NewDecoder(io.LimitReader(r.Body, wire.MaxFrame)).Decode(&req); err != nil {
		writeResponse(w, s.errResponse(wire.CodeBadRequest, fmt.Sprintf("server: decoding request: %v", err), 0))
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeResponse(w, s.errResponse(wire.CodeBadRequest, err.Error(), 0))
		return
	}
	defer cancel()
	writeResponse(w, s.execute(ctx, req, forwardHops(r)))
}

// forwardHops reads the forwarding hop count a peer node stamped on the
// request (0 when absent or unparsable — i.e. client-originated).
func forwardHops(r *http.Request) int {
	h := r.Header.Get(wire.HeaderForwarded)
	if h == "" {
		return 0
	}
	n, err := strconv.Atoi(h)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// handleBatch executes a length-prefixed batch: frames are decoded
// sequentially, executed concurrently, and answered in frame order — the
// wire-level pipelining that lets one connection keep many partitions busy.
// Frames share the request's deadline. The response is always HTTP 200;
// per-frame outcomes travel in each frame's embedded status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	s.batches.Add(1)
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeResponse(w, s.errResponse(wire.CodeBadRequest, err.Error(), 0))
		return
	}
	defer cancel()

	var reqs []wire.Request
	for {
		if len(reqs) >= s.cfg.MaxBatch {
			writeResponse(w, s.errResponse(wire.CodeBadRequest,
				fmt.Sprintf("server: batch exceeds %d frames", s.cfg.MaxBatch), 0))
			return
		}
		var req wire.Request
		if err := wire.DecodeFrame(r.Body, &req); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			writeResponse(w, s.errResponse(wire.CodeBadRequest,
				fmt.Sprintf("server: decoding batch frame %d: %v", len(reqs), err), 0))
			return
		}
		reqs = append(reqs, req)
	}
	s.frames.Add(int64(len(reqs)))

	hops := forwardHops(r)
	resps := make([]wire.Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.execute(ctx, reqs[i], hops)
		}(i)
	}
	wg.Wait()

	w.Header().Set("Content-Type", wire.ContentTypeBatch)
	w.WriteHeader(http.StatusOK)
	for i := range resps {
		if err := wire.EncodeFrame(w, resps[i]); err != nil {
			return // connection gone; nothing left to report
		}
	}
}

// handleTxns serves the transaction catalog in dense-id order.
func (s *Server) handleTxns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Txns []string `json:"txns"`
	}{Txns: s.cfg.Engine.TxnNames()})
}

// handleInfo serves the configured info payload (or an empty object).
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	info := s.cfg.Info
	if info == nil {
		info = struct{}{}
	}
	_ = json.NewEncoder(w).Encode(info)
}

// handleHealth reports liveness. A process whose WAL has latched a
// fail-stop error still serves from memory, but it can no longer promise
// durability — it reports unhealthy so probes (and the coordinator's
// failure detector) treat it as dead.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if rm := s.cfg.Recovery; rm != nil {
		if err := rm.Err(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(struct {
				OK    bool   `json:"ok"`
				Error string `json:"error"`
			}{OK: false, Error: err.Error()})
			return
		}
	}
	fmt.Fprintln(w, `{"ok":true}`)
}

// handleShutdown signals the serving process to stop (it still owns the
// actual Shutdown call, so in-flight work drains first).
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "server: POST required", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"ok":true}`)
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
}
