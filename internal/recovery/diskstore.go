package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pstore/internal/store"
	"pstore/internal/wal"
)

// diskStore is the durable LogStore: command records go through the WAL's
// group commit (Append returns only after its batch is fsynced), checkpoint
// images spill to per-bucket files, and Checkpoint compacts the log.
//
// Records travel by transaction *name*, not dense TxnID — handles are
// assigned in registration order and need not survive a restart. The
// id<->name catalog is resolved lazily from the engine on first use,
// because transactions are registered after the manager (and its store) is
// constructed.
type diskStore struct {
	eng *store.Engine
	log *wal.Log

	// heads is each bucket's last-assigned LSN; bases each bucket's image
	// LSN. One executor appends per bucket, but installs happen on the
	// manager goroutine, so both are atomics.
	heads []atomic.Uint64
	bases []atomic.Uint64

	records atomic.Int64

	// failErr latches the first fatal append error; once set, Append becomes
	// a no-op (the engine keeps serving from memory, durability is gone and
	// the operator learns via Err).
	failMu  sync.Mutex
	failErr error

	nameOnce sync.Once
	names    []string // dense id -> name
}

func newDiskStore(eng *store.Engine, log *wal.Log, rec *wal.Recovered) *diskStore {
	buckets := eng.Config().Buckets
	s := &diskStore{
		eng:   eng,
		log:   log,
		heads: make([]atomic.Uint64, buckets),
		bases: make([]atomic.Uint64, buckets),
	}
	for b, br := range rec.Buckets {
		s.heads[b].Store(br.Head)
		s.bases[b].Store(br.Base)
		s.records.Add(int64(len(br.Tail)))
	}
	return s
}

// resolve returns the name of a dense handle, snapshotting the engine's
// catalog on first use (registration is complete by the time the first
// transaction executes).
func (s *diskStore) resolve(id store.TxnID) string {
	s.nameOnce.Do(func() { s.names = s.eng.TxnNames() })
	if int(id) < 0 || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

func (s *diskStore) fail(err error) {
	s.failMu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.failMu.Unlock()
}

func (s *diskStore) Err() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

func (s *diskStore) Append(bucket int, id store.TxnID, key string, args any) {
	if bucket < 0 || bucket >= len(s.heads) || s.Err() != nil {
		return
	}
	lsn := s.heads[bucket].Add(1)
	err := s.log.Append(wal.Record{
		Bucket: bucket, LSN: lsn, Txn: s.resolve(id), Key: key, Args: args,
	})
	if err != nil {
		s.fail(err)
		return
	}
	s.records.Add(1)
}

func (s *diskStore) Head(bucket int) uint64 {
	if bucket < 0 || bucket >= len(s.heads) {
		return 0
	}
	return s.heads[bucket].Load()
}

func (s *diskStore) Install(snap store.BucketSnapshot) {
	err := s.log.WriteImage(&wal.Image{
		Bucket: snap.Bucket,
		Rows:   snap.Rows,
		LSN:    snap.LSN,
		Tables: snap.Tables,
	})
	if err != nil {
		s.fail(err)
		return
	}
	if base := s.bases[snap.Bucket].Load(); snap.LSN > base {
		s.bases[snap.Bucket].Store(snap.LSN)
		s.records.Add(-int64(snap.LSN - base))
	}
}

func (s *diskStore) Load(buckets []int) ([]store.BucketSnapshot, []store.ReplayCommand, error) {
	tails, err := s.log.LoadTails(buckets)
	if err != nil {
		return nil, nil, err
	}
	var snaps []store.BucketSnapshot
	var cmds []store.ReplayCommand
	for _, b := range buckets {
		img, ok, err := s.log.LoadImage(b)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			snaps = append(snaps, store.BucketSnapshot{
				Bucket: b, Rows: img.Rows, LSN: img.LSN, Tables: img.Tables,
			})
		}
		for _, r := range tails[b] {
			id, okID := s.eng.Handle(r.Txn)
			if !okID {
				return nil, nil, fmt.Errorf("recovery: log names unregistered transaction %q", r.Txn)
			}
			cmds = append(cmds, store.ReplayCommand{Bucket: b, ID: id, Key: r.Key, Args: r.Args})
		}
	}
	return snaps, cmds, nil
}

func (s *diskStore) LogPlan(plan []int32, active int) {
	if err := s.log.LogPlan(plan, active); err != nil {
		s.fail(err)
	}
}

func (s *diskStore) AdvanceHead(bucket int, lsn uint64) {
	if bucket < 0 || bucket >= len(s.heads) {
		return
	}
	for {
		cur := s.heads[bucket].Load()
		if lsn <= cur || s.heads[bucket].CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// truncate lowers the per-bucket LSN counters after the WAL discarded an
// unshipped suffix. Images are untouched — TruncateTo refuses whenever an
// image had folded a discarded record in, so bases stay below the new heads.
func (s *diskStore) truncate(res wal.TruncateResult) {
	for b, head := range res.Heads {
		if b >= 0 && b < len(s.heads) {
			s.heads[b].Store(head)
		}
	}
	s.records.Add(-int64(res.DiscardedRecords))
}

// reset zeroes every durability counter after a full WAL reset; the next
// baseline install re-seeds heads and bases from the primary's snapshot.
func (s *diskStore) reset() {
	for b := range s.heads {
		s.heads[b].Store(0)
		s.bases[b].Store(0)
	}
	s.records.Store(0)
}

func (s *diskStore) Epoch() uint64           { return s.log.Epoch() }
func (s *diskStore) SetEpoch(e uint64) error { return s.log.SetEpoch(e) }

func (s *diskStore) Checkpoint() error { return s.log.Checkpoint() }
func (s *diskStore) Records() int64    { return s.records.Load() }
func (s *diskStore) Bytes() int64      { return s.log.DiskBytes() }
func (s *diskStore) Close() error      { return s.log.Close() }
