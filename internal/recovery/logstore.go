package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pstore/internal/store"
)

// LogStore is the durability substrate behind the Manager: the per-bucket
// command log plus the bucket checkpoint images. Two implementations exist —
// memStore, the fast in-process default and the deterministic oracle the
// disk path is tested against, and diskStore, a segmented on-disk WAL
// (internal/wal) enabled by Config.DataDir.
type LogStore interface {
	// Append logs one executed command and assigns it the bucket's next LSN.
	// Called on partition executor goroutines, after the procedure ran and
	// before the submitter is acknowledged — for a durable store, the record
	// is on disk when Append returns. One executor is the sole appender for
	// the buckets it owns, so per-bucket calls are serial.
	Append(bucket int, id store.TxnID, key string, args any)
	// Head returns the bucket's last-assigned LSN.
	Head(bucket int) uint64
	// Install makes a bucket snapshot the bucket's recovery baseline and
	// releases the command records it covers.
	Install(s store.BucketSnapshot)
	// Load returns the restore inputs for the given buckets — each bucket's
	// baseline image (if any) and its command tail beyond the image, per-
	// bucket in LSN order — reading from the store's authoritative medium
	// (disk, for the disk store; the restore path is only as honest as this
	// read). The returned structures are owned by the caller; replay mutates
	// them.
	Load(buckets []int) ([]store.BucketSnapshot, []store.ReplayCommand, error)
	// LogPlan records a bucket-plan change (no-op in memory — a live process
	// always knows its plan; a cold start must recover it).
	LogPlan(plan []int32, active int)
	// Checkpoint marks the end of a checkpoint round, after every Install:
	// the disk store folds the plan into its manifest and compacts segments.
	Checkpoint() error
	// Records returns the retained command-record count — the replay debt a
	// crash right now would incur. It reads a counter, never the log itself,
	// so stats paths cannot contend with Append.
	Records() int64
	// Bytes returns the on-disk log volume (0 for the in-memory store), the
	// same way: a counter, not a scan.
	Bytes() int64
	// Err returns the store's latched fatal error, if any. Once an append
	// fails the store stops accepting records and reports it here.
	Err() error
	// AdvanceHead raises a bucket's last-assigned LSN (never lowers it). A
	// replica bootstrapping from a primary's snapshot uses it to continue
	// the primary's LSN numbering: Install raises only the recovery base,
	// but subsequent local appends must also start above the snapshot LSN.
	AdvanceHead(bucket int, lsn uint64)
	// Epoch returns the replication fencing term; SetEpoch raises it (for a
	// durable store, persisted before returning). Lowering the term is an
	// error.
	Epoch() uint64
	SetEpoch(e uint64) error
	// Close releases the store's resources.
	Close() error
}

// Command is one command-log record: the input of one executed procedure.
type Command struct {
	// LSN is the bucket-local sequence number, starting at 1.
	LSN uint64
	// ID is the procedure's dense engine handle.
	ID store.TxnID
	// Key and Args are the procedure's original input.
	Key  string
	Args any
}

// ckptImage is one bucket's latest checkpoint: its tables (row values
// aliased, immutable by convention) and row count as of the covered LSN.
type ckptImage struct {
	rows   int
	tables map[string]map[string]any
}

// bucketLog is one bucket's recovery state: its command tail and latest
// checkpoint image. base is the LSN the image covers; cmds[i] has LSN
// base+1+i. The mutex makes appends (executor goroutines) safe against
// checkpoint truncation and restore reads (manager goroutine).
type bucketLog struct {
	mu   sync.Mutex
	head uint64
	base uint64
	cmds []Command
	ckpt *ckptImage
}

// memStore is the in-memory LogStore: the recovery behavior the engine has
// always had, and the oracle disk-backed recovery must match byte for byte.
type memStore struct {
	logs    []bucketLog
	records atomic.Int64
	epoch   atomic.Uint64
}

func newMemStore(buckets int) *memStore {
	return &memStore{logs: make([]bucketLog, buckets)}
}

func (m *memStore) Append(bucket int, id store.TxnID, key string, args any) {
	if bucket < 0 || bucket >= len(m.logs) {
		return
	}
	l := &m.logs[bucket]
	l.mu.Lock()
	l.head++
	l.cmds = append(l.cmds, Command{LSN: l.head, ID: id, Key: key, Args: args})
	l.mu.Unlock()
	m.records.Add(1)
}

func (m *memStore) Head(bucket int) uint64 {
	if bucket < 0 || bucket >= len(m.logs) {
		return 0
	}
	l := &m.logs[bucket]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

func (m *memStore) Install(s store.BucketSnapshot) {
	l := &m.logs[s.Bucket]
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.LSN > l.base {
		drop := int(s.LSN - l.base)
		if drop > len(l.cmds) {
			drop = len(l.cmds)
		}
		l.cmds = append([]Command(nil), l.cmds[drop:]...)
		l.base = s.LSN
		m.records.Add(int64(-drop))
	}
	l.ckpt = &ckptImage{rows: s.Rows, tables: s.Tables}
}

func (m *memStore) Load(buckets []int) ([]store.BucketSnapshot, []store.ReplayCommand, error) {
	var snaps []store.BucketSnapshot
	var cmds []store.ReplayCommand
	for _, b := range buckets {
		l := &m.logs[b]
		l.mu.Lock()
		if l.ckpt != nil {
			snaps = append(snaps, store.BucketSnapshot{
				Bucket: b,
				Rows:   l.ckpt.rows,
				LSN:    l.base,
				Tables: cloneTables(l.ckpt.tables),
			})
		}
		for _, c := range l.cmds {
			cmds = append(cmds, store.ReplayCommand{Bucket: b, ID: c.ID, Key: c.Key, Args: c.Args})
		}
		l.mu.Unlock()
	}
	return snaps, cmds, nil
}

func (m *memStore) AdvanceHead(bucket int, lsn uint64) {
	if bucket < 0 || bucket >= len(m.logs) {
		return
	}
	l := &m.logs[bucket]
	l.mu.Lock()
	if lsn > l.head {
		l.head = lsn
	}
	l.mu.Unlock()
}

func (m *memStore) Epoch() uint64 { return m.epoch.Load() }

func (m *memStore) SetEpoch(e uint64) error {
	for {
		cur := m.epoch.Load()
		if e < cur {
			return fmt.Errorf("recovery: epoch %d below current %d", e, cur)
		}
		if m.epoch.CompareAndSwap(cur, e) {
			return nil
		}
	}
}

func (m *memStore) LogPlan([]int32, int) {}
func (m *memStore) Checkpoint() error    { return nil }
func (m *memStore) Records() int64       { return m.records.Load() }
func (m *memStore) Bytes() int64         { return 0 }
func (m *memStore) Err() error           { return nil }
func (m *memStore) Close() error         { return nil }

// cloneTables copies the map structure of a checkpoint image, aliasing row
// values. Replay mutates the installed maps, and the baseline may serve
// later restores, so each restore gets its own copy.
func cloneTables(tables map[string]map[string]any) map[string]map[string]any {
	out := make(map[string]map[string]any, len(tables))
	for tn, t := range tables {
		ct := make(map[string]any, len(t))
		for k, v := range t {
			ct[k] = v
		}
		out[tn] = ct
	}
	return out
}
