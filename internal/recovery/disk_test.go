package recovery_test

import (
	"fmt"
	"testing"

	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
)

// runRestoreScript is a fixed deterministic workload ending in a crash and
// restore: load, checkpoint, overwrite a third of the keys (command tail),
// delete a few, crash machine 1, restore it. Returns the restore stats with
// the wall-clock field zeroed, so two runs compare byte for byte.
func runRestoreScript(t *testing.T, rcfg recovery.Config) (recovery.RestoreStats, *store.Engine) {
	t.Helper()
	e, m := testEngineCfg(t, 2, 2, rcfg)
	const keys = 300
	load(t, e, keys)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i += 3 {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i*10); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < keys; i += 50 {
		if _, err := e.Execute("del", fmt.Sprintf("k-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	st, err := m.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	st.Downtime = 0
	st.ReplayWall = 0
	return st, e
}

// TestDiskRestoreMatchesOracle runs the restore script against the
// in-memory oracle and against a disk-backed store (real filesystem), and
// requires byte-for-byte identical RestoreStats plus identical recovered
// data. This is the disk path's correctness gate: replaying from segment
// files and image files must be indistinguishable from replaying from
// process memory.
func TestDiskRestoreMatchesOracle(t *testing.T) {
	oracle, eMem := runRestoreScript(t, recovery.Config{})
	disk, eDisk := runRestoreScript(t, recovery.Config{DataDir: t.TempDir()})
	if disk != oracle {
		t.Fatalf("disk RestoreStats %+v != oracle %+v", disk, oracle)
	}
	if got, want := eDisk.TotalRows(), eMem.TotalRows(); got != want {
		t.Fatalf("disk TotalRows = %d, oracle %d", got, want)
	}
	const keys = 300
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k-%d", i)
		vm, errM := eMem.Execute("get", k, nil)
		vd, errD := eDisk.Execute("get", k, nil)
		if (errM == nil) != (errD == nil) || vm != vd {
			t.Fatalf("%s: disk (%v, %v) vs oracle (%v, %v)", k, vd, errD, vm, errM)
		}
	}
}

// TestColdStartRebuildsEngine is the full death-and-rebirth cycle: run a
// workload with migration against a data directory, close the process's
// state, then cold-start a brand-new engine from the directory alone and
// require the exact plan, active-machine count, row counts and values.
func TestColdStartRebuildsEngine(t *testing.T) {
	dir := t.TempDir()
	const keys = 400

	// Life 1: load, checkpoint, migrate (plan change hits the log), keep
	// writing past the checkpoint, then die without any shutdown courtesy.
	e1, m1 := testEngineCfg(t, 3, 2, recovery.Config{DataDir: dir})
	load(t, e1, keys)
	if _, err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ex, err := squall.NewExecutor(e1, chaosSquallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(2, 3, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i += 2 {
		if _, err := e1.Execute("put", fmt.Sprintf("k-%d", i), i+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Err(); err != nil {
		t.Fatalf("life 1 latched a log error: %v", err)
	}
	wantPlan := e1.Plan()
	wantActive := e1.ActiveMachines()
	wantRows := e1.TotalRows()
	e1.Stop()
	m1.Close()

	// Life 2: a fresh process over the same directory.
	e2, m2 := testEngineCfg(t, 3, 2, recovery.Config{DataDir: dir})
	if !m2.HasColdState() {
		t.Fatal("HasColdState = false over a populated directory")
	}
	st, err := m2.ColdStart()
	if err != nil {
		t.Fatalf("ColdStart: %v", err)
	}
	if st.Machines != 3 || st.Partitions != 6 {
		t.Fatalf("ColdStart rebuilt %d machines / %d partitions, want 3/6", st.Machines, st.Partitions)
	}
	if !st.PlanRecovered {
		t.Fatal("ColdStart did not recover a plan")
	}
	if st.Replayed == 0 {
		t.Fatal("ColdStart replayed nothing despite a post-checkpoint tail")
	}
	if st.LogBytes == 0 {
		t.Fatal("ColdStart reports zero on-disk log bytes")
	}
	if !planEqual(e2.Plan(), wantPlan) {
		t.Fatal("cold-started plan differs from the plan the process died with")
	}
	if got := e2.ActiveMachines(); got != wantActive {
		t.Fatalf("ActiveMachines = %d, want %d", got, wantActive)
	}
	if got := e2.TotalRows(); got != wantRows {
		t.Fatalf("TotalRows = %d, want %d", got, wantRows)
	}
	checkValues(t, e2, keys, func(i int) any {
		if i%2 == 0 {
			return i + 7
		}
		return i
	})

	// The reborn engine is live: it accepts writes and can checkpoint its
	// recovered state as the new baseline.
	if _, err := e2.Execute("put", "k-0", 12345); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Err(); err != nil {
		t.Fatalf("life 2 latched a log error: %v", err)
	}
}

// TestColdStartSurvivesRestartChain runs three lives back to back, writing
// in each, proving LSN continuity and compaction survive repeated cold
// starts.
func TestColdStartSurvivesRestartChain(t *testing.T) {
	dir := t.TempDir()
	const keys = 120
	want := make(map[int]int, keys)

	for life := 0; life < 3; life++ {
		e, m := testEngineCfg(t, 2, 2, recovery.Config{DataDir: dir})
		if life == 0 {
			load(t, e, keys)
			for i := 0; i < keys; i++ {
				want[i] = i
			}
		} else {
			if !m.HasColdState() {
				t.Fatalf("life %d: no cold state", life)
			}
			if _, err := m.ColdStart(); err != nil {
				t.Fatalf("life %d: ColdStart: %v", life, err)
			}
		}
		checkValues(t, e, keys, func(i int) any { return want[i] })
		// Overwrite a rotating slice of keys; checkpoint on even lives so
		// some lives die with a tail, some with fresh images.
		for i := life; i < keys; i += 3 {
			v := i*100 + life
			if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), v); err != nil {
				t.Fatal(err)
			}
			want[i] = v
		}
		if life%2 == 0 {
			if _, err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Err(); err != nil {
			t.Fatalf("life %d: log error: %v", life, err)
		}
		e.Stop()
		m.Close()
	}

	e, m := testEngineCfg(t, 2, 2, recovery.Config{DataDir: dir})
	if _, err := m.ColdStart(); err != nil {
		t.Fatal(err)
	}
	checkValues(t, e, keys, func(i int) any { return want[i] })
}

// TestLogSizeCounters pins the satellite fix: LogSize and LogBytes read
// atomic counters and track append/checkpoint activity on both stores.
func TestLogSizeCounters(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  recovery.Config
	}{
		{"mem", recovery.Config{}},
		{"disk", recovery.Config{DataDir: ""}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "disk" {
				tc.cfg.DataDir = t.TempDir()
			}
			e, m := testEngineCfg(t, 2, 2, tc.cfg)
			load(t, e, 150)
			if got := m.LogSize(); got != 150 {
				t.Fatalf("LogSize after load = %d, want 150", got)
			}
			if tc.name == "disk" && m.LogBytes() == 0 {
				t.Fatal("disk LogBytes = 0 after 150 appends")
			}
			if _, err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if got := m.LogSize(); got != 0 {
				t.Fatalf("LogSize after checkpoint = %d, want 0", got)
			}
			if _, err := e.Execute("put", "k-0", 1); err != nil {
				t.Fatal(err)
			}
			if got := m.LogSize(); got != 1 {
				t.Fatalf("LogSize after one more put = %d, want 1", got)
			}
		})
	}
}
