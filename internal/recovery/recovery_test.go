// The recovery tests live in an external package: the crash-chaos suite
// drives migration through internal/squall, whose transport layer imports
// recovery — an in-package test would close an import cycle.
package recovery_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pstore/internal/hash"
	"pstore/internal/metrics"
	"pstore/internal/recovery"
	"pstore/internal/store"
)

// testEngine builds a started engine with machines active machines (2
// partitions each), 240 buckets, "put"/"get" procedures and an attached
// in-memory recovery manager. The manager attaches before any data loads,
// as required.
func testEngine(t *testing.T, maxMachines, initial int) (*store.Engine, *recovery.Manager) {
	t.Helper()
	return testEngineCfg(t, maxMachines, initial, recovery.Config{})
}

// testEngineCfg is testEngine with an explicit recovery configuration — the
// data-dir axis: the same scripts run against the in-memory oracle and the
// disk-backed store.
func testEngineCfg(t *testing.T, maxMachines, initial int, rcfg recovery.Config) (*store.Engine, *recovery.Manager) {
	t.Helper()
	cfg := store.Config{
		MaxMachines:          maxMachines,
		InitialMachines:      initial,
		PartitionsPerMachine: 2,
		Buckets:              240,
		QueueCapacity:        256,
	}
	e, err := store.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("T", tx.Key, tx.Args)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("get", func(tx *store.Tx) (any, error) {
		v, _, err := tx.Get("T", tx.Key)
		return v, err
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("del", func(tx *store.Tx) (any, error) {
		return nil, tx.Delete("T", tx.Key)
	}); err != nil {
		t.Fatal(err)
	}
	m, err := recovery.New(e, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	e.Start()
	t.Cleanup(e.Stop)
	return e, m
}

func load(t *testing.T, e *store.Engine, keys int) {
	t.Helper()
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatalf("loading k-%d: %v", i, err)
		}
	}
}

func checkValues(t *testing.T, e *store.Engine, keys int, val func(int) any) {
	t.Helper()
	for i := 0; i < keys; i++ {
		v, err := e.Execute("get", fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatalf("get k-%d: %v", i, err)
		}
		if want := val(i); v != want {
			t.Fatalf("k-%d = %v, want %v", i, v, want)
		}
	}
}

// downKey finds a key (and its bucket) whose bucket lives on the given
// machine.
func downKey(t *testing.T, e *store.Engine, machine, keys int) (string, int) {
	t.Helper()
	parts := map[int]bool{}
	for _, p := range e.PartitionsOfMachine(machine) {
		parts[p] = true
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k-%d", i)
		b := hash.Partition(k, e.Config().Buckets)
		if parts[e.OwnerOf(b)] {
			return k, b
		}
	}
	t.Fatal("no key maps to the machine")
	return "", 0
}

// TestCheckpointReplayExactState is the core tentpole property: checkpoint,
// keep writing, crash, restore — the machine comes back with the exact
// pre-crash state (checkpoint image + replayed tail).
func TestCheckpointReplayExactState(t *testing.T) {
	e, m := testEngine(t, 2, 2)
	const keys = 300
	load(t, e, keys)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the command tail only.
	for i := 0; i < keys; i += 3 {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	st, err := m.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed == 0 {
		t.Fatal("restore replayed nothing; the command tail was lost")
	}
	checkValues(t, e, keys, func(i int) any {
		if i%3 == 0 {
			return i * 10
		}
		return i
	})
	if got := e.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
}

// TestRestoreWithoutCheckpoint proves a bucket with no checkpoint image is
// rebuilt from its full command history.
func TestRestoreWithoutCheckpoint(t *testing.T) {
	e, m := testEngine(t, 2, 2)
	const keys = 200
	load(t, e, keys)
	if err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	st, err := m.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != 0 {
		t.Fatalf("restore used %d snapshots, want 0 (never checkpointed)", st.Snapshots)
	}
	checkValues(t, e, keys, func(i int) any { return i })
	if got := e.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
}

// TestCheckpointTruncatesLog pins the log-reclamation contract: a checkpoint
// covers all prior commands, so they are dropped.
func TestCheckpointTruncatesLog(t *testing.T) {
	e, m := testEngine(t, 2, 1)
	load(t, e, 150)
	if m.LogSize() != 150 {
		t.Fatalf("LogSize = %d, want 150", m.LogSize())
	}
	n, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("checkpoint installed no bucket images")
	}
	if m.LogSize() != 0 {
		t.Fatalf("LogSize = %d after checkpoint, want 0", m.LogSize())
	}
	// Deletions are commands too: they append, not shrink, until the next
	// checkpoint.
	if _, err := e.Execute("del", "k-0", nil); err != nil {
		t.Fatal(err)
	}
	if m.LogSize() != 1 {
		t.Fatalf("LogSize = %d after delete, want 1", m.LogSize())
	}
}

// TestRecoverMigratedBuckets proves a bucket's recovery state travels with
// it: data written while the bucket lived on machine 0, then migrated to
// machine 1, is rebuilt on machine 1 after its crash.
func TestRecoverMigratedBuckets(t *testing.T) {
	e, m := testEngine(t, 2, 1)
	const keys = 200
	load(t, e, keys)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Move partition 0's buckets to partition 2 (machine 1) directly.
	buckets := e.OwnedBuckets(0)
	if _, err := e.MoveBuckets(buckets, 0, 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SetActiveMachines(2); err != nil {
		t.Fatal(err)
	}
	// Write on the migrated buckets at their new home.
	for i := 0; i < keys; i++ {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i+1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(1); err != nil {
		t.Fatal(err)
	}
	checkValues(t, e, keys, func(i int) any { return i + 1000 })
	if got := e.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
}

// TestDownSemantics pins the fencing contract: transactions against a down
// machine fail with ErrPartitionDown, execute nothing (no access counting),
// and double-crash / restore-of-live are refused.
func TestDownSemantics(t *testing.T) {
	e, m := testEngine(t, 2, 2)
	const keys = 200
	load(t, e, keys)
	key, bucket := downKey(t, e, 1, keys)
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	before := e.BucketAccesses(false)[bucket]
	for i := 0; i < 5; i++ {
		if _, err := e.Execute("get", key, nil); !errors.Is(err, store.ErrPartitionDown) {
			t.Fatalf("get on down machine: err = %v, want ErrPartitionDown", err)
		}
	}
	if after := e.BucketAccesses(false)[bucket]; after != before {
		t.Fatalf("down machine executed transactions: accesses %d -> %d", before, after)
	}
	if err := m.Crash(1); err == nil {
		t.Fatal("double crash accepted")
	}
	if _, err := m.Restore(0); err == nil {
		t.Fatal("restore of a live machine accepted")
	}
	if !e.MachineDown(1) {
		t.Fatal("machine 1 should be down")
	}
	if got := e.DownMachines(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownMachines = %v, want [1]", got)
	}
	if _, err := m.Restore(1); err != nil {
		t.Fatal(err)
	}
	if e.MachineDown(1) {
		t.Fatal("machine 1 should be up after restore")
	}
	checkValues(t, e, keys, func(i int) any { return i })
}

// TestStatsAndRecorder checks the manager's counters and their mirror in the
// metrics recorder.
func TestStatsAndRecorder(t *testing.T) {
	e, m := testEngine(t, 2, 2)
	rec, err := metrics.NewRecorder(time.Now(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRecorder(rec)
	load(t, e, 100)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Crashes != 1 || st.Recoveries != 1 || st.Checkpoints != 1 {
		t.Fatalf("Stats = %+v, want 1 crash / 1 recovery / 1 checkpoint", st)
	}
	if st.ReplayedCommands == 0 || st.MaxReplayLag == 0 {
		t.Fatalf("Stats = %+v, want replayed commands and max lag > 0", st)
	}
	if st.Downtime <= 0 {
		t.Fatalf("Downtime = %v, want > 0", st.Downtime)
	}
	rc := rec.RecoveryCounters()
	if rc.Crashes != 1 || rc.Recoveries != 1 || rc.Checkpoints != 1 {
		t.Fatalf("RecoveryCounters = %+v, want 1/1/1", rc)
	}
	if rc.ReplayedCommands != st.ReplayedCommands || rc.MaxReplayLag != st.MaxReplayLag {
		t.Fatalf("recorder mirror %+v diverges from manager stats %+v", rc, st)
	}
}
