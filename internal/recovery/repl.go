package recovery

import (
	"errors"

	"pstore/internal/store"
	"pstore/internal/wal"
)

// Replication surface: the Manager exposes the durable WAL's ship plane
// (cursor reads, retention pinning, lag) and the epoch/baseline state the
// ship protocol is fenced with. Shipping requires a durable store — a
// memory-backed manager has no byte-addressable record stream to ship.

// ErrNotDurable is returned by ship operations on a memory-backed manager.
var ErrNotDurable = errors.New("recovery: replication requires a durable store (-data-dir)")

// Durable reports whether the manager has an on-disk WAL to ship from.
func (m *Manager) Durable() bool { return m.wal != nil }

// Epoch returns the replication fencing term.
func (m *Manager) Epoch() uint64 { return m.log.Epoch() }

// SetEpoch raises the fencing term (persisted in the WAL manifest for a
// durable store). Lowering it is an error — that is the zombie case.
func (m *Manager) SetEpoch(e uint64) error { return m.log.SetEpoch(e) }

// BaselineSeq returns the out-of-WAL install counter ship batches carry.
func (m *Manager) BaselineSeq() uint64 { return m.baseline.Load() }

// PlanSeq returns the WAL's current plan sequence (0 when not durable) —
// the skip threshold a freshly synced follower applies to shipped plan
// records.
func (m *Manager) PlanSeq() uint64 {
	if m.wal == nil {
		return 0
	}
	return m.wal.PlanSeq()
}

// ShipEnd returns the cursor addressing the durable end of the WAL.
func (m *Manager) ShipEnd() (wal.ShipCursor, error) {
	if m.wal == nil {
		return wal.ShipCursor{}, ErrNotDurable
	}
	return m.wal.ShipEnd(), nil
}

// ReadShip returns up to max durable records beyond the cursor and the
// cursor after them. wal.ErrShipGone means the cursor's records were
// compacted and the follower must full-resync.
func (m *Manager) ReadShip(cur wal.ShipCursor, max int) ([]wal.ShipRecord, wal.ShipCursor, error) {
	if m.wal == nil {
		return nil, cur, ErrNotDurable
	}
	return m.wal.ReadShip(cur, max)
}

// ShipLag returns the durable bytes beyond the cursor.
func (m *Manager) ShipLag(cur wal.ShipCursor) int64 {
	if m.wal == nil {
		return 0
	}
	return m.wal.ShipLag(cur)
}

// PinShip protects segments at or beyond seg from compaction while a
// follower catches up. seg <= 0 clears the pin.
func (m *Manager) PinShip(seg int) {
	if m.wal != nil {
		m.wal.PinShip(seg)
	}
}

// TruncateShip discards the durable suffix past the divergence cursor — the
// records a fenced ex-primary acked under its old term that the promoted
// follower never saw — and lowers the per-bucket LSN counters to match, so
// shipped records applied afterwards continue the survivor's numbering.
// wal.ErrNeedResync means surgical truncation would leave an inconsistent
// prefix and the caller must ResetReplica + full-resync instead.
func (m *Manager) TruncateShip(cur wal.ShipCursor) (wal.TruncateResult, error) {
	if m.wal == nil {
		return wal.TruncateResult{}, ErrNotDurable
	}
	res, err := m.wal.TruncateTo(cur)
	if err != nil {
		return res, err
	}
	if ds, ok := m.log.(*diskStore); ok {
		ds.truncate(res)
	}
	return res, nil
}

// ResetReplica wipes the durable record stream and every checkpoint image,
// keeping the log's identity (manifest, epoch). A replica must call this
// before installing a full snapshot baseline over a non-empty data dir:
// without it, diverged records above the incoming images' LSNs would replay
// on a future cold start, and stale high LSN heads would break ship dedup.
func (m *Manager) ResetReplica() error {
	if m.wal == nil {
		return ErrNotDurable
	}
	if err := m.wal.Reset(); err != nil {
		return err
	}
	if ds, ok := m.log.(*diskStore); ok {
		ds.reset()
	}
	return nil
}

// SetSyncCommit arms or disarms synchronous commit: while armed, appends
// return only once the follower's ack (SetRemoteAck) covers them. A no-op
// without a durable store.
func (m *Manager) SetSyncCommit(on bool) {
	if m.wal != nil {
		m.wal.SetSyncCommit(on)
	}
}

// SetRemoteAck feeds the follower's acknowledged ship cursor to the
// sync-commit barrier.
func (m *Manager) SetRemoteAck(cur wal.ShipCursor) {
	if m.wal != nil {
		m.wal.SetRemoteAck(cur)
	}
}

// AbortSync fails every append blocked on the sync-commit barrier — called
// when the shipper dies or the node is fenced, so submitters learn their
// writes were never confirmed instead of hanging (or worse, being acked).
func (m *Manager) AbortSync() {
	if m.wal != nil {
		m.wal.AbortSync()
	}
}

// InstallReplicaBaseline installs a primary's snapshot frames as the local
// recovery baseline and advances each bucket's LSN head to the snapshot LSN,
// so subsequently applied ship records continue the primary's numbering and
// the log head doubles as the dedup state for duplicate batches.
func (m *Manager) InstallReplicaBaseline(snaps []store.BucketSnapshot) error {
	for _, s := range snaps {
		m.log.Install(s)
		m.log.AdvanceHead(s.Bucket, s.LSN)
	}
	return m.log.Err()
}
