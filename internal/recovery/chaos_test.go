package recovery_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
)

// chaosSquallConfig is fast and deterministic: no timeout (a timeout makes
// the abort point timing-dependent) and no spacing.
func chaosSquallConfig() squall.Config {
	return squall.Config{
		ChunkRows:       50,
		RateFactor:      1,
		MaxChunkRetries: 2,
	}
}

// runCrashChaosScript executes one fixed scripted run of the crash plane
// under live load and returns a fingerprint of everything that must be
// deterministic: each step's outcome, the final bucket plan, row counts and
// a full value checksum. Wall-clock dependent quantities (downtime, worker
// throughput) are asserted per run but kept out of the fingerprint.
func runCrashChaosScript(t *testing.T) string {
	return runCrashChaosScriptCfg(t, recovery.Config{})
}

// runCrashChaosScriptCfg is the script with an explicit recovery
// configuration — the chaos suite's data-dir axis. The fingerprint contains
// nothing medium-dependent, so a disk-backed run must reproduce the
// in-memory run exactly.
func runCrashChaosScriptCfg(t *testing.T, rcfg recovery.Config) string {
	t.Helper()
	const (
		keys    = 600
		workers = 8
	)
	e, m := testEngineCfg(t, 4, 2, rcfg)
	ex, err := squall.NewExecutor(e, chaosSquallConfig())
	if err != nil {
		t.Fatal(err)
	}
	load(t, e, keys)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Live load: workers hammer reads of existing keys for the whole script.
	// Requests that land on a down machine fail with ErrPartitionDown and
	// execute nothing; anything else must succeed.
	getID, _ := e.Handle("get")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var liveErrs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i = (i + workers) % keys {
				select {
				case <-stop:
					return
				default:
				}
				_, err := e.ExecuteID(getID, fmt.Sprintf("k-%d", i), nil)
				if err != nil && !errors.Is(err, store.ErrPartitionDown) {
					liveErrs.Add(1)
					return
				}
			}
		}(w)
	}

	var fp strings.Builder
	step := func(name string, err error) {
		// Outcome identity, not error prose: wrapped errors carry partition
		// ids which are deterministic, but keep the fingerprint coarse.
		outcome := "ok"
		if err != nil {
			outcome = "err"
			if errors.Is(err, store.ErrPartitionDown) {
				outcome = "down"
			}
		}
		fmt.Fprintf(&fp, "%s=%s;", name, outcome)
	}

	// The script: grow, lose a machine, grow around the loss, refuse an
	// illegal drain, shrink around the loss, recover, rebalance.
	step("grow-2-3", ex.Reconfigure(2, 3, 0))
	step("crash-1", m.Crash(1))

	// Zero transactions execute on a down machine: probe a key owned by
	// machine 1 and check its access counter stays frozen.
	key, bucket := downKey(t, e, 1, keys)
	before := e.BucketAccesses(false)[bucket]
	for i := 0; i < 3; i++ {
		if _, err := e.ExecuteID(getID, key, nil); !errors.Is(err, store.ErrPartitionDown) {
			t.Fatalf("down-machine get: err = %v, want ErrPartitionDown", err)
		}
	}
	if after := e.BucketAccesses(false)[bucket]; after != before {
		t.Fatalf("down machine executed transactions: bucket %d accesses %d -> %d", bucket, before, after)
	}

	step("grow-3-4", ex.Reconfigure(3, 4, 0))
	// Draining the dead machine is refused before any chunk moves.
	step("shrink-4-1", ex.Reconfigure(4, 1, 0))
	// Shrinking around it works: machine 1 survives (frozen), 2 and 3 drain.
	step("shrink-4-2", ex.Reconfigure(4, 2, 0))

	st, err := m.Restore(1)
	step("restore-1", err)
	fmt.Fprintf(&fp, "replayed>0=%v;", st.Replayed > 0)
	step("grow-2-3b", ex.Reconfigure(2, 3, 0))

	close(stop)
	wg.Wait()
	if n := liveErrs.Load(); n != 0 {
		t.Fatalf("%d live-load transactions failed with unexpected errors", n)
	}

	// Conservation: every submitted transaction either executed exactly once
	// (counted in exactly one partition's access block and in Completed) or
	// failed without executing (Errored, no access). The workers only read
	// existing keys, so no executed transaction errors.
	c := e.Counters()
	accesses := int64(0)
	for _, n := range e.BucketAccesses(false) {
		accesses += n
	}
	if accesses != c.Completed {
		t.Fatalf("access counters (%d) diverge from completed transactions (%d)", accesses, c.Completed)
	}
	if c.Submitted != c.Completed+c.Errored {
		t.Fatalf("submitted %d != completed %d + errored %d", c.Submitted, c.Completed, c.Errored)
	}

	// All data is intact and placed per the final plan.
	if rows := e.TotalRows(); rows != keys {
		t.Fatalf("TotalRows = %d, want %d", rows, keys)
	}
	checkValues(t, e, keys, func(i int) any { return i })

	// Final plan + per-bucket placement + value checksum.
	sum := 0
	for i := 0; i < keys; i++ {
		v, err := e.ExecuteID(getID, fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += v.(int) * (i + 1)
	}
	fmt.Fprintf(&fp, "checksum=%d;machines=%d;plan=", sum, e.ActiveMachines())
	for _, p := range e.Plan() {
		fmt.Fprintf(&fp, "%d,", p)
	}
	return fp.String()
}

// TestCrashChaosDeterministic is the acceptance gate of the crash plane: a
// fixed scripted run with machine crashes, recoveries and live load produces
// a byte-identical bucket plan (and data checksum) across three repeats,
// conserves row and access counters after replay, and never executes a
// transaction on a down machine.
func TestCrashChaosDeterministic(t *testing.T) {
	first := runCrashChaosScript(t)
	for rep := 1; rep < 3; rep++ {
		if got := runCrashChaosScript(t); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs first:\n%s", rep+1, got, first)
		}
	}
}

// TestCrashChaosDiskMatchesMemory is the chaos suite's data-dir axis: the
// same scripted run, backed by the on-disk WAL, must produce the exact
// fingerprint of the in-memory oracle — same step outcomes, same restored
// data, same final plan.
func TestCrashChaosDiskMatchesMemory(t *testing.T) {
	mem := runCrashChaosScript(t)
	disk := runCrashChaosScriptCfg(t, recovery.Config{DataDir: t.TempDir()})
	if disk != mem {
		t.Fatalf("disk-backed run diverged from oracle:\n%s\nvs\n%s", disk, mem)
	}
}

// TestCrashDuringMoveAborts pins the interaction between the crash plane and
// the migration journal at engine level: when the receiving machine dies
// mid-move, the move aborts and the rollback path (which down partitions
// must not refuse) restores the exact pre-move plan.
func TestCrashDuringMoveAborts(t *testing.T) {
	e, m := testEngine(t, 2, 1)
	const keys = 400
	load(t, e, keys)
	ex, err := squall.NewExecutor(e, chaosSquallConfig())
	if err != nil {
		t.Fatal(err)
	}
	planBefore := e.Plan()

	// Crash the receiver after the third offered chunk, from the move path
	// itself so the crash lands mid-stream deterministically.
	var offered atomic.Int64
	e.SetFaultInjector(faultFunc(func(op store.MoveOp) error {
		if op.Rollback {
			return nil
		}
		if offered.Add(1) == 3 {
			if err := m.Crash(1); err != nil {
				return err
			}
		}
		return nil
	}))

	err = ex.Reconfigure(1, 2, 0)
	var me *squall.MoveError
	if !errors.As(err, &me) {
		t.Fatalf("Reconfigure = %v, want *squall.MoveError", err)
	}
	if !me.RolledBack {
		t.Fatalf("move not rolled back: %v", me)
	}
	if !errors.Is(err, store.ErrPartitionDown) {
		t.Fatalf("abort cause = %v, want ErrPartitionDown", me.Cause)
	}
	if got := e.Plan(); !planEqual(got, planBefore) {
		t.Fatal("bucket plan not restored exactly after receiver crash")
	}
	if got := e.ActiveMachines(); got != 1 {
		t.Fatalf("ActiveMachines = %d, want 1", got)
	}
	if rows := e.TotalRows(); rows != keys {
		t.Fatalf("TotalRows = %d, want %d", rows, keys)
	}

	// Recovery brings the machine back and the next attempt lands.
	e.SetFaultInjector(nil)
	if _, err := m.Restore(1); err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	checkValues(t, e, keys, func(i int) any { return i })
}

// faultFunc adapts a function to store.FaultInjector.
type faultFunc func(store.MoveOp) error

func (f faultFunc) BeforeMove(op store.MoveOp) error { return f(op) }

func planEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
