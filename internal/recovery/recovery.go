// Package recovery is the machine-level crash-recovery subsystem: fuzzy
// checkpoints of the engine's bucket stores plus an in-memory logical command
// log, combined into deterministic replay that rebuilds a crashed machine's
// partitions to their exact pre-crash state.
//
// The design is H-Store-style command logging, adapted to this engine's
// bucket-granular data plane:
//
//   - The log is kept per *bucket*, not per partition. A bucket's data and
//     its history travel together across live migrations, so recovery never
//     needs to know where a command originally executed: restoring a
//     partition means restoring the buckets the current plan assigns to it,
//     each from its own checkpoint image + command tail.
//
//   - Each record is the *input* of one executed procedure (TxnID, key,
//     args), not its effects. Procedures are deterministic and partitions
//     execute serially, so replaying the inputs in log order on top of the
//     checkpoint image reproduces the state byte for byte — including the
//     partial effects of procedures that returned errors.
//
//   - Checkpoints are fuzzy per partition but exact per bucket: the owning
//     executor snapshots its buckets together with each bucket's log head
//     (it is the only appender for buckets it owns), so the invariant
//     "image@LSN + commands>LSN = current state" holds bucket by bucket
//     without any global barrier.
//
// Determinism contract (shared with the engine): procedures are
// deterministic functions of (stored state, key, args); stored rows are
// immutable after Put (procedures copy before mutating — see internal/b2w);
// and submitters do not mutate args after submission. Under that contract
// the checkpoint can alias row values and replay is exact.
package recovery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/store"
)

// Command is one command-log record: the input of one executed procedure.
type Command struct {
	// LSN is the bucket-local sequence number, starting at 1.
	LSN uint64
	// ID is the procedure's dense engine handle.
	ID store.TxnID
	// Key and Args are the procedure's original input.
	Key  string
	Args any
}

// ckptImage is one bucket's latest checkpoint: its tables (row values
// aliased, immutable by convention) and row count as of the covered LSN.
type ckptImage struct {
	rows   int
	tables map[string]map[string]any
}

// bucketLog is one bucket's recovery state: its command tail and latest
// checkpoint image. base is the LSN the image covers; cmds[i] has LSN
// base+1+i. The mutex makes appends (executor goroutines) safe against
// checkpoint truncation and restore reads (manager goroutine).
type bucketLog struct {
	mu   sync.Mutex
	head uint64
	base uint64
	cmds []Command
	ckpt *ckptImage
}

// Stats are the manager's cumulative recovery counters.
type Stats struct {
	// Crashes and Recoveries count machine-level events.
	Crashes, Recoveries int64
	// Checkpoints counts checkpoint rounds (one round covers every live
	// partition).
	Checkpoints int64
	// ReplayedCommands is the total number of commands replayed across all
	// recoveries.
	ReplayedCommands int64
	// MaxReplayLag is the largest command tail replayed by a single machine
	// recovery — the replay-lag metric a checkpoint interval trades against.
	MaxReplayLag int64
	// Downtime is the cumulative wall time machines spent down before being
	// restored.
	Downtime time.Duration
}

// RestoreStats describe one completed machine restoration.
type RestoreStats struct {
	// Machine is the restored machine.
	Machine int
	// Partitions is how many partitions were rebuilt.
	Partitions int
	// Snapshots is how many bucket checkpoint images were installed.
	Snapshots int
	// Replayed is how many log commands were replayed on top of them.
	Replayed int
	// Downtime is how long the machine was down.
	Downtime time.Duration
}

// Manager owns the command log and drives crash/checkpoint/restore against
// one engine. It implements store.CommandLogger; NewManager attaches it, so
// every transaction executed afterwards is recoverable.
type Manager struct {
	eng  *store.Engine
	logs []bucketLog

	// mu serializes the orchestration paths (Crash / Checkpoint / Restore);
	// the per-bucket locks alone protect the append hot path.
	mu        sync.Mutex
	downSince map[int]time.Time

	rec atomic.Pointer[metrics.Recorder]

	crashes      atomic.Int64
	recoveries   atomic.Int64
	checkpoints  atomic.Int64
	replayed     atomic.Int64
	maxReplayLag atomic.Int64
	downtimeNs   atomic.Int64
}

// NewManager builds a recovery manager for the engine and attaches it as the
// engine's command logger. Attach before loading any data: replay rebuilds
// buckets from their full command history (or their latest checkpoint), so
// pre-attachment writes would be invisible to recovery.
func NewManager(eng *store.Engine) *Manager {
	m := &Manager{
		eng:       eng,
		logs:      make([]bucketLog, eng.Config().Buckets),
		downSince: make(map[int]time.Time),
	}
	eng.SetCommandLog(m)
	return m
}

// SetRecorder attaches a metrics recorder; recovery counters are mirrored
// into it. Safe to call at any time.
func (m *Manager) SetRecorder(r *metrics.Recorder) { m.rec.Store(r) }

// AppendCommand implements store.CommandLogger. It runs on partition
// executor goroutines — one lock + one append per transaction.
func (m *Manager) AppendCommand(bucket int, id store.TxnID, key string, args any) {
	if bucket < 0 || bucket >= len(m.logs) {
		return
	}
	l := &m.logs[bucket]
	l.mu.Lock()
	l.head++
	l.cmds = append(l.cmds, Command{LSN: l.head, ID: id, Key: key, Args: args})
	l.mu.Unlock()
}

// LogHead implements store.CommandLogger: the LSN of the last command
// appended for the bucket.
func (m *Manager) LogHead(bucket int) uint64 {
	if bucket < 0 || bucket >= len(m.logs) {
		return 0
	}
	l := &m.logs[bucket]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// LogSize returns the number of command records currently retained across
// all buckets — the replay debt a crash right now would incur.
func (m *Manager) LogSize() int {
	total := 0
	for b := range m.logs {
		l := &m.logs[b]
		l.mu.Lock()
		total += len(l.cmds)
		l.mu.Unlock()
	}
	return total
}

// Checkpoint snapshots every live partition and installs the images as the
// buckets' new recovery baseline, truncating each bucket's command log up to
// the covered LSN. Down partitions are skipped (their buckets keep their
// older baseline, which is exactly what their restore will need). It returns
// the number of bucket images installed.
func (m *Manager) Checkpoint() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg := m.eng.Config()
	installed := 0
	for part := 0; part < cfg.MaxMachines*cfg.PartitionsPerMachine; part++ {
		if !m.eng.Hosted(part / cfg.PartitionsPerMachine) {
			// A multi-process node checkpoints only the data it hosts —
			// buckets living elsewhere are that node's responsibility.
			continue
		}
		if m.eng.PartitionDown(part) {
			continue
		}
		snaps, err := m.eng.SnapshotPartition(part)
		if err != nil {
			return installed, fmt.Errorf("recovery: checkpointing partition %d: %w", part, err)
		}
		for _, s := range snaps {
			m.installImage(s)
			installed++
		}
	}
	m.checkpoints.Add(1)
	if r := m.rec.Load(); r != nil {
		r.CountCheckpoint()
	}
	return installed, nil
}

// CheckpointPartition snapshots one live partition and installs the images
// as its buckets' new recovery baseline. Multi-process nodes call this right
// after installing a migrated-in chunk: the chunk's command history lives on
// the node it executed on, so the receiving node's recovery baseline for
// those buckets is the installed image itself — from that point on, local
// commands accumulate on top of it and a crash restores exactly.
func (m *Manager) CheckpointPartition(part int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snaps, err := m.eng.SnapshotPartition(part)
	if err != nil {
		return 0, fmt.Errorf("recovery: checkpointing partition %d: %w", part, err)
	}
	for _, s := range snaps {
		m.installImage(s)
	}
	return len(snaps), nil
}

// installImage makes one bucket snapshot the bucket's recovery baseline and
// drops the commands it covers.
func (m *Manager) installImage(s store.BucketSnapshot) {
	l := &m.logs[s.Bucket]
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.LSN > l.base {
		drop := int(s.LSN - l.base)
		if drop > len(l.cmds) {
			drop = len(l.cmds)
		}
		l.cmds = append([]Command(nil), l.cmds[drop:]...)
		l.base = s.LSN
	}
	l.ckpt = &ckptImage{rows: s.Rows, tables: s.Tables}
}

// Crash takes a machine down. Its partitions stop executing transactions
// (everything queued or submitted fails with store.ErrPartitionDown) until
// Restore rebuilds them.
func (m *Manager) Crash(machine int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eng.MachineDown(machine) {
		return fmt.Errorf("recovery: machine %d is already down", machine)
	}
	if err := m.eng.Crash(machine); err != nil {
		return err
	}
	m.downSince[machine] = time.Now()
	m.crashes.Add(1)
	if r := m.rec.Load(); r != nil {
		r.CountCrash()
	}
	return nil
}

// Restore rebuilds every partition of a down machine from checkpoint images
// plus command replay and brings the machine back up. The buckets to rebuild
// are taken from the *current* plan — a bucket that migrated onto the
// machine after its last checkpoint is still recovered exactly, because its
// image and log tail traveled with it.
func (m *Manager) Restore(machine int) (RestoreStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := RestoreStats{Machine: machine}
	if !m.eng.MachineDown(machine) {
		return st, fmt.Errorf("recovery: machine %d is not down", machine)
	}
	for _, part := range m.eng.PartitionsOfMachine(machine) {
		var snaps []store.BucketSnapshot
		var cmds []store.ReplayCommand
		for _, b := range m.eng.OwnedBuckets(part) {
			l := &m.logs[b]
			l.mu.Lock()
			if l.ckpt != nil {
				snaps = append(snaps, store.BucketSnapshot{
					Bucket: b,
					Rows:   l.ckpt.rows,
					LSN:    l.base,
					Tables: cloneTables(l.ckpt.tables),
				})
			}
			for _, c := range l.cmds {
				cmds = append(cmds, store.ReplayCommand{Bucket: b, ID: c.ID, Key: c.Key, Args: c.Args})
			}
			l.mu.Unlock()
		}
		n, err := m.eng.RestorePartition(part, snaps, cmds)
		if err != nil {
			return st, fmt.Errorf("recovery: restoring partition %d: %w", part, err)
		}
		st.Partitions++
		st.Snapshots += len(snaps)
		st.Replayed += n
	}
	if since, ok := m.downSince[machine]; ok {
		st.Downtime = time.Since(since)
		delete(m.downSince, machine)
	}
	m.recoveries.Add(1)
	m.replayed.Add(int64(st.Replayed))
	m.downtimeNs.Add(int64(st.Downtime))
	for {
		cur := m.maxReplayLag.Load()
		if int64(st.Replayed) <= cur || m.maxReplayLag.CompareAndSwap(cur, int64(st.Replayed)) {
			break
		}
	}
	if r := m.rec.Load(); r != nil {
		r.CountRecovery(st.Downtime, int64(st.Replayed))
	}
	return st, nil
}

// cloneTables copies the map structure of a checkpoint image, aliasing row
// values. Replay mutates the installed maps, and the baseline may serve
// later restores, so each restore gets its own copy.
func cloneTables(tables map[string]map[string]any) map[string]map[string]any {
	out := make(map[string]map[string]any, len(tables))
	for tn, t := range tables {
		ct := make(map[string]any, len(t))
		for k, v := range t {
			ct[k] = v
		}
		out[tn] = ct
	}
	return out
}

// Stats snapshots the manager's cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Crashes:          m.crashes.Load(),
		Recoveries:       m.recoveries.Load(),
		Checkpoints:      m.checkpoints.Load(),
		ReplayedCommands: m.replayed.Load(),
		MaxReplayLag:     m.maxReplayLag.Load(),
		Downtime:         time.Duration(m.downtimeNs.Load()),
	}
}
