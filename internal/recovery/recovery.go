// Package recovery is the machine-level crash-recovery subsystem: fuzzy
// checkpoints of the engine's bucket stores plus a logical command log,
// combined into deterministic replay that rebuilds a crashed machine's
// partitions to their exact pre-crash state. The log lives behind the
// LogStore interface: in memory by default (fast, and the deterministic
// oracle the disk path is tested against), or on disk as a segmented WAL
// with group commit and per-bucket checkpoint images when Config.DataDir is
// set — in which case ColdStart can rebuild an entire engine, all machines,
// from a directory left behind by a dead process.
//
// The design is H-Store-style command logging, adapted to this engine's
// bucket-granular data plane:
//
//   - The log is kept per *bucket*, not per partition. A bucket's data and
//     its history travel together across live migrations, so recovery never
//     needs to know where a command originally executed: restoring a
//     partition means restoring the buckets the current plan assigns to it,
//     each from its own checkpoint image + command tail.
//
//   - Each record is the *input* of one executed procedure (TxnID, key,
//     args), not its effects. Procedures are deterministic and partitions
//     execute serially, so replaying the inputs in log order on top of the
//     checkpoint image reproduces the state byte for byte — including the
//     partial effects of procedures that returned errors.
//
//   - Checkpoints are fuzzy per partition but exact per bucket: the owning
//     executor snapshots its buckets together with each bucket's log head
//     (it is the only appender for buckets it owns), so the invariant
//     "image@LSN + commands>LSN = current state" holds bucket by bucket
//     without any global barrier.
//
// Determinism contract (shared with the engine): procedures are
// deterministic functions of (stored state, key, args); stored rows are
// immutable after Put (procedures copy before mutating — see internal/b2w);
// and submitters do not mutate args after submission. Under that contract
// the checkpoint can alias row values and replay is exact.
package recovery

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/store"
	"pstore/internal/wal"
)

// Config selects and parameterizes the manager's log store.
type Config struct {
	// DataDir enables the durable store: a segmented WAL plus checkpoint
	// images under this directory. Empty keeps the log in memory.
	DataDir string
	// SegmentBytes is the WAL's segment rotation threshold (0 = default).
	SegmentBytes int64
	// FS substitutes the WAL's filesystem (crash-injection tests).
	FS wal.FS
}

// Stats are the manager's cumulative recovery counters.
type Stats struct {
	// Crashes and Recoveries count machine-level events.
	Crashes, Recoveries int64
	// Checkpoints counts checkpoint rounds (one round covers every live
	// partition).
	Checkpoints int64
	// ReplayedCommands is the total number of commands replayed across all
	// recoveries.
	ReplayedCommands int64
	// MaxReplayLag is the largest command tail replayed by a single machine
	// recovery — the replay-lag metric a checkpoint interval trades against.
	MaxReplayLag int64
	// Downtime is the cumulative wall time machines spent down before being
	// restored.
	Downtime time.Duration
}

// RestoreStats describe one completed machine restoration.
type RestoreStats struct {
	// Machine is the restored machine.
	Machine int
	// Partitions is how many partitions were rebuilt.
	Partitions int
	// Snapshots is how many bucket checkpoint images were installed.
	Snapshots int
	// Replayed is how many log commands were replayed on top of them.
	Replayed int
	// ReplayWall is the wall time spent loading and replaying partitions.
	ReplayWall time.Duration
	// Downtime is how long the machine was down.
	Downtime time.Duration
}

// ColdStartStats describe one completed cold start: a whole engine rebuilt
// from a data directory.
type ColdStartStats struct {
	// Machines and Partitions count what was rebuilt.
	Machines, Partitions int
	// Snapshots is how many bucket images were installed; Replayed how many
	// log commands ran on top of them.
	Snapshots, Replayed int
	// LogBytes is the on-disk log volume the cold start scanned.
	LogBytes int64
	// PlanRecovered reports whether a durable plan was reinstalled.
	PlanRecovered bool
	// Duration is the wall time of the rebuild; ReplayWall the part spent
	// loading and replaying partitions (in parallel across workers).
	Duration   time.Duration
	ReplayWall time.Duration
}

// Manager owns the command log and drives crash/checkpoint/restore against
// one engine. It implements store.CommandLogger and store.PlanLogger;
// New/NewManager attach it, so every transaction executed afterwards is
// recoverable.
type Manager struct {
	eng *store.Engine
	log LogStore
	// wal is the durable store's underlying log (nil with the in-memory
	// store); the replication plane ships from it directly.
	wal *wal.Log
	// baseline counts out-of-WAL data installs (migrated-in chunks). Ship
	// batches carry it so a follower synced under an older baseline knows
	// its copy is incomplete and resyncs.
	baseline atomic.Uint64

	// cold is the state a durable store recovered at open, consumed by
	// ColdStart; planMuted suppresses plan re-logging while ColdStart is
	// reinstalling the very plan that was just read back from disk.
	cold      *wal.Recovered
	planMuted atomic.Bool

	// mu serializes the orchestration paths (Crash / Checkpoint / Restore /
	// ColdStart); the log store alone protects the append hot path.
	mu        sync.Mutex
	downSince map[int]time.Time

	rec atomic.Pointer[metrics.Recorder]

	crashes      atomic.Int64
	recoveries   atomic.Int64
	checkpoints  atomic.Int64
	replayed     atomic.Int64
	maxReplayLag atomic.Int64
	downtimeNs   atomic.Int64
}

// NewManager builds an in-memory recovery manager for the engine and
// attaches it as the engine's command logger. Attach before loading any
// data: replay rebuilds buckets from their full command history (or their
// latest checkpoint), so pre-attachment writes would be invisible to
// recovery.
func NewManager(eng *store.Engine) *Manager {
	m, _ := New(eng, Config{})
	return m
}

// New builds a recovery manager with an explicit log-store configuration.
// With Config.DataDir set, the log is a segmented on-disk WAL: the
// directory is opened (or created), its contents recovered, and — if it
// holds a previous life's state — HasColdState reports true and ColdStart
// will rebuild the engine from it.
func New(eng *store.Engine, cfg Config) (*Manager, error) {
	m := &Manager{
		eng:       eng,
		downSince: make(map[int]time.Time),
	}
	if cfg.DataDir == "" {
		m.log = newMemStore(eng.Config().Buckets)
	} else {
		ec := eng.Config()
		l, rec, err := wal.Open(wal.Config{
			Dir: cfg.DataDir,
			Geometry: wal.Geometry{
				Buckets:              ec.Buckets,
				MaxMachines:          ec.MaxMachines,
				PartitionsPerMachine: ec.PartitionsPerMachine,
			},
			SegmentBytes: cfg.SegmentBytes,
			FS:           cfg.FS,
		})
		if err != nil {
			return nil, err
		}
		m.log = newDiskStore(eng, l, rec)
		m.wal = l
		m.cold = rec
	}
	eng.SetCommandLog(m)
	eng.SetPlanLog(m)
	return m, nil
}

// SetRecorder attaches a metrics recorder; recovery counters are mirrored
// into it. Safe to call at any time.
func (m *Manager) SetRecorder(r *metrics.Recorder) { m.rec.Store(r) }

// AppendCommand implements store.CommandLogger. It runs on partition
// executor goroutines — with a durable store, the record is on disk (group
// commit) before the executor acknowledges the transaction.
func (m *Manager) AppendCommand(bucket int, id store.TxnID, key string, args any) {
	m.log.Append(bucket, id, key, args)
}

// LogHead implements store.CommandLogger: the LSN of the last command
// appended for the bucket.
func (m *Manager) LogHead(bucket int) uint64 { return m.log.Head(bucket) }

// LogPlan implements store.PlanLogger: plan mutations flow into the log so
// a cold start reinstalls the exact plan the process died with.
func (m *Manager) LogPlan(plan []int32, active int) {
	if m.planMuted.Load() {
		return
	}
	m.log.LogPlan(plan, active)
}

// LogSize returns the number of command records currently retained across
// all buckets — the replay debt a crash right now would incur. It reads an
// atomic counter; it never walks the log, so summary pollers cannot contend
// with the AppendCommand hot path.
func (m *Manager) LogSize() int { return int(m.log.Records()) }

// LogBytes returns the on-disk log volume (0 with the in-memory store),
// also from a counter.
func (m *Manager) LogBytes() int64 { return m.log.Bytes() }

// Err returns the log store's latched fatal error, if any. A durable store
// that fails to append stops persisting and reports here; the engine keeps
// serving from memory.
func (m *Manager) Err() error { return m.log.Err() }

// Close releases the log store (the WAL's active segment, for a durable
// store). Everything acknowledged is already durable; Close flushes
// nothing.
func (m *Manager) Close() error { return m.log.Close() }

// Checkpoint snapshots every live partition and installs the images as the
// buckets' new recovery baseline, truncating each bucket's command log up to
// the covered LSN (on disk: images are spilled per bucket, then fully
// covered segments are deleted). Down partitions are skipped (their buckets
// keep their older baseline, which is exactly what their restore will
// need). It returns the number of bucket images installed.
func (m *Manager) Checkpoint() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg := m.eng.Config()
	installed := 0
	for part := 0; part < cfg.MaxMachines*cfg.PartitionsPerMachine; part++ {
		if !m.eng.Hosted(part / cfg.PartitionsPerMachine) {
			// A multi-process node checkpoints only the data it hosts —
			// buckets living elsewhere are that node's responsibility.
			continue
		}
		if m.eng.PartitionDown(part) {
			continue
		}
		snaps, err := m.eng.SnapshotPartition(part)
		if err != nil {
			return installed, fmt.Errorf("recovery: checkpointing partition %d: %w", part, err)
		}
		for _, s := range snaps {
			m.log.Install(s)
			installed++
		}
	}
	if err := m.log.Checkpoint(); err != nil {
		return installed, fmt.Errorf("recovery: completing checkpoint: %w", err)
	}
	m.checkpoints.Add(1)
	if r := m.rec.Load(); r != nil {
		r.CountCheckpoint()
	}
	return installed, nil
}

// CheckpointPartition snapshots one live partition and installs the images
// as its buckets' new recovery baseline. Multi-process nodes call this right
// after installing a migrated-in chunk: the chunk's command history lives on
// the node it executed on, so the receiving node's recovery baseline for
// those buckets is the installed image itself — from that point on, local
// commands accumulate on top of it and a crash restores exactly.
func (m *Manager) CheckpointPartition(part int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snaps, err := m.eng.SnapshotPartition(part)
	if err != nil {
		return 0, fmt.Errorf("recovery: checkpointing partition %d: %w", part, err)
	}
	for _, s := range snaps {
		m.log.Install(s)
	}
	// The installed data arrived outside the WAL (a migrated-in chunk), so a
	// follower that synced before this install can no longer reconstruct the
	// node's state from shipped records alone — bump the baseline to force it
	// to resync.
	m.baseline.Add(1)
	return len(snaps), nil
}

// Crash takes a machine down. Its partitions stop executing transactions
// (everything queued or submitted fails with store.ErrPartitionDown) until
// Restore rebuilds them.
func (m *Manager) Crash(machine int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eng.MachineDown(machine) {
		return fmt.Errorf("recovery: machine %d is already down", machine)
	}
	if err := m.eng.Crash(machine); err != nil {
		return err
	}
	m.downSince[machine] = time.Now()
	m.crashes.Add(1)
	if r := m.rec.Load(); r != nil {
		r.CountCrash()
	}
	return nil
}

// Restore rebuilds every partition of a down machine from checkpoint images
// plus command replay and brings the machine back up. The buckets to rebuild
// are taken from the *current* plan — a bucket that migrated onto the
// machine after its last checkpoint is still recovered exactly, because its
// image and log tail traveled with it. With a durable store, the images and
// tails are read back from disk, not from process memory.
func (m *Manager) Restore(machine int) (RestoreStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := RestoreStats{Machine: machine}
	if !m.eng.MachineDown(machine) {
		return st, fmt.Errorf("recovery: machine %d is not down", machine)
	}
	replayStart := time.Now()
	for _, part := range m.eng.PartitionsOfMachine(machine) {
		snaps, replayed, err := m.restorePartitionLocked(part)
		if err != nil {
			return st, err
		}
		st.Partitions++
		st.Snapshots += snaps
		st.Replayed += replayed
	}
	st.ReplayWall = time.Since(replayStart)
	if since, ok := m.downSince[machine]; ok {
		st.Downtime = time.Since(since)
		delete(m.downSince, machine)
	}
	m.recoveries.Add(1)
	m.replayed.Add(int64(st.Replayed))
	m.downtimeNs.Add(int64(st.Downtime))
	for {
		cur := m.maxReplayLag.Load()
		if int64(st.Replayed) <= cur || m.maxReplayLag.CompareAndSwap(cur, int64(st.Replayed)) {
			break
		}
	}
	if r := m.rec.Load(); r != nil {
		r.CountRecovery(st.Downtime, int64(st.Replayed))
	}
	return st, nil
}

// restorePartitionLocked rebuilds one down partition from the log store.
func (m *Manager) restorePartitionLocked(part int) (snapshots, replayed int, err error) {
	snaps, cmds, err := m.log.Load(m.eng.OwnedBuckets(part))
	if err != nil {
		return 0, 0, fmt.Errorf("recovery: loading partition %d: %w", part, err)
	}
	n, err := m.eng.RestorePartition(part, snaps, cmds)
	if err != nil {
		return 0, 0, fmt.Errorf("recovery: restoring partition %d: %w", part, err)
	}
	return len(snaps), n, nil
}

// HasColdState reports whether the manager's data directory held a previous
// life's state — a recovered plan or bucket data — so the owner knows to
// ColdStart instead of bootstrapping fresh data.
func (m *Manager) HasColdState() bool {
	return m.cold != nil && m.cold.Existing &&
		(m.cold.Plan != nil || len(m.cold.Buckets) > 0)
}

// ColdStart rebuilds the entire engine — every hosted machine, not one
// crashed slot — from the data directory: the durable plan is reinstalled,
// then each hosted partition is fenced and restored from its buckets'
// checkpoint images plus replayed log tails. Call it after Start (and after
// registering every transaction), in place of loading fresh data.
func (m *Manager) ColdStart() (ColdStartStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	st := ColdStartStats{}
	if m.cold == nil {
		return st, fmt.Errorf("recovery: cold start requires a durable store")
	}
	st.LogBytes = m.cold.SegmentBytes

	// Reinstall the durable plan before touching data: OwnedBuckets below
	// must see the ownership the process died with. The plan logger is
	// muted — re-logging the plan we just read back would be noise.
	m.planMuted.Store(true)
	if m.cold.Plan != nil {
		byOwner := make(map[int][]int)
		for b, p := range m.cold.Plan {
			byOwner[int(p)] = append(byOwner[int(p)], b)
		}
		for owner, buckets := range byOwner {
			if err := m.eng.ApplyOwnership(buckets, owner); err != nil {
				m.planMuted.Store(false)
				return st, fmt.Errorf("recovery: reinstalling plan: %w", err)
			}
		}
		st.PlanRecovered = true
	}
	if m.cold.Active > 0 {
		if err := m.eng.SetActiveMachines(m.cold.Active); err != nil {
			m.planMuted.Store(false)
			return st, fmt.Errorf("recovery: reinstalling active machines: %w", err)
		}
	}
	m.planMuted.Store(false)

	// Fence every hosted machine first, then restore their partitions with a
	// GOMAXPROCS-bounded worker pool: distinct partitions replay through
	// independent executors and the log store's reads are concurrency-safe,
	// so a cold start's replay wall time scales with cores, not partitions.
	var parts []int
	for _, machine := range m.eng.HostedMachines() {
		// Fence first: RestorePartition rebuilds only down partitions.
		if !m.eng.MachineDown(machine) {
			if err := m.eng.Crash(machine); err != nil {
				return st, fmt.Errorf("recovery: fencing machine %d: %w", machine, err)
			}
		}
		parts = append(parts, m.eng.PartitionsOfMachine(machine)...)
		st.Machines++
	}
	replayStart := time.Now()
	type partResult struct {
		snaps, replayed int
		err             error
	}
	results := make([]partResult, len(parts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				r := &results[i]
				r.snaps, r.replayed, r.err = m.restorePartitionLocked(parts[i])
			}
		}()
	}
	wg.Wait()
	st.ReplayWall = time.Since(replayStart)
	for _, r := range results {
		if r.err != nil {
			return st, r.err
		}
		st.Partitions++
		st.Snapshots += r.snaps
		st.Replayed += r.replayed
	}
	m.replayed.Add(int64(st.Replayed))
	st.Duration = time.Since(start)
	return st, nil
}

// Stats snapshots the manager's cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Crashes:          m.crashes.Load(),
		Recoveries:       m.recoveries.Load(),
		Checkpoints:      m.checkpoints.Load(),
		ReplayedCommands: m.replayed.Load(),
		MaxReplayLag:     m.maxReplayLag.Load(),
		Downtime:         time.Duration(m.downtimeNs.Load()),
	}
}
