// Package hash implements MurmurHash 2.0, the hash the P-Store paper uses to
// map partitioning keys to data partitions (Section 8.1). The 64-bit variant
// (MurmurHash64A) matches the widely used Java port cited by the paper.
package hash

// Murmur2 computes the 64-bit MurmurHash2 (variant 64A) of data with the
// given seed.
func Murmur2(data []byte, seed uint64) uint64 {
	const (
		m = 0xc6a4a7935bd1e995
		r = 47
	)
	h := seed ^ uint64(len(data))*m

	n := len(data) / 8 * 8
	for i := 0; i < n; i += 8 {
		k := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 |
			uint64(data[i+3])<<24 | uint64(data[i+4])<<32 | uint64(data[i+5])<<40 |
			uint64(data[i+6])<<48 | uint64(data[i+7])<<56
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	tail := data[n:]
	switch len(tail) {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Murmur2String computes the same hash as Murmur2 directly over a string,
// avoiding the []byte(s) conversion allocation on the engine's hot routing
// path.
func Murmur2String(s string, seed uint64) uint64 {
	const (
		m = 0xc6a4a7935bd1e995
		r = 47
	)
	h := seed ^ uint64(len(s))*m

	n := len(s) / 8 * 8
	for i := 0; i < n; i += 8 {
		k := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 |
			uint64(s[i+3])<<24 | uint64(s[i+4])<<32 | uint64(s[i+5])<<40 |
			uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	tail := s[n:]
	switch len(tail) {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// String hashes a string key with the default seed used across the engine.
func String(s string) uint64 {
	return Murmur2String(s, 0x9747b28c)
}

// Partition maps a string key onto one of n partitions. n must be positive.
func Partition(key string, n int) int {
	return int(String(key) % uint64(n))
}
