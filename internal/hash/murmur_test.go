package hash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestMurmur2Deterministic(t *testing.T) {
	a := Murmur2([]byte("shopping-cart-42"), 0x9747b28c)
	b := Murmur2([]byte("shopping-cart-42"), 0x9747b28c)
	if a != b {
		t.Fatalf("hash not deterministic: %x vs %x", a, b)
	}
	if c := Murmur2([]byte("shopping-cart-43"), 0x9747b28c); c == a {
		t.Error("distinct keys unexpectedly collide")
	}
	if d := Murmur2([]byte("shopping-cart-42"), 1); d == a {
		t.Error("seed change did not change hash")
	}
}

func TestMurmur2AllTailLengths(t *testing.T) {
	// Exercise every remainder branch (lengths 0..16) and ensure prefix
	// extension changes the hash.
	data := []byte("abcdefghijklmnop")
	seen := map[uint64]int{}
	for n := 0; n <= len(data); n++ {
		h := Murmur2(data[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Errorf("lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func TestMurmur2EmptyInput(t *testing.T) {
	// Must not panic; empty input with equal seeds is stable.
	if Murmur2(nil, 5) != Murmur2([]byte{}, 5) {
		t.Error("nil and empty slice should hash identically")
	}
}

func TestPartitionRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		p := Partition(fmt.Sprintf("key-%d", i), 7)
		if p < 0 || p >= 7 {
			t.Fatalf("Partition out of range: %d", p)
		}
	}
}

// TestPartitionUniformity reproduces the paper's Section 8.1 check: with
// randomly generated cart keys hashed onto 30 partitions, the skew across
// partitions should be small (the paper reports the most-accessed partition
// within ~10% of average and a standard deviation of ~2.6% of average).
func TestPartitionUniformity(t *testing.T) {
	const parts = 30
	const keys = 300000
	counts := make([]float64, parts)
	for i := 0; i < keys; i++ {
		counts[Partition(fmt.Sprintf("cart-%d-%d", i, i*2654435761), parts)]++
	}
	mean := float64(keys) / parts
	maxDev, sumSq := 0.0, 0.0
	for _, c := range counts {
		dev := math.Abs(c-mean) / mean
		if dev > maxDev {
			maxDev = dev
		}
		sumSq += (c - mean) * (c - mean)
	}
	std := math.Sqrt(sumSq/parts) / mean
	if maxDev > 0.10 {
		t.Errorf("max partition deviation %.2f%% exceeds 10%%", maxDev*100)
	}
	if std > 0.03 {
		t.Errorf("partition std %.2f%% exceeds 3%%", std*100)
	}
}

func TestStringMatchesMurmur2(t *testing.T) {
	f := func(s string) bool {
		return String(s) == Murmur2([]byte(s), 0x9747b28c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMurmur2StringMatchesByteVariant pins the allocation-free string path
// to the byte-slice implementation across seeds and tail lengths.
func TestMurmur2StringMatchesByteVariant(t *testing.T) {
	f := func(s string, seed uint64) bool {
		return Murmur2String(s, seed) == Murmur2([]byte(s), seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	data := "abcdefghijklmnop"
	for n := 0; n <= len(data); n++ {
		if Murmur2String(data[:n], 7) != Murmur2([]byte(data[:n]), 7) {
			t.Errorf("length-%d tail diverges", n)
		}
	}
}

func BenchmarkMurmur2String(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = String("cart-00123456")
	}
}
