// Package migration models and schedules data migrations between cluster
// configurations, implementing Section 4.4 of the P-Store paper: the
// maximum migration parallelism (Equation 2), the duration T(B,A) of a move
// (Equation 3), its cost C(B,A) (Equation 4 with Algorithm 4), the effective
// capacity of the cluster while data is in flight (Equation 7), and the
// three-phase round schedule of sender/receiver pairs (Table 1, Figure 4).
package migration

import (
	"fmt"
	"math"
)

// Model captures the empirically discovered parameters of Section 4.1 that
// characterize moves for a given workload and database size.
type Model struct {
	// Q is the target per-server throughput (transactions per time unit).
	// cap(N) = Q*N is the planning capacity of N servers.
	Q float64
	// QMax is the maximum per-server throughput before the latency
	// constraint is at risk (80% of saturation in the paper).
	QMax float64
	// D is the time to migrate the entire database exactly once with a
	// single sender/receiver thread pair without hurting latency,
	// expressed in the same time unit as move durations (the planner uses
	// "time intervals").
	D float64
	// P is the number of partitions per server.
	P int
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Q <= 0 {
		return fmt.Errorf("migration: Q %v must be positive", m.Q)
	}
	if m.QMax < m.Q {
		return fmt.Errorf("migration: QMax %v must be at least Q %v", m.QMax, m.Q)
	}
	if m.D < 0 {
		return fmt.Errorf("migration: D %v must be non-negative", m.D)
	}
	if m.P < 1 {
		return fmt.Errorf("migration: P %d must be at least 1", m.P)
	}
	return nil
}

// Cap returns cap(N) = Q*N, the planning capacity of N evenly loaded
// servers (Equation 5).
func (m Model) Cap(n int) float64 { return m.Q * float64(n) }

// MaxParallel returns the maximum number of parallel data transfers during
// a move from b to a servers (Equation 2): each partition may exchange data
// with at most one other partition at a time, so parallelism is bounded by
// the smaller of the sender and receiver partition counts.
func (m Model) MaxParallel(b, a int) int {
	switch {
	case b == a:
		return 0
	case b < a:
		return m.P * min(b, a-b)
	default:
		return m.P * min(a, b-a)
	}
}

// MoveTime returns T(B,A), the duration of a move from b to a servers
// (Equation 3), in the time unit of D. The whole database takes D/max∥ to
// move; a move only transfers the fraction of data that must change hands.
func (m Model) MoveTime(b, a int) float64 {
	if b == a {
		return 0
	}
	par := float64(m.MaxParallel(b, a))
	if b < a {
		return m.D / par * (1 - float64(b)/float64(a))
	}
	return m.D / par * (1 - float64(a)/float64(b))
}

// MoveIntervals returns T(B,A) rounded up to a whole number of time
// intervals, the granularity of the planner (Section 4.3: "each move lasts
// some positive number of time intervals (rounded up)"). A do-nothing move
// returns 0; the planner itself stretches it to one interval.
func (m Model) MoveIntervals(b, a int) int {
	return int(math.Ceil(m.MoveTime(b, a) - 1e-9))
}

// AvgMachAlloc returns the time-averaged number of machines allocated during
// a move between b and a servers (Algorithm 4). Machine allocation is
// symmetric between scale-in and scale-out: what matters is the larger and
// smaller cluster, because machines are allocated as late as possible when
// scaling out and released as early as possible when scaling in.
func (m Model) AvgMachAlloc(b, a int) float64 {
	l := max(b, a) // larger cluster
	s := min(b, a) // smaller cluster
	delta := l - s
	if delta == 0 {
		return float64(l)
	}
	r := delta % s

	// Case 1: all machines added or removed at once.
	if s >= delta {
		return float64(l)
	}
	// Case 2: delta is a perfect multiple of the smaller cluster; blocks
	// of s machines are allocated one at a time.
	if r == 0 {
		return float64(2*s+l) / 2
	}
	// Case 3: three phases.
	n1 := delta/s - 1                 // full blocks in phase 1
	t1 := float64(s) / float64(delta) // time fraction per phase-1 step
	m1 := float64(s+l-r) / 2          // average machines across phase-1 steps
	phase1 := float64(n1) * t1 * m1

	t2 := float64(r) / float64(delta)
	m2 := float64(l - r)
	phase2 := t2 * m2

	t3 := float64(s) / float64(delta)
	m3 := float64(l)
	phase3 := t3 * m3

	return phase1 + phase2 + phase3
}

// MoveCost returns C(B,A) = T(B,A) * avg-mach-alloc(B,A), the cost of a
// move (Equation 4) in machine-time-units.
func (m Model) MoveCost(b, a int) float64 {
	return m.MoveTime(b, a) * m.AvgMachAlloc(b, a)
}

// EffCap returns the effective capacity of the cluster after a fraction f
// (0 <= f <= 1) of the move's data has been transferred during a move from
// b to a servers (Equation 7). While data is in flight the most loaded
// server bounds the whole cluster's throughput.
func (m Model) EffCap(b, a int, f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	fb := float64(b)
	fa := float64(a)
	switch {
	case b == a:
		return m.Cap(b)
	case b < a:
		// Each original server shrinks from 1/B toward 1/A of the data.
		frac := 1/fb - f*(1/fb-1/fa)
		return m.Q / frac
	default:
		// Each surviving server grows from 1/B toward 1/A of the data.
		frac := 1/fb + f*(1/fa-1/fb)
		return m.Q / frac
	}
}

// MachinesFor returns the minimum number of servers whose planning capacity
// covers the given load.
func (m Model) MachinesFor(load float64) int {
	if load <= 0 {
		return 1
	}
	return int(math.Ceil(load/m.Q - 1e-9))
}
