package migration

import "fmt"

// NumRounds returns the number of migration rounds.
func (s *Schedule) NumRounds() int { return len(s.Rounds) }

// RoundTime returns the wall time of a single round given d, the
// single-thread full-database migration time: each machine pair moves
// PairFraction of the database with P parallel partition streams.
func (s *Schedule) RoundTime(d float64) float64 {
	return d * s.PairFraction / float64(s.P)
}

// TotalTime returns the wall time of the whole schedule given d. It equals
// Model.MoveTime for the same parameters (the schedule achieves the maximum
// parallelism of Equation 2 in every round).
func (s *Schedule) TotalTime(d float64) float64 {
	return s.RoundTime(d) * float64(len(s.Rounds))
}

// MachinesAllocated returns the number of machines allocated during round i
// (0-based). When scaling out, a new machine is allocated just before the
// first round in which it receives data; when scaling in, a machine is
// released right after the last round in which it sends data.
func (s *Schedule) MachinesAllocated(i int) int {
	if len(s.Rounds) == 0 {
		return s.B
	}
	common := min(s.B, s.A)
	extra := max(s.B, s.A) - common
	n := common
	for m := common; m < common+extra; m++ {
		first, last := s.participation(m)
		if first == -1 {
			continue // machine never participates (cannot happen in valid schedules)
		}
		if s.B < s.A {
			if i >= first {
				n++
			}
		} else {
			if i <= last {
				n++
			}
		}
	}
	return n
}

// participation returns the first and last round indices in which machine m
// appears, or (-1, -1) if it never does.
func (s *Schedule) participation(m int) (first, last int) {
	first, last = -1, -1
	for i, r := range s.Rounds {
		for _, t := range r {
			if t.From == m || t.To == m {
				if first == -1 {
					first = i
				}
				last = i
			}
		}
	}
	return first, last
}

// FractionMoved returns f, the fraction of the move's total data that has
// been transferred after the first i rounds complete.
func (s *Schedule) FractionMoved(i int) float64 {
	if len(s.Rounds) == 0 {
		return 1
	}
	moved := 0
	for r := 0; r < i && r < len(s.Rounds); r++ {
		moved += len(s.Rounds[r])
	}
	total := 0
	for _, r := range s.Rounds {
		total += len(r)
	}
	return float64(moved) / float64(total)
}

// PartitionTransfer is a partition-level data stream within a round.
type PartitionTransfer struct {
	// FromPartition and ToPartition are global partition indices
	// (machine*P + local index).
	FromPartition, ToPartition int
	// Fraction is the portion of the whole database this stream moves.
	Fraction float64
}

// PartitionTransfers expands a machine-level round into its P parallel
// partition-level streams per transfer: partition k of the sender streams to
// partition k of the receiver, each carrying PairFraction/P of the database.
func (s *Schedule) PartitionTransfers(round Round) []PartitionTransfer {
	out := make([]PartitionTransfer, 0, len(round)*s.P)
	for _, t := range round {
		for k := 0; k < s.P; k++ {
			out = append(out, PartitionTransfer{
				FromPartition: t.From*s.P + k,
				ToPartition:   t.To*s.P + k,
				Fraction:      s.PairFraction / float64(s.P),
			})
		}
	}
	return out
}

// Validate checks the structural invariants of the schedule: every
// sender/receiver machine pair appears exactly once across all rounds, no
// machine appears twice within a round, and parallelism never exceeds
// Equation 2. It is used by tests and as a guard before execution.
func (s *Schedule) Validate() error {
	if s.B == s.A {
		if len(s.Rounds) != 0 {
			return fmt.Errorf("migration: do-nothing move has %d rounds", len(s.Rounds))
		}
		return nil
	}
	common := min(s.B, s.A)
	extra := max(s.B, s.A) - common
	seen := make(map[Transfer]bool)
	model := Model{Q: 1, QMax: 1, D: 1, P: s.P}
	maxPar := model.MaxParallel(s.B, s.A) / s.P
	for i, r := range s.Rounds {
		if len(r) > maxPar {
			return fmt.Errorf("migration: round %d has %d transfers, exceeding max parallelism %d", i, len(r), maxPar)
		}
		busy := make(map[int]bool)
		for _, t := range r {
			if s.B < s.A {
				// Scaling out: common machines send to the new ones.
				if t.From < 0 || t.From >= common {
					return fmt.Errorf("migration: round %d transfer %v has invalid sender", i, t)
				}
				if t.To < common || t.To >= common+extra {
					return fmt.Errorf("migration: round %d transfer %v has invalid receiver", i, t)
				}
			} else {
				// Scaling in: drained machines send to the survivors.
				if t.From < common || t.From >= common+extra {
					return fmt.Errorf("migration: round %d transfer %v has invalid sender", i, t)
				}
				if t.To < 0 || t.To >= common {
					return fmt.Errorf("migration: round %d transfer %v has invalid receiver", i, t)
				}
			}
			if busy[t.From] || busy[t.To] {
				return fmt.Errorf("migration: round %d uses machine twice (%v)", i, t)
			}
			busy[t.From] = true
			busy[t.To] = true
			if seen[t] {
				return fmt.Errorf("migration: pair %v appears twice", t)
			}
			seen[t] = true
		}
	}
	want := common * extra
	if len(seen) != want {
		return fmt.Errorf("migration: schedule covers %d pairs, want %d", len(seen), want)
	}
	return nil
}
