package migration

import (
	"fmt"
	"sort"
)

// Transfer is one sender→receiver machine pairing within a round. During
// the round the pair exchanges PairFraction of the database using P parallel
// partition-to-partition streams.
type Transfer struct {
	// From is the sending machine index.
	From int
	// To is the receiving machine index.
	To int
}

// Round is a set of transfers executed in parallel. No machine appears in
// more than one transfer of a round (each partition talks to at most one
// other partition at a time, Section 4.4.1).
type Round []Transfer

// Schedule is the complete migration plan for a move, as produced by the
// P-Store Scheduler: an ordered list of rounds in which every
// sender/receiver machine pair appears exactly once. Machines are numbered
// so that indices below min(B, A) are the machines common to both
// configurations; when scaling out, indices B..A-1 are the new machines;
// when scaling in, indices A..B-1 are the machines being drained.
type Schedule struct {
	// B and A are the cluster sizes before and after the move.
	B, A int
	// P is the number of partitions per machine.
	P int
	// Rounds is the ordered migration rounds.
	Rounds []Round
	// PairFraction is the fraction of the whole database each machine
	// pair transfers: 1/(B*A).
	PairFraction float64
}

// BuildSchedule constructs the round schedule for a move from b to a
// machines with p partitions per machine, using the three strategies of
// Section 4.4.1 (Figure 4): when enough senders exist all new machines are
// added at once; when the delta is a multiple of the smaller cluster,
// machines are added in blocks just in time; otherwise a three-phase
// schedule keeps every sender busy in every round while still allocating
// machines as late as possible. A do-nothing move yields an empty schedule.
func BuildSchedule(b, a, p int) (*Schedule, error) {
	if b < 1 || a < 1 {
		return nil, fmt.Errorf("migration: cluster sizes B=%d, A=%d must be at least 1", b, a)
	}
	if p < 1 {
		return nil, fmt.Errorf("migration: partitions per machine %d must be at least 1", p)
	}
	s := &Schedule{B: b, A: a, P: p, PairFraction: 1 / float64(a*b)}
	if b == a {
		return s, nil
	}
	if b < a {
		s.Rounds = scaleOutRounds(b, a-b)
		return s, nil
	}
	// Scale-in mirrors scale-out: generate the rounds for growing from a to
	// b, reverse each transfer (data drains from the machines that would
	// have been filled) and reverse the round order so the machines that
	// would have been added last are drained first and can be released
	// earliest.
	out := scaleOutRounds(a, b-a)
	rounds := make([]Round, 0, len(out))
	for i := len(out) - 1; i >= 0; i-- {
		r := make(Round, len(out[i]))
		for j, tr := range out[i] {
			r[j] = Transfer{From: tr.To, To: tr.From}
		}
		rounds = append(rounds, r)
	}
	s.Rounds = rounds
	return s, nil
}

// scaleOutRounds builds the rounds for adding delta new machines to base
// existing ones. Existing machines are 0..base-1; new machines are
// base..base+delta-1.
func scaleOutRounds(base, delta int) []Round {
	// Case 1: base >= delta — all new machines at once; senders rotate.
	if base >= delta {
		rounds := make([]Round, 0, base)
		for i := 0; i < base; i++ {
			r := make(Round, 0, delta)
			for j := 0; j < delta; j++ {
				r = append(r, Transfer{From: (i + j) % base, To: base + j})
			}
			rounds = append(rounds, r)
		}
		return rounds
	}

	s := base
	blocks := delta / s
	r := delta % s

	// Case 2: delta is a perfect multiple of base — fill blocks of s new
	// machines one block at a time, each block taking s round-robin rounds.
	if r == 0 {
		rounds := make([]Round, 0, delta)
		for k := 0; k < blocks; k++ {
			rounds = append(rounds, blockRounds(s, base+k*s, s)...)
		}
		return rounds
	}

	// Case 3: three phases (Figure 4c, Table 1).
	var rounds []Round
	// Phase 1: blocks-1 full blocks, completely filled.
	for k := 0; k < blocks-1; k++ {
		rounds = append(rounds, blockRounds(s, base+k*s, s)...)
	}
	// Phase 2: one more block of s machines, filled only r/s of the way
	// (r rounds of the round-robin).
	p2start := base + (blocks-1)*s
	rounds = append(rounds, blockRounds(s, p2start, r)...)
	// Phase 3: the final r machines arrive; the s remaining transfers per
	// sender (finishing the phase-2 block plus filling the new machines)
	// are edge-colored into s full-parallelism rounds.
	p3start := base + delta - r
	type edge struct{ from, to int }
	var edges []edge
	for i := r; i < s; i++ { // unfinished phase-2 round-robin rounds
		for j := 0; j < s; j++ {
			edges = append(edges, edge{from: (i + j) % s, to: p2start + j})
		}
	}
	for to := p3start; to < base+delta; to++ {
		for from := 0; from < s; from++ {
			edges = append(edges, edge{from: from, to: to})
		}
	}
	// Bipartite edge coloring with s colors (König): every sender has
	// degree exactly s, so a proper s-coloring exists; each color class
	// becomes one round that uses every sender once.
	colorOf := colorBipartite(len(edges), s, func(k int) (int, int) {
		return edges[k].from, edges[k].to
	})
	phase3 := make([]Round, s)
	for k, e := range edges {
		c := colorOf[k]
		phase3[c] = append(phase3[c], Transfer{From: e.from, To: e.to})
	}
	// Order phase-3 rounds so the rounds that touch only already-allocated
	// machines come first, postponing the final r allocations. A round
	// containing a transfer to a phase-3 machine needs those machines; all
	// rounds do here, so sort by the smallest new-machine index touched,
	// descending stability is unnecessary — keep deterministic order by
	// sorting on each round's minimum receiver.
	sort.SliceStable(phase3, func(x, y int) bool {
		return maxReceiver(phase3[x]) < maxReceiver(phase3[y])
	})
	return append(rounds, phase3...)
}

// blockRounds produces count round-robin rounds filling the block of s new
// machines starting at blockStart from senders 0..s-1.
func blockRounds(s, blockStart, count int) []Round {
	rounds := make([]Round, 0, count)
	for i := 0; i < count; i++ {
		r := make(Round, 0, s)
		for j := 0; j < s; j++ {
			r = append(r, Transfer{From: (i + j) % s, To: blockStart + j})
		}
		rounds = append(rounds, r)
	}
	return rounds
}

func maxReceiver(r Round) int {
	m := -1
	for _, t := range r {
		if t.To > m {
			m = t.To
		}
	}
	return m
}

// colorBipartite properly colors the edges of a bipartite multigraph with
// colors 0..colors-1 using the alternating-path construction behind König's
// edge-coloring theorem. edgeAt returns the endpoints (left, right) of edge
// k; no vertex may have degree above colors.
func colorBipartite(nEdges, colors int, edgeAt func(int) (int, int)) []int {
	colorOf := make([]int, nEdges)
	// free[v][c] reports whether color c is unused at vertex v; vertices
	// on the two sides are tracked in separate maps. used[v][c] stores the
	// edge index using color c at v, or -1.
	type side map[int][]int
	newSide := func() side { return side{} }
	left, right := newSide(), newSide()
	slot := func(s side, v int) []int {
		if s[v] == nil {
			s[v] = make([]int, colors)
			for c := range s[v] {
				s[v][c] = -1
			}
		}
		return s[v]
	}
	freeColor := func(s side, v int) int {
		for c, e := range slot(s, v) {
			if e == -1 {
				return c
			}
		}
		return -1
	}
	for k := 0; k < nEdges; k++ {
		u, v := edgeAt(k)
		cu := freeColor(left, u)
		cv := freeColor(right, v)
		if slot(right, v)[cu] == -1 {
			colorOf[k] = cu
			slot(left, u)[cu] = k
			slot(right, v)[cu] = k
			continue
		}
		// cu is busy at v: collect the maximal alternating cu/cv path
		// starting at v, then swap the two colors along it. In a
		// bipartite graph the path cannot return to u, so after the swap
		// cu is free at v and the new edge can take it.
		var path []int
		vert, onLeft, want := v, false, cu
		for {
			var s side
			if onLeft {
				s = left
			} else {
				s = right
			}
			e := slot(s, vert)[want]
			if e == -1 {
				break
			}
			path = append(path, e)
			eu, ev := edgeAt(e)
			if onLeft {
				vert, onLeft = ev, false
			} else {
				vert, onLeft = eu, true
			}
			if want == cu {
				want = cv
			} else {
				want = cu
			}
		}
		for _, e := range path {
			eu, ev := edgeAt(e)
			slot(left, eu)[colorOf[e]] = -1
			slot(right, ev)[colorOf[e]] = -1
		}
		for _, e := range path {
			eu, ev := edgeAt(e)
			if colorOf[e] == cu {
				colorOf[e] = cv
			} else {
				colorOf[e] = cu
			}
			slot(left, eu)[colorOf[e]] = e
			slot(right, ev)[colorOf[e]] = e
		}
		colorOf[k] = cu
		slot(left, u)[cu] = k
		slot(right, v)[cu] = k
	}
	return colorOf
}
