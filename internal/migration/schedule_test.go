package migration

import (
	"testing"
	"testing/quick"
)

func TestBuildScheduleValidation(t *testing.T) {
	if _, err := BuildSchedule(0, 3, 1); err == nil {
		t.Error("B=0 should fail")
	}
	if _, err := BuildSchedule(3, 0, 1); err == nil {
		t.Error("A=0 should fail")
	}
	if _, err := BuildSchedule(3, 4, 0); err == nil {
		t.Error("P=0 should fail")
	}
}

func TestScheduleDoNothing(t *testing.T) {
	s, err := BuildSchedule(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() != 0 {
		t.Errorf("do-nothing move has %d rounds", s.NumRounds())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if got := s.MachinesAllocated(0); got != 4 {
		t.Errorf("MachinesAllocated = %d, want 4", got)
	}
	if got := s.FractionMoved(0); got != 1 {
		t.Errorf("FractionMoved = %v, want 1", got)
	}
}

// TestScheduleTable1 reproduces the paper's Table 1: scaling from 3 to 14
// machines with one partition per server completes in exactly 11 rounds
// (two phase-1 steps of 3 rounds, a 2-round phase 2, and a 3-round phase 3),
// and machines are allocated in blocks of 3, 3, 3, then 2.
func TestScheduleTable1(t *testing.T) {
	s, err := BuildSchedule(3, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() != 11 {
		t.Fatalf("3->14 schedule has %d rounds, want 11", s.NumRounds())
	}
	// Every round keeps all 3 senders busy (the point of the 3 phases).
	for i, r := range s.Rounds {
		if len(r) != 3 {
			t.Errorf("round %d has %d transfers, want 3", i, len(r))
		}
	}
	// Machine allocation profile: phase 1 runs with 6 then 9 machines,
	// phase 2 with 12, phase 3 with all 14.
	wantAlloc := []int{6, 6, 6, 9, 9, 9, 12, 12, 14, 14, 14}
	for i, want := range wantAlloc {
		if got := s.MachinesAllocated(i); got != want {
			t.Errorf("MachinesAllocated(round %d) = %d, want %d", i, got, want)
		}
	}
}

func TestScheduleCase1AllAtOnce(t *testing.T) {
	// 3 -> 5: delta=2 <= B: both new machines allocated from round 0.
	s, err := BuildSchedule(3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() != 3 {
		t.Errorf("3->5 has %d rounds, want 3", s.NumRounds())
	}
	for i := 0; i < s.NumRounds(); i++ {
		if got := s.MachinesAllocated(i); got != 5 {
			t.Errorf("MachinesAllocated(%d) = %d, want 5", i, got)
		}
	}
}

func TestScheduleCase2Blocks(t *testing.T) {
	// 3 -> 9: delta=6 = 2*B: two blocks of 3, allocated just in time.
	s, err := BuildSchedule(3, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() != 6 {
		t.Errorf("3->9 has %d rounds, want 6", s.NumRounds())
	}
	wantAlloc := []int{6, 6, 6, 9, 9, 9}
	for i, want := range wantAlloc {
		if got := s.MachinesAllocated(i); got != want {
			t.Errorf("MachinesAllocated(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestScheduleScaleInMirrors(t *testing.T) {
	// 14 -> 3 drains machines 3..13 into survivors 0..2, releasing the
	// drained machines as early as possible: allocation decreases over time.
	s, err := BuildSchedule(14, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() != 11 {
		t.Fatalf("14->3 has %d rounds, want 11", s.NumRounds())
	}
	prev := 15
	for i := 0; i < s.NumRounds(); i++ {
		got := s.MachinesAllocated(i)
		if got > prev {
			t.Errorf("allocation increased during scale-in: round %d has %d after %d", i, got, prev)
		}
		prev = got
	}
	if first := s.MachinesAllocated(0); first != 14 {
		t.Errorf("first round allocation = %d, want 14", first)
	}
	// The mirror of just-in-time allocation: by the last rounds only the
	// survivors plus the final draining block remain.
	if last := s.MachinesAllocated(s.NumRounds() - 1); last != 6 {
		t.Errorf("last round allocation = %d, want 6", last)
	}
}

// TestScheduleProperty validates the structural invariants across the whole
// plausible configuration space, including both scale directions and
// multi-partition machines.
func TestScheduleProperty(t *testing.T) {
	f := func(b, a, p uint8) bool {
		bb, aa, pp := int(b%24)+1, int(a%24)+1, int(p%4)+1
		s, err := BuildSchedule(bb, aa, pp)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScheduleTimeMatchesModel checks that executing the schedule takes
// exactly the T(B,A) the planner assumes (Equation 3), for every
// configuration: the schedule realizes the maximum parallelism.
func TestScheduleTimeMatchesModel(t *testing.T) {
	f := func(b, a, p uint8) bool {
		bb, aa, pp := int(b%24)+1, int(a%24)+1, int(p%4)+1
		if bb == aa {
			return true
		}
		m := Model{Q: 1, QMax: 1, D: 100, P: pp}
		s, err := BuildSchedule(bb, aa, pp)
		if err != nil {
			return false
		}
		return approxEq(s.TotalTime(m.D), m.MoveTime(bb, aa), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionTransfers(t *testing.T) {
	s, err := BuildSchedule(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRounds() == 0 {
		t.Fatal("no rounds")
	}
	pts := s.PartitionTransfers(s.Rounds[0])
	if len(pts) != len(s.Rounds[0])*2 {
		t.Fatalf("partition transfers = %d, want %d", len(pts), len(s.Rounds[0])*2)
	}
	for _, pt := range pts {
		if pt.FromPartition/2 >= 2 {
			t.Errorf("sender partition %d not on an original machine", pt.FromPartition)
		}
		if pt.ToPartition/2 < 2 || pt.ToPartition/2 >= 3 {
			t.Errorf("receiver partition %d not on the new machine", pt.ToPartition)
		}
		if !approxEq(pt.Fraction, s.PairFraction/2, 1e-12) {
			t.Errorf("fraction = %v, want %v", pt.Fraction, s.PairFraction/2)
		}
	}
}

func TestFractionMovedProgression(t *testing.T) {
	s, err := BuildSchedule(3, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i <= s.NumRounds(); i++ {
		f := s.FractionMoved(i)
		if f < prev {
			t.Errorf("FractionMoved not monotone at %d: %v < %v", i, f, prev)
		}
		prev = f
	}
	if got := s.FractionMoved(0); got != 0 {
		t.Errorf("FractionMoved(0) = %v, want 0", got)
	}
	if got := s.FractionMoved(s.NumRounds()); !approxEq(got, 1, 1e-12) {
		t.Errorf("FractionMoved(end) = %v, want 1", got)
	}
}
