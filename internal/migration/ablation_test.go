package migration

import "testing"

// naiveBlockRounds counts the rounds a schedule would need WITHOUT the
// three-phase trick: new machines allocated in blocks of s and each block
// filled completely before the next one starts (so the final partial block
// of r machines only uses r of the s senders per round).
func naiveBlockRounds(base, delta int) int {
	if base >= delta {
		return base
	}
	s := base
	full := delta / s
	r := delta % s
	rounds := full * s
	if r > 0 {
		// The last r receivers each need data from all s senders, but only
		// r transfers can run per round (receiver-limited).
		rounds += s
	}
	return rounds
}

// TestThreePhaseSavesRounds is the ablation behind Table 1's design: the
// three-phase schedule finishes 3->14 in 11 rounds where the naive
// block-at-a-time schedule needs 12, and it never does worse anywhere in
// the plane.
func TestThreePhaseSavesRounds(t *testing.T) {
	s, err := BuildSchedule(3, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, naive := s.NumRounds(), naiveBlockRounds(3, 11); got != 11 || naive != 12 {
		t.Errorf("3->14: three-phase %d rounds vs naive %d; want 11 vs 12 (paper Section 4.4.1)", got, naive)
	}
	saved := 0
	for b := 1; b <= 12; b++ {
		for a := 1; a <= 24; a++ {
			if a <= b {
				continue
			}
			s, err := BuildSchedule(b, a, 1)
			if err != nil {
				t.Fatal(err)
			}
			naive := naiveBlockRounds(b, a-b)
			if s.NumRounds() > naive {
				t.Errorf("%d->%d: three-phase %d rounds worse than naive %d", b, a, s.NumRounds(), naive)
			}
			if s.NumRounds() < naive {
				saved++
			}
		}
	}
	if saved == 0 {
		t.Error("three-phase scheduling never saved a round anywhere; ablation should show savings")
	}
}

// TestScheduleKeepsSendersBusy verifies the property the three phases buy:
// in every round of a scale-out with delta > base, all base senders are
// transferring — the schedule never leaves a sender idle, which is what
// makes it achieve the Equation 2 parallelism bound exactly.
func TestScheduleKeepsSendersBusy(t *testing.T) {
	for _, c := range []struct{ b, a int }{{3, 14}, {2, 5}, {4, 11}, {5, 23}} {
		s, err := BuildSchedule(c.b, c.a, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, round := range s.Rounds {
			if len(round) != c.b {
				t.Errorf("%d->%d round %d uses %d senders, want all %d", c.b, c.a, i, len(round), c.b)
			}
		}
	}
}
