package migration

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testModel() Model { return Model{Q: 285, QMax: 350, D: 77, P: 6} }

func TestModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []Model{
		{Q: 0, QMax: 1, D: 1, P: 1},
		{Q: 2, QMax: 1, D: 1, P: 1},
		{Q: 1, QMax: 1, D: -1, P: 1},
		{Q: 1, QMax: 1, D: 1, P: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestMaxParallelEquation2(t *testing.T) {
	m := Model{Q: 1, QMax: 1, D: 1, P: 1}
	cases := []struct{ b, a, want int }{
		{3, 3, 0},
		{3, 5, 2},   // min(3, 2) = 2
		{3, 9, 3},   // min(3, 6) = 3
		{3, 14, 3},  // min(3, 11) = 3
		{14, 3, 3},  // scale-in: min(3, 11) = 3
		{5, 3, 2},   // min(3, 2) = 2
		{10, 11, 1}, // min(10, 1) = 1
	}
	for _, c := range cases {
		if got := m.MaxParallel(c.b, c.a); got != c.want {
			t.Errorf("MaxParallel(%d, %d) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
	m.P = 6
	if got := m.MaxParallel(3, 14); got != 18 {
		t.Errorf("MaxParallel with P=6 = %d, want 18", got)
	}
}

func TestMoveTimeEquation3(t *testing.T) {
	m := Model{Q: 1, QMax: 1, D: 42, P: 1}
	if got := m.MoveTime(3, 3); got != 0 {
		t.Errorf("MoveTime(3,3) = %v, want 0", got)
	}
	// 3 -> 14: D/3 * (1 - 3/14) = 42/3 * 11/14 = 11.
	if got := m.MoveTime(3, 14); !approxEq(got, 11, 1e-12) {
		t.Errorf("MoveTime(3,14) = %v, want 11", got)
	}
	// Scale-in mirrors: 14 -> 3: D/3 * (1 - 3/14) = 11.
	if got := m.MoveTime(14, 3); !approxEq(got, 11, 1e-12) {
		t.Errorf("MoveTime(14,3) = %v, want 11", got)
	}
	// 3 -> 5: D/2 * (1 - 3/5) = 21 * 0.4 = 8.4.
	if got := m.MoveTime(3, 5); !approxEq(got, 8.4, 1e-12) {
		t.Errorf("MoveTime(3,5) = %v, want 8.4", got)
	}
	if got := m.MoveIntervals(3, 5); got != 9 {
		t.Errorf("MoveIntervals(3,5) = %d, want 9", got)
	}
	if got := m.MoveIntervals(3, 3); got != 0 {
		t.Errorf("MoveIntervals(3,3) = %d, want 0", got)
	}
}

func TestMoveTimeSymmetry(t *testing.T) {
	m := testModel()
	f := func(b, a uint8) bool {
		bb, aa := int(b%20)+1, int(a%20)+1
		return approxEq(m.MoveTime(bb, aa), m.MoveTime(aa, bb), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgMachAllocAlgorithm4(t *testing.T) {
	m := testModel()
	// Expectations computed by hand from Algorithm 4:
	//   3->5:  delta=2 <= s=3, case 1 -> l = 5.
	//   3->6:  delta=3, r=0, case 2 -> (2*3+6)/2 = 6.
	//   3->9:  delta=6, r=0, case 2 -> (2*3+9)/2 = 7.5.
	//   3->14: delta=11, r=2, case 3:
	//     phase1: N1=floor(11/3)-1=2, T1=3/11, M1=(3+14-2)/2=7.5 -> 45/11
	//     phase2: T2=2/11, M2=14-2=12                            -> 24/11
	//     phase3: T3=3/11, M3=14                                 -> 42/11
	//     total = 111/11 ≈ 10.09.
	cases := []struct {
		b, a int
		want float64
	}{
		{3, 3, 3},
		{3, 5, 5},
		{3, 6, 6},
		{3, 9, 7.5},
		{9, 3, 7.5},
		{3, 14, 111.0 / 11},
		{14, 3, 111.0 / 11},
	}
	for _, c := range cases {
		if got := m.AvgMachAlloc(c.b, c.a); !approxEq(got, c.want, 1e-9) {
			t.Errorf("AvgMachAlloc(%d, %d) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestAvgMachAllocBounds(t *testing.T) {
	m := testModel()
	f := func(b, a uint8) bool {
		bb, aa := int(b%30)+1, int(a%30)+1
		avg := m.AvgMachAlloc(bb, aa)
		lo, hi := float64(min(bb, aa)), float64(max(bb, aa))
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgMachAllocSymmetric(t *testing.T) {
	m := testModel()
	f := func(b, a uint8) bool {
		bb, aa := int(b%30)+1, int(a%30)+1
		return approxEq(m.AvgMachAlloc(bb, aa), m.AvgMachAlloc(aa, bb), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoveCost(t *testing.T) {
	m := Model{Q: 1, QMax: 1, D: 42, P: 1}
	// C(3,14) = T * avg = 11 * 111/11 = 111.
	if got := m.MoveCost(3, 14); !approxEq(got, 111, 1e-9) {
		t.Errorf("MoveCost(3,14) = %v, want 111", got)
	}
	if got := m.MoveCost(4, 4); got != 0 {
		t.Errorf("MoveCost(4,4) = %v, want 0", got)
	}
}

func TestEffCapEquation7(t *testing.T) {
	m := Model{Q: 100, QMax: 120, D: 1, P: 1}
	// No move: plain capacity.
	if got := m.EffCap(4, 4, 0.5); got != 400 {
		t.Errorf("EffCap(4,4,.5) = %v, want 400", got)
	}
	// Scale-out start: capacity of B machines.
	if got := m.EffCap(3, 14, 0); !approxEq(got, 300, 1e-9) {
		t.Errorf("EffCap(3,14,0) = %v, want 300", got)
	}
	// Scale-out end: capacity of A machines.
	if got := m.EffCap(3, 14, 1); !approxEq(got, 1400, 1e-9) {
		t.Errorf("EffCap(3,14,1) = %v, want 1400", got)
	}
	// Midpoint 3->5: each of 3 servers holds 1/3 - 0.5*(1/3-1/5) = 4/15;
	// eff-cap = Q * 15/4 = 375.
	if got := m.EffCap(3, 5, 0.5); !approxEq(got, 375, 1e-9) {
		t.Errorf("EffCap(3,5,0.5) = %v, want 375", got)
	}
	// Scale-in start/end.
	if got := m.EffCap(5, 3, 0); !approxEq(got, 500, 1e-9) {
		t.Errorf("EffCap(5,3,0) = %v, want 500", got)
	}
	if got := m.EffCap(5, 3, 1); !approxEq(got, 300, 1e-9) {
		t.Errorf("EffCap(5,3,1) = %v, want 300", got)
	}
	// Clamping.
	if got := m.EffCap(3, 5, -1); !approxEq(got, 300, 1e-9) {
		t.Errorf("EffCap clamp low = %v, want 300", got)
	}
	if got := m.EffCap(3, 5, 2); !approxEq(got, 500, 1e-9) {
		t.Errorf("EffCap clamp high = %v, want 500", got)
	}
}

// TestEffCapMonotone verifies the planning-critical property: effective
// capacity rises monotonically during scale-out and falls during scale-in,
// and always stays between cap(min) and cap(max).
func TestEffCapMonotone(t *testing.T) {
	m := testModel()
	f := func(b, a uint8, steps uint8) bool {
		bb, aa := int(b%20)+1, int(a%20)+1
		n := int(steps%20) + 2
		prev := math.Inf(-1)
		if bb > aa {
			prev = math.Inf(1)
		}
		for i := 0; i <= n; i++ {
			fr := float64(i) / float64(n)
			c := m.EffCap(bb, aa, fr)
			lo := m.Cap(min(bb, aa))
			hi := m.Cap(max(bb, aa))
			if c < lo-1e-6 || c > hi+1e-6 {
				return false
			}
			if bb < aa && c < prev-1e-9 {
				return false
			}
			if bb > aa && c > prev+1e-9 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachinesFor(t *testing.T) {
	m := Model{Q: 285, QMax: 350, D: 1, P: 1}
	if got := m.MachinesFor(0); got != 1 {
		t.Errorf("MachinesFor(0) = %d, want 1", got)
	}
	if got := m.MachinesFor(285); got != 1 {
		t.Errorf("MachinesFor(285) = %d, want 1", got)
	}
	if got := m.MachinesFor(286); got != 2 {
		t.Errorf("MachinesFor(286) = %d, want 2", got)
	}
	if got := m.MachinesFor(2850); got != 10 {
		t.Errorf("MachinesFor(2850) = %d, want 10", got)
	}
}
