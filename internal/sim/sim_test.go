package sim

import (
	"math"
	"testing"

	"pstore/internal/elastic"
	"pstore/internal/migration"
	"pstore/internal/predictor"
	"pstore/internal/workload"
)

func model() migration.Model {
	// Q and QMax follow the paper's discovered values (285/350 txn/s);
	// loads below are requests per minute at 5-minute intervals, so use
	// per-minute capacity: Q = 285*60? Keep units consistent instead:
	// the test traces are in requests/interval-minute and Q is matched.
	return migration.Model{Q: 2850, QMax: 3500, D: 15.4, P: 6}
}

// fixedController replays a scripted decision sequence.
type fixedController struct {
	at      map[int]*elastic.Decision
	tick    int
	sawLoad []float64
}

func (f *fixedController) Name() string { return "fixed" }
func (f *fixedController) Tick(machines int, reconfiguring bool, load float64) (*elastic.Decision, error) {
	d := f.at[f.tick]
	f.tick++
	f.sawLoad = append(f.sawLoad, load)
	if reconfiguring {
		return nil, nil
	}
	return d, nil
}

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSimValidation(t *testing.T) {
	s := &Sim{Model: model()}
	if _, err := s.Run(nil, elastic.Static{}, 1); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := s.Run(flat(5, 1), elastic.Static{}, 0); err == nil {
		t.Error("zero machines accepted")
	}
	bad := &Sim{Model: migration.Model{}}
	if _, err := bad.Run(flat(5, 1), elastic.Static{}, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimStaticCostAndViolations(t *testing.T) {
	s := &Sim{Model: model()}
	load := flat(10, 2000)
	load[4] = 9000 // exceeds cap(3) = 8550 for one interval
	res, err := s.Run(load, elastic.Static{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 30 {
		t.Errorf("cost = %v, want 30", res.Cost)
	}
	if res.Insufficient != 1 {
		t.Errorf("insufficient = %d, want 1", res.Insufficient)
	}
	if res.Moves != 0 {
		t.Errorf("moves = %d, want 0", res.Moves)
	}
	if got := res.InsufficientFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("fraction = %v, want 0.1", got)
	}
	if got := res.AverageMachines(); got != 3 {
		t.Errorf("avg machines = %v, want 3", got)
	}
}

func TestSimMoveMechanics(t *testing.T) {
	m := model()
	s := &Sim{Model: m}
	// Scripted 2 -> 4 at tick 1. T(2,4) = ceil(15.4/12*(1-0.5)) = 1
	// interval — too fast to observe; use a slower model.
	m.D = 120
	m.P = 1
	s.Model = m
	// T(2,4) = 120/2 * 0.5 = 30 intervals.
	ctrl := &fixedController{at: map[int]*elastic.Decision{1: {Target: 4, RateFactor: 1}}}
	load := flat(40, 1000)
	res, err := s.Run(load, ctrl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 1 {
		t.Fatalf("moves = %d, want 1", res.Moves)
	}
	// Intervals 0..1: steady at 2 machines; 2..31: migrating; 32..: 4.
	if res.Machines[0] != 2 || res.EffCap[0] != m.Cap(2) {
		t.Errorf("interval 0: machines %v cap %v", res.Machines[0], res.EffCap[0])
	}
	if res.Machines[39] != 4 || res.EffCap[39] != m.Cap(4) {
		t.Errorf("interval 39: machines %v cap %v", res.Machines[39], res.EffCap[39])
	}
	// During the move effective capacity grows monotonically between
	// cap(2) and cap(4), and allocation is 4 (case 1: all at once).
	prev := m.Cap(2) - 1
	for i := 2; i < 32; i++ {
		if res.EffCap[i] < prev-1e-9 {
			t.Fatalf("eff-cap not monotone at %d: %v < %v", i, res.EffCap[i], prev)
		}
		prev = res.EffCap[i]
		if res.Machines[i] != 4 {
			t.Errorf("interval %d: machines %v, want 4 during case-1 move", i, res.Machines[i])
		}
	}
	if res.EffCap[31] != m.Cap(4) {
		t.Errorf("end of move eff-cap = %v, want %v", res.EffCap[31], m.Cap(4))
	}
}

func TestSimEmergencyRateShortensMove(t *testing.T) {
	m := model()
	m.D = 120
	m.P = 1
	run := func(rate float64) int {
		s := &Sim{Model: m}
		ctrl := &fixedController{at: map[int]*elastic.Decision{0: {Target: 4, RateFactor: rate, Emergency: rate > 1}}}
		res, err := s.Run(flat(60, 1000), ctrl, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Count migrating intervals: allocation above 2 before steady 4.
		n := 0
		for i := range res.Machines {
			if res.EffCap[i] > m.Cap(2) && res.EffCap[i] < m.Cap(4) {
				n++
			}
		}
		if rate > 1 && res.EmergencyMoves != 1 {
			t.Errorf("emergency moves = %d, want 1", res.EmergencyMoves)
		}
		return n
	}
	slow := run(1)
	fast := run(8)
	if fast >= slow {
		t.Errorf("rate x8 migrating intervals %d not fewer than x1 %d", fast, slow)
	}
}

func TestSimRespectsMaxMachines(t *testing.T) {
	s := &Sim{Model: model(), MaxMachines: 3}
	ctrl := &fixedController{at: map[int]*elastic.Decision{0: {Target: 8, RateFactor: 1}}}
	res, err := s.Run(flat(20, 1000), ctrl, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, mch := range res.Machines {
		if mch > 3 {
			t.Fatalf("interval %d allocated %v machines beyond cap", i, mch)
		}
	}
	_ = res
}

// buildTrace produces a 5-minute-interval retail trace in requests/minute.
func buildTrace(t *testing.T, days int, blackFriday int) []float64 {
	t.Helper()
	cfg := workload.DefaultB2WConfig(21, days)
	cfg.PromosPerWeek = 0
	cfg.BlackFridayDay = blackFriday
	series, err := workload.SyntheticB2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	five, err := series.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	return five.Values
}

// TestSimPredictiveOracleBeatsStaticAndReactive reproduces the core
// qualitative result of Figure 12 on a short trace: with near-perfect
// predictions P-Store uses far fewer machine-intervals than peak-static
// while keeping capacity shortfalls near zero, and suffers fewer shortfall
// intervals than the reactive strategy.
func TestSimPredictiveOracleBeatsStaticAndReactive(t *testing.T) {
	m := model()
	trace := buildTrace(t, 4, -1)
	peak := 0.0
	for _, v := range trace {
		peak = math.Max(peak, v)
	}
	peakMachines := m.MachinesFor(peak)
	if peakMachines < 7 {
		t.Fatalf("trace peak %v needs only %d machines; test expects a tall diurnal wave", peak, peakMachines)
	}
	n0 := m.MachinesFor(trace[0])

	// P-Store with oracle predictions.
	oracle := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := oracle.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	pstore := &elastic.Predictive{
		Model:     m,
		Predictor: oracle,
		Horizon:   24,
		Inflation: 0.05,
	}
	s := &Sim{Model: m}
	resP, err := s.Run(trace, pstore, n0)
	if err != nil {
		t.Fatal(err)
	}

	// Reactive.
	reactive := &elastic.Reactive{Model: m}
	resR, err := (&Sim{Model: m}).Run(trace, reactive, n0)
	if err != nil {
		t.Fatal(err)
	}

	// Static peak.
	resS, err := (&Sim{Model: m}).Run(trace, elastic.Static{}, peakMachines)
	if err != nil {
		t.Fatal(err)
	}

	if resP.Moves == 0 {
		t.Fatal("P-Store never reconfigured on a 10x diurnal wave")
	}
	if frac := resP.InsufficientFraction(); frac > 0.02 {
		t.Errorf("P-Store oracle shortfall fraction %.4f, want near zero", frac)
	}
	if resP.Cost > 0.65*resS.Cost {
		t.Errorf("P-Store cost %v not well below static peak cost %v (the paper reports ~50%%)",
			resP.Cost, resS.Cost)
	}
	if resR.Insufficient <= resP.Insufficient {
		t.Errorf("reactive shortfalls (%d) should exceed P-Store's (%d)",
			resR.Insufficient, resP.Insufficient)
	}
	if resS.Insufficient != 0 {
		t.Errorf("static peak should have no shortfall, got %d", resS.Insufficient)
	}
}

// TestSimSimpleBreaksOnBlackFriday reproduces Figure 13: the time-of-day
// strategy matches the normal pattern but collapses when Black Friday
// deviates from it, while P-Store absorbs the surge.
func TestSimSimpleBreaksOnBlackFriday(t *testing.T) {
	m := model()
	trace := buildTrace(t, 8, 7)
	slotsPerDay := 288

	peakNormal := 0.0
	for _, v := range trace[:7*slotsPerDay] {
		peakNormal = math.Max(peakNormal, v)
	}
	simple := &elastic.Simple{
		SlotsPerDay:   slotsPerDay,
		MorningSlot:   7 * 12, // 07:00
		NightSlot:     23 * 12,
		DayMachines:   m.MachinesFor(peakNormal),
		NightMachines: max(m.MachinesFor(peakNormal/6), 1),
	}
	n0 := simple.NightMachines
	resSimple, err := (&Sim{Model: m}).Run(trace, simple, n0)
	if err != nil {
		t.Fatal(err)
	}

	oracle := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := oracle.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	pstore := &elastic.Predictive{Model: m, Predictor: oracle, Horizon: 24, Inflation: 0.05}
	resP, err := (&Sim{Model: m}).Run(trace, pstore, n0)
	if err != nil {
		t.Fatal(err)
	}

	// Count shortfalls on Black Friday (day 7).
	bfShortSimple, bfShortP := 0, 0
	for i := 7 * slotsPerDay; i < 8*slotsPerDay; i++ {
		if trace[i] > resSimple.EffCap[i]+1e-9 {
			bfShortSimple++
		}
		if trace[i] > resP.EffCap[i]+1e-9 {
			bfShortP++
		}
	}
	if bfShortSimple < slotsPerDay/10 {
		t.Errorf("Simple shortfall on Black Friday only %d intervals; expected a collapse", bfShortSimple)
	}
	if bfShortP*3 > bfShortSimple {
		t.Errorf("P-Store Black Friday shortfalls (%d) not well below Simple's (%d)", bfShortP, bfShortSimple)
	}
}
