package sim

import (
	"testing"

	"pstore/internal/elastic"
	"pstore/internal/predictor"
	"pstore/internal/workload"
)

// newNoisyTrace builds a diurnal trace with enough noise and promo activity
// that prediction error matters.
func newNoisyTrace(t *testing.T) []float64 {
	t.Helper()
	cfg := workload.DefaultB2WConfig(31, 6)
	cfg.NoiseFrac = 0.08
	cfg.PromosPerWeek = 2
	series, err := workload.SyntheticB2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	five, err := series.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	return five.Values
}

func runPredictive(t *testing.T, trace []float64, inflation float64, scaleInConfirm int) *Result {
	t.Helper()
	m := model()
	oracleish := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := oracleish.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	ctrl := &elastic.Predictive{
		Model:          m,
		Predictor:      oracleish,
		Horizon:        24,
		Inflation:      inflation,
		ScaleInConfirm: scaleInConfirm,
	}
	res, err := (&Sim{Model: m}).Run(trace, ctrl, m.MachinesFor(trace[0]*1.2))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInflationAblation isolates the paper's 15% prediction-inflation knob:
// with a deliberately imperfect predictor (SPAR under noise), inflating
// predictions buys fewer capacity shortfalls at a higher machine cost —
// exactly the "buffer" trade-off that positions points along Figure 12's
// capacity-cost curve.
func TestInflationAblation(t *testing.T) {
	trace := newNoisyTrace(t)
	m := model()
	slotsPerDay := workload.MinutesPerDay / 5
	train := trace[:4*slotsPerDay]

	run := func(inflation float64) *Result {
		spar := predictor.NewSPAR(slotsPerDay, 3, 6)
		online := predictor.NewOnline(spar, 0, 0)
		if err := online.ObserveAll(train); err != nil {
			t.Fatal(err)
		}
		ctrl := &elastic.Predictive{
			Model:     m,
			Predictor: online,
			Horizon:   24,
			Inflation: inflation,
		}
		res, err := (&Sim{Model: m}).Run(trace, ctrl, m.MachinesFor(trace[0]*1.2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	deflated := run(0)
	inflated := run(0.20)
	if inflated.Cost <= deflated.Cost {
		t.Errorf("inflated cost %.0f should exceed deflated %.0f (the buffer is not free)",
			inflated.Cost, deflated.Cost)
	}
	if inflated.Insufficient > deflated.Insufficient {
		t.Errorf("inflation made shortfalls worse: %d vs %d",
			inflated.Insufficient, deflated.Insufficient)
	}
}

// TestScaleInConfirmationAblation isolates the paper's three-cycle scale-in
// rule (Section 6): without confirmation the controller executes far more
// reconfigurations on a noisy trace, for essentially the same capacity
// outcome — the rule exists to suppress flapping, not to add capacity.
func TestScaleInConfirmationAblation(t *testing.T) {
	trace := newNoisyTrace(t)
	eager := runPredictive(t, trace, 0.10, 1)
	confirmed := runPredictive(t, trace, 0.10, 6)
	if confirmed.Moves >= eager.Moves {
		t.Errorf("confirmation did not reduce reconfigurations: %d (confirmed) vs %d (eager)",
			confirmed.Moves, eager.Moves)
	}
	// The capacity outcome must not get materially worse.
	if confirmed.Insufficient > eager.Insufficient+len(trace)/100 {
		t.Errorf("confirmation hurt capacity: %d vs %d shortfall intervals",
			confirmed.Insufficient, eager.Insufficient)
	}
}

// TestEffectiveCapacityPlanningMatters demonstrates why the planner checks
// Equation 7 instead of nominal capacity: a controller whose plan starts a
// large scale-out exactly when demand reaches the old capacity is late,
// because effective capacity during the move is below cap(A). The DP starts
// earlier; a naive "start when needed" policy accrues shortfalls.
func TestEffectiveCapacityPlanningMatters(t *testing.T) {
	m := model()
	m.D = 60 // slow migrations make the effect visible but remain feasible
	m.P = 2  // T(2,6) = 60/4 * (1 - 2/6) = 10 intervals
	// Demand ramps from 1.5 to 6 machines' worth over 40 intervals.
	trace := make([]float64, 80)
	for i := range trace {
		frac := float64(i) / 40
		if frac > 1 {
			frac = 1
		}
		trace[i] = m.Q * (1.5 + 4.5*frac)
	}
	oracle := predictor.NewOnline(predictor.NewOracle(trace), 0, 0)
	if err := oracle.ObserveAll(nil); err != nil {
		t.Fatal(err)
	}
	pstore := &elastic.Predictive{Model: m, Predictor: oracle, Horizon: 40, Inflation: 0.02}
	resP, err := (&Sim{Model: m}).Run(trace, pstore, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Naive policy: scale out only when the load reaches current capacity.
	naive := &elastic.Reactive{Model: m, HighFraction: m.Q / m.QMax, ScaleOutConfirm: 1, Headroom: 1.3}
	resN, err := (&Sim{Model: m}).Run(trace, naive, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Insufficient >= resN.Insufficient {
		t.Errorf("eff-cap-aware planning (%d shortfalls) should beat capacity-edge reaction (%d)",
			resP.Insufficient, resN.Insufficient)
	}
	if resP.Insufficient > 2 {
		t.Errorf("P-Store shortfalls %d on a fully predictable ramp, want ~0", resP.Insufficient)
	}
}
