// Package sim is the long-horizon analytic simulator behind the paper's
// Section 8.3 study (Figures 12 and 13): running the live benchmark for
// months is impractical, so allocation strategies are replayed against a
// load trace using the capacity model of Section 4.4 — every interval the
// cluster either holds steady at cap(N) or progresses through a migration
// whose effective capacity follows Equation 7 and whose machine allocation
// follows the three-phase schedule. The simulator reports the total cost
// (Equation 1) and the fraction of time with insufficient capacity.
package sim

import (
	"fmt"
	"math"

	"pstore/internal/elastic"
	"pstore/internal/migration"
)

// Result summarizes one simulated run.
type Result struct {
	// Cost is the total machine-intervals allocated (Equation 1).
	Cost float64
	// Intervals is the trace length.
	Intervals int
	// Insufficient is the number of intervals where load exceeded the
	// effective capacity.
	Insufficient int
	// Moves counts completed reconfigurations; EmergencyMoves counts the
	// subset issued by emergency (infeasible-plan) decisions.
	Moves, EmergencyMoves int
	// Machines is the allocated machine count per interval.
	Machines []float64
	// EffCap is the effective capacity per interval.
	EffCap []float64
}

// InsufficientFraction is the fraction of intervals with capacity shortfall
// (the y-axis of Figure 12).
func (r *Result) InsufficientFraction() float64 {
	if r.Intervals == 0 {
		return 0
	}
	return float64(r.Insufficient) / float64(r.Intervals)
}

// AverageMachines is the time-averaged allocation.
func (r *Result) AverageMachines() float64 {
	if r.Intervals == 0 {
		return 0
	}
	return r.Cost / float64(r.Intervals)
}

// Sim replays a controller against a load trace.
type Sim struct {
	// Model supplies capacity and migration figures; Model.D must be
	// expressed in trace intervals.
	Model migration.Model
	// MaxMachines bounds cluster growth (0 = the trace peak requirement).
	MaxMachines int
}

// activeMove tracks a reconfiguration in flight.
type activeMove struct {
	from, to  int
	duration  int // intervals
	elapsed   int
	emergency bool
	sched     *migration.Schedule
}

// Run simulates the controller over the load trace starting from n0
// machines. The controller's Tick runs at the end of every interval; a
// returned decision starts a move at the beginning of the next interval.
func (s *Sim) Run(load []float64, ctrl elastic.Controller, n0 int) (*Result, error) {
	if err := s.Model.Validate(); err != nil {
		return nil, err
	}
	if n0 < 1 {
		return nil, fmt.Errorf("sim: initial machines %d must be at least 1", n0)
	}
	if len(load) == 0 {
		return nil, fmt.Errorf("sim: empty load trace")
	}
	res := &Result{
		Intervals: len(load),
		Machines:  make([]float64, len(load)),
		EffCap:    make([]float64, len(load)),
	}
	machines := n0
	var mv *activeMove

	for t, l := range load {
		var effCap, alloc float64
		if mv != nil {
			mv.elapsed++
			f := float64(mv.elapsed) / float64(mv.duration)
			effCap = s.Model.EffCap(mv.from, mv.to, f)
			rounds := mv.sched.NumRounds()
			if rounds > 0 {
				round := min(int(f*float64(rounds)), rounds-1)
				alloc = float64(mv.sched.MachinesAllocated(round))
			} else {
				alloc = float64(max(mv.from, mv.to))
			}
			if mv.elapsed >= mv.duration {
				machines = mv.to
				res.Moves++
				if mv.emergency {
					res.EmergencyMoves++
				}
				mv = nil
			}
		} else {
			effCap = s.Model.Cap(machines)
			alloc = float64(machines)
		}
		if l > effCap+1e-9 {
			res.Insufficient++
		}
		res.Cost += alloc
		res.Machines[t] = alloc
		res.EffCap[t] = effCap

		dec, err := ctrl.Tick(machines, mv != nil, l)
		if err != nil {
			return nil, fmt.Errorf("sim: interval %d: %w", t, err)
		}
		if dec == nil || mv != nil || dec.Target == machines {
			continue
		}
		target := dec.Target
		if target < 1 {
			return nil, fmt.Errorf("sim: interval %d: controller asked for %d machines", t, target)
		}
		if s.MaxMachines > 0 && target > s.MaxMachines {
			target = s.MaxMachines
			if target == machines {
				continue
			}
		}
		rate := dec.RateFactor
		if rate <= 0 {
			rate = 1
		}
		dur := int(math.Ceil(float64(s.Model.MoveIntervals(machines, target)) / rate))
		if dur < 1 {
			dur = 1
		}
		sched, err := migration.BuildSchedule(machines, target, s.Model.P)
		if err != nil {
			return nil, fmt.Errorf("sim: interval %d: %w", t, err)
		}
		mv = &activeMove{
			from:      machines,
			to:        target,
			duration:  dur,
			emergency: dec.Emergency,
			sched:     sched,
		}
	}
	return res, nil
}
