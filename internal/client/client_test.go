package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/store"
	"pstore/internal/wire"
)

// wireHandler scripts a server: it answers each txn request with the next
// response in the sequence, recording the headers it saw.
type wireHandler struct {
	mu        sync.Mutex
	responses []wire.Response
	calls     int
	deadlines []string
}

func (h *wireHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	resp := wire.Response{Status: 200, Value: []byte(`"ok"`)}
	if h.calls < len(h.responses) {
		resp = h.responses[h.calls]
	}
	h.calls++
	h.deadlines = append(h.deadlines, r.Header.Get(wire.HeaderDeadlineMs))
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if resp.RetryAfterMs > 0 {
		w.Header().Set(wire.HeaderRetryAfterMs, strconv.FormatInt(resp.RetryAfterMs, 10))
	}
	w.WriteHeader(resp.Status)
	_ = json.NewEncoder(w).Encode(resp)
}

func testClient(t *testing.T, h http.Handler, cfg Config) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	cfg.Addr = ts.URL
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestExecuteSuccess(t *testing.T) {
	h := &wireHandler{}
	c := testClient(t, h, Config{})
	v, err := c.Execute(context.Background(), "echo", "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != `"ok"` {
		t.Fatalf("value = %s", v)
	}
	cc := c.Counters()
	if cc.Started != 1 || cc.Completed != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

// TestSentinelMapping checks that refused work surfaces with the same typed
// errors an in-process caller would see.
func TestSentinelMapping(t *testing.T) {
	cases := []struct {
		resp     wire.Response
		sentinel error
	}{
		{wire.Response{Status: 429, Code: wire.CodeOverload, Error: "full"}, store.ErrOverload},
		{wire.Response{Status: 504, Code: wire.CodeDeadline, Error: "late"}, store.ErrDeadlineExceeded},
		{wire.Response{Status: 503, Code: wire.CodePartitionDown, Error: "down"}, store.ErrPartitionDown},
		{wire.Response{Status: 400, Code: wire.CodeUnknownTxn, Error: "what"}, store.ErrUnknownTxn},
	}
	for _, tc := range cases {
		h := &wireHandler{responses: []wire.Response{tc.resp}}
		c := testClient(t, h, Config{})
		_, err := c.Execute(context.Background(), "t", "k", nil)
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("status %d: errors.Is(%v, %v) = false", tc.resp.Status, err, tc.sentinel)
		}
		var remote *RemoteError
		if !errors.As(err, &remote) || remote.Code != tc.resp.Code {
			t.Errorf("status %d: not a RemoteError with code %q: %v", tc.resp.Status, tc.resp.Code, err)
		}
	}
}

// TestRetryHonorsHint checks a refused request is retried after the server's
// hint and succeeds, and that the wait really happened.
func TestRetryHonorsHint(t *testing.T) {
	const hintMs = 30
	h := &wireHandler{responses: []wire.Response{
		{Status: 429, Code: wire.CodeOverload, Error: "full", RetryAfterMs: hintMs},
	}}
	c := testClient(t, h, Config{RetryRefused: 2})
	start := time.Now()
	v, err := c.Execute(context.Background(), "t", "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != `"ok"` {
		t.Fatalf("value = %s", v)
	}
	if waited := time.Since(start); waited < hintMs*time.Millisecond {
		t.Fatalf("retried after %v, hint was %dms", waited, hintMs)
	}
	cc := c.Counters()
	if cc.Retried != 1 || cc.Refused != 0 || cc.Completed != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

func TestRefusedAfterRetriesExhausted(t *testing.T) {
	h := &wireHandler{responses: []wire.Response{
		{Status: 429, Code: wire.CodeOverload, RetryAfterMs: 1},
		{Status: 429, Code: wire.CodeOverload, RetryAfterMs: 1},
		{Status: 429, Code: wire.CodeOverload, RetryAfterMs: 1},
	}}
	c := testClient(t, h, Config{RetryRefused: 2})
	_, err := c.Execute(context.Background(), "t", "k", nil)
	if !errors.Is(err, store.ErrOverload) {
		t.Fatalf("err = %v, want overload", err)
	}
	cc := c.Counters()
	if cc.Retried != 2 || cc.Refused != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

// TestInFlightCap checks arrivals beyond MaxInFlight shed locally with
// ErrSaturated (which matches store.ErrOverload) without touching the wire.
func TestInFlightCap(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(entered.Done)
		<-release
		w.WriteHeader(200)
		_ = json.NewEncoder(w).Encode(wire.Response{Status: 200, Value: []byte("null")})
	})
	c := testClient(t, slow, Config{MaxInFlight: 1})

	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		_, _ = c.Execute(context.Background(), "t", "k", nil)
	}()
	entered.Wait() // the one slot is now held server-side

	_, err := c.Execute(context.Background(), "t", "k2", nil)
	if !errors.Is(err, ErrSaturated) || !errors.Is(err, store.ErrOverload) {
		t.Fatalf("err = %v, want ErrSaturated wrapping ErrOverload", err)
	}
	close(release)
	bg.Wait()
	cc := c.Counters()
	if cc.Shed != 1 || cc.Started != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

// TestDeadlineHeader checks the configured deadline reaches the server as
// the wire header.
func TestDeadlineHeader(t *testing.T) {
	h := &wireHandler{}
	c := testClient(t, h, Config{Deadline: 250 * time.Millisecond})
	if _, err := c.Execute(context.Background(), "t", "k", nil); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.deadlines) != 1 || h.deadlines[0] == "" {
		t.Fatalf("deadline headers = %v, want one non-empty", h.deadlines)
	}
	ms, err := strconv.Atoi(h.deadlines[0])
	if err != nil || ms < 1 || ms > 250 {
		t.Fatalf("deadline header = %q, want 1..250 ms", h.deadlines[0])
	}
}

// TestDeadlineExpiry checks a request that outlives its deadline surfaces as
// a typed deadline error counted as refused, not a transport error.
func TestDeadlineExpiry(t *testing.T) {
	stall := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Outlive the client's 30ms budget, but return eventually: an HTTP/1
		// server does not notice the abandoned connection while the handler
		// neither reads nor writes, so blocking on r.Context() would wedge
		// the test server's shutdown.
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	})
	c := testClient(t, stall, Config{Deadline: 30 * time.Millisecond})
	_, err := c.Execute(context.Background(), "t", "k", nil)
	if !errors.Is(err, store.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	cc := c.Counters()
	if cc.Refused != 1 || cc.TransportErrors != 0 {
		t.Fatalf("counters = %+v", cc)
	}
}

func TestTransportErrorCounted(t *testing.T) {
	c, err := New(Config{Addr: "127.0.0.1:1"}) // nothing listens on port 1
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(context.Background(), "t", "k", nil); err == nil {
		t.Fatal("expected a transport error")
	}
	if got := c.Counters().TransportErrors; got != 1 {
		t.Fatalf("TransportErrors = %d, want 1", got)
	}
}

func TestExecuteBatch(t *testing.T) {
	var frames atomic.Int64
	batch := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var resps []wire.Response
		for {
			var req wire.Request
			if err := wire.DecodeFrame(r.Body, &req); err != nil {
				break
			}
			frames.Add(1)
			resps = append(resps, wire.Response{Status: 200, Value: []byte(strconv.Quote(req.Key))})
		}
		w.Header().Set("Content-Type", wire.ContentTypeBatch)
		for i := range resps {
			_ = wire.EncodeFrame(w, resps[i])
		}
	})
	c := testClient(t, batch, Config{})
	reqs := []wire.Request{{Txn: "echo", Key: "a"}, {Txn: "echo", Key: "b"}, {Txn: "echo", Key: "c"}}
	resps, err := c.ExecuteBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 || frames.Load() != 3 {
		t.Fatalf("got %d responses, server saw %d frames", len(resps), frames.Load())
	}
	for i, want := range []string{`"a"`, `"b"`, `"c"`} {
		if string(resps[i].Value) != want {
			t.Fatalf("frame %d value = %s, want %s", i, resps[i].Value, want)
		}
	}
	if cc := c.Counters(); cc.Completed != 3 {
		t.Fatalf("counters = %+v", cc)
	}
}
