// Package client is the Go client library for the P-Store network front
// end (internal/server). It manages a pooled HTTP connection set, caps
// in-flight requests client-side (arrivals beyond the cap are shed and
// counted, the same admission role the b2w driver's semaphore plays
// in-process), propagates per-request deadlines as wire headers, honors the
// server's machine-readable retry hints on 429/503, and maps wire error
// codes back onto the engine's typed errors — so errors.Is(err,
// store.ErrOverload) behaves identically whether the engine is a function
// call or a socket away.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/store"
	"pstore/internal/wire"
)

// ErrSaturated is returned when the client's in-flight cap is reached: the
// request was shed client-side without touching the network. It wraps
// store.ErrOverload so callers' refusal accounting treats local and remote
// backpressure uniformly.
var ErrSaturated = fmt.Errorf("client: in-flight cap reached: %w", store.ErrOverload)

// RemoteError is a failure the server executed and reported: the procedure
// ran and returned an application error, or the request itself was invalid.
// Transport failures are never RemoteErrors.
type RemoteError struct {
	// Code is the stable wire error code.
	Code string
	// Status is the HTTP status the failure traveled under.
	Status int
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's backoff hint (zero when none was given).
	RetryAfter time.Duration
}

// Error formats the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: remote %s (HTTP %d): %s", e.Code, e.Status, e.Message)
}

// Unwrap exposes the typed store sentinel the code stands for, so
// errors.Is against store.ErrOverload / ErrDeadlineExceeded /
// ErrPartitionDown / ErrUnknownTxn works across the wire.
func (e *RemoteError) Unwrap() error { return wire.SentinelOf(e.Code) }

// Config assembles a Client.
type Config struct {
	// Addr is the server address: "host:port" or a full "http://..." base
	// URL. Required.
	Addr string
	// MaxInFlight caps concurrent requests; submissions beyond it are shed
	// with ErrSaturated. Zero means 256.
	MaxInFlight int
	// Deadline is the per-request deadline, sent to the server as the wire
	// deadline header and enforced locally via context. Zero sends no
	// header and imposes no local bound.
	Deadline time.Duration
	// RetryRefused is how many times a refused request (429, or 503 with a
	// hint) is retried after honoring the server's retry hint. Zero means
	// refusals surface immediately.
	RetryRefused int
	// MaxRetryWait caps one retry's backoff regardless of the hint. Zero
	// means time.Second.
	MaxRetryWait time.Duration
	// Recorder, when set, receives client-observed latencies (Record per
	// completed request) and client-side sheds (CountClientShed), feeding
	// the same metrics plane the in-process driver uses.
	Recorder *metrics.Recorder
}

// Counters are the client's cumulative counts.
type Counters struct {
	// Started counts requests that passed the in-flight cap; Completed
	// counts those that returned success.
	Started   int64
	Completed int64
	// Refused counts requests that ended refused (429/503/504) after any
	// retries; Retried counts individual retry attempts made on hints.
	Refused int64
	Retried int64
	// Shed counts submissions dropped at the in-flight cap.
	Shed int64
	// TransportErrors counts network- or protocol-level failures — requests
	// whose outcome is unknown because no well-formed wire response
	// arrived. Application errors (CodeTxn) are not transport errors.
	TransportErrors int64
}

// Client talks to one server. Safe for concurrent use.
type Client struct {
	cfg     Config
	baseURL string
	httpc   *http.Client
	sem     chan struct{}

	started   atomic.Int64
	completed atomic.Int64
	refused   atomic.Int64
	retried   atomic.Int64
	shed      atomic.Int64
	transport atomic.Int64
}

// New builds a client. The connection pool is sized to the in-flight cap so
// a saturated client reuses warm connections instead of opening new ones.
func New(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxRetryWait <= 0 {
		cfg.MaxRetryWait = time.Second
	}
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	transport := &http.Transport{
		MaxIdleConns:        cfg.MaxInFlight,
		MaxIdleConnsPerHost: cfg.MaxInFlight,
		MaxConnsPerHost:     cfg.MaxInFlight,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		cfg:     cfg,
		baseURL: base,
		httpc:   &http.Client{Transport: transport},
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}, nil
}

// Close releases pooled connections.
func (c *Client) Close() {
	c.httpc.CloseIdleConnections()
}

// Counters snapshots the client's counters.
func (c *Client) Counters() Counters {
	return Counters{
		Started:         c.started.Load(),
		Completed:       c.completed.Load(),
		Refused:         c.refused.Load(),
		Retried:         c.retried.Load(),
		Shed:            c.shed.Load(),
		TransportErrors: c.transport.Load(),
	}
}

// Execute runs one transaction and returns its raw JSON result. Errors map
// onto the engine's typed errors where a wire code corresponds to one;
// application errors surface as *RemoteError.
func (c *Client) Execute(ctx context.Context, txn, key string, args any) (json.RawMessage, error) {
	select {
	case c.sem <- struct{}{}:
	default:
		c.shed.Add(1)
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.CountClientShed()
		}
		return nil, ErrSaturated
	}
	defer func() { <-c.sem }()
	c.started.Add(1)

	var rawArgs json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return nil, fmt.Errorf("client: encoding %q args: %w", txn, err)
		}
		rawArgs = b
	}
	body, err := json.Marshal(wire.Request{Txn: txn, Key: key, Args: rawArgs})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}

	if c.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Deadline)
		defer cancel()
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(ctx, body)
		if err != nil {
			return nil, err
		}
		if resp.Status == 200 {
			c.completed.Add(1)
			if c.cfg.Recorder != nil {
				c.cfg.Recorder.Record(time.Now(), time.Since(start))
			}
			return resp.Value, nil
		}
		remote := &RemoteError{
			Code:       resp.Code,
			Status:     resp.Status,
			Message:    resp.Error,
			RetryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
		}
		if !c.retryable(remote) || attempt >= c.cfg.RetryRefused {
			if remote.Status == 429 || remote.Status == 503 || remote.Status == 504 {
				c.refused.Add(1)
			}
			return nil, remote
		}
		c.retried.Add(1)
		if err := c.backoff(ctx, remote.RetryAfter); err != nil {
			c.refused.Add(1)
			return nil, remote
		}
	}
}

// retryable reports whether a failure is worth resubmitting: refused work
// (429) and down partitions (503), both of which the server stamps with a
// hint. Deadline expiries are not retried — the budget is already spent.
func (c *Client) retryable(e *RemoteError) bool {
	return e.Status == 429 || e.Status == 503
}

// backoff sleeps for the server's hint, capped by MaxRetryWait, honoring
// ctx.
func (c *Client) backoff(ctx context.Context, hint time.Duration) error {
	if hint <= 0 {
		hint = 10 * time.Millisecond
	}
	if hint > c.cfg.MaxRetryWait {
		hint = c.cfg.MaxRetryWait
	}
	t := time.NewTimer(hint)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// roundTrip performs one HTTP exchange and decodes the wire response.
// Failures before a well-formed response are transport errors.
func (c *Client) roundTrip(ctx context.Context, body []byte) (*wire.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+wire.PathTxn, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	c.setDeadlineHeader(req)
	httpResp, err := c.httpc.Do(req)
	if err != nil {
		// The wire deadline elapsing locally is a deadline outcome, not a
		// broken transport.
		if ctx.Err() != nil {
			c.refused.Add(1)
			return nil, fmt.Errorf("client: request deadline: %w: %w", store.ErrDeadlineExceeded, ctx.Err())
		}
		c.transport.Add(1)
		return nil, fmt.Errorf("client: transport: %w", err)
	}
	defer httpResp.Body.Close()
	var resp wire.Response
	if err := json.NewDecoder(io.LimitReader(httpResp.Body, wire.MaxFrame)).Decode(&resp); err != nil {
		c.transport.Add(1)
		return nil, fmt.Errorf("client: decoding response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if resp.Status == 0 {
		resp.Status = httpResp.StatusCode
	}
	return &resp, nil
}

// setDeadlineHeader stamps the outgoing request with the remaining budget.
func (c *Client) setDeadlineHeader(req *http.Request) {
	if dl, ok := req.Context().Deadline(); ok {
		ms := int64(time.Until(dl) / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(wire.HeaderDeadlineMs, strconv.FormatInt(ms, 10))
	}
}

// ExecuteBatch sends requests as one length-prefixed binary batch and
// returns one response per request, in order. The batch passes the
// in-flight cap as a single unit. Transport failures return an error;
// per-request failures are reported in each Response.
func (c *Client) ExecuteBatch(ctx context.Context, reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	select {
	case c.sem <- struct{}{}:
	default:
		c.shed.Add(1)
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.CountClientShed()
		}
		return nil, ErrSaturated
	}
	defer func() { <-c.sem }()
	c.started.Add(int64(len(reqs)))

	var body bytes.Buffer
	for i := range reqs {
		if err := wire.EncodeFrame(&body, reqs[i]); err != nil {
			return nil, fmt.Errorf("client: encoding batch frame %d: %w", i, err)
		}
	}
	if c.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Deadline)
		defer cancel()
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+wire.PathBatch, bytes.NewReader(body.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("client: building batch request: %w", err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBatch)
	c.setDeadlineHeader(req)
	httpResp, err := c.httpc.Do(req)
	if err != nil {
		c.transport.Add(1)
		return nil, fmt.Errorf("client: batch transport: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var resp wire.Response
		if jerr := json.NewDecoder(io.LimitReader(httpResp.Body, wire.MaxFrame)).Decode(&resp); jerr == nil && resp.Code != "" {
			return nil, &RemoteError{Code: resp.Code, Status: httpResp.StatusCode, Message: resp.Error}
		}
		c.transport.Add(1)
		return nil, fmt.Errorf("client: batch rejected with HTTP %d", httpResp.StatusCode)
	}
	resps := make([]wire.Response, 0, len(reqs))
	for {
		var resp wire.Response
		if err := wire.DecodeFrame(httpResp.Body, &resp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			c.transport.Add(1)
			return nil, fmt.Errorf("client: decoding batch frame %d: %w", len(resps), err)
		}
		resps = append(resps, resp)
	}
	if len(resps) != len(reqs) {
		c.transport.Add(1)
		return nil, fmt.Errorf("client: batch returned %d responses for %d requests", len(resps), len(reqs))
	}
	for i := range resps {
		if resps[i].Status == 200 {
			c.completed.Add(1)
		} else if resps[i].Status == 429 || resps[i].Status == 503 || resps[i].Status == 504 {
			c.refused.Add(1)
		}
	}
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.Record(time.Now(), time.Since(start))
	}
	return resps, nil
}

// Txns fetches the server's transaction catalog, in dense-id order.
func (c *Client) Txns(ctx context.Context) ([]string, error) {
	var out struct {
		Txns []string `json:"txns"`
	}
	if err := c.getJSON(ctx, wire.PathTxns, &out); err != nil {
		return nil, err
	}
	return out.Txns, nil
}

// Info fetches the server's info payload into v.
func (c *Client) Info(ctx context.Context, v any) error {
	return c.getJSON(ctx, wire.PathInfo, v)
}

// Health reports whether the server answers its health endpoint.
func (c *Client) Health(ctx context.Context) error {
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.getJSON(ctx, wire.PathHealth, &out); err != nil {
		return err
	}
	if !out.OK {
		return errors.New("client: server reports not ok")
	}
	return nil
}

// Shutdown asks the serving process to stop once in-flight work drains.
func (c *Client) Shutdown(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+wire.PathShutdown, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("client: shutdown: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: shutdown rejected with HTTP %d", resp.StatusCode)
	}
	return nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, wire.MaxFrame)).Decode(v)
}
