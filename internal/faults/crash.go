package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// saltCrash separates machine-crash decisions from the chunk-level streams
// drawn from the same splitmix64 hash.
const saltCrash uint64 = 0xC4A5

// PlannedCrash pins one machine failure to one controller tick.
type PlannedCrash struct {
	// Machine is the machine index that fails.
	Machine int
	// Tick is the controller cycle at which it fails.
	Tick int
	// Downtime is the number of cycles before recovery begins; 0 means the
	// schedule's default downtime applies.
	Downtime int
}

// CrashSchedule describes deterministic machine-level failures for the crash
// recovery plane. Like the chunk-level Config, every decision is a pure
// function of (seed, machine, tick) — no shared PRNG stream — so a cluster
// run at a fixed seed sees the same crashes at the same ticks regardless of
// goroutine interleaving.
type CrashSchedule struct {
	// Seed selects the hashed schedule.
	Seed int64
	// Rate is the per-machine per-tick probability in [0, 1] of a crash.
	Rate float64
	// Downtime is the default number of cycles a crashed machine stays down
	// before recovery starts (minimum 1).
	Downtime int
	// Planned lists crashes pinned to specific ticks, checked in addition to
	// the hashed decisions.
	Planned []PlannedCrash
}

// Validate reports schedule errors.
func (s CrashSchedule) Validate() error {
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("faults: crash rate %v outside [0, 1]", s.Rate)
	}
	if s.Downtime < 0 {
		return fmt.Errorf("faults: crash downtime must be non-negative")
	}
	for _, p := range s.Planned {
		if p.Machine < 0 {
			return fmt.Errorf("faults: planned crash machine %d negative", p.Machine)
		}
		if p.Tick < 0 {
			return fmt.Errorf("faults: planned crash tick %d negative", p.Tick)
		}
		if p.Downtime < 0 {
			return fmt.Errorf("faults: planned crash downtime %d negative", p.Downtime)
		}
	}
	return nil
}

// Empty reports whether the schedule can never produce a crash.
func (s CrashSchedule) Empty() bool {
	return s.Rate == 0 && len(s.Planned) == 0
}

// DowntimeFor resolves a planned crash's downtime against the schedule
// default, with a floor of one cycle so recovery never races the crash tick.
func (s CrashSchedule) DowntimeFor(p PlannedCrash) int {
	d := p.Downtime
	if d == 0 {
		d = s.Downtime
	}
	if d < 1 {
		d = 1
	}
	return d
}

// CrashesAt returns the crashes scheduled for one tick across machines
// [0, machines), planned entries first, then hashed decisions, deduplicated
// by machine and sorted by machine index. Callers skip machines that are
// already down.
func (s CrashSchedule) CrashesAt(tick, machines int) []PlannedCrash {
	var out []PlannedCrash
	hit := make(map[int]bool)
	for _, p := range s.Planned {
		if p.Tick == tick && p.Machine < machines && !hit[p.Machine] {
			hit[p.Machine] = true
			out = append(out, p)
		}
	}
	if s.Rate > 0 {
		for m := 0; m < machines; m++ {
			if hit[m] {
				continue
			}
			if s.roll(m, tick) < s.Rate {
				out = append(out, PlannedCrash{Machine: m, Tick: tick})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// roll maps (seed, machine, tick) onto a uniform value in [0, 1).
func (s CrashSchedule) roll(machine, tick int) float64 {
	h := uint64(s.Seed)
	h = splitmix64(h ^ uint64(uint32(machine))<<32 ^ uint64(uint32(tick)))
	h = splitmix64(h ^ saltCrash)
	return float64(h>>11) / float64(1<<53)
}

// ParseCrash builds a CrashSchedule from a comma-separated spec string, the
// format of the pstore `--crash` flag:
//
//	seed=42,rate=0.05,downtime=4,at=1@10+5
//
// `at=M@T` pins machine M to crash at tick T; an optional `+D` suffix gives
// it a specific downtime in cycles. at may repeat. An empty spec is an empty
// schedule.
func ParseCrash(spec string) (CrashSchedule, error) {
	var s CrashSchedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("faults: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		case "rate":
			s.Rate, err = strconv.ParseFloat(v, 64)
		case "downtime":
			s.Downtime, err = strconv.Atoi(v)
		case "at":
			var p PlannedCrash
			p, err = parsePlanned(v)
			s.Planned = append(s.Planned, p)
		default:
			return s, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("faults: parsing %q: %w", field, err)
		}
	}
	return s, s.Validate()
}

func parsePlanned(v string) (PlannedCrash, error) {
	mStr, rest, ok := strings.Cut(v, "@")
	if !ok {
		return PlannedCrash{}, fmt.Errorf("planned crash %q is not machine@tick", v)
	}
	tStr, dStr, hasDowntime := strings.Cut(rest, "+")
	var p PlannedCrash
	var err error
	if p.Machine, err = strconv.Atoi(mStr); err != nil {
		return PlannedCrash{}, err
	}
	if p.Tick, err = strconv.Atoi(tStr); err != nil {
		return PlannedCrash{}, err
	}
	if hasDowntime {
		if p.Downtime, err = strconv.Atoi(dStr); err != nil {
			return PlannedCrash{}, err
		}
	}
	return p, nil
}

// String renders the schedule back into ParseCrash's spec format.
func (s CrashSchedule) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.Rate > 0 {
		parts = append(parts, fmt.Sprintf("rate=%v", s.Rate))
	}
	if s.Downtime > 0 {
		parts = append(parts, fmt.Sprintf("downtime=%d", s.Downtime))
	}
	planned := append([]PlannedCrash(nil), s.Planned...)
	sort.Slice(planned, func(i, j int) bool {
		a, b := planned[i], planned[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		return a.Machine < b.Machine
	})
	for _, p := range planned {
		if p.Downtime > 0 {
			parts = append(parts, fmt.Sprintf("at=%d@%d+%d", p.Machine, p.Tick, p.Downtime))
		} else {
			parts = append(parts, fmt.Sprintf("at=%d@%d", p.Machine, p.Tick))
		}
	}
	return strings.Join(parts, ",")
}
