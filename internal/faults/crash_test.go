package faults

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestConfigStringRoundTrip is a property test over the chunk-fault spec
// grammar: for any valid Config, Parse(String(c)) must reproduce it (up to
// String's canonical ordering of crash-pair/crash-part fields).
func TestConfigStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prob := func() float64 {
		if rng.Intn(2) == 0 {
			return 0
		}
		return float64(rng.Intn(1000)) / 1000
	}
	for i := 0; i < 200; i++ {
		c := Config{
			Seed:      rng.Int63n(1 << 32),
			ChunkDrop: prob(),
			ChunkSlow: prob(),
			Stall:     prob(),
		}
		if rng.Intn(2) == 0 {
			c.SlowDelay = time.Duration(rng.Intn(5000)) * time.Microsecond
		}
		if rng.Intn(2) == 0 {
			c.StallDelay = time.Duration(rng.Intn(200)) * time.Millisecond
		}
		for n := rng.Intn(3); n > 0; n-- {
			c.CrashPairs = append(c.CrashPairs, PartitionPair{From: rng.Intn(8), To: rng.Intn(8)})
		}
		for n := rng.Intn(3); n > 0; n-- {
			c.CrashParts = append(c.CrashParts, rng.Intn(8))
		}
		// Canonicalize to String's field order before comparing.
		want, err := Parse(c.String())
		if err != nil {
			t.Fatalf("case %d: Parse(%q): %v", i, c.String(), err)
		}
		got, err := Parse(want.String())
		if err != nil {
			t.Fatalf("case %d: re-Parse(%q): %v", i, want.String(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip of %q changed the schedule:\n  %+v\nvs\n  %+v",
				i, c.String(), got, want)
		}
		// And the canonical form itself must preserve every field of c.
		if got.Seed != c.Seed || got.ChunkDrop != c.ChunkDrop || got.ChunkSlow != c.ChunkSlow ||
			got.Stall != c.Stall || got.SlowDelay != c.SlowDelay || got.StallDelay != c.StallDelay ||
			len(got.CrashPairs) != len(c.CrashPairs) || len(got.CrashParts) != len(c.CrashParts) {
			t.Fatalf("case %d: String dropped fields: %+v -> %q -> %+v", i, c, c.String(), got)
		}
	}
}

// TestCrashScheduleStringRoundTrip is the same property for the machine-crash
// spec grammar.
func TestCrashScheduleStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s := CrashSchedule{Seed: rng.Int63n(1 << 32)}
		if rng.Intn(2) == 0 {
			s.Rate = float64(rng.Intn(1000)) / 1000
		}
		if rng.Intn(2) == 0 {
			s.Downtime = 1 + rng.Intn(10)
		}
		for n := rng.Intn(4); n > 0; n-- {
			p := PlannedCrash{Machine: rng.Intn(8), Tick: rng.Intn(100)}
			if rng.Intn(2) == 0 {
				p.Downtime = 1 + rng.Intn(10)
			}
			s.Planned = append(s.Planned, p)
		}
		want, err := ParseCrash(s.String())
		if err != nil {
			t.Fatalf("case %d: ParseCrash(%q): %v", i, s.String(), err)
		}
		got, err := ParseCrash(want.String())
		if err != nil {
			t.Fatalf("case %d: re-ParseCrash(%q): %v", i, want.String(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip of %q changed the schedule:\n  %+v\nvs\n  %+v",
				i, s.String(), got, want)
		}
		if got.Seed != s.Seed || got.Rate != s.Rate || got.Downtime != s.Downtime ||
			len(got.Planned) != len(s.Planned) {
			t.Fatalf("case %d: String dropped fields: %+v -> %q -> %+v", i, s, s.String(), got)
		}
	}
}

func TestParseCrashSpec(t *testing.T) {
	s, err := ParseCrash("seed=42,rate=0.05,downtime=4,at=1@10+5,at=0@3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Rate != 0.05 || s.Downtime != 4 {
		t.Errorf("parsed %+v", s)
	}
	want := []PlannedCrash{{Machine: 1, Tick: 10, Downtime: 5}, {Machine: 0, Tick: 3}}
	if !reflect.DeepEqual(s.Planned, want) {
		t.Errorf("Planned = %+v, want %+v", s.Planned, want)
	}
	if empty, err := ParseCrash(""); err != nil || !empty.Empty() {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
	if s.Empty() {
		t.Error("non-empty schedule reported Empty")
	}
	for _, bad := range []string{"rate", "rate=2", "rate=-0.1", "nope=1", "at=3", "at=x@1", "at=1@x", "at=1@2+x", "downtime=-1", "seed=x"} {
		if _, err := ParseCrash(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestCrashesAtDeterministic: hashed crash decisions are a pure function of
// (seed, machine, tick) and planned entries override the hash.
func TestCrashesAtDeterministic(t *testing.T) {
	s := CrashSchedule{Seed: 42, Rate: 0.1, Downtime: 3}
	var a, b []PlannedCrash
	for tick := 0; tick < 200; tick++ {
		a = append(a, s.CrashesAt(tick, 8)...)
		b = append(b, s.CrashesAt(tick, 8)...)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical schedules diverged across calls")
	}
	if len(a) == 0 {
		t.Fatal("rate=0.1 over 1600 machine-ticks produced no crashes")
	}
	// ~160 expected; accept a wide band.
	if len(a) < 60 || len(a) > 400 {
		t.Errorf("crash count implausible: %d/1600 at rate=0.1", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].Tick == a[i-1].Tick && a[i].Machine <= a[i-1].Machine {
			t.Fatalf("output not sorted/deduped by machine: %+v then %+v", a[i-1], a[i])
		}
	}
	other := CrashSchedule{Seed: 43, Rate: 0.1, Downtime: 3}
	var c []PlannedCrash
	for tick := 0; tick < 200; tick++ {
		c = append(c, other.CrashesAt(tick, 8)...)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("seeds 42 and 43 produced identical crash schedules")
	}
}

func TestCrashesAtPlanned(t *testing.T) {
	s := CrashSchedule{Seed: 1, Downtime: 2, Planned: []PlannedCrash{
		{Machine: 2, Tick: 5, Downtime: 7},
		{Machine: 2, Tick: 5}, // duplicate machine at same tick: dropped
		{Machine: 9, Tick: 5}, // beyond machine count: dropped
		{Machine: 0, Tick: 5},
	}}
	got := s.CrashesAt(5, 4)
	want := []PlannedCrash{{Machine: 0, Tick: 5}, {Machine: 2, Tick: 5, Downtime: 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CrashesAt(5, 4) = %+v, want %+v", got, want)
	}
	if got := s.CrashesAt(6, 4); len(got) != 0 {
		t.Fatalf("CrashesAt(6, 4) = %+v, want none", got)
	}
	if d := s.DowntimeFor(want[1]); d != 7 {
		t.Errorf("DowntimeFor(explicit) = %d, want 7", d)
	}
	if d := s.DowntimeFor(want[0]); d != 2 {
		t.Errorf("DowntimeFor(default) = %d, want 2", d)
	}
	if d := (CrashSchedule{}).DowntimeFor(PlannedCrash{}); d != 1 {
		t.Errorf("DowntimeFor floor = %d, want 1", d)
	}
}
