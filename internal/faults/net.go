package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/store"
)

// Network faults for multi-process chaos runs. Where the base Injector fails
// a move before the chunk leaves the source (an executor-level fault), the
// NetInjector models the link between two *nodes*: dead node pairs, chunks
// dropped in flight, duplicated delivery, reordered (late-duplicate)
// delivery and slow links. Decisions use the same pure
// (seed, pair, chunk, attempt) hash as the base injector — with distinct
// salts — so a multi-process chaos run is exactly as reproducible as a
// single-process one, and the two planes can share a seed without their
// decision streams correlating.

// NodePair identifies an undirected node-to-node link.
type NodePair struct {
	A, B int
}

// normalize orders the pair so (1,0) and (0,1) name the same link.
func (p NodePair) normalize() NodePair {
	if p.A > p.B {
		p.A, p.B = p.B, p.A
	}
	return p
}

// NetConfig describes a deterministic network-fault schedule.
type NetConfig struct {
	// Seed selects the schedule, independent of (but sharable with) the
	// executor-level fault seed.
	Seed int64
	// LinkDrop is the probability in [0, 1] that a chunk is lost in flight:
	// the transfer fails before any data leaves the source, so a dropped
	// chunk is all-or-nothing, like a base-injector drop but attributed to
	// the link.
	LinkDrop float64
	// LinkDup is the probability in [0, 1] that a chunk's install is
	// delivered twice. Installs are idempotent, so duplicates must not
	// change row counts — that invariant is what this fault exists to test.
	LinkDup float64
	// LinkReorder is the probability in [0, 1] that a chunk's duplicate is
	// delivered *late* — after the pair's next chunk — modelling reordered
	// delivery on the link. A reorder implies a duplicate.
	LinkReorder float64
	// LinkSlow is the probability in [0, 1] that a transfer is delayed by
	// LinkDelay first.
	LinkSlow float64
	// LinkDelay is the delay of a slow transfer (default 2ms).
	LinkDelay time.Duration
	// DeadLinks lists node pairs whose every transfer fails — a network
	// partition between those nodes.
	DeadLinks []NodePair
}

// Validate reports configuration errors.
func (c NetConfig) Validate() error {
	for name, p := range map[string]float64{"link-drop": c.LinkDrop, "link-dup": c.LinkDup, "link-reorder": c.LinkReorder, "link-slow": c.LinkSlow} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", name, p)
		}
	}
	if c.LinkDelay < 0 {
		return fmt.Errorf("faults: link-delay must be non-negative")
	}
	for _, l := range c.DeadLinks {
		if l.A < 0 || l.B < 0 {
			return fmt.Errorf("faults: dead link %d:%d has a negative node id", l.A, l.B)
		}
	}
	return nil
}

// LinkDecision is the verdict for one transfer that was not dropped.
type LinkDecision struct {
	// Delay, when positive, slows the transfer before it starts.
	Delay time.Duration
	// Dup asks the transport to deliver the chunk's install a second time.
	Dup bool
	// DeferDup holds the duplicate back until after the pair's next chunk —
	// reordered delivery. Only meaningful when Dup is set.
	DeferDup bool
}

// NetStats counts the network injections performed so far.
type NetStats struct {
	// Drops counts transfers failed in flight; DeadLinks counts transfers
	// refused on a partitioned node pair.
	Drops, DeadLinks int64
	// Dups counts duplicated deliveries, Reorders the subset held back for
	// late delivery, Slows the delayed transfers.
	Dups, Reorders, Slows int64
	// Offered is the total number of forward transfers consulted.
	Offered int64
}

// NetInjector produces deterministic link-level decisions for a networked
// migration transport.
type NetInjector struct {
	cfg NetConfig

	mu       sync.Mutex
	attempts map[chunkKey]uint64

	dead map[NodePair]struct{}

	drops, deadHits, dups, reorders, slows, offered atomic.Int64
}

// NewNet builds a network injector for the given schedule.
func NewNet(cfg NetConfig) (*NetInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 2 * time.Millisecond
	}
	n := &NetInjector{
		cfg:      cfg,
		attempts: make(map[chunkKey]uint64),
		dead:     make(map[NodePair]struct{}, len(cfg.DeadLinks)),
	}
	for _, l := range cfg.DeadLinks {
		n.dead[l.normalize()] = struct{}{}
	}
	return n, nil
}

// Config returns the injector's schedule.
func (n *NetInjector) Config() NetConfig { return n.cfg }

// Stats snapshots the injection counters.
func (n *NetInjector) Stats() NetStats {
	return NetStats{
		Drops:     n.drops.Load(),
		DeadLinks: n.deadHits.Load(),
		Dups:      n.dups.Load(),
		Reorders:  n.reorders.Load(),
		Slows:     n.slows.Load(),
		Offered:   n.offered.Load(),
	}
}

// Link-level salts, distinct from the executor-level ones so sharing a seed
// across both planes never correlates their decisions.
const (
	saltLinkDrop uint64 = 0x11D0
	saltLinkDup  uint64 = 0xD0B2
	saltLinkReo  uint64 = 0x2E0D
	saltLinkSlow uint64 = 0x510F
)

// OnChunk decides the fate of one chunk transfer between two nodes. A
// non-nil error means the transfer fails (dead link or in-flight drop)
// before any data leaves the source. Rollback transfers are exempt by the
// same contract as BeforeMove: recovery is never injected with failure, and
// held-back duplicates for the pair are discarded by the transport on
// rollback. Chunk identity is the same (pair, first-bucket) key as the base
// injector, with its own attempt counter, so retried transfers re-roll.
func (n *NetInjector) OnChunk(fromNode, toNode int, op store.MoveOp) (LinkDecision, error) {
	var dec LinkDecision
	if op.Rollback {
		return dec, nil
	}
	n.offered.Add(1)
	if _, down := n.dead[(NodePair{A: fromNode, B: toNode}).normalize()]; down && fromNode != toNode {
		n.deadHits.Add(1)
		return dec, fmt.Errorf("faults: link %d <-> %d partitioned: %w", fromNode, toNode, ErrInjected)
	}

	key := chunkKey{from: op.From, to: op.To, bucket: -1}
	if len(op.Buckets) > 0 {
		key.bucket = op.Buckets[0]
	}
	n.mu.Lock()
	attempt := n.attempts[key]
	n.attempts[key]++
	n.mu.Unlock()

	roll := rollSeed(n.cfg.Seed, key, attempt)
	if roll(saltLinkSlow) < n.cfg.LinkSlow {
		n.slows.Add(1)
		dec.Delay = n.cfg.LinkDelay
	}
	if roll(saltLinkDrop) < n.cfg.LinkDrop {
		n.drops.Add(1)
		return LinkDecision{}, fmt.Errorf("faults: chunk of %d buckets lost on link %d -> %d (attempt %d): %w",
			len(op.Buckets), fromNode, toNode, attempt+1, ErrInjected)
	}
	// Duplicate and reordered delivery only exist across a real link: a
	// same-node move never serializes a chunk at all.
	if fromNode != toNode {
		if roll(saltLinkDup) < n.cfg.LinkDup {
			n.dups.Add(1)
			dec.Dup = true
		}
		if roll(saltLinkReo) < n.cfg.LinkReorder {
			// A reorder is a duplicate that arrives after the next chunk.
			if !dec.Dup {
				n.dups.Add(1)
			}
			n.reorders.Add(1)
			dec.Dup = true
			dec.DeferDup = true
		}
	}
	return dec, nil
}

// rollSeed returns a salt-indexed uniform roll for one (seed, chunk,
// attempt) identity — the same construction as Injector.roll.
func rollSeed(seed int64, key chunkKey, attempt uint64) func(salt uint64) float64 {
	return func(salt uint64) float64 {
		h := uint64(seed)
		h = splitmix64(h ^ uint64(key.from)<<32 ^ uint64(uint32(key.to)))
		h = splitmix64(h ^ uint64(uint32(key.bucket)))
		h = splitmix64(h ^ attempt)
		h = splitmix64(h ^ salt)
		return float64(h>>11) / float64(1<<53)
	}
}

// ParseNet builds a NetConfig from a comma-separated spec string, the format
// of the pstore `--net-faults` flag:
//
//	seed=42,link-drop=0.05,link-dup=0.1,link-reorder=0.05,
//	link-slow=0.1,link-delay=2ms,partition=0:1
//
// partition may repeat. An empty spec is an empty schedule.
func ParseNet(spec string) (NetConfig, error) {
	var cfg NetConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "link-drop":
			cfg.LinkDrop, err = strconv.ParseFloat(v, 64)
		case "link-dup":
			cfg.LinkDup, err = strconv.ParseFloat(v, 64)
		case "link-reorder":
			cfg.LinkReorder, err = strconv.ParseFloat(v, 64)
		case "link-slow":
			cfg.LinkSlow, err = strconv.ParseFloat(v, 64)
		case "link-delay":
			cfg.LinkDelay, err = time.ParseDuration(v)
		case "partition":
			var pair PartitionPair
			pair, err = parsePair(v)
			cfg.DeadLinks = append(cfg.DeadLinks, NodePair{A: pair.From, B: pair.To})
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: parsing %q: %w", field, err)
		}
	}
	return cfg, cfg.Validate()
}

// String renders the schedule back into ParseNet's spec format.
func (c NetConfig) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.LinkDrop > 0 {
		parts = append(parts, fmt.Sprintf("link-drop=%v", c.LinkDrop))
	}
	if c.LinkDup > 0 {
		parts = append(parts, fmt.Sprintf("link-dup=%v", c.LinkDup))
	}
	if c.LinkReorder > 0 {
		parts = append(parts, fmt.Sprintf("link-reorder=%v", c.LinkReorder))
	}
	if c.LinkSlow > 0 {
		parts = append(parts, fmt.Sprintf("link-slow=%v", c.LinkSlow))
	}
	if c.LinkDelay > 0 {
		parts = append(parts, fmt.Sprintf("link-delay=%v", c.LinkDelay))
	}
	links := make([]NodePair, 0, len(c.DeadLinks))
	for _, l := range c.DeadLinks {
		links = append(links, l.normalize())
	}
	sort.Slice(links, func(i, j int) bool {
		return links[i].A < links[j].A || (links[i].A == links[j].A && links[i].B < links[j].B)
	})
	for _, l := range links {
		parts = append(parts, fmt.Sprintf("partition=%d:%d", l.A, l.B))
	}
	return strings.Join(parts, ",")
}
