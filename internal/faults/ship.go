package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Replication-stream faults. Where the NetInjector targets migration chunks,
// the ShipInjector targets the primary-to-follower WAL ship stream: batches
// dropped in flight, delivered twice, delivered out of order, delayed, or
// refused outright on a partitioned link. Decisions use the same pure
// (seed, pair, chunk, attempt) hash as the other planes — the "chunk" here
// is the batch ordinal since sync — with its own salts, so ship schedules
// stay placement-invariant and never correlate with the chunk planes even
// under a shared seed.

// ShipConfig describes a deterministic ship-fault schedule.
type ShipConfig struct {
	// Seed selects the schedule.
	Seed int64
	// Drop is the probability in [0, 1] that a batch is lost in flight: the
	// follower never sees it and the shipper retries the same records.
	Drop float64
	// Dup is the probability in [0, 1] that a batch is delivered twice. The
	// follower's per-bucket LSN dedup must make the second delivery a no-op.
	Dup float64
	// Reorder is the probability in [0, 1] that a batch is held back and the
	// stream's *next* batch is delivered first. The follower must refuse the
	// out-of-order batch (gap ack) and recover once the held batch arrives.
	Reorder float64
	// Delay is the probability in [0, 1] that a batch's delivery is delayed
	// by DelayFor first.
	Delay float64
	// DelayFor is the delay of a slowed batch (default 2ms).
	DelayFor time.Duration
	// Partition is the probability in [0, 1] that the link is down for this
	// delivery attempt: the send fails like a network error, and the shipper
	// retries.
	Partition float64
	// HealAfter, when positive, turns partitions into bounded outages: the
	// first partition the hash fires for a pair opens an episode during
	// which every delivery attempt fails, and once HealAfter has elapsed the
	// pair heals permanently. Which batch opens the episode is decided by
	// the same seed+pair hash, so a schedule's outage is reproducible — and
	// guaranteed to end, which failover tests need to assert convergence
	// after the blip.
	HealAfter time.Duration
}

// Validate reports configuration errors.
func (c ShipConfig) Validate() error {
	for name, p := range map[string]float64{
		"ship-drop": c.Drop, "ship-dup": c.Dup, "ship-reorder": c.Reorder,
		"ship-delay": c.Delay, "ship-partition": c.Partition,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", name, p)
		}
	}
	if c.DelayFor < 0 {
		return fmt.Errorf("faults: ship-delay-for must be non-negative")
	}
	if c.HealAfter < 0 {
		return fmt.Errorf("faults: heal-after must be non-negative")
	}
	return nil
}

// Enabled reports whether any fault has a non-zero probability.
func (c ShipConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Delay > 0 || c.Partition > 0
}

// ShipDecision is the verdict for one batch delivery attempt.
type ShipDecision struct {
	// Drop loses the batch in flight; Partitioned fails the send at the
	// link. Both mean the follower sees nothing and the shipper must retry.
	Drop        bool
	Partitioned bool
	// Delay, when positive, sleeps before the delivery.
	Delay time.Duration
	// Dup delivers the batch a second time after it is acknowledged.
	Dup bool
	// Reorder delivers the stream's next batch before this one.
	Reorder bool
}

// ShipStats counts the injections performed so far.
type ShipStats struct {
	Offered, Drops, Partitions, Dups, Reorders, Delays int64
}

// ShipInjector produces deterministic decisions for a WAL shipper.
type ShipInjector struct {
	cfg ShipConfig

	mu       sync.Mutex
	attempts map[chunkKey]uint64
	// outage is each pair's open heal-after episode (start time); healed
	// marks pairs whose episode ended — they never partition again.
	outage map[pairKey]time.Time
	healed map[pairKey]bool

	offered, drops, partitions, dups, reorders, delays atomic.Int64
}

type pairKey struct{ from, to int }

// NewShip builds a ship injector for the given schedule.
func NewShip(cfg ShipConfig) (*ShipInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DelayFor == 0 {
		cfg.DelayFor = 2 * time.Millisecond
	}
	return &ShipInjector{
		cfg:      cfg,
		attempts: make(map[chunkKey]uint64),
		outage:   make(map[pairKey]time.Time),
		healed:   make(map[pairKey]bool),
	}, nil
}

// Config returns the injector's schedule.
func (n *ShipInjector) Config() ShipConfig { return n.cfg }

// Stats snapshots the injection counters.
func (n *ShipInjector) Stats() ShipStats {
	return ShipStats{
		Offered:    n.offered.Load(),
		Drops:      n.drops.Load(),
		Partitions: n.partitions.Load(),
		Dups:       n.dups.Load(),
		Reorders:   n.reorders.Load(),
		Delays:     n.delays.Load(),
	}
}

// Ship-plane salts, distinct from the executor- and link-level ones.
const (
	saltShipDrop uint64 = 0x54D0
	saltShipDup  uint64 = 0x54D1
	saltShipReo  uint64 = 0x54D2
	saltShipSlow uint64 = 0x54D3
	saltShipPart uint64 = 0x54D4
)

// OnBatch decides the fate of one ship-batch delivery from the primary to
// its follower. Batch identity is (pair, batch ordinal) with a per-identity
// attempt counter, so a retried delivery re-rolls — the same replay contract
// as the chunk planes.
func (n *ShipInjector) OnBatch(fromNode, toNode int, batch uint64) ShipDecision {
	var dec ShipDecision
	n.offered.Add(1)
	key := chunkKey{from: fromNode, to: toNode, bucket: int(batch)}
	n.mu.Lock()
	attempt := n.attempts[key]
	n.attempts[key]++
	n.mu.Unlock()

	roll := rollSeed(n.cfg.Seed, key, attempt)
	part := roll(saltShipPart) < n.cfg.Partition
	if n.cfg.HealAfter > 0 {
		part = n.healEpisode(pairKey{from: fromNode, to: toNode}, part)
	}
	if part {
		n.partitions.Add(1)
		dec.Partitioned = true
		return dec
	}
	if roll(saltShipDrop) < n.cfg.Drop {
		n.drops.Add(1)
		dec.Drop = true
		return dec
	}
	if roll(saltShipSlow) < n.cfg.Delay {
		n.delays.Add(1)
		dec.Delay = n.cfg.DelayFor
	}
	if roll(saltShipReo) < n.cfg.Reorder {
		n.reorders.Add(1)
		dec.Reorder = true
		return dec
	}
	if roll(saltShipDup) < n.cfg.Dup {
		n.dups.Add(1)
		dec.Dup = true
	}
	return dec
}

// healEpisode folds a partition roll through the heal-after state machine:
// a healed pair never partitions, an open episode partitions every attempt
// until HealAfter has elapsed (then heals the pair for good), and the first
// rolled partition opens the episode.
func (n *ShipInjector) healEpisode(pk pairKey, rolled bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.healed[pk] {
		return false
	}
	if start, open := n.outage[pk]; open {
		if time.Since(start) < n.cfg.HealAfter {
			return true
		}
		delete(n.outage, pk)
		n.healed[pk] = true
		return false
	}
	if rolled {
		n.outage[pk] = time.Now()
	}
	return rolled
}

// ParseShip builds a ShipConfig from a comma-separated spec string, the
// format of the pstore `--ship-faults` flag:
//
//	seed=42,ship-drop=0.05,ship-dup=0.1,ship-reorder=0.05,
//	ship-delay=0.1,ship-delay-for=2ms,ship-partition=0.02,heal-after=500ms
//
// An empty spec is an empty schedule.
func ParseShip(spec string) (ShipConfig, error) {
	var cfg ShipConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ship-drop":
			cfg.Drop, err = strconv.ParseFloat(v, 64)
		case "ship-dup":
			cfg.Dup, err = strconv.ParseFloat(v, 64)
		case "ship-reorder":
			cfg.Reorder, err = strconv.ParseFloat(v, 64)
		case "ship-delay":
			cfg.Delay, err = strconv.ParseFloat(v, 64)
		case "ship-delay-for":
			cfg.DelayFor, err = time.ParseDuration(v)
		case "ship-partition":
			cfg.Partition, err = strconv.ParseFloat(v, 64)
		case "heal-after":
			cfg.HealAfter, err = time.ParseDuration(v)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: parsing %q: %w", field, err)
		}
	}
	return cfg, cfg.Validate()
}

// String renders the schedule back into ParseShip's spec format.
func (c ShipConfig) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.Drop > 0 {
		parts = append(parts, fmt.Sprintf("ship-drop=%v", c.Drop))
	}
	if c.Dup > 0 {
		parts = append(parts, fmt.Sprintf("ship-dup=%v", c.Dup))
	}
	if c.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("ship-reorder=%v", c.Reorder))
	}
	if c.Delay > 0 {
		parts = append(parts, fmt.Sprintf("ship-delay=%v", c.Delay))
	}
	if c.DelayFor > 0 && c.DelayFor != 2*time.Millisecond {
		parts = append(parts, fmt.Sprintf("ship-delay-for=%v", c.DelayFor))
	}
	if c.Partition > 0 {
		parts = append(parts, fmt.Sprintf("ship-partition=%v", c.Partition))
	}
	if c.HealAfter > 0 {
		parts = append(parts, fmt.Sprintf("heal-after=%v", c.HealAfter))
	}
	return strings.Join(parts, ",")
}
