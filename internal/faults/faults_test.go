package faults

import (
	"errors"
	"testing"
	"time"

	"pstore/internal/store"
)

func op(from, to int, buckets ...int) store.MoveOp {
	return store.MoveOp{From: from, To: to, Buckets: buckets}
}

// TestInjectorDeterministic is the property the chaos suite stands on: two
// injectors with the same seed must make identical decisions for the same
// sequence of moves, and a different seed must (for a schedule this dense)
// produce a different decision sequence.
func TestInjectorDeterministic(t *testing.T) {
	mk := func(seed int64) *Injector {
		in, err := New(Config{Seed: seed, ChunkDrop: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	script := func(in *Injector) []bool {
		var out []bool
		for from := 0; from < 4; from++ {
			for b := 0; b < 16; b++ {
				for attempt := 0; attempt < 3; attempt++ {
					out = append(out, in.BeforeMove(op(from, from+4, b, b+100)) != nil)
				}
			}
		}
		return out
	}
	a, b := script(mk(42)), script(mk(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
	}
	c := script(mk(43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 192-decision schedules")
	}
	// ~30% of 192 decisions should be drops; allow a wide band.
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops < 20 || drops > 120 {
		t.Errorf("drop rate implausible: %d/192 at p=0.3", drops)
	}
}

// TestInjectorRetryRerolls: the same chunk's successive attempts must get
// fresh decisions, so a retry loop can eventually get through a p<1 drop.
func TestInjectorRetryRerolls(t *testing.T) {
	in, err := New(Config{Seed: 7, ChunkDrop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// With p=0.5, 64 attempts at the same chunk succeed at least once with
	// probability 1 - 2^-64.
	passed := false
	for attempt := 0; attempt < 64; attempt++ {
		if in.BeforeMove(op(1, 2, 9)) == nil {
			passed = true
			break
		}
	}
	if !passed {
		t.Error("64 retries of one chunk never passed at drop=0.5: attempts are not re-rolled")
	}
}

func TestInjectorCrashesAndExemptions(t *testing.T) {
	in, err := New(Config{
		Seed:       1,
		CrashPairs: []PartitionPair{{From: 2, To: 5}},
		CrashParts: []int{7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.BeforeMove(op(2, 5, 0)); !errors.Is(err, ErrInjected) {
		t.Errorf("crashed pair 2->5 not injected: %v", err)
	}
	if err := in.BeforeMove(op(5, 2, 0)); err != nil {
		t.Errorf("reverse direction of crashed pair failed: %v", err)
	}
	if err := in.BeforeMove(op(7, 3, 0)); !errors.Is(err, ErrInjected) {
		t.Errorf("crashed partition 7 as source not injected: %v", err)
	}
	if err := in.BeforeMove(op(3, 7, 0)); !errors.Is(err, ErrInjected) {
		t.Errorf("crashed partition 7 as destination not injected: %v", err)
	}
	// Rollback ops are exempt even on crashed paths.
	rb := store.MoveOp{From: 2, To: 5, Buckets: []int{0}, Rollback: true}
	if err := in.BeforeMove(rb); err != nil {
		t.Errorf("rollback on crashed pair injected: %v", err)
	}
	st := in.Stats()
	if st.Crashes != 3 {
		t.Errorf("Crashes = %d, want 3", st.Crashes)
	}
}

func TestInjectorFullDrop(t *testing.T) {
	in, err := New(Config{Seed: 3, ChunkDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := in.BeforeMove(op(0, 1, i)); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d passed at drop=1", i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cfg, err := Parse("seed=42,chunk-drop=0.05,chunk-slow=0.1,slow-delay=3ms,stall=0.01,stall-delay=80ms,crash-pair=3:7,crash-pair=1:2,crash-part=4")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.ChunkDrop != 0.05 || cfg.ChunkSlow != 0.1 ||
		cfg.SlowDelay != 3*time.Millisecond || cfg.Stall != 0.01 || cfg.StallDelay != 80*time.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	if len(cfg.CrashPairs) != 2 || cfg.CrashPairs[0] != (PartitionPair{3, 7}) {
		t.Errorf("crash pairs %v", cfg.CrashPairs)
	}
	if len(cfg.CrashParts) != 1 || cfg.CrashParts[0] != 4 {
		t.Errorf("crash parts %v", cfg.CrashParts)
	}
	if _, err := Parse(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
	for _, bad := range []string{"chunk-drop", "chunk-drop=2", "nope=1", "crash-pair=3", "seed=x", "stall=-0.1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
