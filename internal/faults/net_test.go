package faults

import (
	"errors"
	"testing"
	"time"

	"pstore/internal/store"
)

// TestNetDeterminism: two injectors with the same schedule must hand the
// same sequence of transfers identical decisions, regardless of the order
// other pairs' transfers interleave — the property the multi-process chaos
// suite leans on.
func TestNetDeterminism(t *testing.T) {
	cfg := NetConfig{Seed: 7, LinkDrop: 0.3, LinkDup: 0.3, LinkReorder: 0.2, LinkSlow: 0.2, LinkDelay: time.Nanosecond}
	type verdict struct {
		dec LinkDecision
		err bool
	}
	run := func(order []int) []verdict {
		n, err := NewNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]verdict, 0, 64)
		for _, pair := range order {
			for chunk := 0; chunk < 8; chunk++ {
				op := store.MoveOp{From: pair, To: pair + 10, Buckets: []int{chunk * 3}}
				dec, err := n.OnChunk(0, 1, op)
				out = append(out, verdict{dec: dec, err: err != nil})
			}
		}
		return out
	}
	a := run([]int{0, 1, 2})
	// Re-run with pair streams in a different order; per-chunk verdicts must
	// be the same (compare per pair by reslicing).
	b := run([]int{2, 1, 0})
	// a: pairs 0,1,2 at offsets 0,8,16. b: pairs 2,1,0 at offsets 0,8,16.
	for p := 0; p < 3; p++ {
		as := a[p*8 : p*8+8]
		bs := b[(2-p)*8 : (2-p)*8+8]
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("pair %d chunk %d: %+v vs %+v under reordered streams", p, i, as[i], bs[i])
			}
		}
	}
}

// TestNetRetryRerolls: a retried transfer advances the chunk's attempt
// counter, so a dropped chunk is not doomed to drop forever.
func TestNetRetryRerolls(t *testing.T) {
	n, err := NewNet(NetConfig{Seed: 3, LinkDrop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	op := store.MoveOp{From: 1, To: 2, Buckets: []int{5}}
	sawDrop, sawPass := false, false
	for i := 0; i < 64 && !(sawDrop && sawPass); i++ {
		if _, err := n.OnChunk(0, 1, op); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("drop error not ErrInjected: %v", err)
			}
			sawDrop = true
		} else {
			sawPass = true
		}
	}
	if !sawDrop || !sawPass {
		t.Fatalf("64 attempts at p=0.5 never varied (drop=%v pass=%v)", sawDrop, sawPass)
	}
}

// TestNetRollbackExempt: rollback transfers are never injected.
func TestNetRollbackExempt(t *testing.T) {
	n, err := NewNet(NetConfig{Seed: 1, LinkDrop: 1, LinkDup: 1, LinkReorder: 1, LinkSlow: 1, DeadLinks: []NodePair{{A: 0, B: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		dec, err := n.OnChunk(0, 1, store.MoveOp{From: 1, To: 2, Buckets: []int{i}, Rollback: true})
		if err != nil || dec != (LinkDecision{}) {
			t.Fatalf("rollback transfer injected: dec=%+v err=%v", dec, err)
		}
	}
	if s := n.Stats(); s.Offered != 0 {
		t.Fatalf("rollback transfers counted as offered: %+v", s)
	}
}

// TestNetPartition: a dead link fails every transfer in both directions and
// leaves same-node transfers alone.
func TestNetPartition(t *testing.T) {
	n, err := NewNet(NetConfig{Seed: 1, DeadLinks: []NodePair{{A: 1, B: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	op := store.MoveOp{From: 0, To: 1, Buckets: []int{0}}
	if _, err := n.OnChunk(0, 1, op); !errors.Is(err, ErrInjected) {
		t.Fatalf("0->1 over dead link: %v", err)
	}
	if _, err := n.OnChunk(1, 0, op); !errors.Is(err, ErrInjected) {
		t.Fatalf("1->0 over dead link: %v", err)
	}
	if _, err := n.OnChunk(0, 0, op); err != nil {
		t.Fatalf("same-node transfer failed: %v", err)
	}
	if s := n.Stats(); s.DeadLinks != 2 {
		t.Fatalf("dead-link hits: %+v", s)
	}
}

// TestNetReorderImpliesDup: a reorder decision always carries Dup, and the
// counters attribute it to both streams.
func TestNetReorderImpliesDup(t *testing.T) {
	n, err := NewNet(NetConfig{Seed: 1, LinkReorder: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := n.OnChunk(0, 1, store.MoveOp{From: 1, To: 2, Buckets: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Dup || !dec.DeferDup {
		t.Fatalf("reorder=1 produced %+v", dec)
	}
	if s := n.Stats(); s.Dups != 1 || s.Reorders != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// TestNetSpecRoundTrip: String output must reparse to the same schedule.
func TestNetSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=42",
		"seed=42,link-drop=0.05,link-dup=0.1,link-reorder=0.05,link-slow=0.1,link-delay=3ms,partition=0:1,partition=1:2",
	}
	for _, spec := range specs {
		cfg, err := ParseNet(spec)
		if err != nil {
			t.Fatalf("ParseNet(%q): %v", spec, err)
		}
		again, err := ParseNet(cfg.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", spec, cfg.String(), err)
		}
		if again.String() != cfg.String() {
			t.Fatalf("round trip: %q -> %q", cfg.String(), again.String())
		}
	}
	if _, err := ParseNet("link-drop=2"); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if _, err := ParseNet("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
}

// TestNetSaltsIndependent: with a shared seed, the link plane's decisions
// must not correlate with the executor plane's (distinct salts). A crude
// but effective check: at p=0.5 each, agreement across many chunks should
// not be total.
func TestNetSaltsIndependent(t *testing.T) {
	inj, err := New(Config{Seed: 9, ChunkDrop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNet(NetConfig{Seed: 9, LinkDrop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 256
	for i := 0; i < total; i++ {
		op := store.MoveOp{From: 1, To: 2, Buckets: []int{i}}
		e1 := inj.BeforeMove(op)
		_, e2 := n.OnChunk(0, 1, op)
		if (e1 != nil) == (e2 != nil) {
			agree++
		}
	}
	if agree == total {
		t.Fatalf("executor and link drop decisions identical across %d chunks", total)
	}
}
