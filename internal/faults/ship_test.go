package faults

import (
	"testing"
	"time"
)

// TestShipDeterminism pins the replay contract: two injectors with the same
// seed produce identical decision sequences over the same batch stream,
// including re-rolled retries, while a different seed diverges somewhere.
func TestShipDeterminism(t *testing.T) {
	cfg := ShipConfig{Seed: 42, Drop: 0.2, Dup: 0.2, Reorder: 0.2, Delay: 0.2, Partition: 0.1}
	run := func(seed int64) []ShipDecision {
		c := cfg
		c.Seed = seed
		inj, err := NewShip(c)
		if err != nil {
			t.Fatal(err)
		}
		var out []ShipDecision
		for batch := uint64(0); batch < 200; batch++ {
			// Two attempts per batch: retried deliveries must re-roll under
			// the attempt counter, not repeat the first verdict.
			out = append(out, inj.OnBatch(0, 1, batch), inj.OnBatch(0, 1, batch))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	// Retries must be able to change the verdict: some batch must differ
	// between its first and second attempt.
	differs := false
	for i := 0; i < len(a); i += 2 {
		if a[i] != a[i+1] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("no batch's retry re-rolled to a different verdict")
	}
}

// TestShipPairIndependence checks that decisions hash over the (from, to)
// pair: the same batch ordinal on different links sees an independent
// schedule, so ship faults stay placement-invariant.
func TestShipPairIndependence(t *testing.T) {
	cfg := ShipConfig{Seed: 7, Drop: 0.5}
	a, _ := NewShip(cfg)
	b, _ := NewShip(cfg)
	same := true
	for batch := uint64(0); batch < 100; batch++ {
		if a.OnBatch(0, 1, batch) != b.OnBatch(2, 1, batch) {
			same = false
		}
	}
	if same {
		t.Fatal("links (0,1) and (2,1) share a fault schedule")
	}
}

// TestShipPrecedence checks the decision shape invariants: a partitioned or
// dropped batch carries no other fault, and a reordered batch is never also
// a dup.
func TestShipPrecedence(t *testing.T) {
	inj, err := NewShip(ShipConfig{Seed: 1, Drop: 0.3, Dup: 0.3, Reorder: 0.3, Delay: 0.3, Partition: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for batch := uint64(0); batch < 500; batch++ {
		d := inj.OnBatch(0, 1, batch)
		if (d.Partitioned || d.Drop) && (d.Dup || d.Reorder || d.Delay > 0) {
			t.Fatalf("batch %d: lost batch carries extra faults: %+v", batch, d)
		}
		if d.Partitioned && d.Drop {
			t.Fatalf("batch %d: both partitioned and dropped", batch)
		}
		if d.Reorder && d.Dup {
			t.Fatalf("batch %d: both reordered and duped", batch)
		}
	}
	st := inj.Stats()
	if st.Offered != 500 {
		t.Fatalf("Offered = %d", st.Offered)
	}
	for name, v := range map[string]int64{
		"drops": st.Drops, "partitions": st.Partitions, "dups": st.Dups,
		"reorders": st.Reorders, "delays": st.Delays,
	} {
		if v == 0 {
			t.Errorf("no %s in 500 batches at p=0.3", name)
		}
	}
}

// TestShipHealAfter checks the heal-after episode machine: the first rolled
// partition opens an outage during which every attempt fails, and once the
// window elapses the pair is healed for good.
func TestShipHealAfter(t *testing.T) {
	inj, err := NewShip(ShipConfig{Seed: 9, Partition: 1, HealAfter: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !inj.OnBatch(0, 1, 0).Partitioned {
		t.Fatal("p=1 schedule did not open an outage")
	}
	// Inside the window, even attempts whose own roll would pass fail: the
	// link is down, not lossy.
	for i := uint64(1); i < 5; i++ {
		if !inj.OnBatch(0, 1, i).Partitioned {
			t.Fatalf("batch %d delivered during the outage", i)
		}
	}
	// An independent pair runs its own episode.
	if !inj.OnBatch(1, 2, 0).Partitioned {
		t.Fatal("second pair did not open its own outage")
	}
	time.Sleep(60 * time.Millisecond)
	for i := uint64(5); i < 10; i++ {
		if inj.OnBatch(0, 1, i).Partitioned {
			t.Fatalf("batch %d partitioned after the pair healed", i)
		}
	}
	if _, err := NewShip(ShipConfig{Partition: 0.5, HealAfter: -time.Second}); err == nil {
		t.Fatal("accepted negative heal-after")
	}
}

// TestParseShipRoundTrip checks the flag spec round-trips through String.
func TestParseShipRoundTrip(t *testing.T) {
	spec := "seed=42,ship-drop=0.05,ship-dup=0.1,ship-reorder=0.05,ship-delay=0.1,ship-delay-for=5ms,ship-partition=0.02,heal-after=500ms"
	cfg, err := ParseShip(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Drop != 0.05 || cfg.DelayFor != 5*time.Millisecond || cfg.Partition != 0.02 {
		t.Fatalf("parsed %+v", cfg)
	}
	cfg2, err := ParseShip(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", cfg.String(), err)
	}
	if cfg2 != cfg {
		t.Fatalf("round trip drifted: %+v vs %+v", cfg, cfg2)
	}
	if _, err := ParseShip("ship-drop=1.5"); err == nil {
		t.Fatal("accepted probability above 1")
	}
	if _, err := ParseShip("bogus=1"); err == nil {
		t.Fatal("accepted unknown key")
	}
	empty, err := ParseShip("  ")
	if err != nil || empty.Enabled() {
		t.Fatalf("blank spec: %+v, %v", empty, err)
	}
}
