// Package faults is the injectable fault plane for chaos testing the live
// migration path. The paper's value proposition is reconfiguration *under
// load*, which only matters if a reconfiguration that misbehaves — a chunk
// send failing, an executor stalling, a partition pair going dark — degrades
// gracefully instead of wedging the cluster. This package produces those
// misbehaviours on demand, deterministically.
//
// Determinism is the load-bearing property: every injection decision is a
// pure function of (seed, source partition, destination partition, chunk
// identity, attempt number), computed by hashing rather than by drawing from
// a shared PRNG stream. Concurrent partition-pair streams therefore see the
// same fault schedule regardless of goroutine interleaving, which is what
// lets the chaos suite demand byte-identical final bucket plans across runs
// at a fixed seed.
//
// The injector plugs into the engine through store.FaultInjector and is
// consulted before each chunk-level move. Rollback operations are exempt by
// contract (store.MoveOp.Rollback): recovery from an injected fault must
// never itself be injected with failure, mirroring real Squall, where the
// source's committed copy survives until the destination acknowledges.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/store"
)

// ErrInjected is the sentinel wrapped by every injected failure, so callers
// can distinguish chaos from genuine engine errors.
var ErrInjected = errors.New("faults: injected failure")

// PartitionPair identifies a directed source→destination partition pair.
type PartitionPair struct {
	From, To int
}

// Config describes a deterministic fault schedule.
type Config struct {
	// Seed selects the schedule; the same seed always produces the same
	// injection decisions for the same sequence of moves.
	Seed int64
	// ChunkDrop is the probability in [0, 1] that a chunk send fails.
	ChunkDrop float64
	// ChunkSlow is the probability in [0, 1] that a chunk is delayed by
	// SlowDelay before it executes.
	ChunkSlow float64
	// SlowDelay is the delay of a slow chunk (default 2ms).
	SlowDelay time.Duration
	// Stall is the probability in [0, 1] that the sending coordinator
	// stalls for StallDelay before the chunk executes — long enough to
	// trip a configured per-move timeout.
	Stall float64
	// StallDelay is the duration of an injected stall (default 50ms).
	StallDelay time.Duration
	// CrashPairs lists partition pairs whose chunk sends always fail — a
	// crashed network path between two partitions.
	CrashPairs []PartitionPair
	// CrashParts lists partitions that fail every move they participate
	// in, sending or receiving — a crashed partition executor.
	CrashParts []int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for name, p := range map[string]float64{"chunk-drop": c.ChunkDrop, "chunk-slow": c.ChunkSlow, "stall": c.Stall} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", name, p)
		}
	}
	if c.SlowDelay < 0 || c.StallDelay < 0 {
		return fmt.Errorf("faults: delays must be non-negative")
	}
	return nil
}

// Stats counts the injections performed so far.
type Stats struct {
	// Drops is the number of chunk sends failed by probability.
	Drops int64
	// Crashes is the number of chunk sends failed by a crashed pair or
	// partition.
	Crashes int64
	// Slows and Stalls count injected delays.
	Slows, Stalls int64
	// Offered is the total number of forward moves consulted.
	Offered int64
}

// chunkKey identifies one logical chunk of one partition-pair stream: the
// pair plus the chunk's first bucket. Retries of the same chunk share the
// key and advance its attempt counter, so a retry re-rolls the dice
// deterministically instead of replaying the identical failure.
type chunkKey struct {
	from, to, bucket int
}

// Injector implements store.FaultInjector with a deterministic schedule.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[chunkKey]uint64

	crashPairs map[PartitionPair]struct{}
	crashParts map[int]struct{}

	drops, crashes, slows, stalls, offered atomic.Int64
}

// New builds an injector for the given schedule.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SlowDelay == 0 {
		cfg.SlowDelay = 2 * time.Millisecond
	}
	if cfg.StallDelay == 0 {
		cfg.StallDelay = 50 * time.Millisecond
	}
	in := &Injector{
		cfg:        cfg,
		attempts:   make(map[chunkKey]uint64),
		crashPairs: make(map[PartitionPair]struct{}, len(cfg.CrashPairs)),
		crashParts: make(map[int]struct{}, len(cfg.CrashParts)),
	}
	for _, p := range cfg.CrashPairs {
		in.crashPairs[p] = struct{}{}
	}
	for _, p := range cfg.CrashParts {
		in.crashParts[p] = struct{}{}
	}
	return in, nil
}

// Config returns the injector's schedule.
func (in *Injector) Config() Config { return in.cfg }

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:   in.drops.Load(),
		Crashes: in.crashes.Load(),
		Slows:   in.slows.Load(),
		Stalls:  in.stalls.Load(),
		Offered: in.offered.Load(),
	}
}

// Salts separate the independent decision streams drawn from one hash.
const (
	saltDrop uint64 = 0xD609
	saltSlow uint64 = 0x510C
	saltStal uint64 = 0x57A1
)

// BeforeMove implements store.FaultInjector.
func (in *Injector) BeforeMove(op store.MoveOp) error {
	if op.Rollback {
		return nil // recovery is exempt by contract
	}
	in.offered.Add(1)
	if _, crashed := in.crashPairs[PartitionPair{From: op.From, To: op.To}]; crashed {
		in.crashes.Add(1)
		return fmt.Errorf("faults: partition pair %d -> %d crashed: %w", op.From, op.To, ErrInjected)
	}
	if _, dead := in.crashParts[op.From]; dead {
		in.crashes.Add(1)
		return fmt.Errorf("faults: partition %d crashed: %w", op.From, ErrInjected)
	}
	if _, dead := in.crashParts[op.To]; dead {
		in.crashes.Add(1)
		return fmt.Errorf("faults: partition %d crashed: %w", op.To, ErrInjected)
	}

	key := chunkKey{from: op.From, to: op.To, bucket: -1}
	if len(op.Buckets) > 0 {
		key.bucket = op.Buckets[0]
	}
	in.mu.Lock()
	attempt := in.attempts[key]
	in.attempts[key]++
	in.mu.Unlock()

	if in.roll(key, attempt, saltStal) < in.cfg.Stall {
		in.stalls.Add(1)
		time.Sleep(in.cfg.StallDelay)
	} else if in.roll(key, attempt, saltSlow) < in.cfg.ChunkSlow {
		in.slows.Add(1)
		time.Sleep(in.cfg.SlowDelay)
	}
	if in.roll(key, attempt, saltDrop) < in.cfg.ChunkDrop {
		in.drops.Add(1)
		return fmt.Errorf("faults: dropped chunk of %d buckets %d -> %d (attempt %d): %w",
			len(op.Buckets), op.From, op.To, attempt+1, ErrInjected)
	}
	return nil
}

// roll maps (seed, chunk, attempt, salt) onto a uniform value in [0, 1) by
// hashing — no shared PRNG stream, so decisions are interleaving-free.
func (in *Injector) roll(key chunkKey, attempt uint64, salt uint64) float64 {
	h := uint64(in.cfg.Seed)
	h = splitmix64(h ^ uint64(key.from)<<32 ^ uint64(uint32(key.to)))
	h = splitmix64(h ^ uint64(uint32(key.bucket)))
	h = splitmix64(h ^ attempt)
	h = splitmix64(h ^ salt)
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a full-avalanche
// 64-bit mix, perfect for turning structured keys into uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Parse builds a Config from a comma-separated spec string, the format of
// the pstore `--faults` flag:
//
//	seed=42,chunk-drop=0.05,chunk-slow=0.1,slow-delay=2ms,
//	stall=0.01,stall-delay=50ms,crash-pair=3:7,crash-part=2
//
// crash-pair and crash-part may repeat. An empty spec is an empty schedule.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "chunk-drop":
			cfg.ChunkDrop, err = strconv.ParseFloat(v, 64)
		case "chunk-slow":
			cfg.ChunkSlow, err = strconv.ParseFloat(v, 64)
		case "slow-delay":
			cfg.SlowDelay, err = time.ParseDuration(v)
		case "stall":
			cfg.Stall, err = strconv.ParseFloat(v, 64)
		case "stall-delay":
			cfg.StallDelay, err = time.ParseDuration(v)
		case "crash-pair":
			var pair PartitionPair
			pair, err = parsePair(v)
			cfg.CrashPairs = append(cfg.CrashPairs, pair)
		case "crash-part":
			var p int
			p, err = strconv.Atoi(v)
			cfg.CrashParts = append(cfg.CrashParts, p)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: parsing %q: %w", field, err)
		}
	}
	return cfg, cfg.Validate()
}

func parsePair(v string) (PartitionPair, error) {
	a, b, ok := strings.Cut(v, ":")
	if !ok {
		return PartitionPair{}, fmt.Errorf("pair %q is not from:to", v)
	}
	from, err := strconv.Atoi(a)
	if err != nil {
		return PartitionPair{}, err
	}
	to, err := strconv.Atoi(b)
	if err != nil {
		return PartitionPair{}, err
	}
	return PartitionPair{From: from, To: to}, nil
}

// String renders the schedule back into Parse's spec format.
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.ChunkDrop > 0 {
		parts = append(parts, fmt.Sprintf("chunk-drop=%v", c.ChunkDrop))
	}
	if c.ChunkSlow > 0 {
		parts = append(parts, fmt.Sprintf("chunk-slow=%v", c.ChunkSlow))
	}
	if c.SlowDelay > 0 {
		parts = append(parts, fmt.Sprintf("slow-delay=%v", c.SlowDelay))
	}
	if c.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%v", c.Stall))
	}
	if c.StallDelay > 0 {
		parts = append(parts, fmt.Sprintf("stall-delay=%v", c.StallDelay))
	}
	pairs := append([]PartitionPair(nil), c.CrashPairs...)
	sort.Slice(pairs, func(i, j int) bool {
		return pairs[i].From < pairs[j].From || (pairs[i].From == pairs[j].From && pairs[i].To < pairs[j].To)
	})
	for _, p := range pairs {
		parts = append(parts, fmt.Sprintf("crash-pair=%d:%d", p.From, p.To))
	}
	crash := append([]int(nil), c.CrashParts...)
	sort.Ints(crash)
	for _, p := range crash {
		parts = append(parts, fmt.Sprintf("crash-part=%d", p))
	}
	return strings.Join(parts, ",")
}
