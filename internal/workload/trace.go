package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV serializes a load series as CSV with a header row and
// "rfc3339_timestamp,load" records, the interchange format used by the
// capacity-planner example and the pstore CLI.
func WriteCSV(w io.Writer, s Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "load"}); err != nil {
		return fmt.Errorf("workload: writing CSV header: %w", err)
	}
	for i, v := range s.Values {
		rec := []string{
			s.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(v, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series written by WriteCSV. The slot interval is inferred
// from the first two timestamps; a single-row file defaults to one minute.
func ReadCSV(r io.Reader) (Series, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return Series{}, fmt.Errorf("workload: reading CSV: %w", err)
	}
	if len(recs) < 2 {
		return Series{}, fmt.Errorf("workload: CSV has no data rows")
	}
	if recs[0][0] != "timestamp" {
		return Series{}, fmt.Errorf("workload: CSV missing timestamp header, got %q", recs[0][0])
	}
	rows := recs[1:]
	var start time.Time
	values := make([]float64, 0, len(rows))
	for i, rec := range rows {
		if len(rec) != 2 {
			return Series{}, fmt.Errorf("workload: CSV row %d has %d fields, want 2", i+1, len(rec))
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return Series{}, fmt.Errorf("workload: CSV row %d timestamp: %w", i+1, err)
		}
		if i == 0 {
			start = ts
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return Series{}, fmt.Errorf("workload: CSV row %d load: %w", i+1, err)
		}
		values = append(values, v)
	}
	interval := time.Minute
	if len(rows) >= 2 {
		t1, err := time.Parse(time.RFC3339, rows[1][0])
		if err == nil {
			if d := t1.Sub(start); d > 0 {
				interval = d
			}
		}
	}
	return NewSeries(start, interval, values), nil
}
