package workload

import (
	"fmt"
	"math"
)

// Spike describes an unexpected load surge, like the flash crowd the paper
// injects in Figure 11 (a day in September 2016 with a large unpredicted
// spike). Spikes are deliberately not part of the training data so the
// predictor cannot anticipate them.
type Spike struct {
	// StartSlot is the slot index where the surge begins.
	StartSlot int
	// RampSlots is how many slots the surge takes to reach full height.
	RampSlots int
	// HoldSlots is how long the surge stays at full height.
	HoldSlots int
	// DecaySlots is how many slots the surge takes to fade out.
	DecaySlots int
	// Factor is the multiplier at full height.
	Factor float64
}

// Apply returns a copy of s with the spike applied multiplicatively.
func (sp Spike) Apply(s Series) (Series, error) {
	if sp.Factor < 1 {
		return Series{}, fmt.Errorf("workload: spike factor %v must be at least 1", sp.Factor)
	}
	if sp.StartSlot < 0 || sp.StartSlot >= s.Len() {
		return Series{}, fmt.Errorf("workload: spike start %d outside series of %d slots",
			sp.StartSlot, s.Len())
	}
	out := s.Clone()
	total := sp.RampSlots + sp.HoldSlots + sp.DecaySlots
	for i := 0; i < total; i++ {
		idx := sp.StartSlot + i
		if idx >= out.Len() {
			break
		}
		var frac float64
		switch {
		case i < sp.RampSlots:
			frac = float64(i+1) / float64(sp.RampSlots)
		case i < sp.RampSlots+sp.HoldSlots:
			frac = 1
		default:
			d := i - sp.RampSlots - sp.HoldSlots
			frac = 1 - float64(d+1)/float64(sp.DecaySlots)
		}
		out.Values[idx] *= 1 + (sp.Factor-1)*math.Max(0, frac)
	}
	return out, nil
}
