package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// WikipediaConfig parameterizes the synthetic hourly Wikipedia-like page
// view trace used to reproduce Figure 6. The English edition is highly
// periodic and predictable; the German edition has the same diurnal shape
// but more day-to-day irregularity and noise, making it the paper's "less
// predictable" example.
type WikipediaConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Days is the trace length in days; slots are hourly.
	Days int
	// BaseViews is the overnight minimum in page requests per hour.
	BaseViews float64
	// PeakFactor is the daily peak over the base (Wikipedia's diurnal
	// swing is milder than retail, roughly 2-3x).
	PeakFactor float64
	// NoiseFrac is the multiplicative noise level.
	NoiseFrac float64
	// DailyJitterFrac randomizes per-day amplitude.
	DailyJitterFrac float64
	// WeekendFactor scales weekend traffic.
	WeekendFactor float64
}

// EnglishWikipediaConfig mimics the English edition: large volume, strong
// periodicity, low noise.
func EnglishWikipediaConfig(seed int64, days int) WikipediaConfig {
	return WikipediaConfig{
		Seed: seed, Days: days,
		BaseViews:       4.5e6,
		PeakFactor:      2.2,
		NoiseFrac:       0.025,
		DailyJitterFrac: 0.05,
		WeekendFactor:   0.95,
	}
}

// GermanWikipediaConfig mimics the German edition: smaller volume, the same
// diurnal shape, but noticeably noisier and less regular.
func GermanWikipediaConfig(seed int64, days int) WikipediaConfig {
	return WikipediaConfig{
		Seed: seed, Days: days,
		BaseViews:       0.6e6,
		PeakFactor:      3.2,
		NoiseFrac:       0.07,
		DailyJitterFrac: 0.12,
		WeekendFactor:   0.88,
	}
}

// SyntheticWikipedia generates an hourly page-view trace.
func SyntheticWikipedia(cfg WikipediaConfig) (Series, error) {
	if cfg.Days < 1 {
		return Series{}, fmt.Errorf("workload: Days %d must be at least 1", cfg.Days)
	}
	if cfg.BaseViews <= 0 || cfg.PeakFactor < 1 {
		return Series{}, fmt.Errorf("workload: BaseViews %v and PeakFactor %v invalid",
			cfg.BaseViews, cfg.PeakFactor)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Days * 24
	values := make([]float64, n)
	peak := cfg.BaseViews * cfg.PeakFactor

	amp := make([]float64, cfg.Days)
	for d := range amp {
		amp[d] = 1 + cfg.DailyJitterFrac*rng.NormFloat64()
		if amp[d] < 0.4 {
			amp[d] = 0.4
		}
	}

	noise := 0.0
	const noisePersist = 0.8
	for i := 0; i < n; i++ {
		day := i / 24
		tod := float64(i%24) / 24

		dayAmp := amp[day]
		// Trough around 05:00 UTC-ish local night, single broad peak in
		// the evening.
		phase := 2 * math.Pi * (tod - 5.0/24)
		shape := math.Pow(0.5*(1-math.Cos(phase)), 1.2)
		level := cfg.BaseViews + (peak-cfg.BaseViews)*shape*dayAmp

		weekday := (5 + day) % 7
		if weekday == 0 || weekday == 6 {
			level *= cfg.WeekendFactor
		}

		noise = noisePersist*noise + math.Sqrt(1-noisePersist*noisePersist)*rng.NormFloat64()
		v := level * (1 + cfg.NoiseFrac*noise)
		if v < 0 {
			v = 0
		}
		values[i] = v
	}
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	return NewSeries(start, time.Hour, values), nil
}
