package workload

import (
	"time"

	"pstore/internal/timeseries"
)

// Series is re-exported from the timeseries package so workload consumers
// do not need to import both.
type Series = timeseries.Series

// NewSeries constructs a Series; see timeseries.New.
func NewSeries(start time.Time, interval time.Duration, values []float64) Series {
	return timeseries.New(start, interval, values)
}
