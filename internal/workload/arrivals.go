package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrivals converts a load series (requests per slot) into a stream of
// transaction arrival times, modelling arrivals within each slot as a
// Poisson process whose rate is the slot's load. It is how the benchmark
// driver replays a trace against the storage engine (Section 7: the paper
// replays B2W's logs at 10x speed; here SlotDuration compresses the wall
// time of one trace slot).
type Arrivals struct {
	series Series
	// slotDur is the wall-clock duration one trace slot is replayed in.
	slotDur time.Duration
	// rateScale multiplies each slot's load before generating arrivals.
	rateScale float64
	rng       *rand.Rand

	slot int
	next time.Duration // arrival offset from the start of the replay
}

// NewArrivals returns an arrival stream replaying series. Each trace slot is
// compressed into slotDur of replay time, and each slot's request count is
// multiplied by rateScale (use it to scale the trace down to the capacity of
// the test substrate).
func NewArrivals(series Series, slotDur time.Duration, rateScale float64, seed int64) (*Arrivals, error) {
	if slotDur <= 0 {
		return nil, fmt.Errorf("workload: slot duration %v must be positive", slotDur)
	}
	if rateScale <= 0 {
		return nil, fmt.Errorf("workload: rate scale %v must be positive", rateScale)
	}
	a := &Arrivals{
		series:    series,
		slotDur:   slotDur,
		rateScale: rateScale,
		rng:       rand.New(rand.NewSource(seed)),
	}
	return a, nil
}

// Next returns the offset of the next arrival from the start of the replay
// and true, or false when the trace is exhausted.
func (a *Arrivals) Next() (time.Duration, bool) {
	for a.slot < a.series.Len() {
		rate := a.series.At(a.slot) * a.rateScale // expected arrivals this slot
		slotEnd := time.Duration(a.slot+1) * a.slotDur
		if rate <= 0 {
			a.slot++
			a.next = slotEnd
			continue
		}
		// Exponential inter-arrival gap within the slot, in replay time.
		gap := time.Duration(a.rng.ExpFloat64() / rate * float64(a.slotDur))
		a.next += gap
		if a.next >= slotEnd {
			a.slot++
			a.next = slotEnd
			continue
		}
		return a.next, true
	}
	return 0, false
}

// TotalDuration returns the replay wall time of the whole trace.
func (a *Arrivals) TotalDuration() time.Duration {
	return time.Duration(a.series.Len()) * a.slotDur
}
