package workload

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestSyntheticB2WShape(t *testing.T) {
	cfg := DefaultB2WConfig(42, 14)
	cfg.PromosPerWeek = 0 // keep the shape clean for ratio checks
	s, err := SyntheticB2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 14*MinutesPerDay {
		t.Fatalf("length = %d, want %d", s.Len(), 14*MinutesPerDay)
	}
	for i, v := range s.Values {
		if v < 0 {
			t.Fatalf("negative load %v at slot %d", v, i)
		}
	}
	// Peak to trough ratio should be near the configured 10x. Compare the
	// 99th-percentile level to the 1st-percentile level of one weekday.
	day := s.Slice(3*MinutesPerDay, 4*MinutesPerDay)
	ratio := day.Max() / day.Min()
	if ratio < 6 || ratio > 16 {
		t.Errorf("peak/trough ratio %.1f outside [6, 16]", ratio)
	}
}

func TestSyntheticB2WDiurnalPeriodicity(t *testing.T) {
	cfg := DefaultB2WConfig(7, 21)
	cfg.PromosPerWeek = 0
	s, err := SyntheticB2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same weekday, same time-of-day slots one week apart should correlate
	// strongly; day-lag autocorrelation of the load must be high.
	var num, denA, denB float64
	meanAll := s.Mean()
	lag := 7 * MinutesPerDay
	for i := lag; i < s.Len(); i++ {
		a := s.At(i) - meanAll
		b := s.At(i-lag) - meanAll
		num += a * b
		denA += a * a
		denB += b * b
	}
	corr := num / math.Sqrt(denA*denB)
	if corr < 0.95 {
		t.Errorf("week-lag autocorrelation %.3f, want >= 0.95", corr)
	}
}

func TestSyntheticB2WDeterministicBySeed(t *testing.T) {
	a, err := SyntheticB2W(DefaultB2WConfig(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticB2W(DefaultB2WConfig(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("traces with equal seed differ at slot %d", i)
		}
	}
	c, err := SyntheticB2W(DefaultB2WConfig(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("traces with different seeds are identical")
	}
}

func TestSyntheticB2WBlackFriday(t *testing.T) {
	cfg := DefaultB2WConfig(9, 10)
	cfg.PromosPerWeek = 0
	cfg.BlackFridayDay = 7 // a Friday (trace starts on Friday)
	s, err := SyntheticB2W(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bf := s.Slice(7*MinutesPerDay, 8*MinutesPerDay)
	normal := s.Slice(0, MinutesPerDay)
	if bf.Max() < 1.5*normal.Max() {
		t.Errorf("Black Friday peak %.0f not well above normal peak %.0f", bf.Max(), normal.Max())
	}
	// The surge starts at midnight: the first Black Friday hour should far
	// exceed the first hour of a normal Friday.
	if bf.Slice(0, 60).Mean() < 2*normal.Slice(0, 60).Mean() {
		t.Error("Black Friday midnight surge missing")
	}
}

func TestSyntheticB2WValidation(t *testing.T) {
	bad := DefaultB2WConfig(1, 0)
	if _, err := SyntheticB2W(bad); err == nil {
		t.Error("Days=0 should fail")
	}
	bad = DefaultB2WConfig(1, 1)
	bad.TroughLoad = 0
	if _, err := SyntheticB2W(bad); err == nil {
		t.Error("TroughLoad=0 should fail")
	}
	bad = DefaultB2WConfig(1, 1)
	bad.PeakFactor = 0.5
	if _, err := SyntheticB2W(bad); err == nil {
		t.Error("PeakFactor<1 should fail")
	}
	bad = DefaultB2WConfig(1, 1)
	bad.SlotsPerDay = 0
	if _, err := SyntheticB2W(bad); err == nil {
		t.Error("SlotsPerDay=0 should fail")
	}
}

func TestWikipediaEnglishMorePredictableThanGerman(t *testing.T) {
	en, err := SyntheticWikipedia(EnglishWikipediaConfig(3, 28))
	if err != nil {
		t.Fatal(err)
	}
	de, err := SyntheticWikipedia(GermanWikipediaConfig(3, 28))
	if err != nil {
		t.Fatal(err)
	}
	if en.Len() != 28*24 || de.Len() != 28*24 {
		t.Fatalf("lengths = %d, %d; want %d", en.Len(), de.Len(), 28*24)
	}
	// Residual variation around the mean daily profile should be larger
	// for the German-like trace.
	if rv(en) >= rv(de) {
		t.Errorf("en residual %.4f should be below de residual %.4f", rv(en), rv(de))
	}
}

// rv computes the relative RMS of residuals from the mean daily profile.
func rv(s Series) float64 {
	profile := make([]float64, 24)
	counts := make([]float64, 24)
	for i, v := range s.Values {
		profile[i%24] += v
		counts[i%24]++
	}
	for h := range profile {
		profile[h] /= counts[h]
	}
	var sum float64
	for i, v := range s.Values {
		d := (v - profile[i%24]) / profile[i%24]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.Values)))
}

func TestWikipediaValidation(t *testing.T) {
	if _, err := SyntheticWikipedia(WikipediaConfig{Days: 0, BaseViews: 1, PeakFactor: 2}); err == nil {
		t.Error("Days=0 should fail")
	}
	if _, err := SyntheticWikipedia(WikipediaConfig{Days: 1, BaseViews: 0, PeakFactor: 2}); err == nil {
		t.Error("BaseViews=0 should fail")
	}
}

func TestSpikeApply(t *testing.T) {
	base := NewSeries(time.Time{}, time.Minute, []float64{100, 100, 100, 100, 100, 100, 100, 100})
	sp := Spike{StartSlot: 2, RampSlots: 2, HoldSlots: 2, DecaySlots: 2, Factor: 3}
	out, err := sp.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if base.Values[3] != 100 {
		t.Error("Apply mutated input")
	}
	if out.Values[0] != 100 || out.Values[1] != 100 {
		t.Error("spike applied before start")
	}
	if out.Values[4] != 300 || out.Values[5] != 300 {
		t.Errorf("hold values = %v, %v; want 300", out.Values[4], out.Values[5])
	}
	if out.Values[3] <= out.Values[2] {
		t.Error("ramp not increasing")
	}
	if out.Values[7] >= out.Values[6] {
		t.Error("decay not decreasing")
	}
	if _, err := (Spike{StartSlot: 99, Factor: 2}).Apply(base); err == nil {
		t.Error("out-of-range start should fail")
	}
	if _, err := (Spike{StartSlot: 0, Factor: 0.5}).Apply(base); err == nil {
		t.Error("factor < 1 should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := SyntheticB2W(DefaultB2WConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), orig.Len())
	}
	if back.Interval != orig.Interval {
		t.Errorf("round trip interval %v, want %v", back.Interval, orig.Interval)
	}
	if !back.Start.Equal(orig.Start) {
		t.Errorf("round trip start %v, want %v", back.Start, orig.Start)
	}
	for i := range orig.Values {
		if math.Abs(back.Values[i]-orig.Values[i]) > 1e-9 {
			t.Fatalf("round trip value %d: %v vs %v", i, back.Values[i], orig.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("x,y\n1,2\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("timestamp,load\nnot-a-time,5\n")); err == nil {
		t.Error("bad timestamp should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("timestamp,load\n2016-07-01T00:00:00Z,zzz\n")); err == nil {
		t.Error("bad load should fail")
	}
}

func TestArrivalsCountMatchesLoad(t *testing.T) {
	// 10 slots of 200 requests each, scaled by 0.5 -> expect ~1000 arrivals.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 200
	}
	s := NewSeries(time.Time{}, time.Minute, vals)
	a, err := NewArrivals(s, 50*time.Millisecond, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	var prev time.Duration = -1
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		if at < prev {
			t.Fatalf("arrival times not monotonic: %v after %v", at, prev)
		}
		if at > a.TotalDuration() {
			t.Fatalf("arrival %v beyond trace end %v", at, a.TotalDuration())
		}
		prev = at
		count++
	}
	want := 1000.0
	if math.Abs(float64(count)-want) > 4*math.Sqrt(want) {
		t.Errorf("arrival count %d too far from expected %v", count, want)
	}
}

func TestArrivalsZeroLoadSlots(t *testing.T) {
	s := NewSeries(time.Time{}, time.Minute, []float64{0, 0, 0})
	a, err := NewArrivals(s, 10*time.Millisecond, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Next(); ok {
		t.Error("zero-load trace should produce no arrivals")
	}
}

func TestArrivalsValidation(t *testing.T) {
	s := NewSeries(time.Time{}, time.Minute, []float64{1})
	if _, err := NewArrivals(s, 0, 1, 1); err == nil {
		t.Error("zero slot duration should fail")
	}
	if _, err := NewArrivals(s, time.Second, 0, 1); err == nil {
		t.Error("zero rate scale should fail")
	}
}
