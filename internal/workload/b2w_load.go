// Package workload generates the load traces P-Store is evaluated on. The
// paper uses proprietary B2W transaction logs (months of per-minute request
// counts on the cart/checkout databases, Figure 1) and public Wikipedia
// hourly page-view dumps (Figure 6); neither is available offline, so this
// package produces seeded synthetic traces with the same structure the
// paper describes: a strong diurnal pattern with peak load roughly 10x the
// trough, weekly seasonality, day-to-day variability, occasional promotion
// spikes, and a Black Friday surge. It also converts load series into
// Poisson transaction arrival streams for driving the storage engine.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// MinutesPerDay is the number of one-minute slots per day, the paper's slot
// granularity for the B2W load (T = 1440 in Equation 8).
const MinutesPerDay = 24 * 60

// B2WConfig parameterizes the synthetic B2W-like retail load.
type B2WConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Days is the length of the trace in days.
	Days int
	// SlotsPerDay is the sampling granularity (1440 for per-minute).
	SlotsPerDay int
	// TroughLoad is the overnight minimum in requests per slot.
	TroughLoad float64
	// PeakFactor is the ratio of daily peak to trough (the paper observes
	// about 10x).
	PeakFactor float64
	// WeekendFactor scales Saturday/Sunday load (B2W-like retail traffic
	// dips slightly on weekends).
	WeekendFactor float64
	// NoiseFrac is the standard deviation of multiplicative short-term
	// noise as a fraction of the level, applied with AR(1) correlation so
	// transients persist for several minutes.
	NoiseFrac float64
	// DailyJitterFrac randomizes each day's amplitude (day-to-day
	// variability from seasonality and campaigns).
	DailyJitterFrac float64
	// PromosPerWeek is the expected number of promotion spikes per week;
	// each lifts load by 1.3-2.2x for 30-120 minutes.
	PromosPerWeek float64
	// BlackFridayDay, if non-negative, marks that day index as Black
	// Friday: load surges from midnight to BlackFridayFactor times the
	// normal peak.
	BlackFridayDay int
	// BlackFridayFactor is the Black Friday surge multiplier.
	BlackFridayFactor float64
}

// DefaultB2WConfig returns the configuration used throughout the
// experiments: per-minute slots, 10x peak-to-trough, mild noise, about one
// promotion per week, and no Black Friday.
func DefaultB2WConfig(seed int64, days int) B2WConfig {
	return B2WConfig{
		Seed:              seed,
		Days:              days,
		SlotsPerDay:       MinutesPerDay,
		TroughLoad:        2500,
		PeakFactor:        10,
		WeekendFactor:     0.88,
		NoiseFrac:         0.04,
		DailyJitterFrac:   0.08,
		PromosPerWeek:     1,
		BlackFridayDay:    -1,
		BlackFridayFactor: 2.6,
	}
}

// Validate reports configuration errors.
func (c B2WConfig) Validate() error {
	if c.Days < 1 {
		return fmt.Errorf("workload: Days %d must be at least 1", c.Days)
	}
	if c.SlotsPerDay < 1 {
		return fmt.Errorf("workload: SlotsPerDay %d must be at least 1", c.SlotsPerDay)
	}
	if c.TroughLoad <= 0 {
		return fmt.Errorf("workload: TroughLoad %v must be positive", c.TroughLoad)
	}
	if c.PeakFactor < 1 {
		return fmt.Errorf("workload: PeakFactor %v must be at least 1", c.PeakFactor)
	}
	return nil
}

// SyntheticB2W generates the synthetic retail load trace. The series starts
// on a Friday (so a BlackFridayDay divisible by 7 lands on a Friday) at
// midnight with one value per slot.
func SyntheticB2W(cfg B2WConfig) (Series, error) {
	if err := cfg.Validate(); err != nil {
		return Series{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Days * cfg.SlotsPerDay
	values := make([]float64, n)

	peak := cfg.TroughLoad * cfg.PeakFactor

	// Day-level amplitude jitter.
	dayAmp := make([]float64, cfg.Days)
	for d := range dayAmp {
		dayAmp[d] = 1 + cfg.DailyJitterFrac*rng.NormFloat64()
		if dayAmp[d] < 0.5 {
			dayAmp[d] = 0.5
		}
	}

	// Promotion spikes: Poisson count over the whole trace.
	type promo struct {
		start, length int
		factor        float64
	}
	var promos []promo
	expected := cfg.PromosPerWeek * float64(cfg.Days) / 7
	for i := 0; i < poisson(rng, expected); i++ {
		promos = append(promos, promo{
			start:  rng.Intn(n),
			length: cfg.SlotsPerDay/48 + rng.Intn(cfg.SlotsPerDay/16+1), // 30-120 min at 1440 slots/day
			factor: 1.3 + 0.9*rng.Float64(),
		})
	}

	noise := 0.0 // AR(1) noise state
	const noisePersist = 0.9
	for i := 0; i < n; i++ {
		day := i / cfg.SlotsPerDay
		tod := float64(i%cfg.SlotsPerDay) / float64(cfg.SlotsPerDay)

		// Diurnal shape: trough around 04:30, peak around 16:30, built
		// from a shifted cosine raised to a power so the peak is broad
		// and the overnight trough is deep, like Figure 1.
		phase := 2 * math.Pi * (tod - 4.5/24)
		shape := math.Pow(0.5*(1-math.Cos(phase)), 1.4)
		level := cfg.TroughLoad + (peak-cfg.TroughLoad)*shape*dayAmp[day]

		// Weekly seasonality: the trace starts on a Friday.
		weekday := (5 + day) % 7 // 0=Sunday ... 6=Saturday
		if weekday == 0 || weekday == 6 {
			level *= cfg.WeekendFactor
		}

		// Promotion spikes.
		for _, p := range promos {
			if i >= p.start && i < p.start+p.length {
				level *= p.factor
			}
		}

		// Black Friday: surge starting at midnight, strongest in the
		// first hours (B2W's sale opens at midnight), decaying towards a
		// still-elevated daytime level.
		if day == cfg.BlackFridayDay {
			surge := cfg.BlackFridayFactor * (1 - 0.35*tod)
			if surge < 1 {
				surge = 1
			}
			level *= surge
		}

		noise = noisePersist*noise + math.Sqrt(1-noisePersist*noisePersist)*rng.NormFloat64()
		v := level * (1 + cfg.NoiseFrac*noise)
		if v < 0 {
			v = 0
		}
		values[i] = v
	}

	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC) // a Friday
	return NewSeries(start, 24*time.Hour/time.Duration(cfg.SlotsPerDay), values), nil
}

// poisson draws a Poisson variate with the given mean using inversion for
// small means (all we need here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
