package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"pstore/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte(`{"txn":"noop","key":"k"}`),
		{},
		bytes.Repeat([]byte("x"), 4096),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestEncodeDecodeFrame(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Txn: "addLineToCart", Key: "cart-1", Args: []byte(`{"sku":"s"}`)}
	if err := EncodeFrame(&buf, in); err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	var out Request
	if err := DecodeFrame(&buf, &out); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if out.Txn != in.Txn || out.Key != in.Key || string(out.Args) != string(in.Args) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for _, cut := range []int{1, 3, 4, len(raw) - 1} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame oversize: got %v, want ErrFrameTooLarge", err)
	}
	// A corrupt length prefix must fail before allocating the claimed size.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame oversize prefix: got %v, want ErrFrameTooLarge", err)
	}
}

// TestErrorMapping pins the full code table: every typed engine error maps
// to its wire code, every code to its HTTP status, and retryable codes back
// to the same sentinel — the invariant that makes errors.Is transparent
// across the wire.
func TestErrorMapping(t *testing.T) {
	cases := []struct {
		err      error
		code     string
		status   int
		sentinel error
	}{
		{store.ErrOverload, CodeOverload, 429, store.ErrOverload},
		{store.ErrDeadlineExceeded, CodeDeadline, 504, store.ErrDeadlineExceeded},
		{store.ErrPartitionDown, CodePartitionDown, 503, store.ErrPartitionDown},
		{store.ErrUnknownTxn, CodeUnknownTxn, 400, store.ErrUnknownTxn},
		{store.ErrStopped, CodeStopped, 503, store.ErrStopped},
		{errors.New("insufficient stock"), CodeTxn, 422, nil},
	}
	for _, tc := range cases {
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("CodeOf(%v) = %q, want %q", tc.err, got, tc.code)
		}
		// Wrapped errors must map identically.
		if got := CodeOf(fmt.Errorf("context: %w", tc.err)); got != tc.code {
			t.Errorf("CodeOf(wrapped %v) = %q, want %q", tc.err, got, tc.code)
		}
		if got := StatusOf(tc.code); got != tc.status {
			t.Errorf("StatusOf(%q) = %d, want %d", tc.code, got, tc.status)
		}
		if got := SentinelOf(tc.code); !errors.Is(got, tc.sentinel) && got != tc.sentinel {
			t.Errorf("SentinelOf(%q) = %v, want %v", tc.code, got, tc.sentinel)
		}
	}
	if got := CodeOf(nil); got != "" {
		t.Errorf("CodeOf(nil) = %q, want empty", got)
	}
	if got := StatusOf(""); got != 200 {
		t.Errorf("StatusOf(\"\") = %d, want 200", got)
	}
	if got := StatusOf(CodeBadRequest); got != 400 {
		t.Errorf("StatusOf(bad_request) = %d, want 400", got)
	}
	if got := StatusOf(CodeInternal); got != 500 {
		t.Errorf("StatusOf(internal) = %d, want 500", got)
	}
}
