package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"pstore/internal/store"
)

type testRow struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func decodeTestRow(table string, raw json.RawMessage) (any, error) {
	var r testRow
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// TestChunkRoundTrip pushes a BucketData bundle through the full wire path —
// serialize, frame, unframe, decode — and checks the rebuilt bundle carries
// the same rows with their concrete types restored.
func TestChunkRoundTrip(t *testing.T) {
	d := store.NewBucketData()
	for b := 0; b < 3; b++ {
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("k%d-%d", b, i)
			d.AddRow(b*7, "T", key, &testRow{Name: key, N: i})
		}
	}
	d.AddRow(21, "U", "only", &testRow{Name: "only", N: 99})

	meta, frames, err := ChunkFromBucketData(d)
	if err != nil {
		t.Fatalf("ChunkFromBucketData: %v", err)
	}
	if meta.Rows != d.Rows() {
		t.Fatalf("meta rows %d, want %d", meta.Rows, d.Rows())
	}
	var buf bytes.Buffer
	if err := WriteChunkStream(&buf, meta, frames); err != nil {
		t.Fatalf("WriteChunkStream: %v", err)
	}
	gotMeta, gotFrames, err := ReadChunkStream(&buf)
	if err != nil {
		t.Fatalf("ReadChunkStream: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	rebuilt, err := BucketDataFromChunk(gotFrames, decodeTestRow)
	if err != nil {
		t.Fatalf("BucketDataFromChunk: %v", err)
	}
	if rebuilt.Rows() != d.Rows() {
		t.Fatalf("rebuilt rows %d, want %d", rebuilt.Rows(), d.Rows())
	}
	if got, want := rebuilt.Buckets(), d.Buckets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt buckets %v, want %v", got, want)
	}
	rebuilt.ForEachRow(func(bucket int, table, key string, row any) {
		r, ok := row.(*testRow)
		if !ok {
			t.Fatalf("row %s/%s decoded as %T, want *testRow", table, key, row)
		}
		if r.Name != key {
			t.Fatalf("row %s/%s carries name %q", table, key, r.Name)
		}
	})
}

// TestChunkStreamDeterministic asserts the serialized bytes of a chunk are
// stable across encodings — map iteration order must not leak into the wire.
func TestChunkStreamDeterministic(t *testing.T) {
	build := func() []byte {
		d := store.NewBucketData()
		for b := 0; b < 5; b++ {
			for i := 0; i < 10; i++ {
				d.AddRow(b, "T", fmt.Sprintf("k%d", i), &testRow{Name: "x", N: i})
			}
		}
		meta, frames, err := ChunkFromBucketData(d)
		if err != nil {
			t.Fatalf("ChunkFromBucketData: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteChunkStream(&buf, meta, frames); err != nil {
			t.Fatalf("WriteChunkStream: %v", err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same chunk differ")
	}
}

// TestChunkStreamTruncation: a chunk stream cut anywhere must surface as a
// typed transport error, never as silently partial data.
func TestChunkStreamTruncation(t *testing.T) {
	d := store.NewBucketData()
	d.AddRow(1, "T", "a", &testRow{Name: "a"})
	d.AddRow(2, "T", "b", &testRow{Name: "b"})
	meta, frames, err := ChunkFromBucketData(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChunkStream(&buf, meta, frames); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, _, err := ReadChunkStream(bytes.NewReader(full[:n])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d/%d: got %v, want io.ErrUnexpectedEOF", n, len(full), err)
		}
	}
	if _, _, err := ReadChunkStream(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}

// TestSnapshotFrameRoundTrip covers the snapshot leg: LSNs and row counts
// survive, and rows come back typed.
func TestSnapshotFrameRoundTrip(t *testing.T) {
	s := store.BucketSnapshot{
		Bucket: 9,
		Rows:   2,
		LSN:    42,
		Tables: map[string]map[string]any{
			"T": {"a": &testRow{Name: "a", N: 1}, "b": &testRow{Name: "b", N: 2}},
		},
	}
	f, err := FrameFromSnapshot(s)
	if err != nil {
		t.Fatalf("FrameFromSnapshot: %v", err)
	}
	got, err := SnapshotFromFrame(f, decodeTestRow)
	if err != nil {
		t.Fatalf("SnapshotFromFrame: %v", err)
	}
	if got.Bucket != s.Bucket || got.Rows != s.Rows || got.LSN != s.LSN {
		t.Fatalf("snapshot header round trip: got %+v", got)
	}
	r, ok := got.Tables["T"]["a"].(*testRow)
	if !ok || r.N != 1 {
		t.Fatalf("snapshot row decoded as %T %v", got.Tables["T"]["a"], got.Tables["T"]["a"])
	}
}

// TestNotOwnedCodeMapping pins the new code's wire identity: engine error →
// code → HTTP status → sentinel must compose back to store.ErrNotOwned.
func TestNotOwnedCodeMapping(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", store.ErrNotOwned)
	code := CodeOf(err)
	if code != CodeNotOwned {
		t.Fatalf("CodeOf: got %q, want %q", code, CodeNotOwned)
	}
	if got := StatusOf(code); got != 503 {
		t.Fatalf("StatusOf: got %d, want 503", got)
	}
	if !errors.Is(SentinelOf(code), store.ErrNotOwned) {
		t.Fatalf("SentinelOf(%q) = %v", code, SentinelOf(code))
	}
}
