package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrame exercises the framing layer's two contracts at once. Round trip:
// any payload under the cap must survive WriteFrame → ReadFrame byte-exact.
// Truncation-vs-EOF discipline: a stream cut at any byte offset must be
// classified as clean io.EOF only when it ends exactly on a frame boundary
// with zero header bytes consumed — every other cut is io.ErrUnexpectedEOF.
// The raw-bytes leg feeds arbitrary input (including hostile length
// prefixes) straight into ReadFrame, which must fail typed, never panic and
// never allocate past MaxFrame.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte("hello"), uint32(3))
	f.Add([]byte{0, 0}, uint32(1))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint32(4))
	f.Fuzz(func(t *testing.T, payload []byte, cut uint32) {
		if len(payload) > MaxFrame {
			payload = payload[:MaxFrame]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(payload), err)
		}
		framed := buf.Bytes()

		// Full stream: the payload round-trips byte-exact and the stream
		// then ends with a clean EOF.
		r := bytes.NewReader(framed)
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame after write: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(payload), len(got))
		}
		if _, err := ReadFrame(r); err != io.EOF {
			t.Fatalf("stream end: got %v, want io.EOF", err)
		}

		// Truncated stream: cut the frame at an arbitrary offset.
		n := int(cut % uint32(len(framed)+1))
		_, err = ReadFrame(bytes.NewReader(framed[:n]))
		switch {
		case n == 0:
			if err != io.EOF {
				t.Fatalf("empty stream: got %v, want io.EOF", err)
			}
		case n < len(framed):
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d/%d: got %v, want io.ErrUnexpectedEOF", n, len(framed), err)
			}
		default:
			if err != nil {
				t.Fatalf("uncut stream: %v", err)
			}
		}

		// Hostile stream: the raw fuzz input as wire bytes. Any typed
		// outcome is fine; panics or unbounded allocation are not.
		raw, err := ReadFrame(bytes.NewReader(payload))
		switch {
		case err == nil:
			if len(raw) > MaxFrame {
				t.Fatalf("ReadFrame returned %d bytes, above the cap", len(raw))
			}
		case err == io.EOF, err == io.ErrUnexpectedEOF, errors.Is(err, ErrFrameTooLarge):
		default:
			t.Fatalf("ReadFrame(raw): unexpected error type %v", err)
		}
	})
}
