package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestShipBatchRoundTrip checks the ship frame codec: a batch with commands
// and a plan record survives Write → Read with every field intact.
func TestShipBatchRoundTrip(t *testing.T) {
	b := &ShipBatch{
		Epoch: 3, Baseline: 1, Seq: 7,
		From: ShipCursor{Seg: 2, Rec: 10, Off: 512},
		Next: ShipCursor{Seg: 3, Rec: 1, Off: 64},
		Records: []ShipRecord{
			{Bucket: 5, LSN: 12, Txn: "put", Key: "k", Args: json.RawMessage(`"v"`)},
			{Bucket: 5, LSN: 13, Txn: "del", Key: "k"},
			{PlanSeq: 2, Plan: []int32{0, 0, 1, 1}, Active: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteShipBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShipBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Baseline != 1 || got.Seq != 7 || got.From != b.From || got.Next != b.Next {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Records) != 3 {
		t.Fatalf("records: %+v", got.Records)
	}
	if r := got.Records[0]; r.Txn != "put" || r.LSN != 12 || string(r.Args) != `"v"` {
		t.Fatalf("command record: %+v", r)
	}
	if r := got.Records[2]; !r.IsPlan() || r.PlanSeq != 2 || r.Active != 2 || len(r.Plan) != 4 {
		t.Fatalf("plan record: %+v", r)
	}
}

// TestReadShipBatchRejects pins the validation surface: records must be
// exactly a command or exactly a plan change, cursors non-negative, and the
// record count bounded.
func TestReadShipBatchRejects(t *testing.T) {
	cases := []struct {
		name string
		b    ShipBatch
		want string
	}{
		{"empty record", ShipBatch{Records: []ShipRecord{{}}}, "neither command nor plan"},
		{"mixed record", ShipBatch{Records: []ShipRecord{{Txn: "put", LSN: 1, PlanSeq: 2}}}, "mixes plan and command"},
		{"zero lsn", ShipBatch{Records: []ShipRecord{{Txn: "put"}}}, "lsn 0"},
		{"negative bucket", ShipBatch{Records: []ShipRecord{{Txn: "put", LSN: 1, Bucket: -1}}}, "bucket -1"},
		{"negative cursor", ShipBatch{From: ShipCursor{Seg: -1}}, "from-cursor"},
		{"negative active", ShipBatch{Records: []ShipRecord{{PlanSeq: 1, Active: -2}}}, "negative active"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := json.Marshal(&tc.b)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, payload); err != nil {
				t.Fatal(err)
			}
			_, err = ReadShipBatch(&buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}

	// Over-long batch: MaxShipRecords+1 valid commands.
	long := ShipBatch{}
	for i := 0; i < MaxShipRecords+1; i++ {
		long.Records = append(long.Records, ShipRecord{Bucket: 0, LSN: uint64(i + 1), Txn: "put", Key: "k"})
	}
	payload, _ := json.Marshal(&long)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShipBatch(&buf); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized batch: %v", err)
	}
}

// TestFencedStatus pins the HTTP mapping for the fencing code: 409, with a
// client-side sentinel.
func TestFencedStatus(t *testing.T) {
	if got := StatusOf(CodeFenced); got != 409 {
		t.Fatalf("StatusOf(CodeFenced) = %d, want 409", got)
	}
	if SentinelOf(CodeFenced) != ErrFenced {
		t.Fatal("SentinelOf(CodeFenced) != ErrFenced")
	}
}
