package wire

import (
	"encoding/json"
	"fmt"
	"io"

	"pstore/internal/store"
)

// This file is the node-to-node vocabulary: the message shapes a migration
// coordinator exchanges with node processes. Chunk payloads reuse the
// length-prefixed framing of the batch path — a chunk stream is one ChunkMeta
// frame followed by exactly Meta.Buckets BucketFrame frames — so the 1MiB
// frame cap and the truncation-vs-EOF discipline apply unchanged.

// Node endpoint paths served by a `pstore serve -node` process.
const (
	// PathNodeMove executes a same-node MoveBuckets (both partitions hosted
	// by the receiving node). Body: NodeMove JSON; reply: NodeRows.
	PathNodeMove = "/v1/node/move"
	// PathNodeExtract extracts buckets at the source node and flips its
	// local ownership. Body: NodeMove JSON; reply: a chunk stream.
	PathNodeExtract = "/v1/node/extract"
	// PathNodeInstall installs a chunk at the destination node and flips its
	// local ownership. Body: one NodeMove frame, then a chunk stream; reply:
	// NodeRows.
	PathNodeInstall = "/v1/node/install"
	// PathNodeFlip applies an ownership reassignment with no data movement —
	// the coordinator's broadcast to bystander nodes. Body: NodeFlip.
	PathNodeFlip = "/v1/node/flip"
	// PathNodeCrash crashes a hosted machine (NodeMachine); PathNodeRestore
	// rebuilds it from the node-local checkpoint + command log and replies
	// with NodeRestoreResult.
	PathNodeCrash   = "/v1/node/crash"
	PathNodeRestore = "/v1/node/restore"
	// PathNodeCheckpoint checkpoints every live hosted partition; reply:
	// NodeRows with the number of bucket images installed.
	PathNodeCheckpoint = "/v1/node/checkpoint"
	// PathNodeSnapshot streams a fuzzy-checkpoint image of one partition
	// (?part=N) as a chunk stream whose frames carry LSNs.
	PathNodeSnapshot = "/v1/node/snapshot"
	// PathNodeStatus reports the node's identity, hosted machines, plan and
	// counters (NodeStatus) — the coordinator's bootstrap and poll surface.
	PathNodeStatus = "/v1/node/status"
	// PathNodeMachines sets the active machine count (NodeActive).
	PathNodeMachines = "/v1/node/machines"
	// PathNodeAccesses reports the node's per-bucket access counts
	// (NodeAccessesReq -> NodeAccesses); reset=true also clears them, the
	// fetch-and-reset a coordinator-side rebalance pass needs.
	PathNodeAccesses = "/v1/node/accesses"
)

// ContentTypeChunk marks a body carrying a length-prefixed chunk stream.
const ContentTypeChunk = "application/x-pstore-chunk"

// NodeMove describes one chunk-level bucket move between two partitions;
// it parameterizes move, extract and install operations. Durations travel
// as nanoseconds so the JSON is locale- and unit-unambiguous.
type NodeMove struct {
	Buckets    []int `json:"buckets"`
	From       int   `json:"from"`
	To         int   `json:"to"`
	PerRowNs   int64 `json:"per_row_ns,omitempty"`
	OverheadNs int64 `json:"overhead_ns,omitempty"`
	Rollback   bool  `json:"rollback,omitempty"`
}

// NodeRows is the generic row-count reply.
type NodeRows struct {
	Rows int `json:"rows"`
}

// NodeFlip reassigns buckets to a new owning partition without moving data.
type NodeFlip struct {
	Buckets []int `json:"buckets"`
	Owner   int   `json:"owner"`
}

// NodeMachine names a machine for crash/restore operations.
type NodeMachine struct {
	Machine int `json:"machine"`
}

// NodeRestoreResult reports what a restore rebuilt.
type NodeRestoreResult struct {
	Machine    int   `json:"machine"`
	Partitions int   `json:"partitions"`
	Snapshots  int   `json:"snapshots"`
	Replayed   int   `json:"replayed"`
	DowntimeMs int64 `json:"downtime_ms"`
}

// NodeActive sets the cluster's active machine count on a node.
type NodeActive struct {
	Active int `json:"active"`
}

// NodeAccessesReq asks for per-bucket access counts, optionally resetting
// them as they are read.
type NodeAccessesReq struct {
	Reset bool `json:"reset"`
}

// NodeAccesses carries one node's per-bucket access counts (length =
// cluster bucket count; buckets hosted elsewhere read zero).
type NodeAccesses struct {
	Accesses []int64 `json:"accesses"`
}

// NodeStatus is a node's self-description. The configuration fields let a
// coordinator reconstruct the cluster geometry without out-of-band flags,
// and Plan/DownMachines/TotalRows feed its authoritative mirrors.
type NodeStatus struct {
	Node                 int            `json:"node"`
	Nodes                int            `json:"nodes"`
	MaxMachines          int            `json:"max_machines"`
	PartitionsPerMachine int            `json:"partitions_per_machine"`
	Buckets              int            `json:"buckets"`
	InitialMachines      int            `json:"initial_machines"`
	Hosted               []int          `json:"hosted"`
	Active               int            `json:"active"`
	Plan                 []int32        `json:"plan"`
	DownMachines         []int          `json:"down_machines"`
	TotalRows            int            `json:"total_rows"`
	Counters             store.Counters `json:"counters"`
	MaxSojournNs         int64          `json:"max_sojourn_ns"`
	// Epoch and Role mirror the replication plane (see ReplStatus);
	// WALError surfaces the durable log's latched fail-stop error, so a
	// coordinator treats a node whose disk died as unhealthy even though
	// its engine still answers from memory.
	Epoch    uint64 `json:"epoch,omitempty"`
	Role     string `json:"role,omitempty"`
	WALError string `json:"wal_error,omitempty"`
}

// ChunkMeta heads a chunk stream: the total row count and the number of
// BucketFrame frames that follow.
type ChunkMeta struct {
	Rows    int `json:"rows"`
	Buckets int `json:"buckets"`
}

// BucketFrame is one bucket's contents on the wire: table -> key -> row.
// Rows travel as raw JSON; the receiving node decodes them back into the
// workload's concrete row types via its registered row codec, so type
// identity survives the process boundary. LSN is set only on snapshot
// streams (the bucket's command-log head at capture time).
type BucketFrame struct {
	Bucket int                                   `json:"bucket"`
	Rows   int                                   `json:"rows"`
	LSN    uint64                                `json:"lsn,omitempty"`
	Tables map[string]map[string]json.RawMessage `json:"tables"`
}

// RowDecoder rebuilds a workload row from its JSON form. The table name
// selects the concrete type, exactly as a txn-args decoder selects by
// transaction name.
type RowDecoder func(table string, raw json.RawMessage) (any, error)

// WriteChunkStream frames a chunk onto w: one ChunkMeta frame, then one
// frame per bucket.
func WriteChunkStream(w io.Writer, meta ChunkMeta, frames []BucketFrame) error {
	if meta.Buckets != len(frames) {
		return fmt.Errorf("wire: chunk meta declares %d buckets, have %d frames", meta.Buckets, len(frames))
	}
	b, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := WriteFrame(w, b); err != nil {
		return err
	}
	for i := range frames {
		b, err := json.Marshal(&frames[i])
		if err != nil {
			return err
		}
		if err := WriteFrame(w, b); err != nil {
			return err
		}
	}
	return nil
}

// ReadChunkStream reads a chunk stream written by WriteChunkStream,
// requiring exactly the declared number of bucket frames: a stream cut
// short mid-chunk is a transport error, never silently partial data.
func ReadChunkStream(r io.Reader) (ChunkMeta, []BucketFrame, error) {
	var meta ChunkMeta
	hdr, err := ReadFrame(r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return meta, nil, fmt.Errorf("wire: chunk stream header: %w", err)
	}
	if err := json.Unmarshal(hdr, &meta); err != nil {
		return meta, nil, fmt.Errorf("wire: chunk stream header: %w", err)
	}
	if meta.Buckets < 0 || meta.Buckets > MaxFrame {
		return meta, nil, fmt.Errorf("wire: chunk stream declares %d buckets", meta.Buckets)
	}
	frames := make([]BucketFrame, 0, meta.Buckets)
	for i := 0; i < meta.Buckets; i++ {
		body, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return meta, nil, fmt.Errorf("wire: chunk stream frame %d/%d: %w", i, meta.Buckets, err)
		}
		var f BucketFrame
		if err := json.Unmarshal(body, &f); err != nil {
			return meta, nil, fmt.Errorf("wire: chunk stream frame %d: %w", i, err)
		}
		frames = append(frames, f)
	}
	return meta, frames, nil
}

// ChunkFromBucketData serializes a migrating chunk. Frames and rows are
// emitted in deterministic order (sorted buckets, tables, keys), so the
// same chunk always produces the same bytes.
func ChunkFromBucketData(d store.BucketData) (ChunkMeta, []BucketFrame, error) {
	var (
		frames  []BucketFrame
		current *BucketFrame
		encErr  error
	)
	d.ForEachRow(func(bucket int, table, key string, row any) {
		if encErr != nil {
			return
		}
		if current == nil || current.Bucket != bucket {
			frames = append(frames, BucketFrame{Bucket: bucket, Tables: make(map[string]map[string]json.RawMessage)})
			current = &frames[len(frames)-1]
		}
		raw, err := json.Marshal(row)
		if err != nil {
			encErr = fmt.Errorf("wire: encode row %s/%s of bucket %d: %w", table, key, bucket, err)
			return
		}
		t := current.Tables[table]
		if t == nil {
			t = make(map[string]json.RawMessage)
			current.Tables[table] = t
		}
		t[key] = raw
		current.Rows++
	})
	if encErr != nil {
		return ChunkMeta{}, nil, encErr
	}
	meta := ChunkMeta{Buckets: len(frames)}
	for i := range frames {
		meta.Rows += frames[i].Rows
	}
	return meta, frames, nil
}

// BucketDataFromChunk rebuilds a BucketData bundle from its wire form,
// decoding each row through the node's row codec. A nil decoder keeps rows
// as json.RawMessage — sufficient for row-count accounting, not for
// executing transactions against them.
func BucketDataFromChunk(frames []BucketFrame, decode RowDecoder) (store.BucketData, error) {
	d := store.NewBucketData()
	for _, f := range frames {
		for table, rows := range f.Tables {
			for key, raw := range rows {
				if decode == nil {
					d.AddRow(f.Bucket, table, key, raw)
					continue
				}
				row, err := decode(table, raw)
				if err != nil {
					return store.BucketData{}, fmt.Errorf("wire: decode row %s/%s of bucket %d: %w", table, key, f.Bucket, err)
				}
				d.AddRow(f.Bucket, table, key, row)
			}
		}
	}
	return d, nil
}

// FrameFromSnapshot serializes one bucket's fuzzy-checkpoint image.
func FrameFromSnapshot(s store.BucketSnapshot) (BucketFrame, error) {
	f := BucketFrame{Bucket: s.Bucket, Rows: s.Rows, LSN: s.LSN, Tables: make(map[string]map[string]json.RawMessage, len(s.Tables))}
	for table, rows := range s.Tables {
		t := make(map[string]json.RawMessage, len(rows))
		for key, row := range rows {
			raw, err := json.Marshal(row)
			if err != nil {
				return BucketFrame{}, fmt.Errorf("wire: encode row %s/%s of bucket %d: %w", table, key, s.Bucket, err)
			}
			t[key] = raw
		}
		f.Tables[table] = t
	}
	return f, nil
}

// SnapshotFromFrame rebuilds a bucket snapshot from its wire form.
func SnapshotFromFrame(f BucketFrame, decode RowDecoder) (store.BucketSnapshot, error) {
	s := store.BucketSnapshot{Bucket: f.Bucket, Rows: f.Rows, LSN: f.LSN, Tables: make(map[string]map[string]any, len(f.Tables))}
	for table, rows := range f.Tables {
		t := make(map[string]any, len(rows))
		for key, raw := range rows {
			if decode == nil {
				t[key] = raw
				continue
			}
			row, err := decode(table, raw)
			if err != nil {
				return store.BucketSnapshot{}, fmt.Errorf("wire: decode row %s/%s of bucket %d: %w", table, key, f.Bucket, err)
			}
			t[key] = row
		}
		s.Tables[table] = t
	}
	return s, nil
}
