package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzShipFrame feeds arbitrary bytes to the ship-batch decoder — both raw
// (hostile framing) and framed (hostile JSON payloads). The contract is the
// same as the batch path: ReadShipBatch never panics, and anything it does
// accept re-encodes and decodes to the same batch (the validator admits only
// well-formed shapes).
func FuzzShipFrame(f *testing.F) {
	seed := func(b *ShipBatch) []byte {
		payload, _ := json.Marshal(b)
		var buf bytes.Buffer
		_ = WriteFrame(&buf, payload)
		return buf.Bytes()
	}
	f.Add(seed(&ShipBatch{Epoch: 1, Seq: 1, Records: []ShipRecord{
		{Bucket: 3, LSN: 7, Txn: "put", Key: "k", Args: json.RawMessage(`42`)},
	}}))
	f.Add(seed(&ShipBatch{Records: []ShipRecord{
		{PlanSeq: 2, Plan: []int32{0, 1}, Active: 2},
	}}))
	f.Add(seed(&ShipBatch{From: ShipCursor{Seg: 1, Rec: 2, Off: 3}, Next: ShipCursor{Seg: 1, Rec: 5, Off: 9}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadShipBatch(bytes.NewReader(data))
		if err != nil {
			if b != nil {
				t.Fatal("error with non-nil batch")
			}
			return
		}
		// Accepted input must survive a round trip: what the validator let
		// through is canonical enough to re-ship verbatim.
		var buf bytes.Buffer
		if err := WriteShipBatch(&buf, b); err != nil {
			t.Fatalf("re-encoding accepted batch: %v", err)
		}
		b2, err := ReadShipBatch(&buf)
		if err != nil {
			t.Fatalf("re-decoding accepted batch: %v", err)
		}
		if b2.Epoch != b.Epoch || b2.Seq != b.Seq || b2.From != b.From || b2.Next != b.Next || len(b2.Records) != len(b.Records) {
			t.Fatalf("round trip drifted: %+v vs %+v", b, b2)
		}
		if _, err := ReadShipBatch(bytes.NewReader(nil)); err != io.EOF {
			t.Fatalf("empty stream: %v, want io.EOF", err)
		}
	})
}
