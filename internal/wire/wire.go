// Package wire defines the protocol spoken between the P-Store network
// front end (internal/server) and its Go client library (internal/client):
// the JSON request/response shapes, the length-prefixed binary framing of
// the batch endpoint, the HTTP headers that carry deadlines and retry
// hints, and the stable error codes that map the engine's typed errors
// (store.ErrOverload, store.ErrDeadlineExceeded, store.ErrPartitionDown,
// ...) onto the wire and back. Both sides import only this package, so the
// protocol cannot drift between them.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pstore/internal/store"
)

// Protocol endpoints. The txn endpoint executes one transaction per HTTP
// request; the batch endpoint carries many length-prefixed frames per
// request body and pipelines their execution.
const (
	PathTxn      = "/v1/txn"
	PathBatch    = "/v1/batch"
	PathTxns     = "/v1/txns"
	PathInfo     = "/v1/info"
	PathHealth   = "/v1/healthz"
	PathShutdown = "/v1/shutdown"
)

// HTTP headers. Deadlines travel request-to-server as milliseconds; retry
// hints travel server-to-client the same way (Retry-After only has
// one-second resolution, far too coarse for millisecond queue estimates).
const (
	HeaderDeadlineMs   = "X-Pstore-Deadline-Ms"
	HeaderRetryAfterMs = "X-Pstore-Retry-After-Ms"
	// HeaderForwarded counts node-to-node forwarding hops on a transaction
	// request, capping forwarding loops while plans are mid-flip.
	HeaderForwarded = "X-Pstore-Forwarded"
)

// ContentTypeBatch marks a length-prefixed binary batch body.
const ContentTypeBatch = "application/x-pstore-batch"

// Request is one transaction submission.
type Request struct {
	// Txn is the registered transaction name.
	Txn string `json:"txn"`
	// Key is the routing (partitioning) key.
	Key string `json:"key"`
	// Args carries the procedure's parameters, encoded per-transaction
	// (the server decodes them through its configured codec). Absent or
	// null means no arguments.
	Args json.RawMessage `json:"args,omitempty"`
}

// Response is the outcome of one Request. Exactly one of Value or Code is
// meaningful: a successful execution carries the procedure result in Value;
// a failure carries a stable Code, a human-readable Error, and, when the
// failure is retryable backpressure, a RetryAfterMs hint.
type Response struct {
	// Status is the HTTP status the response would carry standalone; the
	// batch endpoint embeds it here since frames share one HTTP status.
	Status int `json:"status"`
	// Value is the JSON-encoded procedure result (null for procedures
	// returning nothing).
	Value json.RawMessage `json:"value,omitempty"`
	// Code is the stable machine-readable error code ("" on success).
	Code string `json:"code,omitempty"`
	// Error is the human-readable error message ("" on success).
	Error string `json:"error,omitempty"`
	// RetryAfterMs is the server's backoff hint for retryable refusals
	// (overload, partition down): how long the client should wait before
	// resubmitting. Zero means no hint.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Error codes. CodeOf maps engine errors onto them; SentinelOf maps them
// back to the typed store errors so a remote client's errors.Is checks
// behave exactly like an in-process caller's.
const (
	// CodeOverload: refused by admission control or shed (HTTP 429).
	CodeOverload = "overload"
	// CodeDeadline: expired in a partition queue, or the request's wire
	// deadline elapsed before completion (HTTP 504).
	CodeDeadline = "deadline_exceeded"
	// CodePartitionDown: the owning partition's machine is crashed and not
	// yet recovered (HTTP 503).
	CodePartitionDown = "partition_down"
	// CodeUnknownTxn: the transaction name is not registered (HTTP 400).
	CodeUnknownTxn = "unknown_txn"
	// CodeStopped: the engine is shut down (HTTP 503).
	CodeStopped = "stopped"
	// CodeBadRequest: the request body or arguments did not parse (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeTxn: the procedure executed and returned an application error —
	// a business outcome, not a transport failure (HTTP 422).
	CodeTxn = "txn_error"
	// CodeNotOwned: the partition targeted is not hosted on this node —
	// transient during an ownership flip, so HTTP 503 with a retry hint; a
	// node front end with peers forwards instead of refusing.
	CodeNotOwned = "not_owned"
	// CodeInternal: any other engine error (HTTP 500).
	CodeInternal = "internal"
)

// CodeOf returns the wire code for an engine error, or "" for nil.
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, store.ErrOverload):
		return CodeOverload
	case errors.Is(err, store.ErrDeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, store.ErrPartitionDown):
		return CodePartitionDown
	case errors.Is(err, store.ErrUnknownTxn):
		return CodeUnknownTxn
	case errors.Is(err, store.ErrStopped):
		return CodeStopped
	case errors.Is(err, store.ErrNotOwned):
		return CodeNotOwned
	case errors.Is(err, ErrFenced):
		return CodeFenced
	default:
		return CodeTxn
	}
}

// StatusOf returns the HTTP status a wire code travels under.
func StatusOf(code string) int {
	switch code {
	case "":
		return 200
	case CodeOverload:
		return 429
	case CodeDeadline:
		return 504
	case CodePartitionDown, CodeStopped, CodeNotOwned:
		return 503
	case CodeUnknownTxn, CodeBadRequest:
		return 400
	case CodeTxn:
		return 422
	case CodeFenced:
		return 409
	default:
		return 500
	}
}

// SentinelOf returns the typed store error a wire code stands for, or nil
// for codes with no engine-level sentinel (txn_error, bad_request,
// internal). Client-side errors wrap the sentinel so errors.Is against the
// store errors works identically in-process and over the wire.
func SentinelOf(code string) error {
	switch code {
	case CodeOverload:
		return store.ErrOverload
	case CodeDeadline:
		return store.ErrDeadlineExceeded
	case CodePartitionDown:
		return store.ErrPartitionDown
	case CodeUnknownTxn:
		return store.ErrUnknownTxn
	case CodeStopped:
		return store.ErrStopped
	case CodeNotOwned:
		return store.ErrNotOwned
	case CodeFenced:
		return ErrFenced
	default:
		return nil
	}
}

// MaxFrame bounds one batch frame's payload. Generous for any transaction
// this engine serves, small enough that a corrupt length prefix cannot ask
// the reader to allocate gigabytes.
const MaxFrame = 1 << 20

// ErrFrameTooLarge is returned for frames whose length prefix exceeds
// MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrame)

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian payload
// length followed by the payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. A clean EOF before any header
// byte returns io.EOF; a truncated header or payload returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return payload, nil
}

// EncodeFrame marshals v and writes it as one frame.
func EncodeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// DecodeFrame reads one frame and unmarshals it into v.
func DecodeFrame(r io.Reader, v any) error {
	payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}
