package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file is the replication vocabulary: the messages a primary node and
// its warm follower exchange to ship the primary's WAL, and the control
// surface a coordinator uses to promote the follower after a failure. Ship
// batches travel as one length-prefixed frame (the same framing and 1 MiB
// cap as the batch path), so the decoder inherits the truncation-vs-EOF
// discipline and is fuzzable in isolation (FuzzShipFrame).

// Replication endpoint paths served by a `pstore serve -node` process.
const (
	// PathReplSync bootstraps a follower: the primary replies with one
	// ReplSyncMeta frame followed by Meta.Buckets BucketFrame frames — a
	// fuzzy snapshot of every hosted bucket — and starts shipping from
	// Meta.Cursor. Body: ReplSync JSON.
	PathReplSync = "/v1/repl/sync"
	// PathReplShip applies one ship batch on the follower. Body: one
	// ShipBatch frame; reply: ShipAck JSON.
	PathReplShip = "/v1/repl/ship"
	// PathReplPromote turns a follower into a primary under a new, higher
	// epoch. Body: ReplPromote JSON; reply: ReplStatus.
	PathReplPromote = "/v1/repl/promote"
	// PathReplStatus reports a node's replication role, epoch and cursors.
	PathReplStatus = "/v1/repl/status"
	// PathNodePeer repoints one peer slot's base URL on a node — the
	// coordinator's rewiring step after promoting a follower, so forwarded
	// transactions reach the new primary. Body: NodePeer JSON.
	PathNodePeer = "/v1/node/peer"
	// PathReplDemote tells a fenced ex-primary to stand down and rejoin the
	// given primary as a follower — the self-healing entry point. Body:
	// ReplDemote JSON; reply: ReplStatus once the demotion is underway.
	PathReplDemote = "/v1/repl/demote"
)

// CodeFenced: the request carried a stale replication epoch (a zombie
// primary shipping to a promoted follower) or targeted a role the node no
// longer has. HTTP 409; not retryable — the sender must stand down.
const CodeFenced = "fenced"

// ErrFenced is the client-side sentinel for CodeFenced.
var ErrFenced = errors.New("wire: fenced: stale replication epoch")

// MaxShipRecords bounds one ship batch. Records are procedure inputs (a few
// hundred bytes), so this keeps a batch frame comfortably under MaxFrame.
const MaxShipRecords = 512

// ShipCursor addresses a point in the primary's WAL: segment sequence,
// records consumed within the segment, and the byte offset after them (lag
// accounting only — Seg/Rec are the authoritative position).
type ShipCursor struct {
	Seg int   `json:"seg"`
	Rec int   `json:"rec"`
	Off int64 `json:"off"`
}

// ShipRecord is one replicated WAL record: a command (Txn != "") or a plan
// change (PlanSeq > 0). Command args travel as raw JSON and are decoded
// follower-side by the workload's registered args codec, exactly like a
// client Request.
type ShipRecord struct {
	Bucket int             `json:"bucket,omitempty"`
	LSN    uint64          `json:"lsn,omitempty"`
	Txn    string          `json:"txn,omitempty"`
	Key    string          `json:"key,omitempty"`
	Args   json.RawMessage `json:"args,omitempty"`

	PlanSeq uint64  `json:"plan_seq,omitempty"`
	Plan    []int32 `json:"plan,omitempty"`
	Active  int     `json:"active,omitempty"`
}

// IsPlan reports whether the record is a plan change.
func (r *ShipRecord) IsPlan() bool { return r.PlanSeq > 0 }

// ShipBatch is one shipped slice of the primary's WAL: the records between
// the From and Next cursors, stamped with the primary's fencing epoch and
// baseline. Seq is the batch ordinal since sync — the fault injector's
// deterministic key.
type ShipBatch struct {
	Epoch    uint64       `json:"epoch"`
	Baseline uint64       `json:"baseline"`
	Seq      uint64       `json:"seq"`
	From     ShipCursor   `json:"from"`
	Next     ShipCursor   `json:"next"`
	Records  []ShipRecord `json:"records,omitempty"`
}

// ShipAck is the follower's reply to a batch. Applied is its authoritative
// cursor: on success it equals the batch's Next; on Gap it is where the
// shipper must rewind to. Resync means the follower's baseline no longer
// matches (the primary installed data outside the WAL) and shipping cannot
// continue without a fresh sync.
type ShipAck struct {
	Epoch   uint64     `json:"epoch"`
	Applied ShipCursor `json:"applied"`
	Gap     bool       `json:"gap,omitempty"`
	Resync  bool       `json:"resync,omitempty"`
}

// ReplSync is a follower's bootstrap request. FollowerURL is where the
// primary should ship batches once the snapshot is streamed. A non-nil
// Resume skips the snapshot entirely: the follower's WAL already agrees
// with the primary's up to that cursor (a truncated zombie rejoining warm),
// so the primary just validates the cursor is still retained, pins it, and
// starts shipping from there — replying with a ReplSyncMeta whose Buckets
// is 0.
type ReplSync struct {
	FollowerURL string      `json:"follower_url"`
	Resume      *ShipCursor `json:"resume,omitempty"`
}

// ReplDemote orders a fenced ex-primary to demote itself and rejoin
// PrimaryURL as a follower, shedding whatever WAL suffix the new primary
// never saw.
type ReplDemote struct {
	PrimaryURL string `json:"primary_url"`
}

// ReplRejoin is the rejoin contract a node captures at the moment it is
// promoted: Cursor is the durable end of the *new* primary's own WAL at
// promotion (pinned against compaction) — where shipping to a warm-rejoined
// predecessor resumes — and PlanSeq/Baseline are the state the predecessor
// must still match, after truncating to the new primary's Applied cursor,
// for a warm rejoin to be sound.
type ReplRejoin struct {
	Cursor   ShipCursor `json:"cursor"`
	PlanSeq  uint64     `json:"plan_seq"`
	Baseline uint64     `json:"baseline"`
}

// ReplSyncMeta heads a sync response stream: the primary's epoch, baseline
// and plan, the cursor shipping starts from, and the number of BucketFrame
// frames that follow. Snapshot/cursor overlap is resolved by the follower's
// per-bucket LSN dedup: the cursor is taken before the snapshot, so any
// record the snapshot already covers arrives with LSN <= the bucket's image
// LSN and is skipped.
type ReplSyncMeta struct {
	Epoch    uint64     `json:"epoch"`
	Baseline uint64     `json:"baseline"`
	Cursor   ShipCursor `json:"cursor"`
	PlanSeq  uint64     `json:"plan_seq"`
	Plan     []int32    `json:"plan,omitempty"`
	Active   int        `json:"active"`
	Buckets  int        `json:"buckets"`
}

// ReplPromote asks a follower to become primary under the given epoch,
// which must exceed every epoch the cluster has seen.
type ReplPromote struct {
	Epoch uint64 `json:"epoch"`
}

// ReplStatus is a node's replication self-description.
type ReplStatus struct {
	// Role is "primary" or "replica".
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// Baseline counts out-of-WAL data installs (migrated-in chunks); a
	// follower synced under an older baseline must resync.
	Baseline uint64 `json:"baseline"`
	// Durable is the durable end of the node's own WAL.
	Durable ShipCursor `json:"durable"`
	// Applied is a replica's applied-ship cursor; comparing it against the
	// primary's Durable cursor measures replication lag.
	Applied ShipCursor `json:"applied"`
	// PlanSeq is a replica's last applied plan sequence.
	PlanSeq uint64 `json:"plan_seq,omitempty"`
	// Fenced reports a zombie: the node believes it is (or was) primary but
	// has seen proof of a higher epoch. A fenced node refuses transactions
	// and is waiting to be demoted into the new primary's followership.
	Fenced bool `json:"fenced,omitempty"`
	// Rejoin, on a promoted primary, is the standing offer to its deposed
	// predecessor: truncate to Rejoin.Cursor and resume shipping from there.
	Rejoin *ReplRejoin `json:"rejoin,omitempty"`
}

// NodePeer repoints the base URL a node uses to forward to peer `Node`.
type NodePeer struct {
	Node int    `json:"node"`
	URL  string `json:"url"`
}

// WriteShipBatch writes a batch as one frame.
func WriteShipBatch(w io.Writer, b *ShipBatch) error {
	payload, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("wire: encoding ship batch: %w", err)
	}
	return WriteFrame(w, payload)
}

// ReadShipBatch reads and validates one ship-batch frame. It never panics:
// garbage, truncation, or out-of-bounds shapes return an error (the
// FuzzShipFrame contract). A clean EOF before any byte returns io.EOF.
func ReadShipBatch(r io.Reader) (*ShipBatch, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var b ShipBatch
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("wire: decoding ship batch: %w", err)
	}
	if len(b.Records) > MaxShipRecords {
		return nil, fmt.Errorf("wire: ship batch carries %d records, max %d", len(b.Records), MaxShipRecords)
	}
	if err := validCursor(b.From); err != nil {
		return nil, fmt.Errorf("wire: ship batch from-cursor: %w", err)
	}
	if err := validCursor(b.Next); err != nil {
		return nil, fmt.Errorf("wire: ship batch next-cursor: %w", err)
	}
	for i := range b.Records {
		rec := &b.Records[i]
		switch {
		case rec.IsPlan():
			if rec.Txn != "" || rec.LSN != 0 {
				return nil, fmt.Errorf("wire: ship record %d mixes plan and command fields", i)
			}
			if rec.Active < 0 {
				return nil, fmt.Errorf("wire: ship record %d has negative active count", i)
			}
		case rec.Txn != "":
			if rec.Bucket < 0 || rec.LSN == 0 {
				return nil, fmt.Errorf("wire: ship record %d has bucket %d lsn %d", i, rec.Bucket, rec.LSN)
			}
		default:
			return nil, fmt.Errorf("wire: ship record %d is neither command nor plan", i)
		}
	}
	return &b, nil
}

func validCursor(c ShipCursor) error {
	if c.Seg < 0 || c.Rec < 0 || c.Off < 0 {
		return fmt.Errorf("negative field in cursor %+v", c)
	}
	return nil
}
