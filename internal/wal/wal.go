// Package wal is the engine's durable storage tier: a segmented on-disk
// write-ahead log of command records plus per-bucket checkpoint images.
//
// The log is H-Store-style: records are procedure *inputs* (transaction
// name, key, args), appended after execution and made durable before the
// submitter is acknowledged. Durability is group commit — concurrent
// appenders encode into a shared buffer and one of them (the batch leader)
// writes and fsyncs the whole batch, so a busy log pays one sync per batch,
// not per transaction.
//
// On-disk layout under the data directory:
//
//	MANIFEST.json        store identity, geometry, last checkpointed plan
//	seg-00000001.log     CRC-framed record segments, in sequence order
//	seg-00000002.log
//	img/bucket-000017.img  one checkpoint image per bucket
//
// Open scans every segment, truncates a torn tail (last segment only — a
// bad frame in any earlier segment is real corruption and refuses to open),
// and returns the recovered state: the latest plan and, per bucket, its
// image LSN and command tail. Checkpoint rewrites the manifest and deletes
// segments made fully redundant by the images — the log's truncation story.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultSegmentBytes is the rotation threshold when Config leaves it zero.
const DefaultSegmentBytes = 4 << 20

// Config parameterizes Open.
type Config struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Geometry is the engine shape the log serves; validated against the
	// manifest on reopen.
	Geometry Geometry
	// SegmentBytes rotates the active segment once it grows past this many
	// bytes. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// FS substitutes the filesystem (crash-injection tests). Nil means the
	// real one.
	FS FS
}

// Stats are the log's cumulative I/O counters. Syncs much smaller than
// Appends is the group-commit effect made visible.
type Stats struct {
	// Appends counts durable record appends (commands + plan records).
	Appends int64
	// Syncs counts fsync batches on the record path.
	Syncs int64
	// Rotations counts segment rollovers.
	Rotations int64
	// CompactedSegments counts segments deleted at checkpoints.
	CompactedSegments int64
	// AppendedBytes counts framed record bytes written to segments.
	AppendedBytes int64
	// TornBytes is how many bytes the last Open truncated from a torn tail.
	TornBytes int64
}

// BucketRecovery is one bucket's state as recovered by Open.
type BucketRecovery struct {
	// Base is the LSN covered by the bucket's checkpoint image (0 = none).
	Base uint64
	// HasImage reports whether an image file exists for the bucket.
	HasImage bool
	// Head is the largest LSN known for the bucket.
	Head uint64
	// Tail holds the bucket's records with LSN > Base, in LSN order.
	Tail []Record
}

// Recovered is everything Open learned from the directory.
type Recovered struct {
	// Existing reports whether the directory already held a manifest — the
	// difference between a fresh store and a restart.
	Existing bool
	// Plan is the latest recovered bucket plan (nil if none was ever
	// logged); Active and PlanSeq accompany it.
	Plan    []int32
	Active  int
	PlanSeq uint64
	// Buckets maps bucket id to its recovered state; buckets with no image
	// and no records are absent.
	Buckets map[int]*BucketRecovery
	// TornBytes is how many trailing bytes were discarded as torn.
	TornBytes int64
	// SegmentBytes is the total size of the recovered segments — the
	// on-disk log volume a cold start must scan.
	SegmentBytes int64
}

// segment is one sealed (immutable) segment's compaction bookkeeping.
type segment struct {
	name       string
	seq        int
	size       int64
	recs       int            // record count; ship cursors address (seq, rec)
	maxLSN     map[int]uint64 // bucket -> largest LSN in this segment
	maxPlanSeq uint64
	// ackBase maps a ship cursor into this segment onto the append-sequence
	// space: record k of the segment is append sequence ackBase+k. Segments
	// recovered from a previous life carry -1 — none of their records were
	// appended (or awaited) in this life.
	ackBase int64
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	cfg Config
	fs  FS
	dir string

	mu   sync.Mutex
	cond *sync.Cond
	// enc frames records for the active segment (one gob stream per
	// segment); buf accumulates framed-but-not-yet-durable bytes.
	enc *segEncoder
	buf []byte
	// appendSeq numbers encoded records; syncedSeq is the largest sequence
	// made durable. An appender waits until its record's sequence is synced,
	// electing itself leader if no sync is in flight.
	appendSeq, syncedSeq uint64
	syncing              bool
	err                  error // first fatal I/O error; latched

	active      File
	activeName  string
	activeSeq   int
	activeSize  int64          // durable bytes in the active segment
	activeRecs  int            // records encoded into the active segment
	durableRecs int            // records durable in the active segment
	activeMax   map[int]uint64 // active segment's bucket -> max LSN
	activePlan  uint64         // active segment's max plan seq

	segs  []segment      // sealed segments, oldest first
	bases map[int]uint64 // bucket -> image LSN

	planSeq         uint64
	lastPlan        []int32
	lastActive      int
	manifestPlanSeq uint64

	// epoch is the replication fencing term (persisted in the manifest);
	// shipPin, when non-zero, keeps segments with seq >= shipPin out of
	// compaction so a follower's unacked records stay shippable.
	epoch   uint64
	shipPin int

	// Synchronous commit: when armed, append also waits until the follower's
	// acknowledged cursor covers the record (remoteAckSeq, in append-sequence
	// space). activeAckBase is appendSeq at the moment the active segment
	// opened, so a ship cursor into it maps onto append sequences.
	syncCommit    bool
	remoteAckSeq  uint64
	activeAckBase uint64
	// (discardLo, discardHi] is the append-sequence window whose sync-commit
	// waiters must fail instead of ack: their records were truncated away or
	// their shipper died before the follower confirmed them.
	discardLo, discardHi uint64

	appends   atomic.Int64
	diskBytes atomic.Int64 // durable segment bytes; kept lock-free for stats
	syncs     atomic.Int64
	rotations atomic.Int64
	compacted atomic.Int64
	appBytes  atomic.Int64
	tornBytes int64

	closed bool
}

// Open opens (or creates) a log directory, recovers its contents, and
// leaves the log ready for appends on a fresh segment.
func Open(cfg Config) (*Log, *Recovered, error) {
	if cfg.Dir == "" {
		return nil, nil, errors.New("wal: Config.Dir is required")
	}
	g := cfg.Geometry
	if g.Buckets <= 0 || g.MaxMachines <= 0 || g.PartitionsPerMachine <= 0 {
		return nil, nil, fmt.Errorf("wal: invalid geometry %+v", g)
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	l := &Log{cfg: cfg, fs: cfg.FS, dir: cfg.Dir, bases: make(map[int]uint64)}
	if l.fs == nil {
		l.fs = OSFS{}
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.fs.MkdirAll(l.dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", l.dir, err)
	}
	if err := l.fs.MkdirAll(filepath.Join(l.dir, "img")); err != nil {
		return nil, nil, err
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// recover loads the manifest, image headers, and every segment, rebuilding
// the log's in-memory indexes and the caller's Recovered view.
func (l *Log) recover() (*Recovered, error) {
	rec := &Recovered{Buckets: make(map[int]*BucketRecovery)}

	// Manifest: identity or creation.
	mpath := filepath.Join(l.dir, manifestName)
	if data, err := readAll(l.fs, mpath); err == nil {
		m, err := DecodeManifest(data)
		if err != nil {
			return nil, err
		}
		if m.Geometry != l.cfg.Geometry {
			return nil, fmt.Errorf("wal: %s was created for geometry %+v, engine has %+v",
				l.dir, m.Geometry, l.cfg.Geometry)
		}
		rec.Existing = true
		rec.Plan, rec.Active, rec.PlanSeq = m.Plan, m.Active, m.PlanSeq
		l.planSeq, l.manifestPlanSeq = m.PlanSeq, m.PlanSeq
		l.lastPlan, l.lastActive = m.Plan, m.Active
		l.epoch = m.Epoch
	} else if errors.Is(err, os.ErrNotExist) {
		if err := l.writeManifest(); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("wal: reading manifest: %w", err)
	}

	// Leftover temp files from an interrupted atomic write are garbage.
	for _, sub := range []string{l.dir, filepath.Join(l.dir, "img")} {
		names, err := l.fs.ReadDir(sub)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if strings.HasSuffix(n, ".tmp") {
				if err := l.fs.Remove(filepath.Join(sub, n)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Image headers establish each bucket's base LSN.
	imgNames, err := l.fs.ReadDir(filepath.Join(l.dir, "img"))
	if err != nil {
		return nil, err
	}
	for _, n := range imgNames {
		data, err := readAll(l.fs, filepath.Join(l.dir, "img", n))
		if err != nil {
			return nil, err
		}
		bucket, lsn, _, err := decodeImageHeader(data)
		if err != nil {
			return nil, fmt.Errorf("wal: image %s: %w", n, err)
		}
		if bucket < 0 || bucket >= l.cfg.Geometry.Buckets {
			return nil, fmt.Errorf("wal: image %s names bucket %d out of range", n, bucket)
		}
		l.bases[bucket] = lsn
		rec.Buckets[bucket] = &BucketRecovery{Base: lsn, HasImage: true, Head: lsn}
	}

	// Segments, in sequence order.
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, n := range names {
		var seq int
		if _, err := fmt.Sscanf(n, "seg-%08d.log", &seq); err == nil && segName(seq) == n {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for i, seq := range seqs {
		path := filepath.Join(l.dir, segName(seq))
		data, err := readAll(l.fs, path)
		if err != nil {
			return nil, err
		}
		srs, valid, derr := decodeSegRecords(data)
		if derr != nil {
			if i != len(seqs)-1 {
				// Only the final segment may have a torn tail; damage in the
				// middle of the log is corruption, not a crash artifact.
				return nil, fmt.Errorf("wal: segment %s is corrupt mid-log: %w", path, derr)
			}
			// Truncate the torn tail by rewriting the valid prefix
			// atomically, so every future open sees a clean segment.
			if err := writeFileAtomic(l.fs, path, data[:valid]); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			l.tornBytes = int64(len(data)) - valid
			rec.TornBytes = l.tornBytes
			data = data[:valid]
		}
		seg := segment{name: segName(seq), seq: seq, size: int64(len(data)), recs: len(srs), maxLSN: make(map[int]uint64), ackBase: -1}
		for i := range srs {
			sr := &srs[i]
			switch sr.Kind {
			case recPlan:
				if sr.PlanSeq > seg.maxPlanSeq {
					seg.maxPlanSeq = sr.PlanSeq
				}
				if sr.PlanSeq > l.planSeq {
					l.planSeq = sr.PlanSeq
					l.lastPlan, l.lastActive = sr.Plan, int(sr.Active)
					rec.Plan, rec.Active, rec.PlanSeq = sr.Plan, int(sr.Active), sr.PlanSeq
				}
			case recCommand:
				b := int(sr.Bucket)
				if b < 0 || b >= l.cfg.Geometry.Buckets {
					return nil, fmt.Errorf("wal: segment %s names bucket %d out of range", path, b)
				}
				if sr.LSN > seg.maxLSN[b] {
					seg.maxLSN[b] = sr.LSN
				}
				br := rec.Buckets[b]
				if br == nil {
					br = &BucketRecovery{}
					rec.Buckets[b] = br
				}
				if sr.LSN > br.Head {
					br.Head = sr.LSN
				}
				if sr.LSN > br.Base {
					br.Tail = append(br.Tail, Record{
						Bucket: b, LSN: sr.LSN, Txn: sr.Txn, Key: sr.Key, Args: sr.Args,
					})
				}
			}
		}
		l.segs = append(l.segs, seg)
		rec.SegmentBytes += seg.size
		l.activeSeq = seq
	}
	l.diskBytes.Store(rec.SegmentBytes)
	return rec, nil
}

// openActive starts a fresh segment for appends. Appends never extend an
// old segment: its gob stream ended with the process that wrote it.
func (l *Log) openActive() error {
	l.activeSeq++
	l.activeName = segName(l.activeSeq)
	f, err := l.fs.Create(filepath.Join(l.dir, l.activeName))
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", l.activeName, err)
	}
	l.active = f
	l.activeSize = 0
	l.activeRecs = 0
	l.durableRecs = 0
	l.activeMax = make(map[int]uint64)
	l.activePlan = 0
	l.activeAckBase = l.appendSeq
	l.enc = newSegEncoder()
	return nil
}

func segName(seq int) string { return fmt.Sprintf("seg-%08d.log", seq) }

// Append makes one command record durable and returns once it (and every
// record encoded before it) has been fsynced. Concurrent appenders share
// sync batches: whoever finds no sync in flight writes and syncs everything
// buffered so far, then wakes the rest.
func (l *Log) Append(r Record) error {
	if r.Bucket < 0 || r.Bucket >= l.cfg.Geometry.Buckets {
		return fmt.Errorf("wal: append to bucket %d out of range", r.Bucket)
	}
	return l.append(&segRecord{
		Kind: recCommand, Bucket: int32(r.Bucket), LSN: r.LSN,
		Txn: r.Txn, Key: r.Key, Args: r.Args,
	})
}

// LogPlan makes a bucket-plan change durable: the full plan and active
// machine count, stamped with the next plan sequence number.
func (l *Log) LogPlan(plan []int32, active int) error {
	if len(plan) != l.cfg.Geometry.Buckets {
		return fmt.Errorf("wal: plan covers %d buckets, want %d", len(plan), l.cfg.Geometry.Buckets)
	}
	p := make([]int32, len(plan))
	copy(p, plan)
	return l.append(&segRecord{Kind: recPlan, Plan: p, Active: int32(active)})
}

// append encodes one record into the group-commit buffer and blocks until
// it is durable.
func (l *Log) append(sr *segRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	// Rotate between batches: only when nothing is buffered or in flight,
	// so a segment's gob stream is never split across files.
	if l.activeSize >= l.cfg.SegmentBytes && len(l.buf) == 0 && !l.syncing {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			l.cond.Broadcast()
			return err
		}
	}
	if sr.Kind == recPlan {
		l.planSeq++
		sr.PlanSeq = l.planSeq
		l.lastPlan, l.lastActive = sr.Plan, int(sr.Active)
		if sr.PlanSeq > l.activePlan {
			l.activePlan = sr.PlanSeq
		}
	} else {
		if lsn := sr.LSN; lsn > l.activeMax[int(sr.Bucket)] {
			l.activeMax[int(sr.Bucket)] = lsn
		}
	}
	var err error
	l.buf, err = l.enc.encode(l.buf, sr)
	if err != nil {
		l.err = err
		l.cond.Broadcast()
		return err
	}
	l.appendSeq++
	seq := l.appendSeq
	l.activeRecs++
	l.appends.Add(1)

	for l.syncedSeq < seq && l.err == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		// Become the batch leader: write and sync everything buffered.
		l.syncing = true
		batch := l.buf
		l.buf = nil
		target := l.appendSeq
		targetRecs := l.activeRecs
		file := l.active
		l.mu.Unlock()

		var werr error
		if _, err := file.Write(batch); err != nil {
			werr = fmt.Errorf("wal: writing segment %s: %w", l.activeName, err)
		} else if err := file.Sync(); err != nil {
			werr = fmt.Errorf("wal: syncing segment %s: %w", l.activeName, err)
		}

		l.mu.Lock()
		l.syncing = false
		if werr != nil {
			l.err = werr
		} else {
			l.syncedSeq = target
			l.activeSize += int64(len(batch))
			l.durableRecs = targetRecs
			l.syncs.Add(1)
			l.appBytes.Add(int64(len(batch)))
			l.diskBytes.Add(int64(len(batch)))
		}
		l.cond.Broadcast()
	}
	// Synchronous commit: the record is durable here; with the barrier armed,
	// also wait until the follower's ack covers it. The whole fsync batch
	// ships as (at most) one batch and is released by one ack, so the round
	// trip amortizes exactly like the fsync does. Disarming releases waiters.
	for l.err == nil && !l.closed && l.syncCommit && l.remoteAckSeq < seq {
		if seq > l.discardLo && seq <= l.discardHi {
			return ErrSyncAborted
		}
		l.cond.Wait()
	}
	if l.err == nil && l.syncCommit && l.remoteAckSeq < seq {
		if seq > l.discardLo && seq <= l.discardHi {
			return ErrSyncAborted
		}
		if l.closed {
			return errors.New("wal: log closed before the follower acknowledged the record")
		}
	}
	return l.err
}

// rotateLocked seals the active segment and opens the next one. Caller
// holds l.mu with an empty buffer and no sync in flight, so every byte of
// the active segment is durable.
func (l *Log) rotateLocked() error {
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", l.activeName, err)
	}
	l.segs = append(l.segs, segment{
		name: l.activeName, seq: l.activeSeq, size: l.activeSize, recs: l.durableRecs,
		maxLSN: l.activeMax, maxPlanSeq: l.activePlan, ackBase: int64(l.activeAckBase),
	})
	l.rotations.Add(1)
	return l.openActive()
}

// WriteImage spills one bucket's checkpoint image to disk atomically and
// raises the bucket's base LSN, making the records the image covers
// redundant for compaction.
func (l *Log) WriteImage(img *Image) error {
	if img.Bucket < 0 || img.Bucket >= l.cfg.Geometry.Buckets {
		return fmt.Errorf("wal: image for bucket %d out of range", img.Bucket)
	}
	data, err := encodeImage(img)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(l.fs, imageName(l.dir, img.Bucket), data); err != nil {
		return fmt.Errorf("wal: writing image for bucket %d: %w", img.Bucket, err)
	}
	l.mu.Lock()
	if img.LSN > l.bases[img.Bucket] {
		l.bases[img.Bucket] = img.LSN
	}
	l.mu.Unlock()
	return nil
}

// LoadImage reads one bucket's checkpoint image from disk. ok is false when
// the bucket has none.
func (l *Log) LoadImage(bucket int) (img *Image, ok bool, err error) {
	data, err := readAll(l.fs, imageName(l.dir, bucket))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	img, err = decodeImage(data)
	if err != nil {
		return nil, false, err
	}
	if img.Bucket != bucket {
		return nil, false, fmt.Errorf("wal: image file for bucket %d names bucket %d", bucket, img.Bucket)
	}
	return img, true, nil
}

// LoadTails re-reads the durable log and returns, for each requested
// bucket, its records beyond the bucket's base LSN, in order. This is the
// restore path's authoritative read: it scans the segment files, not any
// in-memory copy. Records buffered but not yet synced are invisible — they
// are not durable, and their submitters have not been acknowledged.
func (l *Log) LoadTails(buckets []int) (map[int][]Record, error) {
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	// Snapshot the durable extent under the lock; reads happen outside it.
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	type ext struct {
		name string
		size int64
	}
	exts := make([]ext, 0, len(l.segs)+1)
	for _, s := range l.segs {
		exts = append(exts, ext{s.name, s.size})
	}
	exts = append(exts, ext{l.activeName, l.activeSize})
	bases := make(map[int]uint64, len(want))
	for b := range want {
		bases[b] = l.bases[b]
	}
	l.mu.Unlock()

	out := make(map[int][]Record)
	for _, e := range exts {
		if e.size == 0 {
			continue
		}
		data, err := readAll(l.fs, filepath.Join(l.dir, e.name))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) > e.size {
			data = data[:e.size] // ignore bytes synced after the snapshot
		}
		srs, _, derr := decodeSegRecords(data)
		if derr != nil && int64(len(data)) == e.size {
			// The durable extent must decode cleanly; a scan error inside it
			// is corruption.
			return nil, fmt.Errorf("wal: segment %s: %w", e.name, derr)
		}
		for i := range srs {
			sr := &srs[i]
			if sr.Kind != recCommand || !want[int(sr.Bucket)] {
				continue
			}
			if sr.LSN <= bases[int(sr.Bucket)] {
				continue
			}
			b := int(sr.Bucket)
			out[b] = append(out[b], Record{Bucket: b, LSN: sr.LSN, Txn: sr.Txn, Key: sr.Key, Args: sr.Args})
		}
	}
	return out, nil
}

// Checkpoint folds the current plan into the manifest and deletes every
// sealed segment whose records are all covered — command records at or
// below their bucket's image LSN, plan records at or below the manifest's
// plan sequence. Call it after a checkpoint round has written its images.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.writeManifest(); err != nil {
		return err
	}
	l.manifestPlanSeq = l.planSeq
	kept := l.segs[:0]
	for _, s := range l.segs {
		if l.segCoveredLocked(&s) {
			if err := l.fs.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return fmt.Errorf("wal: compacting %s: %w", s.name, err)
			}
			l.compacted.Add(1)
			l.diskBytes.Add(-s.size)
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return nil
}

// segCoveredLocked reports whether a sealed segment carries any record the
// recovery path could still need.
func (l *Log) segCoveredLocked(s *segment) bool {
	if l.shipPin > 0 && s.seq >= l.shipPin {
		// A follower has not acknowledged this segment's records yet;
		// compacting it would force a full resync.
		return false
	}
	if s.maxPlanSeq > l.manifestPlanSeq {
		return false
	}
	for b, lsn := range s.maxLSN {
		if lsn > l.bases[b] {
			return false
		}
	}
	return true
}

// writeManifest rewrites the manifest with the current identity and plan.
// Caller holds l.mu (or is still single-threaded in Open).
func (l *Log) writeManifest() error {
	m := &Manifest{
		Version:  manifestVersion,
		Geometry: l.cfg.Geometry,
		PlanSeq:  l.planSeq,
		Plan:     l.lastPlan,
		Active:   l.lastActive,
		Epoch:    l.epoch,
	}
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(l.fs, filepath.Join(l.dir, manifestName), data); err != nil {
		return fmt.Errorf("wal: writing manifest: %w", err)
	}
	return nil
}

// DiskBytes returns the durable log volume: segment bytes a cold start
// would scan (images excluded). Lock-free — stats readers never contend
// with the append path.
func (l *Log) DiskBytes() int64 { return l.diskBytes.Load() }

// Stats snapshots the log's cumulative counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	torn := l.tornBytes
	l.mu.Unlock()
	return Stats{
		Appends:           l.appends.Load(),
		Syncs:             l.syncs.Load(),
		Rotations:         l.rotations.Load(),
		CompactedSegments: l.compacted.Load(),
		AppendedBytes:     l.appBytes.Load(),
		TornBytes:         torn,
	}
}

// Close flushes nothing (everything acknowledged is already durable) and
// releases the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.cond.Broadcast() // release sync-commit waiters; durability is local-only now
	if l.active != nil {
		return l.active.Close()
	}
	return nil
}
