package wal

import (
	"fmt"
	"math/rand"
	"testing"
)

// The crash-point harness: run a scripted workload against a MemFS armed to
// crash at write index k, for every k the workload performs. After each
// crash, "restart" (fs.Recover + Open) and check the reopened log is
// prefix-consistent:
//
//   - every record whose Append returned before the crash is present
//     (durability: acknowledged means on disk),
//   - each bucket's recovered tail is a prefix of that bucket's append
//     sequence (no holes, no reordering),
//   - no phantom records (nothing the workload never appended),
//   - plan state is either the last logged plan or a logged predecessor.
//
// Sweeping every k proves there is no write boundary — segment byte, image
// temp file, manifest rewrite, rename — whose interruption breaks recovery.

// crashScript runs the workload against l, recording per-bucket acked
// records in acked (only after Append returns nil) and logged plans in
// plans. It stops at the first ErrCrashed and reports any unexpected error.
func crashScript(t *testing.T, l *Log, g Geometry, rng *rand.Rand,
	acked map[int][]Record, plans *[][]int32) error {
	t.Helper()
	heads := make([]uint64, g.Buckets)
	step := func(i int) error {
		switch {
		case i%29 == 11: // occasional plan change
			plan := make([]int32, g.Buckets)
			for b := range plan {
				plan[b] = int32(rng.Intn(g.MaxMachines * g.PartitionsPerMachine))
			}
			if err := l.LogPlan(plan, 1+rng.Intn(g.MaxMachines)); err != nil {
				return err
			}
			*plans = append(*plans, plan)
			return nil
		case i%37 == 17: // occasional checkpoint: image a busy bucket + compact
			busy, best := -1, 0
			for b, recs := range acked {
				if len(recs) > best {
					busy, best = b, len(recs)
				}
			}
			if busy >= 0 {
				img := &Image{
					Bucket: busy, LSN: heads[busy], Rows: 1,
					Tables: map[string]map[string]any{"T": {"k": best}},
				}
				if err := l.WriteImage(img); err != nil {
					return err
				}
			}
			return l.Checkpoint()
		default:
			b := rng.Intn(g.Buckets)
			heads[b]++
			r := Record{
				Bucket: b, LSN: heads[b],
				Txn:  []string{"put", "get", "del"}[rng.Intn(3)],
				Key:  fmt.Sprintf("k%d", rng.Intn(20)),
				Args: map[bool]any{true: rng.Intn(100), false: nil}[rng.Intn(2) == 0],
			}
			if err := l.Append(r); err != nil {
				return err
			}
			acked[b] = append(acked[b], r)
			return nil
		}
	}
	for i := 0; i < 120; i++ {
		if err := step(i); err != nil {
			return err
		}
	}
	return nil
}

// verifyCrashRecovery reopens after a crash and checks prefix consistency
// against the acked/plans ledger.
func verifyCrashRecovery(t *testing.T, fs *MemFS, g Geometry, k int64,
	acked map[int][]Record, plans [][]int32) {
	t.Helper()
	fs.Recover()
	l, rec, err := Open(Config{Dir: "data", Geometry: g, FS: fs})
	if err != nil {
		t.Fatalf("k=%d: reopen after crash: %v", k, err)
	}
	defer l.Close()

	for b, want := range acked {
		br := rec.Buckets[b]
		var base uint64
		var tail []Record
		if br != nil {
			base, tail = br.Base, br.Tail
		}
		// Reconstruct what recovery should see: acked records past the base.
		// Everything acked must be covered — by the image (LSN <= base) or by
		// the tail, exactly, in order. Extra *unacked* tail records are legal
		// (a record can hit disk in a batch whose leader died before
		// acknowledging), but they must still be the very next LSNs.
		wantTail := want
		for len(wantTail) > 0 && wantTail[0].LSN <= base {
			wantTail = wantTail[1:]
		}
		if len(tail) < len(wantTail) {
			t.Fatalf("k=%d bucket %d: recovered %d tail records, acked %d beyond base %d — lost acknowledged data",
				k, b, len(tail), len(wantTail), base)
		}
		for i, w := range wantTail {
			if tail[i] != w {
				t.Fatalf("k=%d bucket %d tail[%d]: got %+v want %+v", k, b, i, tail[i], w)
			}
		}
		// Unacked survivors must extend the sequence contiguously.
		next := base
		if n := len(wantTail); n > 0 {
			next = wantTail[n-1].LSN
		}
		for _, r := range tail[len(wantTail):] {
			if r.LSN != next+1 {
				t.Fatalf("k=%d bucket %d: phantom/discontiguous unacked record LSN %d after %d", k, b, r.LSN, next)
			}
			next = r.LSN
		}
	}
	// No bucket outside the workload's ledger may hold records.
	for b, br := range rec.Buckets {
		if len(acked[b]) == 0 && len(br.Tail) > 0 {
			// Only legal if these are unacked survivors of bucket b's very
			// first appends — but the ledger records every *attempted* bucket
			// only on ack, so check LSNs start at 1.
			if br.Tail[0].LSN != br.Base+1 {
				t.Fatalf("k=%d bucket %d: phantom records %+v", k, b, br.Tail)
			}
		}
	}
	// The recovered plan must be one of the logged plans (the last acked one
	// or a successor that hit disk unacked) — never an invented one.
	if rec.Plan != nil {
		found := false
		for _, p := range plans {
			if planEqual(rec.Plan, p) {
				found = true
				break
			}
		}
		// One more legal case: a plan logged by the dying LogPlan call.
		if !found && len(plans) == 0 {
			t.Fatalf("k=%d: recovered a plan but none was ever logged", k)
		}
		_ = found // unacked plan contents are not in the ledger; seq checked below
	}
	if rec.PlanSeq > uint64(len(plans))+1 {
		t.Fatalf("k=%d: recovered PlanSeq %d but only %d plans were ever attempted", k, rec.PlanSeq, len(plans))
	}
}

func planEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrashPointSweep is the harness entry point: learn the workload's
// total write count from a crash-free run, then re-run it crashing at every
// write index and verify recovery each time.
func TestCrashPointSweep(t *testing.T) {
	g := Geometry{Buckets: 16, MaxMachines: 3, PartitionsPerMachine: 2}
	const seed = 42

	// Pass 1: no crash; count writes.
	fs := NewMemFS(seed)
	l, _, err := Open(Config{Dir: "data", Geometry: g, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.CrashAfterWrites(0)
	acked := make(map[int][]Record)
	var plans [][]int32
	if err := crashScript(t, l, g, rand.New(rand.NewSource(seed)), acked, &plans); err != nil {
		t.Fatalf("crash-free run failed: %v", err)
	}
	total := fs.Writes()
	l.Close()
	if total < 100 {
		t.Fatalf("workload only issued %d writes; harness too weak", total)
	}
	step := int64(1)
	if testing.Short() {
		step = 7
	}

	// Pass 2..N: crash at every write index.
	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("write=%d", k), func(t *testing.T) {
			fs := NewMemFS(seed + k) // distinct torn-prefix randomness per point
			l, _, err := Open(Config{Dir: "data", Geometry: g, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			fs.CrashAfterWrites(k)
			acked := make(map[int][]Record)
			var plans [][]int32
			err = crashScript(t, l, g, rand.New(rand.NewSource(seed)), acked, &plans)
			l.Close()
			if !fs.Crashed() {
				// Open's fresh-segment creation issues writes too, so some
				// indices crash during reopen bookkeeping rather than the
				// script; a run may even finish if k exceeds its write count.
				if err != nil {
					t.Fatalf("k=%d: script failed without a crash: %v", k, err)
				}
				return
			}
			verifyCrashRecovery(t, fs, g, k, acked, plans)
		})
	}
}

// TestCrashDuringReopen arms the crash while a previous crash's recovery is
// still running (torn-tail rewrite, manifest create), proving recovery
// itself is crash-safe.
func TestCrashDuringReopen(t *testing.T) {
	g := Geometry{Buckets: 16, MaxMachines: 3, PartitionsPerMachine: 2}
	const seed = 99

	// Build a dirty state: crash mid-workload.
	fs := NewMemFS(seed)
	l, _, err := Open(Config{Dir: "data", Geometry: g, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.CrashAfterWrites(100)
	acked := make(map[int][]Record)
	var plans [][]int32
	_ = crashScript(t, l, g, rand.New(rand.NewSource(seed)), acked, &plans)
	l.Close()
	if !fs.Crashed() {
		t.Fatal("setup crash did not fire")
	}

	// Now crash at every write index of the recovery pass itself.
	for k := int64(1); k <= 40; k++ {
		fs.Recover()
		fs.CrashAfterWrites(k)
		l, _, err := Open(Config{Dir: "data", Geometry: g, FS: fs})
		if err == nil {
			l.Close()
		}
		if !fs.Crashed() {
			if err != nil {
				t.Fatalf("k=%d: reopen failed without crash: %v", k, err)
			}
			break // recovery completed before write k; later ks identical
		}
		// The double-crashed state must still recover.
		verifyCrashRecovery(t, fs, g, k, acked, plans)
	}
}
