package wal

import (
	"errors"
	"testing"
)

// TestReadShipStreamsWholeLog pins the core shipping contract: reading from
// the zero cursor in bounded chunks yields every durable record in log
// order — commands and plan records alike — across segment rotations, and
// the final cursor is caught up (ShipLag 0, further reads empty).
func TestReadShipStreamsWholeLog(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 2<<10) // tiny segments: force rotations
	defer l.Close()
	g := testGeometry()
	heads := make([]uint64, g.Buckets)
	type want struct {
		txn  string
		lsn  uint64
		plan uint64
	}
	var wants []want
	plan := make([]int32, g.Buckets)
	for i := 0; i < 300; i++ {
		if i%100 == 50 {
			seq := uint64(i/100 + 1)
			if err := l.LogPlan(plan, 2); err != nil {
				t.Fatal(err)
			}
			wants = append(wants, want{plan: seq})
			continue
		}
		b := i % g.Buckets
		heads[b]++
		if err := l.Append(Record{Bucket: b, LSN: heads[b], Txn: "put", Key: "k", Args: i}); err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want{txn: "put", lsn: heads[b]})
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("test needs rotations; none happened")
	}

	var got []ShipRecord
	cur := ShipCursor{}
	for {
		recs, next, err := l.ReadShip(cur, 37) // odd chunk size: land mid-segment
		if err != nil {
			t.Fatalf("ReadShip at %+v: %v", cur, err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
		cur = next
	}
	if len(got) != len(wants) {
		t.Fatalf("shipped %d records, want %d", len(got), len(wants))
	}
	for i, r := range got {
		w := wants[i]
		if w.plan > 0 {
			if !r.IsPlan() || r.PlanSeq != w.plan || r.Active != 2 {
				t.Fatalf("record %d: got %+v, want plan seq %d", i, r, w.plan)
			}
		} else if r.IsPlan() || r.Txn != w.txn || r.LSN != w.lsn {
			t.Fatalf("record %d: got %+v, want %+v", i, r, w)
		}
	}
	if lag := l.ShipLag(cur); lag != 0 {
		t.Fatalf("caught-up cursor has lag %d", lag)
	}
	if recs, _, err := l.ReadShip(cur, 0); err != nil || len(recs) != 0 {
		t.Fatalf("read past end: %d records, err %v", len(recs), err)
	}
	// ShipEnd must agree with the cursor the incremental reads arrived at.
	if end := l.ShipEnd(); end != cur {
		t.Fatalf("ShipEnd %+v != streamed cursor %+v", end, cur)
	}
}

// TestReadShipResumesMidSegment checks that a cursor taken mid-stream
// resumes exactly where it left off: the concatenation of two independent
// reads equals one full read.
func TestReadShipResumesMidSegment(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 2<<10)
	defer l.Close()
	for lsn := uint64(1); lsn <= 120; lsn++ {
		if err := l.Append(Record{Bucket: 3, LSN: lsn, Txn: "put", Key: "k", Args: int(lsn)}); err != nil {
			t.Fatal(err)
		}
	}
	full, _, err := l.ReadShip(ShipCursor{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	head, cur, err := l.ReadShip(ShipCursor{}, 41)
	if err != nil {
		t.Fatal(err)
	}
	tail, _, err := l.ReadShip(cur, 1000)
	if err != nil {
		t.Fatalf("resume at %+v: %v", cur, err)
	}
	if len(head)+len(tail) != len(full) {
		t.Fatalf("split read %d+%d records != full %d", len(head), len(tail), len(full))
	}
	for i, r := range append(head, tail...) {
		if r.LSN != full[i].LSN {
			t.Fatalf("record %d: split LSN %d != full %d", i, r.LSN, full[i].LSN)
		}
	}
}

// TestShipGoneAfterCompaction pins retention: without a pin, Checkpoint
// deletes sealed segments out from under an old cursor (ErrShipGone, full
// resync required); with PinShip the segments survive and the read works.
func TestShipGoneAfterCompaction(t *testing.T) {
	run := func(t *testing.T, pin bool) {
		fs := NewMemFS(1)
		l, _ := openTest(t, fs, 2<<10)
		defer l.Close()
		g := testGeometry()
		heads := make([]uint64, g.Buckets)
		for i := 0; i < 400; i++ {
			b := i % g.Buckets
			heads[b]++
			if err := l.Append(Record{Bucket: b, LSN: heads[b], Txn: "put", Key: "k", Args: i}); err != nil {
				t.Fatal(err)
			}
		}
		if l.Stats().Rotations == 0 {
			t.Fatal("test needs rotations; none happened")
		}
		// Materialize a cursor into segment 1: the zero cursor means "start
		// of retained log" and silently skips to whatever survives, but a
		// follower mid-stream holds a concrete segment position.
		head, cur, err := l.ReadShip(ShipCursor{}, 10)
		if err != nil || len(head) != 10 || cur.Seg != 1 {
			t.Fatalf("priming read: %d records, cursor %+v, err %v", len(head), cur, err)
		}
		if pin {
			l.PinShip(1)
		}
		for b := 0; b < g.Buckets; b++ {
			if heads[b] == 0 {
				continue
			}
			err := l.WriteImage(&Image{Bucket: b, LSN: heads[b], Rows: 1,
				Tables: map[string]map[string]any{"T": {"k": b}}})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		recs, _, err := l.ReadShip(cur, 1<<20)
		if pin {
			if err != nil {
				t.Fatalf("pinned read failed: %v", err)
			}
			if len(recs) != 390 {
				t.Fatalf("pinned read returned %d records, want 390", len(recs))
			}
			if l.Stats().CompactedSegments != 0 {
				t.Fatal("pin did not block compaction")
			}
		} else {
			if !errors.Is(err, ErrShipGone) {
				t.Fatalf("unpinned read after compaction: err = %v, want ErrShipGone", err)
			}
			if l.Stats().CompactedSegments == 0 {
				t.Fatal("checkpoint compacted nothing; test proves nothing")
			}
		}
	}
	t.Run("unpinned", func(t *testing.T) { run(t, false) })
	t.Run("pinned", func(t *testing.T) { run(t, true) })
}

// TestEpochPersistsAndFences checks the fencing term: SetEpoch survives a
// reopen (it is in the manifest, not just memory) and refuses to go
// backwards — the zombie-primary case.
func TestEpochPersistsAndFences(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	if l.Epoch() != 0 {
		t.Fatalf("fresh log epoch = %d, want 0", l.Epoch())
	}
	if err := l.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := l.SetEpoch(3); err != nil {
		t.Fatalf("idempotent SetEpoch failed: %v", err)
	}
	if err := l.SetEpoch(2); err == nil {
		t.Fatal("SetEpoch lowered the term")
	}
	if err := l.Append(Record{Bucket: 1, LSN: 1, Txn: "put", Key: "k", Args: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec := openTest(t, fs, DefaultSegmentBytes)
	defer l2.Close()
	if l2.Epoch() != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", l2.Epoch())
	}
	if len(rec.Buckets[1].Tail) != 1 {
		t.Fatalf("epoch bump lost the record tail: %+v", rec.Buckets[1])
	}
}

// TestShipLagCounts checks lag accounting: bytes beyond the cursor shrink
// to zero as the cursor advances.
func TestShipLagCounts(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 2<<10)
	defer l.Close()
	for lsn := uint64(1); lsn <= 100; lsn++ {
		if err := l.Append(Record{Bucket: 0, LSN: lsn, Txn: "put", Key: "k", Args: int(lsn)}); err != nil {
			t.Fatal(err)
		}
	}
	start := l.ShipLag(ShipCursor{})
	if start <= 0 {
		t.Fatalf("lag from zero cursor = %d, want > 0", start)
	}
	_, mid, err := l.ReadShip(ShipCursor{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if lag := l.ShipLag(mid); lag <= 0 || lag >= start {
		t.Fatalf("mid-stream lag %d not in (0, %d)", lag, start)
	}
	_, end, err := l.ReadShip(mid, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if lag := l.ShipLag(end); lag != 0 {
		t.Fatalf("lag at end = %d, want 0", lag)
	}
}
