package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// fuzzSeedSegment builds a clean two-record segment for seeding mutations.
func fuzzSeedSegment() []byte {
	enc := newSegEncoder()
	out, _ := enc.encode(nil, &segRecord{Kind: recCommand, Bucket: 3, LSN: 1, Txn: "put", Key: "k", Args: 7})
	out, _ = enc.encode(out, &segRecord{Kind: recPlan, PlanSeq: 1, Plan: []int32{0, 1}, Active: 1})
	return out
}

// FuzzSegmentDecode: corrupt CRC, truncated length prefix, garbage tail —
// DecodeSegment must never panic and never return phantom records (every
// returned record's frame CRC-validated inside the reported valid prefix).
func FuzzSegmentDecode(f *testing.F) {
	seed := fuzzSeedSegment()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                         // torn tail
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	flipped := append([]byte{}, seed...)
	flipped[frameHeaderSize+2] ^= 0x40 // corrupt first payload
	f.Add(flipped)
	f.Add(append(append([]byte{}, seed...), 0xde, 0xad, 0xbe)) // garbage tail

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := DecodeSegment(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("nil error but valid %d != len %d", valid, len(data))
		}
		// No phantoms: every record must re-derive from a CRC-clean frame
		// walk of the valid prefix.
		n := 0
		off := int64(0)
		for off+frameHeaderSize <= valid {
			length := int64(binary.BigEndian.Uint32(data[off : off+4]))
			sum := binary.BigEndian.Uint32(data[off+4 : off+8])
			end := off + frameHeaderSize + length
			if length > MaxRecordBytes || end > valid {
				t.Fatalf("frame at %d (len %d) not contained in valid prefix %d", off, length, valid)
			}
			if crc32.Checksum(data[off+frameHeaderSize:end], crcTable) != sum {
				t.Fatalf("frame at %d inside valid prefix fails CRC", off)
			}
			n++
			off = end
		}
		if off != valid {
			t.Fatalf("valid prefix %d is not a whole number of frames (stopped at %d)", valid, off)
		}
		if len(recs) > n {
			t.Fatalf("%d records from %d frames — phantom records", len(recs), n)
		}
	})
}

// FuzzManifestDecode: arbitrary bytes must never panic, and any manifest
// that decodes successfully must satisfy every invariant the log relies on.
func FuzzManifestDecode(f *testing.F) {
	good, _ := encodeManifest(&Manifest{
		Version:  manifestVersion,
		Geometry: Geometry{Buckets: 4, MaxMachines: 2, PartitionsPerMachine: 2},
		PlanSeq:  3,
		Plan:     []int32{0, 1, 2, 3},
		Active:   2,
	})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"geometry":{"buckets":-1}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	truncated := good[:len(good)/2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != manifestVersion {
			t.Fatalf("accepted version %d", m.Version)
		}
		g := m.Geometry
		if g.Buckets <= 0 || g.MaxMachines <= 0 || g.PartitionsPerMachine <= 0 {
			t.Fatalf("accepted invalid geometry %+v", g)
		}
		if m.Plan != nil && len(m.Plan) != g.Buckets {
			t.Fatalf("accepted plan of %d entries for %d buckets", len(m.Plan), g.Buckets)
		}
		for b, p := range m.Plan {
			if p < 0 || int(p) >= g.MaxMachines*g.PartitionsPerMachine {
				t.Fatalf("accepted plan[%d] = %d", b, p)
			}
		}
		if m.Active < 0 || m.Active > g.MaxMachines {
			t.Fatalf("accepted active %d", m.Active)
		}
		// A valid manifest must survive a re-encode round trip.
		out, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := DecodeManifest(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		a, _ := json.Marshal(m)
		b, _ := json.Marshal(m2)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed manifest: %s vs %s", a, b)
		}
	})
}
