package wal

import (
	"errors"
	"fmt"
	"path/filepath"
)

// Self-healing surface: the pieces a fenced ex-primary needs to fold itself
// back into the cluster as a follower, plus the remote-ack barrier the
// synchronous-commit mode arms on a serving primary.
//
// A zombie's WAL agrees with the promoted follower's up to the divergence
// point (the cursor the follower had applied when it was promoted) and then
// carries a suffix of records the follower never saw — records whose
// submitters were acknowledged under the old term but which lost the
// election, so to speak. TruncateTo physically discards that suffix so a
// future replay cannot resurrect it; Reset wipes the record stream entirely
// for the cases where surgical truncation cannot work and a fresh snapshot
// resync is the only correct move.

// ErrNeedResync reports that the log cannot be truncated to the requested
// divergence point — a checkpoint image or the manifest already folded in
// discarded records, or the cursor points below retention. The caller must
// full-resync from a fresh snapshot instead.
var ErrNeedResync = errors.New("wal: cannot truncate to divergence point; full resync required")

// ErrSyncAborted fails an append that was locally durable but waiting on the
// sync-commit barrier when its record's fate became unknowable: the shipper
// died before the follower confirmed it, or a divergence truncation discarded
// it outright. The submitter must not be told the write committed.
var ErrSyncAborted = errors.New("wal: sync commit aborted before the follower acknowledged the record")

// TruncateResult describes what TruncateTo discarded.
type TruncateResult struct {
	// Heads maps each bucket whose largest retained LSN dropped to its new
	// head — the owner must lower its in-memory LSN counters to match.
	Heads map[int]uint64
	// DiscardedRecords counts discarded command records; DiscardedBytes the
	// segment bytes released.
	DiscardedRecords int
	DiscardedBytes   int64
}

// SetSyncCommit arms or disarms the synchronous-commit barrier. While armed,
// Append returns only once the remote ack cursor (SetRemoteAck) covers the
// record; disarming releases every waiter — the shipper disarms when it
// stops or latches a terminal error, so appends degrade to local durability
// instead of deadlocking.
func (l *Log) SetSyncCommit(on bool) {
	l.mu.Lock()
	l.syncCommit = on
	if !on {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// SetRemoteAck records the follower's acknowledged ship cursor. Appends at
// or below the covered position are released; the cursor only ever advances.
func (l *Log) SetRemoteAck(cur ShipCursor) {
	l.mu.Lock()
	if seq := l.ackSeqLocked(cur); seq > l.remoteAckSeq {
		l.remoteAckSeq = seq
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// AbortSync fails every append currently blocked on the sync-commit barrier
// with ErrSyncAborted: their records are durable locally but the follower
// never confirmed them, and the caller (a shipper that hit a terminal error,
// or a fenced primary standing down) knows no confirmation is coming. The
// barrier stays armed; records the follower did ack are unaffected.
func (l *Log) AbortSync() {
	l.mu.Lock()
	if l.appendSeq > l.remoteAckSeq {
		l.discardLo, l.discardHi = l.remoteAckSeq, l.appendSeq
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// ackSeqLocked maps a ship cursor onto the append-sequence space: how many
// of this life's appends the cursor covers. Cursors into segments recovered
// from a previous life (or already compacted) cover none of them.
func (l *Log) ackSeqLocked(cur ShipCursor) uint64 {
	if cur.Seg > l.activeSeq {
		return l.appendSeq
	}
	if cur.Seg == l.activeSeq {
		rec := cur.Rec
		if rec > l.activeRecs {
			rec = l.activeRecs
		}
		return l.activeAckBase + uint64(rec)
	}
	for i := len(l.segs) - 1; i >= 0; i-- {
		s := &l.segs[i]
		if s.seq < cur.Seg {
			break
		}
		if s.seq == cur.Seg {
			if s.ackBase < 0 {
				return 0
			}
			rec := cur.Rec
			if rec > s.recs {
				rec = s.recs
			}
			return uint64(s.ackBase) + uint64(rec)
		}
	}
	return 0
}

// TruncateTo discards every durable record beyond the cursor — the unshipped
// suffix a fenced ex-primary must shed before rejoining as a follower. The
// caller guarantees no appends are in flight (the engine is fenced).
//
// Truncation is refused with ErrNeedResync when the retained prefix would be
// inconsistent: the cursor's segment is below retention, a checkpoint image
// covers a discarded record, or the suffix contains a plan record (the
// manifest and in-memory plan would disagree with the log). Those cases need
// a fresh snapshot resync instead.
func (l *Log) TruncateTo(cur ShipCursor) (TruncateResult, error) {
	res := TruncateResult{Heads: make(map[int]uint64)}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return res, l.err
	}
	if l.closed {
		return res, errors.New("wal: log is closed")
	}
	if l.syncing || len(l.buf) > 0 {
		return res, errors.New("wal: truncate with appends in flight")
	}
	if cur.Seg > l.activeSeq || (cur.Seg == l.activeSeq && cur.Rec > l.durableRecs) {
		return res, fmt.Errorf("wal: truncate cursor %+v beyond durable end", cur)
	}
	if cur.Seg == 0 {
		// The follower applied nothing: every retained record is suffix. Only
		// consistent if no image has folded records in.
		for b, base := range l.bases {
			if base > 0 {
				return res, fmt.Errorf("%w: bucket %d image at lsn %d predates the divergence point", ErrNeedResync, b, base)
			}
		}
	} else {
		found := cur.Seg == l.activeSeq
		for _, s := range l.segs {
			if s.seq == cur.Seg {
				found = true
				if cur.Rec > s.recs {
					return res, fmt.Errorf("wal: truncate cursor %d records into segment %d, which holds %d", cur.Rec, cur.Seg, s.recs)
				}
				break
			}
		}
		if !found {
			return res, fmt.Errorf("%w: divergence segment %d is below retention", ErrNeedResync, cur.Seg)
		}
	}

	// Map the cut point into append-sequence space while the segment table is
	// still intact: waiters at or below it were acked (or predate this life),
	// waiters above it are about to lose their records.
	keepSeq := l.ackSeqLocked(cur)

	// Decode every discarded record first — the plan-record and image checks
	// must pass before any file is touched, so a refused truncation leaves
	// the log exactly as it was.
	type cutFile struct {
		name string
		keep []byte // retained prefix to rewrite (nil = delete the file)
		seal segment
	}
	var cuts []cutFile
	minDiscarded := make(map[int]uint64) // bucket -> smallest discarded LSN
	examine := func(name string, seq, fromRec int, size int64, ackBase int64) error {
		data, err := readAll(l.fs, filepath.Join(l.dir, name))
		if err != nil {
			return err
		}
		if int64(len(data)) > size {
			data = data[:size]
		}
		srs, _, derr := decodeSegRecords(data)
		if derr != nil || len(srs) < fromRec {
			if derr == nil {
				derr = fmt.Errorf("holds %d records, cursor wants %d", len(srs), fromRec)
			}
			return fmt.Errorf("wal: truncating %s: %w", name, derr)
		}
		for k := fromRec; k < len(srs); k++ {
			sr := &srs[k]
			if sr.Kind == recPlan {
				return fmt.Errorf("%w: discarded suffix contains plan record %d", ErrNeedResync, sr.PlanSeq)
			}
			b := int(sr.Bucket)
			if cutLSN, ok := minDiscarded[b]; !ok || sr.LSN < cutLSN {
				minDiscarded[b] = sr.LSN
			}
			res.DiscardedRecords++
		}
		cut := cutFile{name: name}
		if fromRec > 0 {
			off := frameEnd(data, fromRec)
			cut.keep = data[:off]
			seal := segment{name: name, seq: seq, size: off, recs: fromRec, maxLSN: make(map[int]uint64), ackBase: ackBase}
			for k := 0; k < fromRec; k++ {
				sr := &srs[k]
				if sr.Kind == recPlan {
					if sr.PlanSeq > seal.maxPlanSeq {
						seal.maxPlanSeq = sr.PlanSeq
					}
				} else if b := int(sr.Bucket); sr.LSN > seal.maxLSN[b] {
					seal.maxLSN[b] = sr.LSN
				}
			}
			cut.seal = seal
			res.DiscardedBytes += size - off
		} else {
			res.DiscardedBytes += size
		}
		cuts = append(cuts, cut)
		return nil
	}

	kept := make([]segment, 0, len(l.segs))
	for _, s := range l.segs {
		switch {
		case cur.Seg != 0 && s.seq < cur.Seg:
			kept = append(kept, s)
		case s.seq == cur.Seg && cur.Rec == s.recs:
			kept = append(kept, s) // cursor sits exactly on the boundary
		case s.seq == cur.Seg:
			if err := examine(s.name, s.seq, cur.Rec, s.size, s.ackBase); err != nil {
				return res, err
			}
		default:
			if err := examine(s.name, s.seq, 0, s.size, s.ackBase); err != nil {
				return res, err
			}
		}
	}
	if cur.Seg == l.activeSeq {
		if err := examine(l.activeName, l.activeSeq, cur.Rec, l.activeSize, int64(l.activeAckBase)); err != nil {
			return res, err
		}
	} else if l.activeSize > 0 {
		if err := examine(l.activeName, l.activeSeq, 0, l.activeSize, int64(l.activeAckBase)); err != nil {
			return res, err
		}
	} else {
		cuts = append(cuts, cutFile{name: l.activeName})
	}

	// An image whose LSN reaches into the discarded suffix has folded records
	// in that are about to vanish — replay on top of it would be wrong.
	for b, lsn := range minDiscarded {
		if l.bases[b] >= lsn {
			return res, fmt.Errorf("%w: bucket %d image at lsn %d covers discarded records from lsn %d", ErrNeedResync, b, l.bases[b], lsn)
		}
		res.Heads[b] = lsn - 1
	}

	// All checks passed: rewrite the cut segment, delete the rest, and start
	// a fresh active segment right after the retained prefix.
	if err := l.active.Close(); err != nil {
		return res, fmt.Errorf("wal: closing segment %s: %w", l.activeName, err)
	}
	for _, c := range cuts {
		path := filepath.Join(l.dir, c.name)
		if c.keep != nil {
			if err := writeFileAtomic(l.fs, path, c.keep); err != nil {
				l.err = fmt.Errorf("wal: truncating %s: %w", c.name, err)
				return res, l.err
			}
			kept = append(kept, c.seal)
			continue
		}
		if err := l.fs.Remove(path); err != nil {
			l.err = fmt.Errorf("wal: discarding %s: %w", c.name, err)
			return res, l.err
		}
	}
	l.segs = kept
	l.diskBytes.Add(-res.DiscardedBytes)
	l.activeSeq = cur.Seg
	if cur.Seg == 0 {
		for _, s := range kept {
			if s.seq > l.activeSeq {
				l.activeSeq = s.seq
			}
		}
	}
	// A rejoined follower's shipper (if this node is ever promoted again)
	// starts from a fresh sync; the old pin protected a stream that no longer
	// exists. Sync-commit waiters below the cut were acked remotely and are
	// released; waiters above it just lost their records and must fail.
	l.shipPin = 0
	if keepSeq > l.remoteAckSeq {
		l.remoteAckSeq = keepSeq
	}
	l.discardLo, l.discardHi = l.remoteAckSeq, l.appendSeq
	l.cond.Broadcast()
	if err := l.openActive(); err != nil {
		l.err = err
		return res, err
	}
	return res, nil
}

// Reset discards the entire record stream and every checkpoint image,
// leaving an empty log with its identity (manifest, epoch, plan counters)
// intact — the preamble to installing a fresh snapshot resync in place. The
// caller guarantees no appends are in flight.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.syncing || len(l.buf) > 0 {
		return errors.New("wal: reset with appends in flight")
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", l.activeName, err)
	}
	for _, s := range l.segs {
		if err := l.fs.Remove(filepath.Join(l.dir, s.name)); err != nil {
			l.err = fmt.Errorf("wal: discarding %s: %w", s.name, err)
			return l.err
		}
	}
	if err := l.fs.Remove(filepath.Join(l.dir, l.activeName)); err != nil {
		l.err = fmt.Errorf("wal: discarding %s: %w", l.activeName, err)
		return l.err
	}
	imgDir := filepath.Join(l.dir, "img")
	names, err := l.fs.ReadDir(imgDir)
	if err != nil {
		l.err = err
		return err
	}
	for _, n := range names {
		if err := l.fs.Remove(filepath.Join(imgDir, n)); err != nil {
			l.err = fmt.Errorf("wal: discarding image %s: %w", n, err)
			return l.err
		}
	}
	l.diskBytes.Store(0)
	l.segs = nil
	l.bases = make(map[int]uint64)
	l.shipPin = 0
	// Unacked sync-commit waiters lose their records with the stream.
	l.discardLo, l.discardHi = l.remoteAckSeq, l.appendSeq
	l.cond.Broadcast()
	if err := l.openActive(); err != nil {
		l.err = err
		return err
	}
	return nil
}
