package wal

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the filesystem surface the log writes through. The production
// implementation (OSFS) maps straight onto the os package; tests substitute
// MemFS, whose crash injection drops or tears unsynced bytes at a chosen
// write index — the only way to prove the recovery path against every kill
// point without actually killing processes.
//
// Durability model: bytes written to a File are volatile until Sync returns;
// metadata operations (Create, Rename, Remove, MkdirAll) are durable on
// return. Rename is atomic. This matches the guarantees the on-disk format
// relies on: record durability comes from group-commit Sync, and image /
// manifest atomicity comes from write-to-temp + Sync + Rename.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// Create truncating-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// ReadDir lists the names (not paths) of a directory's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Size returns a file's current length in bytes.
	Size(name string) (int64, error)
}

// File is one open file handle.
type File interface {
	io.Reader
	io.Writer
	// Sync makes all bytes written so far durable.
	Sync() error
	// Close releases the handle. Close does NOT imply Sync.
	Close() error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }
func (OSFS) Open(name string) (File, error)   { return os.Open(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ErrCrashed is returned by every MemFS operation after the injected crash
// point fires: the process is "dead", and only Recover (modeling a restart)
// makes the surviving state visible again.
var ErrCrashed = errors.New("wal: simulated crash")

// MemFS is an in-memory FS with crash injection. Data writes are volatile
// until Sync; metadata operations are durable immediately (journaled-metadata
// semantics). CrashAfterWrites(k) arms a crash on the k-th Write call: the
// crashing write applies a seeded-random prefix of its bytes (a torn write),
// every file loses a seeded-random suffix of its unsynced bytes, and all
// subsequent operations fail with ErrCrashed until Recover.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
	rng   *rand.Rand

	crashAt int64 // 1-based write index that crashes; 0 = disarmed
	writes  int64
	crashed bool
}

// NewMemFS builds an empty MemFS whose torn-write prefixes draw from seed.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  make(map[string]bool),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// memFile is one file's durable identity. data holds everything written;
// synced marks the durable prefix. Crash truncates data to synced plus a
// random prefix of the unsynced suffix.
type memFile struct {
	data   []byte
	synced int
}

// memHandle is an open handle; reads snapshot nothing — they walk the live
// data (handles are never shared between a writer and a reader in the log).
type memHandle struct {
	fs   *MemFS
	f    *memFile
	name string
	rpos int
}

// CrashAfterWrites arms the crash point: the k-th Write call (1-based) from
// now on tears and then kills the filesystem. k <= 0 disarms.
func (m *MemFS) CrashAfterWrites(k int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes = 0
	m.crashAt = k
}

// Writes reports how many Write calls have been issued since the crash point
// was last armed — the harness uses a no-crash run to learn the total number
// of kill points to sweep.
func (m *MemFS) Writes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Crashed reports whether the injected crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Recover models the process restart after a crash: the filesystem becomes
// usable again, exposing exactly the state that survived (durable metadata,
// synced data, and whatever torn prefix of unsynced data was retained).
func (m *MemFS) Recover() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
}

// crashLocked tears every file's unsynced suffix and marks the fs dead.
// Caller holds m.mu.
func (m *MemFS) crashLocked() {
	m.crashed = true
	// Deterministic iteration: sort names so the retained prefixes depend
	// only on the seed, not map order.
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := m.files[n]
		if unsynced := len(f.data) - f.synced; unsynced > 0 {
			keep := f.synced + m.rng.Intn(unsynced+1)
			f.data = f.data[:keep]
			f.synced = len(f.data)
		}
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f := &memFile{}
	m.files[filepath.Clean(name)] = f
	return &memHandle{fs: m, f: f, name: name}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, f: f, name: name}, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	var names []string
	for n := range m.files {
		if filepath.Dir(n) == dir {
			names = append(names, filepath.Base(n))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[filepath.Clean(oldname)]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, filepath.Clean(oldname))
	m.files[filepath.Clean(newname)] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[filepath.Clean(name)]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, filepath.Clean(name))
	return nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	h.fs.writes++
	if h.fs.crashAt > 0 && h.fs.writes >= h.fs.crashAt {
		// The dying write lands torn: a seeded-random prefix reaches the
		// file before the crash takes the filesystem down.
		h.f.data = append(h.f.data, p[:h.fs.rng.Intn(len(p)+1)]...)
		h.fs.crashLocked()
		return 0, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.rpos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.rpos:])
	h.rpos += n
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// DumpTo copies the MemFS's durable state into a directory on the real
// filesystem — a debugging aid for inspecting what a crashed run left
// behind.
func (m *MemFS) DumpTo(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		dst := filepath.Join(dir, filepath.Base(name))
		if err := os.WriteFile(dst, f.data, 0o644); err != nil {
			return fmt.Errorf("wal: dumping %s: %w", name, err)
		}
	}
	return nil
}
