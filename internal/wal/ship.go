package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
)

// WAL shipping: a primary streams its durable record stream — commands and
// plan records alike — to a follower by cursor. A cursor addresses a point
// in the stream as (segment sequence, records consumed within it); segments
// are single gob streams, so a ship read always decodes a segment from byte
// zero and skips the consumed prefix. The byte offset rides along purely for
// lag accounting.
//
// Retention interacts with shipping through PinShip: Checkpoint normally
// deletes sealed segments once images cover them, which would tear the ship
// stream out from under a slow follower. The shipper pins the oldest segment
// its follower has not acknowledged; a cursor pointing into a segment that
// was compacted anyway (pin set too late, or no shipper at all) gets
// ErrShipGone and the follower must full-resync.

// ErrShipGone reports that a ship cursor points at log records that no
// longer exist — the segment was compacted. The only recovery is a full
// resync from a fresh snapshot.
var ErrShipGone = errors.New("wal: shipped records compacted")

// ShipCursor addresses a point in the durable record stream.
type ShipCursor struct {
	// Seg is the segment sequence number (1-based; 0 means "start of log").
	Seg int
	// Rec is how many records of the segment are already consumed.
	Rec int
	// Off is the byte offset after the consumed records, for lag accounting.
	Off int64
}

// ShipRecord is one shipped record: either a command (Txn != "") or a plan
// change (PlanSeq > 0) — the same union a segment stores.
type ShipRecord struct {
	// Command fields.
	Bucket int
	LSN    uint64
	Txn    string
	Key    string
	Args   any
	// Plan fields.
	PlanSeq uint64
	Plan    []int32
	Active  int
}

// IsPlan reports whether the record is a plan change.
func (r *ShipRecord) IsPlan() bool { return r.PlanSeq > 0 }

// ShipEnd returns the cursor addressing the durable end of the log: shipping
// from here yields nothing until new records are appended. Taken before a
// snapshot, it bounds exactly what the snapshot may already include.
func (l *Log) ShipEnd() ShipCursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ShipCursor{Seg: l.activeSeq, Rec: l.durableRecs, Off: l.activeSize}
}

// PinShip keeps segments with sequence >= seg out of compaction, protecting
// a follower's unacknowledged records. seg <= 0 clears the pin.
func (l *Log) PinShip(seg int) {
	l.mu.Lock()
	if seg < 0 {
		seg = 0
	}
	l.shipPin = seg
	l.mu.Unlock()
}

// ShipLag returns how many durable log bytes lie beyond the cursor — the
// follower's replication lag in bytes.
func (l *Log) ShipLag(cur ShipCursor) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var lag int64
	for _, s := range l.segs {
		if s.seq > cur.Seg {
			lag += s.size
		} else if s.seq == cur.Seg {
			lag += s.size - cur.Off
		}
	}
	if l.activeSeq > cur.Seg {
		lag += l.activeSize
	} else if l.activeSeq == cur.Seg {
		lag += l.activeSize - cur.Off
	}
	if lag < 0 {
		lag = 0
	}
	return lag
}

// PlanSeq returns the current plan-change sequence number.
func (l *Log) PlanSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.planSeq
}

// Epoch returns the replication fencing term.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// SetEpoch raises the fencing term and persists it in the manifest before
// returning, so a promotion survives a restart. Lowering the term is
// refused — that is exactly the zombie-primary case fencing exists for.
func (l *Log) SetEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if e < l.epoch {
		return fmt.Errorf("wal: epoch %d below current %d", e, l.epoch)
	}
	if e == l.epoch {
		return nil
	}
	prev := l.epoch
	l.epoch = e
	if err := l.writeManifest(); err != nil {
		l.epoch = prev
		return err
	}
	l.manifestPlanSeq = l.planSeq
	return nil
}

// ReadShip returns up to maxRecords durable records beyond the cursor, in
// log order, and the cursor addressing the position after them. Like
// LoadTails it snapshots the durable extent under the lock and reads segment
// files outside it, so it never blocks the append path for the duration of
// the I/O. An empty result with a nil error means the cursor is caught up.
func (l *Log) ReadShip(cur ShipCursor, maxRecords int) ([]ShipRecord, ShipCursor, error) {
	if maxRecords <= 0 {
		maxRecords = 512
	}
	type ext struct {
		seq  int
		name string
		size int64
		recs int
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, cur, err
	}
	exts := make([]ext, 0, len(l.segs)+1)
	for _, s := range l.segs {
		exts = append(exts, ext{s.seq, s.name, s.size, s.recs})
	}
	exts = append(exts, ext{l.activeSeq, l.activeName, l.activeSize, l.durableRecs})
	l.mu.Unlock()

	if cur.Seg == 0 {
		cur = ShipCursor{Seg: exts[0].seq}
	}
	i := -1
	for j := range exts {
		if exts[j].seq == cur.Seg {
			i = j
			break
		}
	}
	if i < 0 {
		return nil, cur, fmt.Errorf("%w: segment %d is not retained", ErrShipGone, cur.Seg)
	}
	var out []ShipRecord
	for ; i < len(exts); i++ {
		e := exts[i]
		if cur.Rec > e.recs {
			return nil, cur, fmt.Errorf("wal: ship cursor %d records into segment %d, which holds %d", cur.Rec, e.seq, e.recs)
		}
		if cur.Rec < e.recs {
			data, err := readAll(l.fs, filepath.Join(l.dir, e.name))
			if err != nil {
				return nil, cur, err
			}
			if int64(len(data)) > e.size {
				data = data[:e.size] // ignore bytes synced after the snapshot
			}
			srs, _, derr := decodeSegRecords(data)
			if len(srs) < e.recs {
				// The snapshotted durable extent must decode cleanly.
				if derr == nil {
					derr = fmt.Errorf("holds %d records, expected %d", len(srs), e.recs)
				}
				return nil, cur, fmt.Errorf("wal: ship read of %s: %w", e.name, derr)
			}
			end := e.recs
			if take := maxRecords - len(out); end-cur.Rec > take {
				end = cur.Rec + take
			}
			for k := cur.Rec; k < end; k++ {
				sr := &srs[k]
				if sr.Kind == recPlan {
					out = append(out, ShipRecord{PlanSeq: sr.PlanSeq, Plan: sr.Plan, Active: int(sr.Active)})
				} else {
					out = append(out, ShipRecord{
						Bucket: int(sr.Bucket), LSN: sr.LSN, Txn: sr.Txn, Key: sr.Key, Args: sr.Args,
					})
				}
			}
			cur.Rec = end
			cur.Off = frameEnd(data, end)
			if len(out) >= maxRecords {
				break
			}
		}
		// This segment's durable extent is consumed; step into the next one.
		if i+1 >= len(exts) {
			break
		}
		if exts[i+1].seq != e.seq+1 {
			return nil, cur, fmt.Errorf("%w: segments %d..%d were compacted", ErrShipGone, e.seq+1, exts[i+1].seq-1)
		}
		cur = ShipCursor{Seg: exts[i+1].seq}
	}
	return out, cur, nil
}

// frameEnd returns the byte offset after the first n frames of a segment.
// The caller has already decoded at least n records, so the headers are
// known-valid.
func frameEnd(data []byte, n int) int64 {
	off := int64(0)
	for k := 0; k < n; k++ {
		length := binary.BigEndian.Uint32(data[off : off+4])
		off += frameHeaderSize + int64(length)
	}
	return off
}
