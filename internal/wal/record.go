package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk record framing. A segment is a sequence of frames:
//
//	[4B big-endian payload length][4B CRC32-C of payload][payload]
//
// where the payloads of one segment form a single gob stream (one encoder
// per segment, so type descriptors are transmitted once, not per record).
// Frames are the torn-tail detection unit: on open, a segment is scanned
// frame by frame and truncated at the first frame whose length is absurd,
// whose CRC mismatches, or whose payload the gob stream rejects — everything
// before that point is a durable prefix, everything after is discarded.
// Because appends are written in order and fsync preserves ordering, a
// truncated suffix can only contain records that were never acknowledged.

const (
	// frameHeaderSize is the per-record framing overhead.
	frameHeaderSize = 8
	// MaxRecordBytes bounds one frame's payload; a length prefix beyond it
	// marks the frame (and the rest of the segment) as garbage. Records are
	// procedure inputs — a few hundred bytes — so 16 MiB is generous.
	MaxRecordBytes = 16 << 20
)

// crcTable is the Castagnoli polynomial, the same choice as iSCSI/ext4.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recKind discriminates segment records.
type recKind uint8

const (
	// recCommand is one executed procedure's input.
	recCommand recKind = 1
	// recPlan is a bucket-plan change (ownership flip or active-machine
	// resize). PlanSeq totally orders plan records across segments and
	// manifest rewrites.
	recPlan recKind = 2
)

// segRecord is the single gob-encoded payload type. Kind selects which
// fields are meaningful; gob omits zero fields, so the union costs nothing
// on the wire.
type segRecord struct {
	Kind recKind

	// recCommand fields.
	Bucket int32
	LSN    uint64
	Txn    string
	Key    string
	Args   any

	// recPlan fields.
	PlanSeq uint64
	Plan    []int32
	Active  int32
}

// Record is one durable command-log record: the input of one executed
// procedure. The transaction travels by name, not by dense engine handle —
// handles are assigned in registration order and need not survive a process
// restart.
type Record struct {
	Bucket int
	LSN    uint64
	Txn    string
	Key    string
	Args   any
}

// segEncoder frames records into an in-memory buffer using one gob stream.
type segEncoder struct {
	enc    *gob.Encoder
	stream bytes.Buffer // gob output; frames are cut from it per record
}

func newSegEncoder() *segEncoder {
	e := &segEncoder{}
	e.enc = gob.NewEncoder(&e.stream)
	return e
}

// encode appends one framed record to out and returns the extended slice.
func (e *segEncoder) encode(out []byte, rec *segRecord) ([]byte, error) {
	e.stream.Reset()
	if err := e.enc.Encode(rec); err != nil {
		return out, fmt.Errorf("wal: encoding record: %w", err)
	}
	payload := e.stream.Bytes()
	if len(payload) > MaxRecordBytes {
		return out, fmt.Errorf("wal: record payload %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	out = append(out, hdr[:]...)
	return append(out, payload...), nil
}

// frameReader feeds CRC-validated frame payloads to a gob decoder. The gob
// stream is only ever advanced one whole frame at a time, so a decode error
// can never consume bytes past the offending frame.
type frameReader struct {
	buf bytes.Buffer
}

func (r *frameReader) Read(p []byte) (int, error) { return r.buf.Read(p) }

// DecodeSegment scans one segment's raw bytes and returns every command
// record in its valid prefix plus the prefix's length in bytes. It never
// panics and never returns a record whose frame did not CRC-validate (no
// phantom records — the fuzz target's contract). A non-nil error describes
// why scanning stopped early; a fully clean segment returns
// valid == len(data) and a nil error. Plan records are internal bookkeeping
// and are skipped here.
func DecodeSegment(data []byte) (recs []Record, valid int64, err error) {
	srs, valid, err := decodeSegRecords(data)
	for i := range srs {
		if srs[i].Kind == recCommand {
			sr := &srs[i]
			recs = append(recs, Record{Bucket: int(sr.Bucket), LSN: sr.LSN, Txn: sr.Txn, Key: sr.Key, Args: sr.Args})
		}
	}
	return recs, valid, err
}

// decodeSegRecords is the core segment scanner: it walks frames, validates
// length and CRC, feeds payloads one whole frame at a time into the
// segment's gob stream, and stops at the first sign of a torn or corrupt
// frame — returning the records of the valid prefix and its byte length.
func decodeSegRecords(data []byte) (recs []segRecord, valid int64, err error) {
	fr := &frameReader{}
	dec := gob.NewDecoder(fr)
	off := int64(0)
	for int64(len(data))-off >= frameHeaderSize {
		length := binary.BigEndian.Uint32(data[off : off+4])
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordBytes {
			return recs, off, fmt.Errorf("wal: frame at %d claims %d bytes", off, length)
		}
		end := off + frameHeaderSize + int64(length)
		if end > int64(len(data)) {
			return recs, off, fmt.Errorf("wal: frame at %d torn (%d of %d payload bytes)",
				off, int64(len(data))-off-frameHeaderSize, length)
		}
		payload := data[off+frameHeaderSize : end]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, fmt.Errorf("wal: frame at %d fails CRC", off)
		}
		fr.buf.Write(payload)
		var sr segRecord
		if derr := dec.Decode(&sr); derr != nil {
			return recs, off, fmt.Errorf("wal: frame at %d fails gob decode: %w", off, derr)
		}
		if fr.buf.Len() != 0 {
			// A frame must carry exactly one gob value (plus its type
			// descriptors); leftover bytes mean the stream is out of step.
			return recs, off, fmt.Errorf("wal: frame at %d left %d undecoded bytes", off, fr.buf.Len())
		}
		if sr.Kind != recCommand && sr.Kind != recPlan {
			return recs, off, fmt.Errorf("wal: frame at %d has unknown kind %d", off, sr.Kind)
		}
		recs = append(recs, sr)
		off = end
	}
	if off != int64(len(data)) {
		return recs, off, fmt.Errorf("wal: %d trailing bytes after last whole frame", int64(len(data))-off)
	}
	return recs, off, nil
}

// readAll reads a whole file through the FS abstraction.
func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// writeFileAtomic writes data as name via a temp file + Sync + Rename, the
// all-or-nothing idiom images and the manifest rely on.
func writeFileAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, name)
}
