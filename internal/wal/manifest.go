package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// manifestName is the store's identity file, following the engram
// DataDir-store idiom: a JSON document at the data directory root that a
// reopen validates before trusting anything else in the directory.
const manifestName = "MANIFEST.json"

// manifestVersion is the on-disk format version; a mismatch refuses to open
// rather than misread.
const manifestVersion = 1

// Geometry is the engine shape a log directory was created for. Replay is
// only meaningful against the same bucket space, so a reopen with different
// geometry is refused.
type Geometry struct {
	Buckets              int `json:"buckets"`
	MaxMachines          int `json:"max_machines"`
	PartitionsPerMachine int `json:"partitions_per_machine"`
}

// Manifest is the durable store descriptor. Besides identity it carries the
// latest checkpointed bucket plan: plan records in segments are deltas on
// top of it, ordered by PlanSeq, so compaction can drop old plan records
// once a checkpoint has folded them in here.
type Manifest struct {
	Version  int      `json:"version"`
	Geometry Geometry `json:"geometry"`
	// PlanSeq is the plan-change sequence number the Plan/Active fields
	// reflect; segment plan records with larger PlanSeq override them.
	PlanSeq uint64 `json:"plan_seq"`
	// Plan is the bucket plan at the last checkpoint (nil before any plan
	// was logged); Active is the active machine count alongside it.
	Plan   []int32 `json:"plan,omitempty"`
	Active int     `json:"active,omitempty"`
	// Epoch is the replication fencing term. A promoted follower raises it;
	// a zombie primary still on the old epoch has its ship batches rejected,
	// and the raise is durable here so fencing survives restarts.
	Epoch uint64 `json:"epoch,omitempty"`
}

// DecodeManifest parses and validates manifest bytes. It never panics;
// garbage, truncation, or an unsupported version return an error.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wal: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("wal: manifest version %d, want %d", m.Version, manifestVersion)
	}
	g := m.Geometry
	if g.Buckets <= 0 || g.MaxMachines <= 0 || g.PartitionsPerMachine <= 0 {
		return nil, fmt.Errorf("wal: manifest has invalid geometry %+v", g)
	}
	if m.Plan != nil && len(m.Plan) != g.Buckets {
		return nil, fmt.Errorf("wal: manifest plan covers %d buckets, want %d", len(m.Plan), g.Buckets)
	}
	parts := int32(g.MaxMachines * g.PartitionsPerMachine)
	for b, p := range m.Plan {
		if p < 0 || p >= parts {
			return nil, fmt.Errorf("wal: manifest plan[%d] = %d out of [0, %d)", b, p, parts)
		}
	}
	if m.Active < 0 || m.Active > g.MaxMachines {
		return nil, fmt.Errorf("wal: manifest active %d out of [0, %d]", m.Active, g.MaxMachines)
	}
	return &m, nil
}

// encodeManifest renders the manifest deterministically.
func encodeManifest(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wal: encoding manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Checkpoint-image file format: a fixed header followed by one gob payload
// (the bucket's tables). The header is readable without decoding the
// payload, so open can learn every bucket's image LSN cheaply.
//
//	magic   u32  'PWAL'
//	bucket  u32
//	lsn     u64
//	rows    u32
//	plen    u32  payload length
//	pcrc    u32  CRC32-C of payload
//	hcrc    u32  CRC32-C of the preceding 28 bytes
const (
	imageMagic      = 0x5057414c // "PWAL"
	imageHeaderSize = 32
)

// Image is one bucket's checkpoint: its tables as of LSN. Replaying the
// bucket's records with larger LSNs on top reproduces its current state.
type Image struct {
	Bucket int
	Rows   int
	LSN    uint64
	Tables map[string]map[string]any
}

// imageName is the image file for a bucket, under the img/ subdirectory.
func imageName(dir string, bucket int) string {
	return filepath.Join(dir, "img", fmt.Sprintf("bucket-%06d.img", bucket))
}

// encodeImage renders an image file.
func encodeImage(img *Image) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img.Tables); err != nil {
		return nil, fmt.Errorf("wal: encoding image for bucket %d: %w", img.Bucket, err)
	}
	data := make([]byte, imageHeaderSize, imageHeaderSize+payload.Len())
	binary.BigEndian.PutUint32(data[0:4], imageMagic)
	binary.BigEndian.PutUint32(data[4:8], uint32(img.Bucket))
	binary.BigEndian.PutUint64(data[8:16], img.LSN)
	binary.BigEndian.PutUint32(data[16:20], uint32(img.Rows))
	binary.BigEndian.PutUint32(data[20:24], uint32(payload.Len()))
	binary.BigEndian.PutUint32(data[24:28], crc32.Checksum(payload.Bytes(), crcTable))
	binary.BigEndian.PutUint32(data[28:32], crc32.Checksum(data[0:28], crcTable))
	return append(data, payload.Bytes()...), nil
}

// decodeImageHeader validates an image file's header and returns its
// metadata without touching the payload.
func decodeImageHeader(data []byte) (bucket int, lsn uint64, rows int, err error) {
	if len(data) < imageHeaderSize {
		return 0, 0, 0, fmt.Errorf("wal: image file is %d bytes, shorter than its header", len(data))
	}
	if binary.BigEndian.Uint32(data[28:32]) != crc32.Checksum(data[0:28], crcTable) {
		return 0, 0, 0, fmt.Errorf("wal: image header fails CRC")
	}
	if binary.BigEndian.Uint32(data[0:4]) != imageMagic {
		return 0, 0, 0, fmt.Errorf("wal: image has bad magic %08x", binary.BigEndian.Uint32(data[0:4]))
	}
	bucket = int(binary.BigEndian.Uint32(data[4:8]))
	lsn = binary.BigEndian.Uint64(data[8:16])
	rows = int(binary.BigEndian.Uint32(data[16:20]))
	plen := int(binary.BigEndian.Uint32(data[20:24]))
	if len(data) != imageHeaderSize+plen {
		return 0, 0, 0, fmt.Errorf("wal: image payload is %d bytes, header says %d", len(data)-imageHeaderSize, plen)
	}
	return bucket, lsn, rows, nil
}

// decodeImage validates and decodes a whole image file.
func decodeImage(data []byte) (*Image, error) {
	bucket, lsn, rows, err := decodeImageHeader(data)
	if err != nil {
		return nil, err
	}
	payload := data[imageHeaderSize:]
	if binary.BigEndian.Uint32(data[24:28]) != crc32.Checksum(payload, crcTable) {
		return nil, fmt.Errorf("wal: image payload for bucket %d fails CRC", bucket)
	}
	img := &Image{Bucket: bucket, LSN: lsn, Rows: rows}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img.Tables); err != nil {
		return nil, fmt.Errorf("wal: decoding image for bucket %d: %w", bucket, err)
	}
	return img, nil
}
