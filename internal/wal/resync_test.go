package wal

import (
	"errors"
	"testing"
	"time"
)

// appendN appends n command records to the bucket, continuing its LSN
// sequence from *lsn.
func appendN(t *testing.T, l *Log, bucket int, lsn *uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		*lsn++
		if err := l.Append(Record{Bucket: bucket, LSN: *lsn, Txn: "put", Key: "k", Args: int(*lsn)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

// shipTo consumes n records from the start of the retained log and returns
// the cursor after them.
func shipTo(t *testing.T, l *Log, n int) ShipCursor {
	t.Helper()
	recs, cur, err := l.ReadShip(ShipCursor{}, n)
	if err != nil {
		t.Fatalf("ReadShip: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("ReadShip returned %d records, want %d", len(recs), n)
	}
	return cur
}

func TestTruncateToMidSegment(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 512) // small segments force rotations
	var lsn uint64
	appendN(t, l, 3, &lsn, 40)
	cur := shipTo(t, l, 25) // divergence point: records 26..40 are unshipped

	res, err := l.TruncateTo(cur)
	if err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if res.DiscardedRecords != 15 {
		t.Fatalf("discarded %d records, want 15", res.DiscardedRecords)
	}
	if head, ok := res.Heads[3]; !ok || head != 25 {
		t.Fatalf("new head for bucket 3 = %d (present %v), want 25", head, ok)
	}
	tails, err := l.LoadTails([]int{3})
	if err != nil {
		t.Fatalf("LoadTails: %v", err)
	}
	if got := len(tails[3]); got != 25 {
		t.Fatalf("retained tail holds %d records, want 25", got)
	}
	for i, r := range tails[3] {
		if r.LSN != uint64(i+1) {
			t.Fatalf("tail record %d has lsn %d", i, r.LSN)
		}
	}
	// Shipping from the divergence cursor finds nothing until new appends.
	if recs, _, err := l.ReadShip(cur, 10); err != nil || len(recs) != 0 {
		t.Fatalf("ReadShip after truncation: %d records, err %v", len(recs), err)
	}
	// The log accepts appends continuing the truncated sequence.
	lsn = 25
	appendN(t, l, 3, &lsn, 5)
	if recs, _, err := l.ReadShip(cur, 10); err != nil || len(recs) != 5 {
		t.Fatalf("ReadShip of post-truncation appends: %d records, err %v", len(recs), err)
	}

	// A reopen must decode the truncated layout cleanly and see exactly the
	// retained history.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openTest(t, fs, 512)
	defer l2.Close()
	br := rec.Buckets[3]
	if br == nil || br.Head != 30 || len(br.Tail) != 30 {
		t.Fatalf("reopen recovered %+v, want head 30 with 30 tail records", br)
	}
}

func TestTruncateToZeroCursor(t *testing.T) {
	l, _ := openTest(t, NewMemFS(1), 512)
	defer l.Close()
	var lsn uint64
	appendN(t, l, 0, &lsn, 10)
	res, err := l.TruncateTo(ShipCursor{})
	if err != nil {
		t.Fatalf("TruncateTo zero: %v", err)
	}
	if res.DiscardedRecords != 10 || res.Heads[0] != 0 {
		t.Fatalf("zero-cursor truncation: %+v", res)
	}
	tails, err := l.LoadTails([]int{0})
	if err != nil || len(tails[0]) != 0 {
		t.Fatalf("retained tail %d records, err %v", len(tails[0]), err)
	}
}

func TestTruncateToRefusals(t *testing.T) {
	// An image whose LSN reaches into the discarded suffix forces a resync.
	l, _ := openTest(t, NewMemFS(1), DefaultSegmentBytes)
	var lsn uint64
	appendN(t, l, 2, &lsn, 20)
	cur := shipTo(t, l, 10)
	if err := l.WriteImage(&Image{Bucket: 2, LSN: 15}); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	if _, err := l.TruncateTo(cur); !errors.Is(err, ErrNeedResync) {
		t.Fatalf("image beyond cursor: err %v, want ErrNeedResync", err)
	}
	l.Close()

	// A plan record in the suffix forces a resync too: the manifest and the
	// in-memory plan would disagree with the truncated log.
	l2, _ := openTest(t, NewMemFS(2), DefaultSegmentBytes)
	lsn = 0
	appendN(t, l2, 1, &lsn, 5)
	cur = shipTo(t, l2, 5)
	plan := make([]int32, testGeometry().Buckets)
	if err := l2.LogPlan(plan, 2); err != nil {
		t.Fatalf("LogPlan: %v", err)
	}
	if _, err := l2.TruncateTo(cur); !errors.Is(err, ErrNeedResync) {
		t.Fatalf("plan record in suffix: err %v, want ErrNeedResync", err)
	}
	l2.Close()

	// A cursor below retention (its segment compacted) forces a resync.
	l3, _ := openTest(t, NewMemFS(3), 256)
	lsn = 0
	appendN(t, l3, 4, &lsn, 30)
	cur = shipTo(t, l3, 5)
	if err := l3.WriteImage(&Image{Bucket: 4, LSN: 30}); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	if err := l3.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := l3.TruncateTo(cur); !errors.Is(err, ErrNeedResync) {
		t.Fatalf("cursor below retention: err %v, want ErrNeedResync", err)
	}
	l3.Close()
}

func TestSyncCommitBarrier(t *testing.T) {
	l, _ := openTest(t, NewMemFS(1), DefaultSegmentBytes)
	defer l.Close()
	l.SetSyncCommit(true)

	done := make(chan error, 1)
	go func() {
		done <- l.Append(Record{Bucket: 1, LSN: 1, Txn: "put", Key: "k"})
	}()
	select {
	case err := <-done:
		t.Fatalf("append returned %v before the remote ack", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The record is locally durable while its submitter waits.
	if end := l.ShipEnd(); end.Rec != 1 {
		t.Fatalf("durable end %+v, want 1 record", end)
	}
	l.SetRemoteAck(l.ShipEnd())
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acked append failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append still blocked after the remote ack")
	}

	// Disarming releases waiters without an ack.
	go func() {
		done <- l.Append(Record{Bucket: 1, LSN: 2, Txn: "put", Key: "k"})
	}()
	select {
	case err := <-done:
		t.Fatalf("append returned %v before disarm", err)
	case <-time.After(50 * time.Millisecond):
	}
	l.SetSyncCommit(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append after disarm failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append still blocked after disarm")
	}
}

func TestSyncCommitStaleLifeAckCoversNothing(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	var lsn uint64
	appendN(t, l, 0, &lsn, 3)
	old := l.ShipEnd()
	l.Close()

	// A new life: an ack cursor into the previous life's segments must not
	// release records appended in this one.
	l2, _ := openTest(t, fs, DefaultSegmentBytes)
	defer l2.Close()
	l2.SetSyncCommit(true)
	done := make(chan error, 1)
	go func() {
		done <- l2.Append(Record{Bucket: 0, LSN: 4, Txn: "put", Key: "k"})
	}()
	l2.SetRemoteAck(old)
	select {
	case err := <-done:
		t.Fatalf("append released (%v) by a previous life's ack", err)
	case <-time.After(100 * time.Millisecond):
	}
	l2.SetRemoteAck(l2.ShipEnd())
	if err := <-done; err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestReset(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 512)
	var lsn uint64
	appendN(t, l, 5, &lsn, 30)
	if err := l.WriteImage(&Image{Bucket: 5, LSN: 10}); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	if err := l.SetEpoch(7); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.DiskBytes() != 0 {
		t.Fatalf("DiskBytes %d after reset", l.DiskBytes())
	}
	tails, err := l.LoadTails([]int{5})
	if err != nil || len(tails[5]) != 0 {
		t.Fatalf("tails after reset: %d records, err %v", len(tails[5]), err)
	}
	if _, ok, err := l.LoadImage(5); ok || err != nil {
		t.Fatalf("image survived reset (ok %v, err %v)", ok, err)
	}
	// Identity survives: the epoch is still fenced after a reopen.
	lsn = 0
	appendN(t, l, 5, &lsn, 2)
	l.Close()
	l2, rec := openTest(t, fs, 512)
	defer l2.Close()
	if l2.Epoch() != 7 {
		t.Fatalf("epoch %d after reset+reopen, want 7", l2.Epoch())
	}
	if br := rec.Buckets[5]; br == nil || br.Head != 2 || len(br.Tail) != 2 {
		t.Fatalf("post-reset appends recovered as %+v", br)
	}
}
