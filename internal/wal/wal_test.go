package wal

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testGeometry() Geometry {
	return Geometry{Buckets: 64, MaxMachines: 4, PartitionsPerMachine: 2}
}

func openTest(t *testing.T, fs FS, segBytes int64) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(Config{Dir: "data", Geometry: testGeometry(), SegmentBytes: segBytes, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// slowFS adds latency to Sync so concurrent appenders pile up behind the
// batch leader — without it MemFS syncs are instantaneous and group commit
// has nothing to batch.
type slowFS struct {
	FS
	delay time.Duration
}

type slowFile struct {
	File
	delay time.Duration
}

func (s slowFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowFile{f, s.delay}, nil
}

func (f slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestNilArgsRoundTrip pins the codec detail everything else leans on: a
// record whose Args interface is nil (most read-only procedures) must
// round-trip, as must plain ints (the recovery tests' payload type).
func TestNilArgsRoundTrip(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	recs := []Record{
		{Bucket: 1, LSN: 1, Txn: "get", Key: "a", Args: nil},
		{Bucket: 1, LSN: 2, Txn: "put", Key: "a", Args: 42},
		{Bucket: 2, LSN: 1, Txn: "put", Key: "b", Args: "s"},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openTest(t, fs, DefaultSegmentBytes)
	defer l2.Close()
	got := append(append([]Record{}, rec.Buckets[1].Tail...), rec.Buckets[2].Tail...)
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r != w {
			t.Fatalf("record %d: got %+v want %+v", i, r, w)
		}
	}
	if v, ok := got[1].Args.(int); !ok || v != 42 {
		t.Fatalf("Args lost concrete type: %T %v", got[1].Args, got[1].Args)
	}
}

// TestRoundTripProperty is the WAL round-trip property test: random command
// batches appended with group commit, reopened, and the replay must equal
// the append order exactly — everything Append acknowledged is durable, in
// order, with nothing invented.
func TestRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := NewMemFS(seed)
			// Small segments force rotations mid-run; the sync latency makes
			// appenders share batches.
			l, _ := openTest(t, slowFS{fs, 200 * time.Microsecond}, 4<<10)

			g := testGeometry()
			var mu sync.Mutex
			appended := make(map[int][]Record) // acked records per bucket

			// Buckets shard across workers (like partitions across serial
			// executors), so per-bucket appends stay in LSN order while
			// workers race each other into shared sync batches.
			workers := 8
			perWorker := 50
			plans := make([][]Record, workers)
			heads := make([]uint64, g.Buckets)
			for w := 0; w < workers; w++ {
				for i := 0; i < perWorker; i++ {
					b := w + workers*rng.Intn(g.Buckets/workers)
					heads[b]++
					plans[w] = append(plans[w], Record{
						Bucket: b, LSN: heads[b],
						Txn:  []string{"put", "get", "del"}[rng.Intn(3)],
						Key:  fmt.Sprintf("k%d", rng.Intn(100)),
						Args: map[bool]any{true: rng.Intn(1000), false: nil}[rng.Intn(2) == 0],
					})
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(plan []Record) {
					defer wg.Done()
					for _, r := range plan {
						if err := l.Append(r); err != nil {
							t.Errorf("Append: %v", err)
							return
						}
						mu.Lock()
						appended[r.Bucket] = append(appended[r.Bucket], r)
						mu.Unlock()
					}
				}(plans[w])
			}
			wg.Wait()
			st := l.Stats()
			if st.Appends != int64(workers*perWorker) {
				t.Fatalf("Appends = %d, want %d", st.Appends, workers*perWorker)
			}
			// Group commit must batch: with 8 concurrent appenders, syncs
			// should be well under one per record.
			if st.Syncs >= st.Appends {
				t.Errorf("group commit ineffective: %d syncs for %d appends", st.Syncs, st.Appends)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			l2, rec := openTest(t, fs, 4<<10)
			defer l2.Close()
			for b, want := range appended {
				br := rec.Buckets[b]
				if br == nil {
					t.Fatalf("bucket %d: no recovered state, want %d records", b, len(want))
				}
				// Per-bucket LSN order, not global append order: buckets are
				// independent logs multiplexed into shared segments.
				byLSN := append([]Record{}, want...)
				for i := 1; i < len(byLSN); i++ {
					if byLSN[i].LSN < byLSN[i-1].LSN {
						t.Fatalf("bucket %d: test bug, LSNs out of order", b)
					}
				}
				if len(br.Tail) != len(byLSN) {
					t.Fatalf("bucket %d: recovered %d records, want %d", b, len(br.Tail), len(byLSN))
				}
				for i := range byLSN {
					if br.Tail[i] != byLSN[i] {
						t.Fatalf("bucket %d record %d: got %+v want %+v", b, i, br.Tail[i], byLSN[i])
					}
				}
			}
			if rec.TornBytes != 0 {
				t.Errorf("clean close recovered TornBytes = %d", rec.TornBytes)
			}
		})
	}
}

// TestPlanRecovery checks plan records survive reopen and that the newest
// one wins over the manifest.
func TestPlanRecovery(t *testing.T) {
	fs := NewMemFS(1)
	l, rec := openTest(t, fs, DefaultSegmentBytes)
	if rec.Existing {
		t.Fatal("fresh dir reported Existing")
	}
	g := testGeometry()
	plan1 := make([]int32, g.Buckets)
	plan2 := make([]int32, g.Buckets)
	for b := range plan2 {
		plan2[b] = int32(b % 4)
	}
	if err := l.LogPlan(plan1, 1); err != nil {
		t.Fatal(err)
	}
	// Checkpoint folds plan1 into the manifest.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.LogPlan(plan2, 2); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec2 := openTest(t, fs, DefaultSegmentBytes)
	defer l2.Close()
	if !rec2.Existing {
		t.Fatal("reopen did not report Existing")
	}
	if rec2.PlanSeq != 2 || rec2.Active != 2 {
		t.Fatalf("recovered PlanSeq=%d Active=%d, want 2/2", rec2.PlanSeq, rec2.Active)
	}
	for b, p := range rec2.Plan {
		if p != plan2[b] {
			t.Fatalf("recovered plan[%d] = %d, want %d", b, p, plan2[b])
		}
	}
}

// TestGeometryMismatchRefusesOpen pins the manifest identity check.
func TestGeometryMismatchRefusesOpen(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	l.Close()
	g := testGeometry()
	g.Buckets++
	if _, _, err := Open(Config{Dir: "data", Geometry: g, FS: fs}); err == nil {
		t.Fatal("Open with mismatched geometry succeeded")
	}
}

// TestImageRoundTrip checks checkpoint images survive the disk format.
func TestImageRoundTrip(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	defer l.Close()
	img := &Image{
		Bucket: 7, Rows: 2, LSN: 42,
		Tables: map[string]map[string]any{
			"T": {"a": 1, "b": "x"},
		},
	}
	if err := l.WriteImage(img); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.LoadImage(7)
	if err != nil || !ok {
		t.Fatalf("LoadImage: ok=%v err=%v", ok, err)
	}
	if got.LSN != 42 || got.Rows != 2 {
		t.Fatalf("image header: %+v", got)
	}
	if v := got.Tables["T"]["a"]; v != 1 {
		t.Fatalf("Tables[T][a] = %T %v, want int 1", v, v)
	}
	if _, ok, err := l.LoadImage(8); err != nil || ok {
		t.Fatalf("LoadImage(missing): ok=%v err=%v", ok, err)
	}
}

// TestCompaction checks that checkpoint images plus a manifest rewrite make
// sealed segments deletable, and that recovery after compaction still sees
// a consistent view.
func TestCompaction(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, 2<<10) // tiny segments: force many rotations
	g := testGeometry()
	heads := make([]uint64, g.Buckets)
	for i := 0; i < 500; i++ {
		b := i % g.Buckets
		heads[b]++
		if err := l.Append(Record{Bucket: b, LSN: heads[b], Txn: "put", Key: "k", Args: i}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("test needs rotations; none happened")
	}
	// Checkpoint every bucket at its head: all sealed segments become
	// redundant.
	for b := 0; b < g.Buckets; b++ {
		if heads[b] == 0 {
			continue
		}
		err := l.WriteImage(&Image{
			Bucket: b, LSN: heads[b], Rows: 1,
			Tables: map[string]map[string]any{"T": {"k": b}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	before := l.DiskBytes()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.CompactedSegments == 0 {
		t.Fatal("checkpoint compacted nothing")
	}
	if after := l.DiskBytes(); after >= before {
		t.Fatalf("DiskBytes %d -> %d; compaction freed nothing", before, after)
	}
	// Append a post-checkpoint record, reopen, and verify exactly the
	// tail beyond each base comes back.
	heads[3]++
	if err := l.Append(Record{Bucket: 3, LSN: heads[3], Txn: "put", Key: "tail", Args: 999}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec := openTest(t, fs, 2<<10)
	defer l2.Close()
	br := rec.Buckets[3]
	if br == nil || !br.HasImage || br.Base != heads[3]-1 {
		t.Fatalf("bucket 3 recovery: %+v", br)
	}
	if len(br.Tail) != 1 || br.Tail[0].Key != "tail" {
		t.Fatalf("bucket 3 tail: %+v", br.Tail)
	}
}

// TestLoadTails checks the authoritative disk read returns exactly the
// records beyond each bucket's base.
func TestLoadTails(t *testing.T) {
	fs := NewMemFS(1)
	l, _ := openTest(t, fs, DefaultSegmentBytes)
	defer l.Close()
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if err := l.Append(Record{Bucket: 5, LSN: lsn, Txn: "put", Key: "k", Args: int(lsn)}); err != nil {
			t.Fatal(err)
		}
	}
	err := l.WriteImage(&Image{Bucket: 5, LSN: 6, Rows: 1, Tables: map[string]map[string]any{"T": {"k": 6}}})
	if err != nil {
		t.Fatal(err)
	}
	tails, err := l.LoadTails([]int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tails[9]) != 0 {
		t.Fatalf("bucket 9 tail: %+v", tails[9])
	}
	tail := tails[5]
	if len(tail) != 4 {
		t.Fatalf("bucket 5 tail has %d records, want 4: %+v", len(tail), tail)
	}
	for i, r := range tail {
		if want := uint64(7 + i); r.LSN != want {
			t.Fatalf("tail[%d].LSN = %d, want %d", i, r.LSN, want)
		}
	}
}
