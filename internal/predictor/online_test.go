package predictor

import (
	"errors"
	"sync"
	"testing"
)

func TestOnlineRefitsAndForecasts(t *testing.T) {
	const period = 24
	trace := sineTrace(nil, period, period*10, 10, 100, 0)
	o := NewOnline(NewSPAR(period, 2, 4), 0, 0)
	if o.Ready(1) {
		t.Error("Ready before any data")
	}
	if err := o.ObserveAll(trace[:period*8]); err != nil {
		t.Fatal(err)
	}
	if !o.Ready(1) {
		t.Error("not Ready after seeding")
	}
	out, err := o.Forecast(period)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != period {
		t.Fatalf("forecast length %d, want %d", len(out), period)
	}
	// Periodic signal: forecast should match the next period closely.
	for i, v := range out {
		want := trace[period*8+i]
		if d := v - want; d > 1e-6+1e-6*want || d < -(1e-6+1e-6*want) {
			t.Fatalf("forecast[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestOnlinePeriodicRefit(t *testing.T) {
	const period = 12
	trace := sineTrace(nil, period, period*20, 10, 100, 0)
	o := NewOnline(NewSPAR(period, 2, 2), period*6, 0)
	for i, v := range trace[:period*6] {
		if err := o.Observe(v); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !o.Ready(1) {
		t.Error("refit should have happened after refitEvery observations")
	}
}

func TestOnlineMaxHistoryTrims(t *testing.T) {
	o := NewOnline(NewOracle([]float64{1}), 0, 5)
	for i := 0; i < 10; i++ {
		if err := o.Observe(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.HistoryLen(); got != 5 {
		t.Errorf("history length = %d, want 5", got)
	}
}

func TestOnlineForecastUnfitted(t *testing.T) {
	o := NewOnline(NewSPAR(10, 2, 2), 0, 0)
	if _, err := o.Forecast(5); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
}

func TestOnlineConcurrentAccess(t *testing.T) {
	const period = 16
	trace := sineTrace(nil, period, period*12, 10, 100, 0)
	o := NewOnline(NewSPAR(period, 2, 2), 0, 0)
	if err := o.ObserveAll(trace); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = o.Observe(50)
				_, _ = o.Forecast(4)
				_ = o.Ready(4)
			}
		}()
	}
	wg.Wait()
}
