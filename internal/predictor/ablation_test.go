package predictor

import (
	"math"
	"math/rand"
	"testing"

	"pstore/internal/timeseries"
)

// TestSPAROffsetTermAblation isolates the value of SPAR's second term
// (Equation 8's b_j recent-offset coefficients): on a load with persistent
// transient deviations from the daily pattern, full SPAR must beat the
// pure-periodic model (m = 0), because only the offset term can see that
// today is running hotter or colder than usual.
func TestSPAROffsetTermAblation(t *testing.T) {
	const period = 96
	rng := rand.New(rand.NewSource(23))
	n := period * 24
	trace := make([]float64, n)
	// Daily sine plus slowly-wandering day-level deviation (campaigns,
	// seasonality) that persists for many slots.
	dayShift := 0.0
	for i := range trace {
		if i%period == 0 {
			dayShift = 0.85 + 0.3*rng.Float64()
		}
		base := 200 + 1800*0.5*(1-math.Cos(2*math.Pi*float64(i%period)/period))
		trace[i] = base * dayShift * (1 + 0.02*rng.NormFloat64())
	}
	train := trace[:period*16]

	tau := 4
	full := NewSPAR(period, 7, 12)
	if err := full.FitHorizons(train, tau); err != nil {
		t.Fatal(err)
	}
	periodicOnly := NewSPAR(period, 7, 0)
	if err := periodicOnly.FitHorizons(train, tau); err != nil {
		t.Fatal(err)
	}

	mre := func(p Predictor) float64 {
		var actual, pred []float64
		for now := period * 17; now+tau < n; now += 3 {
			v, err := p.Forecast(trace[:now+1], tau)
			if err != nil {
				t.Fatal(err)
			}
			pred = append(pred, v)
			actual = append(actual, trace[now+tau])
		}
		m, err := timeseries.MRE(actual, pred)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fullMRE := mre(full)
	periodicMRE := mre(periodicOnly)
	if fullMRE >= periodicMRE {
		t.Errorf("full SPAR MRE %.3f not below periodic-only %.3f: the offset term buys nothing",
			fullMRE, periodicMRE)
	}
	if periodicMRE < 0.02 {
		t.Errorf("periodic-only MRE %.3f suspiciously low; the trace should have transient structure", periodicMRE)
	}
}
