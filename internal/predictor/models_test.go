package predictor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pstore/internal/timeseries"
)

func TestARRecoversProcess(t *testing.T) {
	// y(t) = 5 + 0.8*y(t-1) + e(t); phi must come out near 0.8.
	rng := rand.New(rand.NewSource(11))
	n := 5000
	y := make([]float64, n)
	y[0] = 25
	for i := 1; i < n; i++ {
		y[i] = 5 + 0.8*y[i-1] + rng.NormFloat64()
	}
	ar := NewAR(1)
	if err := ar.Fit(y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ar.phi[0]-0.8) > 0.03 {
		t.Errorf("phi = %v, want ~0.8", ar.phi[0])
	}
	if math.Abs(ar.c-5) > 0.8 {
		t.Errorf("c = %v, want ~5", ar.c)
	}
	// Long-horizon forecast converges to the process mean 25.
	v, err := ar.Forecast(y, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-25) > 1.5 {
		t.Errorf("long-horizon AR forecast %v, want ~25", v)
	}
}

func TestARErrors(t *testing.T) {
	if err := NewAR(0).Fit(make([]float64, 10)); err == nil {
		t.Error("order 0 should fail")
	}
	if err := NewAR(4).Fit(make([]float64, 5)); !errors.Is(err, ErrShortHistory) {
		t.Error("short train should fail with ErrShortHistory")
	}
	ar := NewAR(2)
	if _, err := ar.Forecast([]float64{1, 2, 3}, 1); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted forecast should fail")
	}
	trace := sineTrace(nil, 8, 100, 10, 50, 0)
	if err := ar.Fit(trace); err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Forecast([]float64{1}, 1); !errors.Is(err, ErrShortHistory) {
		t.Error("short history should fail")
	}
	if _, err := ar.Forecast(trace, 0); err == nil {
		t.Error("tau=0 should fail")
	}
}

func TestARMAOnARMAProcess(t *testing.T) {
	// y(t) = 2 + 0.7*y(t-1) + e(t) + 0.5*e(t-1).
	rng := rand.New(rand.NewSource(21))
	n := 8000
	y := make([]float64, n)
	prevE := 0.0
	for i := 1; i < n; i++ {
		e := rng.NormFloat64()
		y[i] = 2 + 0.7*y[i-1] + e + 0.5*prevE
		prevE = e
	}
	m := NewARMA(1, 1)
	if err := m.Fit(y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.phi[0]-0.7) > 0.05 {
		t.Errorf("phi = %v, want ~0.7", m.phi[0])
	}
	if math.Abs(m.theta[0]-0.5) > 0.1 {
		t.Errorf("theta = %v, want ~0.5", m.theta[0])
	}
	// One-step forecasts should beat a mean predictor on this process.
	var se, seMean float64
	mean := 2.0 / (1 - 0.7)
	cnt := 0
	for now := n - 500; now < n-1; now++ {
		v, err := m.Forecast(y[:now+1], 1)
		if err != nil {
			t.Fatal(err)
		}
		se += (v - y[now+1]) * (v - y[now+1])
		seMean += (mean - y[now+1]) * (mean - y[now+1])
		cnt++
	}
	if se >= seMean {
		t.Errorf("ARMA MSE %v not better than mean-predictor MSE %v", se/float64(cnt), seMean/float64(cnt))
	}
}

func TestARMAErrors(t *testing.T) {
	if err := NewARMA(0, 1).Fit(make([]float64, 100)); err == nil {
		t.Error("p=0 should fail")
	}
	if err := NewARMA(1, 0).Fit(make([]float64, 100)); err == nil {
		t.Error("q=0 should fail")
	}
	m := NewARMA(1, 1)
	if _, err := m.Forecast(make([]float64, 50), 1); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted forecast should fail")
	}
	if err := m.Fit(make([]float64, 6)); err == nil {
		t.Error("short train should fail")
	}
	trace := sineTrace(rand.New(rand.NewSource(1)), 16, 400, 10, 40, 0.05)
	if err := m.Fit(trace); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(trace[:2], 1); !errors.Is(err, ErrShortHistory) {
		t.Error("short history should fail")
	}
	if _, err := m.Forecast(trace, 0); err == nil {
		t.Error("tau=0 should fail")
	}
}

func TestNaivePeriodicExact(t *testing.T) {
	const period = 12
	trace := sineTrace(nil, period, period*6, 10, 100, 0)
	p := NewNaivePeriodic(period, 3)
	if err := p.Fit(nil); err != nil {
		t.Fatal(err)
	}
	v, err := p.Forecast(trace[:period*5], 4)
	if err != nil {
		t.Fatal(err)
	}
	want := trace[period*5-1+4]
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("NaivePeriodic forecast %v, want %v", v, want)
	}
	if _, err := p.Forecast(trace[:period], period+1); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short history err = %v", err)
	}
	q := NewNaivePeriodic(0, 1)
	if err := q.Fit(nil); err == nil {
		t.Error("period 0 should fail")
	}
	r := NewNaivePeriodic(5, 2)
	if _, err := r.Forecast(trace, 1); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted NaivePeriodic should fail")
	}
}

func TestOracle(t *testing.T) {
	trace := []float64{10, 20, 30, 40, 50}
	o := NewOracle(trace)
	v, err := o.Forecast(trace[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 40 {
		t.Errorf("oracle forecast = %v, want 40", v)
	}
	// Beyond the trace it holds the last value.
	v, err = o.Forecast(trace, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 50 {
		t.Errorf("oracle beyond trace = %v, want 50", v)
	}
	if _, err := o.Forecast(trace, 0); err == nil {
		t.Error("tau=0 should fail")
	}
	if _, err := NewOracle(nil).Forecast(nil, 1); !errors.Is(err, ErrNotFitted) {
		t.Error("empty oracle should fail")
	}
}

func TestForecastSeries(t *testing.T) {
	o := NewOracle([]float64{10, -5, 30})
	out, err := ForecastSeries(o, []float64{10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if out[0] != 0 {
		t.Errorf("negative forecast should clamp to 0, got %v", out[0])
	}
	if out[1] != 30 {
		t.Errorf("out[1] = %v, want 30", out[1])
	}
	if _, err := ForecastSeries(o, nil, 0); err == nil {
		t.Error("horizon 0 should fail")
	}
}

func TestInflate(t *testing.T) {
	out := Inflate([]float64{100, 200}, 0.15)
	if math.Abs(out[0]-115) > 1e-9 || math.Abs(out[1]-230) > 1e-9 {
		t.Errorf("Inflate = %v", out)
	}
}

// TestSPARBeatsARLongHorizon reproduces the Section 5 ordering on a periodic
// load: at long forecast horizons SPAR stays locked to the diurnal pattern
// while an iterated AR model drifts toward the mean.
func TestSPARBeatsARLongHorizon(t *testing.T) {
	const period = 96
	rng := rand.New(rand.NewSource(17))
	trace := sineTrace(rng, period, period*20, 200, 1800, 0.04)
	train := trace[:period*14]

	spar := NewSPAR(period, 7, 10)
	tau := period / 4 // quarter-day ahead
	if err := spar.FitHorizons(train, tau); err != nil {
		t.Fatal(err)
	}
	ar := NewAR(10)
	if err := ar.Fit(train); err != nil {
		t.Fatal(err)
	}

	var actual, sparPred, arPred []float64
	for now := period * 15; now < period*20-tau; now += 5 {
		sv, err := spar.Forecast(trace[:now+1], tau)
		if err != nil {
			t.Fatal(err)
		}
		av, err := ar.Forecast(trace[:now+1], tau)
		if err != nil {
			t.Fatal(err)
		}
		sparPred = append(sparPred, sv)
		arPred = append(arPred, av)
		actual = append(actual, trace[now+tau])
	}
	sparMRE, _ := timeseries.MRE(actual, sparPred)
	arMRE, _ := timeseries.MRE(actual, arPred)
	if sparMRE >= arMRE {
		t.Errorf("SPAR MRE %.3f should beat AR MRE %.3f at tau=%d", sparMRE, arMRE, tau)
	}
}
