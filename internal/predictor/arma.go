package predictor

import (
	"fmt"

	"pstore/internal/timeseries"
)

// ARMA is an auto-regressive moving-average model of order (p, q):
//
//	y(t+1) = c + sum_{i=1..p} phi_i*y(t+1-i) + sum_{j=1..q} theta_j*e(t+1-j)
//
// fitted with the two-stage Hannan-Rissanen procedure: first a long AR model
// estimates the innovation sequence e(t), then y is regressed on its own
// lags and the estimated innovation lags. Forecasts iterate the one-step
// model with future innovations set to their expectation, zero. ARMA is the
// second baseline of Section 5 (MRE 12.2% on B2W at tau = 60 minutes).
type ARMA struct {
	// P is the number of auto-regressive lags.
	P int
	// Q is the number of moving-average lags.
	Q int

	c      float64
	phi    []float64
	theta  []float64
	longAR *AR // used to reconstruct innovations from history at forecast time
}

// NewARMA returns an unfitted ARMA(p, q) model.
func NewARMA(p, q int) *ARMA { return &ARMA{P: p, Q: q} }

// Name implements Predictor.
func (m *ARMA) Name() string { return fmt.Sprintf("ARMA(%d,%d)", m.P, m.Q) }

// MinHistory implements Predictor. Reconstructing q innovations requires the
// long AR model's lags behind each of them.
func (m *ARMA) MinHistory(int) int { return m.P + m.Q + m.longOrder() }

func (m *ARMA) longOrder() int {
	n := 2 * (m.P + m.Q)
	if n < 4 {
		n = 4
	}
	return n
}

// Fit implements Predictor using the Hannan-Rissanen two-stage estimator.
func (m *ARMA) Fit(train []float64) error {
	if m.P < 1 || m.Q < 1 {
		return fmt.Errorf("predictor: ARMA(%d,%d) orders must be at least 1", m.P, m.Q)
	}
	long := NewAR(m.longOrder())
	if err := long.Fit(train); err != nil {
		return fmt.Errorf("ARMA stage 1: %w", err)
	}
	m.longAR = long

	// Stage 1: innovations e(t) = y(t) - AR_long prediction of y(t).
	resid := make([]float64, len(train))
	for t := long.Order; t < len(train); t++ {
		pred, err := long.Forecast(train[:t], 1)
		if err != nil {
			return fmt.Errorf("ARMA stage 1 residuals: %w", err)
		}
		resid[t] = train[t] - pred
	}

	// Stage 2: regress y(t) on p lags of y and q lags of the innovations.
	start := long.Order + m.Q
	if m.P > long.Order {
		start = m.P + m.Q
	}
	var x [][]float64
	var y []float64
	for t := start; t < len(train); t++ {
		row := make([]float64, 1+m.P+m.Q)
		row[0] = 1
		for i := 1; i <= m.P; i++ {
			row[i] = train[t-i]
		}
		for j := 1; j <= m.Q; j++ {
			row[m.P+j] = resid[t-j]
		}
		x = append(x, row)
		y = append(y, train[t])
	}
	if len(x) < 1+m.P+m.Q {
		return fmt.Errorf("%w: ARMA(%d,%d) needs more than %d usable rows",
			ErrShortHistory, m.P, m.Q, len(x))
	}
	w, err := timeseries.LeastSquares(x, y)
	if err != nil {
		return fmt.Errorf("ARMA stage 2: %w", err)
	}
	m.c = w[0]
	m.phi = w[1 : 1+m.P]
	m.theta = w[1+m.P:]
	return nil
}

// Forecast implements Predictor. It reconstructs recent innovations with the
// stage-1 AR model, then iterates the ARMA recursion with future
// innovations set to zero.
func (m *ARMA) Forecast(history []float64, tau int) (float64, error) {
	if m.phi == nil {
		return 0, ErrNotFitted
	}
	if tau < 1 {
		return 0, fmt.Errorf("predictor: tau %d must be at least 1", tau)
	}
	if len(history) < m.MinHistory(tau) {
		return 0, fmt.Errorf("%w: ARMA(%d,%d) needs %d slots, got %d",
			ErrShortHistory, m.P, m.Q, m.MinHistory(tau), len(history))
	}
	// Reconstruct the last q innovations; innov[0] is the most recent.
	innov := make([]float64, m.Q)
	for j := 0; j < m.Q; j++ {
		t := len(history) - 1 - j
		pred, err := m.longAR.Forecast(history[:t], 1)
		if err != nil {
			return 0, fmt.Errorf("ARMA innovations: %w", err)
		}
		innov[j] = history[t] - pred
	}
	lags := make([]float64, m.P)
	for i := 0; i < m.P; i++ {
		lags[i] = history[len(history)-1-i]
	}
	var v float64
	for step := 0; step < tau; step++ {
		v = m.c
		for i, p := range m.phi {
			v += p * lags[i]
		}
		for j, th := range m.theta {
			v += th * innov[j]
		}
		copy(lags[1:], lags)
		lags[0] = v
		copy(innov[1:], innov)
		innov[0] = 0 // expectation of a future innovation
	}
	return v, nil
}
