// Package predictor implements the load-forecasting models from Section 5
// of the P-Store paper: Sparse Periodic Auto-Regression (SPAR, Equation 8),
// plus the AR and ARMA baselines the paper compares against, a naive
// periodic-mean model, and an oracle that replays the true future load.
//
// All models operate on uniformly sampled load series (requests per slot)
// and forecast tau slots ahead of the end of an observed history, exactly as
// the paper's Predictor component does for P-Store's Predictive Controller.
package predictor

import (
	"errors"
	"fmt"
)

// Predictor forecasts future load from an observed history.
type Predictor interface {
	// Name identifies the model (used in experiment output).
	Name() string
	// Fit estimates the model parameters from a training series of load
	// measurements, one per slot.
	Fit(train []float64) error
	// Forecast predicts the load tau slots after the last history value,
	// i.e. the value of slot len(history)-1+tau. tau must be at least 1.
	Forecast(history []float64, tau int) (float64, error)
	// MinHistory reports the number of trailing history slots the model
	// needs to produce a forecast with the given horizon.
	MinHistory(tau int) int
}

// ErrNotFitted is returned when Forecast is called before a successful Fit.
var ErrNotFitted = errors.New("predictor: model not fitted")

// ErrShortHistory is returned when the provided history does not cover the
// lags the model needs.
var ErrShortHistory = errors.New("predictor: history too short")

// ForecastSeries predicts every slot from 1 to horizon slots ahead of the
// end of history using p. It is the shape consumed by the planner, which
// needs a full time-series array of predicted load L.
func ForecastSeries(p Predictor, history []float64, horizon int) ([]float64, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("predictor: horizon %d must be at least 1", horizon)
	}
	out := make([]float64, horizon)
	for tau := 1; tau <= horizon; tau++ {
		v, err := p.Forecast(history, tau)
		if err != nil {
			return nil, fmt.Errorf("forecasting %d slots ahead: %w", tau, err)
		}
		if v < 0 {
			v = 0 // load cannot be negative
		}
		out[tau-1] = v
	}
	return out, nil
}

// Inflate scales every prediction up by factor (e.g. 0.15 for the paper's
// 15% inflation used to absorb prediction error) and returns a new slice.
func Inflate(pred []float64, factor float64) []float64 {
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = v * (1 + factor)
	}
	return out
}
