package predictor

import (
	"fmt"
	"sync"
)

// Online wraps a Predictor with the active-learning behaviour of Section 6:
// it accumulates load measurements as they arrive, refits the model
// periodically (the paper found weekly refits sufficient), and serves
// forecast series for the Predictive Controller.
//
// Online is safe for concurrent use.
type Online struct {
	mu sync.Mutex

	model Predictor
	// refitEvery is the number of new observations between refits; zero
	// disables automatic refitting.
	refitEvery int
	// maxHistory bounds the retained history; zero keeps everything.
	maxHistory int

	history    []float64
	sinceRefit int
	fitted     bool
}

// NewOnline wraps model for online use. refitEvery sets how many new
// observations trigger a refit (0 disables), maxHistory bounds the retained
// buffer (0 keeps all observations).
func NewOnline(model Predictor, refitEvery, maxHistory int) *Online {
	return &Online{model: model, refitEvery: refitEvery, maxHistory: maxHistory}
}

// Observe appends one load measurement and refits the model if due. The
// first refit happens as soon as refitEvery observations have accumulated.
func (o *Online) Observe(v float64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.history = append(o.history, v)
	if o.maxHistory > 0 && len(o.history) > o.maxHistory {
		o.history = append(o.history[:0:0], o.history[len(o.history)-o.maxHistory:]...)
	}
	o.sinceRefit++
	if o.refitEvery > 0 && o.sinceRefit >= o.refitEvery {
		if err := o.refitLocked(); err != nil {
			return err
		}
	}
	return nil
}

// ObserveAll appends a batch of measurements without triggering refits,
// then refits once. Use it to seed the model with historical training data.
func (o *Online) ObserveAll(vs []float64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.history = append(o.history, vs...)
	if o.maxHistory > 0 && len(o.history) > o.maxHistory {
		o.history = append(o.history[:0:0], o.history[len(o.history)-o.maxHistory:]...)
	}
	return o.refitLocked()
}

func (o *Online) refitLocked() error {
	if err := o.model.Fit(o.history); err != nil {
		return fmt.Errorf("online refit: %w", err)
	}
	o.fitted = true
	o.sinceRefit = 0
	return nil
}

// Ready reports whether the model has been fitted and the history is long
// enough to forecast the given horizon.
func (o *Online) Ready(tau int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fitted && len(o.history) >= o.model.MinHistory(tau)
}

// Forecast returns predictions for 1..horizon slots ahead of the last
// observation.
func (o *Online) Forecast(horizon int) ([]float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.fitted {
		return nil, ErrNotFitted
	}
	return ForecastSeries(o.model, o.history, horizon)
}

// HistoryLen reports the number of retained observations.
func (o *Online) HistoryLen() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.history)
}
