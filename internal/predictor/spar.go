package predictor

import (
	"fmt"

	"pstore/internal/timeseries"
)

// SPAR implements Sparse Periodic Auto-Regression (Equation 8 of the paper):
//
//	y(t+tau) = sum_{k=1..n} a_k * y(t+tau-k*T) + sum_{j=1..m} b_j * dy(t-j)
//
// where dy(t-j) = y(t-j) - (1/n) * sum_{k=1..n} y(t-j-k*T) is the offset of
// the recent load from the expected load at that time of day. The periodic
// term captures diurnal/weekly patterns; the offset term captures transient
// deviations. The paper uses n=7 previous periods and m=30 recent
// measurements for the per-minute B2W load with period T=1440.
type SPAR struct {
	// Period is T, the number of slots in one period (1440 for per-minute
	// data with a daily period, 24 for hourly data).
	Period int
	// NPeriods is n, the number of previous periods in the periodic term.
	NPeriods int
	// MRecent is m, the number of recent load offsets in the transient term.
	MRecent int

	a []float64 // periodic coefficients a_k, k = 1..n
	b []float64 // recent-offset coefficients b_j, j = 1..m
}

// NewSPAR returns an unfitted SPAR model. See the field documentation for
// the meaning of the parameters; the paper's defaults for per-minute retail
// load are NewSPAR(1440, 7, 30).
func NewSPAR(period, nPeriods, mRecent int) *SPAR {
	return &SPAR{Period: period, NPeriods: nPeriods, MRecent: mRecent}
}

// Name implements Predictor.
func (s *SPAR) Name() string { return "SPAR" }

// MinHistory implements Predictor. Forecasting tau ahead needs periodic lags
// back to tau - n*T relative to the forecast slot and offset lags back to
// m + n*T relative to the present.
func (s *SPAR) MinHistory(tau int) int {
	periodic := s.NPeriods*s.Period - tau // lag of y(t+tau-nT) behind y(t)
	if periodic < 0 {
		periodic = 0
	}
	offset := 0
	if s.MRecent > 0 {
		offset = s.MRecent + s.NPeriods*s.Period
	}
	if periodic > offset {
		return periodic
	}
	return offset
}

func (s *SPAR) validate() error {
	if s.Period < 1 {
		return fmt.Errorf("predictor: SPAR period %d must be at least 1", s.Period)
	}
	if s.NPeriods < 1 {
		return fmt.Errorf("predictor: SPAR n=%d must be at least 1", s.NPeriods)
	}
	if s.MRecent < 0 {
		return fmt.Errorf("predictor: SPAR m=%d must be non-negative", s.MRecent)
	}
	return nil
}

// offset computes dy(idx) = y(idx) - mean over previous periods, for slot
// idx of series y. The caller guarantees idx - n*Period >= 0.
func (s *SPAR) offset(y []float64, idx int) float64 {
	sum := 0.0
	for k := 1; k <= s.NPeriods; k++ {
		sum += y[idx-k*s.Period]
	}
	return y[idx] - sum/float64(s.NPeriods)
}

// features builds the regression row predicting slot target of y, treating
// slot now as the present (so tau = target - now). Returns nil if any
// required lag falls before the start of y.
func (s *SPAR) features(y []float64, now, target int) []float64 {
	row := make([]float64, 0, s.NPeriods+s.MRecent)
	for k := 1; k <= s.NPeriods; k++ {
		i := target - k*s.Period
		if i < 0 {
			return nil
		}
		row = append(row, y[i])
	}
	for j := 1; j <= s.MRecent; j++ {
		i := now - j
		if i-s.NPeriods*s.Period < 0 {
			return nil
		}
		row = append(row, s.offset(y, i))
	}
	return row
}

// Fit estimates a_k and b_j by linear least squares over all one-step-ahead
// training rows (tau = 1). Use FitHorizons to fit for longer forecasting
// periods, as the paper's evaluation does per value of tau.
func (s *SPAR) Fit(train []float64) error {
	return s.FitHorizons(train, 1)
}

// FitHorizons estimates a_k and b_j by pooled linear least squares over
// training rows for every forecasting period in taus. Equation 8 uses a
// single coefficient set with tau as a free variable, so pooling several
// horizons yields coefficients that stay accurate across the whole
// forecast window the planner consumes.
func (s *SPAR) FitHorizons(train []float64, taus ...int) error {
	if err := s.validate(); err != nil {
		return err
	}
	if len(taus) == 0 {
		return fmt.Errorf("predictor: SPAR FitHorizons needs at least one horizon")
	}
	var x [][]float64
	var yv []float64
	for _, tau := range taus {
		if tau < 1 {
			return fmt.Errorf("predictor: tau %d must be at least 1", tau)
		}
		for target := tau; target < len(train); target++ {
			row := s.features(train, target-tau, target)
			if row == nil {
				continue
			}
			x = append(x, row)
			yv = append(yv, train[target])
		}
	}
	need := s.NPeriods + s.MRecent
	if len(x) < need {
		return fmt.Errorf("%w: SPAR needs at least %d usable rows, got %d (train %d slots, period %d, n %d, m %d)",
			ErrShortHistory, need, len(x), len(train), s.Period, s.NPeriods, s.MRecent)
	}
	w, err := timeseries.LeastSquares(x, yv)
	if err != nil {
		return fmt.Errorf("fitting SPAR: %w", err)
	}
	s.a = w[:s.NPeriods]
	s.b = w[s.NPeriods:]
	return nil
}

// Forecast implements Predictor. history must cover MinHistory(tau) slots.
func (s *SPAR) Forecast(history []float64, tau int) (float64, error) {
	if s.a == nil {
		return 0, ErrNotFitted
	}
	if tau < 1 {
		return 0, fmt.Errorf("predictor: tau %d must be at least 1", tau)
	}
	now := len(history) - 1
	row := s.features(history, now, now+tau)
	if row == nil {
		return 0, fmt.Errorf("%w: SPAR needs %d slots for tau=%d, got %d",
			ErrShortHistory, s.MinHistory(tau), tau, len(history))
	}
	v := 0.0
	for i, f := range row[:s.NPeriods] {
		v += s.a[i] * f
	}
	for j, f := range row[s.NPeriods:] {
		v += s.b[j] * f
	}
	return v, nil
}

// Coefficients returns copies of the fitted periodic (a_k) and offset (b_j)
// coefficients, or nil slices if the model is unfitted.
func (s *SPAR) Coefficients() (a, b []float64) {
	return append([]float64(nil), s.a...), append([]float64(nil), s.b...)
}
