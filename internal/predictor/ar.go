package predictor

import (
	"fmt"

	"pstore/internal/timeseries"
)

// AR is a classic auto-regressive model of order p:
//
//	y(t+1) = c + sum_{i=1..p} phi_i * y(t+1-i)
//
// Multi-step forecasts iterate the one-step model, feeding predictions back
// in as pseudo-observations. The paper uses AR as one of the baselines that
// SPAR outperforms (Section 5: MRE 12.5% for AR vs 10.4% for SPAR on B2W at
// tau = 60 minutes).
type AR struct {
	// Order is p, the number of auto-regressive lags.
	Order int

	c   float64   // intercept
	phi []float64 // lag coefficients, phi[i] multiplies y(t-i)
}

// NewAR returns an unfitted AR(p) model.
func NewAR(order int) *AR { return &AR{Order: order} }

// Name implements Predictor.
func (a *AR) Name() string { return fmt.Sprintf("AR(%d)", a.Order) }

// MinHistory implements Predictor.
func (a *AR) MinHistory(int) int { return a.Order }

// Fit estimates the coefficients by least squares on one-step-ahead rows.
func (a *AR) Fit(train []float64) error {
	if a.Order < 1 {
		return fmt.Errorf("predictor: AR order %d must be at least 1", a.Order)
	}
	if len(train) < 2*a.Order+2 {
		return fmt.Errorf("%w: AR(%d) needs at least %d slots, got %d",
			ErrShortHistory, a.Order, 2*a.Order+2, len(train))
	}
	var x [][]float64
	var y []float64
	for t := a.Order; t < len(train); t++ {
		row := make([]float64, a.Order+1)
		row[0] = 1
		for i := 1; i <= a.Order; i++ {
			row[i] = train[t-i]
		}
		x = append(x, row)
		y = append(y, train[t])
	}
	w, err := timeseries.LeastSquares(x, y)
	if err != nil {
		return fmt.Errorf("fitting AR(%d): %w", a.Order, err)
	}
	a.c = w[0]
	a.phi = w[1:]
	return nil
}

// Forecast implements Predictor by iterating the one-step model tau times.
func (a *AR) Forecast(history []float64, tau int) (float64, error) {
	if a.phi == nil {
		return 0, ErrNotFitted
	}
	if tau < 1 {
		return 0, fmt.Errorf("predictor: tau %d must be at least 1", tau)
	}
	if len(history) < a.Order {
		return 0, fmt.Errorf("%w: AR(%d) needs %d slots, got %d",
			ErrShortHistory, a.Order, a.Order, len(history))
	}
	// lags[0] is the most recent value.
	lags := make([]float64, a.Order)
	for i := 0; i < a.Order; i++ {
		lags[i] = history[len(history)-1-i]
	}
	var v float64
	for step := 0; step < tau; step++ {
		v = a.c
		for i, p := range a.phi {
			v += p * lags[i]
		}
		copy(lags[1:], lags)
		lags[0] = v
	}
	return v, nil
}
