package predictor

import "fmt"

// NaivePeriodic predicts the mean of the same slot in the previous NPeriods
// periods. It is the periodic-only degenerate case of SPAR (all b_j = 0,
// a_k = 1/n) and a useful sanity baseline.
type NaivePeriodic struct {
	// Period is the number of slots per period.
	Period int
	// NPeriods is how many previous periods to average.
	NPeriods int

	fitted bool
}

// NewNaivePeriodic returns a naive periodic-mean model.
func NewNaivePeriodic(period, nPeriods int) *NaivePeriodic {
	return &NaivePeriodic{Period: period, NPeriods: nPeriods}
}

// Name implements Predictor.
func (p *NaivePeriodic) Name() string { return "NaivePeriodic" }

// MinHistory implements Predictor.
func (p *NaivePeriodic) MinHistory(tau int) int {
	n := p.NPeriods*p.Period - tau
	if n < 0 {
		n = 0
	}
	return n
}

// Fit implements Predictor; the model has no parameters to estimate but
// validates its configuration.
func (p *NaivePeriodic) Fit([]float64) error {
	if p.Period < 1 || p.NPeriods < 1 {
		return fmt.Errorf("predictor: NaivePeriodic period %d and nPeriods %d must be at least 1",
			p.Period, p.NPeriods)
	}
	p.fitted = true
	return nil
}

// Forecast implements Predictor.
func (p *NaivePeriodic) Forecast(history []float64, tau int) (float64, error) {
	if !p.fitted {
		return 0, ErrNotFitted
	}
	if tau < 1 {
		return 0, fmt.Errorf("predictor: tau %d must be at least 1", tau)
	}
	target := len(history) - 1 + tau
	sum := 0.0
	for k := 1; k <= p.NPeriods; k++ {
		i := target - k*p.Period
		if i < 0 || i >= len(history) {
			return 0, fmt.Errorf("%w: NaivePeriodic needs %d slots for tau=%d, got %d",
				ErrShortHistory, p.MinHistory(tau), tau, len(history))
		}
		sum += history[i]
	}
	return sum / float64(p.NPeriods), nil
}

// Oracle replays a known future trace: forecasting tau ahead of a history of
// length h returns Trace[h-1+tau]. The paper's "P-Store Oracle" strategy in
// Figure 12 uses perfect predictions this way to upper-bound P-Store's
// achievable performance.
type Oracle struct {
	// Trace is the full true load series; histories passed to Forecast are
	// assumed to be prefixes of it.
	Trace []float64
}

// NewOracle returns an oracle over the given true load trace.
func NewOracle(trace []float64) *Oracle { return &Oracle{Trace: trace} }

// Name implements Predictor.
func (o *Oracle) Name() string { return "Oracle" }

// MinHistory implements Predictor.
func (o *Oracle) MinHistory(int) int { return 0 }

// Fit implements Predictor and is a no-op.
func (o *Oracle) Fit([]float64) error { return nil }

// Forecast implements Predictor. Beyond the end of the trace it holds the
// last value.
func (o *Oracle) Forecast(history []float64, tau int) (float64, error) {
	if tau < 1 {
		return 0, fmt.Errorf("predictor: tau %d must be at least 1", tau)
	}
	if len(o.Trace) == 0 {
		return 0, ErrNotFitted
	}
	i := len(history) - 1 + tau
	if i >= len(o.Trace) {
		i = len(o.Trace) - 1
	}
	return o.Trace[i], nil
}
