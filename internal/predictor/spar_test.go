package predictor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pstore/internal/timeseries"
)

// sineTrace builds a periodic signal with optional AR(1) transient noise.
func sineTrace(rng *rand.Rand, period, n int, base, amp, noiseFrac float64) []float64 {
	out := make([]float64, n)
	noise := 0.0
	for i := range out {
		level := base + amp*0.5*(1-math.Cos(2*math.Pi*float64(i%period)/float64(period)))
		if rng != nil {
			noise = 0.9*noise + 0.436*rng.NormFloat64()
			level *= 1 + noiseFrac*noise
		}
		out[i] = level
	}
	return out
}

func TestSPARExactOnPeriodicSignal(t *testing.T) {
	const period = 48
	trace := sineTrace(nil, period, period*10, 100, 900, 0)
	s := NewSPAR(period, 3, 5)
	if err := s.Fit(trace[:period*8]); err != nil {
		t.Fatal(err)
	}
	for _, tau := range []int{1, 5, 20} {
		history := trace[:period*9]
		got, err := s.Forecast(history, tau)
		if err != nil {
			t.Fatal(err)
		}
		want := trace[period*9-1+tau]
		if math.Abs(got-want) > 1e-6*want+1e-6 {
			t.Errorf("tau=%d: forecast %v, want %v", tau, got, want)
		}
	}
}

func TestSPARAccurateUnderNoise(t *testing.T) {
	const period = 96
	rng := rand.New(rand.NewSource(3))
	trace := sineTrace(rng, period, period*20, 200, 1800, 0.05)
	s := NewSPAR(period, 7, 10)
	if err := s.FitHorizons(trace[:period*14], 1, 4, 8); err != nil {
		t.Fatal(err)
	}
	var actual, pred []float64
	tau := 4
	for now := period * 15; now < period*20-tau; now += 7 {
		v, err := s.Forecast(trace[:now+1], tau)
		if err != nil {
			t.Fatal(err)
		}
		pred = append(pred, v)
		actual = append(actual, trace[now+tau])
	}
	mre, err := timeseries.MRE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mre > 0.08 {
		t.Errorf("SPAR MRE %.3f too high on mildly noisy periodic load", mre)
	}
}

func TestSPARErrors(t *testing.T) {
	s := NewSPAR(10, 2, 3)
	if _, err := s.Forecast(make([]float64, 100), 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted forecast err = %v", err)
	}
	if err := s.Fit(make([]float64, 5)); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short train err = %v", err)
	}
	if err := NewSPAR(0, 2, 3).Fit(make([]float64, 100)); err == nil {
		t.Error("period 0 should fail")
	}
	if err := NewSPAR(10, 0, 3).Fit(make([]float64, 100)); err == nil {
		t.Error("n=0 should fail")
	}
	if err := NewSPAR(10, 2, -1).Fit(make([]float64, 100)); err == nil {
		t.Error("m=-1 should fail")
	}
	trace := sineTrace(nil, 10, 200, 10, 100, 0)
	if err := s.Fit(trace); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Forecast(trace[:5], 1); !errors.Is(err, ErrShortHistory) {
		t.Errorf("short history forecast err = %v", err)
	}
	if _, err := s.Forecast(trace, 0); err == nil {
		t.Error("tau=0 should fail")
	}
	if err := s.FitHorizons(trace); err == nil {
		t.Error("FitHorizons with no horizons should fail")
	}
	if err := s.FitHorizons(trace, 0); err == nil {
		t.Error("FitHorizons with tau=0 should fail")
	}
}

func TestSPARCoefficients(t *testing.T) {
	const period = 24
	trace := sineTrace(nil, period, period*12, 50, 500, 0)
	s := NewSPAR(period, 2, 2)
	if err := s.Fit(trace); err != nil {
		t.Fatal(err)
	}
	a, b := s.Coefficients()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("coefficient lengths = %d, %d; want 2, 2", len(a), len(b))
	}
	// On a purely periodic signal the periodic coefficients should sum to
	// about 1 (the model reproduces last periods' value).
	if sum := a[0] + a[1]; math.Abs(sum-1) > 0.05 {
		t.Errorf("periodic coefficients sum to %v, want ~1", sum)
	}
	// Mutating the returned slices must not affect the model.
	a[0] = 999
	v1, _ := s.Forecast(trace, 1)
	a2, _ := s.Coefficients()
	if a2[0] == 999 {
		t.Error("Coefficients returned internal slice")
	}
	_ = v1
}

func TestSPARMinHistory(t *testing.T) {
	s := NewSPAR(100, 3, 20)
	// Offset lags dominate: m + n*T = 320.
	if got := s.MinHistory(1); got != 320 {
		t.Errorf("MinHistory(1) = %d, want 320", got)
	}
	// For a model without offsets, periodic lags dominate.
	s2 := NewSPAR(100, 3, 0)
	if got := s2.MinHistory(10); got != 290 {
		t.Errorf("MinHistory(10) = %d, want 290", got)
	}
}
