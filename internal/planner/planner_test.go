package planner

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pstore/internal/migration"
)

func model(q, d float64) migration.Model {
	return migration.Model{Q: q, QMax: q * 1.2, D: d, P: 1}
}

// verifyPlan checks the feasibility invariant the planner promises: the
// predicted load never exceeds the (effective) capacity implied by the plan,
// moves are contiguous from t=0 to the end of the horizon, and the first
// move starts from n0.
func verifyPlan(t *testing.T, m migration.Model, load []float64, p *Plan, n0 int) {
	t.Helper()
	if len(p.Moves) == 0 {
		t.Fatal("plan has no moves")
	}
	if p.Moves[0].Start != 0 || p.Moves[0].From != n0 {
		t.Fatalf("plan does not start at (0, %d): %+v", n0, p.Moves[0])
	}
	last := p.Moves[len(p.Moves)-1]
	if last.End != len(load)-1 {
		t.Fatalf("plan ends at %d, want %d", last.End, len(load)-1)
	}
	if last.To != p.FinalMachines {
		t.Fatalf("FinalMachines %d != last move target %d", p.FinalMachines, last.To)
	}
	if load[0] > m.Cap(n0)+1e-9 {
		t.Fatalf("initial load %v already exceeds cap(%d)", load[0], n0)
	}
	for i, mv := range p.Moves {
		if i > 0 {
			prev := p.Moves[i-1]
			if mv.Start != prev.End || mv.From != prev.To {
				t.Fatalf("moves not contiguous: %v then %v", prev, mv)
			}
		}
		dur := mv.End - mv.Start
		if dur < 1 {
			t.Fatalf("move %v has non-positive duration", mv)
		}
		for k := 1; k <= dur; k++ {
			f := float64(k) / float64(dur)
			cap := m.EffCap(mv.From, mv.To, f)
			if load[mv.Start+k] > cap+1e-9 {
				t.Fatalf("load %v at interval %d exceeds effective capacity %v during move %v",
					load[mv.Start+k], mv.Start+k, cap, mv)
			}
		}
	}
}

func TestBestMovesHoldsWhenSufficient(t *testing.T) {
	m := model(100, 4)
	load := []float64{80, 80, 80, 80, 80, 80}
	p := Planner{Model: m}
	plan, err := p.BestMoves(load, 1)
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, m, load, plan, 1)
	if plan.FinalMachines != 1 {
		t.Errorf("FinalMachines = %d, want 1", plan.FinalMachines)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].IsReconfiguration() {
		t.Errorf("expected one merged hold, got %+v", plan.Moves)
	}
	if plan.Cost != 6 {
		t.Errorf("cost = %v, want 6 machine-intervals", plan.Cost)
	}
	if _, ok := plan.FirstReconfiguration(); ok {
		t.Error("hold-only plan should have no reconfiguration")
	}
}

func TestBestMovesScalesOutBeforeSpike(t *testing.T) {
	// Load is low, then doubles at t=6. D=4 intervals; the planner must
	// start the 1->2 move early enough to complete before the rise.
	m := model(100, 4)
	load := []float64{50, 50, 50, 50, 50, 50, 180, 180, 180, 180}
	p := Planner{Model: m}
	plan, err := p.BestMoves(load, 1)
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, m, load, plan, 1)
	if plan.FinalMachines != 2 {
		t.Errorf("FinalMachines = %d, want 2", plan.FinalMachines)
	}
	mv, ok := plan.FirstReconfiguration()
	if !ok {
		t.Fatal("expected a scale-out move")
	}
	if mv.To != 2 || mv.From != 1 {
		t.Errorf("first reconfiguration %v, want 1->2", mv)
	}
	// T(1,2) = 4 * (1 - 1/2) = 2 intervals; it must end by t=6 but not
	// before it needs to (cost minimization delays it).
	if mv.End > 6 {
		t.Errorf("scale-out ends at %d, after the spike at 6", mv.End)
	}
	if mv.End < 5 {
		t.Errorf("scale-out ends at %d, earlier than necessary", mv.End)
	}
}

func TestBestMovesScalesInWhenLoadDrops(t *testing.T) {
	m := model(100, 4)
	load := []float64{150, 150, 60, 60, 60, 60, 60, 60, 60, 60}
	p := Planner{Model: m}
	plan, err := p.BestMoves(load, 2)
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, m, load, plan, 2)
	if plan.FinalMachines != 1 {
		t.Errorf("FinalMachines = %d, want 1", plan.FinalMachines)
	}
	mv, ok := plan.FirstReconfiguration()
	if !ok {
		t.Fatal("expected a scale-in move")
	}
	if mv.From != 2 || mv.To != 1 {
		t.Errorf("first reconfiguration %v, want 2->1", mv)
	}
	// Scale-in cannot start while load still needs 2 machines, and during
	// the move effective capacity shrinks toward cap(1).
	if mv.Start < 1 {
		t.Errorf("scale-in starts at %d, while load still high", mv.Start)
	}
}

func TestBestMovesInfeasible(t *testing.T) {
	// Load jumps immediately beyond what one machine plus any migration
	// could serve: the planner must report infeasibility.
	m := model(100, 10)
	load := []float64{90, 1000, 1000, 1000}
	p := Planner{Model: m}
	_, err := p.BestMoves(load, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBestMovesValidation(t *testing.T) {
	m := model(100, 4)
	p := Planner{Model: m}
	if _, err := p.BestMoves([]float64{1}, 1); err == nil {
		t.Error("single-interval load should fail")
	}
	if _, err := p.BestMoves([]float64{1, 1}, 0); err == nil {
		t.Error("n0 = 0 should fail")
	}
	bad := Planner{Model: migration.Model{Q: -1, QMax: 1, D: 1, P: 1}}
	if _, err := bad.BestMoves([]float64{1, 1}, 1); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestBestMovesMaxMachinesCap(t *testing.T) {
	m := model(100, 2)
	load := []float64{50, 50, 50, 50, 950, 950, 950, 950, 950, 950}
	p := Planner{Model: m, MaxMachines: 3}
	if _, err := p.BestMoves(load, 1); !errors.Is(err, ErrInfeasible) {
		t.Error("capped planner should be infeasible for 10-machine load")
	}
	p.MaxMachines = 0
	plan, err := p.BestMoves(load, 1)
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, m, load, plan, 1)
	if plan.FinalMachines != 10 {
		t.Errorf("FinalMachines = %d, want 10", plan.FinalMachines)
	}
}

// bruteForce computes the optimal cost by exhaustive recursion over every
// possible last move, sharing only the cost model with the planner. It is
// exponential, so keep horizons tiny.
func bruteForce(m migration.Model, load []float64, n0, z, t, nodes int) float64 {
	if t < 0 || nodes < 1 || (t == 0 && nodes != n0) {
		return math.Inf(1)
	}
	if load[t] > m.Cap(nodes)+1e-9 {
		return math.Inf(1)
	}
	if t == 0 {
		return float64(nodes)
	}
	best := math.Inf(1)
	for b := 1; b <= z; b++ {
		tm := m.MoveIntervals(b, nodes)
		cm := float64(tm) * m.AvgMachAlloc(b, nodes)
		if tm == 0 {
			tm, cm = 1, float64(b)
		}
		start := t - tm
		if start < 0 {
			continue
		}
		ok := true
		for i := 1; i <= tm; i++ {
			if load[start+i] > m.EffCap(b, nodes, float64(i)/float64(tm))+1e-9 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if c := bruteForce(m, load, n0, z, start, b) + cm; c < best {
			best = c
		}
	}
	return best
}

// TestBestMovesMatchesBruteForce cross-checks the memoized DP against an
// independent exhaustive search on small random instances.
func TestBestMovesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := model(100, 3)
	for trial := 0; trial < 60; trial++ {
		tlen := 4 + rng.Intn(4)
		load := make([]float64, tlen)
		for i := range load {
			load[i] = 20 + 380*rng.Float64()
		}
		n0 := 1 + rng.Intn(3)
		load[0] = math.Min(load[0], m.Cap(n0)) // keep the start feasible sometimes
		p := Planner{Model: m}
		plan, err := p.BestMoves(load, n0)

		peak := 0.0
		for _, v := range load {
			peak = math.Max(peak, v)
		}
		z := max(m.MachinesFor(peak), n0)
		bfBest := math.Inf(1)
		bfNodes := 0
		for i := 1; i <= z; i++ {
			if c := bruteForce(m, load, n0, z, tlen-1, i); !math.IsInf(c, 1) {
				bfBest = c
				bfNodes = i
				break // smallest feasible final size, like Algorithm 1
			}
		}
		if errors.Is(err, ErrInfeasible) {
			if !math.IsInf(bfBest, 1) {
				t.Fatalf("trial %d: planner infeasible but brute force found cost %v", trial, bfBest)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(bfBest, 1) {
			t.Fatalf("trial %d: planner found plan but brute force infeasible", trial)
		}
		if plan.FinalMachines != bfNodes {
			t.Fatalf("trial %d: final machines %d, brute force %d", trial, plan.FinalMachines, bfNodes)
		}
		if math.Abs(plan.Cost-bfBest) > 1e-6 {
			t.Fatalf("trial %d: cost %v, brute force %v", trial, plan.Cost, bfBest)
		}
		verifyPlan(t, m, load, plan, n0)
	}
}

// TestBestMovesPlanAlwaysFeasible fuzzes larger instances and checks the
// feasibility invariant of any returned plan.
func TestBestMovesPlanAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := model(100, 1+5*rng.Float64())
		tlen := 6 + rng.Intn(30)
		load := make([]float64, tlen)
		level := 50 + 100*rng.Float64()
		for i := range load {
			level += 60 * (rng.Float64() - 0.5)
			if level < 10 {
				level = 10
			}
			load[i] = level
		}
		n0 := 1 + rng.Intn(4)
		if load[0] > m.Cap(n0) {
			load[0] = m.Cap(n0) * rng.Float64()
		}
		p := Planner{Model: m}
		plan, err := p.BestMoves(load, n0)
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		// Re-run verifyPlan's logic without t: return false on violation.
		if plan.Moves[0].Start != 0 || plan.Moves[0].From != n0 {
			return false
		}
		if plan.Moves[len(plan.Moves)-1].End != tlen-1 {
			return false
		}
		for i, mv := range plan.Moves {
			if i > 0 && (mv.Start != plan.Moves[i-1].End || mv.From != plan.Moves[i-1].To) {
				return false
			}
			dur := mv.End - mv.Start
			if dur < 1 {
				return false
			}
			for k := 1; k <= dur; k++ {
				if load[mv.Start+k] > m.EffCap(mv.From, mv.To, float64(k)/float64(dur))+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPlanCostNeverExceedsStaticPeak(t *testing.T) {
	// Starting from the peak-sized cluster, the optimal plan can never
	// cost more than statically holding that cluster.
	m := model(100, 4)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		tlen := 10 + rng.Intn(20)
		load := make([]float64, tlen)
		for i := range load {
			load[i] = 400 * rng.Float64()
		}
		peak := 0.0
		for _, v := range load {
			peak = math.Max(peak, v)
		}
		z := m.MachinesFor(peak)
		p := Planner{Model: m}
		plan, err := p.BestMoves(load, z)
		if err != nil {
			t.Fatal(err)
		}
		static := float64(z * tlen)
		if plan.Cost > static+1e-9 {
			t.Errorf("trial %d: plan cost %v exceeds static cost %v", trial, plan.Cost, static)
		}
	}
}
