// Package planner implements P-Store's predictive elasticity algorithm
// (Section 4.3): a dynamic program that, given a time series of predicted
// load, finds the cheapest feasible sequence of reconfiguration moves — when
// to add or remove servers and how many — such that the predicted load never
// exceeds the cluster's effective capacity, even while data is in flight.
//
// The implementation follows Algorithms 1 (best-moves), 2 (cost) and
// 3 (sub-cost) of the paper, memoizing the optimal last move for every
// (time, machine-count) state.
package planner

import (
	"errors"
	"fmt"
	"math"

	"pstore/internal/migration"
)

// ErrInfeasible is returned when no sequence of moves can keep capacity
// above the predicted load — for example when a flash crowd is predicted to
// arrive faster than data can be migrated. The controller then falls back
// to one of the reactive strategies of Section 4.3.1.
var ErrInfeasible = errors.New("planner: no feasible sequence of moves")

// Move is one reconfiguration: the cluster goes from From machines at
// interval Start to To machines at interval End. From == To denotes a
// "do nothing" stretch.
type Move struct {
	// Start and End are interval indices into the predicted load series;
	// the move occupies intervals (Start, End].
	Start, End int
	// From and To are the machine counts before and after the move.
	From, To int
}

// IsReconfiguration reports whether the move actually changes the cluster.
func (m Move) IsReconfiguration() bool { return m.From != m.To }

// String renders the move compactly for logs.
func (m Move) String() string {
	if !m.IsReconfiguration() {
		return fmt.Sprintf("[%d,%d] hold %d", m.Start, m.End, m.From)
	}
	return fmt.Sprintf("[%d,%d] %d->%d", m.Start, m.End, m.From, m.To)
}

// Plan is the output of the planner: contiguous moves covering the whole
// horizon, their total cost in machine-intervals (Equation 1), and the final
// cluster size.
type Plan struct {
	// Moves are ordered by start time; consecutive do-nothing intervals
	// are merged.
	Moves []Move
	// Cost is the total machine-intervals consumed across the horizon.
	Cost float64
	// FinalMachines is the cluster size at the end of the horizon.
	FinalMachines int
}

// FirstReconfiguration returns the first move that changes the cluster
// size, or a zero Move and false if the plan is all holds. P-Store executes
// only this move and then replans (receding horizon control, Section 6).
func (p *Plan) FirstReconfiguration() (Move, bool) {
	for _, m := range p.Moves {
		if m.IsReconfiguration() {
			return m, true
		}
	}
	return Move{}, false
}

// Planner runs the predictive elasticity dynamic program against a
// migration model.
type Planner struct {
	// Model supplies cap, T(B,A), C(B,A) and eff-cap. Model.D must be
	// expressed in planning intervals.
	Model migration.Model
	// MaxMachines optionally caps the largest cluster considered; zero
	// means "as many as the predicted peak requires".
	MaxMachines int
}

// memoEntry mirrors m[t,A] in the paper: the minimal cost of reaching A
// machines at time t, and the last move that achieves it.
type memoEntry struct {
	cost      float64
	prevTime  int
	prevNodes int
	set       bool
}

type dpState struct {
	model migration.Model
	load  []float64
	n0    int
	z     int
	memo  []memoEntry // (t, nodes) -> entry; index t*(z+1)+nodes
}

func (d *dpState) entry(t, nodes int) *memoEntry {
	return &d.memo[t*(d.z+1)+nodes]
}

// BestMoves implements Algorithm 1. load[t] is the predicted load for
// interval t, with t = 0 the present interval; n0 is the current cluster
// size. It returns the cheapest feasible plan ending with as few machines
// as possible, or ErrInfeasible.
func (p *Planner) BestMoves(load []float64, n0 int) (*Plan, error) {
	if err := p.Model.Validate(); err != nil {
		return nil, err
	}
	if n0 < 1 {
		return nil, fmt.Errorf("planner: initial machine count %d must be at least 1", n0)
	}
	if len(load) < 2 {
		return nil, fmt.Errorf("planner: need at least 2 predicted intervals, got %d", len(load))
	}
	// Z: machines needed for the predicted peak (Algorithm 1 line 2).
	peak := 0.0
	for _, v := range load {
		if v > peak {
			peak = v
		}
	}
	z := max(p.Model.MachinesFor(peak), n0)
	if p.MaxMachines > 0 && z > p.MaxMachines {
		z = p.MaxMachines
	}

	d := &dpState{
		model: p.Model,
		load:  load,
		n0:    n0,
		z:     z,
		memo:  make([]memoEntry, len(load)*(z+1)),
	}
	tEnd := len(load) - 1
	// Try final cluster sizes from smallest to largest; the memo is shared
	// across iterations because cost(t, A) does not depend on the final
	// target (pure memoization of an identical recurrence).
	for i := 1; i <= z; i++ {
		if math.IsInf(d.cost(tEnd, i), 1) {
			continue
		}
		return d.extract(tEnd, i), nil
	}
	return nil, ErrInfeasible
}

// cost implements Algorithm 2: the minimum cost of a feasible series of
// moves ending with nodes machines at interval t.
func (d *dpState) cost(t, nodes int) float64 {
	// Constraint violations and insufficient capacity are infinitely
	// expensive (Section 4.3.2).
	if t < 0 || (t == 0 && nodes != d.n0) || nodes < 1 {
		return math.Inf(1)
	}
	if d.load[t] > d.model.Cap(nodes)+capEps {
		return math.Inf(1)
	}
	e := d.entry(t, nodes)
	if e.set {
		return e.cost
	}
	if t == 0 {
		*e = memoEntry{cost: float64(nodes), prevTime: -1, prevNodes: nodes, set: true}
		return e.cost
	}
	best := math.Inf(1)
	bestB := -1
	for b := 1; b <= d.z; b++ {
		if c := d.subCost(t, b, nodes); c < best {
			best = c
			bestB = b
		}
	}
	if bestB == -1 {
		*e = memoEntry{cost: math.Inf(1), prevTime: -1, prevNodes: -1, set: true}
		return e.cost
	}
	tm := d.moveIntervals(bestB, nodes)
	*e = memoEntry{
		cost:      best,
		prevTime:  t - tm,
		prevNodes: bestB,
		set:       true,
	}
	return e.cost
}

// capEps absorbs floating-point rounding when comparing load to capacity.
const capEps = 1e-9

// moveIntervals is T(B,A) rounded up to whole intervals, with the paper's
// convention that every move — including "do nothing" — lasts at least one
// interval (Algorithm 2 line 9).
func (d *dpState) moveIntervals(b, a int) int {
	tm := d.model.MoveIntervals(b, a)
	if tm == 0 {
		return 1
	}
	return tm
}

// moveCost prices a move in machine-intervals. A do-nothing interval costs
// b; a reconfiguration costs its duration (in whole intervals) times the
// average machines allocated (Equation 4, rounded consistently with
// moveIntervals so cost units stay machine-intervals).
func (d *dpState) moveCost(b, a int) float64 {
	if b == a {
		return float64(b)
	}
	return float64(d.moveIntervals(b, a)) * d.model.AvgMachAlloc(b, a)
}

// subCost implements Algorithm 3: minimum cost ending at interval t where
// the final move goes from b to a machines.
func (d *dpState) subCost(t, b, a int) float64 {
	tm := d.moveIntervals(b, a)
	cm := d.moveCost(b, a)
	start := t - tm
	if start < 0 {
		// The move would have to start in the past.
		return math.Inf(1)
	}
	// During every interval of the move the predicted load must stay under
	// the effective capacity (Equation 7) at the migration progress reached
	// by then.
	for i := 1; i <= tm; i++ {
		f := float64(i) / float64(tm)
		if d.load[start+i] > d.model.EffCap(b, a, f)+capEps {
			return math.Inf(1)
		}
	}
	prior := d.cost(start, b)
	if math.IsInf(prior, 1) {
		return prior
	}
	return prior + cm
}

// extract walks the memo backwards from (t, nodes) and builds the plan
// (Algorithm 1 lines 6-11), merging consecutive holds.
func (d *dpState) extract(t, nodes int) *Plan {
	plan := &Plan{Cost: d.entry(t, nodes).cost, FinalMachines: nodes}
	var rev []Move
	for t > 0 {
		e := d.entry(t, nodes)
		rev = append(rev, Move{Start: e.prevTime, End: t, From: e.prevNodes, To: nodes})
		t, nodes = e.prevTime, e.prevNodes
	}
	for i := len(rev) - 1; i >= 0; i-- {
		m := rev[i]
		// Merge consecutive do-nothing intervals.
		if n := len(plan.Moves); n > 0 && !m.IsReconfiguration() &&
			!plan.Moves[n-1].IsReconfiguration() && plan.Moves[n-1].To == m.From {
			plan.Moves[n-1].End = m.End
			continue
		}
		plan.Moves = append(plan.Moves, m)
	}
	return plan
}
