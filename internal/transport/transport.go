// Package transport is the node-boundary abstraction that lets a partition
// group run either inside this process or as its own engine process behind
// the wire. The migration executor (internal/squall) and the cluster runtime
// (internal/cluster) program against the Node and Topology interfaces; the
// Local implementation is today's direct calls (the byte-identical
// single-process reference oracle), and Remote drives the same operations
// over the node RPC vocabulary in internal/wire.
package transport

import (
	"fmt"
	"time"

	"pstore/internal/recovery"
	"pstore/internal/store"
)

// Node is the migration-facing surface of a cluster: exactly the operations
// the Squall executor needs to plan and drive a reconfiguration. A
// *store.Engine is a Node (single-process mode); a Remote topology is a Node
// whose MoveBuckets decomposes into extract/install/flip RPCs against node
// processes.
type Node interface {
	// Config returns the cluster geometry (machines, partitions, buckets).
	Config() store.Config
	// ActiveMachines and SetActiveMachines manage the active cluster size.
	ActiveMachines() int
	SetActiveMachines(n int) error
	// TotalRows is the cluster-wide row count, used to size chunks.
	TotalRows() int
	// OwnedBuckets lists the buckets a partition currently owns; OwnerOf
	// is the inverse lookup for one bucket.
	OwnedBuckets(part int) []int
	OwnerOf(bucket int) int
	// BucketAccesses returns per-bucket access counts since the last reset
	// — the skew signal the E-Store-style rebalance pass plans from.
	BucketAccesses(reset bool) []int64
	// PartitionDown and MachineDown report crash fencing, so planning can
	// route around dead capacity.
	PartitionDown(part int) bool
	MachineDown(m int) bool
	// MoveBuckets live-migrates buckets between two partitions, returning
	// rows moved; MoveBucketsRollback is its fault-injection-exempt undo.
	MoveBuckets(buckets []int, from, to int, perRow, overhead time.Duration) (int, error)
	MoveBucketsRollback(buckets []int, from, to int, perRow, overhead time.Duration) (int, error)
}

// The reference oracle must remain a Node without adapters: if this stops
// compiling, single-process mode has drifted from the interface.
var _ Node = (*store.Engine)(nil)

// Topology extends Node with everything the cluster runtime needs placement
// to be oblivious: the plan fingerprint, load/health introspection for the
// decision loop, and the crash/checkpoint/restore recovery plane.
type Topology interface {
	Node
	// Plan snapshots the bucket -> partition plan (the placement
	// fingerprint the chaos suites compare across modes).
	Plan() []int32
	// Counters and MaxQueueSojourn aggregate load over the whole topology.
	Counters() store.Counters
	MaxQueueSojourn() time.Duration
	// DownMachines lists crashed machines, sorted ascending.
	DownMachines() []int
	// Crash fences a machine; Restore rebuilds it from its node's
	// checkpoint + command log; Checkpoint installs a fresh baseline on
	// every live partition and returns the bucket images installed.
	Crash(machine int) error
	Restore(machine int) (recovery.RestoreStats, error)
	Checkpoint() (int, error)
	// SetFaultInjector attaches the chunk-level chaos plane at whatever
	// point of the topology consults it (engine-side locally, coordinator-
	// side remotely — same decision sequence either way).
	SetFaultInjector(fi store.FaultInjector)
	// Close releases topology resources; it does not stop remote nodes.
	Close() error
}

// Local is the single-process topology: one engine, every machine hosted,
// recovery driven through an in-process manager. Every Node and engine
// method delegates directly, so behavior is byte-identical to calling the
// engine — the property the fixed-seed chaos suites pin.
type Local struct {
	*store.Engine
	rm *recovery.Manager
}

// NewLocal wraps an engine (and optionally its recovery manager; nil
// disables the recovery plane) as a Topology.
func NewLocal(eng *store.Engine, rm *recovery.Manager) *Local {
	return &Local{Engine: eng, rm: rm}
}

// Recovery returns the in-process recovery manager, or nil.
func (l *Local) Recovery() *recovery.Manager { return l.rm }

func (l *Local) Crash(machine int) error {
	if l.rm == nil {
		return fmt.Errorf("transport: no recovery manager attached")
	}
	return l.rm.Crash(machine)
}

func (l *Local) Restore(machine int) (recovery.RestoreStats, error) {
	if l.rm == nil {
		return recovery.RestoreStats{}, fmt.Errorf("transport: no recovery manager attached")
	}
	return l.rm.Restore(machine)
}

func (l *Local) Checkpoint() (int, error) {
	if l.rm == nil {
		return 0, fmt.Errorf("transport: no recovery manager attached")
	}
	return l.rm.Checkpoint()
}

func (l *Local) Close() error { return nil }
