package transport

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/store"
	"pstore/internal/wire"
)

// Remote is the multi-process topology: a coordinator-side view of a
// cluster whose partition groups run as separate engine processes. Machine
// m is hosted by node m % len(peers). The coordinator keeps authoritative
// mirrors of the plan, the active machine count and the down set — the
// exact inputs Squall's planning reads — and decomposes each MoveBuckets
// into node RPCs:
//
//	same node:   one move RPC (the node runs the in-process protocol)
//	cross node:  extract at the source (source flips ownership as the data
//	             leaves), install at the destination (destination flips
//	             after the data lands), then a flip broadcast to bystander
//	             nodes
//
// Between extract and the destination flip, transactions for the moving
// buckets see transient not-owned refusals and are forwarded by the node
// front ends — never missing data, the same invariant the in-process
// install-before-flip ordering provides.
//
// Determinism: the chunk-level fault injector is consulted coordinator-side
// with the same MoveOp, in the same order relative to the ownership and
// down checks, as the engine consults it in single-process mode — so a
// fixed-seed chaos run takes identical drop/abort decisions in both modes
// and converges on the identical final plan.
type Remote struct {
	cfg   store.Config
	peers []*Peer

	planMu sync.Mutex
	plan   []int32

	active atomic.Int32

	downMu sync.Mutex
	down   map[int]bool

	fi atomic.Pointer[faultHolder]

	// net is the link-level fault plane; heldMu guards the reordered
	// (late-duplicate) deliveries awaiting the pair's next chunk.
	net    atomic.Pointer[netHolder]
	heldMu sync.Mutex
	held   map[faults.PartitionPair]heldInstall

	// cachedRows is the last successful TotalRows aggregation, returned on
	// an RPC failure so chunk sizing degrades instead of dividing by zero.
	cachedRows atomic.Int64

	flipErrors atomic.Int64
	rpcTimeout time.Duration
}

type faultHolder struct{ fi store.FaultInjector }
type netHolder struct{ n *faults.NetInjector }

// heldInstall is a duplicate chunk delivery held back by a link-reorder
// decision until the pair's next chunk has landed.
type heldInstall struct {
	toNode int
	req    wire.NodeMove
	meta   wire.ChunkMeta
	frames []wire.BucketFrame
}

// NewRemote builds a Remote topology over the given node peers. The cluster
// geometry and the initial plan are taken from the nodes themselves (every
// node derives the identical initial plan from the shared configuration),
// so the coordinator needs no geometry flags that could drift.
func NewRemote(ctx context.Context, peers []*Peer) (*Remote, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("transport: no node peers")
	}
	r := &Remote{
		peers:      peers,
		down:       make(map[int]bool),
		held:       make(map[faults.PartitionPair]heldInstall),
		rpcTimeout: 30 * time.Second,
	}
	var rows int
	for i, p := range peers {
		st, err := p.Status(ctx)
		if err != nil {
			return nil, fmt.Errorf("transport: node %d status: %w", i, err)
		}
		if st.Node != i || st.Nodes != len(peers) {
			return nil, fmt.Errorf("transport: peer %d identifies as node %d of %d (want %d of %d)",
				i, st.Node, st.Nodes, i, len(peers))
		}
		if i == 0 {
			r.cfg = store.Config{
				MaxMachines:          st.MaxMachines,
				PartitionsPerMachine: st.PartitionsPerMachine,
				Buckets:              st.Buckets,
				InitialMachines:      st.InitialMachines,
			}
			r.plan = append([]int32(nil), st.Plan...)
			r.active.Store(int32(st.Active))
		}
		for _, m := range st.DownMachines {
			r.down[m] = true
		}
		rows += st.TotalRows
	}
	r.cachedRows.Store(int64(rows))
	return r, nil
}

// NodeOf returns the node index hosting a machine.
func (r *Remote) NodeOf(machine int) int { return machine % len(r.peers) }

// Peers returns the topology's node clients.
func (r *Remote) Peers() []*Peer { return r.peers }

// SetFaultInjector attaches the chunk-level chaos plane; the coordinator
// consults it before any chunk leaves a node.
func (r *Remote) SetFaultInjector(fi store.FaultInjector) {
	r.fi.Store(&faultHolder{fi: fi})
}

// SetNetInjector attaches the link-level chaos plane.
func (r *Remote) SetNetInjector(n *faults.NetInjector) {
	r.net.Store(&netHolder{n: n})
}

// FlipErrors counts ownership-flip broadcasts that failed; node plans heal
// on the buckets' next flip, but a nonzero count means routing was stale.
func (r *Remote) FlipErrors() int64 { return r.flipErrors.Load() }

func (r *Remote) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), r.rpcTimeout)
}

// Config implements Node.
func (r *Remote) Config() store.Config { return r.cfg }

// ActiveMachines implements Node.
func (r *Remote) ActiveMachines() int { return int(r.active.Load()) }

// SetActiveMachines implements Node: the mirror is updated first (planning
// reads it synchronously) and then broadcast to every node.
func (r *Remote) SetActiveMachines(n int) error {
	if n < 1 || n > r.cfg.MaxMachines {
		return fmt.Errorf("store: active machines %d outside [1, %d]", n, r.cfg.MaxMachines)
	}
	r.active.Store(int32(n))
	ctx, cancel := r.ctx()
	defer cancel()
	for i, p := range r.peers {
		if err := p.SetActive(ctx, n); err != nil {
			return fmt.Errorf("transport: set active on node %d: %w", i, err)
		}
	}
	return nil
}

// TotalRows implements Node by summing the nodes' hosted rows.
func (r *Remote) TotalRows() int {
	ctx, cancel := r.ctx()
	defer cancel()
	total := 0
	for _, p := range r.peers {
		st, err := p.Status(ctx)
		if err != nil {
			return int(r.cachedRows.Load())
		}
		total += st.TotalRows
	}
	r.cachedRows.Store(int64(total))
	return total
}

// Plan implements Topology from the coordinator's authoritative mirror.
func (r *Remote) Plan() []int32 {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	return append([]int32(nil), r.plan...)
}

// OwnedBuckets implements Node from the plan mirror.
func (r *Remote) OwnedBuckets(part int) []int {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	var out []int
	for b, p := range r.plan {
		if int(p) == part {
			out = append(out, b)
		}
	}
	return out
}

func (r *Remote) ownerOf(bucket int) int {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	return int(r.plan[bucket])
}

// OwnerOf implements Node from the plan mirror.
func (r *Remote) OwnerOf(bucket int) int { return r.ownerOf(bucket) }

// BucketAccesses implements Node by summing per-bucket access counts over
// the nodes (each bucket is hosted by exactly one node, so the sum is its
// host's count). A node that fails to answer contributes nothing this round;
// with reset, its unread counts surface on the next successful read.
func (r *Remote) BucketAccesses(reset bool) []int64 {
	ctx, cancel := r.ctx()
	defer cancel()
	sum := make([]int64, r.cfg.Buckets)
	for _, p := range r.peers {
		acc, err := p.Accesses(ctx, reset)
		if err != nil {
			continue
		}
		for b, n := range acc {
			if b < len(sum) {
				sum[b] += n
			}
		}
	}
	return sum
}

func (r *Remote) applyPlan(buckets []int, owner int) {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	for _, b := range buckets {
		r.plan[b] = int32(owner)
	}
}

// MachineDown implements Node from the down mirror.
func (r *Remote) MachineDown(m int) bool {
	r.downMu.Lock()
	defer r.downMu.Unlock()
	return r.down[m]
}

// PartitionDown implements Node from the down mirror.
func (r *Remote) PartitionDown(part int) bool {
	return r.MachineDown(part / r.cfg.PartitionsPerMachine)
}

// DownMachines implements Topology.
func (r *Remote) DownMachines() []int {
	r.downMu.Lock()
	defer r.downMu.Unlock()
	out := make([]int, 0, len(r.down))
	for m := range r.down {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// MoveBuckets implements Node. The validation sequence — ownership, down
// checks, fault injector — mirrors Engine.moveBuckets exactly, so the
// chunk-level fault schedule sees the identical MoveOp sequence it would
// see in-process.
func (r *Remote) MoveBuckets(buckets []int, from, to int, perRow, overhead time.Duration) (int, error) {
	return r.moveBuckets(buckets, from, to, perRow, overhead, false)
}

// MoveBucketsRollback implements Node; fault injection (both planes) is
// bypassed and any held duplicate for the pair is discarded — a rollback
// supersedes the chunk the duplicate was a copy of.
func (r *Remote) MoveBucketsRollback(buckets []int, from, to int, perRow, overhead time.Duration) (int, error) {
	return r.moveBuckets(buckets, from, to, perRow, overhead, true)
}

func (r *Remote) moveBuckets(buckets []int, from, to int, perRow, overhead time.Duration, rollback bool) (int, error) {
	if from == to {
		return 0, nil
	}
	nParts := r.cfg.MaxMachines * r.cfg.PartitionsPerMachine
	if from < 0 || from >= nParts || to < 0 || to >= nParts {
		return 0, fmt.Errorf("store: partition out of range (%d -> %d)", from, to)
	}
	for _, b := range buckets {
		if own := r.ownerOf(b); own != from {
			return 0, fmt.Errorf("store: bucket %d owned by partition %d, not %d", b, own, from)
		}
	}
	if !rollback {
		if r.PartitionDown(from) {
			return 0, fmt.Errorf("%w: partition %d", store.ErrPartitionDown, from)
		}
		if r.PartitionDown(to) {
			return 0, fmt.Errorf("%w: partition %d", store.ErrPartitionDown, to)
		}
	}
	op := store.MoveOp{From: from, To: to, Buckets: buckets, Rollback: rollback}
	if h := r.fi.Load(); h != nil && h.fi != nil {
		if err := h.fi.BeforeMove(op); err != nil {
			return 0, err
		}
	}

	fromNode := r.NodeOf(from / r.cfg.PartitionsPerMachine)
	toNode := r.NodeOf(to / r.cfg.PartitionsPerMachine)
	pair := faults.PartitionPair{From: from, To: to}
	if rollback {
		// A rollback supersedes any pending late duplicate in either
		// direction of the pair.
		r.dropHeld(pair)
		r.dropHeld(faults.PartitionPair{From: to, To: from})
	}

	var dec faults.LinkDecision
	if h := r.net.Load(); h != nil && h.n != nil {
		var err error
		dec, err = h.n.OnChunk(fromNode, toNode, op)
		if err != nil {
			return 0, err
		}
	}
	if dec.Delay > 0 {
		time.Sleep(dec.Delay)
	}

	req := wire.NodeMove{
		Buckets:    buckets,
		From:       from,
		To:         to,
		PerRowNs:   perRow.Nanoseconds(),
		OverheadNs: overhead.Nanoseconds(),
		Rollback:   rollback,
	}
	ctx, cancel := r.ctx()
	defer cancel()

	var rows int
	if fromNode == toNode {
		n, err := r.peers[fromNode].Move(ctx, req)
		if err != nil {
			return 0, err
		}
		rows = n
	} else {
		meta, frames, err := r.peers[fromNode].Extract(ctx, req)
		if err != nil {
			return 0, err
		}
		if _, err := r.peers[toNode].Install(ctx, req, meta, frames); err != nil {
			// The chunk already left the source. Put it back (a rollback-
			// style install, exempt from injection) so a failed transfer
			// stays all-or-nothing; if even that fails the rows are lost
			// and the error says so loudly.
			undo := wire.NodeMove{Buckets: buckets, From: to, To: from, PerRowNs: req.PerRowNs, OverheadNs: req.OverheadNs, Rollback: true}
			if _, uerr := r.peers[fromNode].Install(ctx, undo, meta, frames); uerr != nil {
				return 0, fmt.Errorf("transport: install failed (%v) and undo install lost %d rows: %w", err, meta.Rows, uerr)
			}
			return 0, err
		}
		rows = meta.Rows
		r.deliverDup(pair, dec, toNode, req, meta, frames)
	}

	// The involved nodes flipped ownership during extract/install (or the
	// single move RPC); mirror it and broadcast to bystanders.
	r.applyPlan(buckets, to)
	for i, p := range r.peers {
		if i == fromNode || i == toNode {
			continue
		}
		if err := p.Flip(ctx, buckets, to); err != nil {
			// The move itself committed; a stale bystander plan only causes
			// transient not-owned forwards and heals on the next flip.
			r.flipErrors.Add(1)
		}
	}
	return rows, nil
}

// deliverDup handles a link-dup/link-reorder decision after a successful
// cross-node install: an immediate duplicate re-sends the install now; a
// deferred duplicate is held until the pair's next chunk lands. Duplicate
// installs are idempotent at the store (they add no rows), which is exactly
// the property the chaos plane exists to exercise.
func (r *Remote) deliverDup(pair faults.PartitionPair, dec faults.LinkDecision, toNode int, req wire.NodeMove, meta wire.ChunkMeta, frames []wire.BucketFrame) {
	// First deliver any duplicate held from the pair's previous chunk —
	// it was "reordered behind" this one.
	r.heldMu.Lock()
	prev, ok := r.held[pair]
	if ok {
		delete(r.held, pair)
	}
	r.heldMu.Unlock()
	if ok {
		r.installDup(prev)
	}
	if !dec.Dup {
		return
	}
	cur := heldInstall{toNode: toNode, req: req, meta: meta, frames: frames}
	if dec.DeferDup {
		r.heldMu.Lock()
		r.held[pair] = cur
		r.heldMu.Unlock()
		return
	}
	r.installDup(cur)
}

func (r *Remote) installDup(h heldInstall) {
	ctx, cancel := r.ctx()
	defer cancel()
	// Best-effort by design: a failed duplicate delivery is just the
	// network failing to mis-deliver.
	_, _ = r.peers[h.toNode].Install(ctx, h.req, h.meta, h.frames)
}

func (r *Remote) dropHeld(pair faults.PartitionPair) {
	r.heldMu.Lock()
	delete(r.held, pair)
	r.heldMu.Unlock()
}

// Counters implements Topology by summing the nodes' counters. Nodes that
// fail to answer contribute nothing this round.
func (r *Remote) Counters() store.Counters {
	ctx, cancel := r.ctx()
	defer cancel()
	var sum store.Counters
	for _, p := range r.peers {
		st, err := p.Status(ctx)
		if err != nil {
			continue
		}
		c := st.Counters
		sum.Submitted += c.Submitted
		sum.Completed += c.Completed
		sum.Errored += c.Errored
		sum.Forwarded += c.Forwarded
		sum.Rejected += c.Rejected
		sum.Shed += c.Shed
		sum.DeadlineExceeded += c.DeadlineExceeded
	}
	return sum
}

// MaxQueueSojourn implements Topology as the max over nodes.
func (r *Remote) MaxQueueSojourn() time.Duration {
	ctx, cancel := r.ctx()
	defer cancel()
	var max time.Duration
	for _, p := range r.peers {
		st, err := p.Status(ctx)
		if err != nil {
			continue
		}
		if d := time.Duration(st.MaxSojournNs); d > max {
			max = d
		}
	}
	return max
}

// Crash implements Topology: fence the machine on its hosting node, then
// mirror the down state so planning routes around it immediately.
func (r *Remote) Crash(machine int) error {
	if machine < 0 || machine >= r.cfg.MaxMachines {
		return fmt.Errorf("transport: machine %d out of range", machine)
	}
	ctx, cancel := r.ctx()
	defer cancel()
	if err := r.peers[r.NodeOf(machine)].Crash(ctx, machine); err != nil {
		return err
	}
	r.downMu.Lock()
	r.down[machine] = true
	r.downMu.Unlock()
	return nil
}

// Restore implements Topology: the hosting node rebuilds the machine from
// its local checkpoint + command log (logs live with the data), and the
// coordinator clears its down mirror.
func (r *Remote) Restore(machine int) (recovery.RestoreStats, error) {
	if machine < 0 || machine >= r.cfg.MaxMachines {
		return recovery.RestoreStats{}, fmt.Errorf("transport: machine %d out of range", machine)
	}
	ctx, cancel := r.ctx()
	defer cancel()
	res, err := r.peers[r.NodeOf(machine)].Restore(ctx, machine)
	if err != nil {
		return recovery.RestoreStats{}, err
	}
	r.downMu.Lock()
	delete(r.down, machine)
	r.downMu.Unlock()
	return recovery.RestoreStats{
		Machine:    res.Machine,
		Partitions: res.Partitions,
		Snapshots:  res.Snapshots,
		Replayed:   res.Replayed,
		Downtime:   time.Duration(res.DowntimeMs) * time.Millisecond,
	}, nil
}

// Checkpoint implements Topology by checkpointing every node.
func (r *Remote) Checkpoint() (int, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	total := 0
	for i, p := range r.peers {
		n, err := p.Checkpoint(ctx)
		if err != nil {
			return total, fmt.Errorf("transport: checkpoint on node %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// Close implements Topology. It releases coordinator state only; node
// processes keep serving.
func (r *Remote) Close() error {
	r.heldMu.Lock()
	r.held = make(map[faults.PartitionPair]heldInstall)
	r.heldMu.Unlock()
	return nil
}
