package transport_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wal"
	"pstore/internal/wire"
)

// The self-healing suite: the chaos workload extended through the failure
// chains ISSUE 10 promises to survive — a fenced zombie truncating its
// divergent suffix and rejoining warm, a follower stalled past WAL retention
// forced through a full resync, synchronous commit keeping acked work at RPO
// zero across shipper deaths, and a replica checkpointing its own log.

// selfHealNodeConfig parameterizes the node knobs the suite needs beyond
// startReplNodeWith: a small WAL segment size (so compaction can outrun a
// stalled cursor in test-sized workloads) and follower-side checkpoints.
type selfHealNodeConfig struct {
	replicaOf    string
	segmentBytes int64
	followerCkpt int
}

func startSelfHealNode(t *testing.T, cfg selfHealNodeConfig) *replNode {
	t.Helper()
	scfg := kvStoreConfig(4, 1)
	for m := 0; m < 4; m++ {
		scfg.HostedMachines = append(scfg.HostedMachines, m)
	}
	eng, err := store.NewEngine(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(eng); err != nil {
		t.Fatal(err)
	}
	rm, err := recovery.New(eng, recovery.Config{DataDir: t.TempDir(), SegmentBytes: cfg.segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	srv, err := server.New(server.Config{
		Engine:     eng,
		DecodeArgs: decodeStrArgs,
		Node: &server.NodeConfig{
			ID: 0, Nodes: 1,
			Recovery:                rm,
			DecodeRow:               decodeStrRow,
			PeerURL:                 func(int) string { return url },
			ReplicaOf:               cfg.replicaOf,
			FollowerCheckpointEvery: cfg.followerCkpt,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	peer := transport.NewPeer(url)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := peer.WaitHealthy(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return &replNode{eng: eng, rm: rm, srv: srv, peer: peer, url: url}
}

func getStr(t *testing.T, eng *store.Engine, key string) string {
	t.Helper()
	v, err := eng.Execute("get", key, nil)
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	s, ok := v.(string)
	if !ok {
		t.Fatalf("get %q returned %T %v", key, v, v)
	}
	return s
}

// TestZombieRejoinChain is the tentpole acceptance gate: the fixed-seed
// chaos workload run through a kill -> promote -> rejoin -> kill-again
// chain. Node A serves the first half of the script (shipped to B under the
// chaos fault schedule), writes a divergent suffix B never sees, and is
// fenced when B is promoted. A then demotes itself warm — truncating exactly
// that suffix — and rejoins as B's follower for the second half. Killing B
// and promoting the rejoined A must yield the byte-identical fingerprint of
// the single-process mem oracle, proving the zombie's unacked suffix left no
// trace.
func TestZombieRejoinChain(t *testing.T) {
	oracle := runReplChaosScript(t, "mem")

	a := startReplNodeWith(t, 4, 1, "", decodeStrArgs, decodeStrRow)
	b := startReplNodeWith(t, 4, 1, a.url, decodeStrArgs, decodeStrRow)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	put := func(eng *store.Engine, key, val string) {
		t.Helper()
		if _, err := eng.Execute("put", key, val); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for i := 0; i < replChaosKeys; i++ {
		put(a.eng, fmt.Sprintf("k-%d", i), fmt.Sprintf("init-%d", i))
	}
	meta := syncFollower(t, a, b)
	inj, err := faults.NewShip(faults.ShipConfig{
		Seed: replChaosSeed, Drop: 0.15, Dup: 0.25, Reorder: 0.2, Partition: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := newTestShipper(t, a, b, meta.Cursor, 32, inj)

	ops := replChaosScriptOps()
	for i, op := range ops[:replChaosOps/2] {
		put(a.eng, op.key, op.val)
		if i%7 == 0 {
			if _, err := sh.ShipOnce(ctx); err != nil {
				t.Fatalf("ShipOnce mid-storm: %v", err)
			}
		}
	}
	topo := transport.NewLocal(a.eng, a.rm)
	ex, err := squall.NewExecutor(topo, chaosExecutorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 2, 0); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	drainShipper(t, sh)

	// The divergent suffix: acked on A, never shipped. These hit fingerprint
	// keys, so any survivor shows up as a parity break.
	for i := 0; i < 12; i++ {
		put(a.eng, fmt.Sprintf("k-%d", i), fmt.Sprintf("zombie-%d", i))
	}

	if _, err := b.peer.Promote(ctx, a.rm.Epoch()+1); err != nil {
		t.Fatalf("promote B: %v", err)
	}

	// The zombie keeps shipping into the new primary until a batch lands and
	// is fenced (the chaos injector may drop a few attempts first).
	var shipErr error
	for i := 0; i < 1000 && shipErr == nil; i++ {
		_, shipErr = sh.ShipOnce(ctx)
	}
	if !errors.Is(shipErr, wire.ErrFenced) {
		t.Fatalf("zombie ship error = %v, want ErrFenced", shipErr)
	}

	// Self-heal: fence, demote toward the new primary, truncate the suffix.
	a.srv.MarkFenced()
	pst, err := b.peer.ReplStatus(ctx)
	if err != nil {
		t.Fatalf("new primary status: %v", err)
	}
	warm, err := a.srv.DemoteToFollower(pst)
	if err != nil {
		t.Fatalf("DemoteToFollower: %v", err)
	}
	if !warm {
		t.Fatal("DemoteToFollower fell back to full resync; wanted a warm truncating rejoin")
	}

	// Second half of the script runs on the new primary, shipped back to the
	// rejoined zombie under a fresh fault schedule.
	inj2, err := faults.NewShip(faults.ShipConfig{
		Seed: replChaosSeed + 1, Drop: 0.15, Dup: 0.25, Reorder: 0.2, Partition: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh2 := newTestShipper(t, b, a, pst.Rejoin.Cursor, 32, inj2)
	for i, op := range ops[replChaosOps/2:] {
		put(b.eng, op.key, op.val)
		if i%7 == 0 {
			if _, err := sh2.ShipOnce(ctx); err != nil {
				t.Fatalf("ShipOnce after rejoin: %v", err)
			}
		}
	}
	drainShipper(t, sh2)

	// Kill the new primary too: the rejoined zombie must promote cleanly.
	if _, err := a.peer.Promote(ctx, b.rm.Epoch()+1); err != nil {
		t.Fatalf("promote rejoined A: %v", err)
	}
	if got := chaosFingerprint(t, a.eng); got != oracle {
		t.Fatalf("rejoined-then-promoted fingerprint diverged from mem oracle:\n--- oracle ---\n%s--- rejoined ---\n%s", oracle, got)
	}
}

// TestSyncCommitRPOZero races writes against staggered shipper deaths with
// the follower-durability barrier armed. The invariant: any write the
// primary acknowledged before the shipper died must be present on the
// follower — acked-but-lost is the one outcome synchronous commit forbids.
// (A write the client saw fail may still land; that ambiguity is allowed.)
func TestSyncCommitRPOZero(t *testing.T) {
	primary := startReplNodeWith(t, 4, 1, "", decodeStrArgs, decodeStrRow)
	follower := startReplNodeWith(t, 4, 1, primary.url, decodeStrArgs, decodeStrRow)
	syncFollower(t, primary, follower)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Every round writes its own key range, each key at most once, and all
	// verification waits until the last shipper is dead: a get executed
	// directly on the follower's engine is itself a logged command that bumps
	// the bucket's LSN, so reading mid-stream would make later shipped puts
	// look like duplicates. (A real replica never takes direct traffic — the
	// server refuses client requests until promotion.)
	type ackRec struct{ key, val string }
	var ackedAll []ackRec
	runRound := func(round int, writes int, stagger time.Duration) {
		t.Helper()
		fst, err := follower.peer.ReplStatus(ctx)
		if err != nil {
			t.Fatalf("round %d: follower status: %v", round, err)
		}
		sh, err := transport.NewShipper(transport.ShipperConfig{
			RM:       primary.rm,
			Follower: follower.peer,
			FromNode: 0, ToNode: -1,
			Start:      fst.Applied,
			Interval:   time.Millisecond,
			SyncCommit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sctx, scancel := context.WithCancel(context.Background())
		defer scancel()
		shipDone := make(chan struct{})
		go func() { defer close(shipDone); _ = sh.Run(sctx) }()

		// The kill instant is the dead flag, raised before the shipper is
		// torn down: a write that sneaks past the disarmed barrier afterwards
		// is never counted as acked, because no client of the dead process
		// would have seen that ack either.
		var dead atomic.Bool
		var acked []ackRec
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for i := 0; i < writes; i++ {
				if dead.Load() {
					return
				}
				key := fmt.Sprintf("k-%d", round*30+i)
				val := fmt.Sprintf("rpo-%d-%d", round, i)
				if _, err := primary.eng.Execute("put", key, val); err == nil && !dead.Load() {
					acked = append(acked, ackRec{key, val})
				}
			}
		}()
		if stagger >= 0 {
			time.Sleep(stagger)
			dead.Store(true)
			scancel()
			<-shipDone
		} else {
			<-writerDone // unkilled round: every write must ack
			dead.Store(true)
			scancel()
			<-shipDone
		}
		<-writerDone

		if stagger < 0 && len(acked) != writes {
			t.Fatalf("round %d: %d of %d writes acked with a healthy shipper", round, len(acked), writes)
		}
		ackedAll = append(ackedAll, acked...)
	}

	// Staggered kills sweep the race window from "almost immediately" to
	// "after several ship round trips"...
	for round := 0; round < 6; round++ {
		runRound(round, 30, time.Duration(round)*400*time.Microsecond+200*time.Microsecond)
	}
	// ...and a final unkilled round proves the sweep wasn't vacuous: with the
	// shipper healthy, every write acks and every ack is on the follower.
	runRound(6, 20, -1)
	if len(ackedAll) < 20 {
		t.Fatalf("only %d acked writes across the sweep; expected at least the unkilled round's 20", len(ackedAll))
	}
	for _, a := range ackedAll {
		if got := getStr(t, follower.eng, a.key); got != a.val {
			t.Fatalf("acked write %s=%s lost on follower (has %q); RPO-zero contract broken", a.key, a.val, got)
		}
	}
}

// TestStalledFollowerFullResync covers the PinShip-vs-compaction race: a
// follower stalls long enough that (once the shipper's retention pin is
// gone) a primary checkpoint compacts the WAL out from under its cursor.
// Resuming must fail with ErrShipGone, and the forced full resync must
// converge to the same fingerprint as a run that never stalled.
func TestStalledFollowerFullResync(t *testing.T) {
	run := func(stall bool) string {
		t.Helper()
		// 4 KiB segments so the storm rolls the WAL many times over.
		primary := startSelfHealNode(t, selfHealNodeConfig{segmentBytes: 4096})
		follower := startSelfHealNode(t, selfHealNodeConfig{replicaOf: primary.url, segmentBytes: 4096})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()

		put := func(key, val string) {
			t.Helper()
			if _, err := primary.eng.Execute("put", key, val); err != nil {
				t.Fatalf("put %s: %v", key, err)
			}
		}
		for i := 0; i < replChaosKeys; i++ {
			put(fmt.Sprintf("k-%d", i), fmt.Sprintf("init-%d", i))
		}
		meta := syncFollower(t, primary, follower)
		sh := newTestShipper(t, primary, follower, meta.Cursor, 32, nil)

		for i, op := range replChaosScriptOps() {
			put(op.key, op.val)
			if !stall && i%7 == 0 {
				if _, err := sh.ShipOnce(ctx); err != nil {
					t.Fatalf("ShipOnce: %v", err)
				}
			}
		}
		if stall {
			// The stalled shipper's pin is the only thing retaining the
			// cursor's segments; a dead shipping process drops it, and the
			// next checkpoint compacts them away.
			primary.rm.PinShip(0)
			if _, err := primary.rm.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if _, err := sh.ShipOnce(ctx); !errors.Is(err, wal.ErrShipGone) {
				t.Fatalf("ship after compaction: err = %v, want ErrShipGone", err)
			}
			// The mandated recovery: a fresh snapshot sync and a shipper
			// starting from its cursor.
			meta2 := syncFollower(t, primary, follower)
			sh = newTestShipper(t, primary, follower, meta2.Cursor, 32, nil)
		}
		drainShipper(t, sh)
		if _, err := follower.peer.Promote(ctx, primary.rm.Epoch()+1); err != nil {
			t.Fatalf("promote: %v", err)
		}
		return chaosFingerprint(t, follower.eng)
	}

	control := run(false)
	stalled := run(true)
	if stalled != control {
		t.Fatalf("full-resync fingerprint diverged from unstalled control:\n--- control ---\n%s--- stalled ---\n%s", control, stalled)
	}
}

// TestFollowerCheckpoints: a replica with FollowerCheckpointEvery set runs
// checkpoint rounds against its own WAL as shipped records accumulate, and
// still promotes to the correct state.
func TestFollowerCheckpoints(t *testing.T) {
	primary := startSelfHealNode(t, selfHealNodeConfig{})
	follower := startSelfHealNode(t, selfHealNodeConfig{replicaOf: primary.url, followerCkpt: 40})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	meta := syncFollower(t, primary, follower)
	base := follower.rm.Stats().Checkpoints
	sh := newTestShipper(t, primary, follower, meta.Cursor, 32, nil)
	const writes = 200
	for i := 0; i < writes; i++ {
		if _, err := primary.eng.Execute("put", fmt.Sprintf("k-%d", i%replChaosKeys), fmt.Sprintf("fc-%d", i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	drainShipper(t, sh)

	// The checkpoint runs async off the ship path; wait for the counter.
	deadline := time.Now().Add(10 * time.Second)
	for follower.rm.Stats().Checkpoints <= base {
		if time.Now().After(deadline) {
			t.Fatalf("follower ran no checkpoint after %d shipped records (counter stuck at %d)", writes, base)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := follower.peer.Promote(ctx, primary.rm.Epoch()+1); err != nil {
		t.Fatalf("promote: %v", err)
	}
	for _, i := range []int{0, 39, 40, 41, writes - 1} {
		want := fmt.Sprintf("fc-%d", i)
		if got := getStr(t, follower.eng, fmt.Sprintf("k-%d", i)); got != want {
			t.Fatalf("k-%d = %q on promoted follower, want %q", i, got, want)
		}
	}
	if err := follower.rm.Err(); err != nil {
		t.Fatalf("follower log latched an error: %v", err)
	}

	// A batch near the drain's end may have launched one last async
	// checkpoint (at most one is ever in flight); let it finish writing
	// images before the test tears the data directory down.
	stable := follower.rm.Stats().Checkpoints
	for settled := 0; settled < 10; {
		time.Sleep(100 * time.Millisecond)
		if now := follower.rm.Stats().Checkpoints; now == stable {
			settled++
		} else {
			stable, settled = now, 0
		}
	}
}
