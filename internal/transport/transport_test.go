package transport_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
)

// The kv workload: one table, integer values, the same procedures the squall
// chaos suites use — small enough that every migration mechanism (extract,
// chunk encode/decode, install, forwarding) is exercised without workload
// noise.

func registerKV(eng *store.Engine) error {
	if err := eng.Register("put", func(tx *store.Tx) (any, error) {
		return nil, tx.Put("kv", tx.Key, tx.Args)
	}); err != nil {
		return err
	}
	return eng.Register("get", func(tx *store.Tx) (any, error) {
		v, ok, err := tx.Get("kv", tx.Key)
		if err != nil || !ok {
			return nil, fmt.Errorf("missing %q: %v", tx.Key, err)
		}
		return v, nil
	})
}

func decodeKVArgs(txn string, raw json.RawMessage) (any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func decodeKVRow(table string, raw json.RawMessage) (any, error) {
	if table != "kv" {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func kvStoreConfig(machines, initial int) store.Config {
	return store.Config{
		MaxMachines:          machines,
		PartitionsPerMachine: 2,
		Buckets:              240,
		ServiceTime:          0,
		QueueCapacity:        4096,
		InitialMachines:      initial,
	}
}

// loadAll runs the same deterministic load against every node engine; each
// keeps the keys it hosts and refuses the rest, so the union is exactly one
// copy of the dataset.
func loadAll(t *testing.T, engines []*store.Engine, keys int) {
	t.Helper()
	for _, e := range engines {
		for i := 0; i < keys; i++ {
			if _, err := e.Execute("put", fmt.Sprintf("k-%d", i), i); err != nil {
				if errors.Is(err, store.ErrNotOwned) {
					continue
				}
				t.Fatalf("loading k-%d: %v", i, err)
			}
		}
	}
}

func newKVLoopback(t *testing.T, nodes, machines, initial int) *transport.Loopback {
	t.Helper()
	lb, err := transport.NewLoopback(transport.LoopbackConfig{
		Nodes:      nodes,
		Store:      kvStoreConfig(machines, initial),
		Register:   registerKV,
		DecodeArgs: decodeKVArgs,
		DecodeRow:  decodeKVRow,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lb.Close() })
	return lb
}

func newLocal(t *testing.T, machines, initial int) *transport.Local {
	t.Helper()
	eng, err := store.NewEngine(kvStoreConfig(machines, initial))
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(eng); err != nil {
		t.Fatal(err)
	}
	rm := recovery.NewManager(eng)
	eng.Start()
	t.Cleanup(eng.Stop)
	return transport.NewLocal(eng, rm)
}

func chaosExecutorConfig() squall.Config {
	return squall.Config{
		ChunkRows:       30,
		RowCost:         time.Microsecond,
		ChunkOverhead:   20 * time.Microsecond,
		Spacing:         50 * time.Microsecond,
		RateFactor:      1,
		MaxChunkRetries: 3,
		RetryBackoff:    50 * time.Microsecond,
		MaxRetryBackoff: time.Millisecond,
	}
}

// runChaosScript drives the acceptance scenario against any topology: a
// faulty 1->4 scale-out, a crash of machine 1 (hosted by the second node in
// two-node mode), a 4->1 scale-in attempt that must abort on the down
// machine, restore, and the re-run that must succeed. The returned
// fingerprint captures every outcome the two modes must agree on: per-step
// results, retry/abort counters, the final plan, and row conservation.
func runChaosScript(t *testing.T, topo transport.Topology, seed int64, keys int) string {
	t.Helper()
	inj, err := faults.New(faults.Config{Seed: seed, ChunkDrop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	topo.SetFaultInjector(inj)
	ex, err := squall.NewExecutor(topo, chaosExecutorConfig())
	if err != nil {
		t.Fatal(err)
	}

	fp := ""
	step := func(name string, fn func() error) {
		err := fn()
		var me *squall.MoveError
		switch {
		case err == nil:
			fp += name + ": ok\n"
		case errors.As(err, &me):
			if !me.RolledBack {
				t.Fatalf("%s: abort did not roll back: %v", name, me)
			}
			fp += fmt.Sprintf("%s: abort (%s)\n", name, wire.CodeOf(err))
		default:
			// A refusal before any chunk moved (e.g. the scale-in would
			// drain a down machine) — same class, same code, both modes.
			fp += fmt.Sprintf("%s: refused (%s)\n", name, wire.CodeOf(err))
		}
		if got := topo.TotalRows(); got != keys {
			t.Fatalf("%s: TotalRows = %d, want %d", name, got, keys)
		}
	}

	step("scale-out 1->4", func() error { return ex.Reconfigure(1, 4, 0) })

	if err := topo.Crash(1); err != nil {
		t.Fatalf("crash machine 1: %v", err)
	}
	if got := topo.DownMachines(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownMachines = %v after crash, want [1]", got)
	}
	// Scaling in with machine 1 dead must abort on ErrPartitionDown fencing
	// and roll the plan back — identically in both modes.
	before := fmt.Sprint(topo.Plan())
	step("scale-in 4->1 (machine 1 down)", func() error { return ex.Reconfigure(4, 1, 0) })
	if got := fmt.Sprint(topo.Plan()); got != before {
		t.Fatal("aborted scale-in did not restore the pre-move plan")
	}

	st, err := topo.Restore(1)
	if err != nil {
		t.Fatalf("restore machine 1: %v", err)
	}
	if st.Machine != 1 || st.Partitions == 0 {
		t.Fatalf("restore stats = %+v, want machine 1 with partitions rebuilt", st)
	}
	if got := topo.DownMachines(); len(got) != 0 {
		t.Fatalf("DownMachines = %v after restore, want none", got)
	}

	step("scale-in 4->1 (restored)", func() error { return ex.Reconfigure(4, 1, 0) })

	stats := ex.Stats()
	fp += fmt.Sprintf("retries %d aborts %d rollback-chunks %d\n", stats.Retries, stats.Aborts, stats.RollbackChunks)
	fp += fmt.Sprintf("final plan %s\nrows %d\n", fmt.Sprint(topo.Plan()), topo.TotalRows())
	return fp
}

// TestLocalRemoteParity is the refactor's acceptance gate: the fixed-seed
// chaos scenario — scale-out under chunk drops, a machine crash, the fenced
// abort, restore, scale-in — produces the identical fingerprint whether the
// cluster is one process (the reference oracle) or two node processes behind
// the wire.
func TestLocalRemoteParity(t *testing.T) {
	const seed, keys = 42, 500

	local := newLocal(t, 4, 1)
	loadAll(t, []*store.Engine{local.Engine}, keys)
	if _, err := local.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := runChaosScript(t, local, seed, keys)

	lb := newKVLoopback(t, 2, 4, 1)
	loadAll(t, lb.Engines(), keys)
	if err := lb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	got := runChaosScript(t, lb.Remote(), seed, keys)

	if got != want {
		t.Fatalf("multi-process run diverged from single-process oracle:\n--- local ---\n%s--- remote ---\n%s", want, got)
	}
	if n := lb.Remote().FlipErrors(); n != 0 {
		t.Fatalf("flip broadcast errors: %d", n)
	}
}

// TestRemoteMirrors checks the coordinator bootstrap: geometry, plan and row
// counts come from the nodes themselves and match the oracle's view.
func TestRemoteMirrors(t *testing.T) {
	const keys = 200
	lb := newKVLoopback(t, 2, 4, 1)
	loadAll(t, lb.Engines(), keys)
	r := lb.Remote()

	if cfg := r.Config(); cfg.MaxMachines != 4 || cfg.PartitionsPerMachine != 2 || cfg.Buckets != 240 {
		t.Fatalf("remote config = %+v", cfg)
	}
	if got := r.ActiveMachines(); got != 1 {
		t.Fatalf("ActiveMachines = %d, want 1", got)
	}
	if got := r.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d, want %d", got, keys)
	}
	if got, want := fmt.Sprint(r.Plan()), fmt.Sprint(lb.Engines()[0].Plan()); got != want {
		t.Fatalf("plan mirror %s != node plan %s", got, want)
	}
	for b := 0; b < 240; b += 17 {
		if got, want := r.OwnerOf(b), lb.Engines()[0].OwnerOf(b); got != want {
			t.Fatalf("OwnerOf(%d) = %d, want %d", b, got, want)
		}
	}
}

// TestForwarding posts transactions for every key to a single node's front
// end; keys hosted by the other node must be transparently forwarded and
// answered with the right value.
func TestForwarding(t *testing.T) {
	const keys = 60
	lb := newKVLoopback(t, 2, 2, 2)
	loadAll(t, lb.Engines(), keys)

	for i := 0; i < keys; i++ {
		req := wire.Request{Txn: "get", Key: fmt.Sprintf("k-%d", i)}
		body, _ := json.Marshal(req)
		resp, err := http.Post(lb.Addrs()[0]+wire.PathTxn, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out wire.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("k-%d: status %d code %s: %s", i, resp.StatusCode, out.Code, out.Error)
		}
		var v int
		if err := json.Unmarshal(out.Value, &v); err != nil || v != i {
			t.Fatalf("k-%d = %s (%v), want %d", i, out.Value, err, i)
		}
	}
	fwd := int64(0)
	for _, s := range lb.Servers() {
		fwd += s.Counters().Forwarded
	}
	if fwd == 0 {
		t.Fatal("no requests were forwarded; every key resolved locally")
	}
}

// TestRemotePartitionDownOverWire crashes a machine hosted by the second
// node and checks the fencing a client sees: the transaction forwarded to
// the dead machine comes back 503/partition_down, and after restore it
// succeeds again.
func TestRemotePartitionDownOverWire(t *testing.T) {
	const keys = 60
	lb := newKVLoopback(t, 2, 2, 2)
	loadAll(t, lb.Engines(), keys)
	r := lb.Remote()

	// Find a key hosted by machine 1 (node 1).
	eng := lb.Engines()[0]
	key := ""
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k-%d", i)
		if eng.MachineOfPartition(eng.PartitionOfKey(k)) == 1 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key maps to machine 1")
	}

	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	req := wire.Request{Txn: "get", Key: key}
	body, _ := json.Marshal(req)
	resp, err := http.Post(lb.Addrs()[0]+wire.PathTxn, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out wire.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || out.Code != wire.CodePartitionDown {
		t.Fatalf("crashed-machine get: status %d code %s, want 503 %s", resp.StatusCode, out.Code, wire.CodePartitionDown)
	}

	if _, err := r.Restore(1); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(lb.Addrs()[0]+wire.PathTxn, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out = wire.Response{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-restore get: status %d code %s: %s", resp.StatusCode, out.Code, out.Error)
	}
}

// TestDuplicateInstallIdempotent drives the store install path directly with
// a duplicated and replayed chunk: re-delivering the same chunk must add no
// rows, and TotalRows is conserved through arbitrary replays.
func TestDuplicateInstallIdempotent(t *testing.T) {
	const keys = 200
	lb := newKVLoopback(t, 2, 2, 2)
	loadAll(t, lb.Engines(), keys)
	r := lb.Remote()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Pick a source partition on node 0 (machine 0) and a destination on
	// node 1 (machine 1), and move a few of its buckets by hand.
	const from, to = 0, 2 // partitions: machine 0 part 0, machine 1 part 0
	buckets := lb.Engines()[0].OwnedBuckets(from)
	if len(buckets) < 3 {
		t.Fatalf("partition %d owns %d buckets", from, len(buckets))
	}
	buckets = buckets[:3]

	req := wire.NodeMove{Buckets: buckets, From: from, To: to}
	meta, frames, err := lb.Peers()[0].Extract(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	first, err := lb.Peers()[1].Install(ctx, req, meta, frames)
	if err != nil {
		t.Fatal(err)
	}
	if first != meta.Rows {
		t.Fatalf("first install added %d rows, chunk carries %d", first, meta.Rows)
	}
	// Replay the identical chunk twice more — duplicated delivery.
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := lb.Peers()[1].Install(ctx, req, meta, frames); err != nil {
			t.Fatalf("duplicate install %d: %v", attempt, err)
		}
	}
	if got := r.TotalRows(); got != keys {
		t.Fatalf("TotalRows = %d after duplicate installs, want %d", got, keys)
	}
	if got := lb.Engines()[1].OwnerOf(buckets[0]); got != to {
		t.Fatalf("bucket %d owned by %d on node 1, want %d", buckets[0], got, to)
	}
}

// TestNetFaultsConserveRows runs reconfigurations under an aggressive
// link-fault plane — every chunk duplicated, many reordered, some slowed —
// and checks the invariants the chaos plane exists to prove: row
// conservation and full readability afterwards.
func TestNetFaultsConserveRows(t *testing.T) {
	const keys = 300
	lb := newKVLoopback(t, 2, 4, 1)
	loadAll(t, lb.Engines(), keys)
	r := lb.Remote()

	net, err := faults.NewNet(faults.NetConfig{
		Seed:        7,
		LinkDup:     1,
		LinkReorder: 0.5,
		LinkSlow:    0.1,
		LinkDelay:   100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.SetNetInjector(net)

	ex, err := squall.NewExecutor(r, chaosExecutorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{4, 1} {
		from := r.ActiveMachines()
		if err := ex.Reconfigure(from, target, 0); err != nil {
			t.Fatalf("%d->%d: %v", from, target, err)
		}
		if got := r.TotalRows(); got != keys {
			t.Fatalf("%d->%d: TotalRows = %d, want %d", from, target, got, keys)
		}
	}
	if st := net.Stats(); st.Dups == 0 {
		t.Fatalf("net injector saw no duplicates: %+v", st)
	}

	// Every key still readable through the front end (with forwarding).
	for i := 0; i < keys; i += 7 {
		req := wire.Request{Txn: "get", Key: fmt.Sprintf("k-%d", i)}
		body, _ := json.Marshal(req)
		resp, err := http.Post(lb.Addrs()[1]+wire.PathTxn, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out wire.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("k-%d after net chaos: status %d code %s: %s", i, resp.StatusCode, out.Code, out.Error)
		}
	}
}
