package transport_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
)

// The replication chaos suite: one fixed-seed workload — bulk load, a put
// storm, a mid-script reconfiguration, a second storm — runs in three modes:
// against a mem-logged engine (the oracle), a disk-logged engine, and a
// primary/follower pair whose ship stream suffers drops, duplicates,
// reorders and partitions, ending in a promotion. All three must produce the
// byte-identical fingerprint (plan, active machines, row count, every
// value), and the replicated mode must be byte-identical across repeated
// runs — determinism all the way through the fault schedule.
//
// Values are strings: ship args travel as JSON, and only strings survive the
// round trip as the identical Go value (ints come back float64), so string
// payloads make "same value" mean the same bytes in every mode.

func decodeStrArgs(txn string, raw json.RawMessage) (any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var v string
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func decodeStrRow(table string, raw json.RawMessage) (any, error) {
	if table != "kv" {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	var v string
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

const (
	replChaosKeys = 240
	replChaosOps  = 600
	replChaosSeed = 77
)

type chaosOp struct {
	key, val string
}

// replChaosOps builds the deterministic put storm.
func replChaosScriptOps() []chaosOp {
	rng := rand.New(rand.NewSource(replChaosSeed))
	ops := make([]chaosOp, replChaosOps)
	for i := range ops {
		k := rng.Intn(replChaosKeys)
		ops[i] = chaosOp{key: fmt.Sprintf("k-%d", k), val: fmt.Sprintf("v%d-%d", i, k)}
	}
	return ops
}

func newChaosEngine(t *testing.T, dataDir string) (*store.Engine, *recovery.Manager) {
	t.Helper()
	scfg := kvStoreConfig(4, 1)
	for m := 0; m < 4; m++ {
		scfg.HostedMachines = append(scfg.HostedMachines, m)
	}
	eng, err := store.NewEngine(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(eng); err != nil {
		t.Fatal(err)
	}
	rm, err := recovery.New(eng, recovery.Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	return eng, rm
}

// chaosFingerprint captures everything the modes must agree on: the plan,
// the active-machine count, row conservation, and every key's value.
func chaosFingerprint(t *testing.T, eng *store.Engine) string {
	t.Helper()
	fp := fmt.Sprintf("plan %v\nactive %d\nrows %d\n", eng.Plan(), eng.ActiveMachines(), eng.TotalRows())
	for i := 0; i < replChaosKeys; i++ {
		v, err := eng.Execute("get", fmt.Sprintf("k-%d", i), nil)
		if err != nil {
			t.Fatalf("fingerprint get k-%d: %v", i, err)
		}
		fp += fmt.Sprintf("k-%d=%v\n", i, v)
	}
	return fp
}

// runReplChaosScript runs the scripted workload in one mode and returns its
// fingerprint. mode is "mem", "disk", or "repl".
func runReplChaosScript(t *testing.T, mode string) string {
	t.Helper()
	var eng *store.Engine
	var rm *recovery.Manager
	var primary, follower *replNode
	var sh *transport.Shipper

	switch mode {
	case "mem":
		scfg := kvStoreConfig(4, 1)
		for m := 0; m < 4; m++ {
			scfg.HostedMachines = append(scfg.HostedMachines, m)
		}
		e, err := store.NewEngine(scfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := registerKV(e); err != nil {
			t.Fatal(err)
		}
		eng, rm = e, recovery.NewManager(e)
		eng.Start()
		t.Cleanup(eng.Stop)
	case "disk":
		eng, rm = newChaosEngine(t, t.TempDir())
	case "repl":
		primary = startReplNodeWith(t, 4, 1, "", decodeStrArgs, decodeStrRow)
		follower = startReplNodeWith(t, 4, 1, primary.url, decodeStrArgs, decodeStrRow)
		eng, rm = primary.eng, primary.rm
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	put := func(key, val string) {
		if _, err := eng.Execute("put", key, val); err != nil {
			t.Fatalf("%s: put %s: %v", mode, key, err)
		}
	}
	for i := 0; i < replChaosKeys; i++ {
		put(fmt.Sprintf("k-%d", i), fmt.Sprintf("init-%d", i))
	}

	if mode == "repl" {
		meta := syncFollower(t, primary, follower)
		inj, err := faults.NewShip(faults.ShipConfig{
			Seed: replChaosSeed, Drop: 0.15, Dup: 0.25, Reorder: 0.2, Partition: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sh = newTestShipper(t, primary, follower, meta.Cursor, 32, inj)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	step := func(i int) {
		// Interleave shipping with the storm; progress is irregular under
		// the fault schedule, which is exactly the point.
		if sh != nil && i%7 == 0 {
			if _, err := sh.ShipOnce(ctx); err != nil {
				t.Fatalf("ShipOnce mid-storm: %v", err)
			}
		}
	}

	ops := replChaosScriptOps()
	for i, op := range ops[:replChaosOps/2] {
		put(op.key, op.val)
		step(i)
	}

	// Mid-script reconfiguration: the plan change rides the same WAL stream
	// as the commands, so the follower replays the migration at the same
	// point in history.
	topo := transport.NewLocal(eng, rm)
	ex, err := squall.NewExecutor(topo, chaosExecutorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Reconfigure(1, 2, 0); err != nil {
		t.Fatalf("%s: reconfigure: %v", mode, err)
	}

	for i, op := range ops[replChaosOps/2:] {
		put(op.key, op.val)
		step(i)
	}

	if mode != "repl" {
		return chaosFingerprint(t, eng)
	}
	drainShipper(t, sh)
	if _, err := follower.peer.Promote(ctx, primary.rm.Epoch()+1); err != nil {
		t.Fatalf("promote: %v", err)
	}
	return chaosFingerprint(t, follower.eng)
}

// TestReplChaosParity is the acceptance gate for the replication plane: the
// fixed-seed chaos script produces identical fingerprints across the
// single-process mem oracle, the disk-backed store, and three independent
// runs of the faulty replicated mode ending in promotion.
func TestReplChaosParity(t *testing.T) {
	oracle := runReplChaosScript(t, "mem")
	disk := runReplChaosScript(t, "disk")
	if disk != oracle {
		t.Fatalf("disk fingerprint diverged from mem oracle:\n--- mem ---\n%s--- disk ---\n%s", oracle, disk)
	}
	var prev string
	for run := 0; run < 3; run++ {
		repl := runReplChaosScript(t, "repl")
		if repl != oracle {
			t.Fatalf("repl run %d diverged from oracle:\n--- oracle ---\n%s--- repl ---\n%s", run, oracle, repl)
		}
		if run > 0 && repl != prev {
			t.Fatalf("repl runs %d and %d diverged from each other", run-1, run)
		}
		prev = repl
	}
}
