package transport

import (
	"context"
	"fmt"
	"net"
	"time"

	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/store"
	"pstore/internal/wire"
)

// LoopbackConfig assembles an in-process multi-node cluster: n node engines,
// each hosting its share of machines, each behind a real HTTP server on a
// loopback listener, tied together by a Remote topology. Everything crosses
// the wire exactly as separate OS processes would — only the process
// boundary is simulated — which makes it the reference harness for
// single-process vs multi-process parity tests and benchmarks.
type LoopbackConfig struct {
	// Nodes is the node count; machine m is hosted by node m % Nodes.
	Nodes int
	// Store is the shared cluster geometry. HostedMachines is derived per
	// node and must be empty here.
	Store store.Config
	// Register installs the workload's procedures on each node engine before
	// it starts. Required.
	Register func(eng *store.Engine) error
	// DecodeArgs and DecodeRow are the workload's wire codecs.
	DecodeArgs server.ArgsDecoder
	DecodeRow  wire.RowDecoder
	// Recovery attaches a per-node recovery manager (command log + crash/
	// restore plane). Without it, Crash/Restore on the topology fail.
	Recovery bool
}

// Loopback is a running in-process multi-node cluster. Close tears it down.
type Loopback struct {
	engines   []*store.Engine
	managers  []*recovery.Manager
	servers   []*server.Server
	listeners []net.Listener
	peers     []*Peer
	remote    *Remote
}

// NewLoopback starts the node engines and servers and connects a Remote
// topology over them.
func NewLoopback(cfg LoopbackConfig) (*Loopback, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("transport: loopback needs at least 1 node, got %d", cfg.Nodes)
	}
	if len(cfg.Store.HostedMachines) != 0 {
		return nil, fmt.Errorf("transport: loopback derives HostedMachines; leave it empty")
	}
	if cfg.Register == nil {
		return nil, fmt.Errorf("transport: loopback needs a Register function")
	}
	lb := &Loopback{}
	ok := false
	defer func() {
		if !ok {
			_ = lb.Close()
		}
	}()

	// Bind every listener first so each node's forwarding table can name all
	// peers before any server starts.
	addrs := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: loopback listener %d: %w", i, err)
		}
		lb.listeners = append(lb.listeners, l)
		addrs[i] = "http://" + l.Addr().String()
	}

	for i := 0; i < cfg.Nodes; i++ {
		scfg := cfg.Store
		for m := 0; m < scfg.MaxMachines; m++ {
			if m%cfg.Nodes == i {
				scfg.HostedMachines = append(scfg.HostedMachines, m)
			}
		}
		eng, err := store.NewEngine(scfg)
		if err != nil {
			return nil, fmt.Errorf("transport: loopback engine %d: %w", i, err)
		}
		lb.engines = append(lb.engines, eng)
		if err := cfg.Register(eng); err != nil {
			return nil, fmt.Errorf("transport: loopback engine %d register: %w", i, err)
		}
		var rm *recovery.Manager
		if cfg.Recovery {
			rm = recovery.NewManager(eng)
		}
		lb.managers = append(lb.managers, rm)
		eng.Start()

		srv, err := server.New(server.Config{
			Engine:     eng,
			DecodeArgs: cfg.DecodeArgs,
			Node: &server.NodeConfig{
				ID:        i,
				Nodes:     cfg.Nodes,
				Recovery:  rm,
				DecodeRow: cfg.DecodeRow,
				PeerURL:   func(node int) string { return addrs[node] },
			},
		})
		if err != nil {
			return nil, fmt.Errorf("transport: loopback server %d: %w", i, err)
		}
		lb.servers = append(lb.servers, srv)
		go func(s *server.Server, l net.Listener) { _ = s.Serve(l) }(srv, lb.listeners[i])
		lb.peers = append(lb.peers, NewPeer(addrs[i]))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, p := range lb.peers {
		if err := p.WaitHealthy(ctx, 5*time.Second); err != nil {
			return nil, fmt.Errorf("transport: loopback node %d: %w", i, err)
		}
	}
	remote, err := NewRemote(ctx, lb.peers)
	if err != nil {
		return nil, err
	}
	lb.remote = remote
	ok = true
	return lb, nil
}

// Remote returns the coordinator-side topology over the loopback nodes.
func (lb *Loopback) Remote() *Remote { return lb.remote }

// Engines returns the node engines in node order — the hook test loaders use
// to populate every node with the same deterministic dataset (each engine
// keeps the keys it hosts and refuses the rest).
func (lb *Loopback) Engines() []*store.Engine { return lb.engines }

// Managers returns the per-node recovery managers (nil entries when the
// loopback was built without recovery).
func (lb *Loopback) Managers() []*recovery.Manager { return lb.managers }

// Peers returns the node clients in node order.
func (lb *Loopback) Peers() []*Peer { return lb.peers }

// Servers returns the node front ends in node order.
func (lb *Loopback) Servers() []*server.Server { return lb.servers }

// Addrs returns the node base URLs in node order.
func (lb *Loopback) Addrs() []string {
	out := make([]string, len(lb.peers))
	for i, p := range lb.peers {
		out[i] = p.Addr()
	}
	return out
}

// Checkpoint installs a baseline checkpoint on every node — what a fresh
// deployment does right after loading, so restores never replay the bulk
// load.
func (lb *Loopback) Checkpoint() error {
	for i, rm := range lb.managers {
		if rm == nil {
			return fmt.Errorf("transport: loopback node %d has no recovery manager", i)
		}
		if _, err := rm.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the servers and engines down. Safe on a partially-built
// loopback.
func (lb *Loopback) Close() error {
	if lb.remote != nil {
		_ = lb.remote.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range lb.servers {
		_ = s.Shutdown(ctx)
	}
	for _, l := range lb.listeners[len(lb.servers):] {
		// Listeners bound but never handed to a server.
		_ = l.Close()
	}
	for _, e := range lb.engines {
		e.Stop()
	}
	return nil
}
