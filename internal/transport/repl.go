package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/wal"
	"pstore/internal/wire"
)

// Replication client half: the sync/ship/promote calls a serving process
// (or the coordinator) makes against a node's /v1/repl/* endpoints, and the
// Shipper — the loop a primary runs to stream its WAL to a follower.

// ReplSync bootstraps this peer as the follower's source: the peer streams
// back its sync meta frame and one BucketFrame per hosted bucket.
func (p *Peer) ReplSync(ctx context.Context, followerURL string) (wire.ReplSyncMeta, []wire.BucketFrame, error) {
	return p.replSync(ctx, wire.ReplSync{FollowerURL: followerURL})
}

// ReplResume asks the peer (the new primary) to resume shipping to this
// follower from cur — a warm rejoin, no snapshot stream. The peer refuses
// if cur is no longer retained in its WAL; the caller falls back to a full
// ReplSync.
func (p *Peer) ReplResume(ctx context.Context, followerURL string, cur wire.ShipCursor) (wire.ReplSyncMeta, error) {
	meta, frames, err := p.replSync(ctx, wire.ReplSync{FollowerURL: followerURL, Resume: &cur})
	if err == nil && len(frames) > 0 {
		return meta, fmt.Errorf("transport: resume sync streamed %d unexpected bucket frames", len(frames))
	}
	return meta, err
}

func (p *Peer) replSync(ctx context.Context, req wire.ReplSync) (wire.ReplSyncMeta, []wire.BucketFrame, error) {
	var meta wire.ReplSyncMeta
	body, err := p.do(ctx, http.MethodPost, wire.PathReplSync, req)
	if err != nil {
		return meta, nil, err
	}
	r := bytes.NewReader(body)
	if err := wire.DecodeFrame(r, &meta); err != nil {
		return meta, nil, fmt.Errorf("transport: sync meta frame: %w", err)
	}
	if meta.Buckets < 0 || meta.Buckets > 1<<20 {
		return meta, nil, fmt.Errorf("transport: sync meta declares %d buckets", meta.Buckets)
	}
	frames := make([]wire.BucketFrame, meta.Buckets)
	for i := range frames {
		if err := wire.DecodeFrame(r, &frames[i]); err != nil {
			return meta, nil, fmt.Errorf("transport: sync bucket frame %d/%d: %w", i, meta.Buckets, err)
		}
	}
	return meta, frames, nil
}

// Ship delivers one WAL batch to the peer (a follower) and returns its ack.
func (p *Peer) Ship(ctx context.Context, b *wire.ShipBatch) (wire.ShipAck, error) {
	var ack wire.ShipAck
	var buf bytes.Buffer
	if err := wire.WriteShipBatch(&buf, b); err != nil {
		return ack, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+wire.PathReplShip, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return ack, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeChunk)
	resp, err := p.hc.Do(req)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ack, err
	}
	if resp.StatusCode != http.StatusOK {
		return ack, peerError(resp.StatusCode, body)
	}
	return ack, json.Unmarshal(body, &ack)
}

// Promote asks the peer (a synced follower) to become primary under epoch.
func (p *Peer) Promote(ctx context.Context, epoch uint64) (wire.ReplStatus, error) {
	var st wire.ReplStatus
	err := p.postJSON(ctx, wire.PathReplPromote, wire.ReplPromote{Epoch: epoch}, &st)
	return st, err
}

// ReplDemote orders the peer (a fenced ex-primary) to stand down and rejoin
// the primary at primaryURL as a follower. The reply is the peer's current
// status — the demotion completes asynchronously; poll ReplStatus for
// role "replica" and a converged applied cursor.
func (p *Peer) ReplDemote(ctx context.Context, primaryURL string) (wire.ReplStatus, error) {
	var st wire.ReplStatus
	err := p.postJSON(ctx, wire.PathReplDemote, wire.ReplDemote{PrimaryURL: primaryURL}, &st)
	return st, err
}

// ReplStatus fetches the peer's replication self-description.
func (p *Peer) ReplStatus(ctx context.Context) (wire.ReplStatus, error) {
	var st wire.ReplStatus
	body, err := p.do(ctx, http.MethodGet, wire.PathReplStatus, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// SetPeer repoints one peer slot in the node's forwarding table — the
// coordinator's rewiring step after a promotion.
func (p *Peer) SetPeer(ctx context.Context, node int, url string) error {
	return p.postJSON(ctx, wire.PathNodePeer, wire.NodePeer{Node: node, URL: url}, nil)
}

// Health probes /v1/healthz. A node with a latched WAL error answers 503,
// so this is the coordinator's failure-detection probe: network death and
// lost durability look the same.
func (p *Peer) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+wire.PathHealth, nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("transport: %s unhealthy (%d): %s", p.base, resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// ErrShipResync is latched by a Shipper whose follower answered Resync: the
// primary installed data outside the WAL (an inbound migration) and the
// stream cannot express it. Only a fresh sync can continue.
var ErrShipResync = errors.New("transport: follower requires resync")

// ShipperConfig assembles a Shipper.
type ShipperConfig struct {
	// RM is the primary's recovery manager (the WAL being shipped).
	RM *recovery.Manager
	// Follower is the ship destination.
	Follower *Peer
	// FromNode/ToNode key the fault injector's (pair, batch, attempt) hash.
	FromNode, ToNode int
	// Faults, when set, injects replication-stream faults.
	Faults *faults.ShipInjector
	// BatchRecords caps records per batch (default wire.MaxShipRecords).
	BatchRecords int
	// Interval is Run's poll period when caught up (default 5ms).
	Interval time.Duration
	// Start is the cursor shipping begins from (the sync response's cursor).
	Start wire.ShipCursor
	// SyncCommit arms the WAL's remote-ack barrier for the shipper's
	// lifetime: the primary's appends return only once the follower has
	// durably applied them. Follower acks feed the barrier; when the shipper
	// stops or latches a terminal error, in-flight waiters are failed
	// (recovery.AbortSync) and the barrier is disarmed — writes degrade to
	// local durability rather than hanging, and the degradation is loud in
	// the caller's log via the Run error.
	SyncCommit bool
}

// Shipper streams a primary's WAL to one follower: read records beyond the
// cursor, frame them as a batch, deliver, advance on ack. Gap acks rewind
// to the follower's authoritative cursor (so duplicates and reorders
// converge), and each ack re-pins WAL retention at the oldest unacked
// segment. A Resync or Fenced answer latches a terminal error — the shipper
// has no unilateral recovery from either.
type Shipper struct {
	cfg ShipperConfig

	mu      sync.Mutex
	cur     wal.ShipCursor
	acked   wal.ShipCursor
	seq     uint64
	pending *wire.ShipBatch
	err     error
	shipped int64
}

// NewShipper builds a shipper resuming from cfg.Start.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.RM == nil || cfg.Follower == nil {
		return nil, errors.New("transport: ShipperConfig needs RM and Follower")
	}
	if !cfg.RM.Durable() {
		return nil, recovery.ErrNotDurable
	}
	if cfg.BatchRecords <= 0 || cfg.BatchRecords > wire.MaxShipRecords {
		cfg.BatchRecords = wire.MaxShipRecords
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	start := walCursor(cfg.Start)
	s := &Shipper{cfg: cfg, cur: start, acked: start}
	s.cfg.RM.PinShip(start.Seg)
	if cfg.SyncCommit {
		// Everything up to the start cursor is already on the follower (it
		// just synced to it), so the barrier opens exactly there.
		s.cfg.RM.SetRemoteAck(start)
		s.cfg.RM.SetSyncCommit(true)
	}
	return s, nil
}

func walCursor(c wire.ShipCursor) wal.ShipCursor {
	return wal.ShipCursor{Seg: c.Seg, Rec: c.Rec, Off: c.Off}
}

func wireCursor(c wal.ShipCursor) wire.ShipCursor {
	return wire.ShipCursor{Seg: c.Seg, Rec: c.Rec, Off: c.Off}
}

// Err returns the latched terminal error, if any.
func (s *Shipper) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Acked returns the follower's last acknowledged cursor.
func (s *Shipper) Acked() wire.ShipCursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wireCursor(s.acked)
}

// Shipped returns the count of successfully acknowledged batches.
func (s *Shipper) Shipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// Lag returns the primary's durable bytes the follower has not acked.
func (s *Shipper) Lag() int64 {
	s.mu.Lock()
	cur := s.acked
	s.mu.Unlock()
	return s.cfg.RM.ShipLag(cur)
}

// buildBatch frames WAL records as a wire batch. Command args are
// re-encoded as JSON — the same representation a client request used, so
// the follower's registered codec decodes them identically.
func buildBatch(recs []wal.ShipRecord, from, next wal.ShipCursor, epoch, baseline, seq uint64) (*wire.ShipBatch, error) {
	b := &wire.ShipBatch{
		Epoch:    epoch,
		Baseline: baseline,
		Seq:      seq,
		From:     wireCursor(from),
		Next:     wireCursor(next),
		Records:  make([]wire.ShipRecord, 0, len(recs)),
	}
	for i := range recs {
		r := &recs[i]
		if r.IsPlan() {
			b.Records = append(b.Records, wire.ShipRecord{PlanSeq: r.PlanSeq, Plan: r.Plan, Active: r.Active})
			continue
		}
		wr := wire.ShipRecord{Bucket: r.Bucket, LSN: r.LSN, Txn: r.Txn, Key: r.Key}
		if r.Args != nil {
			raw, err := json.Marshal(r.Args)
			if err != nil {
				return nil, fmt.Errorf("transport: encoding shipped %q args: %w", r.Txn, err)
			}
			wr.Args = raw
		}
		b.Records = append(b.Records, wr)
	}
	return b, nil
}

// fatal latches a terminal error.
func (s *Shipper) fatal(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// ShipOnce ships at most one batch (plus the read-ahead batch a reorder
// fault pulls forward) and returns the records durably acknowledged by the
// follower during the call. Zero with a nil error means caught up, or the
// batch was dropped/partitioned by the injector and will be retried. It is
// the deterministic stepping primitive the chaos suite drives directly.
func (s *Shipper) ShipOnce(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	b := s.pending
	if b == nil {
		recs, next, err := s.cfg.RM.ReadShip(s.cur, s.cfg.BatchRecords)
		if err != nil {
			if errors.Is(err, wal.ErrShipGone) {
				return 0, s.fatal(err)
			}
			return 0, err
		}
		if len(recs) == 0 {
			return 0, nil
		}
		b, err = buildBatch(recs, s.cur, next, s.cfg.RM.Epoch(), s.cfg.RM.BaselineSeq(), s.seq)
		if err != nil {
			return 0, s.fatal(err)
		}
		s.seq++
		s.pending = b
	}
	var dec faults.ShipDecision
	if s.cfg.Faults != nil {
		dec = s.cfg.Faults.OnBatch(s.cfg.FromNode, s.cfg.ToNode, b.Seq)
	}
	if dec.Partitioned || dec.Drop {
		// The follower sees nothing; the same batch retries next call under
		// the next attempt number.
		return 0, nil
	}
	if dec.Delay > 0 {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(dec.Delay):
		}
	}
	applied := 0
	if dec.Reorder {
		// Pull the stream's next batch forward: the follower refuses it with
		// a gap ack, then accepts the held batch, then the re-delivery.
		ahead, next, err := s.cfg.RM.ReadShip(walCursor(b.Next), s.cfg.BatchRecords)
		if err != nil && !errors.Is(err, wal.ErrShipGone) {
			return 0, err
		}
		if len(ahead) > 0 {
			c, err := buildBatch(ahead, walCursor(b.Next), next, b.Epoch, b.Baseline, s.seq)
			if err != nil {
				return 0, s.fatal(err)
			}
			s.seq++
			for _, out := range []*wire.ShipBatch{c, b, c} {
				n, err := s.deliverLocked(ctx, out)
				if err != nil {
					return applied, err
				}
				applied += n
			}
			s.pending = nil
			return applied, nil
		}
		// Nothing to pull forward; fall through to a plain delivery.
	}
	n, err := s.deliverLocked(ctx, b)
	if err != nil {
		return applied, err
	}
	applied += n
	if dec.Dup {
		// Mechanical re-delivery of the identical batch; the follower's
		// cursor check turns it into a gap ack pointing where we already are.
		if _, err := s.deliverLocked(ctx, b); err != nil {
			return applied, err
		}
	}
	s.pending = nil
	return applied, nil
}

// deliverLocked sends one batch and folds its ack into the cursor state.
// The caller holds s.mu.
func (s *Shipper) deliverLocked(ctx context.Context, b *wire.ShipBatch) (int, error) {
	ack, err := s.cfg.Follower.Ship(ctx, b)
	if err != nil {
		if errors.Is(err, wire.ErrFenced) {
			return 0, s.fatal(err)
		}
		// Transient: follower down, not ready, or network error. Retry later.
		return 0, err
	}
	if ack.Resync {
		return 0, s.fatal(ErrShipResync)
	}
	applied := 0
	if ack.Gap {
		// The follower's cursor is authoritative; rewind (or fast-forward,
		// for a duplicate delivery) and rebuild from there.
		s.cur = walCursor(ack.Applied)
		s.pending = nil
	} else {
		applied = len(b.Records)
		s.cur = walCursor(b.Next)
		s.shipped++
	}
	s.acked = walCursor(ack.Applied)
	s.cfg.RM.PinShip(s.acked.Seg)
	if s.cfg.SyncCommit {
		s.cfg.RM.SetRemoteAck(s.acked)
	}
	return applied, nil
}

// Run ships until ctx is done or a terminal error latches, polling at the
// configured interval while caught up. Transient delivery errors back off
// one interval and retry. In sync-commit mode, exiting for any reason fails
// every append still waiting on the barrier and disarms it: no confirmation
// is coming, and blocking writers forever is worse than degrading loudly.
func (s *Shipper) Run(ctx context.Context) error {
	if s.cfg.SyncCommit {
		defer func() {
			s.cfg.RM.AbortSync()
			s.cfg.RM.SetSyncCommit(false)
		}()
	}
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		n, err := s.ShipOnce(ctx)
		if err != nil {
			if s.Err() != nil {
				return s.Err()
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if n > 0 {
			// More may be waiting; ship again immediately.
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
