package transport_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/faults"
	"pstore/internal/recovery"
	"pstore/internal/server"
	"pstore/internal/squall"
	"pstore/internal/store"
	"pstore/internal/transport"
	"pstore/internal/wire"
)

// replNode is one half of a primary/follower pair: a node-mode server with a
// durable store, hosting every machine (the follower is a full warm copy of
// its primary's slot).
type replNode struct {
	eng  *store.Engine
	rm   *recovery.Manager
	srv  *server.Server
	peer *transport.Peer
	url  string
}

func startReplNode(t *testing.T, machines, initial int, replicaOf string) *replNode {
	t.Helper()
	return startReplNodeWith(t, machines, initial, replicaOf, decodeKVArgs, decodeKVRow)
}

func startReplNodeWith(t *testing.T, machines, initial int, replicaOf string, decArgs server.ArgsDecoder, decRow wire.RowDecoder) *replNode {
	t.Helper()
	scfg := kvStoreConfig(machines, initial)
	for m := 0; m < machines; m++ {
		scfg.HostedMachines = append(scfg.HostedMachines, m)
	}
	eng, err := store.NewEngine(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(eng); err != nil {
		t.Fatal(err)
	}
	rm, err := recovery.New(eng, recovery.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	srv, err := server.New(server.Config{
		Engine:     eng,
		DecodeArgs: decArgs,
		Node: &server.NodeConfig{
			ID: 0, Nodes: 1,
			Recovery:  rm,
			DecodeRow: decRow,
			PeerURL:   func(int) string { return url },
			ReplicaOf: replicaOf,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	peer := transport.NewPeer(url)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := peer.WaitHealthy(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return &replNode{eng: eng, rm: rm, srv: srv, peer: peer, url: url}
}

// syncFollower runs the bootstrap a serving process performs: fetch the
// primary's sync stream and install it on the follower.
func syncFollower(t *testing.T, primary, follower *replNode) wire.ReplSyncMeta {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meta, frames, err := primary.peer.ReplSync(ctx, "")
	if err != nil {
		t.Fatalf("ReplSync: %v", err)
	}
	if err := follower.srv.InstallReplicaState(meta, frames); err != nil {
		t.Fatalf("InstallReplicaState: %v", err)
	}
	return meta
}

func newTestShipper(t *testing.T, primary, follower *replNode, start wire.ShipCursor, batchRecords int, inj *faults.ShipInjector) *transport.Shipper {
	t.Helper()
	sh, err := transport.NewShipper(transport.ShipperConfig{
		RM:           primary.rm,
		Follower:     follower.peer,
		FromNode:     0,
		ToNode:       -1,
		Faults:       inj,
		BatchRecords: batchRecords,
		Start:        start,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// drainShipper steps the shipper until the follower has acknowledged every
// durable byte (dropped/partitioned batches retry on later steps).
func drainShipper(t *testing.T, sh *transport.Shipper) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10000; i++ {
		if _, err := sh.ShipOnce(ctx); err != nil {
			t.Fatalf("ShipOnce: %v", err)
		}
		if sh.Lag() == 0 {
			return
		}
	}
	t.Fatalf("shipper never drained; lag %d bytes", sh.Lag())
}

func getVal(t *testing.T, eng *store.Engine, key string) (int, error) {
	t.Helper()
	v, err := eng.Execute("get", key, nil)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int)
	if !ok {
		t.Fatalf("get %q returned %T %v", key, v, v)
	}
	return n, nil
}

// TestReplicationEndToEnd is the happy path of the whole plane: sync a
// follower from a loaded primary, ship post-sync writes, verify the follower
// refuses client traffic until promotion, promote it, and verify every
// acknowledged write is present on the new primary — and that the zombie old
// primary's next ship batch is fenced.
func TestReplicationEndToEnd(t *testing.T) {
	const keys = 200
	primary := startReplNode(t, 2, 2, "")
	loadAll(t, []*store.Engine{primary.eng}, keys)
	follower := startReplNode(t, 2, 2, primary.url)

	// A replica refuses client transactions with a retryable not-owned.
	req, _ := json.Marshal(wire.Request{Txn: "get", Key: "k-0"})
	resp, err := http.Post(follower.url+wire.PathTxn, "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var out wire.Response
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != 503 || out.Code != wire.CodeNotOwned {
		t.Fatalf("replica txn: status %d code %s, want 503 %s", resp.StatusCode, out.Code, wire.CodeNotOwned)
	}

	meta := syncFollower(t, primary, follower)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := follower.peer.ReplStatus(ctx)
	if err != nil || st.Role != "replica" {
		t.Fatalf("follower status after sync: %+v, %v", st, err)
	}
	if got := follower.eng.TotalRows(); got != keys {
		t.Fatalf("follower rows after sync = %d, want %d", got, keys)
	}

	// Post-sync writes on the primary, shipped by cursor.
	for i := 0; i < keys; i++ {
		if _, err := primary.eng.Execute("put", fmt.Sprintf("k-%d", i), i+1000); err != nil {
			t.Fatal(err)
		}
	}
	sh := newTestShipper(t, primary, follower, meta.Cursor, 0, nil)
	drainShipper(t, sh)

	// Lag-0 barrier: the follower's applied cursor equals the primary's
	// durable end — the zero-acked-loss precondition for promotion.
	pst, err := primary.peer.ReplStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fst, err := follower.peer.ReplStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Applied != pst.Durable {
		t.Fatalf("follower applied %+v != primary durable %+v", fst.Applied, pst.Durable)
	}

	promoted, err := follower.peer.Promote(ctx, pst.Epoch+1)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if promoted.Role != "primary" || promoted.Epoch != pst.Epoch+1 {
		t.Fatalf("promoted status: %+v", promoted)
	}
	// Zero acked-transaction loss: every write the primary acknowledged is
	// readable on the promoted follower.
	for i := 0; i < keys; i++ {
		v, err := getVal(t, follower.eng, fmt.Sprintf("k-%d", i))
		if err != nil || v != i+1000 {
			t.Fatalf("promoted k-%d = %d (%v), want %d", i, v, err, i+1000)
		}
	}
	// And it serves clients again.
	if _, err := follower.eng.Execute("put", "k-0", 9999); err != nil {
		t.Fatalf("promoted follower refused a write: %v", err)
	}

	// The zombie primary keeps appending and shipping under the old epoch;
	// the promoted node must fence it terminally.
	if _, err := primary.eng.Execute("put", "k-1", 7777); err != nil {
		t.Fatal(err)
	}
	_, err = sh.ShipOnce(ctx)
	if !errors.Is(err, wire.ErrFenced) {
		t.Fatalf("zombie ship: err = %v, want ErrFenced", err)
	}
	if !errors.Is(sh.Err(), wire.ErrFenced) {
		t.Fatalf("fencing did not latch: %v", sh.Err())
	}
	// The zombie's post-promotion write must NOT have leaked to the new
	// primary.
	if v, _ := getVal(t, follower.eng, "k-1"); v == 7777 {
		t.Fatal("fenced write leaked to the promoted follower")
	}
}

// TestDuplicateShipAfterReconnect pins the dedup half of the protocol
// (satellite: duplicate ship batch after reconnect). Every batch is
// delivered twice by the injector, and then a "reconnected" shipper restarts
// from the stale sync cursor and re-ships history. Both paths must converge
// by gap acks and per-bucket LSN dedup: no row duplicated, no value wrong.
func TestDuplicateShipAfterReconnect(t *testing.T) {
	const keys = 120
	primary := startReplNode(t, 2, 2, "")
	loadAll(t, []*store.Engine{primary.eng}, keys)
	follower := startReplNode(t, 2, 2, primary.url)
	meta := syncFollower(t, primary, follower)

	for i := 0; i < keys; i++ {
		if _, err := primary.eng.Execute("put", fmt.Sprintf("k-%d", i), i+500); err != nil {
			t.Fatal(err)
		}
	}
	inj, err := faults.NewShip(faults.ShipConfig{Seed: 11, Dup: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := newTestShipper(t, primary, follower, meta.Cursor, 16, inj)
	drainShipper(t, sh)
	if inj.Stats().Dups == 0 {
		t.Fatal("injector duplicated nothing; test proves nothing")
	}

	// Reconnect: a fresh shipper with no memory of progress restarts from
	// the sync-time cursor and replays already-acked history. The follower's
	// gap ack must fast-forward it past everything already applied.
	sh2 := newTestShipper(t, primary, follower, meta.Cursor, 16, nil)
	drainShipper(t, sh2)

	if got := follower.eng.TotalRows(); got != keys {
		t.Fatalf("follower rows = %d after duplicate delivery, want %d", got, keys)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := follower.peer.Promote(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		v, err := getVal(t, follower.eng, fmt.Sprintf("k-%d", i))
		if err != nil || v != i+500 {
			t.Fatalf("k-%d = %d (%v), want %d", i, v, err, i+500)
		}
	}
}

// TestPromoteWithTornShippedTail promotes a follower whose ship stream was
// torn mid-flight (satellite: promote with torn shipped tail): only the
// first few batches arrived before the primary died. The promoted state must
// be the exact whole-batch prefix of the primary's WAL — recent
// unacknowledged writes lost (never acked to a client from the replica's
// view), everything before the tear intact, nothing partially applied.
func TestPromoteWithTornShippedTail(t *testing.T) {
	const keys = 120
	primary := startReplNode(t, 2, 2, "")
	loadAll(t, []*store.Engine{primary.eng}, keys)
	follower := startReplNode(t, 2, 2, primary.url)
	meta := syncFollower(t, primary, follower)

	// Updates in a known global order: the WAL orders them exactly as
	// executed.
	for i := 0; i < keys; i++ {
		if _, err := primary.eng.Execute("put", fmt.Sprintf("k-%d", i), i+1000); err != nil {
			t.Fatal(err)
		}
	}
	// Ship 5 batches of 7 records, then the stream tears (primary dies).
	sh := newTestShipper(t, primary, follower, meta.Cursor, 7, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	applied := 0
	for i := 0; i < 5; i++ {
		n, err := sh.ShipOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		applied += n
	}
	if applied != 35 {
		t.Fatalf("shipped %d records before the tear, want 35", applied)
	}

	promoted, err := follower.peer.Promote(ctx, 1)
	if err != nil || promoted.Role != "primary" {
		t.Fatalf("promote after torn tail: %+v, %v", promoted, err)
	}
	// Exact prefix: updates 0..34 applied, 35.. still at their sync values.
	for i := 0; i < keys; i++ {
		want := i
		if i < applied {
			want = i + 1000
		}
		v, err := getVal(t, follower.eng, fmt.Sprintf("k-%d", i))
		if err != nil || v != want {
			t.Fatalf("k-%d = %d (%v) after torn-tail promote, want %d", i, v, err, want)
		}
	}
	if got := follower.eng.TotalRows(); got != keys {
		t.Fatalf("rows = %d, want %d", got, keys)
	}
}

// TestPromoteWhileMigrationInFlight kills a migration mid-flight and checks
// the replica side of the crashed-pair contract: a reconfiguration that
// aborts on the primary rolls back there, and the follower — promoted after
// shipping whatever the abort left in the WAL — lands on the same
// rolled-back plan with every row intact, exactly as if it had been the
// surviving half of a crashed pair.
func TestPromoteWhileMigrationInFlight(t *testing.T) {
	const keys = 300
	primary := startReplNode(t, 4, 1, "")
	loadAll(t, []*store.Engine{primary.eng}, keys)
	follower := startReplNode(t, 4, 1, primary.url)
	meta := syncFollower(t, primary, follower)
	planBefore := fmt.Sprint(primary.eng.Plan())

	// Drive a scale-out whose chunks all fail: retries exhaust mid-flight
	// and the move must abort with rollback — the crashed-pair path.
	inj, err := faults.New(faults.Config{Seed: 5, ChunkDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	topo := transport.NewLocal(primary.eng, primary.rm)
	topo.SetFaultInjector(inj)
	ex, err := squall.NewExecutor(topo, chaosExecutorConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = ex.Reconfigure(1, 4, 0)
	var me *squall.MoveError
	if !errors.As(err, &me) || !me.RolledBack {
		t.Fatalf("reconfigure under total chunk loss: %v, want rolled-back MoveError", err)
	}
	if got := fmt.Sprint(primary.eng.Plan()); got != planBefore {
		t.Fatalf("primary plan after abort %s != pre-move %s", got, planBefore)
	}

	// Ship everything the aborted migration logged, then promote.
	sh := newTestShipper(t, primary, follower, meta.Cursor, 0, nil)
	drainShipper(t, sh)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := follower.peer.Promote(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(follower.eng.Plan()); got != planBefore {
		t.Fatalf("promoted plan %s != rolled-back plan %s", got, planBefore)
	}
	if got := follower.eng.TotalRows(); got != keys {
		t.Fatalf("promoted rows = %d, want %d", got, keys)
	}
	for i := 0; i < keys; i += 7 {
		v, err := getVal(t, follower.eng, fmt.Sprintf("k-%d", i))
		if err != nil || v != i {
			t.Fatalf("k-%d = %d (%v) after promote, want %d", i, v, err, i)
		}
	}
}

// TestCoordFailoverPromote exercises the coordinator plane end to end:
// detect the primary's death by consecutive failed health probes, promote
// its follower under a fresh epoch, and verify detection latency falls in
// the deterministic [(FailAfter-1)*Probe, ~FailAfter*Probe+slack] window.
func TestCoordFailoverPromote(t *testing.T) {
	const keys = 100
	primary := startReplNode(t, 2, 2, "")
	loadAll(t, []*store.Engine{primary.eng}, keys)
	follower := startReplNode(t, 2, 2, primary.url)
	meta := syncFollower(t, primary, follower)
	sh := newTestShipper(t, primary, follower, meta.Cursor, 0, nil)
	drainShipper(t, sh)

	// Kill the primary (shutdown stands in for SIGKILL here — the probe
	// only sees the port stop answering).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := primary.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	det, err := cluster.DetectFailure(ctx, primary.peer, cluster.DetectorConfig{
		Probe: 20 * time.Millisecond, FailAfter: 3,
	})
	if err != nil {
		t.Fatalf("DetectFailure: %v", err)
	}
	if det < 40*time.Millisecond {
		t.Fatalf("detection after %v, below the (FailAfter-1)*Probe floor", det)
	}
	st, err := cluster.Promote(ctx, cluster.PromoteConfig{
		Replica:    follower.peer,
		ReplicaURL: follower.url,
		FailedNode: 0,
		Survivors:  map[int]*transport.Peer{},
	})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if st.Role != "primary" || st.Epoch == 0 {
		t.Fatalf("promoted: %+v", st)
	}
	for i := 0; i < keys; i += 11 {
		v, err := getVal(t, follower.eng, fmt.Sprintf("k-%d", i))
		if err != nil || v != i {
			t.Fatalf("k-%d = %d (%v) after failover, want %d", i, v, err, i)
		}
	}
}
