package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pstore/internal/wire"
)

// Peer is the client half of the node RPC vocabulary: one per node process,
// holding a pooled HTTP client. All methods are safe for concurrent use.
type Peer struct {
	base string
	hc   *http.Client
}

// NewPeer builds a client for a node at addr ("host:port" or a full
// http:// URL).
func NewPeer(addr string) *Peer {
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	return &Peer{
		base: base,
		hc: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 30 * time.Second},
		},
	}
}

// Addr returns the peer's base URL.
func (p *Peer) Addr() string { return p.base }

// peerError converts a non-200 node reply into an error that wraps the
// store sentinel its wire code stands for, so errors.Is works across the
// process boundary exactly as it does in-process.
func peerError(status int, body []byte) error {
	var resp wire.Response
	if err := json.Unmarshal(body, &resp); err != nil || resp.Code == "" {
		return fmt.Errorf("transport: node replied %d: %s", status, bytes.TrimSpace(body))
	}
	if sent := wire.SentinelOf(resp.Code); sent != nil {
		return fmt.Errorf("transport: %s: %w", resp.Error, sent)
	}
	return fmt.Errorf("transport: node replied %s: %s", resp.Code, resp.Error)
}

// do posts in (JSON; nil for GET) to path and returns the raw 200 body.
func (p *Peer) do(ctx context.Context, method, path string, in any) ([]byte, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, peerError(resp.StatusCode, out)
	}
	return out, nil
}

func (p *Peer) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := p.do(ctx, http.MethodPost, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Status fetches the node's self-description.
func (p *Peer) Status(ctx context.Context) (wire.NodeStatus, error) {
	var st wire.NodeStatus
	body, err := p.do(ctx, http.MethodGet, wire.PathNodeStatus, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// WaitHealthy polls Status until the node answers or the deadline passes.
func (p *Peer) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		attempt, cancel := context.WithTimeout(ctx, time.Second)
		_, err := p.Status(attempt)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: node %s not healthy after %v: %w", p.base, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Move executes a same-node MoveBuckets on the peer.
func (p *Peer) Move(ctx context.Context, req wire.NodeMove) (int, error) {
	var out wire.NodeRows
	if err := p.postJSON(ctx, wire.PathNodeMove, req, &out); err != nil {
		return 0, err
	}
	return out.Rows, nil
}

// Extract pulls a chunk out of the peer's source partition; the peer flips
// its local ownership as part of the extract.
func (p *Peer) Extract(ctx context.Context, req wire.NodeMove) (wire.ChunkMeta, []wire.BucketFrame, error) {
	body, err := p.do(ctx, http.MethodPost, wire.PathNodeExtract, req)
	if err != nil {
		return wire.ChunkMeta{}, nil, err
	}
	return wire.ReadChunkStream(bytes.NewReader(body))
}

// Install delivers a chunk into the peer's destination partition; the peer
// flips its local ownership after the install lands.
func (p *Peer) Install(ctx context.Context, req wire.NodeMove, meta wire.ChunkMeta, frames []wire.BucketFrame) (int, error) {
	var buf bytes.Buffer
	if err := wire.EncodeFrame(&buf, req); err != nil {
		return 0, err
	}
	if err := wire.WriteChunkStream(&buf, meta, frames); err != nil {
		return 0, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+wire.PathNodeInstall, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, err
	}
	httpReq.Header.Set("Content-Type", wire.ContentTypeChunk)
	resp, err := p.hc.Do(httpReq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, peerError(resp.StatusCode, body)
	}
	var out wire.NodeRows
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, err
	}
	return out.Rows, nil
}

// Flip applies an ownership reassignment with no data movement.
func (p *Peer) Flip(ctx context.Context, buckets []int, owner int) error {
	return p.postJSON(ctx, wire.PathNodeFlip, wire.NodeFlip{Buckets: buckets, Owner: owner}, nil)
}

// Crash fences a machine hosted by the peer.
func (p *Peer) Crash(ctx context.Context, machine int) error {
	return p.postJSON(ctx, wire.PathNodeCrash, wire.NodeMachine{Machine: machine}, nil)
}

// Restore rebuilds a crashed machine from the peer's node-local checkpoint
// and command log.
func (p *Peer) Restore(ctx context.Context, machine int) (wire.NodeRestoreResult, error) {
	var out wire.NodeRestoreResult
	err := p.postJSON(ctx, wire.PathNodeRestore, wire.NodeMachine{Machine: machine}, &out)
	return out, err
}

// Checkpoint installs a fresh recovery baseline on every live partition the
// peer hosts, returning the bucket images installed.
func (p *Peer) Checkpoint(ctx context.Context) (int, error) {
	var out wire.NodeRows
	if err := p.postJSON(ctx, wire.PathNodeCheckpoint, struct{}{}, &out); err != nil {
		return 0, err
	}
	return out.Rows, nil
}

// Accesses fetches the peer's per-bucket access counts, optionally
// resetting them as they are read.
func (p *Peer) Accesses(ctx context.Context, reset bool) ([]int64, error) {
	var out wire.NodeAccesses
	if err := p.postJSON(ctx, wire.PathNodeAccesses, wire.NodeAccessesReq{Reset: reset}, &out); err != nil {
		return nil, err
	}
	return out.Accesses, nil
}

// SetActive sets the peer's active machine count.
func (p *Peer) SetActive(ctx context.Context, n int) error {
	return p.postJSON(ctx, wire.PathNodeMachines, wire.NodeActive{Active: n}, nil)
}

// Snapshot streams a fuzzy-checkpoint image of one partition.
func (p *Peer) Snapshot(ctx context.Context, part int) (wire.ChunkMeta, []wire.BucketFrame, error) {
	body, err := p.do(ctx, http.MethodGet, wire.PathNodeSnapshot+"?part="+strconv.Itoa(part), nil)
	if err != nil {
		return wire.ChunkMeta{}, nil, err
	}
	return wire.ReadChunkStream(bytes.NewReader(body))
}

// Shutdown asks the node process to exit via the serve shutdown handshake.
func (p *Peer) Shutdown(ctx context.Context) error {
	_, err := p.do(ctx, http.MethodPost, wire.PathShutdown, nil)
	return err
}
