package timeseries

import "math"

// MRE returns the mean relative error of the predictions against the actual
// values, as a fraction (multiply by 100 for the percentage the paper
// reports). Slots whose actual value is zero are skipped, since the relative
// error is undefined there.
func MRE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	sum, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error of the predictions.
func RMSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range actual {
		d := predicted[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(actual))), nil
}

// MAE returns the mean absolute error of the predictions.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range actual {
		sum += math.Abs(predicted[i] - actual[i])
	}
	return sum / float64(len(actual)), nil
}
