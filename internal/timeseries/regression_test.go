package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactRecovery(t *testing.T) {
	// y = 2*x1 - 3*x2 + 0.5*x3 with no noise must be recovered exactly.
	rng := rand.New(rand.NewSource(1))
	want := []float64{2, -3, 0.5}
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		x = append(x, row)
		y = append(y, want[0]*row[0]+want[1]*row[1]+want[2]*row[2])
	}
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !approxEq(w[i], want[i], 1e-6) {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestLeastSquaresNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	want := []float64{1.5, -0.7}
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64()}
		x = append(x, row)
		y = append(y, want[0]*row[0]+want[1]*row[1]+0.01*rng.NormFloat64())
	}
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !approxEq(w[i], want[i], 1e-2) {
			t.Errorf("w[%d] = %v, want ~%v", i, w[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero features should fail")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system should fail")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1, 3}}, []float64{1, 2}); err != nil {
		t.Errorf("square full-rank system should solve: %v", err)
	}
	if _, err := RidgeRegression([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative lambda should fail")
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	// Two identical columns make XᵀX singular; the tiny default ridge term
	// keeps it solvable but a zero-ridge call must report ErrSingular.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := RidgeRegression(x, y, 0); err != ErrSingular {
		t.Errorf("singular system err = %v, want ErrSingular", err)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{3, 5, 8, 11}
	w0, err := RidgeRegression(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := RidgeRegression(x, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	n0 := math.Hypot(w0[0], w0[1])
	n1 := math.Hypot(w1[0], w1[1])
	if n1 >= n0 {
		t.Errorf("ridge norm %v should be below OLS norm %v", n1, n0)
	}
}

// TestLeastSquaresResidualOrthogonality checks the defining property of an
// OLS solution: residuals are orthogonal to every feature column.
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 30, 3
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 10
		}
		// Zero ridge: random Gaussian features are full rank almost surely,
		// and exact OLS residuals are orthogonal to the features.
		w, err := RidgeRegression(x, y, 0)
		if err != nil {
			return false
		}
		for j := 0; j < p; j++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				pred := 0.0
				for k := 0; k < p; k++ {
					pred += x[i][k] * w[k]
				}
				dot += (y[i] - pred) * x[i][j]
			}
			if math.Abs(dot) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
