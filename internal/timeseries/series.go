// Package timeseries provides the time-series primitives used throughout
// P-Store: a uniformly sampled series type, accuracy metrics such as the
// mean relative error reported in the paper, and a linear least-squares
// solver used to fit the SPAR, AR and ARMA prediction models.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Series is a uniformly sampled time series. Values[i] is the measurement
// for the slot beginning at Start + i*Interval. The paper samples the B2W
// load in one-minute slots (1440 slots per day) and the Wikipedia load in
// one-hour slots.
type Series struct {
	// Start is the timestamp of the first slot.
	Start time.Time
	// Interval is the width of each slot.
	Interval time.Duration
	// Values holds one measurement per slot.
	Values []float64
}

// New returns a Series with the given slot width and values. The values
// slice is used directly, not copied.
func New(start time.Time, interval time.Duration, values []float64) Series {
	return Series{Start: start, Interval: interval, Values: values}
}

// Len returns the number of slots.
func (s Series) Len() int { return len(s.Values) }

// At returns the value of slot i.
func (s Series) At(i int) float64 { return s.Values[i] }

// TimeAt returns the timestamp of the beginning of slot i.
func (s Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// Slice returns the sub-series covering slots [from, to). The underlying
// values are shared with the receiver.
func (s Series) Slice(from, to int) Series {
	return Series{
		Start:    s.TimeAt(from),
		Interval: s.Interval,
		Values:   s.Values[from:to],
	}
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{Start: s.Start, Interval: s.Interval, Values: v}
}

// Max returns the maximum value, or zero for an empty series.
func (s Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum value, or zero for an empty series.
func (s Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Mean returns the arithmetic mean, or zero for an empty series.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Std returns the population standard deviation.
func (s Series) Std() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.Values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.Values)))
}

// Scale returns a new series with every value multiplied by k.
func (s Series) Scale(k float64) Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= k
	}
	return out
}

// Resample aggregates groups of k consecutive slots into single slots using
// the mean, widening the interval by k. A trailing partial group is dropped.
// It is used, for example, to turn a per-minute load trace into the
// five-minute granularity used by the Figure 12 simulation.
func (s Series) Resample(k int) (Series, error) {
	if k <= 0 {
		return Series{}, fmt.Errorf("timeseries: resample factor %d must be positive", k)
	}
	n := len(s.Values) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < k; j++ {
			sum += s.Values[i*k+j]
		}
		out[i] = sum / float64(k)
	}
	return Series{Start: s.Start, Interval: s.Interval * time.Duration(k), Values: out}, nil
}

// ErrLengthMismatch is returned by pairwise operations on series of
// different lengths.
var ErrLengthMismatch = errors.New("timeseries: series length mismatch")
