package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the regression design matrix is singular or
// too ill-conditioned to solve.
var ErrSingular = errors.New("timeseries: singular system in least squares")

// LeastSquares solves the ordinary least-squares problem min ||Xw - y||² and
// returns the coefficient vector w. X has one row per observation and one
// column per feature. The paper fits the SPAR coefficients a_k and b_j this
// way (Section 5).
//
// The solver forms the normal equations XᵀX w = Xᵀy and solves them by
// Gaussian elimination with partial pivoting. A tiny ridge term — scaled to
// the magnitude of the data — is added to the diagonal to keep nearly or
// exactly collinear feature sets (common with periodic lags) numerically
// solvable.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	// Relative regularization: 1e-7 times the mean diagonal of XᵀX.
	var scale float64
	n := 0
	for _, row := range x {
		for _, v := range row {
			scale += v * v
			n++
		}
	}
	if n > 0 {
		scale /= float64(n)
	}
	lambda := 1e-7 * scale * float64(len(x))
	if lambda <= 0 {
		lambda = 1e-9
	}
	return RidgeRegression(x, y, lambda)
}

// RidgeRegression solves min ||Xw - y||² + lambda*||w||², a regularized
// variant of LeastSquares. lambda must be non-negative.
func RidgeRegression(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, ErrLengthMismatch
	}
	if len(x) == 0 {
		return nil, errors.New("timeseries: no observations")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("timeseries: negative ridge parameter %v", lambda)
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("timeseries: no features")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("timeseries: row %d has %d features, want %d", i, len(row), p)
		}
	}
	if len(x) < p {
		return nil, fmt.Errorf("timeseries: %d observations cannot identify %d coefficients", len(x), p)
	}

	// Normal equations: a = XᵀX + lambda*I, b = Xᵀy.
	a := make([][]float64, p)
	b := make([]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	for _, row := range x {
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
		a[i][i] += lambda
	}
	for k, row := range x {
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[k]
		}
	}
	return solveLinear(a, b)
}

// solveLinear solves a*w = b in place using Gaussian elimination with
// partial pivoting. a must be square with len(a) == len(b).
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * w[j]
		}
		w[i] = sum / a[i][i]
	}
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return w, nil
}
